// Command sdcsmoke is the silent-data-corruption drill, exercising both
// halves of the data-plane integrity story end to end:
//
//  1. Kernel/model half — crophe-sim runs a degraded simulation whose
//     fault plan carries the SDC dimensions (flip rate + scrub period)
//     and must report the priced detect-recompute-escalate outcome;
//     malformed flip/scrub specs must print usage and exit 2.
//  2. Wire half — a real three-process cluster whose coordinator flips
//     one bit of most worker response bodies (seeded transport chaos,
//     flip dimension) must still finish a sharded sweep with a merged
//     report byte-identical to a fresh single-process run, refusing
//     corrupted shard payloads via the end-to-end checksum rather than
//     merging them; /debug/vars must surface both the injected flips and
//     the reject counter.
//
// A plain Go program, so `make sdc-smoke` and CI run the identical
// drill.
//
// Usage:
//
//	sdcsmoke -bin path/to/crophe-serve -sim path/to/crophe-sim
//
// Exits 0 when every probe passes, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"crophe/internal/serve"
)

type server struct {
	name   string
	cmd    *exec.Cmd
	addr   string
	client *serve.Client
}

var running []*server

func fatalf(format string, a ...any) {
	for _, s := range running {
		if s.cmd.Process != nil {
			_ = s.cmd.Process.Kill()
			_, _ = s.cmd.Process.Wait()
		}
	}
	fmt.Fprintf(os.Stderr, "sdcsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

func step(format string, a ...any) { fmt.Printf("sdcsmoke: "+format+"\n", a...) }

// runSim runs crophe-sim with args and returns its exit code and
// combined output.
func runSim(sim string, args ...string) (int, string) {
	cmd := exec.Command(sim, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			fatalf("running %s %v: %v", sim, args, err)
		}
		code = ee.ExitCode()
	}
	return code, buf.String()
}

// start launches one crophe-serve process and parses its listen address.
func start(bin, name string, args ...string) *server {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("%s: stdout pipe: %v", name, err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("%s: starting %s: %v", name, bin, err)
	}
	s := &server{name: name, cmd: cmd}
	running = append(running, s)

	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		if rest, ok := strings.CutPrefix(lines.Text(), "crophe-serve: listening on "); ok {
			s.addr = strings.TrimSpace(rest)
			break
		}
	}
	if s.addr == "" {
		fatalf("%s exited without announcing a listen address", name)
	}
	go func() {
		for lines.Scan() {
		}
	}()
	s.client = serve.NewClient(s.addr)
	return s
}

func (s *server) drain() {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("%s: SIGTERM: %v", s.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("%s exited non-zero after SIGTERM: %v", s.name, err)
		}
	case <-time.After(30 * time.Second):
		fatalf("%s did not drain within 30s of SIGTERM", s.name)
	}
}

// getRaw fetches a path and returns status plus the exact body bytes.
func (s *server) getRaw(path string) (int, []byte) {
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		fatalf("%s: GET %s: %v", s.name, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("%s: GET %s: reading body: %v", s.name, path, err)
	}
	return resp.StatusCode, body
}

func (s *server) waitDone(id string, timeout time.Duration) *serve.SweepStatus {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.client.SweepStatus(context.Background(), id, false)
		if err != nil {
			fatalf("%s: sweep poll: %v", s.name, err)
		}
		switch st.State {
		case "done":
			return st
		case "failed":
			fatalf("%s: sweep failed: %s", s.name, st.Error)
		}
		if time.Now().After(deadline) {
			fatalf("%s: sweep did not finish in %v", s.name, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func main() {
	bin := flag.String("bin", "", "path to a built crophe-serve binary")
	sim := flag.String("sim", "", "path to a built crophe-sim binary")
	flag.Parse()
	if *bin == "" || *sim == "" {
		fmt.Fprintln(os.Stderr, "sdcsmoke: -bin and -sim are required")
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	tmp, err := os.MkdirTemp("", "sdcsmoke-*")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(tmp)
	mkdir := func(name string) string {
		d := tmp + "/" + name
		if err := os.Mkdir(d, 0o755); err != nil {
			fatalf("mkdir %s: %v", d, err)
		}
		return d
	}

	// --- Kernel/model half: the priced SDC recovery through crophe-sim.
	code, out := runSim(*sim, "-hw", "crophe64", "-workload", "boot",
		"-faults", "flip:0.0001,scrub:100000", "-seed", "29", "-deadline", "500ms")
	if code != 0 {
		fatalf("degraded SDC run exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "sdc integrity:") {
		fatalf("degraded SDC run did not report the integrity outcome:\n%s", out)
	}
	if !strings.Contains(out, "throughput retained") {
		fatalf("degraded SDC run did not report throughput retained:\n%s", out)
	}
	step("crophe-sim degraded run priced the SDC recovery (flip:0.0001,scrub:100000 seed 29)")

	// Malformed SDC specs must print usage and exit 2, never run — at
	// both CLIs (crophe-sim -faults, crophe-serve -chaos-net).
	for _, bad := range []string{"flip:1.5", "flip:bit", "scrub:-1", "flip:0.1,flip:0.2"} {
		code, out := runSim(*sim, "-faults", bad)
		if code != 2 {
			fatalf("-faults %s exited %d; want 2:\n%s", bad, code, out)
		}
	}
	for _, bad := range []string{"flip:1.01", "flip:bit"} {
		code, out := runSim(*bin, "-addr", "127.0.0.1:0", "-role", "coordinator",
			"-workers", "127.0.0.1:1", "-chaos-net", bad)
		if code != 2 {
			fatalf("crophe-serve -chaos-net %s exited %d; want 2:\n%s", bad, code, out)
		}
	}
	step("malformed flip/scrub specs rejected with exit 2 at both CLIs")

	// --- Wire half: a sharded sweep with every coordinator→worker link
	// flipping one bit of most response bodies.
	w0 := start(*bin, "worker0", "-checkpoint-dir", mkdir("w0"))
	w1 := start(*bin, "worker1", "-checkpoint-dir", mkdir("w1"))
	coord := start(*bin, "coordinator",
		"-role", "coordinator",
		"-workers", w0.addr+","+w1.addr,
		"-checkpoint-dir", mkdir("coord"),
		"-heartbeat", "25ms", "-worker-timeout", "500ms", "-poll", "10ms",
		"-chaos-net", "flip:0.6", "-chaos-net-seed", "17")
	step("cluster up under flip chaos: coordinator %s, workers %s %s", coord.addr, w0.addr, w1.addr)

	const steps, deadlineMS = 8, 3
	req := serve.SweepRequest{HW: "crophe64", Workload: "helr", Seed: 5, Steps: steps, DeadlineMS: deadlineMS}
	st, err := coord.client.StartSweep(ctx, req)
	if err != nil {
		fatalf("StartSweep: %v", err)
	}
	id := st.ID
	step("distributed sweep %s started (%d steps over 2 workers, flip:0.6)", id, steps)

	final := coord.waitDone(id, 180*time.Second)
	if len(final.Points) != steps {
		fatalf("done sweep has %d points; want %d", len(final.Points), steps)
	}
	step("merged sweep done (%d rungs) despite the flip storm", steps)

	// Byte-identity: a fresh single-process server (no chaos) answering
	// the same request must produce the identical raw status document —
	// silent wire corruption may slow the sweep, never skew it.
	single := start(*bin, "single", "-checkpoint-dir", mkdir("single"))
	st2, err := single.client.StartSweep(ctx, req)
	if err != nil {
		fatalf("single-process StartSweep: %v", err)
	}
	if st2.ID != id {
		fatalf("single-process job ID %s != distributed job ID %s", st2.ID, id)
	}
	single.waitDone(id, 180*time.Second)

	_, mergedBody := coord.getRaw("/v1/sweeps/" + id + "?raw=1")
	_, singleBody := single.getRaw("/v1/sweeps/" + id + "?raw=1")
	if !bytes.Equal(mergedBody, singleBody) {
		fatalf("merged status document differs from the single-process one:\n coord: %s\nsingle: %s", mergedBody, singleBody)
	}
	step("merged report byte-identical to the single-process run (%d bytes)", len(mergedBody))

	// Observability: /debug/vars must surface the injected flips and the
	// checksum reject counter that kept them out of the merge.
	code, body := coord.getRaw("/debug/vars")
	if code != 200 {
		fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		fatalf("/debug/vars: %v", err)
	}
	cv, _ := vars["coordinator"].(map[string]any)
	if cv == nil {
		fatalf("/debug/vars missing coordinator block: %s", body)
	}
	nc, _ := cv["net_chaos"].(map[string]any)
	if nc == nil {
		fatalf("/debug/vars missing coordinator.net_chaos: %s", body)
	}
	flips, _ := nc["flips"].(float64)
	if flips < 1 {
		fatalf("coordinator.net_chaos.flips = %v; want >= 1", nc["flips"])
	}
	if _, ok := cv["shard_checksum_rejects"]; !ok {
		fatalf("/debug/vars missing coordinator.shard_checksum_rejects: %s", body)
	}
	step("observability: %d bits flipped on the links, %v shard payloads refused",
		int(flips), cv["shard_checksum_rejects"])

	coord.drain()
	w0.drain()
	w1.drain()
	single.drain()
	step("drain clean")

	fmt.Println("sdcsmoke: PASS")
}

// Command servesmoke is the serve-smoke driver: it exercises a real
// crophe-serve binary end to end — health, scheduling, the memo path,
// deadline-expiry partials, degraded simulation, chaos panic isolation,
// a checkpointed sweep job, SIGTERM drain, and checkpoint recovery
// across a restart. It is a plain Go program (no curl, no shell) so
// `make serve-smoke` and CI run the identical drill.
//
// Usage:
//
//	servesmoke -bin path/to/crophe-serve
//
// Exits 0 when every probe passes, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// server wraps one child crophe-serve process.
type server struct {
	cmd  *exec.Cmd
	addr string
}

// cleanup kills any still-running child on failure paths; registered
// processes that already exited are no-ops.
var running []*server

func fatalf(format string, a ...any) {
	for _, s := range running {
		if s.cmd.Process != nil {
			_ = s.cmd.Process.Kill()
			_, _ = s.cmd.Process.Wait()
		}
	}
	fmt.Fprintf(os.Stderr, "servesmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

// start launches the binary and parses the listen address off its
// "crophe-serve: listening on ..." startup line.
func start(bin, checkpointDir string, chaos bool) *server {
	args := []string{"-addr", "127.0.0.1:0", "-checkpoint-dir", checkpointDir, "-queue-wait", "5s"}
	if chaos {
		args = append(args, "-chaos")
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("starting %s: %v", bin, err)
	}
	s := &server{cmd: cmd}
	running = append(running, s)

	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		line := lines.Text()
		if rest, ok := strings.CutPrefix(line, "crophe-serve: listening on "); ok {
			s.addr = strings.TrimSpace(rest)
			break
		}
	}
	if s.addr == "" {
		fatalf("server exited without announcing a listen address")
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go func() {
		for lines.Scan() {
		}
	}()
	return s
}

// drain sends SIGTERM and requires a clean exit.
func (s *server) drain() {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		fatalf("server did not drain within 30s of SIGTERM")
	}
}

// call performs one JSON round trip and decodes the body.
func (s *server) call(method, path string, body any) (int, map[string]any) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			fatalf("marshal %s body: %v", path, err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, "http://"+s.addr+path, rd)
	if err != nil {
		fatalf("%s %s: %v", method, path, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fatalf("%s %s: decoding %d response: %v", method, path, resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

func step(format string, a ...any) { fmt.Printf("servesmoke: "+format+"\n", a...) }

func main() {
	bin := flag.String("bin", "", "path to a built crophe-serve binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		flag.Usage()
		os.Exit(2)
	}
	checkpoints, err := os.MkdirTemp("", "servesmoke-*")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(checkpoints)

	s := start(*bin, checkpoints, true)
	step("server up on %s", s.addr)

	if code, _ := s.call("GET", "/healthz", nil); code != 200 {
		fatalf("/healthz = %d; want 200", code)
	}
	if code, _ := s.call("GET", "/readyz", nil); code != 200 {
		fatalf("/readyz = %d; want 200", code)
	}

	// Full-budget schedule, then the memo hit.
	sched := map[string]any{"hw": "crophe64", "workload": "helr"}
	code, body := s.call("POST", "/v1/schedule", sched)
	if code != 200 || body["partial"] != false {
		fatalf("schedule = %d %v; want 200, partial=false", code, body)
	}
	if ms, _ := body["time_ms"].(float64); ms <= 0 {
		fatalf("schedule time_ms = %v; want > 0", body["time_ms"])
	}
	code, body = s.call("POST", "/v1/schedule", sched)
	if code != 200 || body["cached"] != true {
		fatalf("repeat schedule = %d %v; want cached=true", code, body)
	}
	step("schedule ok (memo hit on repeat)")

	// A 1 ms deadline cannot cover the helr search space: the anytime
	// search must return its best-so-far schedule marked partial.
	code, body = s.call("POST", "/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr", "deadline_ms": 1})
	if code != 200 || body["partial"] != true {
		fatalf("deadline schedule = %d %v; want 200, partial=true", code, body)
	}
	step("deadline expiry returned a partial schedule")

	code, body = s.call("POST", "/v1/simulate-degraded",
		map[string]any{"hw": "crophe64", "workload": "helr", "faults": "rows:1,links:2", "seed": 13})
	if code != 200 {
		fatalf("simulate-degraded = %d %v; want 200", code, body)
	}
	if n, _ := body["fault_count"].(float64); n < 1 {
		fatalf("degraded run injected %v faults; want >= 1", body["fault_count"])
	}
	step("degraded simulation ok (%v faults)", body["fault_count"])

	// Chaos: an injected panic must come back as a structured 500
	// carrying the fault seed — and the server must keep serving.
	code, body = s.call("POST", "/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr", "chaos_panic": true, "seed": 99})
	if code != 500 {
		fatalf("chaos request = %d %v; want 500", code, body)
	}
	if seed, _ := body["fault_seed"].(float64); seed != 99 {
		fatalf("chaos 500 fault_seed = %v; want 99", body["fault_seed"])
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "invariant violation under fault seed 99") {
		fatalf("chaos 500 error %q missing the seed convention", body["error"])
	}
	if code, _ := s.call("GET", "/healthz", nil); code != 200 {
		fatalf("/healthz after chaos panic = %d; want 200", code)
	}
	step("chaos panic isolated as a structured 500")

	// A checkpointed sweep job: idempotent start, poll to done.
	sweep := map[string]any{"hw": "crophe64", "workload": "helr", "seed": 5, "steps": 4, "deadline_ms": 3}
	code, body = s.call("POST", "/v1/sweeps", sweep)
	if code != 202 || body["created"] != true {
		fatalf("start sweep = %d %v; want 202, created=true", code, body)
	}
	id, _ := body["id"].(string)
	code, body = s.call("POST", "/v1/sweeps", sweep)
	if code != 202 || body["id"] != id || body["created"] != false {
		fatalf("repeat sweep POST = %d %v; want same id, created=false", code, body)
	}
	pollDeadline := time.Now().Add(30 * time.Second)
	for {
		code, body = s.call("GET", "/v1/sweeps/"+id, nil)
		if code != 200 {
			fatalf("sweep poll = %d %v", code, body)
		}
		if body["state"] == "done" {
			break
		}
		if body["state"] == "failed" {
			fatalf("sweep failed: %v", body["error"])
		}
		if time.Now().After(pollDeadline) {
			fatalf("sweep did not finish: %v", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if points, _ := body["points"].([]any); len(points) != 4 {
		fatalf("done sweep has %d points; want 4", len(points))
	}
	step("sweep %s done (4 rungs journaled)", id)

	code, body = s.call("GET", "/debug/vars", nil)
	if code != 200 {
		fatalf("/debug/vars = %d", code)
	}
	reqVars, _ := body["requests"].(map[string]any)
	if n, _ := reqVars["panics"].(float64); n != 1 {
		fatalf("vars requests.panics = %v; want 1 (the chaos drill)", reqVars["panics"])
	}

	s.drain()
	step("SIGTERM drain clean")

	// The journal survived the drain and carries the done terminator.
	journals, err := filepath.Glob(filepath.Join(checkpoints, "*.sweep.jsonl"))
	if err != nil || len(journals) != 1 {
		fatalf("checkpoint dir holds %d journals (err %v); want 1", len(journals), err)
	}
	raw, err := os.ReadFile(journals[0])
	if err != nil {
		fatalf("reading journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if !bytes.Contains(lines[len(lines)-1], []byte(`"done":true`)) {
		fatalf("journal tail %q is not the done terminator", lines[len(lines)-1])
	}

	// A restarted server recovers the finished job from its journal.
	s2 := start(*bin, checkpoints, false)
	code, body = s2.call("GET", "/v1/sweeps/"+id, nil)
	if code != 200 || body["state"] != "done" {
		fatalf("recovered sweep = %d %v; want done", code, body)
	}
	if points, _ := body["points"].([]any); len(points) != 4 {
		fatalf("recovered sweep has %d points; want 4", len(points))
	}
	s2.drain()
	step("restart recovered the finished sweep from its journal")

	fmt.Println("servesmoke: PASS")
}

// Command servesmoke is the serve-smoke driver: it exercises a real
// crophe-serve binary end to end — health, scheduling, the memo path,
// deadline-expiry partials, degraded simulation, chaos panic isolation,
// a checkpointed sweep job, SIGTERM drain, and checkpoint recovery
// across a restart. It is a plain Go program (no curl, no shell) built
// on the typed serve.Client, so `make serve-smoke` and CI run the
// identical drill through the same client production callers use.
//
// Usage:
//
//	servesmoke -bin path/to/crophe-serve
//
// Exits 0 when every probe passes, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"crophe/internal/serve"
)

// server wraps one child crophe-serve process and the typed client
// pointed at it.
type server struct {
	cmd    *exec.Cmd
	addr   string
	client *serve.Client
}

// cleanup kills any still-running child on failure paths; registered
// processes that already exited are no-ops.
var running []*server

func fatalf(format string, a ...any) {
	for _, s := range running {
		if s.cmd.Process != nil {
			_ = s.cmd.Process.Kill()
			_, _ = s.cmd.Process.Wait()
		}
	}
	fmt.Fprintf(os.Stderr, "servesmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

// start launches the binary and parses the listen address off its
// "crophe-serve: listening on ..." startup line.
func start(bin, checkpointDir string, chaos bool, extraArgs ...string) *server {
	args := []string{"-addr", "127.0.0.1:0", "-checkpoint-dir", checkpointDir, "-queue-wait", "5s"}
	if chaos {
		args = append(args, "-chaos")
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("starting %s: %v", bin, err)
	}
	s := &server{cmd: cmd}
	running = append(running, s)

	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		line := lines.Text()
		if rest, ok := strings.CutPrefix(line, "crophe-serve: listening on "); ok {
			s.addr = strings.TrimSpace(rest)
			break
		}
	}
	if s.addr == "" {
		fatalf("server exited without announcing a listen address")
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go func() {
		for lines.Scan() {
		}
	}()
	s.client = serve.NewClient(s.addr)
	return s
}

// drain sends SIGTERM and requires a clean exit.
func (s *server) drain() {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		fatalf("server did not drain within 30s of SIGTERM")
	}
}

// getJSON fetches a path that has no typed client method (the debug
// endpoints) and decodes the body.
func (s *server) getJSON(path string) (int, map[string]any) {
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fatalf("GET %s: decoding %d response: %v", path, resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// waitDone polls a sweep job through the client until it finishes.
func (s *server) waitDone(id string, timeout time.Duration) *serve.SweepStatus {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.client.SweepStatus(context.Background(), id, false)
		if err != nil {
			fatalf("sweep poll: %v", err)
		}
		switch st.State {
		case "done":
			return st
		case "failed":
			fatalf("sweep failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			fatalf("sweep did not finish: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func step(format string, a ...any) { fmt.Printf("servesmoke: "+format+"\n", a...) }

func main() {
	bin := flag.String("bin", "", "path to a built crophe-serve binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	checkpoints, err := os.MkdirTemp("", "servesmoke-*")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(checkpoints)

	s := start(*bin, checkpoints, true)
	step("server up on %s", s.addr)

	if code, _ := s.getJSON("/healthz"); code != 200 {
		fatalf("/healthz = %d; want 200", code)
	}
	if err := s.client.Ready(ctx); err != nil {
		fatalf("Ready: %v", err)
	}

	// Full-budget schedule, then the memo hit.
	sched := serve.ScheduleRequest{HW: "crophe64", Workload: "helr"}
	resp, err := s.client.Schedule(ctx, sched)
	if err != nil {
		fatalf("schedule: %v", err)
	}
	if resp.Partial || resp.TimeMS <= 0 {
		fatalf("schedule = %+v; want a full positive-time schedule", resp)
	}
	resp, err = s.client.Schedule(ctx, sched)
	if err != nil || !resp.Cached {
		fatalf("repeat schedule = %+v (%v); want cached=true", resp, err)
	}
	step("schedule ok (memo hit on repeat)")

	// A 1 ms deadline cannot cover the helr search space: the anytime
	// search must return its best-so-far schedule marked partial.
	resp, err = s.client.Schedule(ctx, serve.ScheduleRequest{HW: "crophe64", Workload: "helr", DeadlineMS: 1})
	if err != nil || !resp.Partial {
		fatalf("deadline schedule = %+v (%v); want partial=true", resp, err)
	}
	step("deadline expiry returned a partial schedule")

	deg, err := s.client.SimulateDegraded(ctx, serve.DegradedRequest{
		HW: "crophe64", Workload: "helr", Faults: "rows:1,links:2", Seed: 13,
	})
	if err != nil {
		fatalf("simulate-degraded: %v", err)
	}
	if deg.FaultCount < 1 {
		fatalf("degraded run injected %d faults; want >= 1", deg.FaultCount)
	}
	step("degraded simulation ok (%d faults)", deg.FaultCount)

	// Chaos: an injected panic must come back as a typed 500 carrying
	// the fault seed — and the server must keep serving.
	_, err = s.client.Schedule(ctx, serve.ScheduleRequest{
		HW: "crophe64", Workload: "helr", ChaosPanic: true, Seed: 99,
	})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		fatalf("chaos request: %T %v; want *serve.APIError 500", err, err)
	}
	if apiErr.FaultSeed == nil || *apiErr.FaultSeed != 99 {
		fatalf("chaos 500 fault seed = %v; want 99", apiErr.FaultSeed)
	}
	if !strings.Contains(apiErr.Message, "invariant violation under fault seed 99") {
		fatalf("chaos 500 error %q missing the seed convention", apiErr.Message)
	}
	if err := s.client.Ready(ctx); err != nil {
		fatalf("Ready after chaos panic: %v", err)
	}
	step("chaos panic isolated as a typed 500")

	// A checkpointed sweep job: idempotent start, poll to done.
	sweep := serve.SweepRequest{HW: "crophe64", Workload: "helr", Seed: 5, Steps: 4, DeadlineMS: 3}
	st, err := s.client.StartSweep(ctx, sweep)
	if err != nil || st.Created == nil || !*st.Created {
		fatalf("start sweep = %+v (%v); want created=true", st, err)
	}
	id := st.ID
	st, err = s.client.StartSweep(ctx, sweep)
	if err != nil || st.ID != id || st.Created == nil || *st.Created {
		fatalf("repeat sweep POST = %+v (%v); want same id, created=false", st, err)
	}
	final := s.waitDone(id, 30*time.Second)
	if len(final.Points) != 4 {
		fatalf("done sweep has %d points; want 4", len(final.Points))
	}
	step("sweep %s done (4 rungs journaled)", id)

	code, body := s.getJSON("/debug/vars")
	if code != 200 {
		fatalf("/debug/vars = %d", code)
	}
	reqVars, _ := body["requests"].(map[string]any)
	if n, _ := reqVars["panics"].(float64); n != 1 {
		fatalf("vars requests.panics = %v; want 1 (the chaos drill)", reqVars["panics"])
	}

	s.drain()
	step("SIGTERM drain clean")

	// The journal survived the drain and carries the done terminator.
	journals, err := filepath.Glob(filepath.Join(checkpoints, "*.sweep.jsonl"))
	if err != nil || len(journals) != 1 {
		fatalf("checkpoint dir holds %d journals (err %v); want 1", len(journals), err)
	}
	raw, err := os.ReadFile(journals[0])
	if err != nil {
		fatalf("reading journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if !bytes.Contains(lines[len(lines)-1], []byte(`"done":true`)) {
		fatalf("journal tail %q is not the done terminator", lines[len(lines)-1])
	}

	// A restarted server recovers the finished job from its journal.
	s2 := start(*bin, checkpoints, false)
	st, err = s2.client.SweepStatus(ctx, id, false)
	if err != nil || st.State != "done" {
		fatalf("recovered sweep = %+v (%v); want done", st, err)
	}
	if len(st.Points) != 4 {
		fatalf("recovered sweep has %d points; want 4", len(st.Points))
	}
	s2.drain()
	step("restart recovered the finished sweep from its journal")

	fmt.Println("servesmoke: PASS")
}

// Command clustersmoke is the distributed-sweep smoke drill: it boots a
// real three-process cluster (two single-role crophe-serve workers plus
// a coordinator sharding across them), starts a resilience sweep, kills
// one worker mid-shard with SIGKILL, and requires the cluster to
// reassign the orphaned shard and finish with a merged report
// byte-identical to the one a fresh single-process server produces for
// the same request. It asserts cluster state through the /v1/cluster
// JSON endpoint and all API traffic through the typed serve.Client — a
// plain Go program, so `make cluster-smoke` and CI run the identical
// drill.
//
// Usage:
//
//	clustersmoke -bin path/to/crophe-serve
//
// Exits 0 when every probe passes, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"crophe/internal/serve"
)

type server struct {
	name   string
	cmd    *exec.Cmd
	addr   string
	client *serve.Client
}

var running []*server

func fatalf(format string, a ...any) {
	for _, s := range running {
		if s.cmd.Process != nil {
			_ = s.cmd.Process.Kill()
			_, _ = s.cmd.Process.Wait()
		}
	}
	fmt.Fprintf(os.Stderr, "clustersmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

func step(format string, a ...any) { fmt.Printf("clustersmoke: "+format+"\n", a...) }

// start launches one crophe-serve process and parses its listen address.
func start(bin, name string, args ...string) *server {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("%s: stdout pipe: %v", name, err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("%s: starting %s: %v", name, bin, err)
	}
	s := &server{name: name, cmd: cmd}
	running = append(running, s)

	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		if rest, ok := strings.CutPrefix(lines.Text(), "crophe-serve: listening on "); ok {
			s.addr = strings.TrimSpace(rest)
			break
		}
	}
	if s.addr == "" {
		fatalf("%s exited without announcing a listen address", name)
	}
	go func() {
		for lines.Scan() {
		}
	}()
	s.client = serve.NewClient(s.addr)
	return s
}

// kill delivers SIGKILL — the crash, not the drain.
func (s *server) kill() {
	if err := s.cmd.Process.Kill(); err != nil {
		fatalf("killing %s: %v", s.name, err)
	}
	_, _ = s.cmd.Process.Wait()
}

func (s *server) drain() {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("%s: SIGTERM: %v", s.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("%s exited non-zero after SIGTERM: %v", s.name, err)
		}
	case <-time.After(30 * time.Second):
		fatalf("%s did not drain within 30s of SIGTERM", s.name)
	}
}

// getRaw fetches a path and returns status plus the exact body bytes —
// the byte-identity comparisons work on these.
func (s *server) getRaw(path string) (int, []byte) {
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		fatalf("%s: GET %s: %v", s.name, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("%s: GET %s: reading body: %v", s.name, path, err)
	}
	return resp.StatusCode, body
}

func (s *server) waitDone(id string, timeout time.Duration) *serve.SweepStatus {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.client.SweepStatus(context.Background(), id, false)
		if err != nil {
			fatalf("%s: sweep poll: %v", s.name, err)
		}
		switch st.State {
		case "done":
			return st
		case "failed":
			fatalf("%s: sweep failed: %s", s.name, st.Error)
		}
		if time.Now().After(deadline) {
			fatalf("%s: sweep did not finish in %v", s.name, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func main() {
	bin := flag.String("bin", "", "path to a built crophe-serve binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "clustersmoke: -bin is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	tmp, err := os.MkdirTemp("", "clustersmoke-*")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(tmp)
	mkdir := func(name string) string {
		d := tmp + "/" + name
		if err := os.Mkdir(d, 0o755); err != nil {
			fatalf("mkdir %s: %v", d, err)
		}
		return d
	}

	w0 := start(*bin, "worker0", "-checkpoint-dir", mkdir("w0"))
	w1 := start(*bin, "worker1", "-checkpoint-dir", mkdir("w1"))
	coord := start(*bin, "coordinator",
		"-role", "coordinator",
		"-workers", w0.addr+","+w1.addr,
		"-checkpoint-dir", mkdir("coord"),
		"-heartbeat", "25ms", "-worker-timeout", "250ms", "-poll", "10ms")
	step("cluster up: coordinator %s, workers %s %s", coord.addr, w0.addr, w1.addr)

	// The cluster endpoint must report the topology.
	code, body := coord.getRaw("/v1/cluster")
	if code != 200 {
		fatalf("/v1/cluster = %d", code)
	}
	var cluster map[string]any
	if err := json.Unmarshal(body, &cluster); err != nil {
		fatalf("/v1/cluster: %v", err)
	}
	if cluster["role"] != "coordinator" {
		fatalf("/v1/cluster role = %v; want coordinator", cluster["role"])
	}
	if ws, _ := cluster["workers"].([]any); len(ws) != 2 {
		fatalf("/v1/cluster reports %d workers; want 2", len(ws))
	}

	const steps, deadlineMS = 12, 15
	req := serve.SweepRequest{HW: "crophe64", Workload: "helr", Seed: 9, Steps: steps, DeadlineMS: deadlineMS}
	st, err := coord.client.StartSweep(ctx, req)
	if err != nil {
		fatalf("StartSweep: %v", err)
	}
	id := st.ID
	step("distributed sweep %s started (%d steps over 2 workers)", id, steps)

	// Kill worker 1 once its shard (the odd steps) has landed at least
	// one rung. If the worker outran the kill window, say so and carry
	// on — the byte-identity check below still holds; only the
	// reassignment assertion is skipped.
	outran := false
	killDeadline := time.Now().Add(120 * time.Second)
	for {
		raw, err := coord.client.SweepStatus(ctx, id, true)
		if err != nil {
			fatalf("raw sweep poll: %v", err)
		}
		odd := 0
		for _, pt := range raw.RawPoints {
			if pt.Step%2 == 1 {
				odd++
			}
		}
		if odd >= steps/2 {
			outran = true
			break
		}
		if odd >= 1 {
			break
		}
		if time.Now().After(killDeadline) {
			fatalf("no odd-shard rung appeared within the kill window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	w1.kill()
	if outran {
		step("worker1 outran the kill window (shard already complete); skipping the reassignment assertion")
	} else {
		step("worker1 SIGKILLed mid-shard")
	}

	final := coord.waitDone(id, 180*time.Second)
	if len(final.Points) != steps {
		fatalf("done sweep has %d points; want %d", len(final.Points), steps)
	}
	step("merged sweep done (%d rungs)", steps)

	if !outran {
		_, body = coord.getRaw("/v1/cluster")
		if err := json.Unmarshal(body, &cluster); err != nil {
			fatalf("/v1/cluster after kill: %v", err)
		}
		reassigned := false
		jobs, _ := cluster["jobs"].([]any)
		for _, jv := range jobs {
			jm, _ := jv.(map[string]any)
			shards, _ := jm["shards"].([]any)
			for _, sv := range shards {
				sm, _ := sv.(map[string]any)
				if epoch, _ := sm["epoch"].(float64); epoch >= 1 {
					reassigned = true
				}
			}
		}
		if !reassigned {
			fatalf("/v1/cluster shows no shard with epoch >= 1 after the worker kill: %s", body)
		}
		step("shard reassignment confirmed via /v1/cluster (epoch >= 1)")
	}

	// Byte-identity: a fresh single-process server answering the same
	// request must produce the identical status document — same
	// deterministic job ID, same rungs, bit-exact raw points.
	single := start(*bin, "single", "-checkpoint-dir", mkdir("single"))
	st2, err := single.client.StartSweep(ctx, req)
	if err != nil {
		fatalf("single-process StartSweep: %v", err)
	}
	if st2.ID != id {
		fatalf("single-process job ID %s != distributed job ID %s", st2.ID, id)
	}
	single.waitDone(id, 180*time.Second)

	_, mergedBody := coord.getRaw("/v1/sweeps/" + id + "?raw=1")
	_, singleBody := single.getRaw("/v1/sweeps/" + id + "?raw=1")
	if !bytes.Equal(mergedBody, singleBody) {
		fatalf("merged status document differs from the single-process one:\n coord: %s\nsingle: %s", mergedBody, singleBody)
	}
	step("merged report byte-identical to the single-process run (%d bytes)", len(mergedBody))

	coord.drain()
	w0.drain()
	single.drain()
	step("drain clean")

	fmt.Println("clustersmoke: PASS")
}

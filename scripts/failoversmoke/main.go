// Command failoversmoke is the coordinator fail-over smoke drill: it
// boots a real four-process cluster — two single-role crophe-serve
// workers, a primary coordinator, and a standby coordinator sharing the
// primary's checkpoint directory — with deterministic transport chaos on
// every coordinator→worker link, starts a resilience sweep, freezes the
// primary mid-sweep (SIGSTOP: a partition, the worst case — the process
// is alive and will come back), and requires:
//
//   - the standby to promote off the stale lease, replay the shared
//     journal, and finish the sweep at a bumped persisted epoch;
//   - the merged report to be byte-identical — same job ID, same bytes —
//     to a fresh single-process server's answer for the same request;
//   - the thawed primary (SIGCONT: now a zombie coordinator) to fence
//     itself on the usurped lease rather than keep acting as primary,
//     with its late journal writes refused, never merged.
//
// All API traffic goes through the typed serve.Client (the terminal
// polls through its failover rotation) — a plain Go program, so
// `make failover-smoke` and CI run the identical drill.
//
// Usage:
//
//	failoversmoke -bin path/to/crophe-serve
//
// Exits 0 when every probe passes, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"crophe/internal/serve"
)

type server struct {
	name   string
	cmd    *exec.Cmd
	addr   string
	client *serve.Client
}

var running []*server

func fatalf(format string, a ...any) {
	for _, s := range running {
		if s.cmd.Process != nil {
			_ = s.cmd.Process.Kill()
			_, _ = s.cmd.Process.Wait()
		}
	}
	fmt.Fprintf(os.Stderr, "failoversmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

func step(format string, a ...any) { fmt.Printf("failoversmoke: "+format+"\n", a...) }

// start launches one crophe-serve process and parses its listen address.
func start(bin, name string, args ...string) *server {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("%s: stdout pipe: %v", name, err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("%s: starting %s: %v", name, bin, err)
	}
	s := &server{name: name, cmd: cmd}
	running = append(running, s)

	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		if rest, ok := strings.CutPrefix(lines.Text(), "crophe-serve: listening on "); ok {
			s.addr = strings.TrimSpace(rest)
			break
		}
	}
	if s.addr == "" {
		fatalf("%s exited without announcing a listen address", name)
	}
	go func() {
		for lines.Scan() {
		}
	}()
	s.client = serve.NewClient(s.addr)
	return s
}

func (s *server) signal(sig syscall.Signal) {
	if err := s.cmd.Process.Signal(sig); err != nil {
		fatalf("%s: %v: %v", s.name, sig, err)
	}
}

func (s *server) drain() {
	s.signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("%s exited non-zero after SIGTERM: %v", s.name, err)
		}
	case <-time.After(30 * time.Second):
		fatalf("%s did not drain within 30s of SIGTERM", s.name)
	}
}

// getRaw fetches a path and returns status plus the exact body bytes —
// the byte-identity comparison works on these.
func (s *server) getRaw(path string) (int, []byte) {
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		fatalf("%s: GET %s: %v", s.name, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("%s: GET %s: reading body: %v", s.name, path, err)
	}
	return resp.StatusCode, body
}

// coordVars pulls the "coordinator" block out of /debug/vars.
func (s *server) coordVars() map[string]any {
	code, body := s.getRaw("/debug/vars")
	if code != 200 {
		fatalf("%s: /debug/vars = %d", s.name, code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		fatalf("%s: /debug/vars: %v", s.name, err)
	}
	cv, _ := vars["coordinator"].(map[string]any)
	if cv == nil {
		fatalf("%s: /debug/vars has no coordinator block: %s", s.name, body)
	}
	return cv
}

func main() {
	bin := flag.String("bin", "", "path to a built crophe-serve binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "failoversmoke: -bin is required")
		flag.Usage()
		os.Exit(2)
	}
	tmp, err := os.MkdirTemp("", "failoversmoke-*")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(tmp)
	mkdir := func(name string) string {
		d := tmp + "/" + name
		if err := os.Mkdir(d, 0o755); err != nil {
			fatalf("mkdir %s: %v", d, err)
		}
		return d
	}

	const chaosSpec = "drop:0.1,reset:0.05,trunc:0.05,err500:0.05,lat:0.2@2"
	w0 := start(*bin, "worker0", "-checkpoint-dir", mkdir("w0"))
	w1 := start(*bin, "worker1", "-checkpoint-dir", mkdir("w1"))
	shared := mkdir("coord") // primary and standby share it: journals + lease
	coordArgs := []string{
		"-role", "coordinator",
		"-workers", w0.addr + "," + w1.addr,
		"-checkpoint-dir", shared,
		"-heartbeat", "25ms", "-worker-timeout", "250ms", "-poll", "10ms",
		"-chaos-net", chaosSpec, "-chaos-net-seed", "11",
	}
	primary := start(*bin, "primary", coordArgs...)
	standby := start(*bin, "standby", append(coordArgs, "-standby", "-takeover", "200ms")...)
	step("cluster up: primary %s, standby %s, workers %s %s (chaos %s)",
		primary.addr, standby.addr, w0.addr, w1.addr, chaosSpec)

	// The unpromoted standby must refuse traffic.
	if code, body := standby.getRaw("/readyz"); code != 503 || !bytes.Contains(body, []byte("standby")) {
		fatalf("unpromoted standby /readyz = %d %s; want 503 standby", code, body)
	}

	const steps, deadlineMS = 12, 15
	req := serve.SweepRequest{HW: "crophe64", Workload: "helr", Seed: 9, Steps: steps, DeadlineMS: deadlineMS}
	ctx := context.Background()
	st, err := primary.client.StartSweep(ctx, req)
	if err != nil {
		fatalf("StartSweep: %v", err)
	}
	id := st.ID
	step("distributed sweep %s started under transport chaos", id)

	// Freeze the primary once at least one merged rung is journaled: the
	// takeover replays a genuinely mid-flight journal.
	killDeadline := time.Now().Add(120 * time.Second)
	for {
		got, err := primary.client.SweepStatus(ctx, id, false)
		if err != nil {
			fatalf("pre-freeze poll: %v", err)
		}
		if got.Completed >= 1 {
			break
		}
		if time.Now().After(killDeadline) {
			fatalf("no merged rung before the freeze window closed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	primary.signal(syscall.SIGSTOP)
	step("primary SIGSTOPped mid-sweep (partitioned, not dead)")

	// Poll through the client's failover rotation. Until the standby
	// promotes, polls hit a frozen primary (hangs cut by the per-poll
	// deadline) and a 503 standby — both retryable — so the loop
	// tolerates errors until the takeover lands.
	// The transport timeout (not a per-poll context deadline) bounds each
	// attempt against the frozen primary, so the client's failover
	// rotation still gets to run after the hang is cut.
	fc, err := serve.NewFailoverClient([]string{primary.addr, standby.addr},
		serve.WithHTTPClient(&http.Client{Timeout: 2 * time.Second}))
	if err != nil {
		fatalf("NewFailoverClient: %v", err)
	}
	var final *serve.SweepStatus
	doneDeadline := time.Now().Add(180 * time.Second)
	for {
		got, err := fc.SweepStatus(ctx, id, false)
		if err == nil {
			if got.State == "done" {
				final = got
				break
			}
			if got.State == "failed" {
				fatalf("sweep failed across the takeover: %s", got.Error)
			}
		}
		if time.Now().After(doneDeadline) {
			fatalf("sweep not done after takeover: status %+v, err %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.ID != id || len(final.Points) != steps {
		fatalf("post-takeover sweep = id %s, %d points; want %s, %d", final.ID, len(final.Points), id, steps)
	}
	cv := standby.coordVars()
	if cv["active"] != true {
		fatalf("standby finished the sweep without reporting active: %v", cv)
	}
	if epoch, _ := cv["epoch"].(float64); epoch < 2 {
		fatalf("promoted standby at epoch %v; want >= 2", cv["epoch"])
	}
	step("standby promoted (epoch %v) and finished the sweep (%d rungs)", cv["epoch"], steps)

	// Thaw the primary: now a zombie coordinator holding a usurped lease.
	// Its lease heartbeat must fence it — /readyz flips to 503 "fenced" —
	// and its late journal writes are refused, never merged.
	primary.signal(syscall.SIGCONT)
	fenceDeadline := time.Now().Add(30 * time.Second)
	for {
		code, body := primary.getRaw("/readyz")
		if code == 503 && bytes.Contains(body, []byte("fenced")) {
			break
		}
		if time.Now().After(fenceDeadline) {
			fatalf("thawed primary never fenced: /readyz = %d %s", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	step("thawed zombie primary fenced itself (readyz 503 fenced)")

	// Byte-identity: a fresh single-process server answering the same
	// request produces the identical status document — same deterministic
	// job ID, bit-exact raw points — as the standby's merged job.
	single := start(*bin, "single", "-checkpoint-dir", mkdir("single"))
	st2, err := single.client.StartSweep(ctx, req)
	if err != nil {
		fatalf("single-process StartSweep: %v", err)
	}
	if st2.ID != id {
		fatalf("single-process job ID %s != distributed job ID %s", st2.ID, id)
	}
	singleDeadline := time.Now().Add(180 * time.Second)
	for {
		got, err := single.client.SweepStatus(ctx, id, false)
		if err != nil {
			fatalf("single-process poll: %v", err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" {
			fatalf("single-process sweep failed: %s", got.Error)
		}
		if time.Now().After(singleDeadline) {
			fatalf("single-process sweep did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, mergedBody := standby.getRaw("/v1/sweeps/" + id + "?raw=1")
	_, singleBody := single.getRaw("/v1/sweeps/" + id + "?raw=1")
	if !bytes.Equal(mergedBody, singleBody) {
		fatalf("merged status document differs from the single-process one:\nstandby: %s\n single: %s", mergedBody, singleBody)
	}
	step("merged report byte-identical to the single-process run (%d bytes)", len(mergedBody))

	standby.drain()
	primary.drain()
	w0.drain()
	w1.drain()
	single.drain()
	step("drain clean")

	fmt.Println("failoversmoke: PASS")
}

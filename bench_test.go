// Repository-level benchmarks: one per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment and reports the headline
// metric as a custom unit so `go test -bench` output doubles as a results
// table. Figures run in fast mode under -short-like constraints; the
// crophe-bench command runs them at full coverage.
package crophe

import (
	"strings"
	"testing"

	"crophe/internal/bench"
)

func BenchmarkTable1Configs(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table1()
	}
	if !strings.Contains(out, "CROPHE-36") {
		b.Fatal("table 1 incomplete")
	}
}

func BenchmarkTable2AreaPower(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table2()
	}
	if !strings.Contains(out, "Total") {
		b.Fatal("table 2 incomplete")
	}
}

func BenchmarkTable3Params(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table3()
	}
	if !strings.Contains(out, "CraterLake") {
		b.Fatal("table 3 incomplete")
	}
}

func BenchmarkTable4Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Util.PE*100, "PE%_"+sanitize(r.Design))
			}
		}
	}
}

func BenchmarkFigure9Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure9(true)
		if i == 0 {
			// SpeedupSummary is ordered (pairings and workloads in row
			// order), so the emitted metric set is identical run to run.
			for _, ps := range bench.SpeedupSummary(rows) {
				for j, sp := range ps.Speedups {
					b.ReportMetric(sp, "speedup_"+sanitize(ps.Pairing)+"_"+sanitize(ps.Workloads[j]))
				}
			}
		}
	}
}

func BenchmarkFigure10SramSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure10(true)
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].Speedup, "speedup_largest_sram")
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_smallest_sram")
		}
	}
}

func BenchmarkFigure11Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure11(true)
		if i == 0 {
			var mad, full float64
			for _, r := range rows {
				switch r.Design {
				case "MAD":
					mad = r.TimeSec
				case "CROPHE":
					full = r.TimeSec
				}
			}
			if full > 0 {
				b.ReportMetric(mad/full, "ladder_speedup")
			}
		}
	}
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, " ", "")
	s = strings.ReplaceAll(s, "+", "_")
	return s
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Ablations()
		if i == 0 {
			// Report the proportional-vs-uniform PE allocation delta.
			var prop, uni float64
			for _, r := range rows {
				if r.Study == "pe-alloc" {
					if r.Setting == "uniform split" {
						uni = r.TimeSec
					} else {
						prop = r.TimeSec
					}
				}
			}
			if prop > 0 {
				b.ReportMetric(uni/prop, "pe_alloc_gain")
			}
		}
	}
}

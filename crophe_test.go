package crophe

import (
	"strings"
	"testing"

	"crophe/internal/sched"
	"crophe/internal/workload"
)

func TestFacadeCKKSRoundTrip(t *testing.T) {
	params, err := NewTestCKKSParameters(6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if params.Slots() != 32 {
		t.Fatalf("slots %d", params.Slots())
	}
}

func TestFacadeDesignsEvaluate(t *testing.T) {
	cro := CROPHEDesign(HWCROPHE64)
	mad := MADDesign(HWCROPHE64)
	if cro.Name != "CROPHE-64" || mad.Name != "CROPHE-64+MAD" {
		t.Fatal("design names")
	}
	factory := BootstrappingWorkload(ParamsARK)
	rc := cro.Evaluate(factory)
	rm := mad.Evaluate(factory)
	if rc.TimeSec >= rm.TimeSec {
		t.Fatalf("facade: CROPHE %.3g not faster than MAD %.3g", rc.TimeSec, rm.TimeSec)
	}
}

func TestFacadeWorkloadFactories(t *testing.T) {
	for name, f := range map[string]WorkloadFactory{
		"boot":   BootstrappingWorkload(ParamsSHARP),
		"helr":   HELRWorkload(ParamsSHARP),
		"resnet": ResNetWorkload(ParamsSHARP, 20),
	} {
		w := f(workload.RotHoisted, 0)
		if w.TotalOps() == 0 {
			t.Errorf("%s: empty workload", name)
		}
	}
}

func TestFacadeSimulate(t *testing.T) {
	factory := BootstrappingWorkload(ParamsARK)
	w := factory(workload.RotHoisted, 0)
	s := sched.New(HWCROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	r, err := Simulate(HWCROPHE64, w, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeSec <= 0 {
		t.Fatal("simulation time")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) != 9 {
		t.Fatalf("experiment count %d", len(ids))
	}
	out, err := RunExperiment("table3", true)
	if err != nil || !strings.Contains(out, "TABLE III") {
		t.Fatalf("table3: %v", err)
	}
	if _, err := RunExperiment("bogus", true); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

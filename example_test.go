package crophe_test

import (
	"fmt"

	"crophe"
)

// Example is the package quickstart: evaluate the CROPHE design point
// against the MAD baseline on the bootstrapping benchmark.
func Example() {
	design := crophe.CROPHEDesign(crophe.HWCROPHE64)
	baseline := crophe.MADDesign(crophe.HWCROPHE64)
	factory := crophe.BootstrappingWorkload(crophe.ParamsARK)
	sc := design.Evaluate(factory)
	sm := baseline.Evaluate(factory)
	fmt.Println("CROPHE faster than MAD:", sc.TimeSec < sm.TimeSec)
	// Output: CROPHE faster than MAD: true
}

// ExampleSimulateWorkload runs the cycle-level simulator with telemetry
// attached: the result carries ordered per-segment cycles and the
// collector holds a Chrome-trace-exportable record of the run.
func ExampleSimulateWorkload() {
	tel := crophe.NewTelemetry()
	w := crophe.BootstrappingWorkload(crophe.ParamsARK)(crophe.RotHoisted, 0)
	res, err := crophe.SimulateWorkload(crophe.HWCROPHE64, w, crophe.WithTelemetry(tel))
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	fmt.Println("simulated:", res.Cycles > 0)
	fmt.Println("segments ordered:", len(res.PerSegment) == len(w.Segments) && res.PerSegment[0].Name == w.Segments[0].Name)
	fmt.Println("spans recorded:", tel.SpanCount() > 0)
	fmt.Println("counters in result:", len(res.Counters) > 0)
	// tel.WriteChromeTraceFile("out.json") would now export the trace.
	// Output:
	// simulated: true
	// segments ordered: true
	// spans recorded: true
	// counters in result: true
}

module crophe

go 1.22

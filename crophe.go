// Package crophe is the public facade of the CROPHE reproduction: a
// hardware–software co-design for cross-operator dataflow optimisation on
// fully homomorphic encryption accelerators (HPCA 2026).
//
// The package re-exports the main entry points of the internal modules:
//
//   - CKKS — the functional RNS-CKKS library (encode, encrypt, HAdd,
//     HMult, HRot, rescale, bootstrapping kernels);
//   - Workloads — operator-graph generators for the paper's benchmarks;
//   - Scheduler — the CROPHE cross-operator dataflow search plus the MAD
//     baseline policy;
//   - Simulator — the cycle-level accelerator model;
//   - Experiments — generators for every table and figure of the paper;
//   - Telemetry — the cycle-level observability layer (span/counter
//     collection and Chrome-trace export).
//
// Quick start (compile-checked as Example in crophe's example tests):
//
//	design := crophe.CROPHEDesign(crophe.HWCROPHE64)
//	sched := design.Evaluate(crophe.BootstrappingWorkload(crophe.ParamsARK))
//	fmt.Printf("bootstrapping: %.3f ms\n", sched.TimeSec*1e3)
//
// Cycle simulation with telemetry (see ExampleSimulateWorkload):
//
//	tel := crophe.NewTelemetry()
//	w := crophe.BootstrappingWorkload(crophe.ParamsARK)(crophe.RotHoisted, 0)
//	res, err := crophe.SimulateWorkload(crophe.HWCROPHE64, w, crophe.WithTelemetry(tel))
//	// res.PerSegment is ordered; tel.WriteChromeTraceFile("out.json")
//	// exports a Perfetto-loadable trace.
package crophe

import (
	"context"
	"time"

	"crophe/internal/arch"
	"crophe/internal/bench"
	"crophe/internal/ckks"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// Re-exported CKKS types.
type (
	// CKKSParameters fixes a CKKS instance.
	CKKSParameters = ckks.Parameters
	// Ciphertext is a CKKS ciphertext.
	Ciphertext = ckks.Ciphertext
	// Encoder maps complex vectors to plaintexts.
	Encoder = ckks.Encoder
	// Evaluator executes homomorphic operations.
	Evaluator = ckks.Evaluator
	// KeyGenerator creates key material.
	KeyGenerator = ckks.KeyGenerator
)

// NewTestCKKSParameters builds a small functional parameter set
// (logN, levels, alpha).
func NewTestCKKSParameters(logN, levels, alpha int) (*CKKSParameters, error) {
	return ckks.TestParameters(logN, levels, alpha)
}

// Hardware configurations of Table I.
var (
	HWCROPHE64 = arch.CROPHE64
	HWCROPHE36 = arch.CROPHE36
	HWBTS      = arch.BTS
	HWARK      = arch.ARK
	HWSHARP    = arch.SHARP
	HWCLPlus   = arch.CLPlus
)

// Parameter sets of Table III.
var (
	ParamsBTS   = arch.ParamsBTS
	ParamsARK   = arch.ParamsARK
	ParamsSHARP = arch.ParamsSHARP
	ParamsCL    = arch.ParamsCL
)

// Scheduling types.
type (
	// Design is one evaluated design point (hardware + policy + flags).
	Design = sched.Design
	// Schedule is a scheduling result.
	Schedule = sched.Schedule
	// HWConfig is a hardware configuration.
	HWConfig = arch.HWConfig
	// ParamSet is a CKKS parameter set for workload generation.
	ParamSet = arch.ParamSet
	// Workload is an operator-graph benchmark.
	Workload = workload.Workload
	// WorkloadFactory builds a workload per rotation structure.
	WorkloadFactory = sched.WorkloadFactory
	// SimResult is a cycle-simulation result.
	SimResult = sim.Result
	// SegmentCycles is one ordered per-segment entry of SimResult.
	SegmentCycles = sim.SegmentCycles
	// SimOption configures the cycle simulator (telemetry, topology).
	SimOption = sim.Option
	// RotMode selects the rotation structure a workload is generated
	// under.
	RotMode = workload.RotMode
)

// Rotation structures (Table III / §V-B).
const (
	RotMinKS   = workload.RotMinKS
	RotHoisted = workload.RotHoisted
	RotHybrid  = workload.RotHybrid
)

// Telemetry types: a Telemetry collector gathers cycle-level spans and
// counters during scheduling and simulation; a nil *Telemetry is valid
// and disabled (zero-cost).
type (
	// Telemetry is the span/counter collector of the observability layer.
	Telemetry = telemetry.Collector
	// TelemetrySpan is one busy interval of a modeled resource.
	TelemetrySpan = telemetry.Span
	// TelemetryCounter is one aggregated named counter.
	TelemetryCounter = telemetry.Counter
)

// NewTelemetry returns an enabled, empty collector.
func NewTelemetry() *Telemetry { return telemetry.New() }

// WithTelemetry attaches a collector to the cycle simulator.
func WithTelemetry(c *Telemetry) SimOption { return sim.WithTelemetry(c) }

// WithMeshOverride simulates on a w×h PE mesh regardless of the hardware
// configuration's native topology.
func WithMeshOverride(w, h int) SimOption { return sim.WithMeshOverride(w, h) }

// CROPHEDesign returns the full CROPHE design point (fine-grained
// dataflow + NTT decomposition + hybrid rotation) on the given hardware.
func CROPHEDesign(hw *HWConfig) Design {
	return Design{
		Name: hw.Name, HW: hw,
		Dataflow: sched.DataflowCROPHE, NTTDec: true, HybridRot: true,
	}
}

// MADDesign returns the prior-work MAD policy on the given hardware.
func MADDesign(hw *HWConfig) Design {
	return Design{Name: hw.Name + "+MAD", HW: hw, Dataflow: sched.DataflowMAD}
}

// BootstrappingWorkload returns the bootstrapping benchmark factory.
func BootstrappingWorkload(p ParamSet) WorkloadFactory {
	return func(m workload.RotMode, r int) *Workload {
		return workload.Bootstrapping(p, m, r)
	}
}

// HELRWorkload returns the HELR1024 benchmark factory.
func HELRWorkload(p ParamSet) WorkloadFactory {
	return func(m workload.RotMode, r int) *Workload {
		return workload.HELR(p, m, r)
	}
}

// ResNetWorkload returns the encrypted ResNet benchmark factory.
func ResNetWorkload(p ParamSet, layers int) WorkloadFactory {
	return func(m workload.RotMode, r int) *Workload {
		return workload.ResNet(p, layers, m, r)
	}
}

// LookupHW maps a hardware name ("crophe64", "crophe36", "bts", "ark",
// "sharp", "cl") to its Table I configuration.
func LookupHW(name string) (*HWConfig, bool) {
	hw, ok := map[string]*arch.HWConfig{
		"crophe64": arch.CROPHE64, "crophe36": arch.CROPHE36,
		"bts": arch.BTS, "ark": arch.ARK, "sharp": arch.SHARP, "cl": arch.CLPlus,
	}[name]
	return hw, ok
}

// DefaultParamsFor returns the CKKS parameter set a hardware
// configuration natively evaluates under (the Table III pairing; the
// homogeneous CROPHE chips pick by word width).
func DefaultParamsFor(hw *HWConfig) ParamSet {
	if hw.Homogeneous {
		if hw.WordBits == 64 {
			return arch.ParamsARK
		}
		return arch.ParamsSHARP
	}
	return arch.ParamsFor(hw)
}

// LookupWorkload builds the named benchmark workload ("bootstrapping"/
// "boot", "helr"/"helr1024", "resnet20", "resnet110") under parameter set
// p and rotation mode m.
func LookupWorkload(name string, p ParamSet, m RotMode) (*Workload, bool) {
	switch name {
	case "bootstrapping", "boot":
		return workload.Bootstrapping(p, m, 0), true
	case "helr", "helr1024":
		return workload.HELR(p, m, 0), true
	case "resnet20", "resnet-20":
		return workload.ResNet(p, 20, m, 0), true
	case "resnet110", "resnet-110":
		return workload.ResNet(p, 110, m, 0), true
	}
	return nil, false
}

// designOptions translates a design point plus a deadline into scheduler
// options: the deadline (when positive) becomes the deterministic anytime
// candidate budget via BudgetForDeadline, so requests whose deadlines
// land in the same power-of-two bucket get bit-identical schedules.
func designOptions(d Design, deadline time.Duration) sched.Options {
	opt := sched.DefaultOptions(d.Dataflow)
	if d.Clusters > 1 {
		opt.Clusters = d.Clusters
	}
	if deadline > 0 {
		opt.SearchBudget = sched.BudgetForDeadline(deadline)
	}
	return opt
}

// ScheduleWorkload schedules w on the design point with the anytime
// search bounded two ways: deadline (when positive) sets the
// deterministic candidate budget, and ctx cancellation is the wall-clock
// backstop. An expiring budget or context yields a valid best-so-far
// schedule flagged Partial, never an error — the serving layer's
// deadline-propagation contract. NTT decomposition is applied when the
// design asks for it, mirroring Design.Evaluate.
func ScheduleWorkload(ctx context.Context, d Design, w *Workload, deadline time.Duration) (*Schedule, error) {
	if d.NTTDec {
		w = w.DecomposeNTTs()
	}
	return sched.New(d.HW, designOptions(d, deadline)).Schedule(ctx, w)
}

// SimulateWorkloadContext schedules w under ctx/deadline (anytime, like
// ScheduleWorkload) and runs the cycle-level simulator on the chosen
// schedule, returning both so callers can surface the Partial marker.
func SimulateWorkloadContext(ctx context.Context, d Design, w *Workload, deadline time.Duration, opts ...SimOption) (*SimResult, *Schedule, error) {
	if d.NTTDec {
		w = w.DecomposeNTTs()
	}
	return sim.RunContext(ctx, d.HW, designOptions(d, deadline), w, opts...)
}

// MemoizedSchedule evaluates the design on the named workload through the
// process-global schedule cache: identical concurrent requests coalesce
// (single-flight) and repeats are cache hits. Only full-fidelity
// evaluations belong here — deadline-bounded partial schedules must go
// through ScheduleWorkload, as their shape depends on the budget.
// workloadKey must uniquely identify what factory builds.
func MemoizedSchedule(d Design, workloadKey string, factory WorkloadFactory) *Schedule {
	return bench.EvaluateMemoized(d, workloadKey, factory)
}

// ScheduleMemoStats re-exports the schedule-cache counters (hits, misses,
// evictions, size, capacity) for observability endpoints.
func ScheduleMemoStats() bench.MemoStats { return bench.ScheduleMemoStats() }

// ScheduleSummary is the serializable cost surface of a schedule — what
// the serving layer's schedule responses and the memo warm-start
// snapshot carry between processes.
type ScheduleSummary = sched.ScheduleSummary

// MemoSnapshot is the serializable warm-start state of the schedule
// cache, shipped by the coordinator to newly joined workers.
type MemoSnapshot = bench.MemoSnapshot

// MemoSource reports which cache tier answered a summary lookup: "hit"
// (full tier), "warm" (imported snapshot) or "miss" (the search ran).
type MemoSource = bench.MemoSource

// Memo lookup sources (see MemoSource).
const (
	MemoMiss = bench.MemoMiss
	MemoHit  = bench.MemoHit
	MemoWarm = bench.MemoWarm
)

// MemoizedScheduleSummary is the two-tier form of MemoizedSchedule for
// callers that read only the summary fields: the full single-flight LRU
// answers first, then warm-start summaries imported from another
// process's snapshot, and only then does the schedule search run.
func MemoizedScheduleSummary(d Design, workloadKey string, factory WorkloadFactory) (ScheduleSummary, MemoSource) {
	return bench.EvaluateMemoizedSummary(d, workloadKey, factory)
}

// ExportScheduleMemo snapshots the schedule cache for shipment to
// another process (deterministically ordered; in-flight evaluations are
// skipped).
func ExportScheduleMemo() MemoSnapshot { return bench.ExportScheduleMemo() }

// ImportScheduleMemo merges a snapshot into the warm tier, returning how
// many entries were installed. Locally evaluated schedules always win
// over imported summaries.
func ImportScheduleMemo(snap MemoSnapshot) (int, error) { return bench.ImportScheduleMemo(snap) }

// Simulate runs the cycle-level simulator on a schedule. Options attach
// telemetry or override the mesh topology.
func Simulate(hw *HWConfig, w *Workload, s *Schedule, opts ...SimOption) (*SimResult, error) {
	return sim.New(hw, opts...).SimulateSchedule(w, s)
}

// SimulateWorkload schedules w under the CROPHE dataflow policy and runs
// the cycle-level simulator in one step — the shortest public path to an
// ordered per-segment result and (with WithTelemetry) a Chrome trace.
func SimulateWorkload(hw *HWConfig, w *Workload, opts ...SimOption) (*SimResult, error) {
	return sim.Run(hw, sched.DefaultOptions(sched.DataflowCROPHE), w, opts...)
}

// RunExperiment regenerates a paper table or figure by id (table1..table4,
// fig9..fig11). fast trades coverage for runtime.
func RunExperiment(id string, fast bool) (string, error) {
	return bench.Run(id, fast)
}

// Experiments lists the experiment ids.
func Experiments() []string { return bench.Experiments() }

package crophe

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestFacadeParseFaultSpec(t *testing.T) {
	for _, s := range []string{"", "healthy"} {
		spec, err := ParseFaultSpec(s)
		if err != nil || !spec.IsZero() {
			t.Fatalf("ParseFaultSpec(%q) = %+v, %v; want healthy", s, spec, err)
		}
	}
	spec, err := ParseFaultSpec("rows:2,hbm:0.5")
	if err != nil || spec.FailedRows != 2 || spec.HBMFrac != 0.5 {
		t.Fatalf("ParseFaultSpec = %+v, %v", spec, err)
	}
	if _, err := ParseFaultSpec("rows:-1"); err == nil {
		t.Fatal("negative row count accepted")
	}
}

func TestFacadeSimulateDegraded(t *testing.T) {
	spec, err := ParseFaultSpec("rows:1,links:2,banks:4")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFaultMachine(HWCROPHE64, spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	w := BootstrappingWorkload(ParamsARK)(RotHoisted, 0)
	res, s, err := SimulateDegraded(context.Background(), m, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || s == nil || len(s.Segments) == 0 {
		t.Fatalf("degraded run produced no result: %+v", res)
	}
}

func TestFacadeDeadMachineIsTypedError(t *testing.T) {
	_, err := NewFaultMachine(HWCROPHE64, FaultSpec{FailedRows: 8}, 3)
	if !errors.Is(err, ErrMachineDead) {
		t.Fatalf("err = %v; want ErrMachineDead", err)
	}
	if !strings.Contains(err.Error(), "seed 3") {
		t.Fatalf("error does not carry the seed: %v", err)
	}
}

func TestFacadePanicRecoveryCarriesSeed(t *testing.T) {
	m, err := NewFaultMachine(HWCROPHE64, FaultSpec{}, 99)
	if err != nil {
		t.Fatal(err)
	}
	// A nil workload is an invariant violation deep in the scheduler;
	// the facade boundary must surface it as an error carrying the
	// fault seed, not a panic.
	_, _, err = SimulateDegraded(context.Background(), m, nil)
	if err == nil {
		t.Fatal("nil workload did not error")
	}
	if !strings.Contains(err.Error(), "seed 99") {
		t.Fatalf("recovered error does not carry the seed: %v", err)
	}
}

func TestFacadeResilienceSweep(t *testing.T) {
	w := BootstrappingWorkload(ParamsARK)(RotHoisted, 0)
	sw, err := RunResilienceSweep(context.Background(), HWCROPHE64, w, 21, 3, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 3 || sw.Baseline <= 0 {
		t.Fatalf("sweep malformed: %+v", sw)
	}
	prev := math.Inf(1)
	for i := range sw.Points {
		pt := &sw.Points[i]
		if pt.Err != "" {
			t.Fatalf("rung %d infeasible: %s", i, pt.Err)
		}
		if r := pt.Retained(sw.Baseline); r > prev+1e-9 {
			t.Fatalf("retained throughput rose at rung %d", i)
		} else {
			prev = r
		}
	}
	if !strings.Contains(sw.String(), "resilience sweep") {
		t.Fatalf("report missing header:\n%s", sw.String())
	}
}

// Command crophe-sim schedules a workload and executes it on the
// cycle-level accelerator simulator, printing refined timing and resource
// utilisation.
//
// Usage:
//
//	crophe-sim [-hw crophe64|crophe36|bts|ark|sharp|cl]
//	           [-workload bootstrapping|helr|resnet20|resnet110]
//	           [-dataflow crophe|mad] [-clusters N]
//	           [-trace out.json] [-mesh WxH]
//	           [-faults spec -seed N -deadline D]
//	           [-sweep N -seed N -deadline D]
//	crophe-sim -tracecheck trace.json
//
// With -trace, the run records cycle-level telemetry (one span per
// segment, group, and transfer plus per-resource counters) and writes it
// as Chrome trace-event JSON loadable in chrome://tracing or
// https://ui.perfetto.dev. With -mesh, the simulator overrides the
// configuration's PE mesh topology (a what-if knob). -tracecheck
// validates a previously written trace file (well-formed JSON, events
// present, all resource tracks named) and exits non-zero otherwise —
// `make trace-smoke` uses it.
//
// With -faults, the chip is degraded by a deterministic, seed-driven
// fault plan before scheduling (grammar:
// rows:N,lanes:F,links:N,slow:N@F,banks:N,hbm:F,stalls:N@D,stallp:F,
// flip:F,scrub:P — flip injects silent bit corruption at rate F per
// checked kernel, scrub prices a background scrub pass every P cycles)
// and the run reports throughput retained versus the healthy machine,
// plus the priced detect-recompute-escalate integrity outcome when the
// plan carries an SDC dimension. With
// -sweep N, the tool instead runs an N-rung escalating resilience sweep
// and prints the report. -deadline bounds each schedule search through
// the deterministic anytime budget; the best-so-far schedule is used
// when the budget runs out. Malformed -mesh, -faults, or -deadline
// values print usage and exit 2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"crophe"
	"crophe/internal/arch"
	"crophe/internal/cliutil"
	"crophe/internal/fault"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// checkTrace validates a Chrome trace-event file written by -trace: it
// must parse, carry a non-trivial number of duration events, and name
// every resource track the simulator promises to emit.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a trace-event JSON document: %v", path, err)
	}
	spans, counters := 0, 0
	faulted := false
	tracks := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "C":
			counters++
			if strings.HasPrefix(ev.Name, "fault/") {
				faulted = true
			}
		case "M":
			if ev.Name == "process_name" {
				tracks[ev.Args.Name] = true
			}
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: no duration events", path)
	}
	if counters == 0 {
		return fmt.Errorf("%s: no counter events", path)
	}
	want := []string{"Schedule", "PE", "NoC", "SRAM", "HBM"}
	if faulted {
		// A degraded run (fault/* counters present) must also surface its
		// fault activity as a track.
		want = append(want, "Fault")
	}
	for _, w := range want {
		if !tracks[w] {
			return fmt.Errorf("%s: missing track %q (have %d tracks)", path, w, len(tracks))
		}
	}
	fmt.Printf("trace ok: %s (%d spans, %d counter samples, %d tracks)\n",
		path, spans, counters, len(tracks))
	return nil
}

// usageExit reports a malformed flag value, prints usage, and exits 2 —
// the conventional "bad command line" status, distinct from runtime
// failures (exit 1).
func usageExit(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "crophe-sim: "+format+"\n", a...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	hwName := flag.String("hw", "crophe64", "hardware configuration")
	wlName := flag.String("workload", "bootstrapping", "benchmark workload")
	dfName := flag.String("dataflow", "crophe", "scheduling policy")
	clusters := flag.Int("clusters", 1, "CROPHE-p cluster count")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON to this path")
	meshSpec := flag.String("mesh", "", "override the PE mesh as WxH (e.g. 16x4)")
	traceCheck := flag.String("tracecheck", "", "validate a trace file written by -trace, then exit")
	faultSpec := flag.String("faults", "", "degrade the chip by a fault spec (e.g. rows:1,links:2,hbm:0.8,flip:0.001,scrub:100000)")
	seed := flag.Int64("seed", 1, "deterministic seed for fault placement")
	deadlineSpec := flag.String("deadline", "", "bound each schedule search (duration, e.g. 200ms)")
	sweepSteps := flag.Int("sweep", 0, "run an N-rung escalating resilience sweep")
	flag.Parse()

	if *traceCheck != "" {
		if err := checkTrace(*traceCheck); err != nil {
			fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	deadline, err := cliutil.ParseDeadline(*deadlineSpec)
	if err != nil {
		usageExit("%v", err)
	}
	spec, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		usageExit("invalid -faults: %v", err)
	}
	if *sweepSteps < 0 {
		usageExit("invalid -sweep %d (want a positive rung count)", *sweepSteps)
	}
	if *sweepSteps > 0 && !spec.IsZero() {
		usageExit("-sweep and -faults are mutually exclusive (the sweep escalates its own fault specs)")
	}
	degraded := *sweepSteps > 0 || !spec.IsZero()
	if degraded && *meshSpec != "" {
		usageExit("-mesh cannot be combined with -faults or -sweep (fault plans are drawn on the configuration's own mesh)")
	}

	hw, ok := crophe.LookupHW(*hwName)
	if !ok {
		fmt.Fprintf(os.Stderr, "crophe-sim: unknown hardware %q\n", *hwName)
		os.Exit(1)
	}
	params := crophe.DefaultParamsFor(hw)

	w, ok := crophe.LookupWorkload(*wlName, params, workload.RotHoisted)
	if !ok {
		fmt.Fprintf(os.Stderr, "crophe-sim: unknown workload %q\n", *wlName)
		os.Exit(1)
	}

	df := sched.DataflowCROPHE
	if *dfName == "mad" {
		df = sched.DataflowMAD
	}
	opt := sched.DefaultOptions(df)
	opt.Clusters = *clusters
	if df == sched.DataflowCROPHE {
		w = w.DecomposeNTTs()
	}
	if deadline > 0 {
		opt.SearchBudget = sched.BudgetForDeadline(deadline)
	}

	var opts []sim.Option
	var tel *telemetry.Collector
	if *tracePath != "" {
		tel = telemetry.New()
		opts = append(opts, sim.WithTelemetry(tel))
	}
	if *meshSpec != "" {
		mw, mh, err := cliutil.ParseMesh(*meshSpec)
		if err != nil {
			usageExit("invalid -mesh: %v", err)
		}
		opts = append(opts, sim.WithMeshOverride(mw, mh))
	}

	if degraded {
		if err := runDegraded(hw, w, opt, spec, *seed, *sweepSteps, opts, tel, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	s := sched.New(hw, opt).WithTelemetry(tel).Run(w)
	r, err := sim.New(hw, opts...).SimulateSchedule(w, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(r.Describe())
	fmt.Printf("analytical schedule: %.3f ms; cycle simulation: %.3f ms\n",
		s.TimeSec*1e3, r.TimeSec*1e3)
	fmt.Printf("traffic: DRAM %.1f MB, SRAM %.1f MB, NoC %.1f MB\n",
		r.Traffic.DRAM/1e6, r.Traffic.SRAM/1e6, r.Traffic.NoC/1e6)
	if err := writeTrace(tel, *tracePath); err != nil {
		fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
		os.Exit(1)
	}
}

// runDegraded drives the fault-injection modes: a single degraded run
// under -faults, or an escalating resilience sweep under -sweep. An
// invariant violation escaping the degraded stack is recovered into an
// error carrying the fault seed — the one number needed to replay it.
func runDegraded(hw *arch.HWConfig, w *workload.Workload, opt sched.Options, spec fault.Spec,
	seed int64, sweepSteps int, opts []sim.Option, tel *telemetry.Collector, tracePath string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invariant violation under fault seed %d: %v", seed, r)
		}
	}()
	ctx := context.Background()

	if sweepSteps > 0 {
		sw, err := fault.Sweep(hw, seed, sweepSteps, sim.DegradedRunner(ctx, opt, w))
		if err != nil {
			return err
		}
		fmt.Println(sw.String())
		return nil
	}

	plan, err := fault.Generate(hw, spec, seed)
	if err != nil {
		return err
	}
	m, err := fault.NewMachine(hw, plan)
	if err != nil {
		return err
	}
	fmt.Println(m.Describe())
	r, s, err := sim.SimulateDegraded(ctx, m, opt, w, opts...)
	if err != nil {
		return err
	}
	fmt.Println(r.Describe())
	if r.Integrity != nil {
		fmt.Printf("sdc integrity: %.0f checks, %.0f detected, %.0f recomputed, %.0f escalated, penalty %.0f cycles\n",
			r.Integrity.Checks, r.Integrity.Detected, r.Integrity.Recomputed,
			r.Integrity.Escalated, r.Integrity.PenaltyCycles())
	}
	fmt.Printf("degraded schedule: %.3f ms; cycle simulation: %.3f ms\n",
		s.TimeSec*1e3, r.TimeSec*1e3)
	if s.Partial {
		fmt.Println("schedule search cut by deadline: best-so-far schedule used")
	}

	// Baseline the healthy machine with the same options so the report
	// states throughput retained under this fault plan.
	hs := sched.New(hw, opt).Run(w)
	hr, err := sim.New(hw).SimulateSchedule(w, hs)
	if err != nil {
		return fmt.Errorf("healthy baseline: %w", err)
	}
	if r.TimeSec > 0 {
		fmt.Printf("throughput retained vs healthy: %.1f%% (healthy %.3f ms)\n",
			100*hr.TimeSec/r.TimeSec, hr.TimeSec*1e3)
	}
	return writeTrace(tel, tracePath)
}

// writeTrace flushes collected telemetry to tracePath; a nil collector
// is a no-op.
func writeTrace(tel *telemetry.Collector, tracePath string) error {
	if tel == nil {
		return nil
	}
	if err := tel.WriteChromeTraceFile(tracePath); err != nil {
		return err
	}
	fmt.Printf("trace: %d spans, %d counters -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
		tel.SpanCount(), len(tel.Counters()), tracePath)
	return nil
}

// Command crophe-sim schedules a workload and executes it on the
// cycle-level accelerator simulator, printing refined timing and resource
// utilisation.
//
// Usage:
//
//	crophe-sim [-hw crophe64|crophe36|bts|ark|sharp|cl]
//	           [-workload bootstrapping|helr|resnet20|resnet110]
//	           [-dataflow crophe|mad] [-clusters N]
//	           [-trace out.json] [-mesh WxH]
//	crophe-sim -tracecheck trace.json
//
// With -trace, the run records cycle-level telemetry (one span per
// segment, group, and transfer plus per-resource counters) and writes it
// as Chrome trace-event JSON loadable in chrome://tracing or
// https://ui.perfetto.dev. With -mesh, the simulator overrides the
// configuration's PE mesh topology (a what-if knob). -tracecheck
// validates a previously written trace file (well-formed JSON, events
// present, all resource tracks named) and exits non-zero otherwise —
// `make trace-smoke` uses it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// checkTrace validates a Chrome trace-event file written by -trace: it
// must parse, carry a non-trivial number of duration events, and name
// every resource track the simulator promises to emit.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a trace-event JSON document: %v", path, err)
	}
	spans, counters := 0, 0
	tracks := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "C":
			counters++
		case "M":
			if ev.Name == "process_name" {
				tracks[ev.Args.Name] = true
			}
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: no duration events", path)
	}
	if counters == 0 {
		return fmt.Errorf("%s: no counter events", path)
	}
	for _, want := range []string{"Schedule", "PE", "NoC", "SRAM", "HBM"} {
		if !tracks[want] {
			return fmt.Errorf("%s: missing track %q (have %d tracks)", path, want, len(tracks))
		}
	}
	fmt.Printf("trace ok: %s (%d spans, %d counter samples, %d tracks)\n",
		path, spans, counters, len(tracks))
	return nil
}

func main() {
	hwName := flag.String("hw", "crophe64", "hardware configuration")
	wlName := flag.String("workload", "bootstrapping", "benchmark workload")
	dfName := flag.String("dataflow", "crophe", "scheduling policy")
	clusters := flag.Int("clusters", 1, "CROPHE-p cluster count")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON to this path")
	meshSpec := flag.String("mesh", "", "override the PE mesh as WxH (e.g. 16x4)")
	traceCheck := flag.String("tracecheck", "", "validate a trace file written by -trace, then exit")
	flag.Parse()

	if *traceCheck != "" {
		if err := checkTrace(*traceCheck); err != nil {
			fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	hw := map[string]*arch.HWConfig{
		"crophe64": arch.CROPHE64, "crophe36": arch.CROPHE36,
		"bts": arch.BTS, "ark": arch.ARK, "sharp": arch.SHARP, "cl": arch.CLPlus,
	}[*hwName]
	if hw == nil {
		fmt.Fprintf(os.Stderr, "crophe-sim: unknown hardware %q\n", *hwName)
		os.Exit(1)
	}
	params := arch.ParamsFor(hw)
	if hw.Homogeneous {
		if hw.WordBits == 64 {
			params = arch.ParamsARK
		} else {
			params = arch.ParamsSHARP
		}
	}

	var w *workload.Workload
	mode := workload.RotHoisted
	switch *wlName {
	case "bootstrapping", "boot":
		w = workload.Bootstrapping(params, mode, 0)
	case "helr", "helr1024":
		w = workload.HELR(params, mode, 0)
	case "resnet20", "resnet-20":
		w = workload.ResNet(params, 20, mode, 0)
	case "resnet110", "resnet-110":
		w = workload.ResNet(params, 110, mode, 0)
	default:
		fmt.Fprintf(os.Stderr, "crophe-sim: unknown workload %q\n", *wlName)
		os.Exit(1)
	}

	df := sched.DataflowCROPHE
	if *dfName == "mad" {
		df = sched.DataflowMAD
	}
	opt := sched.DefaultOptions(df)
	opt.Clusters = *clusters
	if df == sched.DataflowCROPHE {
		w = w.DecomposeNTTs()
	}

	var opts []sim.Option
	var tel *telemetry.Collector
	if *tracePath != "" {
		tel = telemetry.New()
		opts = append(opts, sim.WithTelemetry(tel))
	}
	if *meshSpec != "" {
		var mw, mh int
		if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &mw, &mh); err != nil || mw < 1 || mh < 1 {
			fmt.Fprintf(os.Stderr, "crophe-sim: invalid -mesh %q (want WxH)\n", *meshSpec)
			os.Exit(1)
		}
		opts = append(opts, sim.WithMeshOverride(mw, mh))
	}

	s := sched.New(hw, opt).WithTelemetry(tel).Run(w)
	r, err := sim.New(hw, opts...).SimulateSchedule(w, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(r.Describe())
	fmt.Printf("analytical schedule: %.3f ms; cycle simulation: %.3f ms\n",
		s.TimeSec*1e3, r.TimeSec*1e3)
	fmt.Printf("traffic: DRAM %.1f MB, SRAM %.1f MB, NoC %.1f MB\n",
		r.Traffic.DRAM/1e6, r.Traffic.SRAM/1e6, r.Traffic.NoC/1e6)
	if tel != nil {
		if err := tel.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans, %d counters -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
			tel.SpanCount(), len(tel.Counters()), *tracePath)
	}
}

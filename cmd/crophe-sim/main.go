// Command crophe-sim schedules a workload and executes it on the
// cycle-level accelerator simulator, printing refined timing and resource
// utilisation.
//
// Usage:
//
//	crophe-sim [-hw crophe64|crophe36|bts|ark|sharp|cl]
//	           [-workload bootstrapping|helr|resnet20|resnet110]
//	           [-dataflow crophe|mad] [-clusters N]
package main

import (
	"flag"
	"fmt"
	"os"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/workload"
)

func main() {
	hwName := flag.String("hw", "crophe64", "hardware configuration")
	wlName := flag.String("workload", "bootstrapping", "benchmark workload")
	dfName := flag.String("dataflow", "crophe", "scheduling policy")
	clusters := flag.Int("clusters", 1, "CROPHE-p cluster count")
	flag.Parse()

	hw := map[string]*arch.HWConfig{
		"crophe64": arch.CROPHE64, "crophe36": arch.CROPHE36,
		"bts": arch.BTS, "ark": arch.ARK, "sharp": arch.SHARP, "cl": arch.CLPlus,
	}[*hwName]
	if hw == nil {
		fmt.Fprintf(os.Stderr, "crophe-sim: unknown hardware %q\n", *hwName)
		os.Exit(1)
	}
	params := arch.ParamsFor(hw)
	if hw.Homogeneous {
		if hw.WordBits == 64 {
			params = arch.ParamsARK
		} else {
			params = arch.ParamsSHARP
		}
	}

	var w *workload.Workload
	mode := workload.RotHoisted
	switch *wlName {
	case "bootstrapping", "boot":
		w = workload.Bootstrapping(params, mode, 0)
	case "helr", "helr1024":
		w = workload.HELR(params, mode, 0)
	case "resnet20", "resnet-20":
		w = workload.ResNet(params, 20, mode, 0)
	case "resnet110", "resnet-110":
		w = workload.ResNet(params, 110, mode, 0)
	default:
		fmt.Fprintf(os.Stderr, "crophe-sim: unknown workload %q\n", *wlName)
		os.Exit(1)
	}

	df := sched.DataflowCROPHE
	if *dfName == "mad" {
		df = sched.DataflowMAD
	}
	opt := sched.DefaultOptions(df)
	opt.Clusters = *clusters
	if df == sched.DataflowCROPHE {
		w = w.DecomposeNTTs()
	}

	s := sched.New(hw, opt).Run(w)
	r, err := sim.New(hw).SimulateSchedule(w, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(r.Describe())
	fmt.Printf("analytical schedule: %.3f ms; cycle simulation: %.3f ms\n",
		s.TimeSec*1e3, r.TimeSec*1e3)
	fmt.Printf("traffic: DRAM %.1f MB, SRAM %.1f MB, NoC %.1f MB\n",
		r.Traffic.DRAM/1e6, r.Traffic.SRAM/1e6, r.Traffic.NoC/1e6)
}

// Command crophe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	crophe-bench [-fast] [-exp table1|table2|table3|table4|fig9|fig10|fig11|ablations|kernels|all] [-json] [-o file] [-trace out.json] [-deadline D]
//	crophe-bench diff [-threshold 0.25] [-metric-tol 1e-6] OLD.json NEW.json
//
// With -json, a machine-readable report (per-experiment wall clock,
// allocation deltas, headline model metrics, measured kernel ns/op and
// ABFT integrity overhead, and search-telemetry counters — schema v4) is
// written to BENCH_<date>.json (override with
// -o) alongside the usual text output. With -trace, a Chrome trace-event
// JSON with one wall-clock span per experiment plus the accumulated
// search counters is written (loadable in chrome://tracing / Perfetto).
// The diff subcommand compares two such reports — either schema version —
// and exits non-zero when the new one regresses: cost fields (wall clock,
// allocations) beyond -threshold, deterministic model metrics drifting
// beyond -metric-tol, or a measured integrity_overhead_frac above the
// absolute 3% ceiling (gated against the NEW report regardless of
// baseline). With -deadline, the run stops launching further
// experiments once the wall-clock budget is spent (plain mode only — a
// truncated report would poison diff baselines). Malformed -deadline
// values print usage and exit 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crophe/internal/bench"
	"crophe/internal/cliutil"
	"crophe/internal/telemetry"
)

// usageExit reports a malformed flag value, prints usage, and exits 2 —
// the conventional "bad command line" status, distinct from runtime
// failures (exit 1).
func usageExit(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "crophe-bench: "+format+"\n", a...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	exp := flag.String("exp", "all", "experiment id or 'all'")
	fast := flag.Bool("fast", false, "reduced coverage for quick runs")
	jsonOut := flag.Bool("json", false, "also write a machine-readable report")
	outPath := flag.String("o", "", "report path (default BENCH_<date>.json)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON to this path")
	deadlineSpec := flag.String("deadline", "", "total wall-clock budget; stop launching experiments once exceeded")
	flag.Parse()

	deadline, err := cliutil.ParseDeadline(*deadlineSpec)
	if err != nil {
		usageExit("%v", err)
	}
	if deadline > 0 && (*jsonOut || *tracePath != "") {
		// A deadline-truncated run covers an unpredictable prefix of the
		// experiments; saving it as a report would poison bench-diff
		// baselines.
		usageExit("-deadline cannot be combined with -json or -trace")
	}

	ids := bench.Experiments()
	if *exp != "all" {
		ids = []string{*exp}
	}
	emit := func(id, out string) {
		fmt.Println(out)
		fmt.Printf("[%s completed]\n\n", id)
	}
	if !*jsonOut && *tracePath == "" {
		// Plain mode: run and print, with per-experiment timing.
		begin := time.Now()
		for i, id := range ids {
			if deadline > 0 && time.Since(begin) > deadline {
				fmt.Printf("[deadline %v reached: skipped %v]\n", deadline, ids[i:])
				break
			}
			start := time.Now()
			out, err := bench.Run(id, *fast)
			if err != nil {
				fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(out)
			fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		return
	}
	var tel *telemetry.Collector
	if *tracePath != "" {
		tel = telemetry.New()
	}
	rep, err := bench.CollectWithTelemetry(ids, *fast, emit, tel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
		os.Exit(1)
	}
	if tel != nil {
		if err := tel.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
	if !*jsonOut {
		return
	}
	path := *outPath
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if err := rep.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", path)
}

func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.5, "relative increase tolerated on wall clock / allocations")
	metricTol := fs.Float64("metric-tol", 1e-6, "relative drift tolerated on deterministic model metrics")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: crophe-bench diff [-threshold f] [-metric-tol f] OLD.json NEW.json")
		return 2
	}
	oldR, err := bench.LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
		return 2
	}
	newR, err := bench.LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
		return 2
	}
	regs := bench.Compare(oldR, newR, *threshold, *metricTol)
	fmt.Printf("%s -> %s (cost threshold %.0f%%, metric tolerance %g)\n",
		fs.Arg(0), fs.Arg(1), *threshold*100, *metricTol)
	fmt.Print(bench.RenderComparison(regs))
	if len(regs) > 0 {
		return 1
	}
	return 0
}

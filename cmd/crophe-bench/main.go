// Command crophe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	crophe-bench [-fast] [-exp table1|table2|table3|table4|fig9|fig10|fig11|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crophe/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	fast := flag.Bool("fast", false, "reduced coverage for quick runs")
	flag.Parse()

	ids := bench.Experiments()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := bench.Run(id, *fast)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

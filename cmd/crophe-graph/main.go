// Command crophe-graph inspects the operator graphs of the benchmark
// workloads: per-segment statistics (operator counts by kind, modmul
// load, data volumes) and optional Graphviz DOT export of a segment.
//
// Usage:
//
//	crophe-graph [-workload bootstrapping|helr|resnet20|resnet110]
//	             [-params ark|bts|sharp|cl] [-rot minks|hoisting|hybrid]
//	             [-nttdec] [-dot segment-name]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crophe/internal/arch"
	"crophe/internal/graph"
	"crophe/internal/workload"
)

func main() {
	wlName := flag.String("workload", "bootstrapping", "benchmark workload")
	psName := flag.String("params", "ark", "parameter set (Table III)")
	rotName := flag.String("rot", "hoisting", "rotation structure (Figure 8)")
	rHyb := flag.Int("rhyb", 4, "hybrid rotation stride")
	nttdec := flag.Bool("nttdec", false, "apply the four-step NTT rewrite")
	dotSeg := flag.String("dot", "", "write the named segment as DOT to stdout")
	flag.Parse()

	params, ok := map[string]arch.ParamSet{
		"ark": arch.ParamsARK, "bts": arch.ParamsBTS,
		"sharp": arch.ParamsSHARP, "cl": arch.ParamsCL,
	}[*psName]
	if !ok {
		fmt.Fprintf(os.Stderr, "crophe-graph: unknown parameter set %q\n", *psName)
		os.Exit(1)
	}
	mode, ok := map[string]workload.RotMode{
		"minks": workload.RotMinKS, "hoisting": workload.RotHoisted, "hybrid": workload.RotHybrid,
	}[*rotName]
	if !ok {
		fmt.Fprintf(os.Stderr, "crophe-graph: unknown rotation mode %q\n", *rotName)
		os.Exit(1)
	}

	var w *workload.Workload
	switch *wlName {
	case "bootstrapping", "boot":
		w = workload.Bootstrapping(params, mode, *rHyb)
	case "helr", "helr1024":
		w = workload.HELR(params, mode, *rHyb)
	case "resnet20":
		w = workload.ResNet(params, 20, mode, *rHyb)
	case "resnet110":
		w = workload.ResNet(params, 110, mode, *rHyb)
	default:
		fmt.Fprintf(os.Stderr, "crophe-graph: unknown workload %q\n", *wlName)
		os.Exit(1)
	}
	if *nttdec {
		w = w.DecomposeNTTs()
	}

	if *dotSeg != "" {
		for _, seg := range w.Segments {
			if seg.Name == *dotSeg {
				if err := seg.G.WriteDOT(os.Stdout, seg.Name); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "crophe-graph: no segment %q\n", *dotSeg)
		os.Exit(1)
	}

	wb := 8.0
	fmt.Printf("workload %s (%s params, %s rotations%s): %d segments, %d total ops, %.2f G modmuls\n\n",
		w.Name, params.Name, mode, dec(*nttdec), len(w.Segments), w.TotalOps(),
		float64(w.TotalModMuls())/1e9)
	fmt.Printf("%-16s %6s %7s %10s %11s %11s %9s\n",
		"segment", "count", "ops", "modmuls", "inter MB", "aux MB", "fingerprint")
	for _, seg := range w.Segments {
		s := seg.G.Summarise(wb)
		fmt.Printf("%-16s %6d %7d %10.2e %11.1f %11.1f %9s\n",
			seg.Name, seg.Count, s.ComputeOps, float64(s.ModMuls),
			s.InterBytes/1e6, s.AuxBytes/1e6, seg.G.Fingerprint()[:8])
	}

	// Aggregate kind histogram.
	kinds := map[graph.OpKind]int{}
	for _, seg := range w.Segments {
		s := seg.G.Summarise(wb)
		for k, c := range s.KindCounts {
			if k.IsCompute() {
				kinds[k] += c * seg.Count
			}
		}
	}
	var names []string
	byName := map[string]int{}
	for k, c := range kinds {
		names = append(names, k.String())
		byName[k.String()] = c
	}
	sort.Strings(names)
	fmt.Printf("\noperator mix (weighted by counts):\n")
	for _, n := range names {
		fmt.Printf("  %-12s %8d\n", n, byName[n])
	}
}

func dec(on bool) string {
	if on {
		return ", NTT-decomposed"
	}
	return ""
}

// Command crophe-sched runs the CROPHE scheduler on a workload and prints
// the discovered dataflow scheme: per-segment groups, pipelined edges,
// shared auxiliaries, traffic and the end-to-end time estimate.
//
// Usage:
//
//	crophe-sched [-hw crophe64|crophe36|bts|ark|sharp|cl]
//	             [-workload bootstrapping|helr|resnet20|resnet110]
//	             [-dataflow crophe|mad] [-nttdec] [-hybrot] [-clusters N]
//	             [-sram MB] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

func main() {
	hwName := flag.String("hw", "crophe64", "hardware configuration")
	wlName := flag.String("workload", "bootstrapping", "benchmark workload")
	dfName := flag.String("dataflow", "crophe", "scheduling policy: crophe or mad")
	nttdec := flag.Bool("nttdec", true, "enable NTT decomposition (§V-B)")
	hybrot := flag.Bool("hybrot", true, "enable hybrid rotation (§V-C)")
	clusters := flag.Int("clusters", 1, "CROPHE-p cluster count")
	sramMB := flag.Float64("sram", 0, "override global SRAM capacity (MB)")
	verbose := flag.Bool("v", false, "print per-segment detail")
	flag.Parse()

	hw := lookupHW(*hwName)
	if hw == nil {
		fmt.Fprintf(os.Stderr, "crophe-sched: unknown hardware %q\n", *hwName)
		os.Exit(1)
	}
	if *sramMB > 0 {
		hw = hw.WithSRAM(*sramMB)
	}
	params := arch.ParamsFor(hw)
	if hw.Homogeneous {
		// CROPHE variants default to the matching baseline's parameters.
		if hw.WordBits == 64 {
			params = arch.ParamsARK
		} else {
			params = arch.ParamsSHARP
		}
	}

	factory := lookupWorkload(*wlName, params)
	if factory == nil {
		fmt.Fprintf(os.Stderr, "crophe-sched: unknown workload %q\n", *wlName)
		os.Exit(1)
	}

	df := sched.DataflowCROPHE
	if *dfName == "mad" {
		df = sched.DataflowMAD
	}
	d := sched.Design{
		Name: hw.Name, HW: hw, Dataflow: df,
		NTTDec:    *nttdec && df == sched.DataflowCROPHE,
		HybridRot: *hybrot && df == sched.DataflowCROPHE,
		Clusters:  *clusters,
	}
	res := d.Evaluate(factory)
	fmt.Println(res.String())
	fmt.Printf("utilisation: PE %.1f%%  NoC %.1f%%  SRAM %.1f%%  DRAM %.1f%%\n",
		res.Util.PE*100, res.Util.NoC*100, res.Util.SRAM*100, res.Util.DRAM*100)

	if *verbose {
		for _, seg := range res.Segments {
			pipelined, shared := 0, 0
			for _, g := range seg.Groups {
				pipelined += g.Pipelined
				shared += g.AuxShared
			}
			fmt.Printf("  segment %-16s ×%-4d %8.3f ms/run, %3d groups, %4d pipelined edges, DRAM %7.1f MB/run\n",
				seg.Name, seg.Count, seg.TimeSec*1e3, len(seg.Groups), pipelined, seg.Traffic.DRAM/1e6)
		}
	}
}

func lookupHW(name string) *arch.HWConfig {
	switch name {
	case "crophe64":
		return arch.CROPHE64
	case "crophe36":
		return arch.CROPHE36
	case "bts":
		return arch.BTS
	case "ark":
		return arch.ARK
	case "sharp":
		return arch.SHARP
	case "cl", "cl+":
		return arch.CLPlus
	}
	return nil
}

func lookupWorkload(name string, p arch.ParamSet) sched.WorkloadFactory {
	switch name {
	case "bootstrapping", "boot":
		return func(m workload.RotMode, r int) *workload.Workload {
			return workload.Bootstrapping(p, m, r)
		}
	case "helr", "helr1024":
		return func(m workload.RotMode, r int) *workload.Workload {
			return workload.HELR(p, m, r)
		}
	case "resnet20", "resnet-20":
		return func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(p, 20, m, r)
		}
	case "resnet110", "resnet-110":
		return func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(p, 110, m, r)
		}
	}
	return nil
}

// Command crophe-serve runs the CROPHE serving layer: a long-running
// HTTP/JSON service exposing schedule, simulate, degraded-simulate and
// resilience-sweep operations with production hardening — admission
// control with load shedding, per-request deadline propagation into the
// scheduler's anytime budget, per-request panic isolation, graceful
// drain on SIGTERM/SIGINT, and crash-safe sweep checkpointing.
//
// Usage:
//
//	crophe-serve [-addr host:port] [-role single|coordinator] [-standby]
//	             [-workers N | -workers url,url,...] [-queue N]
//	             [-queue-wait D] [-drain-timeout D]
//	             [-heartbeat D] [-worker-timeout D] [-poll D]
//	             [-takeover D] [-checkpoint-dir DIR] [-chaos]
//	             [-chaos-net SPEC] [-chaos-net-seed N]
//
// The -workers flag is role-dependent: for the default single role it is
// the numeric request-concurrency bound; for -role=coordinator it is the
// comma-separated list of worker base URLs the coordinator shards sweep
// jobs across (each worker being an ordinary single-role crophe-serve).
//
// -standby (coordinator role only) starts the process passive: it
// watches the primary's lease in the shared -checkpoint-dir and, when
// the lease goes stale past -takeover, promotes itself — replaying the
// sweep journals, bumping the persisted coordinator epoch, and fencing
// the old primary out of workers and journal alike.
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 while draining; on a
//	                            coordinator also 503 when standby, fenced,
//	                            or with zero healthy workers)
//	GET  /debug/vars            admission, request, memo and sweep counters
//	GET  /v1/cluster            role, worker liveness and shard lease state
//	POST /v1/schedule           dataflow search for one workload
//	POST /v1/simulate           schedule + cycle-level simulation
//	POST /v1/simulate-degraded  seeded fault plan + degraded simulation
//	POST /v1/sweeps             start (or re-address) a resilience sweep job
//	GET  /v1/sweeps/{id}        poll a sweep job (?raw=1: exact rungs)
//	GET  /v1/memo/snapshot      export the schedule-memo warm-start snapshot
//	POST /v1/memo/snapshot      import a snapshot into the warm memo tier
//
// A request carries its deadline in the X-Crophe-Deadline header (a Go
// duration) or a deadline_ms body field; a request whose deadline
// expires mid-search returns its best-so-far schedule marked
// "partial": true. Sweep jobs journal each completed rung to
// -checkpoint-dir, so a killed and restarted server resumes from the
// last completed rung and produces a byte-identical journal. -chaos
// honours the chaos_panic request field (handlers panic on purpose) and
// exists for smoke drills only. -chaos-net wraps every
// coordinator→worker link in a deterministic seeded fault injector
// ("drop:0.1,reset:0.05,trunc:0.05,err500:0.1,lat:0.3@5"); with
// -chaos-net-seed the whole run is replayable. Malformed flag values
// print usage and exit 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"crophe/internal/cliutil"
	"crophe/internal/serve"
	"crophe/internal/serve/chaos"
)

// usageExit reports a malformed flag value, prints usage, and exits 2 —
// the conventional "bad command line" status, distinct from runtime
// failures (exit 1).
func usageExit(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "crophe-serve: "+format+"\n", a...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addrSpec := flag.String("addr", ":8080", "listen address (host:port)")
	roleSpec := flag.String("role", "single", `cluster role: "single" or "coordinator"`)
	workersSpec := flag.String("workers", "", "single role: max concurrently executing requests (default: worker pool size); coordinator role: comma-separated worker base URLs")
	queueSpec := flag.String("queue", "", "admission queue depth before load shedding (default 64)")
	queueWaitSpec := flag.String("queue-wait", "", "max time a queued request waits for a slot (default 5s)")
	drainSpec := flag.String("drain-timeout", "", "graceful shutdown drain budget (default 15s)")
	heartbeatSpec := flag.String("heartbeat", "", "coordinator: worker liveness probe period (default 500ms)")
	workerTimeoutSpec := flag.String("worker-timeout", "", "coordinator: silence after which a worker forfeits its shard leases (default 5s)")
	pollSpec := flag.String("poll", "", "coordinator: shard progress poll period (default 100ms)")
	standby := flag.Bool("standby", false, "coordinator: start passive, promote when the primary's lease goes stale")
	takeoverSpec := flag.String("takeover", "", "standby: lease staleness before promotion (default 4x heartbeat)")
	checkpointDir := flag.String("checkpoint-dir", "", "journal sweep jobs here for crash-safe resume (empty: no persistence)")
	chaosPanic := flag.Bool("chaos", false, "honour the chaos_panic request field (smoke drills only)")
	chaosNetSpec := flag.String("chaos-net", "", `coordinator: seeded transport chaos on worker links, e.g. "drop:0.1,reset:0.05,lat:0.3@5" (drills only)`)
	chaosNetSeed := flag.Int64("chaos-net-seed", 0, "seed for -chaos-net decision streams (default 1)")
	flag.Parse()

	cfg := serve.Config{CheckpointDir: *checkpointDir, AllowChaos: *chaosPanic}
	var err error
	if cfg.Addr, err = cliutil.ParseAddr(*addrSpec); err != nil {
		usageExit("%v", err)
	}
	switch *roleSpec {
	case serve.RoleSingle:
		if *workersSpec != "" {
			if cfg.Workers, err = cliutil.ParsePositiveInt("-workers", *workersSpec); err != nil {
				usageExit("%v", err)
			}
		}
	case serve.RoleCoordinator:
		cfg.Role = serve.RoleCoordinator
		cfg.Standby = *standby
		for _, u := range strings.Split(*workersSpec, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.WorkerURLs = append(cfg.WorkerURLs, u)
			}
		}
		if len(cfg.WorkerURLs) == 0 {
			usageExit("-role=coordinator requires -workers with at least one worker URL")
		}
		if cfg.Standby && cfg.CheckpointDir == "" {
			usageExit("-standby requires -checkpoint-dir (the coordinator lease lives there)")
		}
	default:
		usageExit("invalid -role %q (want single or coordinator)", *roleSpec)
	}
	if *standby && cfg.Role != serve.RoleCoordinator {
		usageExit("-standby only applies to -role=coordinator")
	}
	if *takeoverSpec != "" {
		if cfg.TakeoverTimeout, err = cliutil.ParseDeadline(*takeoverSpec); err != nil {
			usageExit("invalid -takeover: %v", err)
		}
	}
	if *chaosNetSpec != "" {
		if cfg.NetChaos, err = chaos.ParseSpec(*chaosNetSpec); err != nil {
			usageExit("invalid -chaos-net: %v", err)
		}
	}
	cfg.NetChaosSeed = *chaosNetSeed
	if *heartbeatSpec != "" {
		if cfg.HeartbeatInterval, err = cliutil.ParseDeadline(*heartbeatSpec); err != nil {
			usageExit("invalid -heartbeat: %v", err)
		}
	}
	if *workerTimeoutSpec != "" {
		if cfg.WorkerTimeout, err = cliutil.ParseDeadline(*workerTimeoutSpec); err != nil {
			usageExit("invalid -worker-timeout: %v", err)
		}
	}
	if *pollSpec != "" {
		if cfg.PollInterval, err = cliutil.ParseDeadline(*pollSpec); err != nil {
			usageExit("invalid -poll: %v", err)
		}
	}
	if *queueSpec != "" {
		if cfg.QueueDepth, err = cliutil.ParsePositiveInt("-queue", *queueSpec); err != nil {
			usageExit("%v", err)
		}
	}
	if *queueWaitSpec != "" {
		if cfg.QueueWait, err = cliutil.ParseDeadline(*queueWaitSpec); err != nil {
			usageExit("invalid -queue-wait: %v", err)
		}
	}
	if *drainSpec != "" {
		if cfg.DrainTimeout, err = cliutil.ParseDeadline(*drainSpec); err != nil {
			usageExit("invalid -drain-timeout: %v", err)
		}
	}

	// Drain on SIGTERM (the orchestrator's stop signal) and SIGINT:
	// readiness flips immediately, in-flight work and the active sweep
	// rung finish under the drain budget, checkpoints stay intact. The
	// handler is installed before the listener announces, so a supervisor
	// that stops us the instant we come up still gets a clean drain
	// instead of the default-disposition kill.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)

	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "crophe-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("crophe-serve: listening on %s\n", srv.Addr())

	<-sig
	fmt.Fprintln(os.Stderr, "crophe-serve: draining")
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "crophe-serve: %v\n", err)
		os.Exit(1)
	}
}

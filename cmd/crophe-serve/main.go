// Command crophe-serve runs the CROPHE serving layer: a long-running
// HTTP/JSON service exposing schedule, simulate, degraded-simulate and
// resilience-sweep operations with production hardening — admission
// control with load shedding, per-request deadline propagation into the
// scheduler's anytime budget, per-request panic isolation, graceful
// drain on SIGTERM/SIGINT, and crash-safe sweep checkpointing.
//
// Usage:
//
//	crophe-serve [-addr host:port] [-workers N] [-queue N]
//	             [-queue-wait D] [-drain-timeout D]
//	             [-checkpoint-dir DIR] [-chaos]
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 while draining)
//	GET  /debug/vars            admission, request, memo and sweep counters
//	POST /v1/schedule           dataflow search for one workload
//	POST /v1/simulate           schedule + cycle-level simulation
//	POST /v1/simulate-degraded  seeded fault plan + degraded simulation
//	POST /v1/sweeps             start (or re-address) a resilience sweep job
//	GET  /v1/sweeps/{id}        poll a sweep job
//
// A request carries its deadline in the X-Crophe-Deadline header (a Go
// duration) or a deadline_ms body field; a request whose deadline
// expires mid-search returns its best-so-far schedule marked
// "partial": true. Sweep jobs journal each completed rung to
// -checkpoint-dir, so a killed and restarted server resumes from the
// last completed rung and produces a byte-identical journal. -chaos
// honours the chaos_panic request field (handlers panic on purpose) and
// exists for smoke drills only. Malformed flag values print usage and
// exit 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"crophe/internal/cliutil"
	"crophe/internal/serve"
)

// usageExit reports a malformed flag value, prints usage, and exits 2 —
// the conventional "bad command line" status, distinct from runtime
// failures (exit 1).
func usageExit(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "crophe-serve: "+format+"\n", a...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addrSpec := flag.String("addr", ":8080", "listen address (host:port)")
	workersSpec := flag.String("workers", "", "max concurrently executing requests (default: worker pool size)")
	queueSpec := flag.String("queue", "", "admission queue depth before load shedding (default 64)")
	queueWaitSpec := flag.String("queue-wait", "", "max time a queued request waits for a slot (default 5s)")
	drainSpec := flag.String("drain-timeout", "", "graceful shutdown drain budget (default 15s)")
	checkpointDir := flag.String("checkpoint-dir", "", "journal sweep jobs here for crash-safe resume (empty: no persistence)")
	chaos := flag.Bool("chaos", false, "honour the chaos_panic request field (smoke drills only)")
	flag.Parse()

	cfg := serve.Config{CheckpointDir: *checkpointDir, AllowChaos: *chaos}
	var err error
	if cfg.Addr, err = cliutil.ParseAddr(*addrSpec); err != nil {
		usageExit("%v", err)
	}
	if *workersSpec != "" {
		if cfg.Workers, err = cliutil.ParsePositiveInt("-workers", *workersSpec); err != nil {
			usageExit("%v", err)
		}
	}
	if *queueSpec != "" {
		if cfg.QueueDepth, err = cliutil.ParsePositiveInt("-queue", *queueSpec); err != nil {
			usageExit("%v", err)
		}
	}
	if *queueWaitSpec != "" {
		if cfg.QueueWait, err = cliutil.ParseDeadline(*queueWaitSpec); err != nil {
			usageExit("invalid -queue-wait: %v", err)
		}
	}
	if *drainSpec != "" {
		if cfg.DrainTimeout, err = cliutil.ParseDeadline(*drainSpec); err != nil {
			usageExit("invalid -drain-timeout: %v", err)
		}
	}

	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "crophe-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("crophe-serve: listening on %s\n", srv.Addr())

	// Drain on SIGTERM (the orchestrator's stop signal) and SIGINT:
	// readiness flips immediately, in-flight work and the active sweep
	// rung finish under the drain budget, checkpoints stay intact.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	fmt.Fprintln(os.Stderr, "crophe-serve: draining")
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "crophe-serve: %v\n", err)
		os.Exit(1)
	}
}

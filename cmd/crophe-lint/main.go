// Command crophe-lint runs the CROPHE domain analyzers (modarith,
// levelcheck, panicpolicy, paramcopy, telemetryguard, faultseed,
// ctxbudget, maporder, locksafe, releasecheck) over the repository. It is
// the multichecker driver wired into CI:
//
//	go run ./cmd/crophe-lint ./...
//
// Exit status: 0 when clean, 1 when any analyzer reports a finding, 2 on
// load or usage errors. Use -list to print the analyzer suite and
// -only=name1,name2 to run a subset. -json emits a machine-readable
// report: to stdout by default, or to the -o path (in which case the
// human-readable findings still print to stdout, so CI problem matchers
// and the report artifact come from one run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crophe/internal/analysis"
)

// jsonFinding is one finding in the -json report. File paths are
// module-relative so the report is stable across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
	Count     int           `json:"count"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	outPath := flag.String("o", "", "write the JSON report to this file (with -json)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: crophe-lint [-list] [-only=names] [-json [-o report.json]] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "crophe-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
		os.Exit(2)
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
		os.Exit(2)
	}

	// relPath maps absolute diagnostic paths to module-relative ones for
	// both the console lines (GitHub problem-matcher friendly) and the
	// JSON report.
	relPath := func(path string) string {
		if rel, err := filepath.Rel(loader.ModDir, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return path
	}

	var findings []jsonFinding
	// Human-readable lines print unless the JSON report itself goes to
	// stdout.
	console := !*jsonOut || *outPath != ""
	for _, dir := range dirs {
		importPath, err := loader.ImportPathFor(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			file := relPath(d.Pos.Filename)
			if console {
				fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			findings = append(findings, jsonFinding{
				File: file, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}

	if *jsonOut {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		report := jsonReport{Analyzers: names, Findings: findings, Count: len(findings)}
		if report.Findings == nil {
			report.Findings = []jsonFinding{} // stable shape: [] rather than null
		}
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
				os.Exit(2)
			}
		} else {
			os.Stdout.Write(data)
		}
	} else if *outPath != "" {
		fmt.Fprintf(os.Stderr, "crophe-lint: -o requires -json\n")
		os.Exit(2)
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "crophe-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

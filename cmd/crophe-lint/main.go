// Command crophe-lint runs the CROPHE domain analyzers (modarith,
// levelcheck, panicpolicy, paramcopy) over the repository. It is the
// multichecker driver wired into CI:
//
//	go run ./cmd/crophe-lint ./...
//
// Exit status: 0 when clean, 1 when any analyzer reports a finding, 2 on
// load or usage errors. Use -list to print the analyzer suite and
// -only=name1,name2 to run a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crophe/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: crophe-lint [-list] [-only=names] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "crophe-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
		os.Exit(2)
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, dir := range dirs {
		importPath, err := loader.ImportPathFor(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crophe-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "crophe-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

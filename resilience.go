package crophe

import (
	"context"
	"fmt"
	"time"

	"crophe/internal/fault"
	"crophe/internal/sched"
	"crophe/internal/sim"
)

// Fault-injection and graceful-degradation surface: deterministic,
// seed-driven hardware faults (failed PE rows, dead or slowed mesh
// links, disabled SRAM banks, throttled HBM, transient stalls), degraded
// scheduling and simulation, and resilience sweeps. See the "Fault model
// & graceful degradation" section of DESIGN.md.

// Fault types.
type (
	// FaultSpec declares how much of each resource class to fail; parse
	// one from a string with ParseFaultSpec.
	FaultSpec = fault.Spec
	// FaultPlan is a spec instantiated under a seed: the concrete rows,
	// links and banks that failed.
	FaultPlan = fault.Plan
	// FaultMachine couples a hardware configuration with a fault plan
	// and serves its degraded effective view.
	FaultMachine = fault.Machine
	// ResilienceSweep is a full escalating-fault sweep result.
	ResilienceSweep = fault.SweepResult
	// ResiliencePoint is one rung of a resilience sweep.
	ResiliencePoint = fault.SweepPoint
)

// Fault error sentinels, matched with errors.Is.
var (
	// ErrMachineDead reports a fault plan that leaves no schedulable
	// machine (all rows failed, mesh partitioned, zero bandwidth).
	ErrMachineDead = fault.ErrMachineDead
	// ErrInfeasible reports a hardware view with a dead resource class.
	ErrInfeasible = sched.ErrInfeasible
)

// ParseFaultSpec parses the -faults grammar:
//
//	rows:N,lanes:F,links:N,slow:N@F,banks:N,hbm:F,stalls:N@D,stallp:F
//
// "" and "healthy" parse to the zero (healthy) spec.
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.ParseSpec(s) }

// NewFaultMachine instantiates a fault spec on hw under a deterministic
// seed and validates that the degraded machine can still run (an
// unschedulable machine is an error matching ErrMachineDead).
func NewFaultMachine(hw *HWConfig, spec FaultSpec, seed int64) (*FaultMachine, error) {
	plan, err := fault.Generate(hw, spec, seed)
	if err != nil {
		return nil, err
	}
	return fault.NewMachine(hw, plan)
}

// WithFaults degrades the simulated chip per the machine's fault plan.
func WithFaults(m *FaultMachine) SimOption { return sim.WithFaults(m) }

// SearchBudgetForDeadline converts a scheduling deadline into the
// deterministic candidate budget of the anytime search (power-of-two
// buckets, so close deadlines map to identical schedules). Assign it to
// nothing directly — pass it through SimulateDegraded's ctx instead, or
// use it when driving internal schedulers by hand.
func SearchBudgetForDeadline(d time.Duration) int { return sched.BudgetForDeadline(d) }

// recoverFaultPanic converts an invariant violation escaping a degraded
// run into a returned error carrying the fault seed — the one number
// needed to replay the failure deterministically.
func recoverFaultPanic(seed int64, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("crophe: invariant violation under fault seed %d: %v", seed, r)
	}
}

// SimulateDegraded schedules and simulates a workload on a degraded
// machine. The context bounds the anytime schedule search: on deadline
// or cancellation the best-so-far valid schedule is used (Partial set on
// the returned Schedule), never an error. A panic escaping the degraded
// stack — an invariant violation some fault combination exposed — is
// recovered into an error carrying the fault seed.
func SimulateDegraded(ctx context.Context, m *FaultMachine, w *Workload, opts ...SimOption) (res *SimResult, s *Schedule, err error) {
	defer recoverFaultPanic(m.Plan.Seed, &err)
	return sim.SimulateDegraded(ctx, m, sched.DefaultOptions(sched.DataflowCROPHE), w, opts...)
}

// RunResilienceSweep degrades hw over steps escalating fault rungs
// (seeded, bit-deterministic) and reports throughput retained at each
// rung. deadline bounds each rung's schedule search via the anytime
// budget; 0 leaves the search unbounded. Panics escaping a rung are
// recovered into the rung's error, tagged with the seed.
func RunResilienceSweep(ctx context.Context, hw *HWConfig, w *Workload, seed int64, steps int, deadline time.Duration) (sw *ResilienceSweep, err error) {
	defer recoverFaultPanic(seed, &err)
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	if deadline > 0 {
		opt.SearchBudget = sched.BudgetForDeadline(deadline)
	}
	return fault.Sweep(hw, seed, steps, sim.DegradedRunner(ctx, opt, w))
}

// ResumeResilienceSweep is the crash-safe, sequential form of
// RunResilienceSweep behind the serving layer's sweep jobs: rungs run one
// at a time in step order, each completed rung is handed to observe
// before the next begins (the checkpoint-journaling hook), and rungs
// listed in done are spliced in verbatim instead of re-running.
//
// ctx is consulted only *between* rungs, and each rung schedules under an
// uncancellable context (the deadline budget alone bounds its search), so
// every completed rung is deterministic per (hw, seed, step, deadline
// bucket): a sweep interrupted by cancellation or a crash and resumed
// from its journaled points produces remaining rungs byte-identical to an
// uninterrupted run. On cancellation the error wraps ctx.Err() and
// carries the seed.
func ResumeResilienceSweep(ctx context.Context, hw *HWConfig, w *Workload, seed int64, steps int, deadline time.Duration,
	done map[int]ResiliencePoint, observe func(ResiliencePoint)) (sw *ResilienceSweep, err error) {
	defer recoverFaultPanic(seed, &err)
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	if deadline > 0 {
		opt.SearchBudget = sched.BudgetForDeadline(deadline)
	}
	runner := sim.DegradedRunner(context.Background(), opt, w)
	return fault.ResumeSweep(ctx, hw, seed, steps, runner, done, observe)
}

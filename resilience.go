package crophe

import (
	"context"
	"fmt"
	"time"

	"crophe/internal/fault"
	"crophe/internal/sched"
	"crophe/internal/sim"
)

// Fault-injection and graceful-degradation surface: deterministic,
// seed-driven hardware faults (failed PE rows, dead or slowed mesh
// links, disabled SRAM banks, throttled HBM, transient stalls), degraded
// scheduling and simulation, and resilience sweeps. See the "Fault model
// & graceful degradation" section of DESIGN.md.

// Fault types.
type (
	// FaultSpec declares how much of each resource class to fail; parse
	// one from a string with ParseFaultSpec.
	FaultSpec = fault.Spec
	// FaultPlan is a spec instantiated under a seed: the concrete rows,
	// links and banks that failed.
	FaultPlan = fault.Plan
	// FaultMachine couples a hardware configuration with a fault plan
	// and serves its degraded effective view.
	FaultMachine = fault.Machine
	// ResilienceSweep is a full escalating-fault sweep result.
	ResilienceSweep = fault.SweepResult
	// ResiliencePoint is one rung of a resilience sweep.
	ResiliencePoint = fault.SweepPoint
)

// Fault error sentinels, matched with errors.Is.
var (
	// ErrMachineDead reports a fault plan that leaves no schedulable
	// machine (all rows failed, mesh partitioned, zero bandwidth).
	ErrMachineDead = fault.ErrMachineDead
	// ErrInfeasible reports a hardware view with a dead resource class.
	ErrInfeasible = sched.ErrInfeasible
)

// ParseFaultSpec parses the -faults grammar:
//
//	rows:N,lanes:F,links:N,slow:N@F,banks:N,hbm:F,stalls:N@D,stallp:F
//
// "" and "healthy" parse to the zero (healthy) spec.
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.ParseSpec(s) }

// NewFaultMachine instantiates a fault spec on hw under a deterministic
// seed and validates that the degraded machine can still run (an
// unschedulable machine is an error matching ErrMachineDead).
func NewFaultMachine(hw *HWConfig, spec FaultSpec, seed int64) (*FaultMachine, error) {
	plan, err := fault.Generate(hw, spec, seed)
	if err != nil {
		return nil, err
	}
	return fault.NewMachine(hw, plan)
}

// WithFaults degrades the simulated chip per the machine's fault plan.
func WithFaults(m *FaultMachine) SimOption { return sim.WithFaults(m) }

// SearchBudgetForDeadline converts a scheduling deadline into the
// deterministic candidate budget of the anytime search (power-of-two
// buckets, so close deadlines map to identical schedules). Assign it to
// nothing directly — pass it through SimulateDegraded's ctx instead, or
// use it when driving internal schedulers by hand.
func SearchBudgetForDeadline(d time.Duration) int { return sched.BudgetForDeadline(d) }

// recoverFaultPanic converts an invariant violation escaping a degraded
// run into a returned error carrying the fault seed — the one number
// needed to replay the failure deterministically.
func recoverFaultPanic(seed int64, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("crophe: invariant violation under fault seed %d: %v", seed, r)
	}
}

// SimulateDegraded schedules and simulates a workload on a degraded
// machine. The context bounds the anytime schedule search: on deadline
// or cancellation the best-so-far valid schedule is used (Partial set on
// the returned Schedule), never an error. A panic escaping the degraded
// stack — an invariant violation some fault combination exposed — is
// recovered into an error carrying the fault seed.
func SimulateDegraded(ctx context.Context, m *FaultMachine, w *Workload, opts ...SimOption) (res *SimResult, s *Schedule, err error) {
	defer recoverFaultPanic(m.Plan.Seed, &err)
	return sim.SimulateDegraded(ctx, m, sched.DefaultOptions(sched.DataflowCROPHE), w, opts...)
}

// SweepOption configures RunResilienceSweepWith; build them with the
// SweepWith* constructors below (aliased from internal/fault).
type SweepOption = fault.SweepOption

// SweepWithJournal hands each freshly computed rung to observe before
// the next begins — the serving layer's checkpoint-journaling hook.
func SweepWithJournal(observe func(ResiliencePoint)) SweepOption { return fault.WithJournal(observe) }

// SweepWithResume splices previously journaled rungs (keyed by step)
// into the result instead of re-running them.
func SweepWithResume(done map[int]ResiliencePoint) SweepOption { return fault.WithResume(done) }

// SweepWithShard restricts the sweep to shard index of count: only rungs
// whose step satisfies step % count == index run. Shards reassemble with
// MergeResilienceShards into a result byte-identical to an unsharded run.
func SweepWithShard(index, count int) SweepOption { return fault.WithShard(index, count) }

// SweepParallel runs rungs concurrently (batch/CLI use); incompatible
// with SweepWithJournal.
func SweepParallel() SweepOption { return fault.WithParallel() }

// RunResilienceSweepWith is the single option-based resilience-sweep
// entry point: it degrades hw over steps escalating fault rungs (seeded,
// bit-deterministic) and reports throughput retained at each rung, with
// options selecting journaling, resume, sharding and parallel execution
// (see internal/fault.RunSweep for the mode contract).
//
// deadline bounds each rung's schedule search via the deterministic
// anytime budget; 0 leaves the search unbounded. Each rung schedules
// under an uncancellable context — ctx is consulted only between rungs
// (or once, before a parallel launch) — so every completed rung is
// deterministic per (hw, seed, step, steps, deadline bucket): sweeps
// interrupted and resumed, or sharded across processes and merged,
// produce reports byte-identical to one uninterrupted single-process
// run. Panics escaping a rung are recovered into an error tagged with
// the seed.
func RunResilienceSweepWith(ctx context.Context, hw *HWConfig, w *Workload, seed int64, steps int, deadline time.Duration,
	opts ...SweepOption) (sw *ResilienceSweep, err error) {
	defer recoverFaultPanic(seed, &err)
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	if deadline > 0 {
		opt.SearchBudget = sched.BudgetForDeadline(deadline)
	}
	runner := sim.DegradedRunner(context.Background(), opt, w)
	return fault.RunSweep(ctx, hw, seed, steps, runner, opts...)
}

// MergeResilienceShards reassembles shard results produced with
// SweepWithShard over the same (hw, seed, steps, deadline) into the full
// sweep, byte-identical to an unsharded run. Overlapping rungs (rerun
// after a shard reassignment) must agree exactly; a missing step is an
// error.
func MergeResilienceShards(steps int, shards ...*ResilienceSweep) (*ResilienceSweep, error) {
	return fault.MergeShards(steps, shards...)
}

// FencedResilienceShard pairs a shard result with the coordinator epoch
// it was produced under, for MergeResilienceShardsFenced.
type FencedResilienceShard = fault.FencedShard

// ErrStaleResilienceShardEpoch marks a shard produced under a
// superseded coordinator epoch (test with errors.Is).
var ErrStaleResilienceShardEpoch = fault.ErrStaleShardEpoch

// MergeResilienceShardsFenced merges like MergeResilienceShards but
// rejects — wrapping ErrStaleResilienceShardEpoch — any shard whose
// epoch differs from the merging coordinator's, so results a zombie
// coordinator was still holding when a standby took over can never
// corrupt the merged report.
func MergeResilienceShardsFenced(steps int, epoch int64, shards ...FencedResilienceShard) (*ResilienceSweep, error) {
	return fault.MergeShardsFenced(steps, epoch, shards...)
}

// RunResilienceSweep runs a full sweep with rungs in parallel, the
// runner bounded by ctx.
//
// Deprecated: use RunResilienceSweepWith (with SweepParallel for the
// concurrent-rungs behaviour this wrapper preserves).
func RunResilienceSweep(ctx context.Context, hw *HWConfig, w *Workload, seed int64, steps int, deadline time.Duration) (sw *ResilienceSweep, err error) {
	defer recoverFaultPanic(seed, &err)
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	if deadline > 0 {
		opt.SearchBudget = sched.BudgetForDeadline(deadline)
	}
	return fault.RunSweep(ctx, hw, seed, steps, sim.DegradedRunner(ctx, opt, w), fault.WithParallel())
}

// ResumeResilienceSweep is the crash-safe, sequential sweep form.
//
// Deprecated: use RunResilienceSweepWith with SweepWithResume and
// SweepWithJournal; this wrapper preserves the old signature.
func ResumeResilienceSweep(ctx context.Context, hw *HWConfig, w *Workload, seed int64, steps int, deadline time.Duration,
	done map[int]ResiliencePoint, observe func(ResiliencePoint)) (*ResilienceSweep, error) {
	return RunResilienceSweepWith(ctx, hw, w, seed, steps, deadline,
		SweepWithResume(done), SweepWithJournal(observe))
}

# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test lint lint-json vet race fuzz bench bench-json bench-diff bench-kernels trace-smoke chaos-smoke serve-smoke cluster-smoke failover-smoke sdc-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis (modarith, levelcheck, panicpolicy,
# paramcopy, telemetryguard, faultseed, ctxbudget, maporder, locksafe,
# releasecheck). ./... includes internal/analysis itself, so the analyzer
# suite is held to its own rules. lint-json additionally writes the
# machine-readable report CI uploads as an artifact.
lint:
	$(GO) run ./cmd/crophe-lint ./...

LINT_REPORT ?= crophe-lint-report.json

lint-json:
	$(GO) run ./cmd/crophe-lint -json -o $(LINT_REPORT) ./...

race:
	$(GO) test -race ./...

# Short smoke run of every fuzz target; raise FUZZTIME for longer campaigns.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzModMath -fuzztime=$(FUZZTIME) ./internal/modmath/
	$(GO) test -run=^$$ -fuzz=FuzzNTTRoundTrip -fuzztime=$(FUZZTIME) ./internal/ntt/
	$(GO) test -run=^$$ -fuzz=FuzzMarshalRoundTrip -fuzztime=$(FUZZTIME) ./internal/ckks/
	$(GO) test -run=^$$ -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/fault/

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every batch-NTT kernel benchmark under the race
# detector: catches data races in the parallel limb dispatch and keeps
# the benchmark code itself compiling and running in CI without paying
# for a real measurement.
bench-kernels:
	$(GO) test -race -run='^$$' -bench BenchmarkBatchNTT -benchtime=1x ./internal/ntt/

# Machine-readable benchmark report (fast mode) and regression diff
# against the committed baseline.
BASELINE ?= BENCH_2026-08-08.json
BENCH_OUT ?= BENCH_$(shell date -u +%Y-%m-%d).json

bench-json:
	$(GO) run ./cmd/crophe-bench -fast -json -o $(BENCH_OUT)

bench-diff: bench-json
	$(GO) run ./cmd/crophe-bench diff $(BASELINE) $(BENCH_OUT)

# Export a Chrome trace from a bootstrapping simulation and check it is
# well-formed, non-trivial JSON (the golden-file test pins exact bytes;
# this smoke-checks the CLI path end to end).
trace-smoke:
	$(GO) run ./cmd/crophe-sim -hw crophe36 -workload boot -trace /tmp/crophe-trace.json
	$(GO) run ./cmd/crophe-sim -tracecheck /tmp/crophe-trace.json

# Chaos smoke: the fault-injection tests under the race detector, a
# seeded degraded run with a trace (validated incl. the Fault track), and
# a deadline-bounded resilience sweep — the graceful-degradation paths
# exercised end to end.
CHAOS_SEED ?= 13

chaos-smoke:
	$(GO) test -race -run 'Fault|Degraded|Resilience|Anytime|Avoiding' ./internal/fault/ ./internal/sim/ ./internal/sched/ ./internal/mapper/ ./internal/noc/ .
	$(GO) run ./cmd/crophe-sim -hw crophe64 -workload boot -faults rows:1,links:2,banks:8,hbm:0.8,stalls:2@150 -seed $(CHAOS_SEED) -deadline 500ms -trace /tmp/crophe-chaos-trace.json
	$(GO) run ./cmd/crophe-sim -tracecheck /tmp/crophe-chaos-trace.json
	$(GO) run ./cmd/crophe-sim -sweep 4 -seed $(CHAOS_SEED) -deadline 200ms

# Serving smoke: build the real crophe-serve binary and drive it end to
# end — health, memoized scheduling, a deadline-expiry partial, degraded
# simulation, chaos panic isolation, a checkpointed sweep, SIGTERM
# drain, and journal recovery across a restart. Pure Go driver, no curl.
SERVE_BIN ?= /tmp/crophe-serve-smoke

serve-smoke:
	$(GO) build -o $(SERVE_BIN) ./cmd/crophe-serve
	$(GO) run ./scripts/servesmoke -bin $(SERVE_BIN)

# Cluster smoke: a real three-process cluster (coordinator + two
# workers), a sharded resilience sweep, one worker SIGKILLed mid-shard,
# the orphaned shard reassigned, and the merged report required to be
# byte-identical to a fresh single-process run of the same request.
cluster-smoke:
	$(GO) build -o $(SERVE_BIN) ./cmd/crophe-serve
	$(GO) run ./scripts/clustersmoke -bin $(SERVE_BIN)

# Fail-over smoke: primary + standby coordinators sharing a checkpoint
# directory under deterministic transport chaos; the primary is frozen
# (SIGSTOP) mid-sweep, the standby promotes off the stale lease and
# finishes byte-identical to a single-process run, and the thawed zombie
# primary must fence itself instead of writing to the usurped journal.
failover-smoke:
	$(GO) build -o $(SERVE_BIN) ./cmd/crophe-serve
	$(GO) run ./scripts/failoversmoke -bin $(SERVE_BIN)

# Silent-data-corruption drill: a degraded crophe-sim run pricing the
# detect-recompute-escalate recovery (malformed flip/scrub specs must
# exit 2), then a sharded sweep with every coordinator→worker link
# flipping one bit of most response bodies — the merged report must stay
# byte-identical to a single-process run, with the refused shard
# payloads visible at /debug/vars.
SIM_BIN ?= /tmp/crophe-sim-smoke

sdc-smoke:
	$(GO) build -o $(SERVE_BIN) ./cmd/crophe-serve
	$(GO) build -o $(SIM_BIN) ./cmd/crophe-sim
	$(GO) run ./scripts/sdcsmoke -bin $(SERVE_BIN) -sim $(SIM_BIN)

clean:
	$(GO) clean ./...

# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test lint vet race fuzz bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis (modarith, levelcheck, panicpolicy, paramcopy).
lint:
	$(GO) run ./cmd/crophe-lint ./...

race:
	$(GO) test -race ./...

# Short smoke run of every fuzz target; raise FUZZTIME for longer campaigns.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzModMath -fuzztime=$(FUZZTIME) ./internal/modmath/
	$(GO) test -run=^$$ -fuzz=FuzzNTTRoundTrip -fuzztime=$(FUZZTIME) ./internal/ntt/
	$(GO) test -run=^$$ -fuzz=FuzzMarshalRoundTrip -fuzztime=$(FUZZTIME) ./internal/ckks/

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...

package boot

import (
	"math"
	"math/big"
	"math/cmplx"
	"math/rand"
	"testing"

	"crophe/internal/ckks"
	"crophe/internal/modmath"
)

type testContext struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	sk     *ckks.SecretKey
	keys   *ckks.EvaluationKeySet
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
	eval   *ckks.Evaluator
	rng    *rand.Rand
}

func newTestContext(t testing.TB, logN, levels, alpha int, rotations []int, sparse int) *testContext {
	t.Helper()
	params, err := ckks.TestParameters(logN, levels, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := ckks.NewTestRand(7)
	kg := ckks.NewKeyGenerator(params, rng)
	var sk *ckks.SecretKey
	if sparse > 0 {
		sk = kg.GenSecretKeySparse(sparse)
	} else {
		sk = kg.GenSecretKey()
	}
	pk := kg.GenPublicKey(sk)
	keys := kg.GenEvaluationKeySet(sk, rotations)
	return &testContext{
		params: params,
		enc:    ckks.NewEncoder(params),
		sk:     sk, keys: keys,
		encr: ckks.NewEncryptor(params, pk, rng),
		decr: ckks.NewDecryptor(params, sk),
		eval: ckks.NewEvaluator(params, keys),
		rng:  rng,
	}
}

func randomReals(rng *rand.Rand, n int, scale float64) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex((rng.Float64()*2-1)*scale, 0)
	}
	return v
}

func maxErr(got, want []complex128) float64 {
	var worst float64
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func TestBSGSSplit(t *testing.T) {
	cases := map[int][2]int{4: {2, 2}, 16: {4, 4}, 64: {8, 8}, 32: {8, 4}, 128: {16, 8}}
	for n, want := range cases {
		n1, n2 := bsgsSplit(n)
		if n1 != want[0] || n2 != want[1] {
			t.Errorf("bsgsSplit(%d) = %d,%d want %v", n, n1, n2, want)
		}
		if n1*n2 != n {
			t.Errorf("bsgsSplit(%d) does not factor", n)
		}
	}
}

func TestLinearTransformValidation(t *testing.T) {
	if _, err := NewLinearTransform(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := NewLinearTransform([][]complex128{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	bad := make([][]complex128, 3)
	for i := range bad {
		bad[i] = make([]complex128, 3)
	}
	if _, err := NewLinearTransform(bad); err == nil {
		t.Error("non-power-of-two size should fail")
	}
}

func TestLinearTransformApplyReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64(), rng.Float64())
		}
	}
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64(), 0)
	}
	got := lt.Apply(v)
	for i := 0; i < n; i++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += m[i][j] * v[j]
		}
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("Apply mismatch at %d", i)
		}
	}
}

func TestBSGSMatVecHomomorphic(t *testing.T) {
	tc := newTestContext(t, 5, 2, 1, nil, 0)
	slots := tc.params.Slots() // 16
	rng := rand.New(rand.NewSource(2))
	m := make([][]complex128, slots)
	for i := range m {
		m[i] = make([]complex128, slots)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64()*2-1, 0)
		}
	}
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate keys with the needed rotations.
	tc = newTestContext(t, 5, 2, 1, lt.Rotations(), 0)

	v := randomReals(tc.rng, slots, 1)
	ct, err := ckks.EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	out, err := lt.Evaluate(tc.eval, tc.enc, ct, Hoisting{})
	if err != nil {
		t.Fatal(err)
	}
	want := lt.Apply(v)
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("BSGS matvec error %g", e)
	}
}

func TestBSGSIdentityMatrix(t *testing.T) {
	tc := newTestContext(t, 5, 2, 1, nil, 0)
	slots := tc.params.Slots()
	lt := Identity(slots)
	tc = newTestContext(t, 5, 2, 1, lt.Rotations(), 0)
	v := randomReals(tc.rng, slots, 1)
	ct, _ := ckks.EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	out, err := lt.Evaluate(tc.eval, tc.enc, ct, MinKS{})
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	if e := maxErr(got, v); e > 1e-2 {
		t.Fatalf("identity matvec error %g", e)
	}
}

func TestRotationStrategiesAgree(t *testing.T) {
	n1 := 4
	keys := map[int]bool{}
	for _, s := range []RotationStrategy{MinKS{}, Hoisting{}, Hybrid{RHyb: 2}} {
		for _, k := range s.Keys(n1) {
			keys[k] = true
		}
	}
	keys[2] = true
	var rots []int
	for k := range keys {
		rots = append(rots, k)
	}
	tc := newTestContext(t, 5, 2, 1, rots, 0)
	v := randomReals(tc.rng, tc.params.Slots(), 1)
	ct, _ := ckks.EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())

	var baseline []*ckks.Ciphertext
	for _, s := range []RotationStrategy{MinKS{}, Hoisting{}, Hybrid{RHyb: 2}} {
		babies, err := s.BabyRotations(tc.eval, ct, n1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(babies) != n1 {
			t.Fatalf("%s: %d rotations", s.Name(), len(babies))
		}
		if baseline == nil {
			baseline = babies
			continue
		}
		for i := range babies {
			got := tc.enc.Decode(tc.decr.Decrypt(babies[i]))
			want := tc.enc.Decode(tc.decr.Decrypt(baseline[i]))
			if e := maxErr(got, want); e > 1e-2 {
				t.Fatalf("%s: baby rotation %d disagrees (err %g)", s.Name(), i, e)
			}
		}
	}
}

func TestCountOpsFormulas(t *testing.T) {
	// §V-C: hybrid vs Min-KS saves ModUp/ModDown; vs Hoisting saves evks.
	n1 := 16
	minks := CountOps(MinKS{}, n1)
	hoist := CountOps(Hoisting{}, n1)
	hyb := CountOps(Hybrid{RHyb: 4}, n1)

	if minks.DistinctEvk != 1 || minks.KeySwitches != n1-1 {
		t.Fatalf("min-ks counts %+v", minks)
	}
	if hoist.DistinctEvk != n1-1 || hoist.KeySwitches != n1-1 {
		t.Fatalf("hoisting counts %+v", hoist)
	}
	if hyb.DistinctEvk <= minks.DistinctEvk || hyb.DistinctEvk >= hoist.DistinctEvk {
		t.Fatalf("hybrid evk count %d not between %d and %d", hyb.DistinctEvk, minks.DistinctEvk, hoist.DistinctEvk)
	}
	// Hybrid evk count formula: r_Hyb keys (stride + fine steps).
	if hyb.DistinctEvk != 4 {
		t.Fatalf("hybrid evks = %d, want 4", hyb.DistinctEvk)
	}
}

func TestFitChebyshevApproximatesSin(t *testing.T) {
	p := FitChebyshev(math.Sin, -3, 3, 31)
	for x := -3.0; x <= 3.0; x += 0.1 {
		if err := math.Abs(p.EvalFloat(x) - math.Sin(x)); err > 1e-9 {
			t.Fatalf("chebyshev fit error %g at %g", err, x)
		}
	}
}

func TestEvaluateChebyshevHomomorphic(t *testing.T) {
	// Approximate exp on [-1, 1] with degree 7 (depth 3 + norm + cmult).
	tc := newTestContext(t, 5, 6, 2, nil, 0)
	p := FitChebyshev(math.Exp, -1, 1, 7)
	v := randomReals(tc.rng, tc.params.Slots(), 1)
	ct, _ := ckks.EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	out, err := EvaluateChebyshev(tc.eval, p, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	for i := range v {
		want := math.Exp(real(v[i]))
		if e := math.Abs(real(got[i]) - want); e > 5e-2 {
			t.Fatalf("slot %d: exp(%g) = %g, got %g", i, real(v[i]), want, real(got[i]))
		}
	}
}

func TestEvalModPolyOnLatticePoints(t *testing.T) {
	// f(m + k·q) ≈ m for small m, |k| ≤ K.
	q := 32.0
	p := EvalModPoly(q, 4, 63)
	for k := -3; k <= 3; k++ {
		for _, m := range []float64{-0.5, -0.1, 0, 0.2, 0.5} {
			t1 := m + float64(k)*q
			got := p.EvalFloat(t1)
			// sine surrogate error is O(m³/q²)
			if e := math.Abs(got - q/(2*math.Pi)*math.Sin(2*math.Pi*m/q)); e > 1e-6 {
				t.Fatalf("eval mod poly off sine at t=%g: %g", t1, e)
			}
			if e := math.Abs(got - m); e > 5e-3 {
				t.Fatalf("eval mod at t=%g: got %g want %g", t1, got, m)
			}
		}
	}
}

func TestC2SThenS2CIsIdentity(t *testing.T) {
	// SlotToCoeff(CoeffToSlot(z)) = z in exact arithmetic: check the
	// plaintext matrices compose to the identity, and that for a slot
	// vector decoded from a *real* coefficient polynomial the extracted
	// halves are real.
	params, err := ckks.TestParameters(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2s := CoeffToSlotMatrices(params)
	s2c := SlotToCoeffMatrices(params)
	n := params.N()
	slots := params.Slots()
	rng := rand.New(rand.NewSource(3))

	// Random real coefficient vector → slot vector via decoding formula.
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
	}
	zeta := zetaPowers(n)
	rot := rotGroup(n)
	z := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		for k := 0; k < n; k++ {
			z[j] += complex(a[k], 0) * zeta[(uint64(k)*rot[j])%uint64(2*n)]
		}
	}

	lo, hi := c2s.ApplyPlain(z)
	for k := 0; k < slots; k++ {
		if math.Abs(imag(lo[k])) > 1e-9 || math.Abs(imag(hi[k])) > 1e-9 {
			t.Fatalf("extracted halves not real at %d", k)
		}
		if math.Abs(real(lo[k])-a[k]) > 1e-9 {
			t.Fatalf("a_lo[%d] = %g want %g", k, real(lo[k]), a[k])
		}
		if math.Abs(real(hi[k])-a[k+slots]) > 1e-9 {
			t.Fatalf("a_hi[%d] = %g want %g", k, real(hi[k]), a[k+slots])
		}
	}
	back := s2c.ApplyPlain(lo, hi)
	if e := maxErr(back, z); e > 1e-9 {
		t.Fatalf("S2C∘C2S identity error %g", e)
	}
}

func TestModRaisePreservesMessage(t *testing.T) {
	// The q0·I overflow lives in COEFFICIENT space: decrypting the raised
	// ciphertext and reading coefficients must give the original
	// coefficients plus integer multiples of q0 (plus encryption noise).
	tc := newTestContext(t, 5, 6, 2, nil, 8)
	b := NewBootstrapper(tc.params, tc.enc, tc.eval, BootstrapConfig{K: 8, SineDeg: 31})
	v := randomReals(tc.rng, tc.params.Slots(), 0.5)
	pt, err := tc.enc.Encode(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)
	raised, err := b.ModRaise(ct, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if raised.Level != tc.params.MaxLevel() {
		t.Fatal("level not raised")
	}

	rq := tc.params.RingQ()
	q0 := float64(tc.params.Q[0])
	dec := tc.decr.Decrypt(raised)
	raw := dec.Value.Copy()
	rq.INTT(raw)
	orig := pt.Value.Copy()
	rq.INTT(orig)

	basis := tc.params.QAtLevel(raised.Level)
	residues := make([]uint64, raised.Level+1)
	maxI := 0.0
	for j := 0; j < rq.N; j++ {
		for i := range residues {
			residues[i] = raw.Coeffs[i][j]
		}
		c, _ := new(big.Float).SetInt(basis.ReconstructCentered(residues)).Float64()
		want := float64(modmath.CenteredLift(orig.Coeffs[0][j], tc.params.Q[0]))
		diff := c - want
		k := math.Round(diff / q0)
		if e := math.Abs(diff - k*q0); e > q0/1e6 {
			t.Fatalf("coeff %d: residual %g not ≡ 0 mod q0 (diff %g)", j, e, diff)
		}
		if math.Abs(k) > maxI {
			maxI = math.Abs(k)
		}
	}
	if maxI > float64(b.K) {
		t.Fatalf("overflow |I| = %g exceeds bound K = %d", maxI, b.K)
	}
	t.Logf("max overflow |I| = %g (bound %d)", maxI, b.K)
}

func TestModRaiseErrors(t *testing.T) {
	tc := newTestContext(t, 5, 3, 1, nil, 8)
	b := NewBootstrapper(tc.params, tc.enc, tc.eval, BootstrapConfig{})
	v := randomReals(tc.rng, 4, 0.1)
	ct, _ := ckks.EncryptAtLevel(tc.enc, tc.encr, v, 1)
	if _, err := b.ModRaise(ct, 2); err == nil {
		t.Error("non-level-0 input should fail")
	}
	ct0, _ := ckks.EncryptAtLevel(tc.enc, tc.encr, v, 0)
	if _, err := b.ModRaise(ct0, 0); err == nil {
		t.Error("target level 0 should fail")
	}
}

func TestBootstrapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap e2e is slow")
	}
	// Small ring, enough levels for C2S(1) + EvalMod(log₂63 + 2) + S2C(1).
	logN, levels := 4, 11
	params, err := ckks.TestParameters(logN, levels, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := ckks.NewTestRand(11)
	kg := ckks.NewKeyGenerator(params, rng)
	sk := kg.GenSecretKeySparse(4)
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)

	cfg := BootstrapConfig{K: 4, SineDeg: 63}
	// Gather rotations before generating keys.
	tmpEval := ckks.NewEvaluator(params, nil)
	b0 := NewBootstrapper(params, enc, tmpEval, cfg)
	keys := kg.GenEvaluationKeySet(sk, b0.Rotations())
	eval := ckks.NewEvaluator(params, keys)
	b := NewBootstrapper(params, enc, eval, cfg)

	encryptor := ckks.NewEncryptor(params, pk, rng)
	decryptor := ckks.NewDecryptor(params, sk)

	v := randomReals(rng, params.Slots(), 0.3)
	ct, err := ckks.EncryptAtLevel(enc, encryptor, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level <= 0 {
		t.Fatalf("bootstrap output at level %d", out.Level)
	}
	got := enc.Decode(decryptor.Decrypt(out))
	// The sine surrogate and the small ring give limited precision —
	// what matters functionally is that the message survives the refresh.
	if e := maxErr(got, v); e > 0.1 {
		t.Fatalf("bootstrap error %g", e)
	}
	t.Logf("bootstrap precision: max error %.3g, output level %d", maxErr(got, v), out.Level)
}

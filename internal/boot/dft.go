package boot

import (
	"math"
	"math/cmplx"

	"crophe/internal/ckks"
)

// The homomorphic DFTs of bootstrapping move data between the coefficient
// and slot domains. With decoding z_j = Σ_k a_k·ζ^{k·5^j} (ζ = e^{iπ/N}),
// CoeffToSlot extracts the two real coefficient halves a_lo = (a_0..a_{N/2-1})
// and a_hi = (a_{N/2}..a_{N-1}) into the slots of two ciphertexts — each a
// plaintext linear transform applied to the ciphertext and its conjugate —
// and SlotToCoeff rebuilds z from them. EvalMod then acts slot-wise on the
// two real-valued ciphertexts. These are exactly the PtMatVecMult (BSGS)
// workloads that dominate bootstrap time in the paper.

// DFTMatrices is a conjugate-pair map out = M1·z + M2·conj(z).
type DFTMatrices struct {
	M1, M2 *LinearTransform
}

// Rotations returns the union of rotation amounts both matrices need.
func (d *DFTMatrices) Rotations() []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range append(d.M1.Rotations(), d.M2.Rotations()...) {
		if !seen[r] && r != 0 {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// CoeffToSlot bundles the two conjugate-pair maps extracting a_lo and a_hi.
type CoeffToSlot struct {
	Lo, Hi *DFTMatrices
}

// SlotToCoeff bundles the two plain linear maps rebuilding the slots:
// z = F1·a_lo + F2·a_hi.
type SlotToCoeff struct {
	F1, F2 *LinearTransform
}

// CoeffToSlotMatrices builds the C2S maps for the parameter ring.
// With E1_{k,j} = conj(ζ^{k·5^j}) (k < N/2) and E2 its shifted twin
// (rows k+N/2), orthogonality of the ±5^j orbit gives
//
//	a_lo = (E1·z + conj(E1·z)) / N,   a_hi = (E2·z + conj(E2·z)) / N,
//
// i.e. each half is the conjugate pair (E/N, conj(E)/N).
func CoeffToSlotMatrices(params *ckks.Parameters) *CoeffToSlot {
	n := params.N()
	slots := n / 2
	zeta := zetaPowers(n)
	rot := rotGroup(n)

	build := func(rowOffset int) *DFTMatrices {
		m1 := make([][]complex128, slots)
		m2 := make([][]complex128, slots)
		for k := 0; k < slots; k++ {
			m1[k] = make([]complex128, slots)
			m2[k] = make([]complex128, slots)
			for j := 0; j < slots; j++ {
				e := cmplx.Conj(zeta[(uint64(k+rowOffset)*rot[j])%uint64(2*n)])
				m1[k][j] = e / complex(float64(n), 0)
				m2[k][j] = cmplx.Conj(e) / complex(float64(n), 0)
			}
		}
		return &DFTMatrices{
			M1: mustLinearTransform(m1, "coeff-to-slot E"),
			M2: mustLinearTransform(m2, "coeff-to-slot conj(E)"),
		}
	}
	return &CoeffToSlot{Lo: build(0), Hi: build(slots)}
}

// SlotToCoeffMatrices builds the inverse maps F1_{j,k} = ζ^{k·5^j} and
// F2_{j,k} = ζ^{(k+N/2)·5^j}.
func SlotToCoeffMatrices(params *ckks.Parameters) *SlotToCoeff {
	n := params.N()
	slots := n / 2
	zeta := zetaPowers(n)
	rot := rotGroup(n)

	f1 := make([][]complex128, slots)
	f2 := make([][]complex128, slots)
	for j := 0; j < slots; j++ {
		f1[j] = make([]complex128, slots)
		f2[j] = make([]complex128, slots)
		for k := 0; k < slots; k++ {
			f1[j][k] = zeta[(uint64(k)*rot[j])%uint64(2*n)]
			f2[j][k] = zeta[(uint64(k+slots)*rot[j])%uint64(2*n)]
		}
	}
	return &SlotToCoeff{
		F1: mustLinearTransform(f1, "slot-to-coeff F1"),
		F2: mustLinearTransform(f2, "slot-to-coeff F2"),
	}
}

// Rotations returns the rotation amounts both C2S maps need.
func (c *CoeffToSlot) Rotations() []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range append(c.Lo.Rotations(), c.Hi.Rotations()...) {
		if !seen[r] && r != 0 {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Rotations returns the rotation amounts both S2C maps need.
func (s *SlotToCoeff) Rotations() []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range append(s.F1.Rotations(), s.F2.Rotations()...) {
		if !seen[r] && r != 0 {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// EvaluateConjPair computes M1·ct + M2·conj(ct) with BSGS linear
// transforms.
func EvaluateConjPair(
	eval *ckks.Evaluator, enc *ckks.Encoder, d *DFTMatrices,
	ct *ckks.Ciphertext, strategy RotationStrategy,
) (*ckks.Ciphertext, error) {
	conj, err := eval.Conjugate(ct)
	if err != nil {
		return nil, err
	}
	t1, err := d.M1.Evaluate(eval, enc, ct, strategy)
	if err != nil {
		return nil, err
	}
	t2, err := d.M2.Evaluate(eval, enc, conj, strategy)
	if err != nil {
		return nil, err
	}
	return eval.Add(t1, t2)
}

// Evaluate runs CoeffToSlot, returning the two real-valued ciphertexts
// (a_lo, a_hi).
func (c *CoeffToSlot) Evaluate(
	eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext,
	strategy RotationStrategy,
) (lo, hi *ckks.Ciphertext, err error) {
	if lo, err = EvaluateConjPair(eval, enc, c.Lo, ct, strategy); err != nil {
		return nil, nil, err
	}
	if hi, err = EvaluateConjPair(eval, enc, c.Hi, ct, strategy); err != nil {
		return nil, nil, err
	}
	return lo, hi, nil
}

// Evaluate runs SlotToCoeff on the two halves.
func (s *SlotToCoeff) Evaluate(
	eval *ckks.Evaluator, enc *ckks.Encoder, lo, hi *ckks.Ciphertext,
	strategy RotationStrategy,
) (*ckks.Ciphertext, error) {
	t1, err := s.F1.Evaluate(eval, enc, lo, strategy)
	if err != nil {
		return nil, err
	}
	t2, err := s.F2.Evaluate(eval, enc, hi, strategy)
	if err != nil {
		return nil, err
	}
	return eval.Add(t1, t2)
}

// ApplyPlain applies C2S in plain arithmetic (reference for tests).
func (c *CoeffToSlot) ApplyPlain(z []complex128) (lo, hi []complex128) {
	conj := conjVec(z)
	lo = addVec(c.Lo.M1.Apply(z), c.Lo.M2.Apply(conj))
	hi = addVec(c.Hi.M1.Apply(z), c.Hi.M2.Apply(conj))
	return lo, hi
}

// ApplyPlain applies S2C in plain arithmetic (reference for tests).
func (s *SlotToCoeff) ApplyPlain(lo, hi []complex128) []complex128 {
	return addVec(s.F1.Apply(lo), s.F2.Apply(hi))
}

func conjVec(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	for i := range v {
		out[i] = cmplx.Conj(v[i])
	}
	return out
}

func addVec(a, b []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func zetaPowers(n int) []complex128 {
	z := make([]complex128, 2*n)
	for t := 0; t < 2*n; t++ {
		z[t] = cmplx.Exp(complex(0, math.Pi*float64(t)/float64(n)))
	}
	return z
}

func rotGroup(n int) []uint64 {
	g := make([]uint64, n/2)
	v := uint64(1)
	for j := range g {
		g[j] = v
		v = v * 5 % uint64(2*n)
	}
	return g
}

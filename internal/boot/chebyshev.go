package boot

import (
	"fmt"
	"math"

	"crophe/internal/ckks"
)

// ChebyshevPoly is a polynomial Σ c_k·T_k(u) in the Chebyshev basis over
// an interval [A, B] (mapped affinely to u ∈ [-1, 1]).
type ChebyshevPoly struct {
	Coeffs []float64
	A, B   float64
}

// Degree returns the polynomial degree.
func (p *ChebyshevPoly) Degree() int { return len(p.Coeffs) - 1 }

// FitChebyshev interpolates f on [a, b] with a degree-d Chebyshev
// polynomial using the Chebyshev nodes of the first kind.
func FitChebyshev(f func(float64) float64, a, b float64, degree int) *ChebyshevPoly {
	m := degree + 1
	nodes := make([]float64, m)
	vals := make([]float64, m)
	for k := 0; k < m; k++ {
		theta := (float64(k) + 0.5) * math.Pi / float64(m)
		u := math.Cos(theta)
		nodes[k] = theta
		vals[k] = f((u+1)/2*(b-a) + a)
	}
	coeffs := make([]float64, m)
	for j := 0; j < m; j++ {
		var s float64
		for k := 0; k < m; k++ {
			s += vals[k] * math.Cos(float64(j)*nodes[k])
		}
		coeffs[j] = 2 * s / float64(m)
	}
	coeffs[0] /= 2
	return &ChebyshevPoly{Coeffs: coeffs, A: a, B: b}
}

// EvalFloat evaluates the polynomial on a plain float (Clenshaw), the
// reference for homomorphic evaluation tests.
func (p *ChebyshevPoly) EvalFloat(x float64) float64 {
	u := (x-p.A)/(p.B-p.A)*2 - 1
	var b1, b2 float64
	for k := len(p.Coeffs) - 1; k >= 1; k-- {
		b1, b2 = 2*u*b1-b2+p.Coeffs[k], b1
	}
	return u*b1 - b2 + p.Coeffs[0]
}

// EvaluateChebyshev computes p(ct) homomorphically. The input slots must
// lie in [A, B]. Depth used is ⌈log₂ degree⌉ + 2 levels (basis recursion
// plus the affine normalisation and the coefficient multiply).
//
// The Chebyshev basis is built with the product recurrences
// T_{2k} = 2T_k²−1 and T_{a+b} = 2·T_a·T_b − T_{a−b}, giving O(log d)
// multiplicative depth — the same HMult/CMult cascade the paper's EvalMod
// stage lowers onto the accelerator.
func EvaluateChebyshev(eval *ckks.Evaluator, p *ChebyshevPoly, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	d := p.Degree()
	if d < 1 {
		return nil, fmt.Errorf("boot: chebyshev degree must be ≥ 1")
	}
	// Affine map to u ∈ [-1, 1]: u = (2·x − (A+B)) / (B−A).
	u := eval.MulConst(ct, 2/(p.B-p.A))
	u, err := eval.Rescale(u)
	if err != nil {
		return nil, err
	}
	u = eval.AddConst(u, -(p.A+p.B)/(p.B-p.A))

	basis, err := chebyshevBasis(eval, u, d)
	if err != nil {
		return nil, err
	}

	// Combine Σ_{k≥1} c_k·T_k then add c_0.
	var acc *ckks.Ciphertext
	for k := 1; k <= d; k++ {
		if math.Abs(p.Coeffs[k]) < 1e-13 {
			continue
		}
		term := eval.MulConst(basis[k], p.Coeffs[k])
		term, err := eval.Rescale(term)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = term
		} else if acc, err = eval.Add(acc, term); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		// Constant polynomial: encode c_0 on top of a zeroed ciphertext.
		zero, err := eval.Sub(u, u)
		if err != nil {
			return nil, err
		}
		return eval.AddConst(zero, p.Coeffs[0]), nil
	}
	return eval.AddConst(acc, p.Coeffs[0]), nil
}

// chebyshevBasis returns T_1..T_d evaluated at u (slots in [-1, 1]).
func chebyshevBasis(eval *ckks.Evaluator, u *ckks.Ciphertext, d int) (map[int]*ckks.Ciphertext, error) {
	basis := map[int]*ckks.Ciphertext{1: u}
	var build func(k int) (*ckks.Ciphertext, error)
	build = func(k int) (*ckks.Ciphertext, error) {
		if ct, ok := basis[k]; ok {
			return ct, nil
		}
		a := (k + 1) / 2
		b := k / 2 // a + b = k, a − b ∈ {0, 1}
		ta, err := build(a)
		if err != nil {
			return nil, err
		}
		tb, err := build(b)
		if err != nil {
			return nil, err
		}
		// T_k = 2·T_a·T_b − T_{a−b}
		prod, err := eval.MulRelin(ta, tb)
		if err != nil {
			return nil, err
		}
		if prod, err = eval.Rescale(prod); err != nil {
			return nil, err
		}
		if prod, err = eval.Add(prod, prod); err != nil { // ×2 without a level
			return nil, err
		}
		var tk *ckks.Ciphertext
		if a == b { // T_{a−b} = T_0 = 1
			tk = eval.AddConst(prod, -1)
		} else { // T_{a−b} = T_1 = u
			if tk, err = eval.Sub(prod, basis[1]); err != nil {
				return nil, err
			}
		}
		basis[k] = tk
		return tk, nil
	}
	// T_0 is handled implicitly by the caller via AddConst.
	for k := 2; k <= d; k++ {
		if _, err := build(k); err != nil {
			return nil, err
		}
	}
	return basis, nil
}

// EvalModPoly returns the Chebyshev approximation of the modular-reduction
// surrogate used by bootstrapping: f(t) = (q/2π)·sin(2π·t/q) on
// t ∈ [−K·q, K·q]. For |m| ≪ q the sine agrees with t mod q on the lattice
// points t = m + k·q.
func EvalModPoly(q float64, K int, degree int) *ChebyshevPoly {
	f := func(t float64) float64 {
		return q / (2 * math.Pi) * math.Sin(2*math.Pi*t/q)
	}
	bound := float64(K) * q
	return FitChebyshev(f, -bound, bound, degree)
}

// Package boot implements the CKKS bootstrapping kernels the paper's
// workloads are built from: BSGS plaintext matrix–vector multiplication
// (Algorithm 1), the CoeffToSlot/SlotToCoeff homomorphic DFTs, Chebyshev
// polynomial evaluation for EvalMod, and the three baby-step rotation
// strategies of Figure 8 (Min-KS, Hoisting, Hybrid) whose dataflow
// trade-off motivates the hybrid-rotation optimisation.
package boot

import (
	"fmt"
	"math"
	"sort"

	"crophe/internal/ckks"
)

// LinearTransform is an n×n plaintext matrix stored as its generalised
// diagonals, ready for BSGS evaluation on a ciphertext whose slots hold the
// input vector. n must equal the parameter slot count.
type LinearTransform struct {
	N1, N2 int // BSGS split, N1·N2 ≥ n with N1 baby steps
	// diags[d] is the d-th generalised diagonal: diags[d][j] = M[j][(j+d) mod n].
	// Only non-zero diagonals are stored.
	diags map[int][]complex128
	n     int
}

// NewLinearTransform extracts the diagonals of a dense matrix and picks a
// BSGS split n = n1·n2 with n1 ≈ √n (n1 chosen as a divisor power of two).
func NewLinearTransform(matrix [][]complex128) (*LinearTransform, error) {
	n := len(matrix)
	if n == 0 {
		return nil, fmt.Errorf("boot: empty matrix")
	}
	for i := range matrix {
		if len(matrix[i]) != n {
			return nil, fmt.Errorf("boot: matrix is not square (row %d has %d cols)", i, len(matrix[i]))
		}
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("boot: matrix size %d must be a power of two", n)
	}
	lt := &LinearTransform{diags: make(map[int][]complex128), n: n}
	for d := 0; d < n; d++ {
		diag := make([]complex128, n)
		nz := false
		for j := 0; j < n; j++ {
			diag[j] = matrix[j][(j+d)%n]
			if diag[j] != 0 {
				nz = true
			}
		}
		if nz {
			lt.diags[d] = diag
		}
	}
	lt.N1, lt.N2 = bsgsSplit(n)
	return lt, nil
}

// bsgsSplit picks n1 = 2^ceil(log2(√n)) and n2 = n/n1.
func bsgsSplit(n int) (n1, n2 int) {
	n1 = 1
	for n1*n1 < n {
		n1 <<= 1
	}
	return n1, n / n1
}

// Rotations returns every rotation amount the BSGS evaluation needs:
// baby steps 1..N1−1 and giant steps N1·j for j = 1..N2−1 — the key set
// the KeyGenerator must provide.
func (lt *LinearTransform) Rotations() []int {
	var rots []int
	for i := 1; i < lt.N1; i++ {
		rots = append(rots, i)
	}
	for j := 1; j < lt.N2; j++ {
		rots = append(rots, lt.N1*j)
	}
	return rots
}

// Diagonals returns the stored non-zero diagonal indices in ascending
// order — the deterministic iteration order for anything that accumulates
// across diagonals.
func (lt *LinearTransform) Diagonals() []int {
	out := make([]int, 0, len(lt.diags))
	for d := range lt.diags {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// rotateSlice circularly rotates v left by r.
func rotateSlice(v []complex128, r int) []complex128 {
	n := len(v)
	r = ((r % n) + n) % n
	out := make([]complex128, n)
	for i := range v {
		out[i] = v[(i+r)%n]
	}
	return out
}

// Apply multiplies the matrix with a plaintext vector — the reference the
// homomorphic evaluation is tested against.
func (lt *LinearTransform) Apply(v []complex128) []complex128 {
	out := make([]complex128, lt.n)
	// Accumulate diagonals in index order: complex addition rounds
	// non-associatively, so summing in map order would make the reference
	// vector (and every tolerance comparison against it) run-dependent.
	for _, d := range lt.Diagonals() {
		diag := lt.diags[d]
		rot := rotateSlice(v, d)
		for j := range out {
			out[j] += diag[j] * rot[j]
		}
	}
	return out
}

// Evaluate computes M × ct homomorphically with the BSGS method of
// Algorithm 1. The rotation strategy computes the baby-step rotations
// (Min-KS, Hoisting or Hybrid — all functionally equivalent).
func (lt *LinearTransform) Evaluate(
	eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext,
	strategy RotationStrategy,
) (*ckks.Ciphertext, error) {
	if lt.n != 1<<uint(slotsLog(lt.n)) {
		return nil, fmt.Errorf("boot: bad slot count %d", lt.n)
	}
	// Baby-step rotations ct_i for i = 0..N1-1 (Algorithm 1 lines 1–2).
	babies, err := strategy.BabyRotations(eval, ct, lt.N1)
	if err != nil {
		return nil, err
	}

	var acc *ckks.Ciphertext // ct' (line 3)
	for j := 0; j < lt.N2; j++ {
		var inner *ckks.Ciphertext // r (line 5)
		for i := 0; i < lt.N1; i++ {
			d := lt.N1*j + i
			diag, ok := lt.diags[d%lt.n]
			if !ok {
				continue
			}
			// Rot_{-n1·j}(diag) aligns the diagonal with the un-rotated
			// giant step (line 7).
			shifted := rotateSlice(diag, -lt.N1*j)
			pt, err := enc.Encode(shifted, babies[i].Level)
			if err != nil {
				return nil, err
			}
			term, err := eval.MulPlain(babies[i], pt)
			if err != nil {
				return nil, err
			}
			if inner == nil {
				inner = term
			} else if inner, err = eval.Add(inner, term); err != nil {
				return nil, err
			}
		}
		if inner == nil {
			continue
		}
		// Giant-step rotation (line 8).
		if j > 0 {
			if inner, err = eval.Rotate(inner, lt.N1*j); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = inner
		} else if acc, err = eval.Add(acc, inner); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("boot: zero matrix")
	}
	// HRescale (line 9).
	return eval.Rescale(acc)
}

func slotsLog(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Identity returns the n×n identity transform, handy in tests.
func Identity(n int) *LinearTransform {
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
		m[i][i] = 1
	}
	return mustLinearTransform(m, "identity")
}

// mustLinearTransform wraps NewLinearTransform for matrices that are
// square by construction. A failure here is a builder bug, not a
// data-dependent condition, so it panics with the matrix role and shape
// for context.
func mustLinearTransform(m [][]complex128, role string) *LinearTransform {
	lt, err := NewLinearTransform(m)
	if err != nil {
		panic(fmt.Sprintf("boot: %s transform (%d rows): %v", role, len(m), err))
	}
	return lt
}

// ScaleDiag scales every stored diagonal by c (used to fold constant
// factors like 1/N into the DFT matrices).
func (lt *LinearTransform) ScaleDiag(c complex128) {
	for _, d := range lt.diags {
		for j := range d {
			d[j] *= c
		}
	}
}

// NumDiagonals reports how many non-zero diagonals are stored.
func (lt *LinearTransform) NumDiagonals() int { return len(lt.diags) }

// math import is used by companion files in this package.
var _ = math.Pi

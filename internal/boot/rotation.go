package boot

import (
	"fmt"

	"crophe/internal/ckks"
)

// RotationStrategy produces the baby-step rotations ct_0..ct_{n1-1} needed
// by BSGS (Algorithm 1 line 2). The three implementations mirror Figure 8
// of the paper. They are functionally identical — the difference is the
// operator/key structure, which is what the scheduler exploits:
//
//   - MinKS (ARK):     n1−1 dependent unit rotations, a single evk.
//   - Hoisting (MAD):  n1−1 independent rotations, n1−1 distinct evks,
//     shared Decomp/ModUp in hardware.
//   - Hybrid (CROPHE): coarse Min-KS steps of stride r_Hyb, fine hoisted
//     steps 1..r_Hyb−1 from each coarse result; r_Hyb evks total.
type RotationStrategy interface {
	// BabyRotations returns [ct, Rot_1(ct), ..., Rot_{n1-1}(ct)].
	BabyRotations(eval *ckks.Evaluator, ct *ckks.Ciphertext, n1 int) ([]*ckks.Ciphertext, error)
	// Keys returns the rotation amounts whose evks must exist.
	Keys(n1 int) []int
	// Name identifies the strategy in logs and experiment rows.
	Name() string
}

// MinKS rotates by one unit repeatedly: ct_i = Rot_1(ct_{i-1}).
type MinKS struct{}

// Name implements RotationStrategy.
func (MinKS) Name() string { return "min-ks" }

// Keys implements RotationStrategy.
func (MinKS) Keys(n1 int) []int {
	if n1 <= 1 {
		return nil
	}
	return []int{1}
}

// BabyRotations implements RotationStrategy.
func (MinKS) BabyRotations(eval *ckks.Evaluator, ct *ckks.Ciphertext, n1 int) ([]*ckks.Ciphertext, error) {
	out := make([]*ckks.Ciphertext, n1)
	out[0] = ct
	for i := 1; i < n1; i++ {
		r, err := eval.Rotate(out[i-1], 1)
		if err != nil {
			return nil, fmt.Errorf("boot: min-ks step %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// Hoisting rotates the original ciphertext by each amount independently.
type Hoisting struct{}

// Name implements RotationStrategy.
func (Hoisting) Name() string { return "hoisting" }

// Keys implements RotationStrategy.
func (Hoisting) Keys(n1 int) []int {
	ks := make([]int, 0, n1-1)
	for i := 1; i < n1; i++ {
		ks = append(ks, i)
	}
	return ks
}

// BabyRotations implements RotationStrategy using the evaluator's real
// hoisted key-switching (Decomp/ModUp computed once, §V-C / Figure 8b).
func (Hoisting) BabyRotations(eval *ckks.Evaluator, ct *ckks.Ciphertext, n1 int) ([]*ckks.Ciphertext, error) {
	amounts := make([]int, 0, n1-1)
	for i := 1; i < n1; i++ {
		amounts = append(amounts, i)
	}
	rotated, err := eval.RotateHoisted(ct, amounts)
	if err != nil {
		return nil, fmt.Errorf("boot: hoisted rotations: %w", err)
	}
	out := make([]*ckks.Ciphertext, n1)
	out[0] = ct
	for i := 1; i < n1; i++ {
		out[i] = rotated[i]
	}
	return out, nil
}

// Hybrid combines the two: coarse Min-KS strides of RHyb, then fine
// hoisted rotations within each stride (Figure 8c).
type Hybrid struct {
	RHyb int
}

// Name implements RotationStrategy.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(r=%d)", h.RHyb) }

// Keys implements RotationStrategy.
func (h Hybrid) Keys(n1 int) []int {
	ks := []int{h.RHyb}
	for i := 1; i < h.RHyb && i < n1; i++ {
		ks = append(ks, i)
	}
	return ks
}

// BabyRotations implements RotationStrategy.
func (h Hybrid) BabyRotations(eval *ckks.Evaluator, ct *ckks.Ciphertext, n1 int) ([]*ckks.Ciphertext, error) {
	if h.RHyb < 1 {
		return nil, fmt.Errorf("boot: hybrid stride %d must be ≥ 1", h.RHyb)
	}
	out := make([]*ckks.Ciphertext, n1)
	coarse := ct
	for base := 0; base < n1; base += h.RHyb {
		if base > 0 {
			// Coarse Min-KS step by r_Hyb from the previous coarse result.
			c, err := eval.Rotate(coarse, h.RHyb)
			if err != nil {
				return nil, fmt.Errorf("boot: hybrid coarse step %d: %w", base, err)
			}
			coarse = c
		}
		out[base] = coarse
		// Fine hoisted steps from this coarse anchor (shared ModUp).
		var fine []int
		for f := 1; f < h.RHyb && base+f < n1; f++ {
			fine = append(fine, f)
		}
		if len(fine) > 0 {
			rotated, err := eval.RotateHoisted(coarse, fine)
			if err != nil {
				return nil, fmt.Errorf("boot: hybrid fine steps at %d: %w", base, err)
			}
			for _, f := range fine {
				out[base+f] = rotated[f]
			}
		}
	}
	return out, nil
}

// OpCount summarises the operator budget of a strategy for n1 baby steps —
// the quantities §V-C trades off: key-switches performed and distinct evks
// loaded.
type OpCount struct {
	KeySwitches int
	DistinctEvk int
}

// CountOps returns the static operator counts for each strategy, matching
// the formulas in §V-C of the paper.
func CountOps(s RotationStrategy, n1 int) OpCount {
	switch st := s.(type) {
	case MinKS:
		return OpCount{KeySwitches: n1 - 1, DistinctEvk: min(1, n1-1)}
	case Hoisting:
		return OpCount{KeySwitches: n1 - 1, DistinctEvk: n1 - 1}
	case Hybrid:
		coarse := (n1+st.RHyb-1)/st.RHyb - 1
		fine := n1 - 1 - coarse
		evk := 1 // the r_Hyb stride key
		if st.RHyb > 1 {
			evk += min(st.RHyb-1, n1-1)
		}
		return OpCount{KeySwitches: coarse + fine, DistinctEvk: evk}
	default:
		return OpCount{}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package boot

import (
	"fmt"

	"crophe/internal/ckks"
	"crophe/internal/modmath"
	"crophe/internal/poly"
)

// Bootstrapper refreshes an exhausted (level-0) ciphertext back to a high
// level with the sparse-packed pipeline the paper's bootstrapping workload
// uses: ModRaise → CoeffToSlot → EvalMod → SlotToCoeff.
type Bootstrapper struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	eval   *ckks.Evaluator

	c2s     *CoeffToSlot
	s2c     *SlotToCoeff
	evalMod *ChebyshevPoly

	// K bounds the ModRaise overflow polynomial |I| ≤ K; it must match
	// the secret's sparsity.
	K int
	// Strategy computes the BSGS baby-step rotations inside C2S/S2C.
	Strategy RotationStrategy
}

// BootstrapConfig tunes the bootstrapper.
type BootstrapConfig struct {
	K        int // overflow bound (default 8)
	SineDeg  int // Chebyshev degree for EvalMod (default 63)
	Strategy RotationStrategy
}

// NewBootstrapper precomputes the DFT matrices and the EvalMod polynomial.
func NewBootstrapper(params *ckks.Parameters, enc *ckks.Encoder, eval *ckks.Evaluator, cfg BootstrapConfig) *Bootstrapper {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.SineDeg == 0 {
		cfg.SineDeg = 63
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Hoisting{}
	}
	// EvalMod operates on t = m + c·I with c = q_0/Δ; approximate
	// f(t) = (c/2π)·sin(2π·t/c) on [−(K+1)·c, (K+1)·c].
	c := float64(params.Q[0]) / params.Scale
	return &Bootstrapper{
		params:   params,
		enc:      enc,
		eval:     eval,
		c2s:      CoeffToSlotMatrices(params),
		s2c:      SlotToCoeffMatrices(params),
		evalMod:  EvalModPoly(c, cfg.K+1, cfg.SineDeg),
		K:        cfg.K,
		Strategy: cfg.Strategy,
	}
}

// Rotations returns every rotation amount the pipeline needs, so callers
// can generate the key set up front.
func (b *Bootstrapper) Rotations() []int {
	seen := map[int]bool{}
	var out []int
	add := func(rs []int) {
		for _, r := range rs {
			if r != 0 && !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	add(b.c2s.Rotations())
	add(b.s2c.Rotations())
	add(b.Strategy.Keys(b.c2s.Lo.M1.N1))
	add(b.Strategy.Keys(b.s2c.F1.N1))
	return out
}

// ModRaise reinterprets a level-0 ciphertext at the target level: the
// coefficients (centered mod q_0) are lifted into every limb. The
// underlying plaintext becomes Δ·m + q_0·I(X) with a small overflow
// polynomial I.
func (b *Bootstrapper) ModRaise(ct *ckks.Ciphertext, targetLevel int) (*ckks.Ciphertext, error) {
	if ct.Level != 0 {
		return nil, fmt.Errorf("boot: ModRaise expects a level-0 ciphertext, got level %d", ct.Level)
	}
	if targetLevel <= 0 || targetLevel > b.params.MaxLevel() {
		return nil, fmt.Errorf("boot: target level %d out of range", targetLevel)
	}
	out := &ckks.Ciphertext{
		B:     raisePoly(b.params, ct.B, targetLevel),
		A:     raisePoly(b.params, ct.A, targetLevel),
		Scale: ct.Scale,
		Level: targetLevel,
	}
	return out, nil
}

func raisePoly(params *ckks.Parameters, p *poly.Poly, targetLevel int) *poly.Poly {
	rq := params.RingQ()
	src := p.Copy()
	rq.INTT(src)
	q0 := rq.Mod(0).Q
	out := rq.NewPoly(targetLevel + 1)
	n := rq.N
	for j := 0; j < n; j++ {
		v := modmath.CenteredLift(src.Coeffs[0][j], q0)
		for i := 0; i <= targetLevel; i++ {
			out.Coeffs[i][j] = modmath.FromCentered(v, rq.Mod(i).Q)
		}
	}
	rq.NTT(out)
	return out
}

// Bootstrap runs the full pipeline. The input must be at level 0 with
// slot magnitudes well below c/2π (sparse-packed regime); the output is a
// refreshed ciphertext whose level is what remains after the pipeline's
// own multiplicative budget.
func (b *Bootstrapper) Bootstrap(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	raised, err := b.ModRaise(ct, b.params.MaxLevel())
	if err != nil {
		return nil, err
	}
	// CoeffToSlot: the two real coefficient halves (values t = m_coeff +
	// c·I) land in the slots of two ciphertexts.
	lo, hi, err := b.c2s.Evaluate(b.eval, b.enc, raised, b.Strategy)
	if err != nil {
		return nil, fmt.Errorf("boot: CoeffToSlot: %w", err)
	}
	// EvalMod: remove the c·I component with the sine surrogate,
	// slot-wise on each real-valued half.
	if lo, err = EvaluateChebyshev(b.eval, b.evalMod, lo); err != nil {
		return nil, fmt.Errorf("boot: EvalMod(lo): %w", err)
	}
	if hi, err = EvaluateChebyshev(b.eval, b.evalMod, hi); err != nil {
		return nil, fmt.Errorf("boot: EvalMod(hi): %w", err)
	}
	// SlotToCoeff: back to the slot encoding of the message.
	out, err := b.s2c.Evaluate(b.eval, b.enc, lo, hi, b.Strategy)
	if err != nil {
		return nil, fmt.Errorf("boot: SlotToCoeff: %w", err)
	}
	return out, nil
}

// LevelBudget reports how many levels one bootstrap consumes with the
// current configuration: one per DFT stage (each BSGS ends in a rescale)
// plus the EvalMod depth (normalisation, basis recursion, coefficient
// multiply).
func (b *Bootstrapper) LevelBudget() int {
	d := b.evalMod.Degree()
	depth := 0
	for v := d; v > 1; v >>= 1 {
		depth++
	}
	return 1 /* C2S */ + 1 /* S2C */ + depth + 2 /* EvalMod norm + cmult */
}

package arch

import "testing"

func TestConfigHash(t *testing.T) {
	if ConfigHash(CROPHE36) != ConfigHash(CROPHE36.Clone()) {
		t.Error("clone should hash equal to the original")
	}
	if ConfigHash(CROPHE36) == ConfigHash(CROPHE64) {
		t.Error("distinct configs should hash differently")
	}
	if ConfigHash(CROPHE36) == ConfigHash(CROPHE36.WithSRAM(45)) {
		t.Error("an SRAM sweep point should hash differently from the default")
	}
	if ConfigHash(ARK) != ConfigHash(ARK.Clone()) {
		t.Error("FUShare map rendering must be deterministic")
	}
}

package arch

import (
	"fmt"
	"hash/fnv"
)

// ConfigHash returns a stable identity hash of a hardware configuration,
// used to key schedule-memoization caches: two configs with equal fields
// hash equally, so a Figure 10 sweep point at the default SRAM capacity
// shares cache entries with the Figure 9 run of the same design. It
// hashes the canonical %+v rendering of the struct — deterministic even
// for the FUShare map, since Go prints map keys in sorted order.
func ConfigHash(c *HWConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *c)
	return h.Sum64()
}

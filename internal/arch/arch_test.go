package arch

import (
	"math"
	"testing"
)

func TestTable1Configs(t *testing.T) {
	cfgs := Table1()
	if len(cfgs) != 6 {
		t.Fatalf("Table 1 has %d configs, want 6", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name] {
			t.Fatalf("duplicate config %s", c.Name)
		}
		names[c.Name] = true
		if c.DRAMBandwidthTBs != 1 {
			t.Errorf("%s: DRAM bandwidth must be 1 TB/s per Table I", c.Name)
		}
		if c.WordBits <= 0 || c.FreqGHz <= 0 || c.NumPEs <= 0 {
			t.Errorf("%s: invalid basic fields", c.Name)
		}
	}
	// CROPHE variants are homogeneous; baselines are specialised.
	for _, c := range cfgs {
		isCrophe := c.Name == "CROPHE-64" || c.Name == "CROPHE-36"
		if c.Homogeneous != isCrophe {
			t.Errorf("%s: Homogeneous = %v", c.Name, c.Homogeneous)
		}
		if !c.Homogeneous {
			var sum float64
			for _, v := range c.FUShare {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s: FU shares sum to %g", c.Name, sum)
			}
		}
	}
}

func TestWordBytes(t *testing.T) {
	if CROPHE64.WordBytes() != 8 {
		t.Error("64-bit word bytes")
	}
	if CROPHE36.WordBytes() != 4.5 {
		t.Error("36-bit word bytes")
	}
	if CLPlus.WordBytes() != 3.5 {
		t.Error("28-bit word bytes")
	}
}

func TestWithSRAMDoesNotMutate(t *testing.T) {
	orig := CROPHE36.SRAMCapacityMB
	small := CROPHE36.WithSRAM(45)
	if small.SRAMCapacityMB != 45 {
		t.Fatal("WithSRAM capacity")
	}
	if CROPHE36.SRAMCapacityMB != orig {
		t.Fatal("WithSRAM mutated the original")
	}
	if small.Name != CROPHE36.Name || small.NumPEs != CROPHE36.NumPEs {
		t.Fatal("WithSRAM lost fields")
	}
}

func TestCloneDeepCopiesFUShare(t *testing.T) {
	c := SHARP.Clone()
	c.FUShare[ClassEW] = 0.99
	if SHARP.FUShare[ClassEW] == 0.99 {
		t.Fatal("Clone shares FUShare map")
	}
}

func TestTable3ParamSets(t *testing.T) {
	ps := Table3()
	if len(ps) != 4 {
		t.Fatalf("Table 3 rows: %d", len(ps))
	}
	// Exact values from the paper.
	want := map[string][5]int{
		"BTS (INS-2)": {17, 39, 19, 2, 20},
		"ARK":         {16, 23, 15, 4, 6},
		"SHARP":       {16, 35, 27, 3, 12},
		"CraterLake":  {16, 59, 51, 1, 60},
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected param set %s", p.Name)
		}
		got := [5]int{p.LogN, p.L, p.LBoot, p.DNum, p.Alpha}
		if got != w {
			t.Fatalf("%s: %v want %v", p.Name, got, w)
		}
		// dnum must equal ceil((L+1)/alpha).
		if d := (p.L + p.Alpha) / p.Alpha; d != p.DNum && p.Name != "BTS (INS-2)" {
			// BTS uses alpha=20 with L=39: ceil(40/20)=2 ✓; check all.
			t.Errorf("%s: dnum %d vs ceil((L+1)/alpha) = %d", p.Name, p.DNum, d)
		}
	}
}

func TestParamsFor(t *testing.T) {
	if ParamsFor(BTS).Name != "BTS (INS-2)" {
		t.Error("BTS params")
	}
	if ParamsFor(ARK).LogN != 16 {
		t.Error("ARK params")
	}
	if ParamsFor(SHARP).Alpha != 12 {
		t.Error("SHARP params")
	}
	if ParamsFor(CLPlus).DNum != 1 {
		t.Error("CL+ params")
	}
}

func TestPEModelReproducesTable2(t *testing.T) {
	pe := PEModel(CROPHE36)
	// Reference values straight from Table II (µm², mW).
	checks := []struct {
		got  Component
		area float64
		pow  float64
	}{
		{pe.Multipliers, 337650.31, 388.80},
		{pe.AddersSubs, 27784.55, 33.79},
		{pe.RegFile, 67242.02, 16.86},
		{pe.InterLane, 15806.76, 58.17},
	}
	for _, c := range checks {
		if math.Abs(c.got.AreaMM2-c.area) > 0.01 {
			t.Errorf("%s area %.2f want %.2f", c.got.Name, c.got.AreaMM2, c.area)
		}
		if math.Abs(c.got.PowerW-c.pow) > 0.01 {
			t.Errorf("%s power %.2f want %.2f", c.got.Name, c.got.PowerW, c.pow)
		}
	}
	if math.Abs(pe.Total().AreaMM2-448483.64) > 1 {
		t.Errorf("PE total area %.2f", pe.Total().AreaMM2)
	}
}

func TestChipModelReproducesTable2(t *testing.T) {
	chip := ChipModel(CROPHE36)
	// Table II chip-level rows (mm², W).
	if math.Abs(chip.PEs.AreaMM2-57.40) > 0.1 {
		t.Errorf("128 PEs area %.2f want 57.40", chip.PEs.AreaMM2)
	}
	if math.Abs(chip.NoC.AreaMM2-40.70) > 0.1 {
		t.Errorf("NoC area %.2f want 40.70", chip.NoC.AreaMM2)
	}
	if math.Abs(chip.GlobalBuf.AreaMM2-116.05) > 0.1 {
		t.Errorf("buffer area %.2f want 116.05", chip.GlobalBuf.AreaMM2)
	}
	if math.Abs(chip.Transpose.AreaMM2-7.38) > 0.1 {
		t.Errorf("transpose area %.2f", chip.Transpose.AreaMM2)
	}
	total := chip.Total()
	if math.Abs(total.AreaMM2-251.13) > 0.5 {
		t.Errorf("total area %.2f want 251.13", total.AreaMM2)
	}
	if math.Abs(total.PowerW-181.11) > 1.5 {
		t.Errorf("total power %.2f want 181.11", total.PowerW)
	}
}

func TestChipModelCROPHE64IsLarger(t *testing.T) {
	// The 64-bit variant must cost more logic per PE (quadratic word
	// scaling) and land in the vicinity of the Table I total (362.8 mm²).
	c64 := ChipModel(CROPHE64)
	c36 := ChipModel(CROPHE36)
	pe64 := PEModel(CROPHE64).Total()
	pe36 := PEModel(CROPHE36).Total()
	if pe64.AreaMM2 <= pe36.AreaMM2 {
		t.Fatal("64-bit PE should be larger than 36-bit PE")
	}
	if c64.Total().AreaMM2 < 250 || c64.Total().AreaMM2 > 480 {
		t.Fatalf("CROPHE-64 total area %.1f out of plausible range", c64.Total().AreaMM2)
	}
	_ = c36
}

func TestPeakThroughput(t *testing.T) {
	if got := CROPHE36.TotalLanes(); got != 128*256 {
		t.Fatalf("lanes %d", got)
	}
	want := float64(128*256) * 1.2e9
	if math.Abs(CROPHE36.PeakModMulsPerSec()-want) > 1 {
		t.Fatal("peak throughput")
	}
}

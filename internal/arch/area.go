package arch

import "math"

// The area/power model replaces the paper's RTL + FN-CACTI + Orion 3 flow
// with per-component coefficients at 7 nm, calibrated so that the
// CROPHE-36 breakdown reproduces Table II and the CROPHE-64 totals match
// Table I. Logic area scales quadratically with word width (multiplier
// arrays), register files and SRAM linearly with capacity, and the NoC
// with PE count and link width.

// Component is one row of the Table II breakdown.
type Component struct {
	Name    string
	AreaMM2 float64
	PowerW  float64
}

// PEBreakdown is the per-PE portion of Table II (in µm² / mW).
type PEBreakdown struct {
	Multipliers Component
	AddersSubs  Component
	RegFile     Component
	InterLane   Component
}

// Total sums the per-PE components.
func (p PEBreakdown) Total() Component {
	return Component{
		Name:    "PE",
		AreaMM2: p.Multipliers.AreaMM2 + p.AddersSubs.AreaMM2 + p.RegFile.AreaMM2 + p.InterLane.AreaMM2,
		PowerW:  p.Multipliers.PowerW + p.AddersSubs.PowerW + p.RegFile.PowerW + p.InterLane.PowerW,
	}
}

// ChipBreakdown is the chip-level portion of Table II.
type ChipBreakdown struct {
	PEs       Component
	NoC       Component
	GlobalBuf Component
	Transpose Component
	HBMPHY    Component
}

// Total sums the chip-level components.
func (c ChipBreakdown) Total() Component {
	return Component{
		Name:    "Total",
		AreaMM2: c.PEs.AreaMM2 + c.NoC.AreaMM2 + c.GlobalBuf.AreaMM2 + c.Transpose.AreaMM2 + c.HBMPHY.AreaMM2,
		PowerW:  c.PEs.PowerW + c.NoC.PowerW + c.GlobalBuf.PowerW + c.Transpose.PowerW + c.HBMPHY.PowerW,
	}
}

// Calibration constants: Table II values for CROPHE-36 (word = 36 bit,
// 256 lanes, 64 kB RF, 128 PEs, 180 MB buffer, 8 MB transpose unit).
const (
	refWordBits = 36.0
	refLanes    = 256.0

	// Per-PE, µm² and mW at the reference point.
	refMulArea  = 337650.31
	refMulPower = 388.80
	refAddArea  = 27784.55
	refAddPower = 33.79
	refRFArea   = 67242.02 // 64 kB
	refRFPower  = 16.86
	refNetArea  = 15806.76
	refNetPower = 58.17

	// Chip-level, mm² and W at the reference point (128 PEs, 180 MB).
	refNoCArea    = 40.70
	refNoCPower   = 67.40
	refBufArea    = 116.05 // 180 MB global buffer
	refBufPower   = 15.34
	refTransArea  = 7.38 // 8 MB transpose unit
	refTransPower = 2.87
	refPHYArea    = 29.60
	refPHYPower   = 31.80
)

// PEModel computes the per-PE breakdown for a configuration.
func PEModel(cfg *HWConfig) PEBreakdown {
	wordScale := math.Pow(float64(cfg.WordBits)/refWordBits, 2) // multiplier array
	wordLin := float64(cfg.WordBits) / refWordBits
	laneScale := float64(cfg.Lanes) / refLanes
	rfScale := cfg.RegFileKBPerPE / 64.0

	return PEBreakdown{
		Multipliers: Component{
			Name:    "modular multipliers",
			AreaMM2: refMulArea * wordScale * laneScale,
			PowerW:  refMulPower * wordScale * laneScale,
		},
		AddersSubs: Component{
			Name:    "modular adders/subtractors",
			AreaMM2: refAddArea * wordLin * laneScale,
			PowerW:  refAddPower * wordLin * laneScale,
		},
		RegFile: Component{
			Name:    "register file",
			AreaMM2: refRFArea * rfScale * wordLin,
			PowerW:  refRFPower * rfScale * wordLin,
		},
		InterLane: Component{
			Name:    "inter-lane network",
			AreaMM2: refNetArea * wordLin * laneScale,
			PowerW:  refNetPower * wordLin * laneScale,
		},
	}
}

// ChipModel computes the chip-level breakdown for a configuration.
// Per-PE numbers are in µm²/mW; chip-level numbers in mm²/W.
func ChipModel(cfg *HWConfig) ChipBreakdown {
	pe := PEModel(cfg).Total()
	peScale := float64(cfg.NumPEs) / 128.0
	wordLin := float64(cfg.WordBits) / refWordBits
	// SRAM area grows sub-linearly with capacity (larger macros amortise
	// peripheral logic); the 0.7 exponent is fitted between the 180 MB
	// CROPHE-36 point of Table II and the 512 MB designs of Table I.
	bufScale := math.Pow(cfg.SRAMCapacityMB/180.0, 0.7)
	transScale := cfg.TransposeMB / 8.0

	return ChipBreakdown{
		PEs: Component{
			Name:    "PEs",
			AreaMM2: pe.AreaMM2 * float64(cfg.NumPEs) / 1e6,
			PowerW:  pe.PowerW * float64(cfg.NumPEs) / 1e3,
		},
		NoC: Component{
			Name:    "inter-PE NoC & crossbars",
			AreaMM2: refNoCArea * peScale * wordLin,
			PowerW:  refNoCPower * peScale * wordLin,
		},
		GlobalBuf: Component{
			Name:    "global buffer",
			AreaMM2: refBufArea * bufScale,
			PowerW:  refBufPower * bufScale,
		},
		Transpose: Component{
			Name:    "transpose unit",
			AreaMM2: refTransArea * transScale,
			PowerW:  refTransPower * transScale,
		},
		HBMPHY: Component{
			Name:    "HBM PHY",
			AreaMM2: refPHYArea,
			PowerW:  refPHYPower,
		},
	}
}

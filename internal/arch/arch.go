// Package arch defines the hardware configurations of the paper's
// evaluation — the two CROPHE variants and the baseline accelerators of
// Table I, the CKKS parameter sets of Table III — and an analytical
// area/power model reproducing the Table II breakdown. The RTL/FN-CACTI/
// Orion toolchain of the paper is replaced by per-component coefficients
// calibrated to the published numbers (see DESIGN.md, substitutions).
package arch

import "fmt"

// OpClass buckets operators by the functional-unit type that executes
// them on the *specialised* baseline accelerators. CROPHE's homogeneous
// PEs execute every class.
type OpClass int

// Functional-unit classes of the baseline accelerators.
const (
	ClassEW OpClass = iota // element-wise modular add/mul units
	ClassNTT
	ClassBConv
	ClassAutomorph
	NumOpClasses
)

// String implements fmt.Stringer.
func (c OpClass) String() string {
	switch c {
	case ClassEW:
		return "ew"
	case ClassNTT:
		return "ntt"
	case ClassBConv:
		return "bconv"
	case ClassAutomorph:
		return "automorph"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// HWConfig is one row of Table I plus the microarchitectural detail the
// mapper and simulator need.
type HWConfig struct {
	Name     string
	WordBits int
	FreqGHz  float64

	Lanes  int // modular-arithmetic lanes per PE
	NumPEs int // PEs (or clusters for the baselines)

	DRAMBandwidthTBs float64
	SRAMBandwidthTBs float64 // global buffer bandwidth
	LocalBWTBs       float64 // local buffer / register-file bandwidth (Table I second term)
	SRAMCapacityMB   float64 // global buffer capacity
	RegFileKBPerPE   float64

	// Homogeneous is true for CROPHE: any PE runs any operator class.
	// When false, FUShare gives the fraction of total lane throughput
	// dedicated to each class (idle when that class is absent).
	Homogeneous bool
	FUShare     map[OpClass]float64

	// Mesh dimensions for the NoC model (Homogeneous designs).
	MeshW, MeshH int
	// NoCLinkGBs is the per-link bandwidth of the mesh.
	NoCLinkGBs float64
	// TransposeUnit capacity in MB (0 = none; baselines fold transposes
	// into their NTT units).
	TransposeMB float64
}

// WordBytes returns the datapath word size in bytes (fractional for
// non-power-of-two word widths, e.g. 4.5 for 36 bits).
func (c *HWConfig) WordBytes() float64 { return float64(c.WordBits) / 8 }

// TotalLanes returns NumPEs × Lanes.
func (c *HWConfig) TotalLanes() int { return c.NumPEs * c.Lanes }

// PeakModMulsPerSec returns the peak modular multiplications per second.
func (c *HWConfig) PeakModMulsPerSec() float64 {
	return float64(c.TotalLanes()) * c.FreqGHz * 1e9
}

// WithSRAM returns a copy with a different global SRAM capacity — the
// sweep knob of Figure 10.
func (c *HWConfig) WithSRAM(capacityMB float64) *HWConfig {
	out := *c
	out.SRAMCapacityMB = capacityMB
	return &out
}

// Derating is the effective-resource view of a configuration under a
// fault plan: each field is the surviving fraction of the corresponding
// resource (1 = healthy, 0 = fully failed). internal/fault computes one
// from a seeded fault plan; the scheduler then searches on the derated
// configuration so degraded-mode schedules fall out of the same cost
// model as healthy ones.
type Derating struct {
	PEs  float64 // surviving PE fraction (failed rows)
	Lane float64 // surviving per-PE lane throughput (degraded lanes)
	NoC  float64 // surviving aggregate mesh link capacity
	SRAM float64 // surviving global-buffer banks (bandwidth and capacity)
	DRAM float64 // surviving HBM bandwidth (throttled channels)
}

// Healthy is the identity derating.
func Healthy() Derating { return Derating{PEs: 1, Lane: 1, NoC: 1, SRAM: 1, DRAM: 1} }

// Derate returns a copy of the configuration scaled by the surviving
// resource fractions — the machine the scheduler and the analytical cost
// model see under a fault plan. Fractions are clamped to [0, 1]; integer
// resources floor but keep at least one unit whenever the fraction is
// positive, so a plan that leaves any resource alive yields a schedulable
// (if slow) machine and a plan that kills a resource class yields a
// configuration the scheduler rejects as infeasible.
func (c *HWConfig) Derate(d Derating) *HWConfig {
	out := c.Clone()
	frac := func(f float64) float64 {
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	scaleInt := func(n int, f float64) int {
		f = frac(f)
		m := int(float64(n) * f)
		if m < 1 && f > 0 && n > 0 {
			m = 1
		}
		return m
	}
	out.NumPEs = scaleInt(c.NumPEs, d.PEs)
	out.Lanes = scaleInt(c.Lanes, d.Lane)
	out.NoCLinkGBs = c.NoCLinkGBs * frac(d.NoC)
	out.SRAMBandwidthTBs = c.SRAMBandwidthTBs * frac(d.SRAM)
	out.SRAMCapacityMB = c.SRAMCapacityMB * frac(d.SRAM)
	out.DRAMBandwidthTBs = c.DRAMBandwidthTBs * frac(d.DRAM)
	return out
}

// Clone returns a deep copy.
func (c *HWConfig) Clone() *HWConfig {
	out := *c
	if c.FUShare != nil {
		out.FUShare = make(map[OpClass]float64, len(c.FUShare))
		for k, v := range c.FUShare {
			out.FUShare[k] = v
		}
	}
	return &out
}

// The configurations of Table I. The baseline FU shares follow the
// published unit mixes: roughly half the datapath in NTT butterflies, the
// rest split across element-wise, BConv and automorphism units.
var (
	// CROPHE64 is the 64-bit CROPHE variant compared against BTS and ARK.
	CROPHE64 = &HWConfig{
		Name: "CROPHE-64", WordBits: 64, FreqGHz: 1.2,
		Lanes: 256, NumPEs: 64,
		DRAMBandwidthTBs: 1, SRAMBandwidthTBs: 39, LocalBWTBs: 314, SRAMCapacityMB: 512,
		RegFileKBPerPE: 64, Homogeneous: true,
		MeshW: 8, MeshH: 8, NoCLinkGBs: 2400, TransposeMB: 16,
	}

	// CROPHE36 is the 36-bit variant compared against SHARP and CL+.
	CROPHE36 = &HWConfig{
		Name: "CROPHE-36", WordBits: 36, FreqGHz: 1.2,
		Lanes: 256, NumPEs: 128,
		DRAMBandwidthTBs: 1, SRAMBandwidthTBs: 44, LocalBWTBs: 354, SRAMCapacityMB: 180,
		RegFileKBPerPE: 64, Homogeneous: true,
		MeshW: 16, MeshH: 8, NoCLinkGBs: 2400, TransposeMB: 8,
	}

	// BTS configuration [35].
	BTS = &HWConfig{
		Name: "BTS", WordBits: 64, FreqGHz: 1.2,
		Lanes: 1, NumPEs: 2048 * 8, // 2048 PEs, modeled as flat lanes
		DRAMBandwidthTBs: 1, SRAMBandwidthTBs: 38.4, LocalBWTBs: 292, SRAMCapacityMB: 512,
		RegFileKBPerPE: 4, Homogeneous: false,
		FUShare: map[OpClass]float64{ClassNTT: 0.50, ClassEW: 0.25, ClassBConv: 0.15, ClassAutomorph: 0.10},
	}

	// ARK configuration [34].
	ARK = &HWConfig{
		Name: "ARK", WordBits: 64, FreqGHz: 1.0,
		Lanes: 256, NumPEs: 4 * 16, // 4 clusters, modeled with 16 sub-units each
		DRAMBandwidthTBs: 1, SRAMBandwidthTBs: 20, LocalBWTBs: 72, SRAMCapacityMB: 512,
		RegFileKBPerPE: 64, Homogeneous: false,
		FUShare: map[OpClass]float64{ClassNTT: 0.45, ClassEW: 0.25, ClassBConv: 0.20, ClassAutomorph: 0.10},
	}

	// SHARP configuration [33].
	SHARP = &HWConfig{
		Name: "SHARP", WordBits: 36, FreqGHz: 1.0,
		Lanes: 256, NumPEs: 4 * 64, // 4 clusters; lanes carry multiple FUs
		DRAMBandwidthTBs: 1, SRAMBandwidthTBs: 36, LocalBWTBs: 36, SRAMCapacityMB: 180,
		RegFileKBPerPE: 64, Homogeneous: false,
		FUShare: map[OpClass]float64{ClassNTT: 0.45, ClassEW: 0.30, ClassBConv: 0.15, ClassAutomorph: 0.10},
	}

	// CLPlus is CraterLake scaled to 7 nm (CL+ in the paper).
	CLPlus = &HWConfig{
		Name: "CL+", WordBits: 28, FreqGHz: 1.0,
		Lanes: 512, NumPEs: 8 * 16,
		DRAMBandwidthTBs: 1, SRAMBandwidthTBs: 84, LocalBWTBs: 84, SRAMCapacityMB: 256,
		RegFileKBPerPE: 32, Homogeneous: false,
		FUShare: map[OpClass]float64{ClassNTT: 0.50, ClassEW: 0.25, ClassBConv: 0.15, ClassAutomorph: 0.10},
	}
)

// Table1 lists the compared configurations in the paper's column order.
func Table1() []*HWConfig {
	return []*HWConfig{BTS, ARK, CROPHE64, CLPlus, SHARP, CROPHE36}
}

// ParamSet is one row of Table III: the CKKS parameters used when
// comparing against each baseline. All achieve 128-bit security.
type ParamSet struct {
	Name  string
	LogN  int
	L     int // maximum multiplicative level
	LBoot int // levels consumed by bootstrapping
	DNum  int
	Alpha int
}

// N returns the ring degree.
func (p ParamSet) N() int { return 1 << p.LogN }

// Limbs returns L+1.
func (p ParamSet) Limbs() int { return p.L + 1 }

// Table III parameter sets.
var (
	ParamsBTS   = ParamSet{Name: "BTS (INS-2)", LogN: 17, L: 39, LBoot: 19, DNum: 2, Alpha: 20}
	ParamsARK   = ParamSet{Name: "ARK", LogN: 16, L: 23, LBoot: 15, DNum: 4, Alpha: 6}
	ParamsSHARP = ParamSet{Name: "SHARP", LogN: 16, L: 35, LBoot: 27, DNum: 3, Alpha: 12}
	ParamsCL    = ParamSet{Name: "CraterLake", LogN: 16, L: 59, LBoot: 51, DNum: 1, Alpha: 60}
)

// Table3 lists the parameter sets in the paper's row order.
func Table3() []ParamSet {
	return []ParamSet{ParamsBTS, ParamsARK, ParamsSHARP, ParamsCL}
}

// ParamsFor returns the parameter set used when comparing with the named
// baseline configuration (the paper pairs each CROPHE variant with the
// baseline's own parameters).
func ParamsFor(baseline *HWConfig) ParamSet {
	switch baseline.Name {
	case "BTS":
		return ParamsBTS
	case "ARK":
		return ParamsARK
	case "SHARP":
		return ParamsSHARP
	case "CL+":
		return ParamsCL
	}
	return ParamsSHARP
}

package workload

import (
	"fmt"

	"crophe/internal/arch"
	"crophe/internal/graph"
)

// Segment is one unique subgraph and how many times the workload executes
// it — the merged-redundancy representation of §V-D.
type Segment struct {
	Name  string
	G     *graph.Graph
	Count int
}

// Workload is a named list of segments under a parameter set.
type Workload struct {
	Name     string
	Params   arch.ParamSet
	Segments []Segment
	// DataParallel is the number of independent ciphertext streams
	// available — the parallelism CROPHE-p's cluster partitioning
	// exploits to share evks across clusters.
	DataParallel int
}

// TotalOps returns the total compute-operator count (segments × counts).
func (w *Workload) TotalOps() int {
	total := 0
	for _, s := range w.Segments {
		total += len(s.G.ComputeNodes()) * s.Count
	}
	return total
}

// TotalModMuls returns the total modular-multiply load.
func (w *Workload) TotalModMuls() int64 {
	var total int64
	for _, s := range w.Segments {
		total += s.G.TotalModMuls() * int64(s.Count)
	}
	return total
}

// bsgsDims picks a BSGS split n1×n2 ≥ diags with n1 ≈ √diags (powers of
// two), mirroring Algorithm 1's n1, n2 ~ √n.
func bsgsDims(diags int) (n1, n2 int) {
	n1 = 1
	for n1*n1 < diags {
		n1 <<= 1
	}
	n2 = (diags + n1 - 1) / n1
	if n2 < 1 {
		n2 = 1
	}
	return n1, n2
}

// matVecSegment builds one BSGS PtMatVecMult segment.
func matVecSegment(p arch.ParamSet, name string, level, diags int, mode RotMode, rHyb int) Segment {
	return matVecSegmentStride(p, name, level, diags, 1, mode, rHyb)
}

// matVecSegmentStride builds a BSGS PtMatVecMult whose rotation amounts
// are multiples of stride — one stage of a radix-decomposed DFT.
func matVecSegmentStride(p arch.ParamSet, name string, level, diags, stride int, mode RotMode, rHyb int) Segment {
	b := NewBuilder(p)
	in := b.Input(name+"/in", level)
	n1, n2 := bsgsDims(diags)
	out := b.BSGSMatVecStride(in, level, n1, n2, diags, stride, mode, rHyb, name)
	b.Output(out)
	return Segment{Name: name, G: b.G}
}

// hmultSegment builds one HMult + Rescale segment at a level.
func hmultSegment(p arch.ParamSet, name string, level int) Segment {
	b := NewBuilder(p)
	x := b.Input(name+"/x", level)
	y := b.Input(name+"/y", level)
	m := b.HMult(x, y, level, name)
	out := b.Rescale(m, level, name)
	b.Output(out)
	return Segment{Name: name, G: b.G}
}

// cmultSegment builds a CMult + Rescale + HAdd segment (the EvalMod
// coefficient-combine step).
func cmultSegment(p arch.ParamSet, name string, level int) Segment {
	b := NewBuilder(p)
	x := b.Input(name+"/x", level)
	m := b.PMult(x, level, "pt:"+name, name)
	rs := b.Rescale(m, level, name)
	acc := b.Input(name+"/acc", level-1)
	out := b.HAdd(rs, acc, level-1, name)
	b.Output(out)
	return Segment{Name: name, G: b.G}
}

// Bootstrapping builds the paper's bootstrapping workload: CoeffToSlot and
// SlotToCoeff as staged BSGS matmuls, EvalMod as an HMult/CMult cascade —
// the optimised sparse-packed method [14]. The rotation mode selects the
// Figure 8 structure inside every BSGS stage.
func Bootstrapping(p arch.ParamSet, mode RotMode, rHyb int) *Workload {
	w := &Workload{Name: "bootstrapping", Params: p, DataParallel: 2}

	// The DFT matrices are radix-decomposed into 3 stages with ~N^(1/3)
	// diagonals each (standard practice; keeps rotation counts O(√n)).
	slots := p.N() / 2
	stageDiags := 1
	for stageDiags*stageDiags*stageDiags < slots {
		stageDiags <<= 1
	}

	// Three radix stages; identical structure per stage (the evk working
	// set repeats across stages and steady-state invocations, which is
	// what lets every design amortise resident-key fills). Stage-distinct
	// rotation sets are available through matVecSegmentStride for
	// worst-case studies.
	lC2S := p.L // C2S runs right after ModRaise, near the top level
	w.Segments = append(w.Segments,
		withCount(matVecSegment(p, "c2s", lC2S, stageDiags, mode, rHyb), 3))

	// EvalMod: a degree-63 sine cascade — 62 basis HMults plus 63
	// coefficient CMult/accumulates. The Chebyshev recursion descends
	// ⌈log₂ 63⌉ ≈ 6 levels below the post-C2S level, with geometrically
	// fewer (but individually cheaper) multiplications at each deeper
	// level; build one segment per depth so key-switch costs track the
	// shrinking limb counts.
	lTop := p.L - p.LBoot/2
	if lTop < p.Alpha+6 {
		lTop = p.Alpha + 6
	}
	remaining := 62
	for depth := 0; depth < 6 && remaining > 0; depth++ {
		// T_k basis building: ~half the products happen at each next
		// depth of the binary recursion.
		count := remaining / 2
		if depth == 5 || count < 1 {
			count = remaining
		}
		level := lTop - depth
		if level < 1 {
			level = 1
		}
		w.Segments = append(w.Segments,
			withCount(hmultSegment(p, fmt.Sprintf("evalmod-hmult-d%d", depth), level), count))
		remaining -= count
	}
	lMod := lTop - 5
	if lMod < 1 {
		lMod = 1
	}
	w.Segments = append(w.Segments,
		withCount(cmultSegment(p, "evalmod-cmult", lMod), 63))

	// SlotToCoeff at the remaining level.
	lS2C := p.L - p.LBoot + 4
	if lS2C < 4 {
		lS2C = 4
	}
	w.Segments = append(w.Segments,
		withCount(matVecSegment(p, "s2c", lS2C, stageDiags, mode, rHyb), 3))
	return w
}

// HELR builds one iteration of HELR1024 logistic-regression training [24]:
// the X·w matrix-vector product, a degree-7 sigmoid, the gradient inner
// sum (log-rotations), the weight update, and the per-iteration bootstrap.
func HELR(p arch.ParamSet, mode RotMode, rHyb int) *Workload {
	w := &Workload{Name: "helr1024", Params: p, DataParallel: 8}
	lApp := p.L - p.LBoot
	if lApp < 4 {
		lApp = 4
	}

	// X·w: a 256-padded matvec (196 features).
	w.Segments = append(w.Segments,
		withCount(matVecSegment(p, "helr-xw", lApp, 32, mode, rHyb), 1))

	// Sigmoid degree 7: 3 HMult levels.
	w.Segments = append(w.Segments,
		withCount(hmultSegment(p, "helr-sigmoid", lApp-1), 3))

	// Gradient reduction: log2(256) = 8 rotations + accumulate.
	b := NewBuilder(p)
	in := b.Input("helr-grad/in", lApp-2)
	cur := in
	for i := 0; i < 8; i++ {
		rot := b.HRot(cur, lApp-2, 1<<i, fmt.Sprintf("helr-grad/r%d", i))
		cur = b.HAdd(cur, rot, lApp-2, fmt.Sprintf("helr-grad/a%d", i))
	}
	b.Output(cur)
	w.Segments = append(w.Segments, Segment{Name: "helr-grad", G: b.G, Count: 1})

	// Weight update: PMult by learning rate + HAdd.
	w.Segments = append(w.Segments,
		withCount(cmultSegment(p, "helr-update", lApp-3), 2))

	// One bootstrap per iteration.
	boot := Bootstrapping(p, mode, rHyb)
	w.Segments = append(w.Segments, boot.Segments...)
	return w
}

// ResNet builds the encrypted ResNet inference workload [38]: per layer a
// multiplexed-convolution matvec plus a polynomial ReLU, with a bootstrap
// every other layer. layers = 20 or 110.
func ResNet(p arch.ParamSet, layers int, mode RotMode, rHyb int) *Workload {
	w := &Workload{
		Name:         fmt.Sprintf("resnet-%d", layers),
		Params:       p,
		DataParallel: 4,
	}
	lApp := p.L - p.LBoot
	if lApp < 4 {
		lApp = 4
	}

	// Convolution as BSGS matvec: multiplexed parallel convolution packs
	// a 3×3 kernel over packed channels into ~64 diagonals.
	w.Segments = append(w.Segments,
		withCount(matVecSegment(p, "conv", lApp, 64, mode, rHyb), layers))

	// ReLU: degree-27 minimax composite ≈ 10 multiplicative steps.
	w.Segments = append(w.Segments,
		withCount(hmultSegment(p, "relu", lApp-1), layers*10))

	// Downsample/shortcut adds: a rotation + add per residual block.
	b := NewBuilder(p)
	in := b.Input("shortcut/in", lApp-2)
	rot := b.HRot(in, lApp-2, 4, "shortcut/rot")
	out := b.HAdd(in, rot, lApp-2, "shortcut/add")
	b.Output(out)
	w.Segments = append(w.Segments, Segment{Name: "shortcut", G: b.G, Count: layers / 2})

	// Bootstrap every other layer.
	boot := Bootstrapping(p, mode, rHyb)
	for _, s := range boot.Segments {
		s.Count *= layers / 2
		w.Segments = append(w.Segments, s)
	}
	return w
}

func withCount(s Segment, count int) Segment {
	s.Count = count
	return s
}

// StandardSet returns the paper's four workloads under a parameter set.
func StandardSet(p arch.ParamSet, mode RotMode, rHyb int) []*Workload {
	return []*Workload{
		Bootstrapping(p, mode, rHyb),
		HELR(p, mode, rHyb),
		ResNet(p, 20, mode, rHyb),
		ResNet(p, 110, mode, rHyb),
	}
}

// DecomposeNTTs applies the four-step rewrite to every segment.
func (w *Workload) DecomposeNTTs() *Workload {
	out := &Workload{Name: w.Name, Params: w.Params, DataParallel: w.DataParallel}
	for _, s := range w.Segments {
		out.Segments = append(out.Segments, Segment{
			Name:  s.Name,
			G:     graph.DecomposeNTTs(s.G, nil),
			Count: s.Count,
		})
	}
	return out
}

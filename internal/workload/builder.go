// Package workload builds the operator graphs of the paper's four
// benchmark workloads — bootstrapping, HELR1024, ResNet-20 and ResNet-110 —
// from composite builders for the CKKS homomorphic operations (HMult, HRot,
// PMult, key-switching with digit decomposition, BSGS PtMatVecMult).
//
// Workloads are represented as a list of (segment graph, repetition count):
// repeated structures such as the KeySwitch subgraph are built once and
// multiplied, mirroring the paper's pre-partitioning that "merges redundant
// cases and only searches once" (§V-D).
package workload

import (
	"fmt"

	"crophe/internal/arch"
	"crophe/internal/graph"
)

// RotMode selects the baby-step rotation structure of Figure 8.
type RotMode int

// Rotation structure variants.
const (
	RotMinKS RotMode = iota
	RotHoisted
	RotHybrid
)

// String implements fmt.Stringer.
func (m RotMode) String() string {
	switch m {
	case RotMinKS:
		return "min-ks"
	case RotHoisted:
		return "hoisting"
	case RotHybrid:
		return "hybrid"
	}
	return "?"
}

// Builder accumulates nodes into a graph under a parameter set.
type Builder struct {
	G *graph.Graph
	P arch.ParamSet

	consts map[string]*graph.Node
}

// NewBuilder creates a builder with a fresh graph.
func NewBuilder(p arch.ParamSet) *Builder {
	return &Builder{G: graph.New(), P: p, consts: make(map[string]*graph.Node)}
}

func (b *Builder) limbs(level int) int { return level + 1 }

func (b *Builder) beta(level int) int {
	return (level + b.P.Alpha) / b.P.Alpha // ceil((level+1)/alpha)
}

// ctShape is the (1, ℓ+1, N) tensor of one ciphertext polynomial.
func (b *Builder) ctShape(level int) graph.Tensor {
	return graph.Tensor{Digits: 1, Limbs: b.limbs(level), N: b.P.N()}
}

// extShape is the (1, α+ℓ+1, N) tensor after ModUp.
func (b *Builder) extShape(level int) graph.Tensor {
	return graph.Tensor{Digits: 1, Limbs: b.limbs(level) + b.P.Alpha, N: b.P.N()}
}

// Input declares an external ciphertext input (both polynomials folded
// into one node with 2(ℓ+1) limbs for traffic accounting).
func (b *Builder) Input(name string, level int) *graph.Node {
	return b.G.AddNode(graph.OpInput, name,
		graph.Tensor{Digits: 1, Limbs: 2 * b.limbs(level), N: b.P.N()})
}

// Output marks a node as an external result.
func (b *Builder) Output(n *graph.Node) {
	o := b.G.AddNode(graph.OpOutput, "out:"+n.Name, n.Out)
	b.G.Connect(n, o)
}

// constNode returns (creating once) the auxiliary constant source with the
// given id and shape.
func (b *Builder) constNode(id string, shape graph.Tensor) *graph.Node {
	if n, ok := b.consts[id]; ok {
		return n
	}
	n := b.G.AddNode(graph.OpConst, id, shape)
	b.consts[id] = n
	return n
}

// evkShape is the 2 × β_max × (α+ℓ+1) × N switching-key tensor at a level.
func (b *Builder) evkShape(level int) graph.Tensor {
	return graph.Tensor{
		Digits: 2 * b.beta(level),
		Limbs:  b.limbs(level) + b.P.Alpha,
		N:      b.P.N(),
	}
}

// KeySwitch builds the Decomp → ModUp → KSKInP → ModDown subgraph of
// Figure 1 on input x (one polynomial at the given level), consuming the
// evk identified by evkID. Returns the (b', a') contribution folded into a
// single node of 2(ℓ+1) limbs.
func (b *Builder) KeySwitch(x *graph.Node, level int, evkID, tag string) *graph.Node {
	g := b.G
	l := b.limbs(level)
	beta := b.beta(level)
	n := b.P.N()

	// Decomp: iNTT the operand once (ℓ+1 limbs).
	intt := g.AddNode(graph.OpINTT, tag+"/decomp-intt", b.ctShape(level))
	intt.SubNTTLen = n
	intt.Tag = tag
	g.Connect(x, intt)

	// ModUp: per digit, BConv to the complement basis then NTT.
	bconvM := b.constNode(fmt.Sprintf("bconvM:l%d", level),
		graph.Tensor{Digits: 1, Limbs: 1, N: b.P.Alpha * (l + b.P.Alpha)})
	digits := make([]*graph.Node, beta)
	for d := 0; d < beta; d++ {
		bc := g.AddNode(graph.OpBConv, fmt.Sprintf("%s/modup-bconv[%d]", tag, d), b.extShape(level))
		bc.BConvWidth = b.P.Alpha
		bc.Tag = tag
		g.Connect(intt, bc)
		g.ConnectAux(bconvM, bc, bconvM.Name)

		ntt := g.AddNode(graph.OpNTT, fmt.Sprintf("%s/modup-ntt[%d]", tag, d), b.extShape(level))
		ntt.SubNTTLen = n
		ntt.Tag = tag
		g.Connect(bc, ntt)
		digits[d] = ntt
	}

	// KSKInP: inner product with the evk along the digit dimension,
	// producing the two polynomials.
	evk := b.constNode(evkID, b.evkShape(level))
	inp := g.AddNode(graph.OpInP, tag+"/kskinp",
		graph.Tensor{Digits: 1, Limbs: 2 * (l + b.P.Alpha), N: n})
	inp.Tag = tag
	for _, d := range digits {
		g.Connect(d, inp)
	}
	// Record the digit dimension on the input edge shape for load calc.
	if len(inp.InEdges) > 0 {
		inp.InEdges[0].Shape.Digits = beta
	}
	g.ConnectAux(evk, inp, evkID)

	// ModDown: iNTT the P-part, BConv back to Q, NTT, subtract & scale.
	mdIntt := g.AddNode(graph.OpINTT, tag+"/moddown-intt",
		graph.Tensor{Digits: 1, Limbs: 2 * b.P.Alpha, N: n})
	mdIntt.SubNTTLen = n
	mdIntt.Tag = tag
	g.Connect(inp, mdIntt)

	mdBc := g.AddNode(graph.OpBConv, tag+"/moddown-bconv",
		graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
	mdBc.BConvWidth = b.P.Alpha
	mdBc.Tag = tag
	g.Connect(mdIntt, mdBc)
	g.ConnectAux(bconvM, mdBc, bconvM.Name)

	mdNtt := g.AddNode(graph.OpNTT, tag+"/moddown-ntt",
		graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
	mdNtt.SubNTTLen = n
	mdNtt.Tag = tag
	g.Connect(mdBc, mdNtt)

	fix := g.AddNode(graph.OpEWMul, tag+"/moddown-fix",
		graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
	fix.Tag = tag
	g.Connect(inp, fix)
	g.Connect(mdNtt, fix)
	return fix
}

// HMult builds homomorphic multiplication: tensor product, key-switch of
// d2, and fold-in. The result stays un-rescaled; call Rescale.
func (b *Builder) HMult(x, y *graph.Node, level int, tag string) *graph.Node {
	g := b.G
	n := b.P.N()
	l := b.limbs(level)

	tensor := g.AddNode(graph.OpEWMul, tag+"/tensor",
		graph.Tensor{Digits: 1, Limbs: 3 * l, N: n}) // d0, d1, d2
	tensor.Tag = tag
	g.Connect(x, tensor)
	g.Connect(y, tensor)

	ks := b.KeySwitch(tensor, level, fmt.Sprintf("evk:mult:l%d", level), tag+"/ks")

	fold := g.AddNode(graph.OpEWAdd, tag+"/fold",
		graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
	fold.Tag = tag
	g.Connect(tensor, fold)
	g.Connect(ks, fold)
	return fold
}

// Rescale drops the ciphertext one level.
func (b *Builder) Rescale(x *graph.Node, level int, tag string) *graph.Node {
	rs := b.G.AddNode(graph.OpRescale, tag+"/rescale",
		graph.Tensor{Digits: 1, Limbs: 2 * b.limbs(level-1), N: b.P.N()})
	rs.Tag = tag
	b.G.Connect(x, rs)
	return rs
}

// HAdd adds two ciphertexts.
func (b *Builder) HAdd(x, y *graph.Node, level int, tag string) *graph.Node {
	add := b.G.AddNode(graph.OpEWAdd, tag+"/hadd",
		graph.Tensor{Digits: 1, Limbs: 2 * b.limbs(level), N: b.P.N()})
	add.Tag = tag
	b.G.Connect(x, add)
	b.G.Connect(y, add)
	return add
}

// PMult multiplies by a plaintext identified by ptID (auxiliary data of
// one polynomial).
func (b *Builder) PMult(x *graph.Node, level int, ptID, tag string) *graph.Node {
	pt := b.constNode(ptID, b.ctShape(level))
	mul := b.G.AddNode(graph.OpEWMul, tag+"/pmult",
		graph.Tensor{Digits: 1, Limbs: 2 * b.limbs(level), N: b.P.N()})
	mul.Tag = tag
	b.G.Connect(x, mul)
	b.G.ConnectAux(pt, mul, ptID)
	return mul
}

// HRot builds a full homomorphic rotation: automorphism of both
// polynomials followed by a key-switch with the rotation evk.
func (b *Builder) HRot(x *graph.Node, level, amount int, tag string) *graph.Node {
	g := b.G
	l := b.limbs(level)
	n := b.P.N()

	auto := g.AddNode(graph.OpAutomorph, tag+"/auto",
		graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
	auto.Tag = tag
	g.Connect(x, auto)

	ks := b.KeySwitch(auto, level, fmt.Sprintf("evk:rot%d:l%d", amount, level), tag+"/ks")

	add := g.AddNode(graph.OpEWAdd, tag+"/fold",
		graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
	add.Tag = tag
	g.Connect(auto, add)
	g.Connect(ks, add)
	return add
}

// hoistedRotations builds the Hoisting structure of Figure 8(b): the
// Decomp/ModUp of x is shared, and each rotation applies its automorphism
// to the extended digits, inner-products with its own evk and mod-downs.
func (b *Builder) hoistedRotations(x *graph.Node, level int, amounts []int, tag string) []*graph.Node {
	g := b.G
	l := b.limbs(level)
	beta := b.beta(level)
	n := b.P.N()

	// Shared Decomp + ModUp.
	intt := g.AddNode(graph.OpINTT, tag+"/hoist-intt", b.ctShape(level))
	intt.SubNTTLen = n
	intt.Tag = tag
	g.Connect(x, intt)
	bconvM := b.constNode(fmt.Sprintf("bconvM:l%d", level),
		graph.Tensor{Digits: 1, Limbs: 1, N: b.P.Alpha * (l + b.P.Alpha)})
	digits := make([]*graph.Node, beta)
	for d := 0; d < beta; d++ {
		bc := g.AddNode(graph.OpBConv, fmt.Sprintf("%s/hoist-bconv[%d]", tag, d), b.extShape(level))
		bc.BConvWidth = b.P.Alpha
		bc.Tag = tag
		g.Connect(intt, bc)
		g.ConnectAux(bconvM, bc, bconvM.Name)
		ntt := g.AddNode(graph.OpNTT, fmt.Sprintf("%s/hoist-ntt[%d]", tag, d), b.extShape(level))
		ntt.SubNTTLen = n
		ntt.Tag = tag
		g.Connect(bc, ntt)
		digits[d] = ntt
	}

	outs := make([]*graph.Node, len(amounts))
	for i, r := range amounts {
		rtag := fmt.Sprintf("%s/r%d", tag, r)
		// Automorphism applied to the extended digits and to the input.
		auto := g.AddNode(graph.OpAutomorph, rtag+"/auto",
			graph.Tensor{Digits: beta, Limbs: l + b.P.Alpha, N: n})
		auto.Tag = tag
		for _, d := range digits {
			g.Connect(d, auto)
		}
		evkID := fmt.Sprintf("evk:rot%d:l%d", r, level)
		evk := b.constNode(evkID, b.evkShape(level))
		inp := g.AddNode(graph.OpInP, rtag+"/kskinp",
			graph.Tensor{Digits: 1, Limbs: 2 * (l + b.P.Alpha), N: n})
		inp.Tag = tag
		g.Connect(auto, inp)
		inp.InEdges[0].Shape.Digits = beta
		g.ConnectAux(evk, inp, evkID)

		mdIntt := g.AddNode(graph.OpINTT, rtag+"/moddown-intt",
			graph.Tensor{Digits: 1, Limbs: 2 * b.P.Alpha, N: n})
		mdIntt.SubNTTLen = n
		mdIntt.Tag = tag
		g.Connect(inp, mdIntt)
		mdBc := g.AddNode(graph.OpBConv, rtag+"/moddown-bconv",
			graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
		mdBc.BConvWidth = b.P.Alpha
		mdBc.Tag = tag
		g.Connect(mdIntt, mdBc)
		g.ConnectAux(bconvM, mdBc, bconvM.Name)
		mdNtt := g.AddNode(graph.OpNTT, rtag+"/moddown-ntt",
			graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
		mdNtt.SubNTTLen = n
		mdNtt.Tag = tag
		g.Connect(mdBc, mdNtt)

		fold := g.AddNode(graph.OpEWAdd, rtag+"/fold",
			graph.Tensor{Digits: 1, Limbs: 2 * l, N: n})
		fold.Tag = tag
		g.Connect(inp, fold)
		g.Connect(mdNtt, fold)
		g.Connect(x, fold) // the rotated b-part contribution
		outs[i] = fold
	}
	return outs
}

// BabyRotations builds the n1 baby-step ciphertexts with the selected
// rotation structure (Figure 8). rHyb is only used in hybrid mode.
func (b *Builder) BabyRotations(x *graph.Node, level, n1 int, mode RotMode, rHyb int, tag string) []*graph.Node {
	return b.BabyRotationsStride(x, level, n1, 1, mode, rHyb, tag)
}

// BabyRotationsStride is BabyRotations with every rotation amount scaled
// by stride.
func (b *Builder) BabyRotationsStride(x *graph.Node, level, n1, stride int, mode RotMode, rHyb int, tag string) []*graph.Node {
	if stride < 1 {
		stride = 1
	}
	switch mode {
	case RotMinKS:
		outs := make([]*graph.Node, n1)
		outs[0] = x
		cur := x
		for i := 1; i < n1; i++ {
			cur = b.HRot(cur, level, stride, fmt.Sprintf("%s/minks%d", tag, i))
			outs[i] = cur
		}
		return outs
	case RotHoisted:
		amounts := make([]int, 0, n1-1)
		for i := 1; i < n1; i++ {
			amounts = append(amounts, stride*i)
		}
		outs := make([]*graph.Node, n1)
		outs[0] = x
		copy(outs[1:], b.hoistedRotations(x, level, amounts, tag))
		return outs
	case RotHybrid:
		if rHyb < 1 {
			rHyb = 1
		}
		outs := make([]*graph.Node, n1)
		coarse := x
		for base := 0; base < n1; base += rHyb {
			if base > 0 {
				coarse = b.HRot(coarse, level, stride*rHyb, fmt.Sprintf("%s/coarse%d", tag, base))
			}
			outs[base] = coarse
			var fine []int
			for f := 1; f < rHyb && base+f < n1; f++ {
				fine = append(fine, stride*f)
			}
			if len(fine) > 0 {
				hs := b.hoistedRotations(coarse, level, fine, fmt.Sprintf("%s/fine%d", tag, base))
				copy(outs[base+1:], hs)
			}
		}
		return outs
	}
	panic("workload: unknown rotation mode")
}

// BSGSMatVec builds Algorithm 1: baby rotations, diagonal PMults with
// partial-sum accumulation, giant-step rotations, and a final rescale.
// diags caps the number of non-zero diagonals (structured matrices have
// far fewer than n1·n2). Returns the output node.
func (b *Builder) BSGSMatVec(x *graph.Node, level, n1, n2, diags int, mode RotMode, rHyb int, tag string) *graph.Node {
	return b.BSGSMatVecStride(x, level, n1, n2, diags, 1, mode, rHyb, tag)
}

// BSGSMatVecStride is BSGSMatVec with every rotation amount scaled by
// stride — the per-stage rotation bases of a radix-decomposed homomorphic
// DFT (stage s of radix r rotates by multiples of r^s), which is what
// gives each CoeffToSlot/SlotToCoeff stage its own distinct evk set.
func (b *Builder) BSGSMatVecStride(x *graph.Node, level, n1, n2, diags, stride int, mode RotMode, rHyb int, tag string) *graph.Node {
	if stride < 1 {
		stride = 1
	}
	babies := b.BabyRotationsStride(x, level, n1, stride, mode, rHyb, tag+"/baby")
	var acc *graph.Node
	used := 0
	for j := 0; j < n2 && used < diags; j++ {
		var inner *graph.Node
		for i := 0; i < n1 && used < diags; i++ {
			ptID := fmt.Sprintf("pt:%s:d%d", tag, n1*j+i)
			term := b.PMult(babies[i], level, ptID, fmt.Sprintf("%s/g%d/b%d", tag, j, i))
			used++
			if inner == nil {
				inner = term
			} else {
				inner = b.HAdd(inner, term, level, fmt.Sprintf("%s/g%d/acc%d", tag, j, i))
			}
		}
		if inner == nil {
			break
		}
		if j > 0 {
			inner = b.HRot(inner, level, stride*n1*j, fmt.Sprintf("%s/giant%d", tag, j))
		}
		if acc == nil {
			acc = inner
		} else {
			acc = b.HAdd(acc, inner, level, fmt.Sprintf("%s/gacc%d", tag, j))
		}
	}
	return b.Rescale(acc, level, tag)
}

package workload

import (
	"fmt"
	"strings"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/graph"
)

var testParams = arch.ParamSet{Name: "test", LogN: 12, L: 7, LBoot: 5, DNum: 4, Alpha: 2}

func TestKeySwitchStructure(t *testing.T) {
	b := NewBuilder(testParams)
	level := 5 // limbs = 6, beta = 3
	in := b.Input("x", level)
	out := b.KeySwitch(in, level, "evk:test", "ks")
	b.Output(out)

	s := b.G.Summarise(8)
	// Expect: 1 decomp iNTT, β BConv + β NTT (ModUp), 1 InP,
	// ModDown: 1 iNTT + 1 BConv + 1 NTT, 1 EW fix.
	beta := 3
	if got := s.KindCounts[graph.OpBConv]; got != beta+1 {
		t.Errorf("BConv count %d want %d", got, beta+1)
	}
	if got := s.KindCounts[graph.OpNTT]; got != beta+1 {
		t.Errorf("NTT count %d want %d", got, beta+1)
	}
	if got := s.KindCounts[graph.OpINTT]; got != 2 {
		t.Errorf("iNTT count %d want 2", got)
	}
	if got := s.KindCounts[graph.OpInP]; got != 1 {
		t.Errorf("InP count %d want 1", got)
	}
	// The evk aux must be present exactly once.
	if s.UniqueAuxes < 2 { // evk + bconv matrix
		t.Errorf("unique auxes %d", s.UniqueAuxes)
	}
}

func TestEvkShapeMatchesPaper(t *testing.T) {
	// evk shape is 2 × dnum × (α+ℓ+1) × N (§II-A).
	b := NewBuilder(testParams)
	level := testParams.L
	sh := b.evkShape(level)
	beta := (level + testParams.Alpha) / testParams.Alpha
	if sh.Digits != 2*beta {
		t.Errorf("evk digits %d want %d", sh.Digits, 2*beta)
	}
	if sh.Limbs != level+1+testParams.Alpha {
		t.Errorf("evk limbs %d", sh.Limbs)
	}
	if sh.N != testParams.N() {
		t.Errorf("evk N %d", sh.N)
	}
}

func TestHMultIncludesKeySwitchAndTensor(t *testing.T) {
	b := NewBuilder(testParams)
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	out := b.HMult(x, y, 4, "hm")
	rs := b.Rescale(out, 4, "hm")
	b.Output(rs)

	s := b.G.Summarise(8)
	if s.KindCounts[graph.OpEWMul] < 2 { // tensor + moddown fix
		t.Errorf("EWMul count %d", s.KindCounts[graph.OpEWMul])
	}
	if s.KindCounts[graph.OpRescale] != 1 {
		t.Errorf("rescale count %d", s.KindCounts[graph.OpRescale])
	}
	// Graph must be acyclic and connected to the output.
	b.G.Topological()
}

func TestHRotHasAutomorphism(t *testing.T) {
	b := NewBuilder(testParams)
	x := b.Input("x", 3)
	out := b.HRot(x, 3, 5, "rot")
	b.Output(out)
	s := b.G.Summarise(8)
	if s.KindCounts[graph.OpAutomorph] != 1 {
		t.Errorf("automorph count %d", s.KindCounts[graph.OpAutomorph])
	}
}

func TestBabyRotationModes(t *testing.T) {
	level, n1 := 5, 8
	type result struct {
		nodes, evks int
	}
	results := map[RotMode]result{}
	for _, mode := range []RotMode{RotMinKS, RotHoisted, RotHybrid} {
		b := NewBuilder(testParams)
		x := b.Input("x", level)
		outs := b.BabyRotations(x, level, n1, mode, 4, "baby")
		if len(outs) != n1 {
			t.Fatalf("%v: %d outputs", mode, len(outs))
		}
		for i, o := range outs {
			if o == nil {
				t.Fatalf("%v: nil output %d", mode, i)
			}
			b.Output(o)
		}
		b.G.Topological() // acyclic check
		s := b.G.Summarise(8)
		evks := 0
		for _, node := range b.G.Nodes {
			if node.Kind == graph.OpConst && strings.HasPrefix(node.Name, "evk:") {
				evks++
			}
		}
		results[mode] = result{nodes: s.ComputeOps, evks: evks}
	}
	// Figure 8 trade-off: Min-KS uses 1 evk, Hoisting n1−1, Hybrid in
	// between (stride key + fine keys).
	if results[RotMinKS].evks != 1 {
		t.Errorf("min-ks evks %d want 1", results[RotMinKS].evks)
	}
	if results[RotHoisted].evks != n1-1 {
		t.Errorf("hoisting evks %d want %d", results[RotHoisted].evks, n1-1)
	}
	hy := results[RotHybrid].evks
	if hy <= 1 || hy >= n1-1 {
		t.Errorf("hybrid evks %d not strictly between", hy)
	}
	// Hoisting must save ModUp work vs Min-KS: fewer compute ops.
	if results[RotHoisted].nodes >= results[RotMinKS].nodes {
		t.Errorf("hoisting ops %d not fewer than min-ks %d",
			results[RotHoisted].nodes, results[RotMinKS].nodes)
	}
}

func TestBSGSMatVecBuilds(t *testing.T) {
	b := NewBuilder(testParams)
	x := b.Input("x", 5)
	out := b.BSGSMatVec(x, 5, 4, 4, 16, RotHoisted, 0, "mv")
	b.Output(out)
	b.G.Topological()
	s := b.G.Summarise(8)
	// 16 diagonals → 16 PMults; each PMult is an EWMul with a pt aux.
	pmults := 0
	for _, n := range b.G.Nodes {
		if n.Kind == graph.OpEWMul && strings.Contains(n.Name, "pmult") {
			pmults++
		}
	}
	if pmults != 16 {
		t.Errorf("pmult count %d want 16", pmults)
	}
	if s.KindCounts[graph.OpRescale] != 1 {
		t.Errorf("rescale count %d", s.KindCounts[graph.OpRescale])
	}
}

func TestBootstrappingWorkload(t *testing.T) {
	for _, mode := range []RotMode{RotMinKS, RotHoisted, RotHybrid} {
		w := Bootstrapping(testParams, mode, 4)
		if len(w.Segments) < 4 {
			t.Fatalf("%v: %d segments", mode, len(w.Segments))
		}
		if w.TotalOps() == 0 || w.TotalModMuls() == 0 {
			t.Fatalf("%v: empty workload", mode)
		}
		for _, s := range w.Segments {
			if s.Count < 1 {
				t.Fatalf("segment %s count %d", s.Name, s.Count)
			}
			s.G.Topological()
		}
	}
}

func TestWorkloadRelativeSizes(t *testing.T) {
	boot := Bootstrapping(testParams, RotHoisted, 0)
	r20 := ResNet(testParams, 20, RotHoisted, 0)
	r110 := ResNet(testParams, 110, RotHoisted, 0)
	if r110.TotalModMuls() <= r20.TotalModMuls() {
		t.Fatal("ResNet-110 should outweigh ResNet-20")
	}
	ratio := float64(r110.TotalModMuls()) / float64(r20.TotalModMuls())
	if ratio < 3 || ratio > 8 {
		t.Fatalf("ResNet-110/20 load ratio %.1f implausible (want ~5.5)", ratio)
	}
	if r20.TotalModMuls() <= boot.TotalModMuls() {
		t.Fatal("ResNet-20 (with 10 bootstraps) should outweigh one bootstrap")
	}
}

func TestHybridUsesFewerKeySwitchesThanMinKS(t *testing.T) {
	// §V-C: hybrid saves n1 − ceil(n1/r) ModUp/ModDown chains vs Min-KS.
	level, n1, r := 5, 16, 4
	count := func(mode RotMode) int64 {
		b := NewBuilder(testParams)
		x := b.Input("x", level)
		for i, o := range b.BabyRotations(x, level, n1, mode, r, "baby") {
			if i > 0 {
				b.Output(o)
			}
		}
		return b.G.TotalModMuls()
	}
	minks := count(RotMinKS)
	hybrid := count(RotHybrid)
	hoist := count(RotHoisted)
	if !(hoist < hybrid && hybrid < minks) {
		t.Fatalf("modmul ordering hoist %d < hybrid %d < minks %d violated",
			hoist, hybrid, minks)
	}
}

func TestDecomposeNTTsRewrite(t *testing.T) {
	b := NewBuilder(testParams)
	x := b.Input("x", 4)
	out := b.KeySwitch(x, 4, "evk:t", "ks")
	b.Output(out)

	before := b.G.Summarise(8)
	re := graph.DecomposeNTTs(b.G, nil)
	after := re.Summarise(8)

	if after.KindCounts[graph.OpNTT] != 0 || after.KindCounts[graph.OpINTT] != 0 {
		t.Fatal("whole NTTs remain after decomposition")
	}
	wholeNTTs := before.KindCounts[graph.OpNTT] + before.KindCounts[graph.OpINTT]
	if after.KindCounts[graph.OpNTTCol] != wholeNTTs ||
		after.KindCounts[graph.OpNTTRow] != wholeNTTs {
		t.Fatalf("col/row counts %d/%d want %d",
			after.KindCounts[graph.OpNTTCol], after.KindCounts[graph.OpNTTRow], wholeNTTs)
	}
	if after.KindCounts[graph.OpTranspose] != wholeNTTs {
		t.Fatal("transpose count")
	}
	re.Topological() // still acyclic

	// Butterfly work is preserved: N/2·logN split as N/2·logN1 + N/2·logN2
	// (plus the twiddle multiplies).
	if after.ModMuls <= before.ModMuls {
		t.Fatal("decomposed graph should add twiddle multiplies")
	}
}

func TestBalancedSplit(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 64: {8, 8}, 4096: {64, 64}, 32: {8, 4}}
	for n, want := range cases {
		n1, n2 := graph.BalancedSplit(n)
		if n1 != want[0] || n2 != want[1] {
			t.Errorf("BalancedSplit(%d) = %d,%d", n, n1, n2)
		}
	}
}

func TestStandardSet(t *testing.T) {
	ws := StandardSet(testParams, RotHoisted, 0)
	if len(ws) != 4 {
		t.Fatalf("standard set size %d", len(ws))
	}
	names := []string{"bootstrapping", "helr1024", "resnet-20", "resnet-110"}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Errorf("workload %d = %s want %s", i, w.Name, names[i])
		}
		if w.DataParallel < 1 {
			t.Errorf("%s: data parallel %d", w.Name, w.DataParallel)
		}
	}
}

func TestWorkloadDecomposeNTTs(t *testing.T) {
	w := Bootstrapping(testParams, RotHoisted, 0)
	d := w.DecomposeNTTs()
	if len(d.Segments) != len(w.Segments) {
		t.Fatal("segment count changed")
	}
	for i := range d.Segments {
		if d.Segments[i].Count != w.Segments[i].Count {
			t.Fatal("segment counts changed")
		}
		s := d.Segments[i].G.Summarise(8)
		if s.KindCounts[graph.OpNTT]+s.KindCounts[graph.OpINTT] != 0 {
			t.Fatal("NTTs remain")
		}
	}
}

func TestBSGSMatVecStrideScalesRotations(t *testing.T) {
	// With stride s, every rotation evk id must reference a multiple of s.
	b := NewBuilder(testParams)
	x := b.Input("x", 5)
	out := b.BSGSMatVecStride(x, 5, 4, 4, 16, 8, RotHoisted, 0, "mv")
	b.Output(out)
	found := 0
	for _, n := range b.G.Nodes {
		if n.Kind != graph.OpConst || !strings.HasPrefix(n.Name, "evk:rot") {
			continue
		}
		var amount, level int
		if _, err := fmt.Sscanf(n.Name, "evk:rot%d:l%d", &amount, &level); err != nil {
			t.Fatalf("unparseable evk id %q", n.Name)
		}
		if amount%8 != 0 {
			t.Fatalf("rotation amount %d not a multiple of stride 8", amount)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no rotation evks found")
	}
	// Distinct stride → distinct evk set from the unit-stride version.
	b2 := NewBuilder(testParams)
	x2 := b2.Input("x", 5)
	b2.Output(b2.BSGSMatVec(x2, 5, 4, 4, 16, RotHoisted, 0, "mv"))
	if b.G.Fingerprint() == b2.G.Fingerprint() {
		// Fingerprints abstract aux identity, so equality is expected —
		// the *structure* matches; what differs is the evk naming, which
		// matters for cross-segment sharing.
		ids := func(g *graph.Graph) map[string]bool {
			out := map[string]bool{}
			for _, n := range g.Nodes {
				if n.Kind == graph.OpConst && strings.HasPrefix(n.Name, "evk:rot") {
					out[n.Name] = true
				}
			}
			return out
		}
		a, c := ids(b.G), ids(b2.G)
		same := true
		for k := range a {
			if !c[k] {
				same = false
			}
		}
		if same {
			t.Fatal("strided matvec shares all evk ids with unit stride")
		}
	}
}

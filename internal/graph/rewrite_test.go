package graph

import (
	"strings"
	"testing"
)

// Edge cases of the NTT-decomposition rewrite: empty graphs, singleton
// graphs, aux-edge preservation and cyclic inputs.

func TestDecomposeEmptyGraph(t *testing.T) {
	dst := DecomposeNTTs(New(), nil)
	if len(dst.Nodes) != 0 {
		t.Fatalf("empty graph decomposed into %d nodes", len(dst.Nodes))
	}
}

func TestDecomposeSingleNonNTTNode(t *testing.T) {
	src := New()
	src.AddNode(OpEWAdd, "add", Tensor{Limbs: 2, N: 8})
	dst := DecomposeNTTs(src, nil)
	if len(dst.Nodes) != 1 {
		t.Fatalf("got %d nodes, want 1", len(dst.Nodes))
	}
	if dst.Nodes[0].Kind != OpEWAdd || dst.Nodes[0].Name != "add" {
		t.Fatalf("node mangled: %v %q", dst.Nodes[0].Kind, dst.Nodes[0].Name)
	}
}

func TestDecomposeSingleNTTNode(t *testing.T) {
	src := New()
	src.AddNode(OpNTT, "ntt", Tensor{Limbs: 2, N: 16})
	dst := DecomposeNTTs(src, nil)
	if len(dst.Nodes) != 4 {
		t.Fatalf("NTT decomposed into %d nodes, want 4", len(dst.Nodes))
	}
	wantKinds := []OpKind{OpNTTCol, OpTwiddle, OpTranspose, OpNTTRow}
	for i, k := range wantKinds {
		if dst.Nodes[i].Kind != k {
			t.Fatalf("node %d kind %v, want %v", i, dst.Nodes[i].Kind, k)
		}
	}
	// Balanced split of 16 is 4×4: the column part runs length-4
	// sub-transforms (N2) and the row part length-4 (N1).
	if dst.Nodes[0].SubNTTLen != 4 || dst.Nodes[3].SubNTTLen != 4 {
		t.Fatalf("split lengths %d/%d, want 4/4",
			dst.Nodes[0].SubNTTLen, dst.Nodes[3].SubNTTLen)
	}
	// Chain col→twiddle→transpose→row.
	for i := 0; i < 3; i++ {
		if len(dst.Nodes[i].OutEdges) != 1 || dst.Nodes[i].OutEdges[0].To != dst.Nodes[i+1] {
			t.Fatalf("chain broken at node %d", i)
		}
	}
}

func TestDecomposePreservesAuxEdges(t *testing.T) {
	src := New()
	c := src.AddNode(OpConst, "twiddles", Tensor{Limbs: 1, N: 16})
	n := src.AddNode(OpNTT, "ntt", Tensor{Limbs: 2, N: 16})
	src.ConnectAux(c, n, "tw")
	dst := DecomposeNTTs(src, nil)
	var col *Node
	for _, m := range dst.Nodes {
		if m.Kind == OpNTTCol {
			col = m
		}
	}
	if col == nil {
		t.Fatal("no column NTT in decomposition")
	}
	found := false
	for _, e := range col.InEdges {
		if e.Class == Auxiliary && e.AuxID == "tw" {
			found = true
		}
	}
	if !found {
		t.Fatal("aux edge not rewired onto the decomposition head")
	}
}

func TestDecomposeCyclicInputPanics(t *testing.T) {
	src := New()
	a := src.AddNode(OpEWAdd, "a", Tensor{Limbs: 1, N: 4})
	b := src.AddNode(OpEWMul, "b", Tensor{Limbs: 1, N: 4})
	src.Connect(a, b)
	src.Connect(b, a)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cyclic graph did not panic")
		}
		if !strings.Contains(r.(string), "cycle") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	DecomposeNTTs(src, nil)
}

func TestBalancedSplitEdgeCases(t *testing.T) {
	cases := []struct{ n, n1, n2 int }{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{8, 4, 2},
		{16, 4, 4},
		{1 << 16, 1 << 8, 1 << 8},
	}
	for _, c := range cases {
		n1, n2 := BalancedSplit(c.n)
		if n1 != c.n1 || n2 != c.n2 {
			t.Errorf("BalancedSplit(%d) = (%d,%d), want (%d,%d)", c.n, n1, n2, c.n1, c.n2)
		}
		if n1*n2 != c.n {
			t.Errorf("BalancedSplit(%d): %d×%d ≠ %d", c.n, n1, n2, c.n)
		}
	}
}

package graph

import "testing"

func simpleChain(names [3]string, auxID string) *Graph {
	g := New()
	shape := Tensor{Digits: 1, Limbs: 3, N: 256}
	a := g.AddNode(OpEWMul, names[0], shape)
	b := g.AddNode(OpNTT, names[1], shape)
	b.SubNTTLen = 256
	c := g.AddNode(OpEWAdd, names[2], shape)
	evk := g.AddNode(OpConst, "k", Tensor{Digits: 2, Limbs: 5, N: 256})
	g.Connect(a, b)
	g.Connect(b, c)
	g.ConnectAux(evk, c, auxID)
	return g
}

func TestFingerprintIgnoresNames(t *testing.T) {
	g1 := simpleChain([3]string{"x", "y", "z"}, "evk:rot1:l3")
	g2 := simpleChain([3]string{"p", "q", "r"}, "evk:rot7:l9")
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("fingerprint should abstract names and aux identities")
	}
}

func TestFingerprintDetectsStructure(t *testing.T) {
	base := simpleChain([3]string{"a", "b", "c"}, "evk:r:l")

	// Different kind.
	g2 := New()
	shape := Tensor{Digits: 1, Limbs: 3, N: 256}
	a := g2.AddNode(OpEWAdd, "a", shape) // was EWMul
	b := g2.AddNode(OpNTT, "b", shape)
	b.SubNTTLen = 256
	c := g2.AddNode(OpEWAdd, "c", shape)
	evk := g2.AddNode(OpConst, "k", Tensor{Digits: 2, Limbs: 5, N: 256})
	g2.Connect(a, b)
	g2.Connect(b, c)
	g2.ConnectAux(evk, c, "evk:r:l")
	if base.Fingerprint() == g2.Fingerprint() {
		t.Fatal("different op kinds must change the fingerprint")
	}

	// Different shape.
	g3 := simpleChain([3]string{"a", "b", "c"}, "evk:r:l")
	g3.Nodes[0].Out.Limbs = 4
	if base.Fingerprint() == g3.Fingerprint() {
		t.Fatal("different shapes must change the fingerprint")
	}
}

func TestFingerprintDistinguishesAuxSharing(t *testing.T) {
	// Two consumers of the SAME aux vs two DIFFERENT auxes.
	build := func(sameAux bool) *Graph {
		g := New()
		shape := Tensor{Digits: 1, Limbs: 2, N: 64}
		evk := g.AddNode(OpConst, "k", shape)
		a := g.AddNode(OpInP, "a", shape)
		b := g.AddNode(OpInP, "b", shape)
		g.Connect(a, b)
		g.ConnectAux(evk, a, "evk:x")
		id := "evk:x"
		if !sameAux {
			id = "evk:y"
		}
		g.ConnectAux(evk, b, id)
		return g
	}
	if build(true).Fingerprint() == build(false).Fingerprint() {
		t.Fatal("aux sharing pattern must be part of the fingerprint")
	}
}

func TestFingerprintDistinguishesEvkFromPlaintext(t *testing.T) {
	build := func(id string) *Graph {
		g := New()
		shape := Tensor{Digits: 1, Limbs: 2, N: 64}
		cst := g.AddNode(OpConst, "k", shape)
		a := g.AddNode(OpEWMul, "a", shape)
		g.ConnectAux(cst, a, id)
		return g
	}
	if build("evk:r1").Fingerprint() == build("pt:diag1").Fingerprint() {
		t.Fatal("evk and plaintext aux classes must differ")
	}
}

func TestFingerprintStable(t *testing.T) {
	g := simpleChain([3]string{"a", "b", "c"}, "evk:r:l")
	if g.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

package graph

// DecomposeNTTs returns a copy of the graph in which every whole NTT/iNTT
// node is replaced by its four-step decomposition (§V-B / Figure 7):
//
//	col-(i)NTT → twiddle ⊗ → transpose → row-(i)NTT
//
// The column and row parts have N1 (resp. N2) independent sub-transforms
// and therefore stream — they no longer break orientation — while the
// transpose runs on the dedicated transpose unit. split chooses N = N1×N2
// for a given N; a nil split uses the balanced power-of-two split.
func DecomposeNTTs(src *Graph, split func(n int) (n1, n2 int)) *Graph {
	if split == nil {
		split = BalancedSplit
	}
	dst := New()
	// head/tail map an original node to its replacement chain ends.
	head := make(map[*Node]*Node, len(src.Nodes))
	tail := make(map[*Node]*Node, len(src.Nodes))

	for _, n := range src.Topological() {
		switch n.Kind {
		case OpNTT, OpINTT:
			n1, n2 := split(n.Out.N)
			colKind, rowKind := OpNTTCol, OpNTTRow
			col := dst.AddNode(colKind, n.Name+"/col", n.Out)
			col.SubNTTLen = n2
			col.Tag = n.Tag
			tw := dst.AddNode(OpTwiddle, n.Name+"/twiddle", n.Out)
			tw.Tag = n.Tag
			tr := dst.AddNode(OpTranspose, n.Name+"/transpose", n.Out)
			tr.Tag = n.Tag
			row := dst.AddNode(rowKind, n.Name+"/row", n.Out)
			row.SubNTTLen = n1
			row.Tag = n.Tag
			dst.Connect(col, tw)
			dst.Connect(tw, tr)
			dst.Connect(tr, row)
			head[n], tail[n] = col, row
		default:
			c := dst.AddNode(n.Kind, n.Name, n.Out)
			c.SubNTTLen = n.SubNTTLen
			c.BConvWidth = n.BConvWidth
			c.Tag = n.Tag
			head[n], tail[n] = c, c
		}
		for _, e := range n.InEdges {
			from := tail[e.From]
			to := head[n]
			var ne *Edge
			if e.Class == Auxiliary {
				ne = dst.ConnectAux(from, to, e.AuxID)
			} else {
				ne = dst.Connect(from, to)
			}
			ne.Shape = e.Shape
		}
	}
	return dst
}

// BalancedSplit returns the near-square power-of-two factorisation of n.
func BalancedSplit(n int) (int, int) {
	n1 := 1
	for n1*n1 < n {
		n1 <<= 1
	}
	if n1 > n {
		n1 = n
	}
	return n1, n / n1
}

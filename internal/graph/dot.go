package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection of
// workload structure and scheduler decisions. Intermediate edges are
// solid, auxiliary edges dashed and labelled with their aux id; operator
// kinds select node shapes (NTT-family boxes, data movement ellipses,
// constants/IO diamonds).
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", title); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case OpAutomorph, OpTranspose:
			shape = "ellipse"
		case OpConst, OpInput, OpOutput:
			shape = "diamond"
		}
		label := fmt.Sprintf("%s\\n%s", n.Kind, n.Name)
		if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n", n.ID, label, shape); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes {
		for _, e := range n.OutEdges {
			attrs := ""
			if e.Class == Auxiliary {
				attrs = fmt.Sprintf(" [style=dashed label=%q]", shorten(e.AuxID))
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.From.ID, e.To.ID, attrs); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func shorten(s string) string {
	if len(s) > 24 {
		return s[:21] + "..."
	}
	return strings.ReplaceAll(s, "\"", "'")
}

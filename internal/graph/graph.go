// Package graph defines the FHE operator dataflow IR that the CROPHE
// scheduler optimises and the cycle simulator executes. Nodes are the
// primitive operators of §II (element-wise ops, BConv matrix multiplies,
// evk inner products, NTT/iNTT — whole or four-step-decomposed —
// automorphisms, twiddle multiplies and transposes); edges carry either
// intermediate ciphertext tensors or auxiliary constant data (evks, BConv
// matrices, plaintexts), the two data classes whose reuse §V-A pipelines
// and shares.
package graph

import (
	"fmt"
	"sort"
)

// OpKind enumerates the primitive FHE operator types.
type OpKind int

// Primitive operator kinds.
const (
	OpEWAdd     OpKind = iota // element-wise addition/subtraction
	OpEWMul                   // element-wise multiplication
	OpBConv                   // base conversion (matrix multiply with constant)
	OpInP                     // inner product with evk along the digit dim
	OpNTT                     // whole negacyclic NTT (log N ▷ N loop nest)
	OpINTT                    // whole inverse NTT
	OpNTTCol                  // four-step column (i)NTT: N1 independent length-N2 transforms
	OpNTTRow                  // four-step row (i)NTT: N2 independent length-N1 transforms
	OpTwiddle                 // element-wise twiddle multiply of the four-step NTT
	OpTranspose               // on-chip data transposition (transpose unit)
	OpAutomorph               // coefficient permutation i → i·5^r
	OpRescale                 // per-limb rescale arithmetic
	OpConst                   // source of auxiliary constant data (evk, BConv matrix, plaintext)
	OpInput                   // external ciphertext input
	OpOutput                  // external ciphertext output sink
)

var kindNames = map[OpKind]string{
	OpEWAdd: "ew-add", OpEWMul: "ew-mul", OpBConv: "bconv", OpInP: "inp",
	OpNTT: "ntt", OpINTT: "intt", OpNTTCol: "ntt-col", OpNTTRow: "ntt-row",
	OpTwiddle: "twiddle", OpTranspose: "transpose", OpAutomorph: "automorph",
	OpRescale: "rescale", OpConst: "const", OpInput: "input", OpOutput: "output",
}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// IsCompute reports whether the kind performs work on PEs (vs being a
// graph-structural source/sink).
func (k OpKind) IsCompute() bool {
	return k != OpConst && k != OpInput && k != OpOutput
}

// BreaksOrientation reports whether the operator needs all N slots of a
// limb before producing output — the orientation switches of MAD/§V-B
// that terminate fine-grained pipelines. The four-step column/row NTTs do
// NOT break orientation (that is the point of the decomposition); the
// transpose between them is handled by the dedicated transpose unit.
func (k OpKind) BreaksOrientation() bool {
	switch k {
	case OpNTT, OpINTT, OpAutomorph, OpTranspose:
		return true
	}
	return false
}

// Tensor describes the shape of data on an edge: Digits × Limbs × N words.
type Tensor struct {
	Digits int // β dimension (1 when not digit-decomposed)
	Limbs  int // ℓ+1 (or α+ℓ+1 after ModUp)
	N      int // slot/coefficient dimension
}

// Elems returns the element count.
func (t Tensor) Elems() int64 {
	d := t.Digits
	if d == 0 {
		d = 1
	}
	return int64(d) * int64(t.Limbs) * int64(t.N)
}

// Bytes returns the footprint at the given word size.
func (t Tensor) Bytes(wordBytes float64) float64 {
	return float64(t.Elems()) * wordBytes
}

// DataClass distinguishes the two reuse classes of §V-A.
type DataClass int

// Edge data classes.
const (
	Intermediate DataClass = iota // ciphertext data pipelined producer→consumer
	Auxiliary                     // constant data shared among same-type operators
)

// Edge is a producer→consumer data dependency.
type Edge struct {
	From, To *Node
	Shape    Tensor
	Class    DataClass
	// AuxID identifies identical auxiliary data (e.g. the evk for
	// rotation amount r); operators consuming the same AuxID can share
	// one fetch. Empty for intermediates.
	AuxID string
}

// Node is one operator instance.
type Node struct {
	ID   int
	Kind OpKind
	Name string // human-readable role, e.g. "modup-bconv[d=2]"
	// Out is the output tensor shape of the operator.
	Out Tensor
	// In/OutEdges are populated by the Graph builder.
	InEdges  []*Edge
	OutEdges []*Edge
	// SubNTTLen is the transform length for NTT-family ops (N for whole
	// transforms, N1/N2 for decomposed parts).
	SubNTTLen int
	// BConvWidth is the source-limb count α of a BConv.
	BConvWidth int
	// Tag groups nodes belonging to the same composite (e.g. one
	// KeySwitch instance); used for redundancy merging and reporting.
	Tag string
}

// ModMuls estimates the modular-multiplication load of the node — the
// currency of the PE-allocation rule (§IV-B: PEs proportional to
// computational load).
func (n *Node) ModMuls() int64 {
	e := n.Out.Elems()
	switch n.Kind {
	case OpEWAdd:
		return e / 4 // adds are ~4× cheaper than muls on the lane datapath
	case OpEWMul, OpTwiddle:
		return e
	case OpBConv:
		return e * int64(n.BConvWidth)
	case OpInP:
		d := n.InEdges[0].Shape.Digits
		if d == 0 {
			d = 1
		}
		return e * int64(d)
	case OpNTT, OpINTT, OpNTTCol, OpNTTRow:
		l := n.SubNTTLen
		if l < 2 {
			l = n.Out.N
		}
		logL := int64(0)
		for v := l; v > 1; v >>= 1 {
			logL++
		}
		return e / 2 * logL // N/2·logN butterflies, 1 mul each
	case OpRescale:
		return 2 * e
	case OpAutomorph, OpTranspose:
		return 0 // pure data movement
	default:
		return 0
	}
}

// MoveElems returns the element-movement volume for data-movement ops.
func (n *Node) MoveElems() int64 {
	switch n.Kind {
	case OpAutomorph, OpTranspose:
		return n.Out.Elems()
	}
	return 0
}

// Graph is a DAG of operator nodes.
type Graph struct {
	Nodes []*Node
	nexts int
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node, assigning its ID.
func (g *Graph) AddNode(kind OpKind, name string, out Tensor) *Node {
	n := &Node{ID: g.nexts, Kind: kind, Name: name, Out: out}
	g.nexts++
	g.Nodes = append(g.Nodes, n)
	return n
}

// Connect adds an intermediate edge from producer to consumer, shaped by
// the producer's output.
func (g *Graph) Connect(from, to *Node) *Edge {
	e := &Edge{From: from, To: to, Shape: from.Out, Class: Intermediate}
	from.OutEdges = append(from.OutEdges, e)
	to.InEdges = append(to.InEdges, e)
	return e
}

// ConnectAux adds an auxiliary edge carrying constant data identified by
// auxID.
func (g *Graph) ConnectAux(from, to *Node, auxID string) *Edge {
	e := &Edge{From: from, To: to, Shape: from.Out, Class: Auxiliary, AuxID: auxID}
	from.OutEdges = append(from.OutEdges, e)
	to.InEdges = append(to.InEdges, e)
	return e
}

// ComputeNodes returns the nodes that run on PEs, in topological order.
func (g *Graph) ComputeNodes() []*Node {
	topo := g.Topological()
	out := make([]*Node, 0, len(topo))
	for _, n := range topo {
		if n.Kind.IsCompute() {
			out = append(out, n)
		}
	}
	return out
}

// Topological returns a deterministic topological ordering (Kahn's
// algorithm with ID tie-breaking). It panics on cycles, which would be a
// builder bug.
func (g *Graph) Topological() []*Node {
	indeg := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n] = len(n.InEdges)
	}
	var ready []*Node
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
	out := make([]*Node, 0, len(g.Nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		inserted := false
		for _, e := range n.OutEdges {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
				inserted = true
			}
		}
		if inserted {
			sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
		}
	}
	if len(out) != len(g.Nodes) {
		panic("graph: cycle detected")
	}
	return out
}

// TotalModMuls sums the modular-multiplication load over all nodes.
func (g *Graph) TotalModMuls() int64 {
	var total int64
	for _, n := range g.Nodes {
		total += n.ModMuls()
	}
	return total
}

// Stats summarises a graph for reports.
type Stats struct {
	Nodes       int
	ComputeOps  int
	ModMuls     int64
	InterBytes  float64 // intermediate edge traffic at 8-byte words
	AuxBytes    float64 // unique auxiliary data (deduplicated by AuxID)
	KindCounts  map[OpKind]int
	UniqueAuxes int
}

// Summarise computes Stats at the given word size.
func (g *Graph) Summarise(wordBytes float64) Stats {
	s := Stats{KindCounts: make(map[OpKind]int)}
	seenAux := map[string]bool{}
	for _, n := range g.Nodes {
		s.Nodes++
		if n.Kind.IsCompute() {
			s.ComputeOps++
		}
		s.KindCounts[n.Kind]++
		s.ModMuls += n.ModMuls()
		for _, e := range n.OutEdges {
			switch e.Class {
			case Intermediate:
				if e.From.Kind.IsCompute() && e.To.Kind.IsCompute() {
					s.InterBytes += e.Shape.Bytes(wordBytes)
				}
			case Auxiliary:
				if !seenAux[e.AuxID] {
					seenAux[e.AuxID] = true
					s.AuxBytes += e.Shape.Bytes(wordBytes)
					s.UniqueAuxes++
				}
			}
		}
	}
	return s
}

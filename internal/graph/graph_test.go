package graph

import (
	"strings"
	"testing"
)

func TestTensorElemsAndBytes(t *testing.T) {
	cases := []struct {
		ten  Tensor
		want int64
	}{
		{Tensor{Digits: 1, Limbs: 3, N: 64}, 192},
		{Tensor{Digits: 0, Limbs: 2, N: 16}, 32}, // zero digits treated as 1
		{Tensor{Digits: 4, Limbs: 5, N: 8}, 160},
	}
	for _, c := range cases {
		if got := c.ten.Elems(); got != c.want {
			t.Errorf("Elems(%+v) = %d want %d", c.ten, got, c.want)
		}
	}
	if b := (Tensor{Digits: 1, Limbs: 2, N: 4}).Bytes(8); b != 64 {
		t.Errorf("Bytes = %g", b)
	}
	if b := (Tensor{Digits: 1, Limbs: 2, N: 4}).Bytes(4.5); b != 36 {
		t.Errorf("Bytes(36-bit) = %g", b)
	}
}

func TestModMulCosts(t *testing.T) {
	g := New()
	shape := Tensor{Digits: 1, Limbs: 2, N: 1024}

	ew := g.AddNode(OpEWMul, "mul", shape)
	if ew.ModMuls() != 2048 {
		t.Errorf("ew-mul load %d", ew.ModMuls())
	}

	ntt := g.AddNode(OpNTT, "ntt", shape)
	ntt.SubNTTLen = 1024
	if want := int64(2 * 1024 / 2 * 10); ntt.ModMuls() != want {
		t.Errorf("ntt load %d want %d", ntt.ModMuls(), want)
	}

	col := g.AddNode(OpNTTCol, "col", shape)
	col.SubNTTLen = 32 // N1×N2 = 32×32
	if want := int64(2 * 1024 / 2 * 5); col.ModMuls() != want {
		t.Errorf("col-ntt load %d want %d", col.ModMuls(), want)
	}

	bc := g.AddNode(OpBConv, "bconv", Tensor{Digits: 1, Limbs: 5, N: 1024})
	bc.BConvWidth = 2
	if want := int64(5 * 1024 * 2); bc.ModMuls() != want {
		t.Errorf("bconv load %d want %d", bc.ModMuls(), want)
	}

	auto := g.AddNode(OpAutomorph, "auto", shape)
	if auto.ModMuls() != 0 || auto.MoveElems() != 2048 {
		t.Errorf("automorph load %d move %d", auto.ModMuls(), auto.MoveElems())
	}
}

func TestOrientationBreakers(t *testing.T) {
	breaking := []OpKind{OpNTT, OpINTT, OpAutomorph, OpTranspose}
	streaming := []OpKind{OpEWAdd, OpEWMul, OpBConv, OpInP, OpNTTCol, OpNTTRow, OpTwiddle}
	for _, k := range breaking {
		if !k.BreaksOrientation() {
			t.Errorf("%v should break orientation", k)
		}
	}
	for _, k := range streaming {
		if k.BreaksOrientation() {
			t.Errorf("%v should stream", k)
		}
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := New()
	shape := Tensor{Digits: 1, Limbs: 1, N: 8}
	a := g.AddNode(OpInput, "in", shape)
	b := g.AddNode(OpEWMul, "m1", shape)
	c := g.AddNode(OpEWAdd, "a1", shape)
	d := g.AddNode(OpOutput, "out", shape)
	// Deliberately connect out of creation order: a → c → b → d.
	g.Connect(a, c)
	g.Connect(c, b)
	g.Connect(b, d)

	topo := g.Topological()
	pos := map[*Node]int{}
	for i, n := range topo {
		pos[n] = i
	}
	for _, n := range g.Nodes {
		for _, e := range n.OutEdges {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("topological violation %s -> %s", e.From.Name, e.To.Name)
			}
		}
	}
	if len(topo) != 4 {
		t.Fatalf("topo length %d", len(topo))
	}
}

func TestTopologicalPanicsOnCycle(t *testing.T) {
	g := New()
	shape := Tensor{Digits: 1, Limbs: 1, N: 8}
	a := g.AddNode(OpEWMul, "a", shape)
	b := g.AddNode(OpEWMul, "b", shape)
	g.Connect(a, b)
	g.Connect(b, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cycle")
		}
	}()
	g.Topological()
}

func TestSummariseDeduplicatesAux(t *testing.T) {
	g := New()
	shape := Tensor{Digits: 1, Limbs: 2, N: 16}
	evk := g.AddNode(OpConst, "evk", Tensor{Digits: 2, Limbs: 4, N: 16})
	in := g.AddNode(OpInput, "in", shape)
	m1 := g.AddNode(OpInP, "inp1", shape)
	m2 := g.AddNode(OpInP, "inp2", shape)
	out := g.AddNode(OpOutput, "out", shape)
	g.Connect(in, m1)
	g.Connect(m1, m2)
	g.Connect(m2, out)
	g.ConnectAux(evk, m1, "evk:r1")
	g.ConnectAux(evk, m2, "evk:r1") // same aux consumed twice

	s := g.Summarise(8)
	if s.UniqueAuxes != 1 {
		t.Fatalf("unique auxes %d, want 1", s.UniqueAuxes)
	}
	wantAux := float64(2*4*16) * 8
	if s.AuxBytes != wantAux {
		t.Fatalf("aux bytes %g want %g", s.AuxBytes, wantAux)
	}
	// Intermediate bytes: only compute→compute edges count (m1→m2).
	if want := float64(2*16) * 8; s.InterBytes != want {
		t.Fatalf("intermediate bytes %g want %g", s.InterBytes, want)
	}
	if s.ComputeOps != 2 {
		t.Fatalf("compute ops %d", s.ComputeOps)
	}
}

func TestKindString(t *testing.T) {
	if OpNTT.String() != "ntt" || OpBConv.String() != "bconv" {
		t.Fatal("kind names")
	}
	if OpKind(99).String() != "op(99)" {
		t.Fatal("unknown kind fallback")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	shape := Tensor{Digits: 1, Limbs: 2, N: 16}
	a := g.AddNode(OpEWMul, "mul\"quoted", shape)
	b := g.AddNode(OpNTT, "ntt", shape)
	evk := g.AddNode(OpConst, "evk", shape)
	g.Connect(a, b)
	g.ConnectAux(evk, a, "evk:with-a-really-long-identifier-here")

	var buf strings.Builder
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "style=dashed", "shape=diamond", "rankdir=LR"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Long aux ids are shortened.
	if strings.Contains(out, "really-long-identifier-here") {
		t.Error("aux id not shortened")
	}
}

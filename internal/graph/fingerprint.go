package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint returns a structural hash of the graph: operator kinds,
// shapes, attributes and the edge pattern, with node identity abstracted
// to topological positions and auxiliary identities to their shapes and
// sharing pattern. Two graphs with equal fingerprints describe the same
// computation up to renaming — the redundancy the paper's pre-partitioning
// merges to "search only once" (§V-D). The scheduler memoises segment
// schedules by (fingerprint, hardware, options).
func (g *Graph) Fingerprint() string {
	topo := g.Topological()
	pos := make(map[*Node]int, len(topo))
	for i, n := range topo {
		pos[n] = i
	}
	// Canonical aux numbering: order of first appearance in topo order.
	auxNum := map[string]int{}
	h := sha256.New()
	buf := make([]byte, 8)
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf, uint64(int64(v)))
		h.Write(buf)
	}
	for _, n := range topo {
		writeInt(int(n.Kind))
		writeInt(n.Out.Digits)
		writeInt(n.Out.Limbs)
		writeInt(n.Out.N)
		writeInt(n.SubNTTLen)
		writeInt(n.BConvWidth)
		// Edges sorted by (consumer position, class) for determinism.
		edges := append([]*Edge(nil), n.OutEdges...)
		sort.Slice(edges, func(i, j int) bool {
			pi, pj := pos[edges[i].To], pos[edges[j].To]
			if pi != pj {
				return pi < pj
			}
			return edges[i].Class < edges[j].Class
		})
		writeInt(len(edges))
		for _, e := range edges {
			writeInt(pos[e.To])
			writeInt(int(e.Class))
			writeInt(e.Shape.Digits)
			writeInt(e.Shape.Limbs)
			writeInt(e.Shape.N)
			if e.Class == Auxiliary {
				id, ok := auxNum[e.AuxID]
				if !ok {
					id = len(auxNum)
					auxNum[e.AuxID] = id
				}
				writeInt(id)
				// Distinguish evk-class aux (PRNG-halved) from others.
				if isEvkID(e.AuxID) {
					writeInt(1)
				} else {
					writeInt(0)
				}
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func isEvkID(id string) bool {
	return len(id) >= 4 && id[:4] == "evk:"
}

package serve

import (
	"fmt"
	"net/http"

	"crophe"
	"crophe/internal/sim"
	"crophe/internal/workload"
)

// resolve maps the request's symbolic fields onto a design point and a
// workload, mirroring crophe-sim's conventions (hoisted rotations, NTT
// decomposition under the CROPHE dataflow).
func (req *ScheduleRequest) resolve() (crophe.Design, *crophe.Workload, string, error) {
	hw, ok := crophe.LookupHW(req.HW)
	if !ok {
		return crophe.Design{}, nil, "", fmt.Errorf("unknown hw %q", req.HW)
	}
	params := crophe.DefaultParamsFor(hw)
	w, ok := crophe.LookupWorkload(req.Workload, params, crophe.RotHoisted)
	if !ok {
		return crophe.Design{}, nil, "", fmt.Errorf("unknown workload %q", req.Workload)
	}
	var d crophe.Design
	switch req.Dataflow {
	case "", "crophe":
		d = crophe.CROPHEDesign(hw)
	case "mad":
		d = crophe.MADDesign(hw)
	default:
		return crophe.Design{}, nil, "", fmt.Errorf("unknown dataflow %q (want crophe or mad)", req.Dataflow)
	}
	// The memo key couples design identity with what the factory builds.
	wkey := params.Name + "/" + req.Workload + "/hoisted"
	return d, w, wkey, nil
}

// chaos honours an injected panic when the server allows it; the seed is
// registered first so the 500 carries it.
func (s *Server) chaos(r *http.Request, req *ScheduleRequest) {
	if s.cfg.AllowChaos && req.ChaosPanic {
		registerSeed(r, req.Seed)
		panic(fmt.Sprintf("chaos: injected request panic (seed %d)", req.Seed))
	}
}

// handleSchedule runs the dataflow search for one workload. Without a
// deadline the evaluation goes through the single-flight schedule memo
// (identical concurrent requests coalesce); with one, the search runs
// fresh under the request context and its deterministic anytime budget,
// and an expiring request returns its best-so-far schedule with
// "partial": true.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := decodeJSON(r, &req); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	d, wl, wkey, err := req.resolve()
	if err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.chaos(r, &req)

	ctx, cancel, deadline := s.requestBudget(r, req.DeadlineMS)
	defer cancel()

	resp := ScheduleResponse{Workload: wl.Name, HW: d.HW.Name}
	if deadline <= 0 {
		// The no-deadline path reads only summary fields, so it goes
		// through both memo tiers: the single-flight LRU and the warm
		// summaries a coordinator shipped to this process.
		sum, src := crophe.MemoizedScheduleSummary(d, wkey, func(m workload.RotMode, _ int) *crophe.Workload {
			return wl
		})
		resp.fillSummary(sum)
		resp.Cached = src.Cached()
	} else {
		sched, err := crophe.ScheduleWorkload(ctx, d, wl, deadline)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "schedule: %v", err)
			return
		}
		resp.fillSchedule(sched)
	}
	if resp.Partial {
		s.metrics.partials.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (resp *ScheduleResponse) fillSchedule(sched *crophe.Schedule) {
	resp.TimeMS = sched.TimeSec * 1e3
	resp.Partial = sched.Partial
	resp.DRAMBytes = sched.Traffic.DRAM
	resp.SRAMBytes = sched.Traffic.SRAM
	resp.NoCBytes = sched.Traffic.NoC
}

func (resp *ScheduleResponse) fillSummary(sum crophe.ScheduleSummary) {
	resp.TimeMS = sum.TimeSec * 1e3
	resp.Partial = sum.Partial
	resp.DRAMBytes = sum.Traffic.DRAM
	resp.SRAMBytes = sum.Traffic.SRAM
	resp.NoCBytes = sum.Traffic.NoC
}

// handleSimulate schedules and then runs the cycle-level simulator,
// accumulating the run's model counters into the server's telemetry
// collector (surfaced at /debug/vars).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := decodeJSON(r, &req); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	d, wl, _, err := req.resolve()
	if err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.chaos(r, &req)

	ctx, cancel, deadline := s.requestBudget(r, req.DeadlineMS)
	defer cancel()

	res, sched, err := crophe.SimulateWorkloadContext(ctx, d, wl, deadline, crophe.WithTelemetry(s.tel))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "simulate: %v", err)
		return
	}
	resp := ScheduleResponse{Workload: wl.Name, HW: d.HW.Name}
	resp.fillSchedule(sched)
	simMS := res.TimeSec * 1e3
	resp.SimTimeMS = &simMS
	resp.SimCycles = &res.Cycles
	resp.SimEnergyJ = &res.EnergyJ
	if resp.Partial {
		s.metrics.partials.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSimulateDegraded degrades the chip under a seeded fault plan and
// simulates. The seed is registered before the degraded stack runs, so
// an invariant violation escaping it becomes a 500 carrying the seed.
func (s *Server) handleSimulateDegraded(w http.ResponseWriter, r *http.Request) {
	var req DegradedRequest
	if err := decodeJSON(r, &req); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hw, ok := crophe.LookupHW(req.HW)
	if !ok {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "unknown hw %q", req.HW)
		return
	}
	spec, err := crophe.ParseFaultSpec(req.Faults)
	if err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "invalid faults: %v", err)
		return
	}
	params := crophe.DefaultParamsFor(hw)
	wl, ok := crophe.LookupWorkload(req.Workload, params, crophe.RotHoisted)
	if !ok {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "unknown workload %q", req.Workload)
		return
	}
	registerSeed(r, req.Seed)
	if s.cfg.AllowChaos && req.ChaosPanic {
		panic(fmt.Sprintf("chaos: injected degraded-path panic (seed %d)", req.Seed))
	}

	m, err := crophe.NewFaultMachine(hw, spec, req.Seed)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "fault machine: %v", err)
		return
	}

	ctx, cancel, _ := s.requestBudget(r, req.DeadlineMS)
	defer cancel()
	res, sched, err := crophe.SimulateDegraded(ctx, m, wl, sim.WithTelemetry(s.tel))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "degraded simulate: %v", err)
		return
	}
	if sched.Partial {
		s.metrics.partials.Add(1)
	}
	resp := DegradedResponse{
		Workload: wl.Name, HW: hw.Name,
		Faults: spec.String(), Seed: req.Seed, FaultCount: m.Plan.FaultCount(),
		TimeMS: res.TimeSec * 1e3, Cycles: res.Cycles, Partial: sched.Partial,
	}
	if res.Integrity != nil {
		resp.Integrity = &IntegrityStats{
			Checks:        res.Integrity.Checks,
			Detected:      res.Integrity.Detected,
			Recomputed:    res.Integrity.Recomputed,
			Escalated:     res.Integrity.Escalated,
			PenaltyCycles: res.Integrity.PenaltyCycles(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

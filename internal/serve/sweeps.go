package serve

import (
	"net/http"

	"crophe"
)

// sweepRequest is the body of POST /v1/sweeps.
type sweepRequest struct {
	HW         string `json:"hw"`
	Workload   string `json:"workload"`
	Seed       int64  `json:"seed"`
	Steps      int    `json:"steps"`
	DeadlineMS int    `json:"deadline_ms,omitempty"` // per-rung anytime budget
}

// sweepPointJSON is one journaled rung rendered for clients.
type sweepPointJSON struct {
	Step       int     `json:"step"`
	FracFailed float64 `json:"frac_failed"`
	FaultCount int     `json:"fault_count"`
	TimeMS     float64 `json:"time_ms"`
	Retained   float64 `json:"retained"`
	Partial    bool    `json:"partial"`
	Err        string  `json:"error,omitempty"`
}

// sweepStatus is the GET /v1/sweeps/{id} response (and the POST
// response, minus points while running).
type sweepStatus struct {
	ID         string           `json:"id"`
	State      string           `json:"state"`
	HW         string           `json:"hw"`
	Workload   string           `json:"workload"`
	Seed       int64            `json:"seed"`
	Steps      int              `json:"steps"`
	DeadlineMS int              `json:"deadline_ms,omitempty"`
	Completed  int              `json:"completed_steps"`
	Created    *bool            `json:"created,omitempty"` // POST only
	Error      string           `json:"error,omitempty"`
	BaselineMS float64          `json:"baseline_ms,omitempty"`
	Points     []sweepPointJSON `json:"points,omitempty"`
}

func statusOf(j *job) sweepStatus {
	state, completed, errText, result := j.snapshot()
	st := sweepStatus{
		ID:         j.params.ID,
		State:      state,
		HW:         j.params.HW,
		Workload:   j.params.Workload,
		Seed:       j.params.Seed,
		Steps:      j.params.Steps,
		DeadlineMS: j.params.DeadlineMS,
		Completed:  completed,
		Error:      errText,
	}
	if result != nil {
		st.BaselineMS = result.Baseline * 1e3
		for _, pt := range result.Points {
			st.Points = append(st.Points, sweepPointJSON{
				Step:       pt.Step,
				FracFailed: pt.FracFailed,
				FaultCount: pt.FaultCount,
				TimeMS:     pt.Outcome.TimeSec * 1e3,
				Retained:   pt.Retained(result.Baseline),
				Partial:    pt.Outcome.Partial,
				Err:        pt.Err,
			})
		}
	}
	return st
}

// handleStartSweep starts (or re-addresses) a resilience-sweep job. The
// job ID is a deterministic hash of the parameters, so retrying a POST —
// a client timeout, a load balancer replay — lands on the same job
// instead of burning a second sweep. The job itself runs asynchronously
// under the manager's lifetime, not the request's: the response is 202
// with the ID to poll.
func (s *Server) handleStartSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, ok := crophe.LookupHW(req.HW); !ok {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "unknown hw %q", req.HW)
		return
	}
	hw, _ := crophe.LookupHW(req.HW)
	p := crophe.DefaultParamsFor(hw)
	if _, ok := crophe.LookupWorkload(req.Workload, p, crophe.RotHoisted); !ok {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "unknown workload %q", req.Workload)
		return
	}
	if req.Steps < 1 || req.Steps > 256 {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "steps must be in [1, 256], got %d", req.Steps)
		return
	}

	params := sweepParams{
		V: 1, HW: req.HW, Workload: req.Workload,
		Seed: req.Seed, Steps: req.Steps, DeadlineMS: req.DeadlineMS,
	}
	params.ID = sweepID(params)
	j, created, err := s.jobs.start(params)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	st := statusOf(j)
	st.Created = &created
	writeJSON(w, http.StatusAccepted, st)
}

// handleGetSweep reports a sweep job: its state, how many rungs have
// been checkpointed, and — once done — the full retained-throughput
// curve. Deliberately outside the admission pipeline: polling a job must
// stay cheap and must work while the server sheds compute load.
func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(j))
}

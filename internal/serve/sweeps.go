package serve

import (
	"net/http"

	"crophe"
)

// statusOf renders a job for clients. raw additionally attaches the
// exact journaled points (the coordinator's merge feed — exact where
// the TimeMS display conversion is lossy).
func statusOf(j *job, raw bool) SweepStatus {
	state, completed, errText, result := j.snapshot()
	st := SweepStatus{
		ID:         j.params.ID,
		State:      state,
		HW:         j.params.HW,
		Workload:   j.params.Workload,
		Seed:       j.params.Seed,
		Steps:      j.params.Steps,
		DeadlineMS: j.params.DeadlineMS,
		ShardIndex: j.params.ShardIndex,
		ShardCount: j.params.ShardCount,
		Completed:  completed,
		Error:      errText,
	}
	if result != nil {
		st.BaselineMS = result.Baseline * 1e3
		for _, pt := range result.Points {
			st.Points = append(st.Points, SweepPointSummary{
				Step:       pt.Step,
				FracFailed: pt.FracFailed,
				FaultCount: pt.FaultCount,
				TimeMS:     pt.Outcome.TimeSec * 1e3,
				Retained:   pt.Retained(result.Baseline),
				Partial:    pt.Outcome.Partial,
				Err:        pt.Err,
			})
		}
	}
	if raw {
		st.RawPoints = j.rawPoints()
		st.RawSum = sumPoints(st.RawPoints)
	}
	return st
}

// handleStartSweep starts (or re-addresses) a resilience-sweep job. The
// job ID is a deterministic hash of the parameters, so retrying a POST —
// a client timeout, a load balancer replay — lands on the same job
// instead of burning a second sweep. The job itself runs asynchronously
// under the manager's lifetime, not the request's: the response is 202
// with the ID to poll. On a coordinator the job is a distributed one —
// rungs shard across the configured workers — but the request and
// response shapes are identical.
func (s *Server) handleStartSweep(w http.ResponseWriter, r *http.Request) {
	if s.fenceCoordinator(w, r) {
		return
	}
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hw, ok := crophe.LookupHW(req.HW)
	if !ok {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "unknown hw %q", req.HW)
		return
	}
	p := crophe.DefaultParamsFor(hw)
	if _, ok := crophe.LookupWorkload(req.Workload, p, crophe.RotHoisted); !ok {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "unknown workload %q", req.Workload)
		return
	}
	if req.Steps < 1 || req.Steps > 256 {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "steps must be in [1, 256], got %d", req.Steps)
		return
	}
	if req.ShardCount < 0 || req.ShardCount > req.Steps {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "shard_count must be in [0, steps], got %d", req.ShardCount)
		return
	}
	if req.ShardCount > 0 && (req.ShardIndex < 0 || req.ShardIndex >= req.ShardCount) {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "shard_index must be in [0, %d), got %d", req.ShardCount, req.ShardIndex)
		return
	}

	params := sweepParams{
		V: 1, HW: req.HW, Workload: req.Workload,
		Seed: req.Seed, Steps: req.Steps, DeadlineMS: req.DeadlineMS,
		ShardIndex: req.ShardIndex, ShardCount: req.ShardCount,
	}
	params.ID = sweepID(params)

	if s.coord != nil {
		if req.ShardCount > 0 {
			s.metrics.badInput.Add(1)
			writeError(w, http.StatusBadRequest, "a coordinator shards sweeps itself; shard_count must be 0")
			return
		}
		// A standby that has not promoted (or a fenced zombie) must not
		// accept sweeps — 503 makes failover clients rotate to the primary.
		if !s.coord.isActive() {
			writeError(w, http.StatusServiceUnavailable, "coordinator is not active (standby or fenced)")
			return
		}
		cj, created, err := s.coord.start(params)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		st := cj.status(false)
		st.Created = &created
		writeJSON(w, http.StatusAccepted, st)
		return
	}

	j, created, err := s.jobs.start(params)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	st := statusOf(j, false)
	st.Created = &created
	writeJSON(w, http.StatusAccepted, st)
}

// handleGetSweep reports a sweep job: its state, how many rungs have
// been checkpointed, and — once done — the full retained-throughput
// curve (plus the exact raw points when ?raw=1, even mid-run).
// Deliberately outside the admission pipeline: polling a job must stay
// cheap and must work while the server sheds compute load.
func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw := r.URL.Query().Get("raw") == "1"
	if s.coord != nil {
		// An unpromoted standby has no job state yet; answer 503 (a
		// retryable, rotate-me signal) rather than a wrongly final 404.
		if !s.coord.isActive() {
			writeError(w, http.StatusServiceUnavailable, "coordinator is not active (standby or fenced)")
			return
		}
		cj, ok := s.coord.get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no sweep job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, cj.status(raw))
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(j, raw))
}

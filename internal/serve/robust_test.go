package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// postRaw posts one JSON body and classifies the response; unlike doJSON
// it returns transport errors instead of failing the test, so the load
// tests can assert "zero lost" explicitly.
func postRaw(client *http.Client, url string, body any, headers map[string]string) (int, map[string]any, http.Header, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, resp.Header, fmt.Errorf("decoding %d response: %w", resp.StatusCode, err)
	}
	return resp.StatusCode, out, resp.Header, nil
}

// TestBurstSheddingZeroLost: a burst far beyond the queue depth must
// split cleanly into served (200) and shed (429 + Retry-After) — every
// request gets a definite answer, none hang, none drop — and once the
// burst clears, hysteresis releases the latch and the next request is
// admitted again.
func TestBurstSheddingZeroLost(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2, QueueWait: 30 * time.Millisecond})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	url := fmtURL(s, "/v1/simulate") // simulate skips the memo: every request does real work

	const burst = 30
	type outcome struct {
		code int
		hdr  http.Header
		err  error
	}
	results := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, hdr, err := postRaw(client, url,
				map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
			results[i] = outcome{code, hdr, err}
		}(i)
	}
	wg.Wait()

	served, shed := 0, 0
	for i, r := range results {
		switch {
		case r.err != nil:
			t.Fatalf("request %d lost: %v", i, r.err)
		case r.code == 200:
			served++
		case r.code == 429:
			shed++
			if r.hdr.Get("Retry-After") == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, r.code)
		}
	}
	if served+shed != burst {
		t.Fatalf("accounting: %d served + %d shed != %d", served, shed, burst)
	}
	if served == 0 {
		t.Fatal("burst served nothing")
	}
	if shed == 0 {
		t.Fatal("burst shed nothing — QueueDepth 2 against 30 concurrent requests must shed")
	}

	// Hysteresis: the backlog is gone (all requests answered), so the
	// shedding latch must have cleared — the next request is admitted.
	code, body, _, err := postRaw(client, url, map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
	if err != nil || code != 200 {
		t.Fatalf("post-burst request = %d %v (err %v); want 200 after hysteresis clears", code, body, err)
	}
}

// TestGracefulDrainNoGoroutineLeak: serve traffic, start a checkpointed
// sweep, then drain — every goroutine the server started must be gone.
func TestGracefulDrainNoGoroutineLeak(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	s := startServer(t, Config{CheckpointDir: t.TempDir()})
	client := &http.Client{}
	base := "http://" + s.Addr()

	for i := 0; i < 3; i++ {
		code, body, _, err := postRaw(client, base+"/v1/schedule",
			map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
		if err != nil || code != 200 {
			t.Fatalf("schedule %d = %d %v (err %v)", i, code, body, err)
		}
	}
	// A sweep job is mid-flight when the drain starts; the drain must
	// stop it at a rung boundary and reap its goroutine.
	code, body, _, err := postRaw(client, base+"/v1/sweeps",
		map[string]any{"hw": "crophe64", "workload": "helr", "seed": 3, "steps": 8, "deadline_ms": 2}, nil)
	if err != nil || code != 202 {
		t.Fatalf("start sweep = %d %v (err %v)", code, body, err)
	}

	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	client.CloseIdleConnections()
	waitGoroutines(t, baseline)
}

// TestChaosAcceptance is the chaos drill from the issue: 500 requests
// where 10% are fault-seeded panics and the rest arrive under a 1–10 ms
// deadline storm. The only acceptable outcomes are 2xx, 429 (shed), or a
// structured 500 carrying the injected fault seed; the process must
// survive with zero lost requests and zero leaked goroutines.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill is a load test")
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	s := startServer(t, Config{
		AllowChaos: true,
		Workers:    4,
		QueueDepth: 16,
		QueueWait:  200 * time.Millisecond,
	})
	client := &http.Client{}
	url := fmtURL(s, "/v1/schedule")

	const (
		total       = 500
		concurrency = 32
	)
	type outcome struct {
		idx  int
		code int
		body map[string]any
		err  error
	}
	results := make([]outcome, total)
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			var body map[string]any
			if i%10 == 0 {
				body = map[string]any{"hw": "crophe64", "workload": "helr",
					"chaos_panic": true, "seed": i}
			} else {
				body = map[string]any{"hw": "crophe64", "workload": "helr",
					"deadline_ms": 1 + i%10}
			}
			code, out, _, err := postRaw(client, url, body, nil)
			results[i] = outcome{i, code, out, err}
		}(i)
	}
	wg.Wait()

	var served, shed, seededPanics int
	for _, r := range results {
		switch {
		case r.err != nil:
			t.Fatalf("request %d lost: %v", r.idx, r.err)
		case r.code == 200:
			served++
		case r.code == 429:
			shed++
		case r.code == 500:
			seededPanics++
			if r.idx%10 != 0 {
				t.Fatalf("request %d: 500 on a non-chaos request: %v", r.idx, r.body)
			}
			if seed, _ := r.body["fault_seed"].(float64); int(seed) != r.idx {
				t.Fatalf("request %d: 500 fault_seed = %v; want %d", r.idx, r.body["fault_seed"], r.idx)
			}
			msg, _ := r.body["error"].(string)
			if !strings.Contains(msg, fmt.Sprintf("invariant violation under fault seed %d", r.idx)) {
				t.Fatalf("request %d: 500 error %q missing seed convention", r.idx, msg)
			}
		default:
			t.Fatalf("request %d: unexpected status %d body %v", r.idx, r.code, r.body)
		}
	}
	if served == 0 {
		t.Fatal("chaos storm served nothing")
	}
	if seededPanics == 0 {
		t.Fatal("no chaos panic reached a handler — the drill tested nothing")
	}

	// The process is still healthy and still doing real work.
	code, body, _, err := postRaw(client, url, map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
	if err != nil || code != 200 {
		t.Fatalf("post-storm schedule = %d %v (err %v)", code, body, err)
	}
	codeH, bodyH, _ := doJSON(t, client, "GET", fmtURL(s, "/debug/vars"), nil, nil)
	if codeH != 200 {
		t.Fatalf("post-storm vars = %d", codeH)
	}
	reqCounters := bodyH["requests"].(map[string]any)
	if got, _ := reqCounters["panics"].(float64); int(got) != seededPanics {
		t.Fatalf("vars count %v recovered panics; drill observed %d", reqCounters["panics"], seededPanics)
	}

	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	client.CloseIdleConnections()
	waitGoroutines(t, baseline)
}

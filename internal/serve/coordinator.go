package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crophe"
	"crophe/internal/serve/chaos"
)

// The coordinator runs the distributed side of sweep execution: it owns
// the *merged* job (whose identity — ID and journal header — is exactly
// the single-process job's, ShardCount 0), shards the rungs across the
// configured workers with WithShard semantics (shard i owns the steps
// congruent to i mod N), and folds the workers' journaled rungs back
// into its own fsynced journal. Exactly-once accounting is the merged
// point map: a rung is journaled the first time any worker reports it,
// and duplicates from a reassignment-rerun must agree bit-exactly (rung
// outcomes are deterministic), so the merged journal — and the report
// assembled from it — is byte-identical to a single process running the
// whole sweep.
//
// Failure handling is lease-based. Each shard assignment is journaled as
// a lease line (worker URL, epoch); a worker that stops answering both
// heartbeats and polls for WorkerTimeout forfeits its leases, the shard
// epoch increments, and the shard is re-leased to a healthy worker. The
// reassigned worker reruns the shard from its own journal state (or from
// scratch — determinism makes rerun and resume indistinguishable in the
// merged output). Leases are bookkeeping for observability and audit:
// recovery ignores them and trusts only the journaled rungs.

// workerHandle is the coordinator's view of one worker: a fail-fast
// client (retries would blur the failure detector) plus the liveness
// clock the heartbeat loop and successful polls both advance.
type workerHandle struct {
	url    string
	client *Client

	mu     sync.Mutex
	lastOK time.Time
	seen   bool
}

func (h *workerHandle) markOK() {
	h.mu.Lock()
	h.lastOK = time.Now()
	h.seen = true
	h.mu.Unlock()
}

// healthyWithin reports whether the worker answered anything within d.
// A worker that has never answered is unhealthy — leasing a shard to a
// peer that has not proven it exists just delays the reassignment.
func (h *workerHandle) healthyWithin(d time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seen && time.Since(h.lastOK) <= d
}

func (h *workerHandle) lastOKTime() (time.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastOK, h.seen
}

// shardState tracks one shard of one distributed job. Owned by the
// job's orchestration goroutine; read by status rendering under the
// job mutex.
type shardState struct {
	index  int
	steps  []int         // the step indices this shard owns
	worker *workerHandle // nil while unassigned
	jobID  string        // the worker-side (sharded) job ID
	epoch  int           // increments on every reassignment
	done   bool
}

// coordJob is one distributed sweep: the merged identity, the merged
// exactly-once point map, and the per-shard lease state.
type coordJob struct {
	params sweepParams // ShardCount == 0: the merged, single-process identity

	mu        sync.Mutex
	state     string
	errText   string
	result    *crophe.ResilienceSweep
	points    map[int]crophe.ResiliencePoint
	shards    []*shardState
	completed int
}

// status renders the job in the same shape as a single-process job, so
// clients cannot tell (and need not care) which role answered.
func (j *coordJob) status(raw bool) SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID:         j.params.ID,
		State:      j.state,
		HW:         j.params.HW,
		Workload:   j.params.Workload,
		Seed:       j.params.Seed,
		Steps:      j.params.Steps,
		DeadlineMS: j.params.DeadlineMS,
		Completed:  j.completed,
		Error:      j.errText,
	}
	if j.result != nil {
		st.BaselineMS = j.result.Baseline * 1e3
		for _, pt := range j.result.Points {
			st.Points = append(st.Points, SweepPointSummary{
				Step:       pt.Step,
				FracFailed: pt.FracFailed,
				FaultCount: pt.FaultCount,
				TimeMS:     pt.Outcome.TimeSec * 1e3,
				Retained:   pt.Retained(j.result.Baseline),
				Partial:    pt.Outcome.Partial,
				Err:        pt.Err,
			})
		}
	}
	if raw {
		steps := make([]int, 0, len(j.points))
		for s := range j.points {
			steps = append(steps, s)
		}
		sort.Ints(steps)
		for _, s := range steps {
			st.RawPoints = append(st.RawPoints, j.points[s])
		}
		st.RawSum = sumPoints(st.RawPoints)
	}
	return st
}

func (j *coordJob) fail(msg string) {
	j.mu.Lock()
	j.state = jobFailed
	j.errText = msg
	j.mu.Unlock()
}

// coordinator owns the distributed jobs and the worker fleet state.
type coordinator struct {
	dir      string
	workers  []*workerHandle
	hb       time.Duration // heartbeat period
	timeout  time.Duration // silence after which a worker forfeits leases
	poll     time.Duration // shard progress poll period
	takeover time.Duration // standby: lease staleness before promotion

	epoch        atomic.Int64 // persisted coordinator epoch; 0 until activated
	active       atomic.Bool  // activated (or promoted) and leasing
	fenced       atomic.Bool  // a higher epoch claimed the directory
	fencedWrites atomic.Int64 // journal writes refused post-fence

	// checksumRejects counts shard payloads refused because the raw-point
	// checksum the worker stamped did not match what arrived — silent
	// corruption on the wire, caught before it could poison the merge.
	checksumRejects atomic.Int64

	// saltLink mixes the worker index into the per-link chaos seed, the
	// same ASCII-tag idiom as the chaos package's dimension salts.
	chaosTransports []*chaos.Transport // one per worker link, nil spec: empty

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*coordJob
}

const saltLink = 0x6c696e6b // "link"

func newCoordinator(cfg Config) *coordinator {
	ctx, cancel := context.WithCancel(context.Background())
	c := &coordinator{
		dir: cfg.CheckpointDir, hb: cfg.HeartbeatInterval,
		timeout: cfg.WorkerTimeout, poll: cfg.PollInterval,
		takeover: cfg.TakeoverTimeout,
		ctx:      ctx, cancel: cancel,
		jobs: make(map[string]*coordJob),
	}
	for i, u := range cfg.WorkerURLs {
		// Fail fast: the orchestration loop is the retry policy, and a
		// client that silently retries hides exactly the deaths the
		// coordinator exists to detect.
		opts := []ClientOption{WithRetry(0, 0, 0)}
		if !cfg.NetChaos.IsZero() {
			seed := cfg.NetChaosSeed
			if seed == 0 {
				seed = 1
			}
			// Each worker link gets its own decision streams, derived from
			// the one configured seed, so a run is reproducible end to end.
			tr := chaos.New(cfg.NetChaos, seed^int64(i+1)*saltLink, nil)
			c.chaosTransports = append(c.chaosTransports, tr)
			opts = append(opts, WithHTTPClient(&http.Client{Transport: tr}))
		}
		c.workers = append(c.workers, &workerHandle{url: u, client: NewClient(u, opts...)})
	}
	return c
}

// startHeartbeats launches one liveness prober per worker: an immediate
// first probe (so a fresh cluster converges in one round-trip, not one
// period), then one every hb.
func (c *coordinator) startHeartbeats() {
	for _, h := range c.workers {
		h := h
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.probe(h)
			t := time.NewTicker(c.hb)
			defer t.Stop()
			for {
				select {
				case <-c.ctx.Done():
					return
				case <-t.C:
					c.probe(h)
				}
			}
		}()
	}
}

func (c *coordinator) probe(h *workerHandle) {
	ctx, cancel := context.WithTimeout(c.ctx, c.timeout)
	defer cancel()
	if err := h.client.Ready(ctx); err == nil {
		h.markOK()
	}
}

// recover rescans the checkpoint directory the way jobManager.recover
// does, but resumes unfinished journals as *distributed* jobs: the
// merged rungs are seeded into the point map and orchestration re-leases
// the unfinished shards from scratch (journaled leases are audit state,
// not recovery state).
func (c *coordinator) recover() error {
	if c.dir == "" {
		return nil
	}
	paths, err := listJournals(c.dir)
	if err != nil {
		return err
	}
	for _, path := range paths {
		d, err := recoverJournal(path)
		if err != nil {
			id := d.params.ID
			if id == "" {
				id = "corrupt:" + path
			}
			c.mu.Lock()
			c.jobs[id] = &coordJob{params: d.params, state: jobFailed, errText: err.Error()}
			c.mu.Unlock()
			continue
		}
		if d.params.ShardCount > 0 {
			// A worker-side shard journal (e.g. a worker restarted out of
			// this directory once); not a coordinator job.
			continue
		}
		j := &coordJob{params: d.params, points: d.points, completed: len(d.points)}
		if d.done {
			j.state = jobDone
			j.result = assembleSweep(d.params, d.points)
			c.mu.Lock()
			c.jobs[d.params.ID] = j
			c.mu.Unlock()
			continue
		}
		j.state = jobRunning
		c.mu.Lock()
		c.jobs[d.params.ID] = j
		c.mu.Unlock()
		c.launch(j, d.keep, false, d.leases)
	}
	return nil
}

// start returns the distributed job for params, creating and launching
// it if new — the same dedup-by-deterministic-ID contract as jobManager.
func (c *coordinator) start(params sweepParams) (*coordJob, bool, error) {
	c.mu.Lock()
	if existing, ok := c.jobs[params.ID]; ok {
		c.mu.Unlock()
		return existing, false, nil
	}
	if c.ctx.Err() != nil {
		c.mu.Unlock()
		return nil, false, fmt.Errorf("coordinator is draining")
	}
	j := &coordJob{params: params, state: jobRunning, points: make(map[int]crophe.ResiliencePoint)}
	c.jobs[params.ID] = j
	c.mu.Unlock()
	c.launch(j, 0, true, nil)
	return j, true, nil
}

func (c *coordinator) get(id string) (*coordJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func (c *coordinator) launch(j *coordJob, keep int64, isNew bool, leases []leaseRecord) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			if rec := recover(); rec != nil {
				j.fail(fmtInvariant(j.params.Seed, rec))
			}
		}()
		c.run(j, keep, isNew, leases)
	}()
}

// effectiveSteps mirrors RunSweep's floor: a sweep always has at least a
// healthy rung and one degraded rung.
func effectiveSteps(steps int) int {
	if steps < 2 {
		return 2
	}
	return steps
}

// run is the orchestration loop for one distributed job. It owns the
// journal file and the shard states; everything it learns from workers
// lands in the journal before it lands in the in-memory map.
func (c *coordinator) run(j *coordJob, keep int64, isNew bool, leases []leaseRecord) {
	f, err := openJournal(c.dir, j.params, keep, isNew)
	if err != nil {
		j.fail(fmt.Sprintf("opening checkpoint journal: %v", err))
		return
	}
	if f != nil {
		defer f.Close()
	}

	eff := effectiveSteps(j.params.Steps)
	n := len(c.workers)
	// Lease-journal replay: start every shard's epoch above every lease a
	// previous coordinator incarnation journaled (for the current fleet
	// shape), so post-takeover leases are monotonically distinguishable
	// from the dead primary's in the journal and in /v1/cluster.
	baseEpoch := 0
	for _, lr := range leases {
		if lr.Count == n && lr.Epoch+1 > baseEpoch {
			baseEpoch = lr.Epoch + 1
		}
	}
	shards := make([]*shardState, n)
	for i := 0; i < n; i++ {
		var steps []int
		for s := i; s < eff; s += n {
			steps = append(steps, s)
		}
		shards[i] = &shardState{index: i, steps: steps, epoch: baseEpoch}
	}
	j.mu.Lock()
	j.shards = shards
	// A recovered job may already hold whole shards' worth of rungs.
	for _, sh := range shards {
		sh.done = shardComplete(sh, j.points)
	}
	j.mu.Unlock()

	for {
		if c.tick(j, f, shards) {
			return
		}
		select {
		case <-c.ctx.Done():
			// Drain or kill: leave the job "running" with the journal
			// intact; a restarted coordinator resumes from the merged rungs.
			return
		case <-time.After(c.poll):
		}
	}
}

func shardComplete(sh *shardState, points map[int]crophe.ResiliencePoint) bool {
	for _, s := range sh.steps {
		if _, ok := points[s]; !ok {
			return false
		}
	}
	return true
}

// tick runs one orchestration round: lease unassigned shards, poll the
// leased ones, reap dead workers, and finalize when every shard is done.
// It returns true when the job reached a terminal state.
func (c *coordinator) tick(j *coordJob, f *os.File, shards []*shardState) bool {
	allDone := true
	for _, sh := range shards {
		if sh.done {
			continue
		}
		allDone = false
		if sh.worker == nil {
			c.lease(j, f, sh)
			continue
		}
		if terminal := c.pollShard(j, f, sh); terminal {
			return true
		}
	}
	if !allDone {
		return false
	}
	return c.finalize(j, f)
}

// lease assigns sh to the least-loaded healthy worker (preferring its
// home worker — shard i on worker i — so a fully healthy cluster gets
// the canonical layout) and journals the lease.
func (c *coordinator) lease(j *coordJob, f *os.File, sh *shardState) {
	load := make(map[*workerHandle]int)
	j.mu.Lock()
	for _, other := range j.shards {
		if other.worker != nil && !other.done {
			load[other.worker]++
		}
	}
	j.mu.Unlock()

	var pick *workerHandle
	if home := c.workers[sh.index%len(c.workers)]; home.healthyWithin(c.timeout) {
		pick = home
	}
	if pick == nil {
		for _, h := range c.workers {
			if !h.healthyWithin(c.timeout) {
				continue
			}
			if pick == nil || load[h] < load[pick] {
				pick = h
			}
		}
	}
	if pick == nil {
		return // no healthy worker this round; retry next tick
	}

	// Warm the worker's schedule memo with everything this process has
	// learned (its own runs plus snapshots harvested from finished
	// shards). Best-effort: a failed push costs recomputation, not
	// correctness.
	ctx, cancel := context.WithTimeout(c.ctx, c.timeout)
	if snap := crophe.ExportScheduleMemo(); len(snap.Entries) > 0 {
		_, _ = pick.client.PushMemoSnapshot(ctx, snap)
	}
	st, err := pick.client.StartSweep(ctx, SweepRequest{
		HW: j.params.HW, Workload: j.params.Workload,
		Seed: j.params.Seed, Steps: j.params.Steps, DeadlineMS: j.params.DeadlineMS,
		ShardIndex: sh.index, ShardCount: len(c.workers),
	})
	cancel()
	if err != nil {
		var stale *StaleEpochError
		if errors.As(err, &stale) {
			// The worker has seen a higher coordinator epoch: a standby took
			// over and this process is the zombie. Stop leasing entirely.
			c.fence(stale)
			return
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status < 500 {
			// The request itself is bad; every worker will refuse it.
			j.fail(fmt.Sprintf("worker %s rejected shard %d: %v", pick.url, sh.index, err))
			return
		}
		return // transient; the failure detector decides if pick is dead
	}
	pick.markOK()

	// The shard job ID is a deterministic hash of the parameters, so the
	// coordinator knows what the worker must have answered. A mismatch
	// means the response was corrupted in flight (the chaos transport's
	// flip dimension exercises exactly this); trusting it would leave the
	// poll loop addressing a job that does not exist. The lease is
	// idempotent — refuse and retry next tick.
	wantID := sweepID(sweepParams{
		V: 1, HW: j.params.HW, Workload: j.params.Workload,
		Seed: j.params.Seed, Steps: j.params.Steps, DeadlineMS: j.params.DeadlineMS,
		ShardIndex: sh.index, ShardCount: len(c.workers),
	})
	if st.ID != wantID {
		c.checksumRejects.Add(1)
		return
	}

	j.mu.Lock()
	sh.worker = pick
	sh.jobID = st.ID
	lease := leaseRecord{Shard: sh.index, Count: len(c.workers), Worker: pick.url, Epoch: sh.epoch}
	j.mu.Unlock()
	if err := c.append(f, journalEntry{Lease: &lease}); err != nil {
		j.fail(fmt.Sprintf("journaling shard lease: %v", err))
	}
}

// pollShard pulls a leased shard's progress, merges fresh rungs
// exactly-once into the journal, and reaps the lease if the worker has
// been silent past the timeout. Returns true if the job reached a
// terminal state.
func (c *coordinator) pollShard(j *coordJob, f *os.File, sh *shardState) bool {
	ctx, cancel := context.WithTimeout(c.ctx, c.timeout)
	st, err := sh.worker.client.SweepStatus(ctx, sh.jobID, true)
	cancel()
	if err != nil {
		if !sh.worker.healthyWithin(c.timeout) {
			// The worker is gone (heartbeats and polls both silent past the
			// timeout): forfeit the lease. The journaled rungs stay — the
			// next assignee's rerun must agree with them bit-exactly.
			j.mu.Lock()
			sh.worker = nil
			sh.jobID = ""
			sh.epoch++
			j.mu.Unlock()
		}
		return false
	}
	sh.worker.markOK()

	// End-to-end payload integrity: the worker stamped RawSum over the
	// points it sent; a mismatch against the points that arrived means the
	// payload was corrupted in flight (one flipped bit is enough — see the
	// chaos transport's flip dimension). Refuse the merge and retry next
	// tick rather than poison the journal: transport corruption is
	// transient, and merging a corrupted rung would either trip the
	// bit-exact disagreement check (failing the whole job) or silently
	// alter the final report.
	if got := sumPoints(st.RawPoints); got != st.RawSum {
		c.checksumRejects.Add(1)
		return false
	}

	if err := c.mergePoints(j, f, st.RawPoints); err != nil {
		j.fail(err.Error())
		return true
	}

	switch st.State {
	case jobDone:
		j.mu.Lock()
		sh.done = shardComplete(sh, j.points)
		incomplete := !sh.done
		j.mu.Unlock()
		if incomplete {
			j.fail(fmt.Sprintf("shard %d reported done with rungs missing", sh.index))
			return true
		}
		c.harvestMemo(sh.worker)
	case jobFailed:
		// Rung outcomes are deterministic, so a worker-side failure is not
		// a worker fault to retry around — it is the sweep's failure.
		j.fail(fmt.Sprintf("shard %d failed on %s: %s", sh.index, sh.worker.url, st.Error))
		return true
	}
	return false
}

// mergePoints folds freshly reported rungs into the merged journal and
// map: each new step is journaled (ascending, fsynced) exactly once;
// an overlapping rung from a reassignment rerun must agree bit-exactly.
func (c *coordinator) mergePoints(j *coordJob, f *os.File, pts []crophe.ResiliencePoint) error {
	var fresh []crophe.ResiliencePoint
	j.mu.Lock()
	for _, pt := range pts {
		if prev, ok := j.points[pt.Step]; ok {
			if prev != pt {
				j.mu.Unlock()
				return fmt.Errorf("shard disagreement at step %d (seed %d): rung outcomes must be deterministic",
					pt.Step, j.params.Seed)
			}
			continue
		}
		fresh = append(fresh, pt)
	}
	j.mu.Unlock()
	if len(fresh) == 0 {
		return nil
	}
	sort.Slice(fresh, func(a, b int) bool { return fresh[a].Step < fresh[b].Step })
	for _, pt := range fresh {
		pt := pt
		if err := c.append(f, journalEntry{Step: &pt.Step, Point: &pt}); err != nil {
			return fmt.Errorf("checkpointing merged rung %d: %v", pt.Step, err)
		}
		j.mu.Lock()
		j.points[pt.Step] = pt
		j.completed = len(j.points)
		j.mu.Unlock()
	}
	return nil
}

// harvestMemo pulls a finishing worker's schedule-memo snapshot into
// this process, so the next lease ships it onward. Best-effort.
func (c *coordinator) harvestMemo(h *workerHandle) {
	ctx, cancel := context.WithTimeout(c.ctx, c.timeout)
	defer cancel()
	snap, err := h.client.MemoSnapshot(ctx)
	if err != nil || snap == nil {
		return
	}
	_, _ = crophe.ImportScheduleMemo(*snap)
}

// finalize verifies the merged rung set is complete, assembles the
// report with the fault package's exact conventions, and writes the
// terminator. Returns true (the job is terminal either way).
func (c *coordinator) finalize(j *coordJob, f *os.File) bool {
	eff := effectiveSteps(j.params.Steps)
	j.mu.Lock()
	points := make(map[int]crophe.ResiliencePoint, len(j.points))
	for s, pt := range j.points {
		points[s] = pt
	}
	j.mu.Unlock()
	for s := 0; s < eff; s++ {
		if _, ok := points[s]; !ok {
			j.fail(fmt.Sprintf("merged sweep is missing step %d", s))
			return true
		}
	}
	if err := c.append(f, journalEntry{Done: true}); err != nil {
		j.fail(fmt.Sprintf("finalising checkpoint journal: %v", err))
		return true
	}
	result := assembleSweep(j.params, points)
	j.mu.Lock()
	j.state = jobDone
	j.result = result
	j.mu.Unlock()
	return true
}

// stop cancels orchestration (journals intact, jobs left resumable) and
// returns a channel closed once every goroutine exited.
func (c *coordinator) stop() <-chan struct{} {
	c.cancel()
	ch := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(ch)
	}()
	return ch
}

// kill cancels orchestration without waiting — the crash primitive.
func (c *coordinator) kill() { c.cancel() }

// workerHealth reports how many of the fleet's workers answered within
// the liveness timeout — the quorum /readyz advertises.
func (c *coordinator) workerHealth() (healthy, total int) {
	for _, h := range c.workers {
		if h.healthyWithin(c.timeout) {
			healthy++
		}
	}
	return healthy, len(c.workers)
}

// chaosCounts sums injected-fault tallies across the worker links; nil
// when no transport chaos is configured.
func (c *coordinator) chaosCounts() *chaos.Counts {
	if len(c.chaosTransports) == 0 {
		return nil
	}
	var sum chaos.Counts
	for _, tr := range c.chaosTransports {
		ct := tr.Counts()
		sum.Requests += ct.Requests
		sum.Drops += ct.Drops
		sum.Resets += ct.Resets
		sum.Truncations += ct.Truncations
		sum.Err500s += ct.Err500s
		sum.Flips += ct.Flips
		sum.Latencies += ct.Latencies
	}
	return &sum
}

// counts reports running and finished distributed jobs.
func (c *coordinator) counts() (running, finished int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.jobs {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st == jobRunning {
			running++
		} else {
			finished++
		}
	}
	return running, finished
}

// Package serve is the production serving layer of the CROPHE stack: a
// long-running HTTP/JSON service exposing the façade's schedule,
// simulate, degraded-simulate and resilience-sweep operations, hardened
// for sustained load the way the modelled hardware is hardened for
// faults.
//
// Robustness is composed as middleware over the façade, in order:
//
//		admission → deadline propagation → panic isolation → handler
//
//	  - Admission control bounds concurrency with a parallel.Queue that
//	    shares the worker pool's token budget, queues excess arrivals up to
//	    a bounded depth with a wait timeout, and sheds load (HTTP 429 +
//	    Retry-After) once the queue fills — with hysteresis so shedding
//	    does not flap at the boundary.
//	  - Deadline propagation turns a per-request deadline (the
//	    X-Crophe-Deadline header or a deadline_ms JSON field) into a
//	    context deadline and the scheduler's deterministic anytime budget
//	    (sched.Options.SearchBudget via BudgetForDeadline): an expiring
//	    request returns a best-so-far schedule marked "partial": true, not
//	    an error.
//	  - Panic isolation recovers per-request panics into structured 500
//	    responses carrying the fault seed (the resilience.go
//	    recoverFaultPanic convention) while the process keeps serving.
//	  - Graceful shutdown flips /readyz, rejects new work with 503, drains
//	    in-flight requests and sweep jobs under a drain deadline, and
//	    leaves no goroutines behind.
//	  - Long resilience sweeps run asynchronously behind a job API
//	    (POST /v1/sweeps, GET /v1/sweeps/{id}) that journals each completed
//	    rung to an append-only checkpoint file, so a crashed-and-restarted
//	    server resumes from the last completed rung and finishes
//	    byte-identical to an uninterrupted run.
//
// See the "Serving architecture" section of DESIGN.md.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crophe/internal/parallel"
	"crophe/internal/serve/chaos"
	"crophe/internal/telemetry"
)

// Config tunes a Server. The zero value is usable: every field has a
// serving-safe default applied by New.
type Config struct {
	// Addr is the listen address (host:port). Default ":8080"; use
	// "127.0.0.1:0" in tests for an ephemeral port.
	Addr string
	// Workers bounds concurrently executing requests. 0 means the worker
	// pool size; the admission queue shares the pool's token budget either
	// way, so compute fan-out inside requests never oversubscribes.
	Workers int
	// QueueDepth bounds how many requests may wait for a worker slot
	// before new arrivals are shed with 429. Default 64.
	QueueDepth int
	// QueueWait bounds how long an admitted-to-the-queue request may wait
	// for a worker slot before it is shed. Default 5s.
	QueueWait time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests and the
	// running sweep rung get this long to finish. Default 15s.
	DrainTimeout time.Duration
	// CheckpointDir is where sweep jobs journal completed rungs. Empty
	// disables persistence (jobs still run, but do not survive restarts).
	CheckpointDir string
	// AllowChaos honours the chaos_panic request field, which makes a
	// handler panic on purpose — the chaos-acceptance hook. Never enable
	// outside tests and smoke drills.
	AllowChaos bool
	// Role selects the instance's cluster role: "single" (default; also
	// what a worker runs — a worker is just a single instance a
	// coordinator happens to talk to) or "coordinator", which shards
	// sweep jobs across WorkerURLs instead of running rungs itself.
	Role string
	// WorkerURLs lists the worker base URLs ("host:port" or http:// URLs)
	// a coordinator shards sweeps across. Required for Role
	// "coordinator"; ignored otherwise.
	WorkerURLs []string
	// HeartbeatInterval is how often a coordinator probes each worker's
	// /readyz. Default 500ms.
	HeartbeatInterval time.Duration
	// WorkerTimeout is how long a worker may stay silent (no successful
	// heartbeat or poll) before it forfeits its shard leases and the
	// coordinator reassigns them. Default 5s.
	WorkerTimeout time.Duration
	// PollInterval is the coordinator's shard-progress poll period.
	// Default 100ms.
	PollInterval time.Duration
	// Standby makes a coordinator start passive: instead of claiming the
	// checkpoint directory it watches the primary's lease and promotes
	// itself — replaying the sweep journals, bumping the persisted
	// coordinator epoch, fencing the old primary — only once the lease
	// goes stale past TakeoverTimeout. Requires CheckpointDir (the lease
	// lives there). Coordinator role only.
	Standby bool
	// TakeoverTimeout is how stale the primary's lease heartbeat must be
	// before a standby promotes itself. Default 4×HeartbeatInterval.
	TakeoverTimeout time.Duration
	// NetChaos, when non-zero, wraps every coordinator→worker link in a
	// seeded chaos.Transport injecting the spec'd faults (drops, resets,
	// truncated bodies, spurious 500s, latency). Deterministic per
	// (NetChaos, NetChaosSeed); for drills and tests.
	NetChaos chaos.Spec
	// NetChaosSeed seeds the chaos decision streams. Default 1.
	NetChaosSeed int64
	// RetryJitterSeed seeds the deterministic jitter added to 429
	// Retry-After hints, decorrelating the retry stampede of clients shed
	// in the same instant. Default 1; same seed, same jitter sequence.
	RetryJitterSeed int64
}

// Cluster roles.
const (
	RoleSingle      = "single"
	RoleCoordinator = "coordinator"
)

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers < 1 {
		c.Workers = parallel.Workers()
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Role == "" {
		c.Role = RoleSingle
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.TakeoverTimeout <= 0 {
		c.TakeoverTimeout = 4 * c.HeartbeatInterval
	}
	if c.NetChaosSeed == 0 {
		c.NetChaosSeed = 1
	}
	if c.RetryJitterSeed == 0 {
		c.RetryJitterSeed = 1
	}
	return c
}

// Server is one crophe-serve instance.
type Server struct {
	cfg     Config
	queue   *parallel.Queue
	metrics metrics
	tel     *telemetry.Collector
	jobs    *jobManager
	coord   *coordinator // non-nil only for Role "coordinator"

	// jitterRand drives the deterministic Retry-After jitter; guarded by
	// jitterMu because rand.Rand is not concurrency-safe.
	jitterMu   sync.Mutex
	jitterRand *rand.Rand

	// Admission state: waiting counts requests between arrival and slot
	// acquisition; shedding latches once the wait queue fills and clears
	// only at the hysteresis low-water mark.
	waiting  atomic.Int64
	shedding atomic.Bool

	// coordEpochSeen is the highest coordinator epoch any mutating RPC
	// has carried (worker-side fencing state); requests with a lower
	// epoch are rejected 409.
	coordEpochSeen atomic.Int64

	httpSrv  *http.Server
	listener net.Listener

	mu       sync.Mutex
	draining bool
}

// New builds a Server (not yet listening) from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		queue:      parallel.NewSharedQueue(cfg.Workers),
		tel:        telemetry.New(),
		jitterRand: rand.New(rand.NewSource(cfg.RetryJitterSeed)),
	}
	s.jobs = newJobManager(cfg.CheckpointDir)
	if cfg.Role == RoleCoordinator {
		s.coord = newCoordinator(cfg)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.Handle("POST /v1/schedule", s.pipeline(s.handleSchedule))
	mux.Handle("POST /v1/simulate", s.pipeline(s.handleSimulate))
	mux.Handle("POST /v1/simulate-degraded", s.pipeline(s.handleSimulateDegraded))
	mux.Handle("POST /v1/sweeps", s.pipeline(s.handleStartSweep))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	// The memo-snapshot pair is cluster plumbing, deliberately outside
	// the admission pipeline (see worker.go).
	mux.HandleFunc("GET /v1/memo/snapshot", s.handleMemoExport)
	mux.HandleFunc("POST /v1/memo/snapshot", s.handleMemoImport)

	s.httpSrv = &http.Server{Handler: mux}
	return s
}

// pipeline stacks the serving middleware over a handler in the
// documented order: admission first (cheap rejection before any work),
// then deadline propagation, then panic isolation closest to the
// handler.
func (s *Server) pipeline(h http.HandlerFunc) http.Handler {
	return s.admit(s.withDeadline(s.isolate(h)))
}

// Start binds the listener and begins serving in a background goroutine.
// Unfinished checkpointed sweep jobs found in CheckpointDir are resumed
// before the listener opens, so /v1/sweeps/{id} is consistent from the
// first request.
func (s *Server) Start() error {
	if s.coord != nil {
		if len(s.cfg.WorkerURLs) == 0 {
			return fmt.Errorf("serve: coordinator role requires at least one worker URL")
		}
		if s.cfg.Standby {
			if s.cfg.CheckpointDir == "" {
				return fmt.Errorf("serve: a standby coordinator requires a checkpoint dir (the lease lives there)")
			}
			s.coord.startStandbyWatch()
		} else {
			if err := s.coord.activate(); err != nil {
				return fmt.Errorf("serve: activating coordinator: %w", err)
			}
			if err := s.coord.recover(); err != nil {
				return fmt.Errorf("serve: recovering checkpointed sweeps: %w", err)
			}
		}
	} else if err := s.jobs.recover(); err != nil {
		return fmt.Errorf("serve: recovering checkpointed sweeps: %w", err)
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	go func() {
		// ErrServerClosed is the normal shutdown signal; anything else
		// surfaces through the health endpoints going dark.
		_ = s.httpSrv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (resolving ":0" ports). Empty
// before Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Shutdown drains the server: readiness flips immediately (load
// balancers stop routing, new requests get 503), in-flight requests and
// the active sweep rung get up to DrainTimeout to finish, then the
// listener closes. Safe to call once; returns the drain error if the
// deadline expired with work still in flight.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()

	// Stop sweep jobs first: their journals make interruption safe, and
	// the rung in flight checks for cancellation between rungs only, so
	// it either completes (journaled) or the process exits at the drain
	// deadline with the journal intact. A coordinator's orchestration
	// loops stop the same way: leases lapse, journals stay resumable.
	jobsDone := s.jobs.stop()
	var coordDone <-chan struct{}
	if s.coord != nil {
		coordDone = s.coord.stop()
	}
	err := s.httpSrv.Shutdown(ctx)
	select {
	case <-jobsDone:
	case <-ctx.Done():
		if err == nil {
			err = fmt.Errorf("serve: sweep jobs still draining at the deadline: %w", ctx.Err())
		}
	}
	if coordDone != nil {
		select {
		case <-coordDone:
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("serve: coordinator still draining at the deadline: %w", ctx.Err())
			}
		}
	}
	return err
}

// draining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleHealthz is liveness: the process is up and the mux is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting work, 503 during drain
// so load balancers stop routing before in-flight work finishes. A
// coordinator's readiness is aggregate, not local: a fenced zombie, an
// unpromoted standby, and a coordinator with zero healthy workers all
// answer 503 — an orchestrator must not route sweeps to a coordinator
// that cannot place them, however healthy its own listener is.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.coord == nil {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	epoch := s.coord.epoch.Load()
	if s.coord.fenced.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "fenced", "epoch": epoch})
		return
	}
	if !s.coord.active.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "standby"})
		return
	}
	healthy, total := s.coord.workerHealth()
	body := map[string]any{
		"status": "ready", "role": RoleCoordinator, "epoch": epoch,
		"workers_healthy": healthy, "workers_total": total,
	}
	if healthy == 0 {
		body["status"] = "no-worker-quorum"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// writeJSON encodes v in one shot after the handler finished computing,
// so a mid-handler panic never leaves a half-written body — the recovery
// middleware still owns the response line.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, format string, a ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, a...)})
}

// decodeJSON decodes a request body into v with unknown-field rejection:
// a typo in a field name should be a 400, not a silently ignored knob.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"crophe/internal/cliutil"
)

// DeadlineHeader carries a per-request deadline as a Go duration
// ("150ms", "2s"). A deadline_ms field in the JSON body is the
// equivalent for clients that cannot set headers; the header wins when
// both are present.
const DeadlineHeader = "X-Crophe-Deadline"

// CoordEpochHeader carries the sending coordinator's epoch on mutating
// RPCs. A worker remembers the highest epoch it has seen and answers
// 409 Conflict to anything older — the fence that keeps a zombie
// (partitioned, superseded) coordinator from leasing shards after a
// standby took over.
const CoordEpochHeader = "X-Crophe-Coordinator-Epoch"

// reqState is the per-request holder the middleware threads through the
// context: the declared deadline (the duration the client asked for, not
// the remaining wall clock — the deterministic input to
// BudgetForDeadline) and the fault seed a handler registers before doing
// anything that can panic, so the recovery middleware can stamp it into
// the 500 response.
type reqState struct {
	mu       sync.Mutex
	deadline time.Duration
	seed     int64
	hasSeed  bool
}

type reqStateKey struct{}

// stateFrom returns the request's state holder (nil outside the
// middleware pipeline, e.g. in unit tests that call handlers directly).
func stateFrom(r *http.Request) *reqState {
	st, _ := r.Context().Value(reqStateKey{}).(*reqState)
	return st
}

// withDeadline parses the deadline header, arms the request context with
// it, and installs the per-request state holder. Handlers that find a
// deadline_ms field in their body call armBodyDeadline to apply it after
// decoding. A malformed header is a 400 — silently running an unbounded
// search against a garbled deadline is the worse failure.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := &reqState{}
		ctx := context.WithValue(r.Context(), reqStateKey{}, st)

		if h := r.Header.Get(DeadlineHeader); h != "" {
			d, err := cliutil.ParseDeadline(h)
			if err != nil {
				s.metrics.badInput.Add(1)
				writeError(w, http.StatusBadRequest, "invalid %s header: %v", DeadlineHeader, err)
				return
			}
			st.deadline = d
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// requestBudget returns the context and declared deadline the scheduler
// should run under, folding in a per-request deadline_ms body field (in
// effect only when no header already armed one). The returned context is
// always derived from r.Context(), so client disconnects and the drain
// path propagate; the returned duration is the deterministic
// BudgetForDeadline input. cancel is non-nil always.
func (s *Server) requestBudget(r *http.Request, bodyDeadlineMS int) (context.Context, context.CancelFunc, time.Duration) {
	st := stateFrom(r)
	var declared time.Duration
	if st != nil {
		st.mu.Lock()
		declared = st.deadline
		st.mu.Unlock()
	}
	if declared > 0 || bodyDeadlineMS <= 0 {
		// Header already armed the context (or no deadline at all).
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, declared
	}
	d := time.Duration(bodyDeadlineMS) * time.Millisecond
	if st != nil {
		st.mu.Lock()
		st.deadline = d
		st.mu.Unlock()
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, d
}

// registerSeed records the fault seed a handler is about to work under,
// so a panic escaping the degraded stack is reported with the one number
// that replays it.
func registerSeed(r *http.Request, seed int64) {
	if st := stateFrom(r); st != nil {
		st.mu.Lock()
		st.seed = seed
		st.hasSeed = true
		st.mu.Unlock()
	}
}

// isolate is the panic-isolation middleware: a panic escaping a handler
// — an invariant violation some fault combination exposed — becomes a
// structured 500 carrying the fault seed (the recoverFaultPanic
// convention from the façade), and the process keeps serving. Handlers
// buffer their responses (writeJSON writes in one shot at the end), so
// at the recovery point the response line is still ours to write.
func (s *Server) isolate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			s.metrics.panics.Add(1)
			body := map[string]any{"panic": true}
			if st := stateFrom(r); st != nil {
				st.mu.Lock()
				seed, has := st.seed, st.hasSeed
				st.mu.Unlock()
				if has {
					body["fault_seed"] = seed
					body["error"] = fmtInvariant(seed, rec)
					writeJSON(w, http.StatusInternalServerError, body)
					return
				}
			}
			body["error"] = fmtPanic(rec)
			writeJSON(w, http.StatusInternalServerError, body)
		}()
		next.ServeHTTP(w, r)
	})
}

// fmtInvariant renders a recovered fault-path panic in the
// recoverFaultPanic convention: the seed is the replay handle.
func fmtInvariant(seed int64, rec any) string {
	return fmt.Sprintf("invariant violation under fault seed %d: %v", seed, rec)
}

// fmtPanic renders a recovered panic with no registered seed.
func fmtPanic(rec any) string {
	return fmt.Sprintf("internal panic: %v", rec)
}

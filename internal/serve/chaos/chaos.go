// Package chaos is a deterministic, seeded transport-fault injector: an
// http.RoundTripper wrapper that turns a healthy network path into the
// lossy, slow, half-open one a real fleet sees. It injects five fault
// dimensions — added latency, dropped requests, connection resets after
// the peer processed the request, truncated response bodies, and
// spurious gateway 500s — each driven by its own salted seed stream, the
// same per-dimension-stream discipline internal/fault uses for hardware
// fault plans. The same (Spec, seed) always yields the same decision
// sequence, so a chaos run that exposes a bug is replayable from its
// seed alone.
//
// The fault semantics are chosen to stress exactly-once behaviour:
//
//   - A drop fails the request before it reaches the peer (the classic
//     lost packet / refused connection).
//   - A reset forwards the request, lets the peer do the work, then
//     fails the exchange — the caller cannot tell a processed request
//     from a lost one, which is precisely the ambiguity idempotent
//     job APIs exist to absorb.
//   - A truncation returns headers and a prefix of the body, then
//     io.ErrUnexpectedEOF — the half-open connection.
//   - A 500 is synthesized without forwarding, the gateway error a load
//     balancer emits when the backend is unreachable.
//   - A flip XORs one bit of an otherwise successful response body —
//     silent data corruption on the wire, the fault the end-to-end
//     payload checksums exist to catch. Unlike every other dimension it
//     produces no transport error at all.
//   - Latency sleeps before forwarding, honouring the request context.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spec is the chaos grammar: which fault dimensions fire and how often.
// Probabilities are in [0, 1]; the zero Spec injects nothing. The
// textual form mirrors internal/fault's Spec grammar —
// "drop:0.1,reset:0.05,trunc:0.05,err500:0.1,lat:0.3@5" — comma-joined
// key:value terms, latency carrying its magnitude after '@'.
type Spec struct {
	Drop    float64 // drop:F — request never reaches the peer
	Reset   float64 // reset:F — connection dies after the peer did the work
	Trunc   float64 // trunc:F — response body cut mid-stream
	Err500  float64 // err500:F — synthesized gateway 500, request not forwarded
	Flip    float64 // flip:F — one bit of the response body silently XORed
	LatProb float64 // lat:F@D — probability of added latency ...
	LatMS   float64 // ... of ~D milliseconds (uniform in [D/2, 3D/2))
}

// IsZero reports whether the spec injects no faults at all.
func (s Spec) IsZero() bool { return s == Spec{} }

// String renders the spec in the canonical ParseSpec grammar (set
// dimensions only, fixed order), so specs round-trip through flags and
// logs.
func (s Spec) String() string {
	var terms []string
	add := func(key string, p float64) {
		if p > 0 {
			terms = append(terms, fmt.Sprintf("%s:%g", key, p))
		}
	}
	add("drop", s.Drop)
	add("reset", s.Reset)
	add("trunc", s.Trunc)
	add("err500", s.Err500)
	add("flip", s.Flip)
	if s.LatProb > 0 {
		terms = append(terms, fmt.Sprintf("lat:%g@%g", s.LatProb, s.LatMS))
	}
	if len(terms) == 0 {
		return "none"
	}
	return strings.Join(terms, ",")
}

// ParseSpec parses the textual chaos grammar. "" and "none" mean no
// chaos. Unknown keys, malformed values and probabilities outside [0, 1]
// are errors — a typo in a chaos spec must not silently run a different
// experiment.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return s, nil
	}
	for _, term := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(term), ":")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: term %q is not key:value", term)
		}
		prob := func(v string) (float64, error) {
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, fmt.Errorf("chaos: %s: bad probability %q: %v", key, v, err)
			}
			if p < 0 || p > 1 {
				return 0, fmt.Errorf("chaos: %s: probability %g outside [0, 1]", key, p)
			}
			return p, nil
		}
		var err error
		switch key {
		case "drop":
			s.Drop, err = prob(val)
		case "reset":
			s.Reset, err = prob(val)
		case "trunc":
			s.Trunc, err = prob(val)
		case "err500":
			s.Err500, err = prob(val)
		case "flip":
			s.Flip, err = prob(val)
		case "lat":
			p, ms, ok := strings.Cut(val, "@")
			if !ok {
				return Spec{}, fmt.Errorf("chaos: lat wants prob@millis, got %q", val)
			}
			if s.LatProb, err = prob(p); err != nil {
				return Spec{}, err
			}
			if s.LatMS, err = strconv.ParseFloat(ms, 64); err != nil || s.LatMS < 0 {
				return Spec{}, fmt.Errorf("chaos: lat: bad millis %q", ms)
			}
		default:
			return Spec{}, fmt.Errorf("chaos: unknown dimension %q", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	return s, nil
}

// Per-dimension stream salts (ASCII tags, the internal/fault idiom):
// each dimension draws from its own rand stream, so adding a dimension
// to a spec never perturbs the others' decision sequences.
const (
	saltDrop  = 0x64726f70 // "drop"
	saltReset = 0x72657374 // "rest"
	saltTrunc = 0x74727563 // "truc"
	saltErr   = 0x65353030 // "e500"
	saltFlip  = 0x666c6970 // "flip"
	saltLat   = 0x6c617463 // "latc"
)

func dimRand(seed, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ salt))
}

// Counts tallies injected faults per dimension, for assertions and
// observability.
type Counts struct {
	Requests    uint64
	Drops       uint64
	Resets      uint64
	Truncations uint64
	Err500s     uint64
	Flips       uint64
	Latencies   uint64
}

// Total returns the number of injected faults across all dimensions
// (latency included — a slow request is a fault too).
func (c Counts) Total() uint64 {
	return c.Drops + c.Resets + c.Truncations + c.Err500s + c.Flips + c.Latencies
}

// Error is an injected transport fault, distinguishable from genuine
// network failures by type.
type Error struct {
	Kind string // "drop" or "reset"
	Seq  uint64 // 1-based request sequence number within the transport
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected %s (request %d)", e.Kind, e.Seq)
}

// Transport wraps a base http.RoundTripper with seeded fault injection.
// Safe for concurrent use; the decision streams are drawn under a mutex
// in arrival order, so a serialized request sequence is bit-reproducible
// per (Spec, seed).
type Transport struct {
	spec Spec
	base http.RoundTripper

	mu     sync.Mutex
	drop   *rand.Rand
	reset  *rand.Rand
	trunc  *rand.Rand
	err500 *rand.Rand
	flip   *rand.Rand
	lat    *rand.Rand
	seq    uint64
	counts Counts
}

// New builds a Transport injecting spec's faults from seed over base
// (http.DefaultTransport when nil).
func New(spec Spec, seed int64, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		spec:   spec,
		base:   base,
		drop:   dimRand(seed, saltDrop),
		reset:  dimRand(seed, saltReset),
		trunc:  dimRand(seed, saltTrunc),
		err500: dimRand(seed, saltErr),
		flip:   dimRand(seed, saltFlip),
		lat:    dimRand(seed, saltLat),
	}
}

// Counts returns a snapshot of the injection tallies.
func (t *Transport) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// decision is one request's fate, fully determined at arrival.
type decision struct {
	seq      uint64
	drop     bool
	reset    bool
	trunc    bool
	err500   bool
	flip     bool
	flipPick uint64 // which body bit to XOR, drawn only when flip fires
	delay    time.Duration
}

// decide draws one value from every dimension's stream, in fixed order,
// whether or not an earlier dimension already fired — the streams stay
// aligned, so request k's fate depends only on (Spec, seed, k), never on
// what earlier requests returned.
func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	d := decision{seq: t.seq}
	d.drop = t.drop.Float64() < t.spec.Drop
	d.reset = t.reset.Float64() < t.spec.Reset
	d.trunc = t.trunc.Float64() < t.spec.Trunc
	d.err500 = t.err500.Float64() < t.spec.Err500
	if t.flip.Float64() < t.spec.Flip {
		d.flip = true
		d.flipPick = t.flip.Uint64()
	}
	if t.lat.Float64() < t.spec.LatProb {
		d.delay = time.Duration((0.5 + t.lat.Float64()) * t.spec.LatMS * float64(time.Millisecond))
		t.counts.Latencies++
	}
	t.counts.Requests++
	switch {
	case d.drop:
		t.counts.Drops++
	case d.err500:
		t.counts.Err500s++
	case d.reset:
		t.counts.Resets++
	case d.trunc:
		t.counts.Truncations++
	case d.flip:
		t.counts.Flips++
	}
	return d
}

// RoundTrip applies the request's decided fate. Fault precedence when
// several dimensions fire at once: drop > err500 > reset > trunc > flip
// (a request that never left cannot also be reset, and a truncated body
// is already corrupt).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.decide()
	if d.delay > 0 {
		timer := time.NewTimer(d.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if d.drop {
		return nil, &Error{Kind: "drop", Seq: d.seq}
	}
	if d.err500 {
		body := `{"error":"chaos: injected spurious 500"}` + "\n"
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if d.reset {
		// The peer already processed the request; the caller just never
		// hears about it. Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, &Error{Kind: "reset", Seq: d.seq}
	}
	if d.trunc {
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(&truncReader{data: raw[:len(raw)/2]})
	} else if d.flip {
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(raw) > 0 {
			bit := d.flipPick % uint64(len(raw)*8)
			raw[bit/8] ^= 1 << (bit % 8)
		}
		resp.Body = io.NopCloser(bytes.NewReader(raw))
		resp.ContentLength = int64(len(raw))
	}
	return resp, nil
}

// truncReader yields a prefix of the body then fails the way a half-open
// connection does.
type truncReader struct {
	data []byte
	off  int
}

func (r *truncReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

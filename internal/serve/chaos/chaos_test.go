package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crophe/internal/leakcheck"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"drop:0.1",
		"drop:0.1,reset:0.05,trunc:0.05,err500:0.1,lat:0.3@5",
		"drop:0.1,reset:0.05,trunc:0.05,err500:0.1,flip:0.02,lat:0.3@5",
		"flip:0.25",
		"lat:1@25",
	}
	for _, text := range cases {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Fatalf("ParseSpec(%q).String() = %q", text, got)
		}
	}
	if s, err := ParseSpec(""); err != nil || !s.IsZero() {
		t.Fatalf("ParseSpec(\"\") = %+v, %v; want zero spec", s, err)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"drop",           // no value
		"drop:1.5",       // probability out of range
		"drop:-0.1",      // negative
		"warp:0.5",       // unknown dimension
		"lat:0.5",        // latency without magnitude
		"lat:0.5@-3",     // negative millis
		"drop:zero",      // unparsable float
		"drop:0.1,,",     // empty term
		"reset:0.1;lat:", // wrong separator
		"flip:1.01",      // probability out of range
		"flip:bit",       // unparsable float
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", text)
		}
	}
}

// countingHandler returns 200 with a fixed body and counts arrivals.
func countingHandler(hits *int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*hits++
		io.WriteString(w, `{"status":"ok","padding":"0123456789012345678901234567890123456789"}`)
	})
}

// drive sends n GETs through tr and records each request's outcome as a
// compact rune: 'd' drop, '5' injected 500, 'r' reset, 't' truncated
// body, '.' clean.
func drive(t *testing.T, tr *Transport, base string, n int) string {
	t.Helper()
	hc := &http.Client{Transport: tr}
	out := make([]rune, 0, n)
	for i := 0; i < n; i++ {
		resp, err := hc.Get(base)
		if err != nil {
			var ce *Error
			if errors.As(err, &ce) {
				if ce.Kind == "drop" {
					out = append(out, 'd')
				} else {
					out = append(out, 'r')
				}
				continue
			}
			t.Fatalf("request %d: non-chaos error %v", i, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == 500:
			out = append(out, '5')
		case errors.Is(rerr, io.ErrUnexpectedEOF):
			out = append(out, 't')
		case rerr != nil:
			t.Fatalf("request %d: read error %v (%d bytes)", i, rerr, len(body))
		default:
			out = append(out, '.')
		}
	}
	return string(out)
}

func TestTransportDeterministicPerSeed(t *testing.T) {
	leakcheck.Check(t)
	hits := 0
	srv := httptest.NewServer(countingHandler(&hits))
	defer srv.Close()

	spec, err := ParseSpec("drop:0.2,reset:0.15,trunc:0.15,err500:0.15")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	seqA := drive(t, New(spec, 42, nil), srv.URL, n)
	seqB := drive(t, New(spec, 42, nil), srv.URL, n)
	if seqA != seqB {
		t.Fatalf("same (spec, seed) produced different fates:\n%s\n%s", seqA, seqB)
	}
	seqC := drive(t, New(spec, 43, nil), srv.URL, n)
	if seqA == seqC {
		t.Fatal("different seeds produced identical fate sequences")
	}
	// Every dimension actually fired at these rates over 200 draws.
	for _, kind := range "d5rt." {
		found := false
		for _, c := range seqA {
			if c == kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fate %q never occurred in %s", string(kind), seqA)
		}
	}
}

func TestCountsMatchFates(t *testing.T) {
	leakcheck.Check(t)
	hits := 0
	srv := httptest.NewServer(countingHandler(&hits))
	defer srv.Close()

	spec := Spec{Drop: 0.3, Err500: 0.3}
	tr := New(spec, 7, nil)
	seq := drive(t, tr, srv.URL, 100)
	var drops, errs uint64
	for _, c := range seq {
		switch c {
		case 'd':
			drops++
		case '5':
			errs++
		}
	}
	got := tr.Counts()
	if got.Requests != 100 || got.Drops != drops || got.Err500s != errs {
		t.Fatalf("counts %+v; observed drops=%d err500s=%d over 100", got, drops, errs)
	}
	// Drops and injected 500s never reach the peer.
	if want := 100 - int(drops) - int(errs); hits != want {
		t.Fatalf("server saw %d requests; want %d", hits, want)
	}
}

func TestResetForwardsBeforeFailing(t *testing.T) {
	leakcheck.Check(t)
	hits := 0
	srv := httptest.NewServer(countingHandler(&hits))
	defer srv.Close()

	tr := New(Spec{Reset: 1}, 1, nil)
	hc := &http.Client{Transport: tr}
	_, err := hc.Get(srv.URL)
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != "reset" {
		t.Fatalf("err = %v; want injected reset", err)
	}
	if hits != 1 {
		t.Fatalf("server saw %d requests; a reset must forward first", hits)
	}
}

func TestLatencyHonoursContext(t *testing.T) {
	leakcheck.Check(t)
	srv := httptest.NewServer(countingHandler(new(int)))
	defer srv.Close()

	tr := New(Spec{LatProb: 1, LatMS: 60_000}, 1, nil)
	hc := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := hc.Do(req)
	if err == nil {
		t.Fatal("minute-scale injected latency returned without error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context cancellation took %s to cut the injected sleep", elapsed)
	}
}

func TestTruncationEndsInUnexpectedEOF(t *testing.T) {
	leakcheck.Check(t)
	srv := httptest.NewServer(countingHandler(new(int)))
	defer srv.Close()

	tr := New(Spec{Trunc: 1}, 1, nil)
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("read = %q, %v; want io.ErrUnexpectedEOF", body, rerr)
	}
	if len(body) == 0 {
		t.Fatal("truncation returned no prefix at all")
	}
}

func TestFlipCorruptsExactlyOneBit(t *testing.T) {
	leakcheck.Check(t)
	srv := httptest.NewServer(countingHandler(new(int)))
	defer srv.Close()

	clean, err := (&http.Client{}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(clean.Body)
	clean.Body.Close()

	tr := New(Spec{Flip: 1}, 11, nil)
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("a flip must not surface as a transport error: %v", err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		t.Fatalf("flipped body read: %v", rerr)
	}
	if len(got) != len(want) {
		t.Fatalf("flip changed body length: %d != %d", len(got), len(want))
	}
	diffBits := 0
	for i := range got {
		for b := got[i] ^ want[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flip changed %d bits; want exactly 1\nclean:   %q\nflipped: %q", diffBits, want, got)
	}
	if c := tr.Counts(); c.Flips != 1 || c.Total() != 1 {
		t.Fatalf("counts after one flipped request: %+v", c)
	}

	// Same (spec, seed) flips the same bit of the same request.
	resp2, err := (&http.Client{Transport: New(Spec{Flip: 1}, 11, nil)}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(got2) != string(got) {
		t.Fatal("same (spec, seed) flipped a different bit")
	}
}

func TestFlipYieldsToTruncation(t *testing.T) {
	// Precedence: a truncated body is already corrupt, so flip does not
	// additionally fire — the fate reads as a clean truncation.
	leakcheck.Check(t)
	srv := httptest.NewServer(countingHandler(new(int)))
	defer srv.Close()

	tr := New(Spec{Trunc: 1, Flip: 1}, 3, nil)
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("trunc+flip read error = %v; want truncation", rerr)
	}
	if c := tr.Counts(); c.Truncations != 1 || c.Flips != 0 {
		t.Fatalf("trunc must win over flip in the tally: %+v", c)
	}
}

func TestFlipStreamDoesNotPerturbOtherDimensions(t *testing.T) {
	// The per-dimension salted streams mean adding flip to a spec leaves
	// every other dimension's decision sequence bit-identical.
	leakcheck.Check(t)
	srv := httptest.NewServer(countingHandler(new(int)))
	defer srv.Close()

	base := Spec{Drop: 0.2, Reset: 0.15, Trunc: 0.15, Err500: 0.15}
	withFlip := base
	withFlip.Flip = 0.5
	const n = 150
	seqBase := drive(t, New(base, 19, nil), srv.URL, n)
	seqFlip := drive(t, New(withFlip, 19, nil), srv.URL, n)
	// drive records flips as '.', so the fate strings must be identical.
	if seqBase != seqFlip {
		t.Fatalf("adding flip perturbed other dimensions:\n%s\n%s", seqBase, seqFlip)
	}
}

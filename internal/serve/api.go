package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"crophe"
)

// Wire types of the crophe-serve HTTP/JSON API, shared by the server
// handlers and the typed Client (and by the coordinator→worker RPC,
// which is the same protocol). Field tags are the API; renaming a tag is
// a breaking change.

// ScheduleRequest is the body of POST /v1/schedule and POST /v1/simulate.
type ScheduleRequest struct {
	HW         string `json:"hw"`
	Workload   string `json:"workload"`
	Dataflow   string `json:"dataflow,omitempty"`    // "crophe" (default) or "mad"
	DeadlineMS int    `json:"deadline_ms,omitempty"` // anytime search budget; header wins
	ChaosPanic bool   `json:"chaos_panic,omitempty"` // AllowChaos only: panic on purpose
	Seed       int64  `json:"seed,omitempty"`        // replay seed stamped into chaos 500s
}

// ScheduleResponse summarises a schedule (and optionally a simulation).
type ScheduleResponse struct {
	Workload   string   `json:"workload"`
	HW         string   `json:"hw"`
	TimeMS     float64  `json:"time_ms"`
	Partial    bool     `json:"partial"`
	Cached     bool     `json:"cached,omitempty"`
	DRAMBytes  float64  `json:"dram_bytes"`
	SRAMBytes  float64  `json:"sram_bytes"`
	NoCBytes   float64  `json:"noc_bytes"`
	SimTimeMS  *float64 `json:"sim_time_ms,omitempty"`
	SimCycles  *float64 `json:"sim_cycles,omitempty"`
	SimEnergyJ *float64 `json:"sim_energy_j,omitempty"`
}

// DegradedRequest is the body of POST /v1/simulate-degraded.
type DegradedRequest struct {
	HW         string `json:"hw"`
	Workload   string `json:"workload"`
	Faults     string `json:"faults"` // fault.Spec grammar
	Seed       int64  `json:"seed"`
	DeadlineMS int    `json:"deadline_ms,omitempty"`
	ChaosPanic bool   `json:"chaos_panic,omitempty"`
}

// DegradedResponse reports a degraded run plus throughput retained.
// Integrity is present only when the fault spec injected silent data
// corruption (flip:R) — the priced detect → recompute → escalate
// outcome, whose cycle penalty is already folded into Cycles.
type DegradedResponse struct {
	Workload   string          `json:"workload"`
	HW         string          `json:"hw"`
	Faults     string          `json:"faults"`
	Seed       int64           `json:"seed"`
	FaultCount int             `json:"fault_count"`
	TimeMS     float64         `json:"time_ms"`
	Cycles     float64         `json:"cycles"`
	Partial    bool            `json:"partial"`
	Integrity  *IntegrityStats `json:"integrity,omitempty"`
}

// IntegrityStats is the wire form of the data-plane integrity outcome:
// checked units, detections, bounded recomputes, escalations to bank
// quarantine, and the recovery's total cycle cost.
type IntegrityStats struct {
	Checks        float64 `json:"checks"`
	Detected      float64 `json:"detected"`
	Recomputed    float64 `json:"recomputed"`
	Escalated     float64 `json:"escalated"`
	PenaltyCycles float64 `json:"penalty_cycles"`
}

// SweepRequest is the body of POST /v1/sweeps. ShardIndex/ShardCount
// restrict the job to the rungs with step % count == index — the
// coordinator→worker sharding; both zero means the full sweep.
type SweepRequest struct {
	HW         string `json:"hw"`
	Workload   string `json:"workload"`
	Seed       int64  `json:"seed"`
	Steps      int    `json:"steps"`
	DeadlineMS int    `json:"deadline_ms,omitempty"` // per-rung anytime budget
	ShardIndex int    `json:"shard_index,omitempty"`
	ShardCount int    `json:"shard_count,omitempty"`
}

// SweepPointSummary is one journaled rung rendered for clients. TimeMS
// is a display value (TimeSec × 1e3, a lossy float operation) — the
// coordinator merges from the raw points instead, which round-trip
// exactly.
type SweepPointSummary struct {
	Step       int     `json:"step"`
	FracFailed float64 `json:"frac_failed"`
	FaultCount int     `json:"fault_count"`
	TimeMS     float64 `json:"time_ms"`
	Retained   float64 `json:"retained"`
	Partial    bool    `json:"partial"`
	Err        string  `json:"error,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} response (and the POST
// response, minus points while running). RawPoints — the exact
// fault.SweepPoint values, populated only when the poll asks for
// ?raw=1 — carry every rung journaled so far even while the job runs;
// they are what the coordinator merges, because Go's JSON float
// round-trip is exact where the TimeMS display conversion is not.
type SweepStatus struct {
	ID         string                   `json:"id"`
	State      string                   `json:"state"`
	HW         string                   `json:"hw"`
	Workload   string                   `json:"workload"`
	Seed       int64                    `json:"seed"`
	Steps      int                      `json:"steps"`
	DeadlineMS int                      `json:"deadline_ms,omitempty"`
	ShardIndex int                      `json:"shard_index,omitempty"`
	ShardCount int                      `json:"shard_count,omitempty"`
	Completed  int                      `json:"completed_steps"`
	Created    *bool                    `json:"created,omitempty"` // POST only
	Error      string                   `json:"error,omitempty"`
	BaselineMS float64                  `json:"baseline_ms,omitempty"`
	Points     []SweepPointSummary      `json:"points,omitempty"`
	RawPoints  []crophe.ResiliencePoint `json:"raw_points,omitempty"`
	RawSum     string                   `json:"raw_sum,omitempty"` // sumPoints(RawPoints), set whenever RawPoints are
}

// sumPoints is the end-to-end checksum a raw shard payload travels
// under: FNV-1a over each point's exact JSON encoding. The worker
// stamps it into SweepStatus.RawSum next to RawPoints; the coordinator
// recomputes it from the points it actually received and refuses to
// merge on mismatch — a one-bit corruption anywhere in the payload
// (see the chaos transport's flip dimension) is caught here instead of
// poisoning the merged sweep report.
func sumPoints(pts []crophe.ResiliencePoint) string {
	h := fnv.New64a()
	for _, pt := range pts {
		b, err := json.Marshal(pt)
		if err != nil {
			// ResiliencePoint is plain data; Marshal cannot fail on it.
			panic(err)
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// MemoImportResponse is the body of a POST /v1/memo/snapshot reply.
type MemoImportResponse struct {
	Imported    int `json:"imported"`
	WarmEntries int `json:"warm_entries"`
}

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"crophe"

	"crophe/internal/leakcheck"
)

// startCluster boots n single-role workers plus a coordinator wired to
// them, all with their own checkpoint directories, and returns the
// coordinator server and the worker servers.
func startCluster(t *testing.T, n int, mod func(*Config)) (*Server, []*Server) {
	t.Helper()
	workers := make([]*Server, n)
	urls := make([]string, n)
	for i := range workers {
		workers[i] = startServer(t, Config{CheckpointDir: t.TempDir()})
		urls[i] = workers[i].Addr()
	}
	cfg := Config{
		Role:          RoleCoordinator,
		WorkerURLs:    urls,
		CheckpointDir: t.TempDir(),
		// Tight cluster timing so tests converge in milliseconds, not the
		// production-scale defaults.
		HeartbeatInterval: 25 * time.Millisecond,
		WorkerTimeout:     150 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	return startServer(t, cfg), workers
}

// waitSweepDone polls the coordinator until the job reaches a terminal
// state, failing the test on "failed" or timeout.
func waitSweepDone(t *testing.T, c *Client, id string, timeout time.Duration) *SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.SweepStatus(context.Background(), id, false)
		if err != nil {
			t.Fatalf("SweepStatus: %v", err)
		}
		switch st.State {
		case jobDone:
			return st
		case jobFailed:
			t.Fatalf("sweep failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep not done after %v: %+v", timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceSweep runs the same sweep single-process through the façade —
// the byte-identity yardstick for every distributed result.
func referenceSweep(t *testing.T, hwName, wlName string, seed int64, steps, deadlineMS int) *crophe.ResilienceSweep {
	t.Helper()
	hw, ok := crophe.LookupHW(hwName)
	if !ok {
		t.Fatalf("unknown hw %q", hwName)
	}
	wl, ok := crophe.LookupWorkload(wlName, crophe.DefaultParamsFor(hw), crophe.RotHoisted)
	if !ok {
		t.Fatalf("unknown workload %q", wlName)
	}
	ref, err := crophe.RunResilienceSweepWith(context.Background(), hw, wl, seed, steps,
		time.Duration(deadlineMS)*time.Millisecond)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	return ref
}

// assertByteIdentical pins the acceptance criterion: the distributed
// result renders byte-for-byte like the single-process one, in both the
// JSON and the human report forms.
func assertByteIdentical(t *testing.T, got, want *crophe.ResilienceSweep) {
	t.Helper()
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal merged sweep: %v", err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal reference sweep: %v", err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("merged sweep JSON differs from single-process run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if got.String() != want.String() {
		t.Fatalf("merged sweep report differs from single-process run:\n got %s\nwant %s", got.String(), want.String())
	}
}

// coordResult digs the assembled result out of the coordinator.
func coordResult(t *testing.T, s *Server, id string) *crophe.ResilienceSweep {
	t.Helper()
	cj, ok := s.coord.get(id)
	if !ok {
		t.Fatalf("coordinator lost job %s", id)
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if cj.result == nil {
		t.Fatalf("job %s has no assembled result", id)
	}
	return cj.result
}

func TestShardedSweepByteIdenticalToSingleProcess(t *testing.T) {
	leakcheck.Check(t)
	coordSrv, _ := startCluster(t, 2, nil)
	c := NewClient(coordSrv.Addr())

	req := SweepRequest{HW: "crophe64", Workload: "helr", Seed: 5, Steps: 6, DeadlineMS: 3}
	st, err := c.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	if st.Created == nil || !*st.Created {
		t.Fatalf("first POST: created = %v; want true", st.Created)
	}
	// Idempotent re-POST addresses the same distributed job.
	st2, err := c.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("repeat StartSweep: %v", err)
	}
	if st2.ID != st.ID || st2.Created == nil || *st2.Created {
		t.Fatalf("repeat POST: id %s created %v; want %s, false", st2.ID, st2.Created, st.ID)
	}

	final := waitSweepDone(t, c, st.ID, 60*time.Second)
	if len(final.Points) != 6 {
		t.Fatalf("done sweep has %d points; want 6", len(final.Points))
	}

	ref := referenceSweep(t, "crophe64", "helr", 5, 6, 3)
	assertByteIdentical(t, coordResult(t, coordSrv, st.ID), ref)

	// The merged job ID is the single-process job ID: a client cannot
	// tell which topology answered.
	single := sweepParams{V: 1, HW: "crophe64", Workload: "helr", Seed: 5, Steps: 6, DeadlineMS: 3}
	if want := sweepID(single); st.ID != want {
		t.Fatalf("distributed job ID %s != single-process ID %s", st.ID, want)
	}
}

func TestWorkerCrashReassignsShardByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	coordSrv, workers := startCluster(t, 2, nil)
	c := NewClient(coordSrv.Addr())

	const steps, deadlineMS = 12, 15
	req := SweepRequest{HW: "crophe64", Workload: "helr", Seed: 9, Steps: steps, DeadlineMS: deadlineMS}
	st, err := c.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}

	// Kill worker 1 once its shard (the odd steps) has landed at least
	// one rung but cannot have finished — mid-shard, the reassignment
	// window the chaos drill exists to exercise.
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		raw, err := c.SweepStatus(context.Background(), st.ID, true)
		if err != nil {
			t.Fatalf("raw SweepStatus: %v", err)
		}
		odd := 0
		for _, pt := range raw.RawPoints {
			if pt.Step%2 == 1 {
				odd++
			}
		}
		if odd >= 1 {
			if odd >= steps/2 {
				t.Fatalf("worker 1 finished its whole shard (%d odd rungs) before the kill window", odd)
			}
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("no odd-shard rung appeared to open the kill window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	workers[1].Kill()

	final := waitSweepDone(t, c, st.ID, 120*time.Second)
	if len(final.Points) != steps {
		t.Fatalf("done sweep has %d points; want %d", len(final.Points), steps)
	}

	// The kill must have forced at least one lease reassignment.
	cj, ok := coordSrv.coord.get(st.ID)
	if !ok {
		t.Fatalf("coordinator lost job %s", st.ID)
	}
	cj.mu.Lock()
	maxEpoch := 0
	for _, sh := range cj.shards {
		if sh.epoch > maxEpoch {
			maxEpoch = sh.epoch
		}
	}
	cj.mu.Unlock()
	if maxEpoch < 1 {
		t.Fatalf("no shard was reassigned (max epoch 0) despite the worker kill")
	}

	// The coordinator journal records the reassignment as lease lines:
	// an epoch-0 lease and a later epoch for the same shard.
	data, err := os.ReadFile(journalPath(coordSrv.cfg.CheckpointDir, st.ID))
	if err != nil {
		t.Fatalf("reading coordinator journal: %v", err)
	}
	leases := 0
	reassigned := false
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		body, derr := decodeJournalLine([]byte(line))
		if derr != nil {
			t.Fatalf("journal line failed its CRC frame: %v (%q)", derr, line)
		}
		var e journalEntry
		if json.Unmarshal(body, &e) != nil || e.Lease == nil {
			continue
		}
		leases++
		if e.Lease.Epoch >= 1 {
			reassigned = true
		}
	}
	if leases < 3 || !reassigned {
		t.Fatalf("journal holds %d lease lines (reassigned=%v); want >= 3 with an epoch >= 1", leases, reassigned)
	}

	ref := referenceSweep(t, "crophe64", "helr", 9, steps, deadlineMS)
	assertByteIdentical(t, coordResult(t, coordSrv, st.ID), ref)
}

func TestCoordinatorEndpointsAndValidation(t *testing.T) {
	coordSrv, _ := startCluster(t, 2, nil)
	c := NewClient(coordSrv.Addr())

	// A coordinator refuses pre-sharded requests: it owns the sharding.
	_, err := c.StartSweep(context.Background(), SweepRequest{
		HW: "crophe64", Workload: "helr", Seed: 1, Steps: 4, ShardCount: 2,
	})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != 400 {
		t.Fatalf("pre-sharded POST to coordinator: %T %v; want *APIError 400", err, err)
	}

	// /v1/cluster reports the topology.
	code, body, _ := doJSON(t, http.DefaultClient, "GET", "http://"+coordSrv.Addr()+"/v1/cluster", nil, nil)
	if code != 200 || body["role"] != RoleCoordinator {
		t.Fatalf("/v1/cluster = %d %v; want 200 with role=coordinator", code, body)
	}
	ws, _ := body["workers"].([]any)
	if len(ws) != 2 {
		t.Fatalf("/v1/cluster workers = %v; want 2", body["workers"])
	}
}

func TestWorkerShardValidation(t *testing.T) {
	s := startServer(t, Config{})
	c := NewClient(s.Addr(), WithRetry(0, 0, 0))

	cases := []SweepRequest{
		{HW: "crophe64", Workload: "helr", Steps: 4, ShardIndex: 2, ShardCount: 2}, // index out of range
		{HW: "crophe64", Workload: "helr", Steps: 4, ShardIndex: -1, ShardCount: 2},
		{HW: "crophe64", Workload: "helr", Steps: 4, ShardCount: 5}, // count > steps
		{HW: "crophe64", Workload: "helr", Steps: 4, ShardCount: -1},
	}
	for _, req := range cases {
		_, err := c.StartSweep(context.Background(), req)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.Status != 400 {
			t.Fatalf("StartSweep(%+v): %T %v; want *APIError 400", req, err, err)
		}
	}

	// A valid shard runs exactly its own steps and nothing else.
	st, err := c.StartSweep(context.Background(), SweepRequest{
		HW: "crophe64", Workload: "helr", Seed: 3, Steps: 4, DeadlineMS: 3,
		ShardIndex: 1, ShardCount: 2,
	})
	if err != nil {
		t.Fatalf("sharded StartSweep: %v", err)
	}
	final := waitSweepDone(t, c, st.ID, 60*time.Second)
	if final.ShardIndex != 1 || final.ShardCount != 2 {
		t.Fatalf("shard identity lost in status: %+v", final)
	}
	raw, err := c.SweepStatus(context.Background(), st.ID, true)
	if err != nil {
		t.Fatalf("raw SweepStatus: %v", err)
	}
	if len(raw.RawPoints) != 2 {
		t.Fatalf("shard 1/2 of 4 steps ran %d rungs; want 2", len(raw.RawPoints))
	}
	for _, pt := range raw.RawPoints {
		if pt.Step%2 != 1 {
			t.Fatalf("shard 1/2 ran step %d; want odd steps only", pt.Step)
		}
	}
}

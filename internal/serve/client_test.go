package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crophe/internal/cliutil"
)

// stub builds an httptest server whose handler the test controls, plus a
// Client pointed at it with fast, bounded retries.
func stub(t *testing.T, h http.HandlerFunc, opts ...ClientOption) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, opts...), ts
}

func TestClientDeadlineHeaderFromContext(t *testing.T) {
	var got atomic.Value
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(DeadlineHeader))
		writeJSON(w, http.StatusOK, ScheduleResponse{})
	})

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if _, err := c.Schedule(ctx, ScheduleRequest{HW: "crophe64", Workload: "helr"}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	h, _ := got.Load().(string)
	if h == "" {
		t.Fatalf("no %s header sent for a deadline-carrying context", DeadlineHeader)
	}
	d, err := cliutil.ParseDeadline(h)
	if err != nil {
		t.Fatalf("header %q does not parse with the server's own parser: %v", h, err)
	}
	if d <= 0 || d > 250*time.Millisecond {
		t.Fatalf("header deadline %v outside (0, 250ms]", d)
	}

	// No context deadline → no header.
	got.Store("unset")
	if _, err := c.Schedule(context.Background(), ScheduleRequest{}); err != nil {
		t.Fatalf("Schedule without deadline: %v", err)
	}
	if h, _ := got.Load().(string); h != "" {
		t.Fatalf("header sent without a context deadline: %q", h)
	}
}

func TestClientTypedShedError(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeError(w, http.StatusTooManyRequests, "overloaded: admission queue is full")
	}, WithRetry(0, 0, 0))

	_, err := c.Schedule(context.Background(), ScheduleRequest{})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %T %v; want *ShedError", err, err)
	}
	if shed.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v; want 7s", shed.RetryAfter)
	}
	if shed.Message == "" {
		t.Fatalf("ShedError lost the server message")
	}
}

func TestClientTypedUnavailableError(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	}, WithRetry(0, 0, 0))

	err := c.Ready(context.Background())
	var unavail *UnavailableError
	if !errors.As(err, &unavail) {
		t.Fatalf("err = %T %v; want *UnavailableError", err, err)
	}
}

func TestClientAPIErrorCarriesFaultSeed(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		seed := int64(99)
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": fmtInvariant(seed, "boom"), "panic": true, "fault_seed": seed,
		})
	})

	_, err := c.Schedule(context.Background(), ScheduleRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v; want *APIError", err, err)
	}
	if apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("Status = %d; want 500", apiErr.Status)
	}
	if apiErr.FaultSeed == nil || *apiErr.FaultSeed != 99 {
		t.Fatalf("FaultSeed = %v; want 99", apiErr.FaultSeed)
	}
}

func TestClientRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusTooManyRequests, "overloaded")
			return
		}
		writeJSON(w, http.StatusOK, ScheduleResponse{Workload: "helr"})
	}, WithRetry(3, time.Millisecond, 5*time.Millisecond))

	resp, err := c.Schedule(context.Background(), ScheduleRequest{})
	if err != nil {
		t.Fatalf("Schedule after retries: %v", err)
	}
	if resp.Workload != "helr" {
		t.Fatalf("response = %+v; want the success body", resp)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls; want 3 (two sheds + success)", n)
	}
}

func TestClientRetryGivesUpAtBudget(t *testing.T) {
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}, WithRetry(2, time.Millisecond, 2*time.Millisecond))

	_, err := c.Schedule(context.Background(), ScheduleRequest{})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %T %v; want *ShedError after exhausting retries", err, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls; want 3 (initial + 2 retries)", n)
	}
}

func TestClientNoRetryOnAPIError(t *testing.T) {
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, "unknown hw")
	}, WithRetry(5, time.Millisecond, 2*time.Millisecond))

	if _, err := c.Schedule(context.Background(), ScheduleRequest{}); err == nil {
		t.Fatalf("expected an error for a 400")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls; want 1 (4xx must not be retried)", n)
	}
}

func TestClientContextCancelAbortsRetries(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}, WithRetry(1000, 50*time.Millisecond, 50*time.Millisecond))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Schedule(ctx, ScheduleRequest{})
	if err == nil {
		t.Fatalf("expected an error after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled call took %v; the retry loop ignored the context", elapsed)
	}
}

func TestClientAgainstRealServer(t *testing.T) {
	s := startServer(t, Config{})
	c := NewClient(s.Addr())

	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	resp, err := c.Schedule(context.Background(), ScheduleRequest{HW: "crophe64", Workload: "helr"})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if resp.TimeMS <= 0 || resp.Partial {
		t.Fatalf("Schedule = %+v; want a full positive-time schedule", resp)
	}
	deg, err := c.SimulateDegraded(context.Background(), DegradedRequest{
		HW: "crophe64", Workload: "helr", Faults: "rows:1,links:2", Seed: 13,
	})
	if err != nil {
		t.Fatalf("SimulateDegraded: %v", err)
	}
	if deg.FaultCount < 1 {
		t.Fatalf("SimulateDegraded injected %d faults; want >= 1", deg.FaultCount)
	}

	// Unknown hardware surfaces as a typed 400, not an opaque failure.
	_, err = c.Schedule(context.Background(), ScheduleRequest{HW: "nope", Workload: "helr"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown hw err = %T %v; want *APIError 400", err, err)
	}
}

func TestRetryAfterJitterDeterministic(t *testing.T) {
	mk := func(seed int64) []int {
		s := New(Config{RetryJitterSeed: seed})
		out := make([]int, 8)
		for i := range out {
			out[i] = s.retryAfterSeconds()
		}
		return out
	}
	a, b := mk(7), mk(7)
	base := int((Config{}.withDefaults()).QueueWait.Seconds())
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
		if a[i] < base || a[i] > base+base/2 {
			t.Fatalf("hint %d outside [%d, %d]: %v", a[i], base, base+base/2, a)
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("jitter produced a constant sequence %v; want variation", a)
	}
}

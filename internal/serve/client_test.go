package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crophe/internal/cliutil"
	"crophe/internal/leakcheck"
	"crophe/internal/serve/chaos"
)

// stub builds an httptest server whose handler the test controls, plus a
// Client pointed at it with fast, bounded retries.
func stub(t *testing.T, h http.HandlerFunc, opts ...ClientOption) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, opts...), ts
}

func TestClientDeadlineHeaderFromContext(t *testing.T) {
	var got atomic.Value
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(DeadlineHeader))
		writeJSON(w, http.StatusOK, ScheduleResponse{})
	})

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if _, err := c.Schedule(ctx, ScheduleRequest{HW: "crophe64", Workload: "helr"}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	h, _ := got.Load().(string)
	if h == "" {
		t.Fatalf("no %s header sent for a deadline-carrying context", DeadlineHeader)
	}
	d, err := cliutil.ParseDeadline(h)
	if err != nil {
		t.Fatalf("header %q does not parse with the server's own parser: %v", h, err)
	}
	if d <= 0 || d > 250*time.Millisecond {
		t.Fatalf("header deadline %v outside (0, 250ms]", d)
	}

	// No context deadline → no header.
	got.Store("unset")
	if _, err := c.Schedule(context.Background(), ScheduleRequest{}); err != nil {
		t.Fatalf("Schedule without deadline: %v", err)
	}
	if h, _ := got.Load().(string); h != "" {
		t.Fatalf("header sent without a context deadline: %q", h)
	}
}

func TestClientTypedShedError(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeError(w, http.StatusTooManyRequests, "overloaded: admission queue is full")
	}, WithRetry(0, 0, 0))

	_, err := c.Schedule(context.Background(), ScheduleRequest{})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %T %v; want *ShedError", err, err)
	}
	if shed.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v; want 7s", shed.RetryAfter)
	}
	if shed.Message == "" {
		t.Fatalf("ShedError lost the server message")
	}
}

func TestClientTypedUnavailableError(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	}, WithRetry(0, 0, 0))

	err := c.Ready(context.Background())
	var unavail *UnavailableError
	if !errors.As(err, &unavail) {
		t.Fatalf("err = %T %v; want *UnavailableError", err, err)
	}
}

func TestClientAPIErrorCarriesFaultSeed(t *testing.T) {
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		seed := int64(99)
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": fmtInvariant(seed, "boom"), "panic": true, "fault_seed": seed,
		})
	})

	_, err := c.Schedule(context.Background(), ScheduleRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v; want *APIError", err, err)
	}
	if apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("Status = %d; want 500", apiErr.Status)
	}
	if apiErr.FaultSeed == nil || *apiErr.FaultSeed != 99 {
		t.Fatalf("FaultSeed = %v; want 99", apiErr.FaultSeed)
	}
}

func TestClientRetriesShedThenSucceeds(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusTooManyRequests, "overloaded")
			return
		}
		writeJSON(w, http.StatusOK, ScheduleResponse{Workload: "helr"})
	}, WithRetry(3, time.Millisecond, 5*time.Millisecond))

	resp, err := c.Schedule(context.Background(), ScheduleRequest{})
	if err != nil {
		t.Fatalf("Schedule after retries: %v", err)
	}
	if resp.Workload != "helr" {
		t.Fatalf("response = %+v; want the success body", resp)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls; want 3 (two sheds + success)", n)
	}
}

func TestClientRetryGivesUpAtBudget(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}, WithRetry(2, time.Millisecond, 2*time.Millisecond))

	_, err := c.Schedule(context.Background(), ScheduleRequest{})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %T %v; want *ShedError after exhausting retries", err, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls; want 3 (initial + 2 retries)", n)
	}
}

func TestClientNoRetryOnAPIError(t *testing.T) {
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, "unknown hw")
	}, WithRetry(5, time.Millisecond, 2*time.Millisecond))

	if _, err := c.Schedule(context.Background(), ScheduleRequest{}); err == nil {
		t.Fatalf("expected an error for a 400")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls; want 1 (4xx must not be retried)", n)
	}
}

func TestClientContextCancelAbortsRetries(t *testing.T) {
	leakcheck.Check(t)
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}, WithRetry(1000, 50*time.Millisecond, 50*time.Millisecond))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Schedule(ctx, ScheduleRequest{})
	if err == nil {
		t.Fatalf("expected an error after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled call took %v; the retry loop ignored the context", elapsed)
	}
}

func TestClientAgainstRealServer(t *testing.T) {
	s := startServer(t, Config{})
	c := NewClient(s.Addr())

	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	resp, err := c.Schedule(context.Background(), ScheduleRequest{HW: "crophe64", Workload: "helr"})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if resp.TimeMS <= 0 || resp.Partial {
		t.Fatalf("Schedule = %+v; want a full positive-time schedule", resp)
	}
	deg, err := c.SimulateDegraded(context.Background(), DegradedRequest{
		HW: "crophe64", Workload: "helr", Faults: "rows:1,links:2", Seed: 13,
	})
	if err != nil {
		t.Fatalf("SimulateDegraded: %v", err)
	}
	if deg.FaultCount < 1 {
		t.Fatalf("SimulateDegraded injected %d faults; want >= 1", deg.FaultCount)
	}

	// Unknown hardware surfaces as a typed 400, not an opaque failure.
	_, err = c.Schedule(context.Background(), ScheduleRequest{HW: "nope", Workload: "helr"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown hw err = %T %v; want *APIError 400", err, err)
	}
}

// TestClientBackoffRespectsDeadlineBudget: a Retry-After hint larger
// than the context deadline's remaining budget means the retry cannot
// possibly land; the client must return the error now instead of
// sleeping the caller's deadline away.
func TestClientBackoffRespectsDeadlineBudget(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	c, _ := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}, WithRetry(10, 10*time.Millisecond, 10*time.Second))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.Schedule(ctx, ScheduleRequest{})
	elapsed := time.Since(start)

	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %T %v; want *ShedError", err, err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-doomed retry slept %v; want an immediate return", elapsed)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls; the 5s hint exceeds the 2s budget after the first", n)
	}
}

// TestFailoverClientRotatesToReadyEndpoint: after a retryable failure
// the multi-endpoint client probes the candidates' /readyz and lands the
// retry on the first ready one.
func TestFailoverClientRotatesToReadyEndpoint(t *testing.T) {
	leakcheck.Check(t)
	var downCalls, upCalls atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		downCalls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
	}))
	t.Cleanup(down.Close)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
			return
		}
		upCalls.Add(1)
		writeJSON(w, http.StatusOK, ScheduleResponse{Workload: "helr"})
	}))
	t.Cleanup(up.Close)

	c, err := NewFailoverClient([]string{down.URL, up.URL},
		WithRetry(3, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatalf("NewFailoverClient: %v", err)
	}
	if got := c.Endpoint(); got != down.URL {
		t.Fatalf("initial endpoint %s; want bases[0] %s", got, down.URL)
	}
	resp, err := c.Schedule(context.Background(), ScheduleRequest{})
	if err != nil {
		t.Fatalf("Schedule across failover: %v", err)
	}
	if resp.Workload != "helr" {
		t.Fatalf("response %+v; want the healthy endpoint's body", resp)
	}
	if got := c.Endpoint(); got != up.URL {
		t.Fatalf("client still targets %s after failover; want %s", got, up.URL)
	}
	if downCalls.Load() != 1 || upCalls.Load() != 1 {
		t.Fatalf("down saw %d calls, up saw %d; want 1 each (one failure, one rotated retry)",
			downCalls.Load(), upCalls.Load())
	}

	// Subsequent calls stick to the rotated endpoint without re-probing.
	if _, err := c.Schedule(context.Background(), ScheduleRequest{}); err != nil {
		t.Fatalf("Schedule after rotation: %v", err)
	}
	if downCalls.Load() != 1 {
		t.Fatalf("rotated client went back to the down endpoint (%d calls)", downCalls.Load())
	}
}

func TestNewFailoverClientRequiresEndpoint(t *testing.T) {
	if _, err := NewFailoverClient(nil); err == nil {
		t.Fatal("NewFailoverClient(nil) accepted an empty endpoint list")
	}
}

// TestClientRetriesThroughChaosTransport: the retry loop rides out a
// deterministic seeded fault injector — the drill the failover smoke
// runs with real processes, here at unit scale.
func TestClientRetriesThroughChaosTransport(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusOK, ScheduleResponse{Workload: "helr"})
	}))
	t.Cleanup(ts.Close)

	// Transport-level faults only: an injected 500 is a *server* answer
	// and correctly decodes non-retryable, which is not what this test
	// exercises.
	tr := chaos.New(chaos.Spec{Drop: 0.4, Reset: 0.2, Trunc: 0.2}, 11, nil)
	c := NewClient(ts.URL,
		WithHTTPClient(&http.Client{Transport: tr}),
		WithRetry(20, time.Millisecond, 5*time.Millisecond))
	resp, err := c.Schedule(context.Background(), ScheduleRequest{})
	if err != nil {
		t.Fatalf("Schedule through chaos: %v", err)
	}
	if resp.Workload != "helr" {
		t.Fatalf("response %+v; want the success body", resp)
	}
	if ct := tr.Counts(); ct.Total() == 0 {
		t.Logf("chaos injected nothing at this seed; still a valid pass")
	}
}

func TestRetryAfterJitterDeterministic(t *testing.T) {
	mk := func(seed int64) []int {
		s := New(Config{RetryJitterSeed: seed})
		out := make([]int, 8)
		for i := range out {
			out[i] = s.retryAfterSeconds()
		}
		return out
	}
	a, b := mk(7), mk(7)
	base := int((Config{}.withDefaults()).QueueWait.Seconds())
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
		if a[i] < base || a[i] > base+base/2 {
			t.Fatalf("hint %d outside [%d, %d]: %v", a[i], base, base+base/2, a)
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("jitter produced a constant sequence %v; want variation", a)
	}
}

package serve

import (
	"log"
	"net/http"
	"strconv"

	"crophe"
)

// Worker-facing endpoints of the cluster protocol. A worker is an
// ordinary crophe-serve instance — same API, same middleware — plus the
// memo-snapshot pair below, which the coordinator uses to ship schedule
// warm-start state into newly joined (or restarted) workers and to
// harvest what a worker learned when its shard finishes. Both live
// outside the admission pipeline: snapshot traffic is cluster plumbing
// and must work while the instance sheds compute load.

// handleMemoExport serialises this process's schedule memo
// (GET /v1/memo/snapshot): full-tier entries as summaries plus the
// not-yet-promoted warm tier, deterministically ordered.
func (s *Server) handleMemoExport(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, crophe.ExportScheduleMemo())
}

// fenceCoordinator enforces worker-side epoch fencing on mutating RPCs.
// A request carrying X-Crophe-Coordinator-Epoch below the highest epoch
// this worker has seen gets a 409 and the caller must stop — it is a
// zombie coordinator a standby already superseded. Requests without the
// header (plain API clients) pass untouched. Returns true when the
// request was rejected and the response already written.
func (s *Server) fenceCoordinator(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(CoordEpochHeader)
	if h == "" {
		return false
	}
	epoch, err := strconv.ParseInt(h, 10, 64)
	if err != nil || epoch < 1 {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "invalid %s header %q", CoordEpochHeader, h)
		return true
	}
	for {
		seen := s.coordEpochSeen.Load()
		if epoch < seen {
			s.metrics.staleEpoch.Add(1)
			log.Printf("crophe-serve: rejecting %s %s from stale coordinator epoch %d (highest seen %d)",
				r.Method, r.URL.Path, epoch, seen)
			writeError(w, http.StatusConflict,
				"coordinator epoch %d is stale (highest seen %d)", epoch, seen)
			return true
		}
		if epoch == seen || s.coordEpochSeen.CompareAndSwap(seen, epoch) {
			return false
		}
	}
}

// handleMemoImport installs a snapshot into this process's warm memo
// tier (POST /v1/memo/snapshot). Entries never shadow fully evaluated
// schedules; an unknown snapshot version is a 422, not a crash.
func (s *Server) handleMemoImport(w http.ResponseWriter, r *http.Request) {
	if s.fenceCoordinator(w, r) {
		return
	}
	var snap crophe.MemoSnapshot
	if err := decodeJSON(r, &snap); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, err := crophe.ImportScheduleMemo(snap)
	if err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "memo import: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, MemoImportResponse{
		Imported:    n,
		WarmEntries: crophe.ScheduleMemoStats().WarmEntries,
	})
}

// Kill terminates the server abruptly — no drain, no readiness flip
// grace, in-flight requests cut mid-connection and sweep rungs abandoned
// wherever they are (their journals hold every completed rung, so a
// restarted process resumes exactly). This is the chaos-testing crash
// primitive; production shutdown is Shutdown.
func (s *Server) Kill() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.coord != nil {
		s.coord.kill()
	}
	s.jobs.cancel()
	if s.listener != nil {
		s.listener.Close()
	}
	s.httpSrv.Close()
}

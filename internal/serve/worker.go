package serve

import (
	"net/http"

	"crophe"
)

// Worker-facing endpoints of the cluster protocol. A worker is an
// ordinary crophe-serve instance — same API, same middleware — plus the
// memo-snapshot pair below, which the coordinator uses to ship schedule
// warm-start state into newly joined (or restarted) workers and to
// harvest what a worker learned when its shard finishes. Both live
// outside the admission pipeline: snapshot traffic is cluster plumbing
// and must work while the instance sheds compute load.

// handleMemoExport serialises this process's schedule memo
// (GET /v1/memo/snapshot): full-tier entries as summaries plus the
// not-yet-promoted warm tier, deterministically ordered.
func (s *Server) handleMemoExport(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, crophe.ExportScheduleMemo())
}

// handleMemoImport installs a snapshot into this process's warm memo
// tier (POST /v1/memo/snapshot). Entries never shadow fully evaluated
// schedules; an unknown snapshot version is a 422, not a crash.
func (s *Server) handleMemoImport(w http.ResponseWriter, r *http.Request) {
	var snap crophe.MemoSnapshot
	if err := decodeJSON(r, &snap); err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, err := crophe.ImportScheduleMemo(snap)
	if err != nil {
		s.metrics.badInput.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "memo import: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, MemoImportResponse{
		Imported:    n,
		WarmEntries: crophe.ScheduleMemoStats().WarmEntries,
	})
}

// Kill terminates the server abruptly — no drain, no readiness flip
// grace, in-flight requests cut mid-connection and sweep rungs abandoned
// wherever they are (their journals hold every completed rung, so a
// restarted process resumes exactly). This is the chaos-testing crash
// primitive; production shutdown is Shutdown.
func (s *Server) Kill() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.coord != nil {
		s.coord.kill()
	}
	s.jobs.cancel()
	if s.listener != nil {
		s.listener.Close()
	}
	s.httpSrv.Close()
}

package serve

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"crophe"
)

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// job is one resilience-sweep job: parameters, journaled progress, and —
// once finished — the assembled result.
type job struct {
	params sweepParams

	mu        sync.Mutex
	state     string
	completed int // rungs finished (journaled when persistence is on)
	errText   string
	result    *crophe.ResilienceSweep
	// points accumulates journaled rungs while the job runs, so status
	// polls (the coordinator's merge feed) see progress before the job
	// finishes. Spliced-in resumed rungs are seeded at launch; fresh
	// rungs append from the observe hook.
	points []crophe.ResiliencePoint
}

func (j *job) snapshot() (state string, completed int, errText string, result *crophe.ResilienceSweep) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.completed, j.errText, j.result
}

// rawPoints returns a copy of every rung journaled so far, sorted by
// step. For a finished job this is exactly the result's point set; while
// running it is the live progress feed the coordinator merges from.
func (j *job) rawPoints() []crophe.ResiliencePoint {
	j.mu.Lock()
	out := append([]crophe.ResiliencePoint(nil), j.points...)
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Step < out[b].Step })
	return out
}

// seedPoints installs already-journaled rungs (recovery) into the live
// point feed.
func (j *job) seedPoints(points map[int]crophe.ResiliencePoint) {
	steps := make([]int, 0, len(points))
	for s := range points {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	j.mu.Lock()
	for _, s := range steps {
		j.points = append(j.points, points[s])
	}
	j.mu.Unlock()
}

// jobManager owns the sweep jobs: dedup by deterministic ID, crash
// recovery from the checkpoint directory, and coordinated drain.
type jobManager struct {
	dir    string
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job
}

func newJobManager(dir string) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{dir: dir, ctx: ctx, cancel: cancel, jobs: make(map[string]*job)}
}

// recover scans the checkpoint directory: finished journals become done
// jobs (their results reassembled from the journaled rungs, so
// GET /v1/sweeps/{id} keeps answering across restarts), unfinished ones
// resume from the last completed rung. Unreadable journals become failed
// jobs rather than aborting startup — one corrupt file must not take the
// serving layer down with it.
func (m *jobManager) recover() error {
	if m.dir == "" {
		return nil
	}
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return err
	}
	paths, err := listJournals(m.dir)
	if err != nil {
		return err
	}
	for _, path := range paths {
		d, err := recoverJournal(path)
		if err != nil {
			m.mu.Lock()
			// The path's base name is "<id>.sweep.jsonl"; fall back on it
			// when even the header is gone.
			id := d.params.ID
			if id == "" {
				id = "corrupt:" + path
			}
			m.jobs[id] = &job{params: d.params, state: jobFailed, errText: err.Error()}
			m.mu.Unlock()
			continue
		}
		j := &job{params: d.params, completed: len(d.points)}
		j.seedPoints(d.points)
		if d.done {
			j.state = jobDone
			j.result = assembleSweep(d.params, d.points)
			m.mu.Lock()
			m.jobs[d.params.ID] = j
			m.mu.Unlock()
			continue
		}
		j.state = jobRunning
		m.mu.Lock()
		m.jobs[d.params.ID] = j
		m.mu.Unlock()
		m.launch(j, d.points, d.keep, false)
	}
	return nil
}

// start returns the job for params, creating and launching it if it does
// not exist yet. The boolean reports whether this call created it.
func (m *jobManager) start(params sweepParams) (*job, bool, error) {
	m.mu.Lock()
	if existing, ok := m.jobs[params.ID]; ok {
		m.mu.Unlock()
		return existing, false, nil
	}
	if m.ctx.Err() != nil {
		m.mu.Unlock()
		return nil, false, fmt.Errorf("manager is draining")
	}
	j := &job{params: params, state: jobRunning}
	m.jobs[params.ID] = j
	m.mu.Unlock()
	m.launch(j, nil, 0, true)
	return j, true, nil
}

// launch runs the sweep in a goroutine: resolve the design inputs, open
// the journal, and hand the rungs to ResumeResilienceSweep with an
// observe hook that checkpoints each one before the next begins.
func (m *jobManager) launch(j *job, doneRungs map[int]crophe.ResiliencePoint, keep int64, isNew bool) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer func() {
			// A panic outside the façade's own recovery (it already turns
			// degraded-stack panics into seed-tagged errors) must not kill
			// the process: fail the job and keep serving.
			if rec := recover(); rec != nil {
				j.fail(fmtInvariant(j.params.Seed, rec))
			}
		}()
		m.run(j, doneRungs, keep, isNew)
	}()
}

func (j *job) fail(msg string) {
	j.mu.Lock()
	j.state = jobFailed
	j.errText = msg
	j.mu.Unlock()
}

func (m *jobManager) run(j *job, doneRungs map[int]crophe.ResiliencePoint, keep int64, isNew bool) {
	hw, ok := crophe.LookupHW(j.params.HW)
	if !ok {
		j.fail(fmt.Sprintf("unknown hw %q", j.params.HW))
		return
	}
	p := crophe.DefaultParamsFor(hw)
	wl, ok := crophe.LookupWorkload(j.params.Workload, p, crophe.RotHoisted)
	if !ok {
		j.fail(fmt.Sprintf("unknown workload %q", j.params.Workload))
		return
	}
	f, err := openJournal(m.dir, j.params, keep, isNew)
	if err != nil {
		j.fail(fmt.Sprintf("opening checkpoint journal: %v", err))
		return
	}
	if f != nil {
		defer f.Close()
	}

	var journalErr error
	observe := func(pt crophe.ResiliencePoint) {
		step := pt.Step
		if journalErr == nil {
			journalErr = appendLine(f, journalEntry{Step: &step, Point: &pt})
		}
		j.mu.Lock()
		j.completed++
		j.points = append(j.points, pt)
		j.mu.Unlock()
	}

	deadline := time.Duration(j.params.DeadlineMS) * time.Millisecond
	opts := []crophe.SweepOption{crophe.SweepWithResume(doneRungs), crophe.SweepWithJournal(observe)}
	if j.params.ShardCount > 0 {
		opts = append(opts, crophe.SweepWithShard(j.params.ShardIndex, j.params.ShardCount))
	}
	sw, err := crophe.RunResilienceSweepWith(m.ctx, hw, wl, j.params.Seed,
		j.params.Steps, deadline, opts...)
	switch {
	case err != nil && m.ctx.Err() != nil:
		// Drain interrupted the sweep between rungs. The journal holds
		// every completed rung; leave the job "running" so a restarted
		// server resumes it. (This process is exiting — the state only
		// matters if something reads it during the drain window.)
	case err != nil:
		j.fail(err.Error())
	case journalErr != nil:
		j.fail(fmt.Sprintf("checkpointing sweep: %v", journalErr))
	default:
		if err := appendLine(f, journalEntry{Done: true}); err != nil {
			j.fail(fmt.Sprintf("finalising checkpoint journal: %v", err))
			return
		}
		j.mu.Lock()
		j.state = jobDone
		j.result = sw
		j.mu.Unlock()
	}
}

// get looks a job up by ID.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// counts reports running and finished (done or failed) jobs.
func (m *jobManager) counts() (running, finished int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		if st, _, _, _ := j.snapshot(); st == jobRunning {
			running++
		} else {
			finished++
		}
	}
	return running, finished
}

// stop cancels all running jobs (they stop at the next rung boundary,
// journals intact) and returns a channel closed once every job goroutine
// has exited.
func (m *jobManager) stop() <-chan struct{} {
	m.cancel()
	ch := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(ch)
	}()
	return ch
}

// assembleSweep rebuilds a finished sweep result from its journaled
// rungs, for jobs recovered as already done — matching the fault
// package's conventions exactly (canonical hardware name, baseline only
// from a healthy rung 0), so an assembled result renders byte-identical
// to a freshly run one.
func assembleSweep(params sweepParams, points map[int]crophe.ResiliencePoint) *crophe.ResilienceSweep {
	name := params.HW
	if hw, ok := crophe.LookupHW(params.HW); ok {
		name = hw.Name
	}
	sw := &crophe.ResilienceSweep{HW: name, Seed: params.Seed}
	steps := make([]int, 0, len(points))
	for s := range points {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	for _, s := range steps {
		sw.Points = append(sw.Points, points[s])
	}
	if len(sw.Points) > 0 && sw.Points[0].Step == 0 && sw.Points[0].Err == "" {
		sw.Baseline = sw.Points[0].Outcome.TimeSec
	}
	return sw
}

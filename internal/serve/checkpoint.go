package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"crophe"
)

// Sweep checkpoint journal: one append-only JSONL file per sweep job,
// <dir>/<id>.sweep.jsonl. The first line is the header (the job's full
// parameter set, so a journal is self-describing); each subsequent line
// records one completed rung; a {"done":true} terminator marks a
// finished sweep. Every line is written in a single write and fsynced
// before the next rung starts, so after a crash the journal holds
// exactly the completed rungs — at worst plus one torn trailing line,
// which recovery truncates away. Because rung outcomes are deterministic
// per (hw, seed, step, deadline bucket) — see ResumeResilienceSweep — a
// resumed journal's remaining lines are byte-identical to the ones an
// uninterrupted run would have written.

const journalSuffix = ".sweep.jsonl"

// sweepParams is a sweep job's identity — the journal header and the
// input to the deterministic job ID. ShardIndex/ShardCount (0/0 for a
// full sweep; the omitempty keeps unsharded headers byte-identical to
// the pre-shard format) restrict the job to the rungs with
// step % count == index. The struct must stay comparable — recovery and
// the checkpoint tests compare headers with ==.
type sweepParams struct {
	V          int    `json:"v"`
	ID         string `json:"id"`
	HW         string `json:"hw"`
	Workload   string `json:"workload"`
	Seed       int64  `json:"seed"`
	Steps      int    `json:"steps"`
	DeadlineMS int    `json:"deadline_ms"`
	ShardIndex int    `json:"shard_index,omitempty"`
	ShardCount int    `json:"shard_count,omitempty"`
}

// sweepID derives the job ID from the parameters (FNV-1a over a
// canonical encoding), so POSTing the same sweep twice addresses the
// same job instead of running it twice. Shard identity folds in only
// when the job is sharded, so full-sweep IDs are unchanged from the
// pre-shard format — a coordinator's merged job and the equivalent
// single-process job share an ID by construction.
func sweepID(p sweepParams) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d", p.HW, p.Workload, p.Seed, p.Steps, p.DeadlineMS)
	if p.ShardCount > 0 {
		fmt.Fprintf(h, "|shard %d/%d", p.ShardIndex, p.ShardCount)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func journalPath(dir, id string) string {
	return filepath.Join(dir, id+journalSuffix)
}

// leaseRecord is a coordinator journal line: shard index-of-count leased
// to worker at epoch (epoch increments each time the shard is
// reassigned after a worker death). Leases are bookkeeping, not rung
// state — recovery re-leases from scratch and relies on the journaled
// rungs alone for exactly-once accounting.
type leaseRecord struct {
	Shard  int    `json:"shard"`
	Count  int    `json:"count"`
	Worker string `json:"worker"`
	Epoch  int    `json:"epoch"`
}

// journalEntry is one post-header line: a completed rung, a shard lease
// (coordinator journals only), or the terminator.
type journalEntry struct {
	Step  *int                    `json:"step,omitempty"`
	Point *crophe.ResiliencePoint `json:"point,omitempty"`
	Lease *leaseRecord            `json:"lease,omitempty"`
	Done  bool                    `json:"done,omitempty"`
}

// appendLine writes one journal line and forces it to stable storage;
// the rung is not considered checkpointed until the Sync returns.
func appendLine(f *os.File, v any) error {
	if f == nil {
		return nil
	}
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encoding journal line: %w", err)
	}
	if _, err := f.Write(append(body, '\n')); err != nil {
		return fmt.Errorf("appending journal line: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("syncing journal: %w", err)
	}
	return nil
}

// readJournal parses a checkpoint file: the header, every fully written
// rung, and whether the terminator is present. keep is the byte offset
// past the last intact line — a crash can tear at most the final line,
// and recovery truncates the file to keep before appending resumes.
func readJournal(path string) (params sweepParams, points map[int]crophe.ResiliencePoint, done bool, keep int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return params, nil, false, 0, err
	}
	defer f.Close()

	points = make(map[int]crophe.ResiliencePoint)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			if err := json.Unmarshal(line, &params); err != nil || params.V != 1 {
				return params, nil, false, 0, fmt.Errorf("bad journal header in %s: %v", path, err)
			}
			first = false
			keep += int64(len(line)) + 1
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn tail from a crash mid-write; everything before it is
			// intact. Stop here and let the caller truncate.
			break
		}
		switch {
		case e.Done:
			done = true
		case e.Step != nil && e.Point != nil:
			points[*e.Step] = *e.Point
		}
		keep += int64(len(line)) + 1
	}
	if first {
		return params, nil, false, 0, fmt.Errorf("empty journal %s", path)
	}
	return params, points, done, keep, nil
}

// openJournal opens (creating if needed) a job's journal for appending,
// truncating any torn tail first and writing the header when the file is
// new. A "" dir disables journaling: the returned file is nil and
// appendLine ignores it.
func openJournal(dir string, params sweepParams, keep int64, isNew bool) (*os.File, error) {
	if dir == "" {
		return nil, nil
	}
	path := journalPath(dir, params.ID)
	if !isNew {
		if err := os.Truncate(path, keep); err != nil {
			return nil, fmt.Errorf("truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if isNew {
		if err := appendLine(f, params); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// listJournals returns the checkpoint files in dir (no recursion; the
// directory belongs to crophe-serve).
func listJournals(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), journalSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"strings"

	"crophe"
)

// Sweep checkpoint journal: one append-only JSONL file per sweep job,
// <dir>/<id>.sweep.jsonl. The first line is the header (the job's full
// parameter set, so a journal is self-describing); each subsequent line
// records one completed rung or a shard lease; a {"done":true}
// terminator marks a finished sweep. Every line is written in a single
// write and fsynced before the next rung starts, so after a crash the
// journal holds exactly the completed rungs — at worst plus one torn
// trailing line, which recovery truncates away. Because rung outcomes
// are deterministic per (hw, seed, step, deadline bucket) — see
// ResumeResilienceSweep — a resumed journal's remaining lines are
// byte-identical to the ones an uninterrupted run would have written.
//
// Each line is framed "CCCCCCCC <json>\n" — eight lowercase hex digits
// of the IEEE CRC32 of the JSON payload, one space, the payload. The
// CRC turns silent mid-file corruption (a flipped bit, a hole from a
// bad sector) into a typed JournalCorruptionError instead of a quietly
// wrong resume. Legacy lines that start directly with '{' are accepted
// unverified so pre-CRC journals still recover; the framing is
// unambiguous because JSON objects never start with a hex digit.

const journalSuffix = ".sweep.jsonl"

// quarantineSuffix is appended to a journal's path when corruption is
// cut out of it: the bad suffix is preserved there for postmortem while
// the journal itself is truncated to the last good prefix.
const quarantineSuffix = ".quarantine"

// sweepParams is a sweep job's identity — the journal header and the
// input to the deterministic job ID. ShardIndex/ShardCount (0/0 for a
// full sweep; the omitempty keeps unsharded headers byte-identical to
// the pre-shard format) restrict the job to the rungs with
// step % count == index. The struct must stay comparable — recovery and
// the checkpoint tests compare headers with ==.
type sweepParams struct {
	V          int    `json:"v"`
	ID         string `json:"id"`
	HW         string `json:"hw"`
	Workload   string `json:"workload"`
	Seed       int64  `json:"seed"`
	Steps      int    `json:"steps"`
	DeadlineMS int    `json:"deadline_ms"`
	ShardIndex int    `json:"shard_index,omitempty"`
	ShardCount int    `json:"shard_count,omitempty"`
}

// sweepID derives the job ID from the parameters (FNV-1a over a
// canonical encoding), so POSTing the same sweep twice addresses the
// same job instead of running it twice. Shard identity folds in only
// when the job is sharded, so full-sweep IDs are unchanged from the
// pre-shard format — a coordinator's merged job and the equivalent
// single-process job share an ID by construction.
func sweepID(p sweepParams) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d", p.HW, p.Workload, p.Seed, p.Steps, p.DeadlineMS)
	if p.ShardCount > 0 {
		fmt.Fprintf(h, "|shard %d/%d", p.ShardIndex, p.ShardCount)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func journalPath(dir, id string) string {
	return filepath.Join(dir, id+journalSuffix)
}

// leaseRecord is a coordinator journal line: shard index-of-count leased
// to worker at epoch (epoch increments each time the shard is
// reassigned after a worker death or coordinator takeover). Leases are
// bookkeeping for fencing and postmortem, not rung state — recovery
// re-leases from scratch and relies on the journaled rungs alone for
// exactly-once accounting, but a standby replays the lease lines to
// start its own leases at an epoch every journaled one precedes.
type leaseRecord struct {
	Shard  int    `json:"shard"`
	Count  int    `json:"count"`
	Worker string `json:"worker"`
	Epoch  int    `json:"epoch"`
}

// journalEntry is one post-header line: a completed rung, a shard lease
// (coordinator journals only), or the terminator.
type journalEntry struct {
	Step  *int                    `json:"step,omitempty"`
	Point *crophe.ResiliencePoint `json:"point,omitempty"`
	Lease *leaseRecord            `json:"lease,omitempty"`
	Done  bool                    `json:"done,omitempty"`
}

// encodeJournalLine frames one JSON payload with its CRC32:
// "CCCCCCCC <json>\n".
func encodeJournalLine(body []byte) []byte {
	out := make([]byte, 0, len(body)+10)
	out = fmt.Appendf(out, "%08x ", crc32.ChecksumIEEE(body))
	out = append(out, body...)
	return append(out, '\n')
}

// decodeJournalLine strips and verifies a line's CRC frame, returning
// the JSON payload. Lines that start with '{' are the legacy unframed
// format and pass through unverified.
func decodeJournalLine(line []byte) ([]byte, error) {
	if len(line) > 0 && line[0] == '{' {
		return line, nil
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed frame (want 8-hex-digit CRC prefix)")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("malformed CRC prefix %q", line[:8])
	}
	body := line[9:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	return body, nil
}

// appendLine writes one journal line (CRC-framed) and forces it to
// stable storage; the rung is not considered checkpointed until the
// Sync returns.
func appendLine(f *os.File, v any) error {
	if f == nil {
		return nil
	}
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encoding journal line: %w", err)
	}
	if _, err := f.Write(encodeJournalLine(body)); err != nil {
		return fmt.Errorf("appending journal line: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("syncing journal: %w", err)
	}
	return nil
}

// JournalCorruptionError reports a journal line that is present and
// newline-terminated — so not a torn tail — but fails its CRC or does
// not decode. Everything before Offset is intact and trustworthy;
// recovery quarantines the suffix and resumes from the good prefix.
type JournalCorruptionError struct {
	Path   string // journal file
	Line   int    // 1-based line number of the bad line
	Offset int64  // byte offset where the bad line starts (= good-prefix length)
	Reason string // what failed: CRC mismatch, malformed frame, undecodable JSON
}

func (e *JournalCorruptionError) Error() string {
	return fmt.Sprintf("journal %s corrupt at line %d (offset %d): %s", e.Path, e.Line, e.Offset, e.Reason)
}

// journalData is everything readJournal recovers from a checkpoint
// file: the header, every intact rung, the journaled shard leases (for
// coordinator-epoch replay on takeover), whether the terminator is
// present, and keep — the byte offset past the last intact line, which
// recovery truncates the file to before appending resumes.
type journalData struct {
	params sweepParams
	points map[int]crophe.ResiliencePoint
	leases []leaseRecord
	done   bool
	keep   int64
}

// readJournal parses a checkpoint file, distinguishing two failure
// shapes. A torn tail — the final line missing its newline, whatever
// its content — is the expected crash-mid-write artifact: it is
// silently excluded from keep and no error is returned. A
// newline-terminated line that fails its CRC, has a malformed frame, or
// does not decode is corruption: readJournal still returns the good
// prefix (so the caller can resume) alongside a *JournalCorruptionError
// describing the first bad line. A bad header is unrecoverable and
// returns only an error.
func readJournal(path string) (journalData, error) {
	d := journalData{points: make(map[int]crophe.ResiliencePoint)}
	raw, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}

	lineNo := 0
	for off := int64(0); off < int64(len(raw)); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			// Unterminated final line: a torn tail from a crash mid-write
			// (even if its content happens to parse — a write that never
			// completed is not checkpointed). Exclude it from keep.
			break
		}
		line := raw[off : off+int64(nl)]
		lineNo++
		body, derr := decodeJournalLine(line)
		if derr == nil && lineNo == 1 {
			if err := json.Unmarshal(body, &d.params); err != nil || d.params.V != 1 {
				return journalData{}, fmt.Errorf("bad journal header in %s: %v", path, err)
			}
			off += int64(nl) + 1
			d.keep = off
			continue
		}
		var e journalEntry
		if derr == nil {
			if uerr := json.Unmarshal(body, &e); uerr != nil {
				derr = fmt.Errorf("undecodable entry: %v", uerr)
			}
		}
		if derr != nil {
			if lineNo == 1 {
				return journalData{}, fmt.Errorf("bad journal header in %s: %v", path, derr)
			}
			return d, &JournalCorruptionError{Path: path, Line: lineNo, Offset: d.keep, Reason: derr.Error()}
		}
		switch {
		case e.Done:
			d.done = true
		case e.Step != nil && e.Point != nil:
			d.points[*e.Step] = *e.Point
		case e.Lease != nil:
			d.leases = append(d.leases, *e.Lease)
		}
		off += int64(nl) + 1
		d.keep = off
	}
	if lineNo == 0 {
		return journalData{}, fmt.Errorf("empty journal %s", path)
	}
	return d, nil
}

// quarantineJournal preserves a journal's corrupt suffix (everything
// from keep on) beside the file as <path>.quarantine, then truncates
// the journal to the good prefix so appends can resume.
func quarantineJournal(path string, keep int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(keep, 0); err != nil {
		return err
	}
	q, err := os.OpenFile(path+quarantineSuffix, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := q.ReadFrom(f); err != nil {
		q.Close()
		return err
	}
	if err := q.Close(); err != nil {
		return err
	}
	return os.Truncate(path, keep)
}

// recoverJournal reads a journal and, when it finds mid-file
// corruption, quarantines the bad suffix and resumes from the good
// prefix — logging loudly, because a CRC mismatch means the storage
// layer lied. Torn tails recover silently as before. Unrecoverable
// errors (bad header, unreadable file) pass through to the caller.
func recoverJournal(path string) (journalData, error) {
	d, err := readJournal(path)
	var corrupt *JournalCorruptionError
	if errors.As(err, &corrupt) {
		log.Printf("crophe-serve: %v; quarantining suffix to %s%s and resuming from last good prefix",
			corrupt, path, quarantineSuffix)
		if qerr := quarantineJournal(path, corrupt.Offset); qerr != nil {
			return journalData{}, fmt.Errorf("quarantining corrupt journal %s: %w", path, qerr)
		}
		return d, nil
	}
	return d, err
}

// openJournal opens (creating if needed) a job's journal for appending,
// truncating any torn tail first and writing the header when the file is
// new. A "" dir disables journaling: the returned file is nil and
// appendLine ignores it.
func openJournal(dir string, params sweepParams, keep int64, isNew bool) (*os.File, error) {
	if dir == "" {
		return nil, nil
	}
	path := journalPath(dir, params.ID)
	if !isNew {
		if err := os.Truncate(path, keep); err != nil {
			return nil, fmt.Errorf("truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if isNew {
		if err := appendLine(f, params); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// listJournals returns the checkpoint files in dir (no recursion; the
// directory belongs to crophe-serve). Quarantine files don't match the
// suffix and are naturally excluded.
func listJournals(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), journalSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}

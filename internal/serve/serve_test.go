package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// startServer boots a Server on an ephemeral port and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Shutdown() })
	return s
}

// doJSON posts body (nil for GET) and decodes the JSON response.
func doJSON(t *testing.T, client *http.Client, method, url string, body any, headers map[string]string) (int, map[string]any, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out, resp.Header
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus a small slack for runtime helpers), dumping stacks on
// timeout — the leak check behind the drain tests.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after drain: %d goroutines, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthEndpoints(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()

	if code, body, _ := doJSON(t, client, "GET", base+"/healthz", nil, nil); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if code, body, _ := doJSON(t, client, "GET", base+"/readyz", nil, nil); code != 200 || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v", code, body)
	}
}

func TestScheduleEndpointAndMemo(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	url := "http://" + s.Addr() + "/v1/schedule"
	req := map[string]any{"hw": "crophe64", "workload": "helr"}

	code, body, _ := doJSON(t, client, "POST", url, req, nil)
	if code != 200 {
		t.Fatalf("schedule = %d %v", code, body)
	}
	if ms, _ := body["time_ms"].(float64); ms <= 0 {
		t.Fatalf("non-positive time_ms in %v", body)
	}
	if body["partial"] != false {
		t.Fatalf("unbounded schedule marked partial: %v", body)
	}

	// The identical request coalesces on the schedule memo.
	code, body, _ = doJSON(t, client, "POST", url, req, nil)
	if code != 200 || body["cached"] != true {
		t.Fatalf("repeat schedule = %d %v; want cached=true", code, body)
	}
}

func TestScheduleBadInput(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()

	cases := []struct {
		name    string
		body    any
		headers map[string]string
	}{
		{"unknown hw", map[string]any{"hw": "tpu", "workload": "helr"}, nil},
		{"unknown workload", map[string]any{"hw": "crophe64", "workload": "doom"}, nil},
		{"unknown dataflow", map[string]any{"hw": "crophe64", "workload": "helr", "dataflow": "magic"}, nil},
		{"unknown field", map[string]any{"hw": "crophe64", "workload": "helr", "dead_line_ms": 5}, nil},
		{"malformed deadline header", map[string]any{"hw": "crophe64", "workload": "helr"},
			map[string]string{DeadlineHeader: "fast"}},
	}
	for _, c := range cases {
		code, body, _ := doJSON(t, client, "POST", base+"/v1/schedule", c.body, c.headers)
		if code != 400 {
			t.Errorf("%s: code %d body %v; want 400", c.name, code, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("%s: missing error message", c.name)
		}
	}
}

func TestDeadlineExpiryReturnsPartial(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()

	// Body deadline: a 1 ms budget cuts the helr search well before it
	// finishes, and the contract is a best-so-far schedule, not an error.
	code, body, _ := doJSON(t, client, "POST", base+"/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr", "deadline_ms": 1}, nil)
	if code != 200 {
		t.Fatalf("deadline schedule = %d %v", code, body)
	}
	if body["partial"] != true {
		t.Fatalf("1ms-deadline schedule not partial: %v", body)
	}
	if ms, _ := body["time_ms"].(float64); ms <= 0 {
		t.Fatalf("partial schedule has non-positive time_ms: %v", body)
	}

	// Header deadline: same contract through X-Crophe-Deadline.
	code, body, _ = doJSON(t, client, "POST", base+"/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr"},
		map[string]string{DeadlineHeader: "1ms"})
	if code != 200 || body["partial"] != true {
		t.Fatalf("header-deadline schedule = %d %v; want 200 partial", code, body)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()

	code, body, _ := doJSON(t, client, "POST", "http://"+s.Addr()+"/v1/simulate",
		map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
	if code != 200 {
		t.Fatalf("simulate = %d %v", code, body)
	}
	if ms, _ := body["sim_time_ms"].(float64); ms <= 0 {
		t.Fatalf("non-positive sim_time_ms: %v", body)
	}
	if cyc, _ := body["sim_cycles"].(float64); cyc <= 0 {
		t.Fatalf("non-positive sim_cycles: %v", body)
	}
}

func TestSimulateDegradedEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	url := "http://" + s.Addr() + "/v1/simulate-degraded"

	code, body, _ := doJSON(t, client, "POST", url,
		map[string]any{"hw": "crophe64", "workload": "helr", "faults": "rows:1,hbm:0.8", "seed": 21}, nil)
	if code != 200 {
		t.Fatalf("simulate-degraded = %d %v", code, body)
	}
	if n, _ := body["fault_count"].(float64); n < 1 {
		t.Fatalf("degraded run reports no faults: %v", body)
	}
	if ms, _ := body["time_ms"].(float64); ms <= 0 {
		t.Fatalf("non-positive degraded time_ms: %v", body)
	}

	code, body, _ = doJSON(t, client, "POST", url,
		map[string]any{"hw": "crophe64", "workload": "helr", "faults": "rows:banana", "seed": 1}, nil)
	if code != 400 {
		t.Fatalf("bad fault spec = %d %v; want 400", code, body)
	}

	// A malformed SDC term is rejected the same way.
	code, body, _ = doJSON(t, client, "POST", url,
		map[string]any{"hw": "crophe64", "workload": "helr", "faults": "flip:2", "seed": 1}, nil)
	if code != 400 {
		t.Fatalf("bad flip rate = %d %v; want 400", code, body)
	}
}

func TestSimulateDegradedReportsIntegrity(t *testing.T) {
	// A fault spec with silent data corruption surfaces the priced
	// detect → recompute → escalate outcome on the wire; one without
	// omits the section entirely.
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	url := "http://" + s.Addr() + "/v1/simulate-degraded"

	code, body, _ := doJSON(t, client, "POST", url,
		map[string]any{"hw": "crophe64", "workload": "helr", "faults": "flip:0.0001,scrub:100000", "seed": 42}, nil)
	if code != 200 {
		t.Fatalf("simulate-degraded with flips = %d %v", code, body)
	}
	integ, ok := body["integrity"].(map[string]any)
	if !ok {
		t.Fatalf("flip run carries no integrity section: %v", body)
	}
	if n, _ := integ["checks"].(float64); n <= 0 {
		t.Fatalf("integrity.checks = %v; want > 0", integ["checks"])
	}
	if det, _ := integ["detected"].(float64); det != integ["recomputed"].(float64) {
		t.Fatalf("every detection must be recomputed: %v", integ)
	}
	if p, _ := integ["penalty_cycles"].(float64); p <= 0 {
		t.Fatalf("scrubbing run priced no penalty cycles: %v", integ)
	}

	code, body, _ = doJSON(t, client, "POST", url,
		map[string]any{"hw": "crophe64", "workload": "helr", "faults": "rows:1", "seed": 42}, nil)
	if code != 200 {
		t.Fatalf("simulate-degraded without flips = %d %v", code, body)
	}
	if _, ok := body["integrity"]; ok {
		t.Fatalf("flip-free run leaked an integrity section: %v", body)
	}
}

func TestVarsEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()

	// Serve one request so the counters are non-trivial.
	doJSON(t, client, "POST", base+"/v1/schedule", map[string]any{"hw": "crophe64", "workload": "helr"}, nil)

	code, body, _ := doJSON(t, client, "GET", base+"/debug/vars", nil, nil)
	if code != 200 {
		t.Fatalf("vars = %d %v", code, body)
	}
	for _, key := range []string{"admission", "requests", "schedule_memo", "sweeps"} {
		if _, ok := body[key]; !ok {
			t.Errorf("vars missing %q section: %v", key, body)
		}
	}
	reqs := body["requests"].(map[string]any)
	if served, _ := reqs["served"].(float64); served < 1 {
		t.Errorf("vars report zero served requests after a request: %v", reqs)
	}
	memo := body["schedule_memo"].(map[string]any)
	if _, ok := memo["hit_rate"]; !ok {
		t.Errorf("schedule_memo missing hit_rate: %v", memo)
	}
}

func TestChaosFieldRejectedWhenDisabled(t *testing.T) {
	// Without AllowChaos the field decodes but is ignored — a production
	// server must not be panickable by request content.
	s := startServer(t, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()

	code, body, _ := doJSON(t, client, "POST", "http://"+s.Addr()+"/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr", "chaos_panic": true, "seed": 99}, nil)
	if code != 200 {
		t.Fatalf("chaos_panic with AllowChaos off = %d %v; want it ignored (200)", code, body)
	}
}

func TestPanicIsolationCarriesSeed(t *testing.T) {
	s := startServer(t, Config{AllowChaos: true})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()

	code, body, _ := doJSON(t, client, "POST", base+"/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr", "chaos_panic": true, "seed": 4242}, nil)
	if code != 500 {
		t.Fatalf("chaos panic = %d %v; want 500", code, body)
	}
	if body["panic"] != true {
		t.Fatalf("500 body missing panic marker: %v", body)
	}
	if seed, _ := body["fault_seed"].(float64); seed != 4242 {
		t.Fatalf("500 body fault_seed = %v; want 4242", body["fault_seed"])
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "invariant violation under fault seed 4242") {
		t.Fatalf("500 error %q does not follow the recoverFaultPanic convention", msg)
	}

	// The process keeps serving after the panic.
	if code, _, _ := doJSON(t, client, "GET", base+"/healthz", nil, nil); code != 200 {
		t.Fatalf("server unhealthy after recovered panic: %d", code)
	}
	code, body, _ = doJSON(t, client, "POST", base+"/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
	if code != 200 {
		t.Fatalf("schedule after recovered panic = %d %v", code, body)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := startServer(t, Config{})
	// Flip the drain latch directly (Shutdown would close the listener
	// before we could observe the 503s).
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()

	if code, body, _ := doJSON(t, client, "GET", base+"/readyz", nil, nil); code != 503 || body["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v; want 503 draining", code, body)
	}
	code, body, _ := doJSON(t, client, "POST", base+"/v1/schedule",
		map[string]any{"hw": "crophe64", "workload": "helr"}, nil)
	if code != 503 {
		t.Fatalf("draining schedule = %d %v; want 503", code, body)
	}
	// Liveness stays green: the process is healthy, just not accepting.
	if code, _, _ := doJSON(t, client, "GET", base+"/healthz", nil, nil); code != 200 {
		t.Fatalf("draining healthz = %d; want 200", code)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s := startServer(t, Config{})
	if err := s.Shutdown(); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func fmtURL(s *Server, path string) string {
	return fmt.Sprintf("http://%s%s", s.Addr(), path)
}

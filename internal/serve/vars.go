package serve

import (
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"crophe"
)

// metrics is the serving layer's own counter set — plain atomics on the
// request path (the telemetry collector is reserved for model-level
// counters accumulated by simulations the server runs).
type metrics struct {
	requests   atomic.Uint64 // admitted and executed
	shed       atomic.Uint64 // rejected with 429
	rejected   atomic.Uint64 // rejected with 503 during drain
	panics     atomic.Uint64 // recovered handler panics
	partials   atomic.Uint64 // responses carrying partial: true
	badInput   atomic.Uint64 // 4xx other than shedding
	queueWait  atomic.Uint64 // requests that waited for a slot (vs fast-path)
	staleEpoch atomic.Uint64 // mutating RPCs 409'd for a stale coordinator epoch
}

// handleVars is the /debug/vars-style observability endpoint: admission
// state, request counters, schedule-memo hit rates and the accumulated
// model-level telemetry counters of every simulation this process ran.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	memo := crophe.ScheduleMemoStats()
	running, done := s.jobs.counts()
	if s.coord != nil {
		cr, cd := s.coord.counts()
		running += cr
		done += cd
	}
	out := map[string]any{
		"role": s.cfg.Role,
		"admission": map[string]any{
			"workers":     s.queue.Cap(),
			"in_use":      s.queue.InUse(),
			"queue_depth": s.cfg.QueueDepth,
			"queue_len":   s.waiting.Load(),
			"waiting":     s.waiting.Load(),
			"shedding":    s.shedding.Load(),
		},
		"requests": map[string]any{
			"served":              s.metrics.requests.Load(),
			"shed":                s.metrics.shed.Load(),
			"rejected":            s.metrics.rejected.Load(),
			"panics":              s.metrics.panics.Load(),
			"partial":             s.metrics.partials.Load(),
			"bad_input":           s.metrics.badInput.Load(),
			"queue_waits":         s.metrics.queueWait.Load(),
			"stale_epoch_rejects": s.metrics.staleEpoch.Load(),
		},
		"schedule_memo": map[string]any{
			"hits":         memo.Hits,
			"misses":       memo.Misses,
			"evictions":    memo.Evictions,
			"size":         memo.Size,
			"capacity":     memo.Capacity,
			"hit_rate":     memo.HitRate(),
			"warm_hits":    memo.WarmHits,
			"warm_entries": memo.WarmEntries,
		},
		"sweeps": map[string]any{
			"running": running,
			"done":    done,
		},
		"telemetry": s.tel.CounterMap(),
	}
	if s.coord != nil {
		out["coordinator"] = s.coordVars()
	}
	writeJSON(w, http.StatusOK, out)
}

// coordVars renders the coordinator's fail-over and chaos state.
func (s *Server) coordVars() map[string]any {
	healthy, total := s.coord.workerHealth()
	cv := map[string]any{
		"epoch":           s.coord.epoch.Load(),
		"active":          s.coord.active.Load(),
		"fenced":          s.coord.fenced.Load(),
		"standby":         s.cfg.Standby,
		"fenced_writes":   s.coord.fencedWrites.Load(),
		"workers_healthy": healthy,
		"workers_total":   total,

		"shard_checksum_rejects": s.coord.checksumRejects.Load(),
	}
	if cc := s.coord.chaosCounts(); cc != nil {
		cv["net_chaos"] = map[string]any{
			"spec":        s.cfg.NetChaos.String(),
			"requests":    cc.Requests,
			"drops":       cc.Drops,
			"resets":      cc.Resets,
			"truncations": cc.Truncations,
			"err500s":     cc.Err500s,
			"flips":       cc.Flips,
			"latencies":   cc.Latencies,
		}
	}
	return cv
}

// handleCluster reports the cluster topology: the instance's role, and —
// on a coordinator — per-worker liveness and per-job shard lease state.
// This is the observability window the cluster smoke drill asserts
// against.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"role": s.cfg.Role}
	if s.coord == nil {
		writeJSON(w, http.StatusOK, out)
		return
	}
	out["coordinator"] = s.coordVars()

	var workers []map[string]any
	for _, h := range s.coord.workers {
		lastOK, seen := h.lastOKTime()
		wv := map[string]any{
			"url":     h.url,
			"healthy": h.healthyWithin(s.coord.timeout),
		}
		if seen {
			wv["last_ok_age_ms"] = time.Since(lastOK).Milliseconds()
		}
		workers = append(workers, wv)
	}
	out["workers"] = workers

	s.coord.mu.Lock()
	ids := make([]string, 0, len(s.coord.jobs))
	for id := range s.coord.jobs {
		ids = append(ids, id)
	}
	jobsByID := make(map[string]*coordJob, len(s.coord.jobs))
	for id, j := range s.coord.jobs {
		jobsByID[id] = j
	}
	s.coord.mu.Unlock()
	sort.Strings(ids)

	var jobs []map[string]any
	for _, id := range ids {
		j := jobsByID[id]
		j.mu.Lock()
		jv := map[string]any{
			"id":        j.params.ID,
			"state":     j.state,
			"steps":     j.params.Steps,
			"completed": j.completed,
		}
		var shards []map[string]any
		for _, sh := range j.shards {
			sv := map[string]any{
				"shard": sh.index,
				"steps": len(sh.steps),
				"epoch": sh.epoch,
				"done":  sh.done,
			}
			if sh.worker != nil {
				sv["worker"] = sh.worker.url
			}
			shards = append(shards, sv)
		}
		if shards != nil {
			jv["shards"] = shards
		}
		j.mu.Unlock()
		jobs = append(jobs, jv)
	}
	out["jobs"] = jobs
	writeJSON(w, http.StatusOK, out)
}

package serve

import (
	"net/http"
	"sync/atomic"

	"crophe"
)

// metrics is the serving layer's own counter set — plain atomics on the
// request path (the telemetry collector is reserved for model-level
// counters accumulated by simulations the server runs).
type metrics struct {
	requests  atomic.Uint64 // admitted and executed
	shed      atomic.Uint64 // rejected with 429
	rejected  atomic.Uint64 // rejected with 503 during drain
	panics    atomic.Uint64 // recovered handler panics
	partials  atomic.Uint64 // responses carrying partial: true
	badInput  atomic.Uint64 // 4xx other than shedding
	queueWait atomic.Uint64 // requests that waited for a slot (vs fast-path)
}

// handleVars is the /debug/vars-style observability endpoint: admission
// state, request counters, schedule-memo hit rates and the accumulated
// model-level telemetry counters of every simulation this process ran.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	memo := crophe.ScheduleMemoStats()
	running, done := s.jobs.counts()
	out := map[string]any{
		"admission": map[string]any{
			"workers":     s.queue.Cap(),
			"in_use":      s.queue.InUse(),
			"queue_depth": s.cfg.QueueDepth,
			"waiting":     s.waiting.Load(),
			"shedding":    s.shedding.Load(),
		},
		"requests": map[string]any{
			"served":      s.metrics.requests.Load(),
			"shed":        s.metrics.shed.Load(),
			"rejected":    s.metrics.rejected.Load(),
			"panics":      s.metrics.panics.Load(),
			"partial":     s.metrics.partials.Load(),
			"bad_input":   s.metrics.badInput.Load(),
			"queue_waits": s.metrics.queueWait.Load(),
		},
		"schedule_memo": map[string]any{
			"hits":      memo.Hits,
			"misses":    memo.Misses,
			"evictions": memo.Evictions,
			"size":      memo.Size,
			"capacity":  memo.Capacity,
			"hit_rate":  memo.HitRate(),
		},
		"sweeps": map[string]any{
			"running": running,
			"done":    done,
		},
		"telemetry": s.tel.CounterMap(),
	}
	writeJSON(w, http.StatusOK, out)
}

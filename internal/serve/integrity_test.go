package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"crophe"
	"crophe/internal/leakcheck"
	"crophe/internal/serve/chaos"
)

// fakeWorker speaks just enough of the worker protocol to lease one
// shard and answer polls — with the first raw poll's payload tampered
// after the checksum was stamped, the wire-corruption scenario the
// coordinator's RawSum verification exists to catch.
type fakeWorker struct {
	mu     sync.Mutex
	polls  int
	status SweepStatus // correct terminal status, RawSum already stamped
}

func (fw *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		params := sweepParams{
			V: 1, HW: req.HW, Workload: req.Workload,
			Seed: req.Seed, Steps: req.Steps, DeadlineMS: req.DeadlineMS,
			ShardIndex: req.ShardIndex, ShardCount: req.ShardCount,
		}
		created := true
		writeJSON(w, http.StatusAccepted, SweepStatus{ID: sweepID(params), State: jobRunning, Created: &created})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		fw.polls++
		first := fw.polls == 1
		st := fw.status
		fw.mu.Unlock()
		if first {
			// Corrupt one merged value after the checksum was computed —
			// exactly what a bit flip on the wire does. The stale RawSum
			// travels with it.
			pts := make([]crophe.ResiliencePoint, len(st.RawPoints))
			copy(pts, st.RawPoints)
			pts[0].Outcome.TimeSec *= 2
			st.RawPoints = pts
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}

// TestCoordinatorRejectsCorruptedShardPayload: a shard payload whose
// raw points no longer match the worker's stamped checksum must be
// refused — not merged — and the next (clean) poll must complete the
// job with a result byte-identical to the single-process run. Without
// the rejection, the corrupted rung would be journaled first and the
// clean rerun would trip the bit-exact disagreement check, failing the
// whole sweep.
func TestCoordinatorRejectsCorruptedShardPayload(t *testing.T) {
	leakcheck.Check(t)
	ref := referenceSweep(t, "crophe64", "helr", 11, 4, 3)

	fw := &fakeWorker{}
	fw.status = SweepStatus{
		ID: "ignored", State: jobDone,
		HW: "crophe64", Workload: "helr", Seed: 11, Steps: 4,
		Completed: len(ref.Points),
		RawPoints: ref.Points,
		RawSum:    sumPoints(ref.Points),
	}
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	coordSrv := startServer(t, Config{
		Role:              RoleCoordinator,
		WorkerURLs:        []string{srv.Listener.Addr().String()},
		CheckpointDir:     t.TempDir(),
		HeartbeatInterval: 25 * time.Millisecond,
		WorkerTimeout:     500 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
	})
	c := NewClient(coordSrv.Addr())

	st, err := c.StartSweep(context.Background(),
		SweepRequest{HW: "crophe64", Workload: "helr", Seed: 11, Steps: 4, DeadlineMS: 3})
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	waitSweepDone(t, c, st.ID, 30*time.Second)

	if got := coordSrv.coord.checksumRejects.Load(); got != 1 {
		t.Fatalf("shard_checksum_rejects = %d; want exactly 1 (the tampered first poll)", got)
	}
	// The corrupted value never reached the merge; the result is the
	// single-process one.
	assertByteIdentical(t, coordResult(t, coordSrv, st.ID), ref)

	// The coordinator's own raw status carries a verifiable stamp.
	raw, err := c.SweepStatus(context.Background(), st.ID, true)
	if err != nil {
		t.Fatalf("raw SweepStatus: %v", err)
	}
	if raw.RawSum == "" || raw.RawSum != sumPoints(raw.RawPoints) {
		t.Fatalf("coordinator raw_sum %q does not cover its own payload", raw.RawSum)
	}
}

// TestCoordinatorRejectsCorruptedLeaseResponse: the shard job ID is a
// deterministic parameter hash, so a corrupted StartSweep reply is
// detectable before the coordinator starts polling a job that does not
// exist.
func TestCoordinatorRejectsCorruptedLeaseResponse(t *testing.T) {
	leakcheck.Check(t)
	ref := referenceSweep(t, "crophe64", "helr", 13, 4, 3)

	fw := &fakeWorker{}
	fw.status = SweepStatus{
		ID: "ignored", State: jobDone,
		HW: "crophe64", Workload: "helr", Seed: 13, Steps: 4,
		Completed: len(ref.Points),
		RawPoints: ref.Points,
		RawSum:    sumPoints(ref.Points),
	}
	mux := fw.handler().(*http.ServeMux)
	var leases int
	var mu sync.Mutex
	tampering := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sweeps" {
			mu.Lock()
			leases++
			first := leases == 1
			mu.Unlock()
			if first {
				var req SweepRequest
				if err := decodeJSON(r, &req); err != nil {
					writeError(w, http.StatusBadRequest, "%v", err)
					return
				}
				created := true
				// A flipped bit in the ID field of the 202 body.
				writeJSON(w, http.StatusAccepted, SweepStatus{ID: "0000corrupted000", State: jobRunning, Created: &created})
				return
			}
		}
		mux.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(tampering)
	defer srv.Close()

	coordSrv := startServer(t, Config{
		Role:              RoleCoordinator,
		WorkerURLs:        []string{srv.Listener.Addr().String()},
		CheckpointDir:     t.TempDir(),
		HeartbeatInterval: 25 * time.Millisecond,
		WorkerTimeout:     500 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
	})
	c := NewClient(coordSrv.Addr())

	st, err := c.StartSweep(context.Background(),
		SweepRequest{HW: "crophe64", Workload: "helr", Seed: 13, Steps: 4, DeadlineMS: 3})
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	waitSweepDone(t, c, st.ID, 30*time.Second)

	if got := coordSrv.coord.checksumRejects.Load(); got < 1 {
		t.Fatalf("shard_checksum_rejects = %d; want the corrupted lease counted", got)
	}
	mu.Lock()
	retried := leases >= 2
	mu.Unlock()
	if !retried {
		t.Fatal("coordinator never retried the refused lease")
	}
	assertByteIdentical(t, coordResult(t, coordSrv, st.ID), ref)
}

// TestClusterSweepByteIdenticalUnderFlipChaos: with every
// coordinator→worker link silently flipping one bit of most response
// bodies, the end-to-end payload checksums must keep the merged sweep
// byte-identical to a clean single-process run — silent corruption may
// slow the sweep, never skew it.
func TestClusterSweepByteIdenticalUnderFlipChaos(t *testing.T) {
	leakcheck.Check(t)
	spec, err := chaos.ParseSpec("flip:0.6")
	if err != nil {
		t.Fatal(err)
	}
	coordSrv, _ := startCluster(t, 2, func(cfg *Config) {
		cfg.NetChaos = spec
		cfg.NetChaosSeed = 17
	})
	c := NewClient(coordSrv.Addr())

	req := SweepRequest{HW: "crophe64", Workload: "helr", Seed: 5, Steps: 6, DeadlineMS: 3}
	st, err := c.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	final := waitSweepDone(t, c, st.ID, 120*time.Second)
	if len(final.Points) != 6 {
		t.Fatalf("done sweep has %d points; want 6", len(final.Points))
	}

	ref := referenceSweep(t, "crophe64", "helr", 5, 6, 3)
	assertByteIdentical(t, coordResult(t, coordSrv, st.ID), ref)

	// The injector really flipped bits on the links, and the
	// observability window reports both the flips and the reject counter.
	ct := coordSrv.coord.chaosCounts()
	if ct == nil || ct.Flips == 0 {
		t.Fatalf("chaos counts %+v; want injected flips on the worker links", ct)
	}
	cv := coordSrv.coordVars()
	nc, ok := cv["net_chaos"].(map[string]any)
	if !ok {
		t.Fatalf("coordinator vars missing net_chaos: %v", cv)
	}
	// Heartbeats keep flowing, so compare against a floor, not equality.
	if got := nc["flips"].(uint64); got < 1 {
		t.Fatalf("net_chaos.flips = %v; want >= 1", got)
	}
	if _, ok := cv["shard_checksum_rejects"]; !ok {
		t.Fatalf("coordinator vars missing shard_checksum_rejects: %v", cv)
	}
}

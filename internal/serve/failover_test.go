package serve

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"crophe"
	"crophe/internal/leakcheck"
	"crophe/internal/serve/chaos"
)

// tightFailoverConfig is the coordinator config every failover test runs:
// millisecond-scale heartbeats so a takeover converges in a test-sized
// window instead of the production seconds.
func tightFailoverConfig(dir string, urls []string) Config {
	return Config{
		Role:              RoleCoordinator,
		WorkerURLs:        urls,
		CheckpointDir:     dir,
		HeartbeatInterval: 25 * time.Millisecond,
		WorkerTimeout:     250 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		TakeoverTimeout:   150 * time.Millisecond,
	}
}

// TestStandbyTakesOverAfterPrimaryKill is the fail-over acceptance test:
// SIGKILL-equivalent death of the primary coordinator mid-sweep, the
// standby promotes off the stale lease, replays the shared journal, and
// finishes the sweep byte-identical to a single process — at a bumped,
// persisted epoch.
func TestStandbyTakesOverAfterPrimaryKill(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	workers := make([]*Server, 2)
	urls := make([]string, 2)
	for i := range workers {
		workers[i] = startServer(t, Config{CheckpointDir: t.TempDir()})
		urls[i] = workers[i].Addr()
	}
	primary := startServer(t, tightFailoverConfig(dir, urls))
	standbyCfg := tightFailoverConfig(dir, urls)
	standbyCfg.Standby = true
	standby := startServer(t, standbyCfg)

	// A standby answers 503 "standby" until it promotes.
	if err := NewClient(standby.Addr(), WithRetry(0, 0, 0)).Ready(context.Background()); err == nil {
		t.Fatal("unpromoted standby reported ready")
	}

	fc, err := NewFailoverClient([]string{primary.Addr(), standby.Addr()})
	if err != nil {
		t.Fatalf("NewFailoverClient: %v", err)
	}
	req := SweepRequest{HW: "crophe64", Workload: "helr", Seed: 9, Steps: 8, DeadlineMS: 20}
	st, err := fc.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}

	// Let the primary journal at least one merged rung so the takeover is
	// a genuine mid-sweep resume, then crash it without drain.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := fc.SweepStatus(context.Background(), st.ID, false)
		if err != nil {
			t.Fatalf("pre-kill SweepStatus: %v", err)
		}
		if got.Completed >= 1 {
			break
		}
		if got.State == jobDone {
			t.Log("sweep outran the kill; takeover still validates recovery of a done journal")
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no merged rung before the kill: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	primary.Kill()

	// Poll through the failover client. The window between the kill and
	// the promotion yields connection errors and standby 503s — both
	// retryable — so the loop tolerates errors until the takeover lands.
	var final *SweepStatus
	deadline = time.Now().Add(60 * time.Second)
	for {
		got, err := fc.SweepStatus(context.Background(), st.ID, false)
		if err == nil {
			if got.State == jobDone {
				final = got
				break
			}
			if got.State == jobFailed {
				t.Fatalf("sweep failed across the takeover: %s", got.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep not done after takeover: status %+v, err %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The job kept its single-process identity across the takeover and the
	// client rotated to the promoted standby.
	if final.ID != st.ID {
		t.Fatalf("job ID changed across takeover: %s -> %s", st.ID, final.ID)
	}
	if got := fc.Endpoint(); got != "http://"+standby.Addr() {
		t.Fatalf("failover client targets %s; want the standby %s", got, standby.Addr())
	}
	if !standby.coord.isActive() {
		t.Fatal("standby finished the sweep without reporting active")
	}
	if e := standby.coord.epoch.Load(); e != 2 {
		t.Fatalf("promoted standby at epoch %d; want 2 (primary's 1 + 1)", e)
	}
	if l, err := readCoordLease(dir); err != nil || l.Epoch != 2 {
		t.Fatalf("persisted lease = %+v, %v; want epoch 2", l, err)
	}

	// The acceptance criterion: the merged result is byte-identical to a
	// fresh single-process run of the same sweep.
	ref := referenceSweep(t, "crophe64", "helr", 9, 8, 20)
	assertByteIdentical(t, coordResult(t, standby, st.ID), ref)
}

// TestClusterSweepByteIdenticalUnderTransportChaos: with every
// coordinator→worker link injecting drops, resets, truncated bodies,
// spurious 500s and latency, the orchestration loop's lease/poll/reap
// machinery must still converge on a merged result byte-identical to a
// clean single-process run — chaos may slow the sweep, never skew it.
func TestClusterSweepByteIdenticalUnderTransportChaos(t *testing.T) {
	leakcheck.Check(t)
	spec, err := chaos.ParseSpec("drop:0.15,reset:0.1,trunc:0.1,err500:0.1,lat:0.2@2")
	if err != nil {
		t.Fatal(err)
	}
	coordSrv, _ := startCluster(t, 2, func(cfg *Config) {
		cfg.NetChaos = spec
		cfg.NetChaosSeed = 7
	})
	c := NewClient(coordSrv.Addr())

	req := SweepRequest{HW: "crophe64", Workload: "helr", Seed: 5, Steps: 6, DeadlineMS: 3}
	st, err := c.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	final := waitSweepDone(t, c, st.ID, 120*time.Second)
	if len(final.Points) != 6 {
		t.Fatalf("done sweep has %d points; want 6", len(final.Points))
	}

	ref := referenceSweep(t, "crophe64", "helr", 5, 6, 3)
	assertByteIdentical(t, coordResult(t, coordSrv, st.ID), ref)

	// The injector really fired: the run earned its "under chaos" name.
	if ct := coordSrv.coord.chaosCounts(); ct == nil || ct.Total() == 0 {
		t.Fatalf("chaos counts %+v; want injected faults on the worker links", ct)
	}
}

// TestZombiePrimaryIsFenced: a primary that loses the lease race (here: a
// usurper writes a higher epoch into the lease file) must demote itself —
// refuse journal writes, count them, flip /readyz to "fenced", and reject
// sweep traffic — rather than keep acting as coordinator.
func TestZombiePrimaryIsFenced(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	worker := startServer(t, Config{CheckpointDir: t.TempDir()})
	primary := startServer(t, tightFailoverConfig(dir, []string{worker.Addr()}))

	if e := primary.coord.epoch.Load(); e != 1 {
		t.Fatalf("fresh primary at epoch %d; want 1", e)
	}

	// The usurper: a higher epoch lands in the lease file. The primary's
	// lease heartbeat notices within a few periods and self-fences.
	if err := writeCoordLease(dir, primary.coord.epoch.Load()+5); err != nil {
		t.Fatalf("usurping lease: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !primary.coord.fenced.Load() {
		if time.Now().After(deadline) {
			t.Fatal("primary never fenced after losing the lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if primary.coord.isActive() {
		t.Fatal("fenced coordinator still reports active")
	}

	// Readiness advertises the fence so failover clients rotate away.
	hc := &http.Client{}
	defer hc.CloseIdleConnections()
	code, body, _ := doJSON(t, hc, "GET", "http://"+primary.Addr()+"/readyz", nil, nil)
	if code != http.StatusServiceUnavailable || body["status"] != "fenced" {
		t.Fatalf("fenced readyz = %d %v; want 503 fenced", code, body)
	}

	// Sweep traffic is refused with a retryable 503, not accepted and not
	// a final 4xx — the client's next stop is the new primary.
	c := NewClient(primary.Addr(), WithRetry(0, 0, 0))
	_, err := c.StartSweep(context.Background(),
		SweepRequest{HW: "crophe64", Workload: "helr", Seed: 1, Steps: 2, DeadlineMS: 1})
	var unavail *UnavailableError
	if !errors.As(err, &unavail) {
		t.Fatalf("StartSweep on fenced coordinator = %v; want *UnavailableError", err)
	}

	// The journal write path refuses too, and counts the refusal: a
	// zombie's late lease lines must never land in the merged journal.
	before := primary.coord.fencedWrites.Load()
	step := 0
	werr := primary.coord.append(nil, journalEntry{Step: &step, Point: &crophe.ResiliencePoint{Step: 0}})
	var fe *FencedError
	if !errors.As(werr, &fe) {
		t.Fatalf("fenced append = %v; want *FencedError", werr)
	}
	if got := primary.coord.fencedWrites.Load(); got != before+1 {
		t.Fatalf("fenced_writes %d -> %d; want an increment per refused write", before, got)
	}
}

// TestWorkerRejectsStaleCoordinatorEpoch pins the worker side of the
// fence: the highest epoch seen wins, anything lower is 409'd (a typed,
// non-retryable *StaleEpochError) and counted, and a yet-higher epoch is
// accepted — the monotonic handover contract.
func TestWorkerRejectsStaleCoordinatorEpoch(t *testing.T) {
	leakcheck.Check(t)
	worker := startServer(t, Config{CheckpointDir: t.TempDir()})
	c := NewClient(worker.Addr(), WithRetry(0, 0, 0))
	req := SweepRequest{HW: "crophe64", Workload: "helr", Seed: 3, Steps: 2, DeadlineMS: 1}

	c.SetCoordinatorEpoch(5)
	if _, err := c.StartSweep(context.Background(), req); err != nil {
		t.Fatalf("StartSweep at epoch 5: %v", err)
	}

	c.SetCoordinatorEpoch(3)
	_, err := c.StartSweep(context.Background(), req)
	var stale *StaleEpochError
	if !errors.As(err, &stale) {
		t.Fatalf("StartSweep at stale epoch 3 = %v; want *StaleEpochError", err)
	}
	if stale.Sent != 3 {
		t.Fatalf("StaleEpochError.Sent = %d; want 3", stale.Sent)
	}
	if retryable(err) {
		t.Fatal("a stale-epoch rejection must not be retryable: the sender is fenced")
	}
	// Memo pushes are fenced identically — a zombie must not warm workers.
	if _, err := c.PushMemoSnapshot(context.Background(), crophe.MemoSnapshot{V: 1}); !errors.As(err, &stale) {
		t.Fatalf("PushMemoSnapshot at stale epoch = %v; want *StaleEpochError", err)
	}

	// The new primary's higher epoch is accepted and becomes the floor.
	c.SetCoordinatorEpoch(6)
	if _, err := c.StartSweep(context.Background(), req); err != nil {
		t.Fatalf("StartSweep at epoch 6: %v", err)
	}

	hc := &http.Client{}
	defer hc.CloseIdleConnections()
	_, vars, _ := doJSON(t, hc, "GET", "http://"+worker.Addr()+"/debug/vars", nil, nil)
	reqs, _ := vars["requests"].(map[string]any)
	if n, _ := reqs["stale_epoch_rejects"].(float64); n < 2 {
		t.Fatalf("stale_epoch_rejects = %v; want >= 2", reqs["stale_epoch_rejects"])
	}
}

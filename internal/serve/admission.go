package serve

import (
	"context"
	"net/http"
	"strconv"
)

// admit is the admission-control middleware: a bounded wait queue in
// front of the shared worker slots, load shedding once the queue fills,
// and hysteresis so shedding does not flap.
//
// The mechanics: waiting counts requests that have arrived but not yet
// acquired a worker slot. When waiting exceeds QueueDepth the server
// latches into shedding and answers 429 with Retry-After; it stays
// latched until waiting falls to half the depth (the low-water mark).
// Between high and low water, requests queue with a wait bounded by
// QueueWait — a slot freeing admits the longest waiter; a timeout sheds.
//
// Two deliberate choices:
//
//   - An already-expired *client* deadline does not shed the request if a
//     slot is free: deadline handling belongs to the scheduler's anytime
//     search, which turns it into a partial schedule, not an error.
//   - Drain rejections are 503 (the instance is going away), shedding is
//     429 (the instance is overloaded; retry here later). Load balancers
//     treat the two differently.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.isDraining() {
			s.metrics.rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}

		n := s.waiting.Add(1)
		defer func() {
			if s.waiting.Add(-1) <= int64(s.cfg.QueueDepth/2) {
				// Low water: the backlog has genuinely cleared; stop
				// shedding. Latching until here (rather than the instant
				// waiting < depth) keeps the 429/accept boundary from
				// flapping under a steady near-saturating arrival rate.
				s.shedding.Store(false)
			}
		}()

		if n > int64(s.cfg.QueueDepth) {
			s.shedding.Store(true)
		}
		if s.shedding.Load() {
			s.shed(w)
			return
		}

		waitCtx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueWait)
		defer cancel()
		release, fast, err := s.acquireSlot(waitCtx)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away while queued; nothing useful to
				// write.
				return
			}
			s.shed(w)
			return
		}
		defer release()
		if !fast {
			s.metrics.queueWait.Add(1)
		}
		s.metrics.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// acquireSlot takes a worker slot, reporting whether the fast
// (uncontended) path succeeded.
func (s *Server) acquireSlot(ctx context.Context) (func(), bool, error) {
	if release, ok := s.queue.TryAcquire(); ok {
		return release, true, nil
	}
	release, err := s.queue.Acquire(ctx)
	return release, false, err
}

// shed writes the load-shedding response: 429 with a Retry-After hint
// sized to the queue-wait budget plus deterministic jitter (seeded by
// RetryJitterSeed), so well-behaved clients back off for about as long
// as a queued request would have waited — and a burst of clients shed in
// the same instant does not return as the same stampede one hint later.
func (s *Server) shed(w http.ResponseWriter) {
	s.metrics.shed.Add(1)
	retry := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "overloaded: admission queue is full, retry after %d s", retry)
}

// retryAfterSeconds sizes the Retry-After hint: the queue-wait budget
// (floor 1s) plus up to half that again in seeded jitter. Deterministic
// per RetryJitterSeed — the same seed yields the same hint sequence,
// which keeps robustness tests replayable.
func (s *Server) retryAfterSeconds() int {
	base := int(s.cfg.QueueWait.Seconds())
	if base < 1 {
		base = 1
	}
	s.jitterMu.Lock()
	jitter := s.jitterRand.Intn(base/2 + 1)
	s.jitterMu.Unlock()
	return base + jitter
}

package serve

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"crophe"
)

// Journal-corruption corpora: a flipped bit and a mid-file byte-range
// deletion, against both rung and lease lines. The contract under test:
// newline-terminated damage surfaces as a typed *JournalCorruptionError,
// recovery quarantines the bad suffix beside the journal, and a resumed
// job finishes with a journal byte-identical to one that was never
// damaged.

func TestJournalLineCodecRoundTrip(t *testing.T) {
	body := []byte(`{"step":3,"point":{"Step":3}}`)
	line := encodeJournalLine(body)
	if !bytes.HasSuffix(line, []byte("\n")) {
		t.Fatalf("encoded line %q lacks newline", line)
	}
	got, err := decodeJournalLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("roundtrip = %q, %v; want %q", got, err, body)
	}

	// Legacy pre-CRC lines (bare JSON) pass through unverified.
	if got, err := decodeJournalLine(body); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("legacy line = %q, %v; want pass-through", got, err)
	}

	// A flipped payload bit fails the CRC.
	bad := append([]byte(nil), bytes.TrimSuffix(line, []byte("\n"))...)
	bad[len(bad)-2] ^= 0x01
	if _, err := decodeJournalLine(bad); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("flipped bit decoded: %v", err)
	}

	// Malformed frames (too short, no space, non-hex CRC) are rejected.
	for _, frame := range []string{"abc", "0123456 {\"a\":1}", "zzzzzzzz {\"a\":1}", "01234567x{\"a\":1}"} {
		if _, err := decodeJournalLine([]byte(frame)); err == nil {
			t.Errorf("malformed frame %q decoded", frame)
		}
	}
}

// finishedJournal runs the standard test sweep to completion and
// returns the journal path and its intact bytes.
func finishedJournal(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	params := sweepTestParams()
	m := newJobManager(dir)
	j, _, err := m.start(params)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, "completion", func(state string, _ int) bool { return state == jobDone })
	<-m.stop()
	path := journalPath(dir, params.ID)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, intact
}

// assertCorruptionRecovery damages the journal via mutate, asserts the
// typed error and good-prefix return from readJournal, then recovers
// through a fresh manager and asserts quarantine + byte-identical
// resume.
func assertCorruptionRecovery(t *testing.T, dir, path string, intact []byte, mutate func([]byte) []byte, wantLine int) {
	t.Helper()
	params := sweepTestParams()
	damaged := mutate(append([]byte(nil), intact...))
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := readJournal(path)
	var corrupt *JournalCorruptionError
	if !errors.As(err, &corrupt) {
		t.Fatalf("readJournal over damage = %v; want *JournalCorruptionError", err)
	}
	if corrupt.Path != path || corrupt.Line != wantLine {
		t.Fatalf("corruption at %s line %d; want %s line %d", corrupt.Path, corrupt.Line, path, wantLine)
	}
	if corrupt.Offset <= 0 || corrupt.Offset >= int64(len(damaged)) {
		t.Fatalf("corruption offset %d outside (0, %d)", corrupt.Offset, len(damaged))
	}
	if d.params != params {
		t.Fatalf("good prefix lost the header: %+v", d.params)
	}
	if d.done {
		t.Fatal("damaged journal read as done despite a pre-terminator corruption")
	}
	if want := wantLine - 2; len(d.points) != want {
		t.Fatalf("good prefix holds %d rungs; want %d", len(d.points), want)
	}

	// Recovery through a fresh manager: quarantine, truncate, resume,
	// finish byte-identical.
	m := newJobManager(dir)
	if err := m.recover(); err != nil {
		t.Fatalf("recover over corruption: %v", err)
	}
	j, ok := m.get(params.ID)
	if !ok {
		t.Fatal("corrupt-journal job not recovered")
	}
	waitJob(t, j, "re-completion", func(state string, _ int) bool { return state == jobDone })
	<-m.stop()

	quarantined, err := os.ReadFile(path + quarantineSuffix)
	if err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	if want := damaged[corrupt.Offset:]; !bytes.Equal(quarantined, want) {
		t.Fatalf("quarantine holds %q; want the damaged suffix %q", quarantined, want)
	}
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, intact) {
		t.Fatalf("healed journal differs from the never-damaged original:\nhealed   (%d bytes): %s\noriginal (%d bytes): %s",
			len(healed), healed, len(intact), intact)
	}
	os.Remove(path + quarantineSuffix)
}

func TestBitFlipInRungLineQuarantinesAndResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path, intact := finishedJournal(t, dir)
	lines := bytes.Split(bytes.TrimSuffix(intact, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// Flip one bit inside the JSON payload of the middle rung line.
	target := len(lines) / 2
	off := 0
	for i := 0; i < target; i++ {
		off += len(lines[i]) + 1
	}
	flip := off + 9 + len(lines[target][9:])/2
	assertCorruptionRecovery(t, dir, path, intact, func(b []byte) []byte {
		b[flip] ^= 0x20
		return b
	}, target+1)
}

func TestMidFileTruncationQuarantinesAndResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path, intact := finishedJournal(t, dir)
	lines := bytes.Split(bytes.TrimSuffix(intact, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// Delete a byte range spanning the boundary between rung lines 2 and
	// 3 (a lost sector): the splice glues half of one line to half of the
	// next, still newline-terminated — corruption, not a torn tail.
	off := 0
	for i := 0; i < 2; i++ {
		off += len(lines[i]) + 1
	}
	cutStart := off + len(lines[2])/2
	cutEnd := off + len(lines[2]) + 1 + len(lines[3])/2
	assertCorruptionRecovery(t, dir, path, intact, func(b []byte) []byte {
		return append(b[:cutStart], b[cutEnd:]...)
	}, 3)
}

// TestLeaseLineCorruptionQuarantined covers the coordinator-journal
// shape: lease lines between rungs. A flipped bit in a lease line must
// surface as typed corruption, and recoverJournal must quarantine it
// while preserving the rungs and leases of the good prefix.
func TestLeaseLineCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	params := sweepTestParams()
	path := journalPath(dir, params.ID)

	f, err := openJournal(dir, params, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	step0 := 0
	if err := appendLine(f, journalEntry{Step: &step0, Point: &crophe.ResiliencePoint{Step: 0}}); err != nil {
		t.Fatal(err)
	}
	goodLease := leaseRecord{Shard: 0, Count: 2, Worker: "w0", Epoch: 0}
	if err := appendLine(f, journalEntry{Lease: &goodLease}); err != nil {
		t.Fatal(err)
	}
	badLease := leaseRecord{Shard: 1, Count: 2, Worker: "w1", Epoch: 0}
	if err := appendLine(f, journalEntry{Lease: &badLease}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	// Flip a bit inside the final lease line's payload.
	off := len(raw) - len(lines[3]) - 1
	raw[off+12] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := recoverJournal(path)
	if err != nil {
		t.Fatalf("recoverJournal: %v", err)
	}
	if len(d.points) != 1 || len(d.leases) != 1 || d.leases[0] != goodLease {
		t.Fatalf("good prefix = %d rungs, leases %+v; want 1 rung and the good lease", len(d.points), d.leases)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("no quarantine after lease corruption: %v", err)
	}
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(healed)) != d.keep {
		t.Fatalf("journal truncated to %d bytes; want keep=%d", len(healed), d.keep)
	}
	// The healed journal reads cleanly and still ends at the good lease.
	if d2, err := readJournal(path); err != nil || len(d2.leases) != 1 {
		t.Fatalf("healed journal = leases %+v, err %v", d2.leases, err)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"crophe"
)

// Client is the typed client of the crophe-serve API. It maps context
// deadlines onto the X-Crophe-Deadline header (so the server's anytime
// budget matches the caller's patience), turns the 429/503 shed and
// drain responses into typed errors carrying their Retry-After hints,
// and retries retryable failures with bounded exponential backoff. The
// coordinator speaks to its workers through this client; scripts and
// external tools should too, instead of hand-rolling net/http calls.
//
// A Client built with NewFailoverClient holds several endpoints (a
// primary coordinator and its standbys): after a retryable failure it
// probes the candidates' /readyz and rotates to the first ready one, so
// in-flight sweep polling survives a coordinator switch.
type Client struct {
	endpoints   []string // candidate base URLs; endpoints[active] is current
	active      atomic.Int32
	hc          *http.Client
	maxRetries  int
	backoffBase time.Duration
	backoffCap  time.Duration
	coordEpoch  atomic.Int64 // when > 0, stamped on every request for fencing
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetry sets the retry budget: up to retries re-attempts after the
// first try, sleeping min(cap, base<<attempt) between them (a larger
// server Retry-After hint extends the sleep, still bounded by cap).
// WithRetry(0, ...) disables retries.
func WithRetry(retries int, base, cap time.Duration) ClientOption {
	return func(c *Client) {
		c.maxRetries = retries
		if base > 0 {
			c.backoffBase = base
		}
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// canonicalBase normalizes one endpoint: "host:port" or a full http://
// URL, trailing slashes trimmed.
func canonicalBase(base string) string {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// NewClient returns a Client for the server at base ("host:port" or a
// full http:// URL). Defaults: http.DefaultClient-like transport with no
// overall timeout (per-call contexts bound each request), 3 retries,
// 100ms base backoff capped at 2s.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		endpoints:   []string{canonicalBase(base)},
		hc:          &http.Client{},
		maxRetries:  3,
		backoffBase: 100 * time.Millisecond,
		backoffCap:  2 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewFailoverClient returns a Client that starts on bases[0] and, after
// a retryable failure, health-probes the other endpoints and rotates to
// the first ready one. With one endpoint it behaves exactly like
// NewClient.
func NewFailoverClient(bases []string, opts ...ClientOption) (*Client, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("serve: failover client needs at least one endpoint")
	}
	c := NewClient(bases[0], opts...)
	for _, b := range bases[1:] {
		c.endpoints = append(c.endpoints, canonicalBase(b))
	}
	return c, nil
}

// Endpoint returns the base URL the client currently targets.
func (c *Client) Endpoint() string {
	return c.endpoints[c.active.Load()]
}

// SetCoordinatorEpoch makes every subsequent request carry epoch in the
// X-Crophe-Coordinator-Epoch header. Workers remember the highest epoch
// they have seen and 409 anything older (*StaleEpochError) — the fence
// that stops a zombie coordinator from leasing shards. Zero disables
// the header.
func (c *Client) SetCoordinatorEpoch(epoch int64) {
	c.coordEpoch.Store(epoch)
}

// APIError is a non-retryable error response (4xx/5xx outside the
// shed/drain protocol). FaultSeed is set when the server's panic
// isolation stamped the replaying fault seed into the 500.
type APIError struct {
	Status    int
	Message   string
	FaultSeed *int64
}

func (e *APIError) Error() string {
	if e.FaultSeed != nil {
		return fmt.Sprintf("serve: HTTP %d: %s (fault seed %d)", e.Status, e.Message, *e.FaultSeed)
	}
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Message)
}

// ShedError is the 429 load-shedding response: the instance is
// overloaded and asks the caller to retry here after RetryAfter.
type ShedError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded (retry after %s): %s", e.RetryAfter, e.Message)
}

// UnavailableError is the 503 drain response: the instance is going
// away; callers should route elsewhere.
type UnavailableError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("serve: unavailable: %s", e.Message)
}

// StaleEpochError is the 409 fencing response: the server has already
// seen a newer coordinator epoch than the one this request carried.
// Non-retryable by construction — the caller has been superseded and
// must stop, not try again.
type StaleEpochError struct {
	Sent    int64 // the epoch this client sent
	Message string
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("serve: coordinator epoch %d is stale: %s", e.Sent, e.Message)
}

// errBody is the uniform error envelope (plus the panic-isolation
// extras).
type errBody struct {
	Error     string `json:"error"`
	Panic     bool   `json:"panic,omitempty"`
	FaultSeed *int64 `json:"fault_seed,omitempty"`
}

// decodeError turns a non-2xx response into its typed error.
func decodeError(resp *http.Response, body []byte) error {
	var eb errBody
	_ = json.Unmarshal(body, &eb)
	msg := eb.Error
	if msg == "" {
		msg = strings.TrimSpace(string(body))
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return &ShedError{RetryAfter: retryAfter(resp), Message: msg}
	case http.StatusServiceUnavailable:
		return &UnavailableError{RetryAfter: retryAfter(resp), Message: msg}
	case http.StatusConflict:
		return &StaleEpochError{Message: msg}
	}
	return &APIError{Status: resp.StatusCode, Message: msg, FaultSeed: eb.FaultSeed}
}

// retryAfter parses the integer-seconds Retry-After hint (0 if absent).
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// retryable reports whether err is worth re-attempting: shed (the
// backlog clears), drain (a restarting worker comes back), or a
// transport failure (the peer died mid-connection). A stale-epoch
// rejection is final: the caller has been fenced.
func retryable(err error) bool {
	switch err.(type) {
	case *ShedError, *UnavailableError:
		return true
	case *APIError, *StaleEpochError:
		return false
	}
	return err != nil
}

// do runs one HTTP exchange: marshal, stamp the context deadline into
// X-Crophe-Deadline, decode into out (ignored when nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("serve: encoding %s %s: %w", method, path, err)
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Endpoint()+path, rd)
	if err != nil {
		return fmt.Errorf("serve: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if epoch := c.coordEpoch.Load(); epoch > 0 {
		req.Header.Set(CoordEpochHeader, strconv.FormatInt(epoch, 10))
	}
	if dl, ok := ctx.Deadline(); ok {
		// The header carries the declared budget, not the wall clock:
		// round to the millisecond the server's deterministic bucketing
		// works in, and never send a zero/negative duration.
		d := time.Until(dl).Round(time.Millisecond)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		req.Header.Set(DeadlineHeader, d.String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("serve: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		derr := decodeError(resp, raw)
		if se, ok := derr.(*StaleEpochError); ok {
			se.Sent = c.coordEpoch.Load()
		}
		return derr
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("serve: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// doRetry wraps do with the retry budget. The request body is a value
// (re-marshalled per attempt), so replays are safe by construction.
// Between attempts, a multi-endpoint client rotates to a ready
// endpoint; the sleep is capped by the context deadline's remaining
// budget — a Retry-After hint larger than the caller's patience means
// the retry cannot possibly land, so give up now instead of sleeping
// the deadline away.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, method, path, in, out)
		if err == nil || !retryable(err) || attempt >= c.maxRetries {
			return err
		}
		// Rotate before the context check: even when this call's budget is
		// spent (a hung peer ate the whole poll deadline), advancing the
		// active endpoint makes the caller's *next* attempt start somewhere
		// alive instead of hanging on the same dead primary forever.
		c.failover(ctx)
		if ctx.Err() != nil {
			return err
		}
		wait := c.backoff(attempt, err)
		if dl, ok := ctx.Deadline(); ok {
			if remaining := time.Until(dl); wait >= remaining {
				return err
			}
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// failover rotates a multi-endpoint client after a retryable failure:
// probe the other endpoints' /readyz round-robin from the next index
// and switch to the first that answers ready. When nothing answers
// (every candidate down or mid-switch), advance blindly to the next —
// round-robin still converges on the promoted standby once it opens.
func (c *Client) failover(ctx context.Context) {
	n := len(c.endpoints)
	if n < 2 {
		return
	}
	cur := int(c.active.Load())
	for i := 1; i < n; i++ {
		idx := (cur + i) % n
		if c.readyAt(ctx, c.endpoints[idx]) {
			c.active.Store(int32(idx))
			return
		}
	}
	c.active.Store(int32((cur + 1) % n))
}

// readyAt probes one endpoint's /readyz with a short capped budget.
func (c *Client) readyAt(ctx context.Context, base string) bool {
	probeCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode == http.StatusOK
}

// backoff sizes the sleep before re-attempt: exponential from the base,
// extended by a larger server Retry-After hint, always bounded by the
// cap.
func (c *Client) backoff(attempt int, err error) time.Duration {
	wait := c.backoffBase << uint(attempt)
	if wait > c.backoffCap || wait <= 0 {
		wait = c.backoffCap
	}
	var hint time.Duration
	switch e := err.(type) {
	case *ShedError:
		hint = e.RetryAfter
	case *UnavailableError:
		hint = e.RetryAfter
	}
	if hint > wait {
		wait = hint
	}
	if wait > c.backoffCap {
		wait = c.backoffCap
	}
	return wait
}

// Ready probes /readyz with no retries — it is the heartbeat primitive,
// and a heartbeat that retries its way past a dying peer defeats the
// failure detector. A draining server surfaces as *UnavailableError.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Schedule runs the dataflow search for one workload
// (POST /v1/schedule). A context deadline becomes the server's anytime
// search budget; an expiring one returns a best-so-far schedule with
// Partial set, not an error.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.doRetry(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulate schedules and runs the cycle-level simulator
// (POST /v1/simulate).
func (c *Client) Simulate(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.doRetry(ctx, http.MethodPost, "/v1/simulate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SimulateDegraded degrades the chip under a seeded fault plan and
// simulates (POST /v1/simulate-degraded).
func (c *Client) SimulateDegraded(ctx context.Context, req DegradedRequest) (*DegradedResponse, error) {
	var out DegradedResponse
	if err := c.doRetry(ctx, http.MethodPost, "/v1/simulate-degraded", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StartSweep starts (or re-addresses — the job ID is deterministic in
// the parameters) an asynchronous resilience sweep (POST /v1/sweeps).
func (c *Client) StartSweep(ctx context.Context, req SweepRequest) (*SweepStatus, error) {
	var out SweepStatus
	if err := c.doRetry(ctx, http.MethodPost, "/v1/sweeps", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SweepStatus polls a sweep job (GET /v1/sweeps/{id}). raw additionally
// requests the exact journaled points (?raw=1) — the merge feed a
// coordinator consumes, available even while the job runs.
func (c *Client) SweepStatus(ctx context.Context, id string, raw bool) (*SweepStatus, error) {
	path := "/v1/sweeps/" + id
	if raw {
		path += "?raw=1"
	}
	var out SweepStatus
	if err := c.doRetry(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MemoSnapshot exports the server's schedule-memo snapshot
// (GET /v1/memo/snapshot) — the warm-start state a coordinator ships to
// newly joined workers.
func (c *Client) MemoSnapshot(ctx context.Context) (*crophe.MemoSnapshot, error) {
	var out crophe.MemoSnapshot
	if err := c.doRetry(ctx, http.MethodGet, "/v1/memo/snapshot", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PushMemoSnapshot imports a schedule-memo snapshot into the server's
// warm tier (POST /v1/memo/snapshot).
func (c *Client) PushMemoSnapshot(ctx context.Context, snap crophe.MemoSnapshot) (*MemoImportResponse, error) {
	var out MemoImportResponse
	if err := c.doRetry(ctx, http.MethodPost, "/v1/memo/snapshot", snap, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"
)

// Coordinator fail-over. The shared checkpoint directory holds a single
// coordinator lease file beside the sweep journals: {v, epoch, ts}. The
// active coordinator heartbeat-refreshes ts; a standby watches the file
// and, when ts goes stale past the takeover timeout (or the file never
// appears), bumps the epoch, rewrites the lease, replays the sweep
// journals and resumes leasing.
//
// The epoch is a fence, not just a tiebreak. Every mutating worker RPC
// carries the coordinator's epoch; workers remember the highest epoch
// they have seen and 409 anything older, so a zombie primary — one that
// was merely partitioned, not dead — cannot lease shards once the
// standby has taken over. On the journal side, every coordinator append
// re-reads the lease file first and refuses to write once a higher
// epoch holds it; there is a narrow check-then-write window, but a
// zombie that loses it can only append rung lines that are bit-identical
// to what the new primary would write (rung outcomes are deterministic
// and the merge is exactly-once), never divergent state. See DESIGN.md
// "Fail-over & fencing".

// coordLeaseFile is the lease's name inside the checkpoint directory.
const coordLeaseFile = "coordinator.lease"

// coordLease is the persisted coordinator claim: who (by epoch) owns
// leasing for this checkpoint directory, and when they last proved
// they were alive.
type coordLease struct {
	V     int   `json:"v"`
	Epoch int64 `json:"epoch"`
	TS    int64 `json:"ts"` // unix nanoseconds of the last heartbeat refresh
}

// readCoordLease loads the lease; a missing file (or "" dir) is the
// zero lease — nobody has ever claimed this directory.
func readCoordLease(dir string) (coordLease, error) {
	if dir == "" {
		return coordLease{}, nil
	}
	raw, err := os.ReadFile(filepath.Join(dir, coordLeaseFile))
	if errors.Is(err, os.ErrNotExist) {
		return coordLease{}, nil
	}
	if err != nil {
		return coordLease{}, err
	}
	var l coordLease
	if err := json.Unmarshal(raw, &l); err != nil || l.V != 1 {
		return coordLease{}, fmt.Errorf("bad coordinator lease in %s: %v", dir, err)
	}
	return l, nil
}

// writeCoordLease atomically (temp + rename) claims or refreshes the
// lease at epoch with a fresh timestamp.
func writeCoordLease(dir string, epoch int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body, err := json.Marshal(coordLease{V: 1, Epoch: epoch, TS: time.Now().UnixNano()})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, coordLeaseFile+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(body, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, coordLeaseFile))
}

// FencedError means another coordinator holds the checkpoint directory
// at a higher epoch: this process is the zombie and must stop writing.
type FencedError struct {
	Epoch   int64 // the usurper's epoch, read from the lease file
	Current int64 // this coordinator's epoch
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("coordinator fenced: lease epoch %d supersedes ours (%d)", e.Epoch, e.Current)
}

// fenceCheck re-reads the lease and reports whether a higher epoch has
// claimed the directory. An unreadable lease fails open (nil): losing
// the only coordinator to a transient read error is worse than the
// residual risk, which worker-side epoch rejection and the journal CRCs
// cover.
func (c *coordinator) fenceCheck() error {
	if c.dir == "" {
		return nil
	}
	l, err := readCoordLease(c.dir)
	if err != nil {
		return nil
	}
	if cur := c.epoch.Load(); l.Epoch > cur {
		return &FencedError{Epoch: l.Epoch, Current: cur}
	}
	return nil
}

// fence demotes this coordinator after a lost epoch race: leasing stops,
// orchestration is cancelled (journals intact — they now belong to the
// new primary), and /readyz flips to 503 so failover clients rotate.
func (c *coordinator) fence(cause error) {
	if c.fenced.CompareAndSwap(false, true) {
		c.active.Store(false)
		log.Printf("crophe-serve: coordinator fenced at epoch %d: %v", c.epoch.Load(), cause)
		c.cancel()
	}
}

// append is the coordinator's journal write path: it refuses to touch
// the journal once fenced, counting and logging the refused write —
// a zombie's late lease lines must never land in the merged journal.
func (c *coordinator) append(f *os.File, v any) error {
	if c.fenced.Load() {
		c.fencedWrites.Add(1)
		return &FencedError{Epoch: c.epoch.Load(), Current: c.epoch.Load()}
	}
	if err := c.fenceCheck(); err != nil {
		c.fencedWrites.Add(1)
		c.fence(err)
		return err
	}
	return appendLine(f, v)
}

// activate claims the checkpoint directory as the primary: bump the
// persisted epoch past whatever the lease held, start refreshing it,
// stamp every worker client with the new epoch, and start the worker
// heartbeats. Recovery of journaled jobs is the caller's next step.
func (c *coordinator) activate() error {
	prev, err := readCoordLease(c.dir)
	if err != nil {
		// A garbled lease cannot be allowed to brick the cluster; claim
		// epoch 1 over it and say so.
		log.Printf("crophe-serve: %v; claiming the directory anyway", err)
		prev = coordLease{}
	}
	e := prev.Epoch + 1
	c.epoch.Store(e)
	if c.dir != "" {
		if err := writeCoordLease(c.dir, e); err != nil {
			return fmt.Errorf("claiming coordinator lease: %w", err)
		}
		c.startLeaseHeartbeat()
	}
	for _, h := range c.workers {
		h.client.SetCoordinatorEpoch(e)
	}
	c.active.Store(true)
	c.startHeartbeats()
	return nil
}

// startLeaseHeartbeat refreshes the lease timestamp every heartbeat
// period, checking first whether a higher epoch stole the directory —
// the partitioned-primary detection path.
func (c *coordinator) startLeaseHeartbeat() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.hb)
		defer t.Stop()
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-t.C:
			}
			if err := c.fenceCheck(); err != nil {
				c.fence(err)
				return
			}
			if err := writeCoordLease(c.dir, c.epoch.Load()); err != nil {
				log.Printf("crophe-serve: refreshing coordinator lease: %v", err)
			}
		}
	}()
}

// startStandbyWatch polls the lease until the primary's timestamp goes
// stale past the takeover timeout (or no primary ever appears), then
// promotes. Until promotion the process answers health checks with 503
// "standby" and refuses sweep traffic.
func (c *coordinator) startStandbyWatch() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		watchStart := time.Now()
		t := time.NewTicker(c.hb)
		defer t.Stop()
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-t.C:
			}
			l, err := readCoordLease(c.dir)
			if err != nil {
				continue // cannot judge liveness this round; keep watching
			}
			last := watchStart // no lease yet: primary never came up
			if l.TS != 0 {
				last = time.Unix(0, l.TS)
			}
			if time.Since(last) < c.takeover {
				continue
			}
			if err := c.promote(l.Epoch); err != nil {
				log.Printf("crophe-serve: standby promotion failed: %v", err)
				continue
			}
			return
		}
	}()
}

// promote turns the standby into the primary: claim the lease one epoch
// above the dead primary's, fence it everywhere (lease file + worker
// epoch stamps), replay the sweep journals, and open for leasing.
func (c *coordinator) promote(prevEpoch int64) error {
	e := prevEpoch + 1
	c.epoch.Store(e)
	if err := writeCoordLease(c.dir, e); err != nil {
		return fmt.Errorf("claiming coordinator lease: %w", err)
	}
	log.Printf("crophe-serve: standby promoting to primary coordinator (epoch %d)", e)
	for _, h := range c.workers {
		h.client.SetCoordinatorEpoch(e)
	}
	c.startLeaseHeartbeat()
	c.startHeartbeats()
	if err := c.recover(); err != nil {
		// Unreadable directory: the promoted coordinator can still serve
		// new sweeps; the stranded journals stay for the next recovery.
		log.Printf("crophe-serve: journal replay after takeover: %v", err)
	}
	c.active.Store(true)
	return nil
}

// isActive reports whether this coordinator may lease and accept sweep
// traffic: activated (or promoted) and not fenced.
func (c *coordinator) isActive() bool {
	return c.active.Load() && !c.fenced.Load()
}

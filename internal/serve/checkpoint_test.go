package serve

import (
	"bytes"
	"net/http"
	"os"
	"testing"
	"time"

	"crophe/internal/leakcheck"
)

// sweepTestParams is the shared job identity the checkpoint tests run:
// small enough to finish in tens of milliseconds, enough rungs that a
// drain lands mid-sweep.
func sweepTestParams() sweepParams {
	p := sweepParams{V: 1, HW: "crophe64", Workload: "helr", Seed: 7, Steps: 6, DeadlineMS: 3}
	p.ID = sweepID(p)
	return p
}

// waitJobState polls a job until pred holds.
func waitJob(t *testing.T, j *job, what string, pred func(state string, completed int) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		state, completed, errText, _ := j.snapshot()
		if pred(state, completed) {
			return
		}
		if state == jobFailed {
			t.Fatalf("job failed waiting for %s: %s", what, errText)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s (state %s, %d rungs)", what, state, completed)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSweepCheckpointKillResumeByteIdentical is the crash-safety
// contract: a sweep interrupted mid-run and resumed by a fresh manager
// over the same checkpoint directory must finish with a journal
// byte-identical to an uninterrupted run's.
func TestSweepCheckpointKillResumeByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	params := sweepTestParams()
	interruptedDir, cleanDir := t.TempDir(), t.TempDir()

	// Phase 1: run until at least one rung is journaled, then stop the
	// manager — the moral equivalent of SIGKILL at a rung boundary (the
	// journal never holds a partial rung either way; tearing of the final
	// line is covered by TestTornJournalTailRecovery).
	m1 := newJobManager(interruptedDir)
	if err := m1.recover(); err != nil {
		t.Fatalf("recover empty dir: %v", err)
	}
	j1, created, err := m1.start(params)
	if err != nil || !created {
		t.Fatalf("start = created %v, err %v", created, err)
	}
	waitJob(t, j1, "first rung", func(_ string, completed int) bool { return completed >= 1 })
	<-m1.stop()

	interrupted, err := os.ReadFile(journalPath(interruptedDir, params.ID))
	if err != nil {
		t.Fatalf("reading interrupted journal: %v", err)
	}
	if state, _, _, _ := j1.snapshot(); state == jobDone {
		t.Log("sweep outran the interrupt; byte-compare still validates determinism")
	}

	// Phase 2: a fresh manager (a restarted server) recovers the journal
	// and resumes from the last completed rung.
	m2 := newJobManager(interruptedDir)
	if err := m2.recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := m2.get(params.ID)
	if !ok {
		t.Fatal("recovered manager lost the job")
	}
	waitJob(t, j2, "resumed completion", func(state string, _ int) bool { return state == jobDone })
	<-m2.stop()

	resumed, err := os.ReadFile(journalPath(interruptedDir, params.ID))
	if err != nil {
		t.Fatalf("reading resumed journal: %v", err)
	}
	if !bytes.HasPrefix(resumed, interrupted) {
		t.Fatal("resume rewrote journaled rungs instead of appending")
	}

	// Phase 3: the reference — the same sweep, never interrupted.
	m3 := newJobManager(cleanDir)
	j3, _, err := m3.start(params)
	if err != nil {
		t.Fatalf("reference start: %v", err)
	}
	waitJob(t, j3, "reference completion", func(state string, _ int) bool { return state == jobDone })
	<-m3.stop()

	reference, err := os.ReadFile(journalPath(cleanDir, params.ID))
	if err != nil {
		t.Fatalf("reading reference journal: %v", err)
	}
	if !bytes.Equal(resumed, reference) {
		t.Fatalf("resumed journal differs from uninterrupted run:\nresumed  (%d bytes): %s\nreference (%d bytes): %s",
			len(resumed), resumed, len(reference), reference)
	}

	// And the assembled results agree rung for rung.
	_, _, _, r2 := j2.snapshot()
	_, _, _, r3 := j3.snapshot()
	if r2 == nil || r3 == nil {
		t.Fatal("done jobs carry no result")
	}
	if len(r2.Points) != len(r3.Points) {
		t.Fatalf("resumed sweep has %d points, reference %d", len(r2.Points), len(r3.Points))
	}
	for i := range r2.Points {
		if r2.Points[i] != r3.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, r2.Points[i], r3.Points[i])
		}
	}
}

// TestDoneJobSurvivesRestart: a finished journal recovers as a done job
// with its result reassembled from the journaled rungs.
func TestDoneJobSurvivesRestart(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	params := sweepTestParams()

	m1 := newJobManager(dir)
	j1, _, err := m1.start(params)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1, "completion", func(state string, _ int) bool { return state == jobDone })
	<-m1.stop()
	_, _, _, want := j1.snapshot()

	m2 := newJobManager(dir)
	if err := m2.recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := m2.get(params.ID)
	if !ok {
		t.Fatal("done job not recovered")
	}
	state, completed, _, got := j2.snapshot()
	if state != jobDone || got == nil {
		t.Fatalf("recovered job state %s, result %v; want done with result", state, got)
	}
	if completed != len(want.Points) || len(got.Points) != len(want.Points) {
		t.Fatalf("recovered %d rungs / %d points; want %d", completed, len(got.Points), len(want.Points))
	}
	if got.Baseline != want.Baseline {
		t.Fatalf("recovered baseline %g; want %g", got.Baseline, want.Baseline)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("recovered point %d differs: %+v vs %+v", i, got.Points[i], want.Points[i])
		}
	}
	<-m2.stop()
}

// TestTornJournalTailRecovery: a crash mid-append leaves a torn final
// line; recovery must keep every intact rung, drop the tear, and resume
// appending cleanly.
func TestTornJournalTailRecovery(t *testing.T) {
	dir := t.TempDir()
	params := sweepTestParams()

	m1 := newJobManager(dir)
	j1, _, err := m1.start(params)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1, "completion", func(state string, _ int) bool { return state == jobDone })
	<-m1.stop()

	path := journalPath(dir, params.ID)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the terminator and half of the final rung line: the journal of
	// a process that died mid-write.
	lines := bytes.Split(bytes.TrimSuffix(intact, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short to tear: %d lines", len(lines))
	}
	torn := append(bytes.Join(lines[:len(lines)-2], []byte("\n")), '\n')
	torn = append(torn, lines[len(lines)-2][:len(lines[len(lines)-2])/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := readJournal(path)
	if err != nil {
		t.Fatalf("reading torn journal: %v", err)
	}
	if d.done {
		t.Fatal("torn journal read as done")
	}
	if d.params != params {
		t.Fatalf("torn journal header %+v; want %+v", d.params, params)
	}
	// Steps journaled: all but the torn one and the lost terminator.
	if want := len(lines) - 3; len(d.points) != want {
		t.Fatalf("torn journal yielded %d intact rungs; want %d", len(d.points), want)
	}
	if d.keep >= int64(len(torn)) {
		t.Fatalf("keep offset %d does not exclude the torn tail (%d bytes)", d.keep, len(torn))
	}

	// A restarted manager finishes the job and the final journal matches
	// the never-torn original byte for byte.
	m2 := newJobManager(dir)
	if err := m2.recover(); err != nil {
		t.Fatalf("recover over torn journal: %v", err)
	}
	j2, ok := m2.get(params.ID)
	if !ok {
		t.Fatal("torn job not recovered")
	}
	waitJob(t, j2, "re-completion", func(state string, _ int) bool { return state == jobDone })
	<-m2.stop()

	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, intact) {
		t.Fatalf("healed journal differs from the original:\nhealed   (%d bytes): %s\noriginal (%d bytes): %s",
			len(healed), healed, len(intact), intact)
	}
}

// TestSweepJobAPI drives the HTTP surface: idempotent POST, polling, and
// the finished retained-throughput curve.
func TestSweepJobAPI(t *testing.T) {
	leakcheck.Check(t)
	s := startServer(t, Config{CheckpointDir: t.TempDir()})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + s.Addr()
	req := map[string]any{"hw": "crophe64", "workload": "helr", "seed": 11, "steps": 4, "deadline_ms": 3}

	code, body, _ := doJSON(t, client, "POST", base+"/v1/sweeps", req, nil)
	if code != 202 {
		t.Fatalf("start sweep = %d %v; want 202", code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("202 body carries no job id: %v", body)
	}
	if body["created"] != true {
		t.Fatalf("first POST not marked created: %v", body)
	}

	// Retrying the POST (client timeout, LB replay) addresses the same
	// job instead of starting a second sweep.
	code, body, _ = doJSON(t, client, "POST", base+"/v1/sweeps", req, nil)
	if code != 202 || body["id"] != id || body["created"] != false {
		t.Fatalf("repeat POST = %d %v; want same id, created=false", code, body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body, _ = doJSON(t, client, "GET", base+"/v1/sweeps/"+id, nil, nil)
		if code != 200 {
			t.Fatalf("poll = %d %v", code, body)
		}
		if body["state"] == jobDone {
			break
		}
		if body["state"] == jobFailed {
			t.Fatalf("sweep failed: %v", body["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not finish: %v", body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	points, _ := body["points"].([]any)
	if len(points) != 4 { // steps rungs: healthy rung 0 plus 3 escalations
		t.Fatalf("done sweep has %d points; want 4: %v", len(points), body)
	}
	first := points[0].(map[string]any)
	if r, _ := first["retained"].(float64); r != 1 {
		t.Fatalf("healthy rung retained = %v; want 1", first["retained"])
	}

	if code, body, _ := doJSON(t, client, "GET", base+"/v1/sweeps/nope", nil, nil); code != 404 {
		t.Fatalf("unknown job = %d %v; want 404", code, body)
	}
}

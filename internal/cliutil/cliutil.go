// Package cliutil holds the flag-parsing helpers shared by the crophe
// command-line tools. Each helper returns an error instead of exiting so
// the commands own the exit policy (malformed flag values print usage
// and exit 2) and the parsing rules stay table-testable.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseMesh parses a -mesh value of the form "WxH" (e.g. "16x4") into
// positive dimensions.
func ParseMesh(s string) (w, h int, err error) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("invalid mesh %q (want WxH, e.g. 16x4)", s)
	}
	w, err = strconv.Atoi(a)
	if err == nil {
		h, err = strconv.Atoi(b)
	}
	if err != nil || w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("invalid mesh %q (want WxH with positive dimensions)", s)
	}
	return w, h, nil
}

// ParseDeadline parses a -deadline value: a Go duration that must be
// positive. The empty string means no deadline and parses to zero.
func ParseDeadline(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("invalid deadline %q (want a duration like 200ms or 2s)", s)
	}
	if d <= 0 {
		return 0, fmt.Errorf("invalid deadline %q (must be positive)", s)
	}
	return d, nil
}

// ParseSeed parses a -seed value as a decimal int64.
func ParseSeed(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid seed %q (want a decimal integer)", s)
	}
	return v, nil
}

// Package cliutil holds the flag-parsing helpers shared by the crophe
// command-line tools. Each helper returns an error instead of exiting so
// the commands own the exit policy (malformed flag values print usage
// and exit 2) and the parsing rules stay table-testable.
package cliutil

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// ParseMesh parses a -mesh value of the form "WxH" (e.g. "16x4") into
// positive dimensions.
func ParseMesh(s string) (w, h int, err error) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("invalid mesh %q (want WxH, e.g. 16x4)", s)
	}
	w, err = strconv.Atoi(a)
	if err == nil {
		h, err = strconv.Atoi(b)
	}
	if err != nil || w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("invalid mesh %q (want WxH with positive dimensions)", s)
	}
	return w, h, nil
}

// ParseDeadline parses a -deadline value: a Go duration that must be
// positive. The empty string means no deadline and parses to zero.
func ParseDeadline(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("invalid deadline %q (want a duration like 200ms or 2s)", s)
	}
	if d <= 0 {
		return 0, fmt.Errorf("invalid deadline %q (must be positive)", s)
	}
	return d, nil
}

// ParseSeed parses a -seed value as a decimal int64.
func ParseSeed(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid seed %q (want a decimal integer)", s)
	}
	return v, nil
}

// ParseAddr parses a -addr value as a listen address: host:port with an
// empty host meaning all interfaces and a numeric port in [0, 65535]
// (0 asks the kernel for an ephemeral port).
func ParseAddr(s string) (string, error) {
	_, port, err := net.SplitHostPort(s)
	if err != nil {
		return "", fmt.Errorf("invalid addr %q (want host:port, e.g. :8080 or 127.0.0.1:0)", s)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n < 0 || n > 65535 {
		return "", fmt.Errorf("invalid addr %q (port must be a number in [0, 65535])", s)
	}
	return s, nil
}

// ParsePositiveInt parses a flag value that must be a positive decimal
// integer; name labels the flag in the error.
func ParsePositiveInt(name, s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("invalid %s %q (want a positive integer)", name, s)
	}
	return v, nil
}

package cliutil

import (
	"testing"
	"time"
)

func TestParseMesh(t *testing.T) {
	cases := []struct {
		in   string
		w, h int
		ok   bool
	}{
		{"16x4", 16, 4, true},
		{"1x1", 1, 1, true},
		{"8x8", 8, 8, true},
		{"", 0, 0, false},
		{"16", 0, 0, false},
		{"x4", 0, 0, false},
		{"16x", 0, 0, false},
		{"0x4", 0, 0, false},
		{"16x-2", 0, 0, false},
		{"axb", 0, 0, false},
		{"16x4x2", 0, 0, false},
		{"16 x 4", 0, 0, false},
	}
	for _, c := range cases {
		w, h, err := ParseMesh(c.in)
		if c.ok {
			if err != nil || w != c.w || h != c.h {
				t.Errorf("ParseMesh(%q) = %d, %d, %v; want %d, %d", c.in, w, h, err, c.w, c.h)
			}
		} else if err == nil {
			t.Errorf("ParseMesh(%q) accepted; want error", c.in)
		}
	}
}

func TestParseDeadline(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, true},
		{"200ms", 200 * time.Millisecond, true},
		{"2s", 2 * time.Second, true},
		{"1m30s", 90 * time.Second, true},
		{"0", 0, false},
		{"0s", 0, false},
		{"-1s", 0, false},
		{"fast", 0, false},
		{"200", 0, false},
	}
	for _, c := range cases {
		d, err := ParseDeadline(c.in)
		if c.ok {
			if err != nil || d != c.want {
				t.Errorf("ParseDeadline(%q) = %v, %v; want %v", c.in, d, err, c.want)
			}
		} else if err == nil {
			t.Errorf("ParseDeadline(%q) accepted; want error", c.in)
		}
	}
}

func TestParseSeed(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"-7", -7, true},
		{"9223372036854775807", 9223372036854775807, true},
		{"", 0, false},
		{"1.5", 0, false},
		{"seed", 0, false},
		{"9223372036854775808", 0, false},
	}
	for _, c := range cases {
		v, err := ParseSeed(c.in)
		if c.ok {
			if err != nil || v != c.want {
				t.Errorf("ParseSeed(%q) = %d, %v; want %d", c.in, v, err, c.want)
			}
		} else if err == nil {
			t.Errorf("ParseSeed(%q) accepted; want error", c.in)
		}
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{":8080", true},
		{"127.0.0.1:0", true},
		{"localhost:9999", true},
		{"[::1]:8080", true},
		{"", false},
		{"8080", false},
		{"localhost", false},
		{":http", false},
		{":-1", false},
		{":65536", false},
		{"host:port:extra", false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok {
			if err != nil || got != c.in {
				t.Errorf("ParseAddr(%q) = %q, %v; want %q", c.in, got, err, c.in)
			}
		} else if err == nil {
			t.Errorf("ParseAddr(%q) accepted; want error", c.in)
		}
	}
}

func TestParsePositiveInt(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"1", 1, true},
		{"64", 64, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"", 0, false},
		{"4.5", 0, false},
		{"many", 0, false},
	}
	for _, c := range cases {
		v, err := ParsePositiveInt("queue", c.in)
		if c.ok {
			if err != nil || v != c.want {
				t.Errorf("ParsePositiveInt(%q) = %d, %v; want %d", c.in, v, err, c.want)
			}
		} else if err == nil {
			t.Errorf("ParsePositiveInt(%q) accepted; want error", c.in)
		}
	}
}

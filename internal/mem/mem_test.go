package mem

import "testing"

func TestNewHBMValidation(t *testing.T) {
	if _, err := NewHBM(0, 1); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := NewHBM(1, 0); err == nil {
		t.Error("zero frequency should fail")
	}
}

func TestHBMStreamingAtPeak(t *testing.T) {
	h, err := NewHBM(1, 1) // 1 TB/s at 1 GHz → 1000 B/cycle
	if err != nil {
		t.Fatal(err)
	}
	c := h.Transfer(1e6, Streaming)
	if c < 1000 || c > 1100 {
		t.Fatalf("streaming 1 MB took %f cycles, want ≈1000", c)
	}
	if f := h.EffectiveBandwidthFrac(); f < 0.9 {
		t.Fatalf("streaming efficiency %f", f)
	}
}

func TestHBMScatteredSlower(t *testing.T) {
	h, _ := NewHBM(1, 1)
	stream := h.Transfer(1e6, Streaming)
	h.Reset()
	scattered := h.Transfer(1e6, Scattered)
	if scattered <= stream {
		t.Fatalf("scattered %f not slower than streaming %f", scattered, stream)
	}
	h.Reset()
	strided := h.Transfer(1e6, Strided)
	if strided > scattered {
		t.Fatalf("strided %f slower than scattered %f", strided, scattered)
	}
}

func TestHBMZeroTransfer(t *testing.T) {
	h, _ := NewHBM(1, 1)
	if h.Transfer(0, Streaming) != 0 {
		t.Fatal("zero transfer should be free")
	}
	if h.EffectiveBandwidthFrac() != 0 {
		t.Fatal("no transfers yet")
	}
}

func TestSRAMValidationAndAccess(t *testing.T) {
	if _, err := NewSRAM(180, 36, 1, 0); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := NewSRAM(180, 0, 1, 8); err == nil {
		t.Error("zero bandwidth should fail")
	}
	s, err := NewSRAM(180, 36, 1, 64) // 36 TB/s at 1 GHz = 36000 B/cycle
	if err != nil {
		t.Fatal(err)
	}
	full := s.Access(36000, 64)
	if full != 1 {
		t.Fatalf("full-width access %f cycles, want 1", full)
	}
	// One bank only: 64× slower.
	if c := s.Access(36000, 1); c != 64 {
		t.Fatalf("single-bank access %f want 64", c)
	}
	// Bank clamp.
	if c := s.Access(36000, 1000); c != 1 {
		t.Fatalf("clamped banks %f want 1", c)
	}
	if s.Access(0, 64) != 0 {
		t.Fatal("zero access")
	}
}

func TestSRAMAllocFree(t *testing.T) {
	s, _ := NewSRAM(1, 36, 1, 8) // 1 MB
	if !s.Alloc(6e5) {
		t.Fatal("alloc within capacity failed")
	}
	if s.Alloc(6e5) {
		t.Fatal("overallocation succeeded")
	}
	if s.Available() != 4e5 {
		t.Fatalf("available %f", s.Available())
	}
	s.Free(6e5)
	if s.Available() != 1e6 {
		t.Fatal("free did not restore")
	}
	s.Free(1e9) // over-free clamps
	if s.Available() != 1e6 {
		t.Fatal("over-free mishandled")
	}
}

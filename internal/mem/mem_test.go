package mem

import (
	"testing"

	"crophe/internal/telemetry"
)

func TestNewHBMValidation(t *testing.T) {
	if _, err := NewHBM(0, 1); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := NewHBM(1, 0); err == nil {
		t.Error("zero frequency should fail")
	}
}

func TestHBMStreamingAtPeak(t *testing.T) {
	h, err := NewHBM(1, 1) // 1 TB/s at 1 GHz → 1000 B/cycle
	if err != nil {
		t.Fatal(err)
	}
	c := h.Transfer(1e6, Streaming)
	if c < 1000 || c > 1100 {
		t.Fatalf("streaming 1 MB took %f cycles, want ≈1000", c)
	}
	if f := h.EffectiveBandwidthFrac(); f < 0.9 {
		t.Fatalf("streaming efficiency %f", f)
	}
}

func TestHBMScatteredSlower(t *testing.T) {
	h, _ := NewHBM(1, 1)
	stream := h.Transfer(1e6, Streaming)
	h.Reset()
	scattered := h.Transfer(1e6, Scattered)
	if scattered <= stream {
		t.Fatalf("scattered %f not slower than streaming %f", scattered, stream)
	}
	h.Reset()
	strided := h.Transfer(1e6, Strided)
	if strided > scattered {
		t.Fatalf("strided %f slower than scattered %f", strided, scattered)
	}
}

func TestHBMZeroTransfer(t *testing.T) {
	h, _ := NewHBM(1, 1)
	if h.Transfer(0, Streaming) != 0 {
		t.Fatal("zero transfer should be free")
	}
	if h.EffectiveBandwidthFrac() != 0 {
		t.Fatal("no transfers yet")
	}
}

func TestSRAMValidationAndAccess(t *testing.T) {
	if _, err := NewSRAM(180, 36, 1, 0); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := NewSRAM(180, 0, 1, 8); err == nil {
		t.Error("zero bandwidth should fail")
	}
	s, err := NewSRAM(180, 36, 1, 64) // 36 TB/s at 1 GHz = 36000 B/cycle
	if err != nil {
		t.Fatal(err)
	}
	full := s.Access(36000, 64)
	if full != 1 {
		t.Fatalf("full-width access %f cycles, want 1", full)
	}
	// One bank only: 64× slower.
	if c := s.Access(36000, 1); c != 64 {
		t.Fatalf("single-bank access %f want 64", c)
	}
	// Bank clamp.
	if c := s.Access(36000, 1000); c != 1 {
		t.Fatalf("clamped banks %f want 1", c)
	}
	if s.Access(0, 64) != 0 {
		t.Fatal("zero access")
	}
}

func TestSRAMAllocFree(t *testing.T) {
	s, _ := NewSRAM(1, 36, 1, 8) // 1 MB
	if !s.Alloc(6e5) {
		t.Fatal("alloc within capacity failed")
	}
	if s.Alloc(6e5) {
		t.Fatal("overallocation succeeded")
	}
	if s.Available() != 4e5 {
		t.Fatalf("available %f", s.Available())
	}
	s.Free(6e5)
	if s.Available() != 1e6 {
		t.Fatal("free did not restore")
	}
	s.Free(1e9) // over-free clamps
	if s.Available() != 1e6 {
		t.Fatal("over-free mishandled")
	}
}

func TestHBMThrottle(t *testing.T) {
	h, _ := NewHBM(1, 1)
	if err := h.Throttle(0); err == nil {
		t.Error("zero throttle should fail")
	}
	if err := h.Throttle(1.5); err == nil {
		t.Error("throttle above 1 should fail")
	}
	base := h.Transfer(1e6, Streaming)
	if err := h.Throttle(0.5); err != nil {
		t.Fatal(err)
	}
	if f := h.ThrottleFactor(); f != 0.5 {
		t.Fatalf("throttle factor %v want 0.5", f)
	}
	throttled := h.Transfer(1e6, Streaming)
	if throttled < base*1.9 || throttled > base*2.1 {
		t.Fatalf("half-bandwidth transfer %f cycles, want ≈2× %f", throttled, base)
	}
}

func TestSRAMDisableBanks(t *testing.T) {
	s, _ := NewSRAM(1, 36, 1, 8) // 1 MB, 8 banks
	if err := s.DisableBanks(-1); err == nil {
		t.Error("negative disable count should fail")
	}
	if err := s.DisableBanks(8); err == nil {
		t.Error("disabling every bank should fail")
	}
	base := s.Access(36000, 8)
	if err := s.DisableBanks(4); err != nil {
		t.Fatal(err)
	}
	if s.EffectiveBanks() != 4 {
		t.Fatalf("effective banks %d want 4", s.EffectiveBanks())
	}
	degraded := s.Access(36000, 8) // clamps to the 4 live banks
	if degraded != base*2 {
		t.Fatalf("half-banks access %f cycles want %f", degraded, base*2)
	}
	if st := s.Stats(); st.ConflictCycles <= 0 {
		t.Fatalf("disabled banks should surface as conflict cycles: %+v", st)
	}
	// Capacity shrinks with the dead banks.
	if got := s.EffectiveCapacity(); got != 5e5 {
		t.Fatalf("effective capacity %f want 5e5", got)
	}
	if s.Alloc(6e5) {
		t.Fatal("allocation over degraded capacity succeeded")
	}
	if !s.Alloc(4e5) {
		t.Fatal("allocation within degraded capacity failed")
	}
}

func TestHBMStatsAndCounters(t *testing.T) {
	h, err := NewHBM(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Transfer(64*100, Streaming)
	h.Transfer(64*10, Scattered)
	st := h.Stats()
	if st.Transfers != 2 || st.Bytes != 64*110 || st.Bursts != 110 {
		t.Fatalf("stats %+v", st)
	}
	if st.RowMisses <= 0 || st.Cycles <= 0 {
		t.Fatalf("stats missing activity: %+v", st)
	}

	tel := telemetry.New()
	h.EmitCounters(tel)
	if tel.Counter("hbm/bursts") != 110 || tel.Counter("hbm/transfers") != 2 {
		t.Fatalf("counters %+v", tel.CounterMap())
	}
	if tel.Counter("hbm/busy_cycles") != st.Cycles {
		t.Fatal("busy cycles counter mismatch")
	}
	h.EmitCounters(nil) // disabled path is a no-op

	h.Reset()
	if s := h.Stats(); s.Transfers != 0 || s.Bursts != 0 || s.RowMisses != 0 {
		t.Fatalf("reset left stats %+v", s)
	}
}

func TestSRAMStatsAndCounters(t *testing.T) {
	s, err := NewSRAM(1, 36, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(1024, 8) // conflict-free: full width
	st := s.Stats()
	if st.Accesses != 1 || st.Bytes != 1024 || st.ConflictCycles != 0 {
		t.Fatalf("conflict-free stats %+v", st)
	}
	s.Access(1024, 1) // worst case: one bank serialises
	st = s.Stats()
	if st.ConflictCycles <= 0 {
		t.Fatalf("bank conflict not recorded: %+v", st)
	}

	tel := telemetry.New()
	s.EmitCounters(tel)
	if tel.Counter("sram/accesses") != 2 || tel.Counter("sram/bytes") != 2048 {
		t.Fatalf("counters %+v", tel.CounterMap())
	}
	if tel.Counter("sram/bank_conflict_cycles") != st.ConflictCycles {
		t.Fatal("conflict cycles counter mismatch")
	}
	s.EmitCounters(nil) // disabled path is a no-op
}

// Package mem models the memory system of the accelerator: the HBM
// off-chip memory with banked row-buffer timing (standing in for the
// paper's Ramulator 2 simulation) and the multi-bank global SRAM buffer.
// Both expose a simple contract to the simulator: given an access stream
// (bytes and locality), return the cycles to service it.
package mem

import (
	"fmt"

	"crophe/internal/telemetry"
)

// HBM models a stack of HBM channels at a total bandwidth ceiling, with
// row-buffer effects: sequential (streaming) accesses run at full
// bandwidth, while scattered accesses pay an activation penalty per row
// miss.
type HBM struct {
	// BandwidthBytesPerCycle is the aggregate peak bandwidth per clock of
	// the consuming accelerator.
	BandwidthBytesPerCycle float64
	// RowBytes is the row-buffer size per bank (page size).
	RowBytes float64
	// RowMissPenalty is the extra cycles per row activation (tRCD+tRP
	// scaled to accelerator cycles).
	RowMissPenalty float64
	// Channels is the number of independent channels.
	Channels int

	// throttle scales the delivered bandwidth in (0, 1] — the HBM-channel
	// degradation knob of the fault-injection subsystem (1 = healthy).
	throttle float64

	totalBytes  float64
	totalCycles float64
	// Burst/row-buffer accounting for the observability layer: transfers
	// move in 64 B bursts, and rowMisses counts modeled row activations
	// (weighted by access pattern).
	totalBursts    float64
	totalRowMisses float64
	transfers      int
}

// NewHBM builds an HBM model. bwTBs is the bandwidth in TB/s and freqGHz
// the consumer clock, so cycles and bytes share a time base.
func NewHBM(bwTBs, freqGHz float64) (*HBM, error) {
	if bwTBs <= 0 || freqGHz <= 0 {
		return nil, fmt.Errorf("mem: bandwidth and frequency must be positive")
	}
	return &HBM{
		BandwidthBytesPerCycle: bwTBs * 1e12 / (freqGHz * 1e9),
		RowBytes:               1024, // 1 KB rows (HBM3 pseudo-channel)
		RowMissPenalty:         30,   // ≈ tRCD+tRP at ~1 GHz
		Channels:               16,
		throttle:               1,
	}, nil
}

// Throttle derates the delivered bandwidth to factor (in (0, 1]) of peak —
// a throttled or partially failed channel stack. Subsequent transfers take
// proportionally longer.
func (h *HBM) Throttle(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("mem: HBM throttle factor %v outside (0, 1]", factor)
	}
	h.throttle = factor
	return nil
}

// ThrottleFactor returns the active bandwidth derating (1 = healthy).
func (h *HBM) ThrottleFactor() float64 {
	if h.throttle == 0 {
		return 1
	}
	return h.throttle
}

// AccessPattern describes the locality of a transfer.
type AccessPattern int

// Access patterns.
const (
	// Streaming transfers touch each row once, sequentially.
	Streaming AccessPattern = iota
	// Strided transfers hit each row a few times before moving on
	// (e.g. limb-major walks of an N-major layout).
	Strided
	// Scattered transfers miss the row buffer on almost every burst.
	Scattered
)

// Transfer services a request of the given size and returns its cycles.
func (h *HBM) Transfer(bytes float64, pattern AccessPattern) float64 {
	if bytes <= 0 {
		return 0
	}
	streamCycles := bytes / (h.BandwidthBytesPerCycle * h.ThrottleFactor())
	// Row activations overlap with transfers of already-open rows; the
	// overlap degree depends on locality. banksPerChannel banks hide
	// activations of sequential streams almost entirely.
	const banksPerChannel = 4
	var rowMisses, overlap float64
	switch pattern {
	case Streaming:
		rowMisses = bytes / h.RowBytes
		overlap = float64(h.Channels * banksPerChannel)
	case Strided:
		rowMisses = bytes / h.RowBytes * 4
		overlap = float64(h.Channels)
	case Scattered:
		rowMisses = bytes / 64 // one miss per burst
		overlap = float64(h.Channels)
	}
	actCycles := rowMisses * h.RowMissPenalty / overlap
	cycles := streamCycles
	if actCycles > cycles {
		cycles = actCycles
	}
	h.totalBytes += bytes
	h.totalCycles += cycles
	h.totalBursts += bytes / 64
	h.totalRowMisses += rowMisses
	h.transfers++
	return cycles
}

// HBMStats is the aggregate activity of one HBM model instance.
type HBMStats struct {
	Transfers int
	Bytes     float64
	Cycles    float64
	Bursts    float64
	RowMisses float64
}

// Stats returns the accumulated activity since the last Reset.
func (h *HBM) Stats() HBMStats {
	return HBMStats{
		Transfers: h.transfers,
		Bytes:     h.totalBytes,
		Cycles:    h.totalCycles,
		Bursts:    h.totalBursts,
		RowMisses: h.totalRowMisses,
	}
}

// EmitCounters adds the accumulated HBM activity to the collector. Call
// once per model instance (counters are cumulative totals, not deltas).
func (h *HBM) EmitCounters(c *telemetry.Collector) {
	if !c.Enabled() {
		return
	}
	c.EmitCounter("hbm/transfers", float64(h.transfers))
	c.EmitCounter("hbm/bytes", h.totalBytes)
	c.EmitCounter("hbm/bursts", h.totalBursts)
	c.EmitCounter("hbm/row_misses", h.totalRowMisses)
	c.EmitCounter("hbm/busy_cycles", h.totalCycles)
}

// EffectiveBandwidthFrac reports delivered/peak bandwidth so far.
func (h *HBM) EffectiveBandwidthFrac() float64 {
	if h.totalCycles == 0 {
		return 0
	}
	return (h.totalBytes / h.totalCycles) / h.BandwidthBytesPerCycle
}

// Reset clears counters.
func (h *HBM) Reset() {
	h.totalBytes, h.totalCycles = 0, 0
	h.totalBursts, h.totalRowMisses = 0, 0
	h.transfers = 0
}

// GlobalBufBanks is the bank count of the global buffer as simulated —
// shared by the simulator (which builds the SRAM model) and the
// fault-injection subsystem (which disables banks out of it).
const GlobalBufBanks = 64

// SRAM models the banked global buffer: single-ported banks at double
// frequency (§VI), so conflict-free access achieves the full bandwidth
// and bank conflicts serialise.
type SRAM struct {
	Banks int
	// BytesPerBankPerCycle at the accelerator clock (×2 for the doubled
	// SRAM clock).
	BytesPerBankPerCycle float64
	CapacityBytes        float64

	used float64
	// disabledBanks removes banks from service (fault injection): both
	// the usable capacity and the conflict-free access width shrink.
	disabledBanks int
	// Bank-conflict accounting: accesses addressing fewer than Banks
	// banks serialise, and the cycles lost versus a conflict-free access
	// of the same size accumulate here.
	accesses       int
	totalBytes     float64
	conflictCycles float64
}

// NewSRAM sizes the buffer from the Table I numbers.
func NewSRAM(capacityMB, bwTBs, freqGHz float64, banks int) (*SRAM, error) {
	if banks < 1 {
		return nil, fmt.Errorf("mem: need at least one bank")
	}
	if capacityMB < 0 || bwTBs <= 0 || freqGHz <= 0 {
		return nil, fmt.Errorf("mem: invalid SRAM parameters")
	}
	total := bwTBs * 1e12 / (freqGHz * 1e9)
	return &SRAM{
		Banks:                banks,
		BytesPerBankPerCycle: total / float64(banks),
		CapacityBytes:        capacityMB * 1e6,
	}, nil
}

// DisableBanks takes n banks out of service (fault injection). At least
// one bank must remain; n < 0 is rejected.
func (s *SRAM) DisableBanks(n int) error {
	if n < 0 {
		return fmt.Errorf("mem: cannot disable %d banks", n)
	}
	if n >= s.Banks {
		return fmt.Errorf("mem: disabling %d of %d banks leaves no usable bank", n, s.Banks)
	}
	s.disabledBanks = n
	return nil
}

// EffectiveBanks returns the banks still in service.
func (s *SRAM) EffectiveBanks() int { return s.Banks - s.disabledBanks }

// EffectiveCapacity returns the usable capacity in bytes after bank
// failures (capacity is striped uniformly across banks).
func (s *SRAM) EffectiveCapacity() float64 {
	return s.CapacityBytes * float64(s.EffectiveBanks()) / float64(s.Banks)
}

// Access returns the cycles to move bytes with the given number of
// concurrently addressed banks (conflicts reduce effective width).
func (s *SRAM) Access(bytes float64, activeBanks int) float64 {
	if bytes <= 0 {
		return 0
	}
	banks := s.EffectiveBanks()
	if activeBanks < 1 {
		activeBanks = 1
	}
	if activeBanks > banks {
		activeBanks = banks
	}
	cycles := bytes / (s.BytesPerBankPerCycle * float64(activeBanks))
	s.accesses++
	s.totalBytes += bytes
	// Conflict cost = serialisation beyond the conflict-free service time
	// of the healthy buffer (so disabled banks surface as conflicts).
	s.conflictCycles += cycles - bytes/(s.BytesPerBankPerCycle*float64(s.Banks))
	return cycles
}

// SRAMStats is the aggregate activity of one SRAM model instance.
type SRAMStats struct {
	Accesses       int
	Bytes          float64
	ConflictCycles float64
}

// Stats returns the accumulated activity.
func (s *SRAM) Stats() SRAMStats {
	return SRAMStats{Accesses: s.accesses, Bytes: s.totalBytes, ConflictCycles: s.conflictCycles}
}

// EmitCounters adds the accumulated buffer activity to the collector.
// Call once per model instance (counters are cumulative totals).
func (s *SRAM) EmitCounters(c *telemetry.Collector) {
	if !c.Enabled() {
		return
	}
	c.EmitCounter("sram/accesses", float64(s.accesses))
	c.EmitCounter("sram/bytes", s.totalBytes)
	c.EmitCounter("sram/bank_conflict_cycles", s.conflictCycles)
}

// Alloc reserves capacity, reporting whether it fit. Disabled banks
// shrink the allocatable pool.
func (s *SRAM) Alloc(bytes float64) bool {
	if s.used+bytes > s.EffectiveCapacity() {
		return false
	}
	s.used += bytes
	return true
}

// Free releases capacity.
func (s *SRAM) Free(bytes float64) {
	s.used -= bytes
	if s.used < 0 {
		s.used = 0
	}
}

// Available returns the free capacity in bytes.
func (s *SRAM) Available() float64 { return s.EffectiveCapacity() - s.used }

// Package integrity is the data-plane ABFT substrate: it owns the
// detect → bounded-recompute → escalate recovery protocol that the
// checked NTT/RNS kernels run, the deterministic seeded bit-flip
// injector the tests and smoke drills drive corruption with, and the
// integrity/* counters every layer above reports.
//
// The checked kernels themselves live next to the math they verify
// (internal/ntt, internal/rns); this package only supplies policy and
// accounting, so it stays dependency-free below the kernel layer.
package integrity

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"crophe/internal/telemetry"
)

// DefaultMaxRecompute is how many times a checked kernel replays a
// mismatching unit from fresh scratch before escalating. Two replays
// separate transient flips (first replay verifies clean) from
// persistent corruption (every replay mismatches).
const DefaultMaxRecompute = 2

// Error is the typed escalation a checked kernel raises when recompute
// cannot clear a mismatch: the corruption is persistent, and the unit
// must be quarantined by the caller. It carries the fault seed per the
// faultseed convention so the failure replays deterministically.
type Error struct {
	Kernel   string // checked kernel that escalated, e.g. "ntt.Forward"
	Seed     int64  // fault seed of the injected corruption (0 if organic)
	Attempts int    // verification attempts, including recomputes
}

func (e *Error) Error() string {
	return fmt.Sprintf("integrity: %s mismatch persisted across %d attempts (fault seed %d)",
		e.Kernel, e.Attempts, e.Seed)
}

// Stats is a point-in-time snapshot of a Checker's counters.
type Stats struct {
	Checks     uint64 // verification passes run
	Detected   uint64 // mismatches caught
	Recomputed uint64 // units replayed from fresh scratch
	Escalated  uint64 // persistent mismatches raised as *Error
}

// Checker carries the recovery policy and counters through a set of
// checked kernel invocations. All methods are safe for concurrent use —
// batch kernels verify limbs in parallel.
type Checker struct {
	seed         int64
	maxRecompute int
	inj          *Injector

	checks     atomic.Uint64
	detected   atomic.Uint64
	recomputed atomic.Uint64
	escalated  atomic.Uint64
}

// Option configures a Checker.
type Option func(*Checker)

// WithMaxRecompute bounds the replays before escalation (0 escalates on
// first detection).
func WithMaxRecompute(n int) Option {
	return func(c *Checker) {
		if n >= 0 {
			c.maxRecompute = n
		}
	}
}

// WithInjector installs a corruption injector: checked kernels pass
// their freshly produced buffers through it before verifying, which is
// how tests and the SDC smoke drill exercise the full recovery path.
func WithInjector(in *Injector) Option {
	return func(c *Checker) { c.inj = in }
}

// NewChecker builds a checker whose escalations carry the given fault
// seed.
func NewChecker(seed int64, opts ...Option) *Checker {
	c := &Checker{seed: seed, maxRecompute: DefaultMaxRecompute}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Seed returns the fault seed escalations are stamped with.
func (c *Checker) Seed() int64 { return c.seed }

// MaxRecompute returns the replay bound.
func (c *Checker) MaxRecompute() int { return c.maxRecompute }

// Checked counts one verification pass.
func (c *Checker) Checked() { c.checks.Add(1) }

// Detected counts one caught mismatch.
func (c *Checker) Detected() { c.detected.Add(1) }

// Recomputed counts one replay from fresh scratch.
func (c *Checker) Recomputed() { c.recomputed.Add(1) }

// Escalate counts an escalation and returns the typed error the kernel
// must surface. attempts is the total number of verification attempts.
func (c *Checker) Escalate(kernel string, attempts int) *Error {
	c.escalated.Add(1)
	return &Error{Kernel: kernel, Seed: c.seed, Attempts: attempts}
}

// Corrupt runs the installed injector over a freshly produced buffer,
// returning the number of bits flipped (0 with no injector — the
// production configuration).
func (c *Checker) Corrupt(buf []uint64) int {
	if c.inj == nil {
		return 0
	}
	return c.inj.Corrupt(buf)
}

// Stats snapshots the counters.
func (c *Checker) Stats() Stats {
	return Stats{
		Checks:     c.checks.Load(),
		Detected:   c.detected.Load(),
		Recomputed: c.recomputed.Load(),
		Escalated:  c.escalated.Load(),
	}
}

// EmitCounters publishes the counters under integrity/*.
func (c *Checker) EmitCounters(t *telemetry.Collector) {
	if !t.Enabled() {
		return
	}
	s := c.Stats()
	t.EmitCounter("integrity/checks", float64(s.Checks))
	t.EmitCounter("integrity/detected", float64(s.Detected))
	t.EmitCounter("integrity/recomputed", float64(s.Recomputed))
	t.EmitCounter("integrity/escalated", float64(s.Escalated))
}

// saltData is the injector's stream salt, following the fault package's
// per-dimension ASCII-tag convention ("data").
const saltData = 0x64617461

// Injector flips bits in kernel buffers deterministically: the same
// (seed, rate) over the same sequence of buffers always flips the same
// bits. Persist mode re-corrupts every replay — the stuck-cell model
// that forces the escalate leg of the recovery protocol.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rate    float64
	persist bool
	armed   int // Corrupt calls remaining; -1 = unlimited
	flips   atomic.Uint64
}

// NewInjector builds an injector flipping each word with probability
// rate (clamped to [0, 1]).
func NewInjector(seed int64, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Injector{rng: rand.New(rand.NewSource(seed ^ saltData)), rate: rate, armed: -1}
}

// Arm limits corruption to the next n Corrupt calls — the transient
// (single-event upset) model: the first attempt corrupts, the replay
// reads clean, and recovery succeeds deterministically.
func (in *Injector) Arm(n int) {
	in.mu.Lock()
	in.armed = n
	in.mu.Unlock()
}

// Persist switches the injector to the stuck-cell model: corruption
// recurs on recompute, so detection must escalate.
func (in *Injector) Persist(on bool) {
	in.mu.Lock()
	in.persist = on
	in.mu.Unlock()
}

// Persistent reports whether the stuck-cell model is active.
func (in *Injector) Persistent() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.persist
}

// Corrupt flips bits in buf per the configured rate and returns how
// many it flipped. In persist mode at least one bit always flips, so a
// replayed unit can never verify clean.
func (in *Injector) Corrupt(buf []uint64) int {
	if len(buf) == 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.armed == 0 {
		return 0
	}
	if in.armed > 0 {
		in.armed--
	}
	n := 0
	for i := range buf {
		if in.rng.Float64() < in.rate {
			buf[i] ^= 1 << uint(in.rng.Intn(64))
			n++
		}
	}
	if n == 0 && in.persist {
		i := in.rng.Intn(len(buf))
		buf[i] ^= 1 << uint(in.rng.Intn(64))
		n = 1
	}
	in.flips.Add(uint64(n))
	return n
}

// FlipOne flips exactly one seeded bit in buf — the single-event-upset
// primitive of the detection-bound tests.
func (in *Injector) FlipOne(buf []uint64) (word int, bit uint) {
	in.mu.Lock()
	defer in.mu.Unlock()
	word = in.rng.Intn(len(buf))
	bit = uint(in.rng.Intn(64))
	buf[word] ^= 1 << bit
	in.flips.Add(1)
	return word, bit
}

// Flips reports the total bits flipped so far.
func (in *Injector) Flips() uint64 { return in.flips.Load() }

package sched

import (
	"errors"
	"strings"
	"testing"

	"crophe/internal/graph"
)

// Edge cases of the affinity ordering: degenerate graphs must come back
// intact, and cyclic inputs must be rejected with a typed error instead
// of silently scheduling a subset of the workload.

func mustOrder(t *testing.T, g *graph.Graph) []*graph.Node {
	t.Helper()
	out, err := auxAffinityOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAffinityOrderEmptyGraph(t *testing.T) {
	if out := mustOrder(t, graph.New()); len(out) != 0 {
		t.Fatalf("empty graph ordered %d nodes", len(out))
	}
}

func TestAffinityOrderSingleNode(t *testing.T) {
	g := graph.New()
	n := g.AddNode(graph.OpEWMul, "only", graph.Tensor{Limbs: 1, N: 4})
	out := mustOrder(t, g)
	if len(out) != 1 || out[0] != n {
		t.Fatalf("single-node order wrong: %v", out)
	}
}

func TestAffinityOrderSkipsStructuralNodes(t *testing.T) {
	g := graph.New()
	in := g.AddNode(graph.OpInput, "in", graph.Tensor{Limbs: 1, N: 4})
	mul := g.AddNode(graph.OpEWMul, "mul", graph.Tensor{Limbs: 1, N: 4})
	out := g.AddNode(graph.OpOutput, "out", graph.Tensor{Limbs: 1, N: 4})
	g.Connect(in, mul)
	g.Connect(mul, out)
	order := mustOrder(t, g)
	if len(order) != 1 || order[0] != mul {
		t.Fatalf("want only the compute node, got %d nodes", len(order))
	}
}

func TestAffinityOrderCyclicInputIsError(t *testing.T) {
	g := graph.New()
	a := g.AddNode(graph.OpEWAdd, "a", graph.Tensor{Limbs: 1, N: 4})
	b := g.AddNode(graph.OpEWMul, "b", graph.Tensor{Limbs: 1, N: 4})
	g.Connect(a, b)
	g.Connect(b, a)
	_, err := auxAffinityOrder(g)
	if err == nil {
		t.Fatal("cyclic graph did not error")
	}
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CycleError, got %T: %v", err, err)
	}
	if ce.Ordered != 0 || ce.Total != 2 {
		t.Fatalf("cycle error counts wrong: %+v", ce)
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestAffinityOrderPartialCycleIsError(t *testing.T) {
	// A reachable prefix followed by a cycle: the order must not silently
	// return just the prefix.
	g := graph.New()
	head := g.AddNode(graph.OpEWAdd, "head", graph.Tensor{Limbs: 1, N: 4})
	a := g.AddNode(graph.OpEWMul, "a", graph.Tensor{Limbs: 1, N: 4})
	b := g.AddNode(graph.OpEWMul, "b", graph.Tensor{Limbs: 1, N: 4})
	g.Connect(head, a)
	g.Connect(a, b)
	g.Connect(b, a)
	out, err := auxAffinityOrder(g)
	if err == nil {
		t.Fatalf("partial cycle did not error (got %d nodes)", len(out))
	}
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CycleError, got %T: %v", err, err)
	}
	if ce.Ordered != 1 || ce.Total != 3 {
		t.Fatalf("cycle error counts wrong: %+v", ce)
	}
}

package sched

import (
	"strings"
	"testing"

	"crophe/internal/graph"
)

// Edge cases of the affinity ordering: degenerate graphs must come back
// intact, and cyclic inputs must be rejected loudly instead of silently
// scheduling a subset of the workload.

func TestAffinityOrderEmptyGraph(t *testing.T) {
	if out := auxAffinityOrder(graph.New()); len(out) != 0 {
		t.Fatalf("empty graph ordered %d nodes", len(out))
	}
}

func TestAffinityOrderSingleNode(t *testing.T) {
	g := graph.New()
	n := g.AddNode(graph.OpEWMul, "only", graph.Tensor{Limbs: 1, N: 4})
	out := auxAffinityOrder(g)
	if len(out) != 1 || out[0] != n {
		t.Fatalf("single-node order wrong: %v", out)
	}
}

func TestAffinityOrderSkipsStructuralNodes(t *testing.T) {
	g := graph.New()
	in := g.AddNode(graph.OpInput, "in", graph.Tensor{Limbs: 1, N: 4})
	mul := g.AddNode(graph.OpEWMul, "mul", graph.Tensor{Limbs: 1, N: 4})
	out := g.AddNode(graph.OpOutput, "out", graph.Tensor{Limbs: 1, N: 4})
	g.Connect(in, mul)
	g.Connect(mul, out)
	order := auxAffinityOrder(g)
	if len(order) != 1 || order[0] != mul {
		t.Fatalf("want only the compute node, got %d nodes", len(order))
	}
}

func TestAffinityOrderCyclicInputPanics(t *testing.T) {
	g := graph.New()
	a := g.AddNode(graph.OpEWAdd, "a", graph.Tensor{Limbs: 1, N: 4})
	b := g.AddNode(graph.OpEWMul, "b", graph.Tensor{Limbs: 1, N: 4})
	g.Connect(a, b)
	g.Connect(b, a)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cyclic graph did not panic")
		}
		if !strings.Contains(r.(string), "cycle") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	auxAffinityOrder(g)
}

func TestAffinityOrderPartialCyclePanics(t *testing.T) {
	// A reachable prefix followed by a cycle: the order must not silently
	// return just the prefix.
	g := graph.New()
	head := g.AddNode(graph.OpEWAdd, "head", graph.Tensor{Limbs: 1, N: 4})
	a := g.AddNode(graph.OpEWMul, "a", graph.Tensor{Limbs: 1, N: 4})
	b := g.AddNode(graph.OpEWMul, "b", graph.Tensor{Limbs: 1, N: 4})
	g.Connect(head, a)
	g.Connect(a, b)
	g.Connect(b, a)
	defer func() {
		if recover() == nil {
			t.Fatal("partial cycle did not panic")
		}
	}()
	auxAffinityOrder(g)
}

// Package sched implements the CROPHE scheduling framework (§V): it
// searches the hierarchical cross-operator dataflow design space —
// sequential execution → temporal pipelining/sharing → spatial
// pipelining/sharing — for a workload graph on a hardware configuration,
// using an analytical cost model, and also implements the MAD baseline
// scheduling policy the paper compares against.
//
// The search follows the paper's bottom-up composition: operators (in a
// deterministic topological order) are grouped into spatial
// pipelining/sharing groups of bounded size, groups are costed with the
// analytical model, and dynamic programming concatenates the best groups
// over the whole graph (§V-D). Redundant subgraphs are costed once via the
// workload's segment × count representation.
package sched

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"crophe/internal/arch"
	"crophe/internal/graph"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// Dataflow selects the scheduling policy.
type Dataflow int

// Scheduling policies.
const (
	// DataflowMAD is the prior-work policy [2]: limited pairwise operator
	// fusion, O(1)/O(β) caching of intermediates, no auxiliary-data
	// sharing, and whole-tensor spills at orientation switches.
	DataflowMAD Dataflow = iota
	// DataflowCROPHE is the full framework of §V-A: fine-grained spatial/
	// temporal pipelining of intermediates and sharing of auxiliaries.
	DataflowCROPHE
)

// String implements fmt.Stringer.
func (d Dataflow) String() string {
	if d == DataflowMAD {
		return "mad"
	}
	return "crophe"
}

// Options tunes a scheduling run.
type Options struct {
	Dataflow     Dataflow
	MaxGroupSize int // spatial group size bound (paper: 7–10)
	Clusters     int // CROPHE-p data-parallel clusters (1 = off)
	// UniformAlloc replaces the load-proportional PE allocation of §IV-B
	// with an equal split — an ablation knob showing why proportional
	// allocation matters for pipeline balance.
	UniformAlloc bool
	// SearchBudget bounds the anytime search: the DP may cost at most this
	// many multi-operator candidate groups before the search is cut and the
	// remaining workload is scheduled with solo groups (always feasible, so
	// a valid best-so-far schedule is still returned, flagged Partial).
	// Zero means unlimited. Solo (k=1) candidates never consume budget —
	// they are the fallback, not the search. The budget is the
	// deterministic twin of a wall-clock deadline: the same budget cuts at
	// the same candidate on every run (see BudgetForDeadline).
	SearchBudget int
}

// DefaultOptions returns the configuration used throughout the evaluation.
func DefaultOptions(d Dataflow) Options {
	return Options{Dataflow: d, MaxGroupSize: 8, Clusters: 1}
}

// Model calibration constants. These stand in for the microarchitectural
// detail of the paper's RTL + trace simulation; they are fixed across all
// designs so comparisons remain apples-to-apples.
const (
	// effPipelined is the PE efficiency inside a fine-grained spatial
	// pipeline (NoC forwarding and allocation rounding overheads).
	effPipelined = 0.85
	// effSoloHomogeneous is the efficiency of mapping a single operator
	// across the whole homogeneous PE array without pipelining — the
	// utilisation problem §VII-D attributes to MAD-on-CROPHE-hardware:
	// MAD's per-operator mapping was designed for few-cluster baselines
	// and leaves most of the large PE array idle.
	effSoloHomogeneous = 0.25
	// effSpecialized is the efficiency of a dedicated functional unit on
	// the baseline accelerators.
	effSpecialized = 0.9
	// prngEvkFactor halves evk DRAM traffic (PRNG regeneration of the
	// random half, applied to all designs, §VI).
	prngEvkFactor = 0.5
	// spillRoundTrip: write + read for materialised tensors.
	spillRoundTrip = 2.0
	// perOpPECap bounds how many PEs one operator's multi-dimensional
	// decomposition can use efficiently (intra-PE lanes × inter-PE NoC ×
	// temporal iteration, §IV-B).
	perOpPECap = 10
	// interSpillFrac bounds how much of the global buffer a single
	// materialised intermediate may claim: several tensors plus streamed
	// auxiliaries are live at once, so a tensor larger than this fraction
	// of the capacity spills to DRAM. This is what breaks coarse-grained
	// dataflow at the small capacities of Figure 10.
	interSpillFrac = 0.33
)

// Traffic accumulates bytes by memory level.
type Traffic struct {
	DRAM      float64
	SRAM      float64
	NoC       float64
	Transpose float64
}

// Add accumulates.
func (t *Traffic) Add(o Traffic) {
	t.DRAM += o.DRAM
	t.SRAM += o.SRAM
	t.NoC += o.NoC
	t.Transpose += o.Transpose
}

// Scale multiplies all levels.
func (t Traffic) Scale(f float64) Traffic {
	return Traffic{DRAM: t.DRAM * f, SRAM: t.SRAM * f, NoC: t.NoC * f, Transpose: t.Transpose * f}
}

// Utilization summarises resource usage over a schedule (Table IV).
type Utilization struct {
	PE   float64
	NoC  float64
	SRAM float64
	DRAM float64
}

// GroupSchedule is one spatial pipelining/sharing group: a contiguous run
// of operators co-resident on the PE array.
type GroupSchedule struct {
	Nodes     []*graph.Node
	TimeSec   float64
	Compute   float64 // seconds bound by PE throughput
	Traffic   Traffic
	Pipelined int // intra-group fine-pipelined edges
	AuxShared int // aux fetches saved by intra-group sharing
	PEAlloc   map[int]int
	// ResidentBytes is the SRAM working set the group occupies while it
	// runs: materialised intermediates (whole tensors) for coarse
	// dataflow, granule buffers for fine-grained pipelines. This crowds
	// out resident auxiliaries (§VII-C).
	ResidentBytes float64
}

// SegmentSchedule is the scheduled form of one workload segment.
type SegmentSchedule struct {
	Name    string
	Count   int
	TimeSec float64 // per execution
	Groups  []GroupSchedule
	Traffic Traffic // per execution
	// Traffic provenance (per execution), for the Figure 11 breakdown.
	AuxDRAM float64 // auxiliary (evk/pt) streaming + fills
	MatDRAM float64 // spilled materialised intermediates
}

// Schedule is the result for a whole workload.
type Schedule struct {
	Workload string
	HW       string
	Opt      Options
	TimeSec  float64
	Traffic  Traffic
	Util     Utilization
	Segments []SegmentSchedule
	// Partial reports that the anytime search was cut — by an exhausted
	// SearchBudget or an expired context — before exploring every
	// candidate group. The schedule is still valid end to end (every
	// operator is scheduled; the unexplored tail runs as solo groups),
	// just not the best the full search would find.
	Partial bool
}

// BudgetForDeadline converts a wall-clock deadline into a deterministic
// candidate budget. Deadlines are quantised to power-of-two buckets so
// that runs whose deadlines land in the same bucket explore exactly the
// same candidates and return bit-identical schedules — wall-clock time
// never decides where the search cuts, only which bucket it starts in.
// The calibration (candidates per millisecond) is deliberately
// conservative so the budget cut fires before the context backstop.
func BudgetForDeadline(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	const candidatesPerMs = 2000
	b := int(d.Milliseconds()) * candidatesPerMs
	if b < 1 {
		b = 1
	}
	bucket := 1
	for bucket <= b/2 {
		bucket *= 2
	}
	return bucket
}

// searchState threads the anytime cut through one Schedule call: the
// remaining multi-operator candidate budget and the context backstop.
// Once cut, the DP stops proposing k>1 groups and finishes the workload
// with solo groups, which are always feasible.
type searchState struct {
	done      <-chan struct{} // nil when the context cannot expire
	budget    int             // remaining k>1 candidates; <0 = unlimited
	cut       bool
	cacheable bool // segment results computed before any cut may be memoised
}

func newSearchState(ctx context.Context, budget int) *searchState {
	if budget <= 0 {
		budget = -1 // unlimited
	}
	return &searchState{done: ctx.Done(), budget: budget, cacheable: true}
}

// charge consumes one unit of multi-operator budget, reporting whether
// the candidate may be explored.
func (st *searchState) charge() bool {
	if st.cut {
		return false
	}
	if st.budget == 0 {
		st.markCut()
		return false
	}
	if st.budget > 0 {
		st.budget--
	}
	return true
}

// poll is the context backstop, checked once per DP row: an expired or
// cancelled context cuts the search exactly like an exhausted budget.
func (st *searchState) poll() {
	if st.cut || st.done == nil {
		return
	}
	select {
	case <-st.done:
		st.markCut()
	default:
	}
}

func (st *searchState) markCut() {
	st.cut = true
	st.cacheable = false
}

// Search telemetry: cumulative, process-global counters of the dataflow
// search (§V-D). They are always-on atomics updated once per scheduled
// segment (not per candidate), so the cost is unmeasurable; crophe-bench
// records per-experiment deltas and a per-run telemetry.Collector (see
// Scheduler.WithTelemetry) mirrors them as counters.
var (
	statCandidates atomic.Uint64 // candidate groups costed by the DP
	statPruned     atomic.Uint64 // candidates rejected as infeasible
	statCacheHits  atomic.Uint64 // segment-schedule memo hits
	statCacheMiss  atomic.Uint64 // segment-schedule memo misses
)

// SearchStats is a snapshot of the cumulative search counters.
type SearchStats struct {
	Candidates  uint64
	Pruned      uint64
	CacheHits   uint64
	CacheMisses uint64
}

// Stats returns the cumulative process-wide search counters.
func Stats() SearchStats {
	return SearchStats{
		Candidates:  statCandidates.Load(),
		Pruned:      statPruned.Load(),
		CacheHits:   statCacheHits.Load(),
		CacheMisses: statCacheMiss.Load(),
	}
}

// Scheduler binds a hardware configuration and options.
type Scheduler struct {
	HW  *arch.HWConfig
	Opt Options

	// tel, when enabled, receives per-run search counters (candidates
	// explored, pruned, memo hits). Set with WithTelemetry.
	tel *telemetry.Collector

	// priceHW, when set, re-prices the chosen group compositions on a
	// second (typically derated) configuration. Set with WithPricing.
	priceHW *arch.HWConfig

	// segCache memoises segment schedules by structural fingerprint —
	// the paper's redundancy merge ("searches only once", §V-D). Keyed
	// per (fingerprint, hardware identity, cluster count); the Scheduler
	// is bound to one hardware configuration and option set, so the
	// fingerprint alone suffices within one instance.
	segCache map[segKey]*SegmentSchedule
}

type segKey struct {
	fp       string
	sramMB   float64
	clusters int
	count    int // residency amortisation depends on the repetition count
}

// New creates a scheduler.
func New(hw *arch.HWConfig, opt Options) *Scheduler {
	if opt.MaxGroupSize < 1 {
		opt.MaxGroupSize = 1
	}
	if opt.Clusters < 1 {
		opt.Clusters = 1
	}
	return &Scheduler{HW: hw, Opt: opt, segCache: make(map[segKey]*SegmentSchedule)}
}

// WithTelemetry attaches a collector that receives the run's search
// counters (sched/candidates, sched/pruned, sched/seg_cache_hits,
// sched/seg_cache_misses). Returns the scheduler for chaining:
//
//	sched.New(hw, opt).WithTelemetry(tel).Run(w)
//
// A nil collector leaves telemetry disabled.
func (s *Scheduler) WithTelemetry(c *telemetry.Collector) *Scheduler {
	s.tel = c
	return s
}

// WithPricing splits the schedule into a composition search and a cost
// model: group compositions are searched on the scheduler's own (base)
// configuration, then the chosen groups are re-priced on hw — the
// degraded effective view of a faulted machine. The split is what makes
// graceful degradation monotone: the DP optimises the sum of group
// times, but the final segment cost adds composition-dependent
// residency and spill terms, so letting a derated view steer the search
// can land on a composition that happens to beat the healthy one.
// Pricing a fault-independent composition on the derated view charges
// every lost resource without that luck. Feasibility is checked against
// the pricing view (a dead resource class is ErrInfeasible). A nil hw
// restores single-configuration behaviour. Returns the scheduler for
// chaining.
func (s *Scheduler) WithPricing(hw *arch.HWConfig) *Scheduler {
	s.priceHW = hw
	return s
}

// Run schedules a workload and returns the full result, panicking on the
// error paths of Schedule — a dead resource class or a cyclic workload
// graph, both invariant violations for the healthy configurations and
// well-formed workloads of the evaluation. Degraded-mode callers (fault
// sweeps, anytime search) use Schedule directly.
func (s *Scheduler) Run(w *workload.Workload) *Schedule {
	out, err := s.Schedule(context.Background(), w)
	if err != nil {
		panic(fmt.Sprintf("sched: Run(%s on %s): %v", w.Name, s.HW.Name, err))
	}
	return out
}

// Schedule schedules a workload and returns the full result. With
// Clusters > 1 (CROPHE-p), the PE array is statically partitioned; each
// cluster runs independent data-parallel instances and the auxiliary
// constants are multicast once to all clusters, so per-task time divides
// by the cluster count (bounded by the workload's available data
// parallelism).
//
// Schedule is the anytime entry point: an exhausted Opt.SearchBudget or
// an expired/cancelled ctx cuts the candidate search, and the remaining
// operators are scheduled as solo groups — still a valid end-to-end
// schedule, returned with Partial set, never an error. Errors are
// reserved for workloads this machine cannot run at all: a hardware
// configuration with a dead resource class (errors.Is ErrInfeasible) or
// a cyclic segment graph (*CycleError).
func (s *Scheduler) Schedule(ctx context.Context, w *workload.Workload) (*Schedule, error) {
	price := s.priceHW
	if price == nil {
		price = s.HW
	}
	// Feasibility is a property of the machine the schedule will run on
	// — the pricing (effective) view when one is set.
	if err := validateHW(price); err != nil {
		return nil, err
	}
	st := newSearchState(ctx, s.Opt.SearchBudget)
	hw := s.HW
	clusters := s.Opt.Clusters
	if clusters > w.DataParallel {
		clusters = w.DataParallel
	}
	if clusters > hw.NumPEs {
		clusters = hw.NumPEs
	}
	if clusters < 1 {
		clusters = 1
	}
	clusterHW := clusterView(hw, clusters)
	clusterPrice := clusterHW
	if price != hw {
		clusterPrice = clusterView(price, clusters)
	}

	out := &Schedule{Workload: w.Name, HW: hw.Name, Opt: s.Opt}
	var busyPE, busyNoC, busySRAM, busyDRAM float64
	for _, seg := range w.Segments {
		ss, err := s.scheduleSegment(clusterHW, clusterPrice, seg, clusters, st)
		if err != nil {
			return nil, err
		}
		out.Segments = append(out.Segments, ss)
		out.TimeSec += ss.TimeSec * float64(ss.Count)
		out.Traffic.Add(ss.Traffic.Scale(float64(ss.Count)))
		c := float64(ss.Count)
		for _, g := range ss.Groups {
			busyPE += g.Compute * c
		}
		busyNoC += ss.Traffic.NoC / nocBandwidth(clusterPrice) * c
		busySRAM += ss.Traffic.SRAM / (clusterPrice.SRAMBandwidthTBs * 1e12) * c
		busyDRAM += ss.Traffic.DRAM / (clusterPrice.DRAMBandwidthTBs * 1e12) * c
	}
	// CROPHE-p: per-task time divides by the active clusters.
	out.TimeSec /= float64(clusters)

	if out.TimeSec > 0 {
		wall := out.TimeSec * float64(clusters) // wall time per cluster batch
		_ = busyPE
		out.Util = Utilization{
			// PE utilisation is useful work over chip peak — the metric
			// under which Table IV's specialised baselines score low
			// (their idle unit classes count as waste).
			PE:   clampFrac(float64(w.TotalModMuls()) / (price.PeakModMulsPerSec() * out.TimeSec)),
			NoC:  clampFrac(busyNoC / wall),
			SRAM: clampFrac(busySRAM / wall),
			DRAM: clampFrac(busyDRAM / wall / float64(clusters)),
		}
	}
	out.Partial = st.cut
	if st.cut && s.tel.Enabled() {
		s.tel.EmitCounter("sched/search_cut", 1)
	}
	return out, nil
}

// clusterView is the per-cluster slice of a configuration under static
// partitioning (CROPHE-p): compute, buffer capacity and bandwidths all
// divide by the cluster count. DRAM bandwidth is chip-wide; each cluster
// sees its slice for private data, but shared aux is fetched once
// (handled at the segment level).
func clusterView(hw *arch.HWConfig, clusters int) *arch.HWConfig {
	if clusters <= 1 {
		return hw
	}
	c := hw.Clone()
	c.NumPEs = hw.NumPEs / clusters
	c.SRAMCapacityMB = hw.SRAMCapacityMB / float64(clusters)
	c.SRAMBandwidthTBs = hw.SRAMBandwidthTBs / float64(clusters)
	c.DRAMBandwidthTBs = hw.DRAMBandwidthTBs / float64(clusters)
	return c
}

func clampFrac(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

// scheduleSegment runs the DP group composition over one segment graph,
// memoised by structural fingerprint. Once the anytime search is cut,
// the memo is bypassed in both directions: degraded (solo-group)
// schedules must not poison the cache, and cached full-search results
// must not leak into a cut run — the cut point, not wall-clock luck,
// decides what a budgeted run returns.
func (s *Scheduler) scheduleSegment(hw, price *arch.HWConfig, seg workload.Segment, clusters int, st *searchState) (SegmentSchedule, error) {
	key := segKey{fp: seg.G.Fingerprint(), sramMB: hw.SRAMCapacityMB, clusters: clusters, count: seg.Count}
	if cached, ok := s.segCache[key]; ok && !st.cut {
		statCacheHits.Add(1)
		if s.tel.Enabled() {
			s.tel.EmitCounter("sched/seg_cache_hits", 1)
		}
		out := *cached
		out.Name = seg.Name
		out.Count = seg.Count
		return out, nil
	}
	statCacheMiss.Add(1)
	if s.tel.Enabled() {
		s.tel.EmitCounter("sched/seg_cache_misses", 1)
	}
	out, err := s.scheduleSegmentUncached(hw, price, seg, clusters, st)
	if err != nil {
		return SegmentSchedule{}, err
	}
	if st.cacheable {
		cached := out
		s.segCache[key] = &cached
	}
	return out, nil
}

func (s *Scheduler) scheduleSegmentUncached(hw, price *arch.HWConfig, seg workload.Segment, clusters int, st *searchState) (SegmentSchedule, error) {
	var nodes []*graph.Node
	if s.Opt.Dataflow == DataflowCROPHE {
		// Aux-affinity order: place consumers of the same auxiliary data
		// adjacently (when dependencies allow) so spatial sharing groups
		// can stream one evk to all of them — the sharing opportunity
		// hybrid rotation creates across coarse steps (§V-C).
		ordered, err := auxAffinityOrder(seg.G)
		if err != nil {
			if ce, ok := err.(*CycleError); ok {
				ce.Segment = seg.Name
			}
			return SegmentSchedule{}, err
		}
		nodes = ordered
	} else {
		nodes = seg.G.ComputeNodes()
	}
	n := len(nodes)
	if n == 0 {
		return SegmentSchedule{Name: seg.Name, Count: seg.Count}, nil
	}

	maxK := s.Opt.MaxGroupSize
	if s.Opt.Dataflow == DataflowMAD {
		maxK = 2 // MAD: only pairwise fusion of adjacent operators
	}

	// DP over the topological order: best[i] = minimal time to schedule
	// nodes[0..i).
	type cell struct {
		time   float64
		prev   int
		group  *GroupSchedule
		hasVal bool
	}
	best := make([]cell, n+1)
	best[0] = cell{hasVal: true}
	// Search telemetry accumulates locally inside the DP loop (the hot
	// path) and publishes once per segment below.
	var candidates, pruned uint64
	for i := 0; i < n; i++ {
		if !best[i].hasVal {
			continue
		}
		st.poll()
		for k := 1; k <= maxK && i+k <= n; k++ {
			// Solo groups are the always-feasible fallback and run even
			// after the anytime cut; multi-operator candidates are the
			// search proper and each costs one unit of budget.
			if k > 1 && !st.charge() {
				break
			}
			candidates++
			g := s.costGroup(hw, seg.G, nodes[i:i+k])
			if g == nil {
				pruned++
				continue
			}
			t := best[i].time + g.TimeSec
			if !best[i+k].hasVal || t < best[i+k].time {
				best[i+k] = cell{time: t, prev: i, group: g, hasVal: true}
			}
		}
	}
	statCandidates.Add(candidates)
	statPruned.Add(pruned)
	if s.tel.Enabled() {
		s.tel.EmitCounter("sched/candidates", float64(candidates))
		s.tel.EmitCounter("sched/pruned", float64(pruned))
	}
	if !best[n].hasVal {
		// Cannot happen while solo groups are unprunable, but the search
		// contract allows costGroup to reject, so fail loudly rather than
		// dereference a hole in the DP table.
		return SegmentSchedule{}, &InfeasibleError{
			HW:     hw.Name,
			Reason: fmt.Sprintf("no feasible group composition for segment %q", seg.Name),
		}
	}

	// Reconstruct groups.
	var groups []GroupSchedule
	for i := n; i > 0; {
		c := best[i]
		groups = append([]GroupSchedule{*c.group}, groups...)
		i = c.prev
	}

	// Degraded pricing (see WithPricing): the composition above was
	// searched on the base configuration; re-cost the chosen groups on
	// the effective view so the schedule charges every lost resource.
	// The PE allocation keeps the base layout — placement geometry is a
	// logical-design decision that must not re-roll under faults (the
	// mapper remaps failed rows onto survivors); the lost compute is
	// charged through the re-priced stage times.
	if price != hw {
		for gi := range groups {
			g := s.costGroup(price, seg.G, groups[gi].Nodes)
			g.PEAlloc = groups[gi].PEAlloc
			groups[gi] = *g
		}
		hw = price
	}

	ss := SegmentSchedule{Name: seg.Name, Count: seg.Count, Groups: groups}
	var comp float64
	for _, g := range groups {
		ss.Traffic.Add(g.Traffic)
		comp += g.Compute
	}

	// ---- Cross-group intermediates: temporal pipelining vs residency.
	//
	// A single-consumer, stream-compatible boundary edge is temporally
	// pipelined through the global buffer at granule size (CROPHE's
	// temporal pipelining; MAD's O(1)/O(β) caching is the same mechanism
	// restricted to its own streamable pairs). Multi-consumer tensors —
	// the BSGS baby ciphertexts reused across every giant step, hoisted
	// digits, psum accumulators — must stay materialised over their whole
	// live range; when their peak footprint exceeds the buffer, the
	// overflow round-trips through DRAM. This capacity pressure dominates
	// the Figure 10 sweep.
	fine := s.Opt.Dataflow == DataflowCROPHE
	groupOf := map[int]int{}
	for gi, g := range groups {
		for _, n := range g.Nodes {
			groupOf[n.ID] = gi
		}
	}
	wb := hw.WordBytes()
	var tensors []matTensor
	for _, n := range nodes {
		var crossConsumers []*graph.Edge
		for _, e := range n.OutEdges {
			if e.Class != graph.Intermediate || !e.To.Kind.IsCompute() {
				continue
			}
			if groupOf[e.To.ID] != groupOf[n.ID] {
				crossConsumers = append(crossConsumers, e)
			}
		}
		if len(crossConsumers) == 0 {
			continue
		}
		bytes := n.Out.Bytes(wb)
		if len(crossConsumers) == 1 && canPipeline(crossConsumers[0], hw) {
			// Temporal pipelining: the consumer runs next on the same
			// PEs, so chunks stay in the register files / local buffers
			// (MAD's O(1)/O(β) caching is the restricted special case).
			ss.Traffic.NoC += 2 * bytes
			continue
		}
		if len(crossConsumers) == 1 &&
			(n.Kind == graph.OpTranspose || crossConsumers[0].To.Kind == graph.OpTranspose) &&
			hw.TransposeMB > 0 && perLimbBytes(n.Out, wb) <= hw.TransposeMB*1e6 {
			// Edges into/out of a transpose run through the dedicated
			// transpose unit regardless of group boundaries (§IV-B).
			ss.Traffic.Transpose += 2 * bytes
			continue
		}
		// Materialised for the span producer group → last consumer group.
		first := groupOf[n.ID]
		last := first
		allStream := true
		for _, e := range crossConsumers {
			if gi := groupOf[e.To.ID]; gi > last {
				last = gi
			}
			if !canPipeline(e, hw) {
				allStream = false
			}
		}
		if fine && allStream {
			// Multicast streaming (Figure 6): every consumer streams at a
			// matched loop order, so the producer's chunks are multicast
			// over the NoC (tree multicast, §IV-A) at granule size and
			// never materialised — the hoisted digits / baby-ciphertext
			// case, and (with NTT decomposition) whole key-switch
			// pipelines.
			ss.Traffic.NoC += bytes * float64(1+len(crossConsumers))
			continue
		}
		rangeFrac := float64(last-first+1) / float64(len(groups))
		tensors = append(tensors, matTensor{
			bytes:    bytes,
			traffic:  bytes * float64(1+len(crossConsumers)),
			weighted: bytes * rangeFrac,
		})
	}
	// Greedy residency: keep the hottest tensors (traffic per occupied
	// byte) in the buffer share reserved for intermediates; the rest
	// round-trip through DRAM.
	sortTensors(tensors)
	capBytes := hw.SRAMCapacityMB * 1e6
	interBudget := capBytes * interSpillFrac * 2
	var sramShare float64
	for _, t := range tensors {
		if t.weighted <= interBudget {
			interBudget -= t.weighted
			sramShare += t.weighted
			ss.Traffic.SRAM += t.traffic
		} else {
			ss.Traffic.DRAM += t.traffic
			ss.MatDRAM += t.traffic
		}
	}

	// ---- Auxiliary data: residency and sharing (the §V-A sharing axis).
	//
	// Every policy may keep auxiliaries resident in the global buffer —
	// this is how the large-SRAM baselines hold their evk working sets.
	// The policies differ in how many times an aux must be *delivered*:
	// MAD delivers once per consuming operator; CROPHE's fine-grained
	// spatial/temporal sharing delivers once per co-running group.
	aux := s.collectAuxUses(hw, seg, groups)
	// The aux residency budget is the capacity left after the resident
	// intermediates and the largest granule working set any group pins —
	// the §VII-C effect: fine-grained pipelining buffers only granules,
	// so most of the buffer can hold evks; coarse dataflow pins tensors.
	var maxWS float64
	for _, g := range groups {
		if g.ResidentBytes > maxWS {
			maxWS = g.ResidentBytes
		}
	}
	budget := capBytes - sramShare - maxWS
	if budget < 0 {
		budget = 0
	}
	auxT := Traffic{}
	// Greedy residency by saved bytes (uses−1)·size, a knapsack heuristic.
	order := make([]int, len(aux))
	for i := range order {
		order[i] = i
	}
	sortBySavings(aux, order, seg.Count)
	for _, i := range order {
		a := aux[i]
		totalUses := float64(a.uses * seg.Count)
		if a.bytes <= budget && totalUses > 1 {
			// Resident: one DRAM fill, then on-chip reads per use. The
			// per-execution share of the single fill is 1/Count.
			budget -= a.bytes
			auxT.DRAM += a.bytes / float64(seg.Count)
			auxT.SRAM += a.bytes * float64(a.uses)
			auxT.NoC += a.bytes * float64(a.uses)
		} else {
			// Streamed from DRAM on every use.
			auxT.DRAM += a.bytes * float64(a.uses)
			auxT.NoC += a.bytes * float64(a.uses)
		}
	}
	// CROPHE-p: auxiliaries are fetched and multicast once to all
	// clusters (tree multicast in the NoC, §IV-A), so the per-task DRAM,
	// buffer-read and NoC shares all divide by the cluster count.
	if clusters > 1 {
		c := float64(clusters)
		auxT.DRAM /= c
		auxT.SRAM /= c
		auxT.NoC /= c
	}
	ss.AuxDRAM = auxT.DRAM
	ss.Traffic.Add(auxT)

	// The segment is bound by the max of compute and each memory level.
	ss.TimeSec = maxOf(
		comp,
		ss.Traffic.DRAM/(hw.DRAMBandwidthTBs*1e12),
		ss.Traffic.SRAM/(hw.SRAMBandwidthTBs*1e12),
		ss.Traffic.NoC/nocBandwidth(hw),
		ss.Traffic.Transpose/(hw.SRAMBandwidthTBs*1e12*0.5),
	)
	return ss, nil
}

type auxUse struct {
	id    string
	bytes float64
	uses  int
}

// collectAuxUses gathers per-aux delivery counts under the active policy.
func (s *Scheduler) collectAuxUses(hw *arch.HWConfig, seg workload.Segment, groups []GroupSchedule) []auxUse {
	fine := s.Opt.Dataflow == DataflowCROPHE
	groupOf := map[int]int{}
	for gi, g := range groups {
		for _, n := range g.Nodes {
			groupOf[n.ID] = gi
		}
	}
	type rec struct {
		bytes  float64
		ops    int
		groups map[int]bool
	}
	recs := map[string]*rec{}
	for _, n := range seg.G.Nodes {
		for _, e := range n.OutEdges {
			if e.Class != graph.Auxiliary {
				continue
			}
			r := recs[e.AuxID]
			if r == nil {
				b := e.Shape.Bytes(hw.WordBytes())
				if isEvk(e.AuxID) {
					b *= prngEvkFactor // PRNG regeneration of the a-half
				} else if isPlaintext(e.AuxID) && e.Shape.Limbs > 1 {
					// OF-Limb [34]: plaintexts are stored at one limb
					// and extended on-chip.
					b /= float64(e.Shape.Limbs)
				}
				r = &rec{bytes: b, groups: map[int]bool{}}
				recs[e.AuxID] = r
			}
			r.ops++
			r.groups[groupOf[e.To.ID]] = true
		}
	}
	out := make([]auxUse, 0, len(recs))
	for id, r := range recs {
		uses := r.ops
		if fine {
			uses = len(r.groups)
		}
		out = append(out, auxUse{id: id, bytes: r.bytes, uses: uses})
	}
	// The residency greedy sorts by savings with a stable tie order, so
	// the collection order must itself be deterministic or ties resolve
	// by map iteration order and the chosen residency set flaps run to
	// run.
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// matTensor is a materialised cross-group intermediate: its size, total
// traffic, and average buffer occupancy (size × live-range fraction).
type matTensor struct {
	bytes    float64
	traffic  float64
	weighted float64
}

// sortTensors orders materialised tensors by descending traffic per
// occupied byte, so the residency greedy keeps the hottest data on-chip.
func sortTensors(ts []matTensor) {
	sort.Slice(ts, func(i, j int) bool {
		wi, wj := ts[i].weighted, ts[j].weighted
		if wi == 0 {
			wi = 1
		}
		if wj == 0 {
			wj = 1
		}
		return ts[i].traffic/wi > ts[j].traffic/wj
	})
}

// sortBySavings orders aux indices by descending residency benefit.
func sortBySavings(aux []auxUse, order []int, count int) {
	saving := func(i int) float64 {
		return float64(aux[i].uses*count-1) * aux[i].bytes
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && saving(order[j]) > saving(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func isEvk(auxID string) bool {
	return len(auxID) >= 4 && auxID[:4] == "evk:"
}

func isPlaintext(auxID string) bool {
	return len(auxID) >= 3 && auxID[:3] == "pt:"
}

// costGroup evaluates one candidate spatial group. Returns nil if the
// group is infeasible (never happens with the current constraints, but the
// search contract allows rejection).
func (s *Scheduler) costGroup(hw *arch.HWConfig, g *graph.Graph, nodes []*graph.Node) *GroupSchedule {
	inGroup := make(map[*graph.Node]bool, len(nodes))
	for _, n := range nodes {
		inGroup[n] = true
	}
	fine := s.Opt.Dataflow == DataflowCROPHE

	gs := &GroupSchedule{Nodes: nodes, PEAlloc: map[int]int{}}

	// --- Compute time --------------------------------------------------
	var totalLoad float64 // modmul-equivalents
	classLoad := map[arch.OpClass]float64{}
	for _, n := range nodes {
		load := effLoad(n)
		totalLoad += load
		classLoad[opClassOf(n.Kind)] += load
	}
	freq := hw.FreqGHz * 1e9
	lanesTotal := float64(hw.TotalLanes())
	var computeSec float64
	switch {
	case !hw.Homogeneous:
		// Specialised baseline: each class limited to its FU share; MAD
		// fusion overlaps classes within the (small) group.
		for c, load := range classLoad {
			share := hw.FUShare[c]
			if share <= 0 {
				share = 0.05 // minimal fallback path
			}
			t := load / (lanesTotal * share * effSpecialized * freq)
			if t > computeSec {
				computeSec = t
			}
		}
	case fine && len(nodes) > 1:
		// Fine-grained pipeline: PEs allocated proportional to load
		// (§IV-B); pipeline throughput set by the slowest stage after
		// integer allocation. Each operator's multi-dimensional
		// decomposition spreads over at most perOpPECap PEs, so small
		// groups cannot fill a large array — the utilisation gap CROPHE-p
		// closes by partitioning the chip into clusters.
		usable := len(nodes) * perOpPECap
		if usable > hw.NumPEs {
			usable = hw.NumPEs
		}
		var allocs []int
		if s.Opt.UniformAlloc {
			allocs = make([]int, len(nodes))
			for i := range allocs {
				allocs[i] = usable / len(nodes)
				if allocs[i] < 1 {
					allocs[i] = 1
				}
			}
		} else {
			allocs = allocatePEs(nodes, usable)
		}
		for i, n := range nodes {
			gs.PEAlloc[n.ID] = allocs[i]
			load := effLoad(n)
			if load == 0 {
				continue
			}
			t := load / (float64(allocs[i]) * float64(hw.Lanes) * effPipelined * freq)
			if t > computeSec {
				computeSec = t
			}
		}
	default:
		// Solo operators on the homogeneous array execute sequentially
		// at reduced efficiency.
		computeSec = totalLoad / (lanesTotal * effSoloHomogeneous * freq)
	}
	gs.Compute = computeSec

	// --- Traffic --------------------------------------------------------
	// Auxiliary (evk/plaintext/BConv-matrix) traffic is accounted at the
	// segment level (residency and sharing are cross-group decisions);
	// costGroup handles intermediates, compute and on-chip movement.
	wb := hw.WordBytes()
	var tr Traffic
	transCapBytes := hw.TransposeMB * 1e6

	for _, n := range nodes {
		for _, e := range n.InEdges {
			bytes := e.Shape.Bytes(wb)
			switch e.Class {
			case graph.Auxiliary:
				// Counted in scheduleSegment (residency & sharing).
			case graph.Intermediate:
				if !e.From.Kind.IsCompute() {
					// Segment input: produced by the preceding segment,
					// read from the global buffer (the segment split is a
					// search artifact, not a spill).
					tr.SRAM += bytes
					continue
				}
				if !inGroup[e.From] {
					// Cross-group edge: accounted in the segment-level
					// boundary pass (live-range residency).
					continue
				}
				if fine && canPipeline(e, hw) {
					// Fine-grained forwarding over the NoC: only a
					// granule is ever buffered.
					tr.NoC += bytes
					gs.Pipelined++
					gs.ResidentBytes += perLimbBytes(e.Shape, wb)
				} else if !hw.Homogeneous {
					// Specialised baseline under MAD fusion: the fused
					// pair forwards through the dedicated inter-unit
					// datapath, buffering a tensor slice.
					tr.NoC += bytes
					gs.ResidentBytes += perLimbBytes(e.Shape, wb)
				} else if e.From.Kind == graph.OpTranspose || e.To.Kind == graph.OpTranspose {
					// Through the transpose unit when the working chunk
					// fits; else the global buffer.
					if perLimbBytes(e.Shape, wb) <= transCapBytes && transCapBytes > 0 {
						tr.Transpose += bytes * spillRoundTrip
					} else {
						tr.SRAM += bytes * spillRoundTrip
						gs.ResidentBytes += bytes
					}
				} else {
					// Materialise in the global buffer (orientation
					// switch or coarse-grained step within the group);
					// tensors too large for their buffer share spill to
					// DRAM — the §VII-D penalty of running MAD's
					// per-operator mapping on the homogeneous array.
					if bytes <= hw.SRAMCapacityMB*1e6*interSpillFrac {
						tr.SRAM += bytes * spillRoundTrip
						gs.ResidentBytes += bytes
					} else {
						tr.DRAM += bytes * spillRoundTrip
					}
				}
			}
		}
		// Chip outputs are written back to the global buffer for the next
		// segment.
		for _, e := range n.OutEdges {
			if e.Class == graph.Intermediate && !e.To.Kind.IsCompute() {
				tr.SRAM += e.Shape.Bytes(wb)
			}
		}
	}
	gs.Traffic = tr

	gs.TimeSec = maxOf(
		computeSec,
		tr.DRAM/(hw.DRAMBandwidthTBs*1e12),
		tr.SRAM/(hw.SRAMBandwidthTBs*1e12),
		tr.NoC/nocBandwidth(hw),
		tr.Transpose/(hw.SRAMBandwidthTBs*1e12*0.5),
	)
	return gs
}

// canPipeline reports whether an intermediate edge supports fine-grained
// forwarding: both endpoints stream (matched top-level loops, §V-A).
// On the homogeneous CROPHE array, automorphisms run in the inter-lane
// shift networks while data moves [19] (Figure 6 shows Auto inside a
// spatial pipeline), so they do not break the stream there.
func canPipeline(e *graph.Edge, hw *arch.HWConfig) bool {
	breaks := func(k graph.OpKind) bool {
		if hw.Homogeneous && k == graph.OpAutomorph {
			return false
		}
		return k.BreaksOrientation()
	}
	return !breaks(e.From.Kind) && !breaks(e.To.Kind)
}

// perLimbBytes is the buffering requirement of one limb-chunk of a tensor
// (what the transpose unit must hold at a time).
func perLimbBytes(t graph.Tensor, wb float64) float64 {
	return float64(t.N) * wb
}

// effLoad is the effective PE load of an operator in modmul-equivalents.
// Four-step sub-NTTs that are too short to fill the lane butterflies run
// at reduced efficiency (§V-D: "N1 and N2 should not be too small;
// otherwise the decomposed small NTTs cannot fully utilize the multiple
// lanes in the PE").
func effLoad(n *graph.Node) float64 {
	load := float64(n.ModMuls()) + float64(n.MoveElems())*0.25
	if (n.Kind == graph.OpNTTCol || n.Kind == graph.OpNTTRow) && n.SubNTTLen > 0 && n.SubNTTLen < 32 {
		load *= 2
	}
	return load
}

// allocatePEs distributes PEs to group operators proportionally to their
// load with a minimum of one each (§IV-B).
func allocatePEs(nodes []*graph.Node, pes int) []int {
	loads := make([]float64, len(nodes))
	var total float64
	for i, n := range nodes {
		loads[i] = effLoad(n)
		total += loads[i]
	}
	alloc := make([]int, len(nodes))
	remaining := pes
	if total == 0 {
		for i := range alloc {
			alloc[i] = 1
		}
		return alloc
	}
	for i := range nodes {
		a := int(math.Floor(loads[i] / total * float64(pes)))
		if a < 1 {
			a = 1
		}
		alloc[i] = a
		remaining -= a
	}
	// Hand out leftovers (or reclaim overdraft) to the heaviest stages.
	for remaining != 0 {
		idx, bestRatio := -1, -1.0
		for i := range nodes {
			var ratio float64
			if remaining > 0 {
				ratio = loads[i] / float64(alloc[i])
				if ratio > bestRatio {
					bestRatio, idx = ratio, i
				}
			} else if alloc[i] > 1 {
				ratio = float64(alloc[i]) / (loads[i] + 1)
				if ratio > bestRatio {
					bestRatio, idx = ratio, i
				}
			}
		}
		if idx < 0 {
			break
		}
		if remaining > 0 {
			alloc[idx]++
			remaining--
		} else {
			alloc[idx]--
			remaining++
		}
	}
	return alloc
}

// opClassOf maps an operator kind to the baseline functional-unit class.
func opClassOf(k graph.OpKind) arch.OpClass {
	switch k {
	case graph.OpNTT, graph.OpINTT, graph.OpNTTCol, graph.OpNTTRow:
		return arch.ClassNTT
	case graph.OpBConv, graph.OpInP:
		return arch.ClassBConv
	case graph.OpAutomorph, graph.OpTranspose:
		return arch.ClassAutomorph
	default:
		return arch.ClassEW
	}
}

// nocBandwidth returns the effective aggregate on-chip forwarding
// bandwidth in bytes/s. Baseline designs without a mesh use their local
// buffer / register-file bandwidth (the second SRAM term of Table I); mesh
// designs are bounded by both the aggregate link capacity and the lane
// register-file bandwidth.
func nocBandwidth(hw *arch.HWConfig) float64 {
	local := hw.LocalBWTBs * 1e12
	if local <= 0 {
		local = hw.SRAMBandwidthTBs * 1e12
	}
	if hw.NoCLinkGBs <= 0 {
		return local
	}
	links := float64(hw.NumPEs) // effective concurrently-usable links
	if links < 1 {
		links = 1
	}
	mesh := hw.NoCLinkGBs * 1e9 * links / 2
	if mesh < local {
		return mesh
	}
	return local
}

func maxOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders a one-line summary.
func (s *Schedule) String() string {
	return fmt.Sprintf("%s on %s [%s, groups≤%d, clusters=%d]: %.3f ms (DRAM %.1f MB, SRAM %.1f MB)",
		s.Workload, s.HW, s.Opt.Dataflow, s.Opt.MaxGroupSize, s.Opt.Clusters,
		s.TimeSec*1e3, s.Traffic.DRAM/1e6, s.Traffic.SRAM/1e6)
}

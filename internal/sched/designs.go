package sched

import (
	"crophe/internal/arch"
	"crophe/internal/workload"
)

// Design is one evaluated design point of the paper: a hardware
// configuration plus a scheduling policy and the feature flags of the
// Figure 11 ablation.
type Design struct {
	Name      string
	HW        *arch.HWConfig
	Dataflow  Dataflow
	NTTDec    bool // §V-B NTT decomposition
	HybridRot bool // §V-C hybrid rotation
	Clusters  int  // >1 enables CROPHE-p partitioning
}

// WorkloadFactory builds a workload for a given rotation structure — the
// graph-level transform the scheduler enumerates for hybrid rotation
// (§V-D: "we enumerate it at the very beginning and generate one
// computational graph for each r_Hyb").
type WorkloadFactory func(mode workload.RotMode, rHyb int) *workload.Workload

// rHybCandidates is the stride sweep for hybrid rotation.
var rHybCandidates = []int{2, 4, 8}

// Evaluate schedules the design over the best rotation structure it is
// allowed to use and returns the winning schedule:
//
//   - MAD and Base pick the better of Min-KS and Hoisting (the paper notes
//     Min-KS wins with large SRAM, Hoisting with small).
//   - HybridRot additionally sweeps r_Hyb.
//   - NTTDec applies the four-step rewrite before scheduling.
func (d Design) Evaluate(factory WorkloadFactory) *Schedule {
	opt := DefaultOptions(d.Dataflow)
	if d.Clusters > 1 {
		opt.Clusters = d.Clusters
	}
	sch := New(d.HW, opt)

	type cand struct {
		mode workload.RotMode
		r    int
	}
	cands := []cand{{workload.RotMinKS, 0}, {workload.RotHoisted, 0}}
	if d.HybridRot {
		for _, r := range rHybCandidates {
			cands = append(cands, cand{workload.RotHybrid, r})
		}
	}

	var best *Schedule
	for _, c := range cands {
		w := factory(c.mode, c.r)
		if d.NTTDec {
			w = w.DecomposeNTTs()
		}
		res := sch.Run(w)
		if best == nil || res.TimeSec < best.TimeSec {
			best = res
		}
	}
	best.Workload = factory(workload.RotMinKS, 0).Name
	return best
}

// PaperDesigns returns the four Figure 9 design points for a CROPHE
// variant paired against a baseline accelerator.
func PaperDesigns(croHW, baseHW *arch.HWConfig) []Design {
	return []Design{
		{Name: baseHW.Name + "+MAD", HW: baseHW, Dataflow: DataflowMAD},
		{Name: croHW.Name + "+MAD", HW: croHW, Dataflow: DataflowMAD},
		{Name: croHW.Name, HW: croHW, Dataflow: DataflowCROPHE, NTTDec: true, HybridRot: true},
		{Name: croHW.Name + "-p", HW: croHW, Dataflow: DataflowCROPHE, NTTDec: true, HybridRot: true, Clusters: 4},
	}
}

// AblationDesigns returns the Figure 11 ladder on a CROPHE variant:
// MAD → Base → +NTTDec → +HybRot → all.
func AblationDesigns(croHW *arch.HWConfig) []Design {
	return []Design{
		{Name: "MAD", HW: croHW, Dataflow: DataflowMAD},
		{Name: "Base", HW: croHW, Dataflow: DataflowCROPHE},
		{Name: "NTTDec", HW: croHW, Dataflow: DataflowCROPHE, NTTDec: true},
		{Name: "HybRot", HW: croHW, Dataflow: DataflowCROPHE, HybridRot: true},
		{Name: "CROPHE", HW: croHW, Dataflow: DataflowCROPHE, NTTDec: true, HybridRot: true},
	}
}

package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crophe/internal/arch"
	"crophe/internal/graph"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

var testParams = arch.ParamSet{Name: "test", LogN: 14, L: 15, LBoot: 9, DNum: 4, Alpha: 4}

func bootFactory(mode workload.RotMode, rHyb int) *workload.Workload {
	return workload.Bootstrapping(testParams, mode, rHyb)
}

func TestAllocatePEsProportional(t *testing.T) {
	g := graph.New()
	shape := graph.Tensor{Digits: 1, Limbs: 4, N: 4096}
	heavy := g.AddNode(graph.OpNTT, "ntt", shape)
	heavy.SubNTTLen = 4096
	light := g.AddNode(graph.OpEWMul, "mul", shape)

	alloc := allocatePEs([]*graph.Node{heavy, light}, 16)
	if alloc[0]+alloc[1] != 16 {
		t.Fatalf("allocation %v does not sum to 16", alloc)
	}
	if alloc[0] <= alloc[1] {
		t.Fatalf("heavy op got %d PEs vs light %d", alloc[0], alloc[1])
	}
	// NTT load / EW load = (N/2·12)/N = 6 → roughly 6:1 split.
	if alloc[0] < 12 {
		t.Fatalf("heavy op allocation %d too small", alloc[0])
	}
}

func TestAllocatePEsMinimumOne(t *testing.T) {
	g := graph.New()
	shape := graph.Tensor{Digits: 1, Limbs: 1, N: 64}
	zero := g.AddNode(graph.OpAutomorph, "auto", shape) // tiny move load
	big := g.AddNode(graph.OpNTT, "ntt", graph.Tensor{Digits: 1, Limbs: 16, N: 65536})
	big.SubNTTLen = 65536
	alloc := allocatePEs([]*graph.Node{zero, big}, 8)
	if alloc[0] < 1 || alloc[1] < 1 {
		t.Fatalf("allocation %v violates minimum", alloc)
	}
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation %v does not sum", alloc)
	}
}

func TestOpClassMapping(t *testing.T) {
	if opClassOf(graph.OpNTTCol) != arch.ClassNTT {
		t.Error("ntt-col class")
	}
	if opClassOf(graph.OpInP) != arch.ClassBConv {
		t.Error("inp class")
	}
	if opClassOf(graph.OpAutomorph) != arch.ClassAutomorph {
		t.Error("automorph class")
	}
	if opClassOf(graph.OpRescale) != arch.ClassEW {
		t.Error("rescale class")
	}
}

func TestScheduleProducesPositiveTime(t *testing.T) {
	w := bootFactory(workload.RotHoisted, 0)
	s := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE))
	res := s.Run(w)
	if res.TimeSec <= 0 {
		t.Fatal("non-positive schedule time")
	}
	if res.Traffic.DRAM <= 0 {
		t.Fatal("no DRAM traffic modeled")
	}
	if len(res.Segments) != len(w.Segments) {
		t.Fatal("segment count mismatch")
	}
	for _, seg := range res.Segments {
		if seg.TimeSec < 0 {
			t.Fatalf("segment %s negative time", seg.Name)
		}
	}
}

func TestCROPHEBeatsMADOnSameHardware(t *testing.T) {
	// §VII-D: the CROPHE dataflow is necessary to unlock the homogeneous
	// hardware — MAD on CROPHE hardware must be slower.
	w := bootFactory(workload.RotHoisted, 0)
	mad := New(arch.CROPHE64, DefaultOptions(DataflowMAD)).Run(w)
	cro := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Run(w)
	if cro.TimeSec >= mad.TimeSec {
		t.Fatalf("CROPHE %.3gs not faster than MAD %.3gs on same hardware",
			cro.TimeSec, mad.TimeSec)
	}
	// And the gain should be substantial (paper: ≥ 1.5×).
	if mad.TimeSec/cro.TimeSec < 1.2 {
		t.Fatalf("CROPHE speedup over MAD only %.2f×", mad.TimeSec/cro.TimeSec)
	}
}

func TestCROPHEReducesTraffic(t *testing.T) {
	// At constrained capacity (the Figure 11 setting) the CROPHE dataflow
	// must cut accesses to the expensive memory levels.
	w := bootFactory(workload.RotHoisted, 0)
	hw := arch.CROPHE64.WithSRAM(32) // small enough that MAD's live sets spill
	mad := New(hw, DefaultOptions(DataflowMAD)).Run(w)
	cro := New(hw, DefaultOptions(DataflowCROPHE)).Run(w)
	if cro.Traffic.DRAM >= mad.Traffic.DRAM {
		t.Fatalf("CROPHE DRAM %.1f MB not below MAD %.1f MB",
			cro.Traffic.DRAM/1e6, mad.Traffic.DRAM/1e6)
	}
	if cro.Traffic.SRAM >= mad.Traffic.SRAM {
		t.Fatalf("CROPHE SRAM %.1f MB not below MAD %.1f MB",
			cro.Traffic.SRAM/1e6, mad.Traffic.SRAM/1e6)
	}
}

func TestMADonHomogeneousSlowerThanSpecializedBaseline(t *testing.T) {
	// §VII-D: homogeneous hardware + MAD performs worse than the
	// specialised baseline + MAD (the coupling argument).
	w := func(mode workload.RotMode, r int) *workload.Workload {
		return workload.Bootstrapping(arch.ParamsARK, mode, r)
	}
	base := Design{Name: "ARK+MAD", HW: arch.ARK, Dataflow: DataflowMAD}.Evaluate(w)
	croMad := Design{Name: "CROPHE+MAD", HW: arch.CROPHE64, Dataflow: DataflowMAD}.Evaluate(w)
	if croMad.TimeSec <= base.TimeSec {
		t.Fatalf("CROPHE-hw+MAD %.3gs should be slower than ARK+MAD %.3gs",
			croMad.TimeSec, base.TimeSec)
	}
}

func TestFullCROPHEBeatsBaseline(t *testing.T) {
	// Headline result: CROPHE with all optimisations beats the baseline
	// accelerator with MAD scheduling.
	w := func(mode workload.RotMode, r int) *workload.Workload {
		return workload.Bootstrapping(arch.ParamsARK, mode, r)
	}
	base := Design{Name: "ARK+MAD", HW: arch.ARK, Dataflow: DataflowMAD}.Evaluate(w)
	cro := Design{Name: "CROPHE", HW: arch.CROPHE64, Dataflow: DataflowCROPHE,
		NTTDec: true, HybridRot: true}.Evaluate(w)
	speedup := base.TimeSec / cro.TimeSec
	if speedup < 1.2 {
		t.Fatalf("CROPHE speedup over ARK+MAD only %.2f×", speedup)
	}
	t.Logf("CROPHE-64 vs ARK+MAD bootstrapping speedup: %.2f×", speedup)
}

func TestAblationLadderMonotonic(t *testing.T) {
	// Figure 11: Base ≥ NTTDec/HybRot ≥ full CROPHE in runtime (each
	// added optimisation must not hurt, since the scheduler picks the
	// best candidate).
	w := func(mode workload.RotMode, r int) *workload.Workload {
		return workload.Bootstrapping(arch.ParamsSHARP, mode, r)
	}
	hw := arch.CROPHE36.WithSRAM(45) // the small-SRAM setting of Fig. 11
	designs := AblationDesigns(hw)
	times := map[string]float64{}
	for _, d := range designs {
		times[d.Name] = d.Evaluate(w).TimeSec
	}
	if times["Base"] > times["MAD"] {
		t.Errorf("Base %.3g slower than MAD %.3g on CROPHE hw", times["Base"], times["MAD"])
	}
	if times["NTTDec"] > times["Base"] {
		t.Errorf("NTTDec %.3g slower than Base %.3g", times["NTTDec"], times["Base"])
	}
	if times["HybRot"] > times["Base"] {
		t.Errorf("HybRot %.3g slower than Base %.3g", times["HybRot"], times["Base"])
	}
	if times["CROPHE"] > times["NTTDec"] || times["CROPHE"] > times["HybRot"] {
		t.Errorf("full CROPHE %.3g not the fastest", times["CROPHE"])
	}
	t.Logf("ablation times: MAD=%.3g Base=%.3g NTTDec=%.3g HybRot=%.3g CROPHE=%.3g",
		times["MAD"], times["Base"], times["NTTDec"], times["HybRot"], times["CROPHE"])
}

func TestSpeedupGrowsAsSRAMShrinks(t *testing.T) {
	// Figure 10: CROPHE's advantage over the baseline increases at
	// smaller SRAM capacities.
	w := func(mode workload.RotMode, r int) *workload.Workload {
		return workload.Bootstrapping(arch.ParamsSHARP, mode, r)
	}
	speedupAt := func(sram float64) float64 {
		base := Design{HW: arch.SHARP.WithSRAM(sram), Dataflow: DataflowMAD}.Evaluate(w)
		cro := Design{HW: arch.CROPHE36.WithSRAM(sram), Dataflow: DataflowCROPHE,
			NTTDec: true, HybridRot: true}.Evaluate(w)
		return base.TimeSec / cro.TimeSec
	}
	large := speedupAt(180)
	small := speedupAt(45)
	if small <= large {
		t.Fatalf("speedup at 45 MB (%.2f×) not larger than at 180 MB (%.2f×)", small, large)
	}
	t.Logf("speedup: %.2f× @180MB → %.2f× @45MB", large, small)
}

func TestCROPHEPFasterThanCROPHE(t *testing.T) {
	// CROPHE-p must never be slower, and on data-parallel workloads with
	// heavy evk traffic (HELR) the cross-cluster sharing must show a
	// measurable gain.
	for _, tc := range []struct {
		name    string
		factory WorkloadFactory
		minGain float64
	}{
		{"resnet-20", func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(arch.ParamsARK, 20, m, r)
		}, 1.0},
		{"helr", func(m workload.RotMode, r int) *workload.Workload {
			return workload.HELR(arch.ParamsARK, m, r)
		}, 1.05},
	} {
		cro := Design{HW: arch.CROPHE64, Dataflow: DataflowCROPHE, NTTDec: true, HybridRot: true}.Evaluate(tc.factory)
		crop := Design{HW: arch.CROPHE64, Dataflow: DataflowCROPHE, NTTDec: true, HybridRot: true, Clusters: 4}.Evaluate(tc.factory)
		gain := cro.TimeSec / crop.TimeSec
		if gain < tc.minGain {
			t.Errorf("%s: CROPHE-p gain %.3f below %.2f", tc.name, gain, tc.minGain)
		}
	}
}

func TestUtilizationInRange(t *testing.T) {
	w := workload.ResNet(arch.ParamsARK, 20, workload.RotHoisted, 0)
	res := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Run(w)
	u := res.Util
	for name, v := range map[string]float64{"PE": u.PE, "NoC": u.NoC, "SRAM": u.SRAM, "DRAM": u.DRAM} {
		if v < 0 || v > 1 {
			t.Errorf("%s utilisation %.2f out of [0,1]", name, v)
		}
	}
	if u.PE == 0 || u.DRAM == 0 {
		t.Error("zero utilisation is implausible")
	}
}

func TestClustersCappedByDataParallelism(t *testing.T) {
	w := bootFactory(workload.RotHoisted, 0) // DataParallel = 2
	opt := DefaultOptions(DataflowCROPHE)
	opt.Clusters = 8
	res := New(arch.CROPHE64, opt).Run(w)
	opt2 := DefaultOptions(DataflowCROPHE)
	opt2.Clusters = 2
	res2 := New(arch.CROPHE64, opt2).Run(w)
	// With DataParallel=2, clusters=8 must behave like clusters=2.
	if res.TimeSec != res2.TimeSec {
		t.Fatalf("cluster cap not applied: %.3g vs %.3g", res.TimeSec, res2.TimeSec)
	}
}

func TestGroupCostRespectsBaselineShares(t *testing.T) {
	// A pure-NTT group on a specialised design must be limited by the
	// NTT share of the datapath.
	g := graph.New()
	shape := graph.Tensor{Digits: 1, Limbs: 8, N: 65536}
	ntt := g.AddNode(graph.OpNTT, "ntt", shape)
	ntt.SubNTTLen = 65536

	s := New(arch.SHARP, DefaultOptions(DataflowMAD))
	gs := s.costGroup(arch.SHARP, g, []*graph.Node{ntt})
	load := float64(ntt.ModMuls())
	full := load / (float64(arch.SHARP.TotalLanes()) * effSpecialized * arch.SHARP.FreqGHz * 1e9)
	if gs.Compute <= full {
		t.Fatalf("specialised NTT time %.3g should exceed whole-chip time %.3g", gs.Compute, full)
	}
}

func TestDataflowString(t *testing.T) {
	if DataflowMAD.String() != "mad" || DataflowCROPHE.String() != "crophe" {
		t.Fatal("dataflow names")
	}
}

func TestAllocatePEsProperty(t *testing.T) {
	// For random load mixes: allocations sum to the PE budget (when the
	// budget covers the one-PE minimum) and every op gets at least one.
	prop := func(seed int64, nOpsRaw, pesRaw uint8) bool {
		nOps := int(nOpsRaw)%6 + 2 // 2..7 ops
		pes := int(pesRaw)%60 + nOps
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		nodes := make([]*graph.Node, nOps)
		for i := range nodes {
			n := g.AddNode(graph.OpEWMul, "op", graph.Tensor{
				Digits: 1, Limbs: rng.Intn(20) + 1, N: 1 << (6 + rng.Intn(6)),
			})
			nodes[i] = n
		}
		alloc := allocatePEs(nodes, pes)
		sum := 0
		for _, a := range alloc {
			if a < 1 {
				return false
			}
			sum += a
		}
		return sum == pes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSearchStatsAndTelemetryMirror(t *testing.T) {
	w := bootFactory(workload.RotHoisted, 0)
	before := Stats()
	tel := telemetry.New()
	New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).WithTelemetry(tel).Run(w)
	after := Stats()

	candidates := after.Candidates - before.Candidates
	if candidates == 0 {
		t.Fatal("DP explored no candidates")
	}
	if after.CacheMisses == before.CacheMisses {
		t.Fatal("fresh scheduler recorded no segment-cache misses")
	}
	// The per-run collector mirrors the process-global deltas exactly.
	if got := tel.Counter("sched/candidates"); got != float64(candidates) {
		t.Fatalf("sched/candidates %v want %d", got, candidates)
	}
	if got := tel.Counter("sched/pruned"); got != float64(after.Pruned-before.Pruned) {
		t.Fatalf("sched/pruned %v want %d", got, after.Pruned-before.Pruned)
	}
	misses := float64(after.CacheMisses - before.CacheMisses)
	hits := float64(after.CacheHits - before.CacheHits)
	if tel.Counter("sched/seg_cache_misses") != misses || tel.Counter("sched/seg_cache_hits") != hits {
		t.Fatalf("cache counters %v/%v want %v/%v",
			tel.Counter("sched/seg_cache_hits"), tel.Counter("sched/seg_cache_misses"), hits, misses)
	}

	// Telemetry is opt-in: a plain run updates globals but no collector.
	mid := Stats()
	New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Run(w)
	if Stats().Candidates == mid.Candidates {
		t.Fatal("always-on atomics stopped counting without a collector")
	}
}

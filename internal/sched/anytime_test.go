package sched

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"crophe/internal/arch"
	"crophe/internal/workload"
)

// Anytime-search contract: a cut search still schedules every operator,
// the same budget cuts at the same candidate on every run, and neither
// deadlines nor cancellation leak goroutines.

func anytimeWorkload() *workload.Workload {
	return workload.Bootstrapping(testParams, workload.RotHybrid, 4)
}

func scheduleFingerprint(s *Schedule) []float64 {
	var fp []float64
	fp = append(fp, s.TimeSec, s.Traffic.DRAM, s.Traffic.SRAM, s.Traffic.NoC)
	for _, seg := range s.Segments {
		fp = append(fp, seg.TimeSec, float64(len(seg.Groups)))
		for _, g := range seg.Groups {
			fp = append(fp, g.TimeSec, float64(len(g.Nodes)))
			for _, n := range g.Nodes {
				fp = append(fp, float64(n.ID))
			}
		}
	}
	return fp
}

func TestAnytimeBudgetStillSchedulesEverything(t *testing.T) {
	w := anytimeWorkload()
	for _, budget := range []int{1, 10, 100, 1000} {
		opt := DefaultOptions(DataflowCROPHE)
		opt.SearchBudget = budget
		res, err := New(arch.CROPHE64, opt).Schedule(context.Background(), w)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for si, seg := range res.Segments {
			want := len(w.Segments[si].G.ComputeNodes())
			got := 0
			for _, g := range seg.Groups {
				got += len(g.Nodes)
			}
			if got != want {
				t.Fatalf("budget %d, %s: scheduled %d of %d nodes", budget, seg.Name, got, want)
			}
		}
		if res.TimeSec <= 0 {
			t.Fatalf("budget %d: non-positive time", budget)
		}
	}
}

func TestAnytimeSmallBudgetIsPartialAndNoWorseUnbounded(t *testing.T) {
	w := anytimeWorkload()
	opt := DefaultOptions(DataflowCROPHE)
	opt.SearchBudget = 5
	cutRes, err := New(arch.CROPHE64, opt).Schedule(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if !cutRes.Partial {
		t.Fatal("tiny budget did not mark the schedule Partial")
	}
	full, err := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Schedule(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("unbounded search marked Partial")
	}
	if full.TimeSec > cutRes.TimeSec {
		t.Fatalf("full search (%g s) worse than cut search (%g s)", full.TimeSec, cutRes.TimeSec)
	}
}

func TestAnytimeDeterministicPerBudget(t *testing.T) {
	// Same config + workload + budget → bit-identical best-so-far
	// schedule, including the group decomposition, on every run.
	w := anytimeWorkload()
	for _, budget := range []int{1, 7, 64, 512} {
		var ref []float64
		for run := 0; run < 3; run++ {
			opt := DefaultOptions(DataflowCROPHE)
			opt.SearchBudget = budget
			res, err := New(arch.CROPHE64, opt).Schedule(context.Background(), w)
			if err != nil {
				t.Fatalf("budget %d run %d: %v", budget, run, err)
			}
			fp := scheduleFingerprint(res)
			if run == 0 {
				ref = fp
				continue
			}
			if len(fp) != len(ref) {
				t.Fatalf("budget %d run %d: fingerprint length %d vs %d", budget, run, len(fp), len(ref))
			}
			for i := range fp {
				if fp[i] != ref[i] {
					t.Fatalf("budget %d run %d: fingerprint diverges at %d: %v vs %v",
						budget, run, i, fp[i], ref[i])
				}
			}
		}
	}
}

func TestBudgetForDeadlineBuckets(t *testing.T) {
	if b := BudgetForDeadline(0); b != 1 {
		t.Fatalf("zero deadline budget %d want 1", b)
	}
	if b := BudgetForDeadline(-time.Second); b != 1 {
		t.Fatalf("negative deadline budget %d want 1", b)
	}
	// Deadlines in the same power-of-two bucket share a budget...
	a := BudgetForDeadline(90 * time.Millisecond)
	b := BudgetForDeadline(110 * time.Millisecond)
	if a != b {
		t.Fatalf("neighbouring deadlines map to budgets %d and %d", a, b)
	}
	// ...and longer deadlines never shrink it.
	prev := 0
	for ms := 1; ms <= 4096; ms *= 2 {
		got := BudgetForDeadline(time.Duration(ms) * time.Millisecond)
		if got < prev {
			t.Fatalf("budget shrank: %d ms → %d, previous %d", ms, got, prev)
		}
		prev = got
	}
}

func TestAnytimeCancelledContextStillReturnsValidSchedule(t *testing.T) {
	w := anytimeWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the backstop cuts at the first DP row
	res, err := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Schedule(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("cancelled context did not mark the schedule Partial")
	}
	for si, seg := range res.Segments {
		want := len(w.Segments[si].G.ComputeNodes())
		got := 0
		for _, g := range seg.Groups {
			got += len(g.Nodes)
			if len(g.Nodes) != 1 {
				t.Fatalf("%s: cut-from-start search produced a %d-node group", seg.Name, len(g.Nodes))
			}
		}
		if got != want {
			t.Fatalf("%s: scheduled %d of %d nodes", seg.Name, got, want)
		}
	}
}

func TestAnytimeCancellationLeaksNoGoroutines(t *testing.T) {
	w := anytimeWorkload()
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
		if _, err := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Schedule(ctx, w); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	// Give any stray timer goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestScheduleRejectsDeadResourceClass(t *testing.T) {
	w := anytimeWorkload()
	cases := []struct {
		name string
		d    arch.Derating
	}{
		{"all PEs failed", arch.Derating{PEs: 0, Lane: 1, NoC: 1, SRAM: 1, DRAM: 1}},
		{"all lanes failed", arch.Derating{PEs: 1, Lane: 0, NoC: 1, SRAM: 1, DRAM: 1}},
		{"HBM fully throttled", arch.Derating{PEs: 1, Lane: 1, NoC: 1, SRAM: 1, DRAM: 0}},
		{"all SRAM banks disabled", arch.Derating{PEs: 1, Lane: 1, NoC: 1, SRAM: 0, DRAM: 1}},
	}
	for _, tc := range cases {
		hw := arch.CROPHE64.Derate(tc.d)
		_, err := New(hw, DefaultOptions(DataflowCROPHE)).Schedule(context.Background(), w)
		if err == nil {
			t.Fatalf("%s: scheduling succeeded on an unusable machine", tc.name)
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: want ErrInfeasible, got %v", tc.name, err)
		}
	}
	// A derated-but-alive machine schedules fine, just slower.
	hw := arch.CROPHE64.Derate(arch.Derating{PEs: 0.5, Lane: 1, NoC: 0.5, SRAM: 0.5, DRAM: 0.5})
	degraded, err := New(hw, DefaultOptions(DataflowCROPHE)).Schedule(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	healthy := New(arch.CROPHE64, DefaultOptions(DataflowCROPHE)).Run(w)
	if degraded.TimeSec < healthy.TimeSec {
		t.Fatalf("half-failed machine faster (%g s) than healthy (%g s)",
			degraded.TimeSec, healthy.TimeSec)
	}
}

func TestRunPanicsOnInfeasibleHW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run on an unusable machine did not panic")
		}
	}()
	hw := arch.CROPHE64.Clone()
	hw.NumPEs = 0
	New(hw, DefaultOptions(DataflowCROPHE)).Run(anytimeWorkload())
}

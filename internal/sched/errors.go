package sched

import (
	"errors"
	"fmt"

	"crophe/internal/arch"
)

// ErrInfeasible is the sentinel matched (via errors.Is) by every
// scheduling failure that means "this machine cannot run this workload" —
// a fault plan that killed a whole resource class, a zero-lane
// configuration, or a candidate composition with no feasible groups.
var ErrInfeasible = errors.New("sched: infeasible")

// InfeasibleError reports that a hardware configuration cannot host any
// schedule for the requested workload, with the failing resource spelled
// out so fault sweeps can attribute the rejection.
type InfeasibleError struct {
	HW     string // configuration name
	Reason string // which resource check failed
}

// Error implements error.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: %s infeasible: %s", e.HW, e.Reason)
}

// Is matches ErrInfeasible.
func (e *InfeasibleError) Is(target error) bool { return target == ErrInfeasible }

// CycleError reports a dependency cycle in a workload graph: a
// topological order visited only Ordered of Total nodes. Scheduling only
// part of the workload would corrupt every downstream cost model, so the
// whole segment is rejected.
type CycleError struct {
	Segment string
	Ordered int
	Total   int
}

// Error implements error.
func (e *CycleError) Error() string {
	return fmt.Sprintf("sched: dependency cycle in segment %q: ordered %d of %d nodes",
		e.Segment, e.Ordered, e.Total)
}

// validateHW rejects configurations with a dead resource class before the
// search runs — the typed front door for fault plans that derated a
// resource to zero.
func validateHW(hw *arch.HWConfig) error {
	fail := func(reason string) error {
		return &InfeasibleError{HW: hw.Name, Reason: reason}
	}
	switch {
	case hw.NumPEs < 1:
		return fail("no usable PEs (every row failed)")
	case hw.Lanes < 1:
		return fail("no usable lanes")
	case hw.FreqGHz <= 0:
		return fail(fmt.Sprintf("non-positive clock %v GHz", hw.FreqGHz))
	case hw.DRAMBandwidthTBs <= 0:
		return fail("no DRAM bandwidth (HBM fully throttled)")
	case hw.SRAMBandwidthTBs <= 0:
		return fail("no global-buffer bandwidth (every bank disabled)")
	}
	return nil
}

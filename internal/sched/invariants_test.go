package sched

import (
	"testing"

	"crophe/internal/arch"
	"crophe/internal/graph"
	"crophe/internal/workload"
)

// Structural invariants every schedule must satisfy, checked over a
// spread of workloads, policies and hardware configurations.

func allScheduleCases() []struct {
	name string
	hw   *arch.HWConfig
	opt  Options
	w    *workload.Workload
} {
	boot := workload.Bootstrapping(testParams, workload.RotHoisted, 0)
	bootDec := boot.DecomposeNTTs()
	hybrid := workload.Bootstrapping(testParams, workload.RotHybrid, 4)
	resnet := workload.ResNet(testParams, 20, workload.RotMinKS, 0)
	return []struct {
		name string
		hw   *arch.HWConfig
		opt  Options
		w    *workload.Workload
	}{
		{"crophe64/boot/crophe", arch.CROPHE64, DefaultOptions(DataflowCROPHE), boot},
		{"crophe64/boot/mad", arch.CROPHE64, DefaultOptions(DataflowMAD), boot},
		{"crophe36/bootdec/crophe", arch.CROPHE36, DefaultOptions(DataflowCROPHE), bootDec},
		{"ark/boot/mad", arch.ARK, DefaultOptions(DataflowMAD), boot},
		{"sharp/hybrid/mad", arch.SHARP, DefaultOptions(DataflowMAD), hybrid},
		{"crophe64/resnet/crophe", arch.CROPHE64, DefaultOptions(DataflowCROPHE), resnet},
	}
}

func TestInvariantEveryComputeNodeScheduledOnce(t *testing.T) {
	for _, tc := range allScheduleCases() {
		res := New(tc.hw, tc.opt).Run(tc.w)
		for si, seg := range res.Segments {
			want := len(tc.w.Segments[si].G.ComputeNodes())
			seen := map[int]int{}
			total := 0
			for _, g := range seg.Groups {
				for _, n := range g.Nodes {
					seen[n.ID]++
					total++
				}
			}
			if total != want {
				t.Fatalf("%s/%s: scheduled %d nodes, graph has %d",
					tc.name, seg.Name, total, want)
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("%s/%s: node %d scheduled %d times", tc.name, seg.Name, id, c)
				}
			}
		}
	}
}

func TestInvariantGroupSizeBound(t *testing.T) {
	for _, tc := range allScheduleCases() {
		bound := tc.opt.MaxGroupSize
		if tc.opt.Dataflow == DataflowMAD {
			bound = 2
		}
		res := New(tc.hw, tc.opt).Run(tc.w)
		for _, seg := range res.Segments {
			for _, g := range seg.Groups {
				if len(g.Nodes) > bound {
					t.Fatalf("%s: group of %d exceeds bound %d", tc.name, len(g.Nodes), bound)
				}
			}
		}
	}
}

func TestInvariantPEAllocations(t *testing.T) {
	for _, tc := range allScheduleCases() {
		res := New(tc.hw, tc.opt).Run(tc.w)
		for _, seg := range res.Segments {
			for _, g := range seg.Groups {
				var sum int
				for _, a := range g.PEAlloc {
					if a < 1 {
						t.Fatalf("%s: zero PE allocation", tc.name)
					}
					sum += a
				}
				if sum > tc.hw.NumPEs {
					t.Fatalf("%s: group allocates %d PEs of %d", tc.name, sum, tc.hw.NumPEs)
				}
			}
		}
	}
}

func TestInvariantNonNegativeTrafficAndTime(t *testing.T) {
	for _, tc := range allScheduleCases() {
		res := New(tc.hw, tc.opt).Run(tc.w)
		if res.TimeSec <= 0 {
			t.Fatalf("%s: non-positive time", tc.name)
		}
		for _, v := range []float64{res.Traffic.DRAM, res.Traffic.SRAM, res.Traffic.NoC, res.Traffic.Transpose} {
			if v < 0 {
				t.Fatalf("%s: negative traffic", tc.name)
			}
		}
		for _, seg := range res.Segments {
			if seg.TimeSec < 0 || seg.AuxDRAM < 0 || seg.MatDRAM < 0 {
				t.Fatalf("%s/%s: negative segment metrics", tc.name, seg.Name)
			}
		}
	}
}

func TestInvariantDeterminism(t *testing.T) {
	tc := allScheduleCases()[0]
	r1 := New(tc.hw, tc.opt).Run(tc.w)
	r2 := New(tc.hw, tc.opt).Run(tc.w)
	if r1.TimeSec != r2.TimeSec {
		t.Fatalf("schedule not deterministic: %.17g vs %.17g", r1.TimeSec, r2.TimeSec)
	}
	if r1.Traffic != r2.Traffic {
		t.Fatalf("traffic not deterministic")
	}
}

func TestInvariantMemoizationConsistent(t *testing.T) {
	// Scheduling the same workload twice through one Scheduler (memoised)
	// must equal a fresh Scheduler's result.
	tc := allScheduleCases()[2]
	s := New(tc.hw, tc.opt)
	first := s.Run(tc.w)
	second := s.Run(tc.w) // served from the fingerprint cache
	if first.TimeSec != second.TimeSec || first.Traffic != second.Traffic {
		t.Fatal("memoised result differs")
	}
}

func TestInvariantAffinityOrderIsTopological(t *testing.T) {
	w := workload.Bootstrapping(testParams, workload.RotHybrid, 4)
	for _, seg := range w.Segments {
		order, err := auxAffinityOrder(seg.G)
		if err != nil {
			t.Fatalf("%s: %v", seg.Name, err)
		}
		pos := map[*graph.Node]int{}
		for i, n := range order {
			pos[n] = i
		}
		if len(order) != len(seg.G.ComputeNodes()) {
			t.Fatalf("%s: order has %d nodes, graph %d",
				seg.Name, len(order), len(seg.G.ComputeNodes()))
		}
		for _, n := range seg.G.Nodes {
			if !n.Kind.IsCompute() {
				continue
			}
			for _, e := range n.OutEdges {
				if !e.To.Kind.IsCompute() || e.Class != graph.Intermediate {
					continue
				}
				if pos[e.From] >= pos[e.To] {
					t.Fatalf("%s: affinity order violates dependency %s -> %s",
						seg.Name, e.From.Name, e.To.Name)
				}
			}
		}
	}
}

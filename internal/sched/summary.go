package sched

// ScheduleSummary is the serializable cost surface of a Schedule: the
// fields every read-only consumer (the serving layer's schedule
// responses, the memo warm-start snapshot) actually uses, with none of
// the graph-node pointers the full per-segment breakdown carries. Two
// schedules of the same (design, hardware, workload) under the same
// budget summarize identically — design evaluation is deterministic — so
// a summary shipped between processes stands in exactly for re-running
// the search.
type ScheduleSummary struct {
	Workload string      `json:"workload"`
	HW       string      `json:"hw"`
	TimeSec  float64     `json:"time_sec"`
	Traffic  Traffic     `json:"traffic"`
	Util     Utilization `json:"util"`
	Partial  bool        `json:"partial"`
}

// Summarize extracts the serializable summary of a schedule.
func Summarize(s *Schedule) ScheduleSummary {
	return ScheduleSummary{
		Workload: s.Workload,
		HW:       s.HW,
		TimeSec:  s.TimeSec,
		Traffic:  s.Traffic,
		Util:     s.Util,
		Partial:  s.Partial,
	}
}

package sched

import (
	"sort"

	"crophe/internal/graph"
)

// auxAffinityOrder returns the compute nodes of a graph in a topological
// order that greedily keeps consumers of the same auxiliary data adjacent.
// Any topological order is a legal schedule; this one maximises the
// spatial-sharing opportunities the group-formation DP can exploit: when
// several ready operators consume the same evk, they are emitted
// back-to-back and land in one group, so the evk is streamed once.
// A graph with a dependency cycle yields a *CycleError.
func auxAffinityOrder(g *graph.Graph) ([]*graph.Node, error) {
	indeg := make(map[*graph.Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n] = len(n.InEdges)
	}
	var ready []*graph.Node
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sortByID(ready)

	out := make([]*graph.Node, 0, len(g.Nodes))
	visited := 0
	lastAux := ""
	// recent holds the last few emitted nodes; consuming their outputs
	// keeps intermediate live ranges short (the loop-interleaving freedom
	// of the paper's scheduler: a baby-step ciphertext's PMults run
	// back-to-back instead of once per giant step).
	var recent []*graph.Node
	for len(ready) > 0 {
		idx, bestScore := 0, -1
		for i, n := range ready {
			score := 0
			for _, e := range n.InEdges {
				if e.Class != graph.Intermediate {
					continue
				}
				for _, r := range recent {
					if e.From == r {
						score += 2
					}
				}
			}
			if lastAux != "" && primaryAux(n) == lastAux {
				score++
			}
			if score > bestScore {
				bestScore, idx = score, i
			}
		}
		n := ready[idx]
		ready = append(ready[:idx], ready[idx+1:]...)
		visited++
		if n.Kind.IsCompute() {
			out = append(out, n)
			lastAux = primaryAux(n)
			recent = append(recent, n)
			if len(recent) > 6 {
				recent = recent[1:]
			}
		}
		inserted := false
		for _, e := range n.OutEdges {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
				inserted = true
			}
		}
		if inserted {
			sortByID(ready)
		}
	}
	// A well-formed operator graph is a DAG; leftovers mean a dependency
	// cycle, and silently scheduling only part of the workload would
	// corrupt every downstream cost model.
	if visited != len(g.Nodes) {
		return nil, &CycleError{Ordered: visited, Total: len(g.Nodes)}
	}
	return out, nil
}

// primaryAux returns the dominant auxiliary input of a node (the largest
// aux edge, preferring evks — the expensive streams worth co-scheduling).
func primaryAux(n *graph.Node) string {
	best := ""
	var bestBytes float64
	for _, e := range n.InEdges {
		if e.Class != graph.Auxiliary {
			continue
		}
		b := e.Shape.Bytes(8)
		if isEvk(e.AuxID) {
			b *= 1000 // always prefer the evk stream
		}
		if b > bestBytes {
			bestBytes = b
			best = e.AuxID
		}
	}
	return best
}

func sortByID(ns []*graph.Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

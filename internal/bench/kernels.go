package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"crophe/internal/modmath"
	"crophe/internal/ntt"
)

// KernelRow is one measured shape of the batch NTT kernel layer: a
// direction over a limbs×N limb-major batch, with the headline per-op
// cost and the implied memory throughput.
type KernelRow struct {
	Direction string // "forward" or "inverse"
	N         int
	Limbs     int
	NsOp      float64 // wall clock per whole-batch transform
	GBps      float64 // 8·N·limbs bytes per op at NsOp
}

// kernelShapes are the (N, limbs) points measured, mirroring the
// BenchmarkBatchNTT family in internal/ntt. Fast mode keeps the two
// cheapest shapes for CI smoke runs.
func kernelShapes(fast bool) [][2]int {
	if fast {
		return [][2]int{{4096, 1}, {4096, 8}}
	}
	return [][2]int{
		{4096, 1}, {4096, 8}, {4096, 32},
		{16384, 8}, {65536, 8},
	}
}

// Kernels measures BatchForward/BatchInverse wall clock per op over the
// kernel shapes. Unlike the model experiments, these ARE machine
// measurements: the numbers are noisy, so each shape takes the minimum
// of three adaptively-sized samples, and Compare applies cost semantics
// (increase-only, threshold-gated) to the resulting ns_op metrics.
func Kernels(fast bool) ([]KernelRow, error) {
	var rows []KernelRow
	for _, shape := range kernelShapes(fast) {
		n, limbs := shape[0], shape[1]
		primes, err := modmath.GeneratePrimes(45, uint64(n), limbs)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels N=%d limbs=%d: %w", n, limbs, err)
		}
		tables := make([]*ntt.Table, limbs)
		batch := make([][]uint64, limbs)
		backing := make([]uint64, n*limbs) // contiguous limb-major, as in poly
		rng := rand.New(rand.NewSource(int64(n + limbs)))
		for k := range tables {
			tbl, err := ntt.NewTable(modmath.MustModulus(primes[k]), n)
			if err != nil {
				return nil, err
			}
			tables[k] = tbl
			batch[k] = backing[k*n : (k+1)*n]
			for i := range batch[k] {
				batch[k][i] = rng.Uint64() % tbl.M.Q
			}
		}
		for _, dir := range []struct {
			name string
			op   func()
		}{
			{"forward", func() { ntt.BatchForward(tables, batch) }},
			{"inverse", func() { ntt.BatchInverse(tables, batch) }},
		} {
			nsOp := measureNsOp(dir.op)
			rows = append(rows, KernelRow{
				Direction: dir.name, N: n, Limbs: limbs,
				NsOp: nsOp, GBps: float64(8*n*limbs) / nsOp,
			})
		}
	}
	return rows, nil
}

// measureNsOp times op: one warm-up call, then reps doubled until a
// sample clears minSample, and the minimum of three such samples wins —
// the standard defence against scheduler noise on a loaded machine.
func measureNsOp(op func()) float64 {
	const minSample = 2 * time.Millisecond
	op() // warm pools and caches
	reps := 1
	best := time.Duration(1<<63 - 1)
	for sample := 0; sample < 3; {
		start := time.Now()
		for i := 0; i < reps; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed < minSample && reps < 1<<20 {
			reps <<= 1
			continue
		}
		if per := elapsed / time.Duration(reps); per < best {
			best = per
		}
		sample++
	}
	return float64(best.Nanoseconds())
}

// RenderKernels formats the kernel measurements.
func RenderKernels(rows []KernelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "KERNELS — BATCH NTT LAYER (measured, this machine)\n")
	fmt.Fprintf(&b, "%-8s %8s %6s %12s %8s\n", "Dir", "N", "Limbs", "ns/op", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8d %6d %12.0f %8.2f\n",
			r.Direction, r.N, r.Limbs, r.NsOp, r.GBps)
	}
	return b.String()
}

// kernelMetrics flattens rows into the report's metric map. The ns_op
// infix marks these as cost metrics for Compare.
func kernelMetrics(rows []KernelRow) map[string]float64 {
	m := map[string]float64{}
	for _, r := range rows {
		m[fmt.Sprintf("kernels/ns_op/%s/N=%d/limbs=%d", r.Direction, r.N, r.Limbs)] = r.NsOp
	}
	return m
}

package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
	"crophe/internal/ntt"
)

// KernelRow is one measured shape of the batch NTT kernel layer: a
// direction over a limbs×N limb-major batch, with the headline per-op
// cost and the implied memory throughput.
type KernelRow struct {
	Direction string // "forward" or "inverse"
	N         int
	Limbs     int
	NsOp      float64 // wall clock per whole-batch transform
	GBps      float64 // 8·N·limbs bytes per op at NsOp
}

// kernelShapes are the (N, limbs) points measured, mirroring the
// BenchmarkBatchNTT family in internal/ntt. Fast mode keeps the two
// cheapest shapes for CI smoke runs.
func kernelShapes(fast bool) [][2]int {
	if fast {
		return [][2]int{{4096, 1}, {4096, 8}}
	}
	return [][2]int{
		{4096, 1}, {4096, 8}, {4096, 32},
		{16384, 8}, {65536, 8},
	}
}

// Kernels measures BatchForward/BatchInverse wall clock per op over the
// kernel shapes. Unlike the model experiments, these ARE machine
// measurements: the numbers are noisy, so each shape takes the minimum
// of three adaptively-sized samples, and Compare applies cost semantics
// (increase-only, threshold-gated) to the resulting ns_op metrics.
func Kernels(fast bool) ([]KernelRow, error) {
	var rows []KernelRow
	for _, shape := range kernelShapes(fast) {
		n, limbs := shape[0], shape[1]
		primes, err := modmath.GeneratePrimes(45, uint64(n), limbs)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels N=%d limbs=%d: %w", n, limbs, err)
		}
		tables := make([]*ntt.Table, limbs)
		batch := make([][]uint64, limbs)
		backing := make([]uint64, n*limbs) // contiguous limb-major, as in poly
		rng := rand.New(rand.NewSource(int64(n + limbs)))
		for k := range tables {
			tbl, err := ntt.NewTable(modmath.MustModulus(primes[k]), n)
			if err != nil {
				return nil, err
			}
			tables[k] = tbl
			batch[k] = backing[k*n : (k+1)*n]
			for i := range batch[k] {
				batch[k][i] = rng.Uint64() % tbl.M.Q
			}
		}
		for _, dir := range []struct {
			name string
			op   func()
		}{
			{"forward", func() { ntt.BatchForward(tables, batch) }},
			{"inverse", func() { ntt.BatchInverse(tables, batch) }},
		} {
			nsOp := measureNsOp(dir.op)
			rows = append(rows, KernelRow{
				Direction: dir.name, N: n, Limbs: limbs,
				NsOp: nsOp, GBps: float64(8*n*limbs) / nsOp,
			})
		}
	}
	return rows, nil
}

// IntegrityRow is one measured plain-vs-checked pairing of the
// four-step forward transform: the ABFT-verified kernel against the
// unchecked one on the same table and input, and the implied relative
// overhead of carrying the checksum.
type IntegrityRow struct {
	N            int
	PlainNs      float64
	CheckedNs    float64
	OverheadFrac float64 // max(0, best checked/plain ratio - 1 over interleaved pairs)
}

// integrityShapes are the transform sizes measured for the ABFT
// overhead gate; fast mode keeps the single CI-smoke shape.
func integrityShapes(fast bool) []int {
	if fast {
		return []int{4096}
	}
	return []int{4096, 16384}
}

// KernelIntegrity measures the cost of the checked four-step forward
// transform against the unchecked kernel. The overhead fraction is the
// quantity the bench-diff gate pins: the fused-checksum design claims
// the verification rides along nearly free, and a refactor that breaks
// the fusion shows up here as overhead above the gate.
func KernelIntegrity(fast bool) ([]IntegrityRow, error) {
	var rows []IntegrityRow
	for _, n := range integrityShapes(fast) {
		primes, err := modmath.GeneratePrimes(45, uint64(n), 1)
		if err != nil {
			return nil, fmt.Errorf("bench: integrity N=%d: %w", n, err)
		}
		tbl, err := ntt.NewTable(modmath.MustModulus(primes[0]), n)
		if err != nil {
			return nil, err
		}
		n1 := 1
		for n1*n1 < n {
			n1 <<= 1
		}
		fs, err := ntt.NewFourStep(tbl, n1, n/n1)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % tbl.M.Q
		}
		dst := make([]uint64, n)
		ck := integrity.NewChecker(1)
		plainOp := func() { fs.Forward(dst, a) }
		checkedOp := func() {
			if _, err := fs.ForwardChecked(dst, a, ck); err != nil {
				panic(err) // no injector: a mismatch here is a real kernel bug
			}
		}
		// Interleaved pairs: a load spike hitting only one side of a
		// single plain-then-checked measurement inflates the apparent
		// overhead by far more than the check costs, so the gate takes
		// the best checked/plain ratio across adjacent pairs — paired
		// samples see the same machine, and noise only ever pushes the
		// ratio up.
		plain, checked := math.Inf(1), math.Inf(1)
		overhead := math.Inf(1)
		for pair := 0; pair < 5; pair++ {
			p := measureNsOp(plainOp)
			c := measureNsOp(checkedOp)
			if r := c/p - 1; r < overhead {
				overhead = r
			}
			plain = math.Min(plain, p)
			checked = math.Min(checked, c)
		}
		if overhead < 0 {
			overhead = 0 // the check cannot be negative work
		}
		rows = append(rows, IntegrityRow{N: n, PlainNs: plain, CheckedNs: checked, OverheadFrac: overhead})
	}
	return rows, nil
}

// RenderKernelIntegrity formats the overhead measurements.
func RenderKernelIntegrity(rows []IntegrityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "KERNELS — ABFT INTEGRITY OVERHEAD (measured, this machine; gate %.0f%%)\n",
		maxIntegrityOverheadFrac*100)
	fmt.Fprintf(&b, "%8s %12s %12s %10s\n", "N", "plain ns", "checked ns", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12.0f %12.0f %9.2f%%\n", r.N, r.PlainNs, r.CheckedNs, r.OverheadFrac*100)
	}
	return b.String()
}

// integrityMetrics flattens the overhead rows. The ns_op keys get the
// usual cost semantics in Compare; the integrity_overhead_frac keys get
// the absolute gate.
func integrityMetrics(rows []IntegrityRow) map[string]float64 {
	m := map[string]float64{}
	for _, r := range rows {
		m[fmt.Sprintf("kernels/ns_op/fourstep_forward/N=%d", r.N)] = r.PlainNs
		m[fmt.Sprintf("kernels/ns_op/fourstep_forward_integrity/N=%d", r.N)] = r.CheckedNs
		m[fmt.Sprintf("kernels/integrity_overhead_frac/N=%d", r.N)] = r.OverheadFrac
	}
	return m
}

// measureNsOp times op: one warm-up call, then reps doubled until a
// sample clears minSample, and the minimum of three such samples wins —
// the standard defence against scheduler noise on a loaded machine.
func measureNsOp(op func()) float64 {
	const minSample = 2 * time.Millisecond
	op() // warm pools and caches
	reps := 1
	best := time.Duration(1<<63 - 1)
	for sample := 0; sample < 3; {
		start := time.Now()
		for i := 0; i < reps; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed < minSample && reps < 1<<20 {
			reps <<= 1
			continue
		}
		if per := elapsed / time.Duration(reps); per < best {
			best = per
		}
		sample++
	}
	return float64(best.Nanoseconds())
}

// RenderKernels formats the kernel measurements.
func RenderKernels(rows []KernelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "KERNELS — BATCH NTT LAYER (measured, this machine)\n")
	fmt.Fprintf(&b, "%-8s %8s %6s %12s %8s\n", "Dir", "N", "Limbs", "ns/op", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8d %6d %12.0f %8.2f\n",
			r.Direction, r.N, r.Limbs, r.NsOp, r.GBps)
	}
	return b.String()
}

// kernelMetrics flattens rows into the report's metric map. The ns_op
// infix marks these as cost metrics for Compare.
func kernelMetrics(rows []KernelRow) map[string]float64 {
	m := map[string]float64{}
	for _, r := range rows {
		m[fmt.Sprintf("kernels/ns_op/%s/N=%d/limbs=%d", r.Direction, r.N, r.Limbs)] = r.NsOp
	}
	return m
}

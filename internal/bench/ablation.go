package bench

import (
	"fmt"
	"strings"

	"crophe/internal/arch"
	"crophe/internal/graph"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

// The ablation studies flagged in DESIGN.md: each isolates one design
// choice of the paper and quantifies its contribution on the
// bootstrapping workload (SHARP parameters, CROPHE-36).

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Study   string
	Setting string
	TimeSec float64
	DRAMGB  float64
}

func ablationHW() *arch.HWConfig { return arch.CROPHE36.WithSRAM(90) }

func ablationWorkload(mode workload.RotMode, rHyb int) *workload.Workload {
	return workload.Bootstrapping(arch.ParamsSHARP, mode, rHyb)
}

// AblateGroupSize sweeps the spatial-group size bound (the search breadth
// of §V-D): 1 disables spatial pipelining entirely, the paper's setting
// is 7–10.
func AblateGroupSize() []AblationRow {
	var rows []AblationRow
	w := ablationWorkload(workload.RotHoisted, 0).DecomposeNTTs()
	for _, size := range []int{1, 2, 4, 8, 12} {
		opt := sched.DefaultOptions(sched.DataflowCROPHE)
		opt.MaxGroupSize = size
		res := sched.New(ablationHW(), opt).Run(w)
		rows = append(rows, AblationRow{
			Study:   "group-size",
			Setting: fmt.Sprintf("max %d ops/group", size),
			TimeSec: res.TimeSec,
			DRAMGB:  res.Traffic.DRAM / 1e9,
		})
	}
	return rows
}

// AblateNTTSplit compares four-step split choices N = N1×N2: the balanced
// split against skewed ones (§V-D: "N1 and N2 should not be too small").
func AblateNTTSplit() []AblationRow {
	splits := []struct {
		name  string
		split func(n int) (int, int)
	}{
		{"balanced (N1≈N2)", graph.BalancedSplit},
		{"skew 4:1", func(n int) (int, int) {
			n1, n2 := graph.BalancedSplit(n)
			for n1/2 >= 2 && n2*2 <= n {
				n1 /= 2
				n2 *= 2
				if n2 >= 4*n1 {
					break
				}
			}
			return n1, n2
		}},
		{"minimal N1=2", func(n int) (int, int) { return 2, n / 2 }},
	}
	var rows []AblationRow
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	for _, sp := range splits {
		base := ablationWorkload(workload.RotHoisted, 0)
		w := &workload.Workload{Name: base.Name, Params: base.Params, DataParallel: base.DataParallel}
		for _, seg := range base.Segments {
			w.Segments = append(w.Segments, workload.Segment{
				Name:  seg.Name,
				G:     graph.DecomposeNTTs(seg.G, sp.split),
				Count: seg.Count,
			})
		}
		res := sched.New(ablationHW(), opt).Run(w)
		rows = append(rows, AblationRow{
			Study:   "ntt-split",
			Setting: sp.name,
			TimeSec: res.TimeSec,
			DRAMGB:  res.Traffic.DRAM / 1e9,
		})
	}
	return rows
}

// AblateRHyb sweeps the hybrid-rotation stride between the two endpoints
// of Figure 8: r_Hyb=1 degenerates to Min-KS-only structure, large r to
// Hoisting.
func AblateRHyb() []AblationRow {
	var rows []AblationRow
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	hw := ablationHW()
	cases := []struct {
		name string
		mode workload.RotMode
		r    int
	}{
		{"min-ks (endpoint)", workload.RotMinKS, 0},
		{"hybrid r=2", workload.RotHybrid, 2},
		{"hybrid r=4", workload.RotHybrid, 4},
		{"hybrid r=8", workload.RotHybrid, 8},
		{"hoisting (endpoint)", workload.RotHoisted, 0},
	}
	for _, c := range cases {
		w := ablationWorkload(c.mode, c.r).DecomposeNTTs()
		res := sched.New(hw, opt).Run(w)
		rows = append(rows, AblationRow{
			Study:   "r-hyb",
			Setting: c.name,
			TimeSec: res.TimeSec,
			DRAMGB:  res.Traffic.DRAM / 1e9,
		})
	}
	return rows
}

// AblatePEAllocation compares §IV-B's load-proportional PE allocation
// against a uniform split.
func AblatePEAllocation() []AblationRow {
	var rows []AblationRow
	w := ablationWorkload(workload.RotHoisted, 0).DecomposeNTTs()
	for _, uniform := range []bool{false, true} {
		opt := sched.DefaultOptions(sched.DataflowCROPHE)
		opt.UniformAlloc = uniform
		name := "proportional to load (§IV-B)"
		if uniform {
			name = "uniform split"
		}
		res := sched.New(ablationHW(), opt).Run(w)
		rows = append(rows, AblationRow{
			Study:   "pe-alloc",
			Setting: name,
			TimeSec: res.TimeSec,
			DRAMGB:  res.Traffic.DRAM / 1e9,
		})
	}
	return rows
}

// Ablations runs every ablation study.
func Ablations() []AblationRow {
	var rows []AblationRow
	rows = append(rows, AblateGroupSize()...)
	rows = append(rows, AblateNTTSplit()...)
	rows = append(rows, AblateRHyb()...)
	rows = append(rows, AblatePEAllocation()...)
	return rows
}

// RenderAblations formats the ablation table.
func RenderAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATIONS — design choices of DESIGN.md (bootstrapping, CROPHE-36 @ 90 MB)\n")
	fmt.Fprintf(&b, "%-12s %-28s %10s %10s\n", "Study", "Setting", "Time (ms)", "DRAM (GB)")
	last := ""
	for _, r := range rows {
		if r.Study != last {
			if last != "" {
				fmt.Fprintln(&b)
			}
			last = r.Study
		}
		fmt.Fprintf(&b, "%-12s %-28s %10.3f %10.2f\n", r.Study, r.Setting, r.TimeSec*1e3, r.DRAMGB)
	}
	return b.String()
}

package bench

import (
	"encoding/json"
	"reflect"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

// TestMemoSnapshotRoundTrip simulates the coordinator's warm-start path:
// process A evaluates and exports; process B (a reset cache standing in
// for a fresh worker) imports and answers the same summary lookup from
// the warm tier without re-running the search.
func TestMemoSnapshotRoundTrip(t *testing.T) {
	ResetScheduleMemo()
	d := madDesign(arch.CROPHE36)
	factory := helrFactory(arch.ParamsSHARP)
	const wkey = "snapshot/helr"

	sum, src := EvaluateMemoizedSummary(d, wkey, factory)
	if src != MemoMiss || src.Cached() {
		t.Fatalf("cold lookup source = %q; want miss", src)
	}
	if sum.TimeSec <= 0 {
		t.Fatalf("summary TimeSec = %g; want > 0", sum.TimeSec)
	}
	// Same process, second lookup: the full tier answers.
	if _, src := EvaluateMemoizedSummary(d, wkey, factory); src != MemoHit {
		t.Fatalf("warm-process lookup source = %q; want hit", src)
	}

	snap := ExportScheduleMemo()
	if len(snap.Entries) != 1 || snap.V != MemoSnapshotV {
		t.Fatalf("export = %d entries, v%d; want 1 entry, v%d", len(snap.Entries), snap.V, MemoSnapshotV)
	}

	// The snapshot survives the wire.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var wired MemoSnapshot
	if err := json.Unmarshal(raw, &wired); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wired, snap) {
		t.Fatalf("snapshot changed across JSON round trip:\n%+v\nvs\n%+v", wired, snap)
	}

	// "Process B": fresh cache, import, warm hit with the identical summary.
	ResetScheduleMemo()
	evals := 0
	counting := func(m workload.RotMode, r int) *workload.Workload {
		evals++
		return factory(m, r)
	}
	added, err := ImportScheduleMemo(wired)
	if err != nil || added != 1 {
		t.Fatalf("import = %d, %v; want 1, nil", added, err)
	}
	got, src := EvaluateMemoizedSummary(d, wkey, counting)
	if src != MemoWarm || !src.Cached() {
		t.Fatalf("imported lookup source = %q; want warm", src)
	}
	if got != sum {
		t.Fatalf("warm summary %+v differs from the exported one %+v", got, sum)
	}
	if evals != 0 {
		t.Fatalf("warm hit ran the schedule search (%d factory calls)", evals)
	}
	st := ScheduleMemoStats()
	if st.WarmHits != 1 || st.WarmEntries != 1 {
		t.Fatalf("warm stats = %d hits / %d entries; want 1 / 1", st.WarmHits, st.WarmEntries)
	}
	ResetScheduleMemo()
}

// TestMemoImportRules: version gate, full-tier precedence, warm-tier
// capacity bound, and full evaluation superseding a warm entry.
func TestMemoImportRules(t *testing.T) {
	ResetScheduleMemo()
	defer ResetScheduleMemo()

	if _, err := ImportScheduleMemo(MemoSnapshot{V: 99}); err == nil {
		t.Fatal("wrong-version snapshot accepted")
	}

	d := madDesign(arch.CROPHE36)
	factory := helrFactory(arch.ParamsSHARP)
	const wkey = "import-rules/helr"
	s := EvaluateMemoized(d, wkey, factory)
	snap := ExportScheduleMemo()

	// A full-tier entry blocks the matching import.
	if added, err := ImportScheduleMemo(snap); err != nil || added != 0 {
		t.Fatalf("import over full tier = %d, %v; want 0, nil", added, err)
	}

	// After a reset the import lands, and a subsequent full evaluation
	// supersedes the warm entry (warm tier shrinks back to zero).
	ResetScheduleMemo()
	if added, _ := ImportScheduleMemo(snap); added != 1 {
		t.Fatalf("import after reset added %d; want 1", added)
	}
	s2 := EvaluateMemoized(d, wkey, factory)
	if st := ScheduleMemoStats(); st.WarmEntries != 0 {
		t.Fatalf("full evaluation left %d warm entries; want 0 (superseded)", st.WarmEntries)
	}
	if s2.TimeSec != s.TimeSec {
		t.Fatalf("re-evaluated TimeSec %g != original %g (determinism)", s2.TimeSec, s.TimeSec)
	}

	// Capacity bounds the warm tier: with capacity 1 and one entry
	// already warm, a second synthetic entry is dropped.
	ResetScheduleMemo()
	prev := SetScheduleMemoCapacity(1)
	defer SetScheduleMemoCapacity(prev)
	over := snap
	over.Entries = append([]MemoSnapshotEntry{}, snap.Entries...)
	extra := snap.Entries[0]
	extra.Workload = "import-rules/other"
	over.Entries = append(over.Entries, extra)
	if added, _ := ImportScheduleMemo(over); added != 1 {
		t.Fatalf("capacity-bounded import added %d; want 1", added)
	}
}

// TestSummarize pins that the summary carries exactly the serving-visible
// fields of a schedule.
func TestSummarize(t *testing.T) {
	s := &sched.Schedule{
		Workload: "w", HW: "h", TimeSec: 1.5,
		Traffic: sched.Traffic{DRAM: 1, SRAM: 2, NoC: 3, Transpose: 4},
		Util:    sched.Utilization{PE: 0.5, NoC: 0.25, SRAM: 0.75, DRAM: 0.125},
		Partial: true,
	}
	sum := sched.Summarize(s)
	want := sched.ScheduleSummary{
		Workload: "w", HW: "h", TimeSec: 1.5,
		Traffic: s.Traffic, Util: s.Util, Partial: true,
	}
	if sum != want {
		t.Fatalf("Summarize = %+v; want %+v", sum, want)
	}
}

package bench

import (
	"strings"
	"testing"
)

func TestKernelsFast(t *testing.T) {
	rows, err := Kernels(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(kernelShapes(true)) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(kernelShapes(true)))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.NsOp <= 0 || r.GBps <= 0 {
			t.Errorf("%s N=%d limbs=%d: non-positive measurement %+v", r.Direction, r.N, r.Limbs, r)
		}
		seen[r.Direction] = true
	}
	if !seen["forward"] || !seen["inverse"] {
		t.Errorf("missing a direction: %v", seen)
	}

	rendered := RenderKernels(rows)
	if !strings.Contains(rendered, "BATCH NTT") || !strings.Contains(rendered, "forward") {
		t.Errorf("render missing expected content:\n%s", rendered)
	}

	m := kernelMetrics(rows)
	if len(m) != len(rows) {
		t.Fatalf("metrics: got %d keys, want %d", len(m), len(rows))
	}
	for k := range m {
		if !isCostMetric(k) {
			t.Errorf("kernel metric %q not classified as cost metric", k)
		}
	}
}

// TestKernelIntegrityFast is the live overhead measurement: the checked
// four-step transform must clear the bench gate on this machine. It
// doubles as the acceptance criterion for the fused-checksum design —
// if the fusion regresses, this fails before the diff gate ever runs.
func TestKernelIntegrityFast(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	// Plain and checked samples are taken moments apart, so a scheduler
	// blip during one side inflates the apparent overhead; noise is
	// one-sided upward, making the best of a few attempts the honest
	// estimate. The gate must clear on at least one attempt.
	var rows []IntegrityRow
	for attempt := 0; attempt < 5; attempt++ {
		var err error
		rows, err = KernelIntegrity(true)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.PlainNs <= 0 || r.CheckedNs <= 0 {
				t.Fatalf("N=%d: non-positive measurement %+v", r.N, r)
			}
			if r.OverheadFrac > worst {
				worst = r.OverheadFrac
			}
		}
		if worst <= maxIntegrityOverheadFrac {
			break
		}
		if attempt == 4 {
			t.Errorf("ABFT overhead %.2f%% exceeds the %.0f%% gate on every attempt: %+v",
				worst*100, maxIntegrityOverheadFrac*100, rows)
		}
	}
	if len(rows) != len(integrityShapes(true)) {
		t.Fatalf("got %d rows, want %d", len(rows), len(integrityShapes(true)))
	}
	rendered := RenderKernelIntegrity(rows)
	if !strings.Contains(rendered, "ABFT INTEGRITY OVERHEAD") {
		t.Errorf("render missing header:\n%s", rendered)
	}
	m := integrityMetrics(rows)
	if len(m) != 3*len(rows) {
		t.Fatalf("metrics: got %d keys, want %d", len(m), 3*len(rows))
	}
	gates := 0
	for k := range m {
		if isIntegrityGate(k) {
			gates++
			if isCostMetric(k) {
				t.Errorf("gate metric %q double-classified as ns_op cost", k)
			}
		}
	}
	if gates != len(rows) {
		t.Fatalf("got %d gate keys, want %d", gates, len(rows))
	}
}

// TestCompareIntegrityGateAbsolute pins the schema-v4 rule: an
// integrity_overhead_frac above the ceiling flags against ANY baseline —
// including one that predates the metric or that already breached — and
// values under the ceiling never flag, whatever the baseline said.
func TestCompareIntegrityGateAbsolute(t *testing.T) {
	mk := func(metrics map[string]float64) *Report {
		return &Report{
			SchemaVersion: ReportSchemaVersion,
			Experiments:   []ExperimentResult{{ID: "kernels", WallMS: 10, Metrics: metrics}},
		}
	}
	key := "kernels/integrity_overhead_frac/N=4096"
	nsKey := "kernels/ns_op/forward/N=4096/limbs=8"
	noMetric := mk(map[string]float64{nsKey: 1000})
	under := mk(map[string]float64{nsKey: 1000, key: 0.01})
	over := mk(map[string]float64{nsKey: 1000, key: 0.05})

	// Breach flags even when the baseline never had the metric.
	regs := Compare(noMetric, over, 0.5, 1e-6)
	if len(regs) != 1 || regs[0].Metric != key {
		t.Fatalf("gate breach vs old baseline: got %+v, want one %s regression", regs, key)
	}
	// A baseline that already breached does not grandfather it.
	if regs := Compare(over, over, 0.5, 1e-6); len(regs) != 1 {
		t.Errorf("breached baseline grandfathered the breach: %+v", regs)
	}
	// Under the gate: clean, even with large relative drift vs baseline.
	if regs := Compare(under, mk(map[string]float64{nsKey: 1000, key: 0.029}), 0.5, 1e-6); len(regs) != 0 {
		t.Errorf("sub-gate drift flagged: %+v", regs)
	}
	// The metric disappearing entirely is still structural.
	regs = Compare(under, noMetric, 0.5, 1e-6)
	if len(regs) != 1 || !regs[0].Structural {
		t.Errorf("vanished gate metric: got %+v, want one structural regression", regs)
	}
}

// TestCompareNsOpCostSemantics pins the schema-v3 rule: ns_op metric
// keys flag only thresholded increases, never improvements, while
// ordinary model metrics keep the tight bidirectional tolerance.
func TestCompareNsOpCostSemantics(t *testing.T) {
	mk := func(nsOp, util float64) *Report {
		return &Report{
			SchemaVersion: ReportSchemaVersion,
			Experiments: []ExperimentResult{
				{ID: "kernels", WallMS: 10, Metrics: map[string]float64{
					"kernels/ns_op/forward/N=4096/limbs=8": nsOp,
					"table4/pe_util/X":                     util,
				}},
			},
		}
	}
	base := mk(100000, 0.8)

	// A big speedup and sub-threshold noise are both clean.
	if regs := Compare(base, mk(40000, 0.8), 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("ns_op improvement flagged: %+v", regs)
	}
	if regs := Compare(base, mk(110000, 0.8), 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("sub-threshold ns_op increase flagged: %+v", regs)
	}

	// A thresholded slowdown is a regression.
	regs := Compare(base, mk(150000, 0.8), 0.25, 1e-6)
	if len(regs) != 1 || !isCostMetric(regs[0].Metric) {
		t.Errorf("50%% ns_op increase: got %+v, want one ns_op regression", regs)
	}

	// Deterministic metrics in the same experiment keep strict
	// bidirectional tolerance.
	regs = Compare(base, mk(100000, 0.8001), 0.25, 1e-6)
	if len(regs) != 1 || regs[0].Metric != "table4/pe_util/X" {
		t.Errorf("model-metric drift: got %+v, want one pe_util regression", regs)
	}
}

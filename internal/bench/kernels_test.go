package bench

import (
	"strings"
	"testing"
)

func TestKernelsFast(t *testing.T) {
	rows, err := Kernels(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(kernelShapes(true)) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(kernelShapes(true)))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.NsOp <= 0 || r.GBps <= 0 {
			t.Errorf("%s N=%d limbs=%d: non-positive measurement %+v", r.Direction, r.N, r.Limbs, r)
		}
		seen[r.Direction] = true
	}
	if !seen["forward"] || !seen["inverse"] {
		t.Errorf("missing a direction: %v", seen)
	}

	rendered := RenderKernels(rows)
	if !strings.Contains(rendered, "BATCH NTT") || !strings.Contains(rendered, "forward") {
		t.Errorf("render missing expected content:\n%s", rendered)
	}

	m := kernelMetrics(rows)
	if len(m) != len(rows) {
		t.Fatalf("metrics: got %d keys, want %d", len(m), len(rows))
	}
	for k := range m {
		if !isCostMetric(k) {
			t.Errorf("kernel metric %q not classified as cost metric", k)
		}
	}
}

// TestCompareNsOpCostSemantics pins the schema-v3 rule: ns_op metric
// keys flag only thresholded increases, never improvements, while
// ordinary model metrics keep the tight bidirectional tolerance.
func TestCompareNsOpCostSemantics(t *testing.T) {
	mk := func(nsOp, util float64) *Report {
		return &Report{
			SchemaVersion: ReportSchemaVersion,
			Experiments: []ExperimentResult{
				{ID: "kernels", WallMS: 10, Metrics: map[string]float64{
					"kernels/ns_op/forward/N=4096/limbs=8": nsOp,
					"table4/pe_util/X":                     util,
				}},
			},
		}
	}
	base := mk(100000, 0.8)

	// A big speedup and sub-threshold noise are both clean.
	if regs := Compare(base, mk(40000, 0.8), 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("ns_op improvement flagged: %+v", regs)
	}
	if regs := Compare(base, mk(110000, 0.8), 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("sub-threshold ns_op increase flagged: %+v", regs)
	}

	// A thresholded slowdown is a regression.
	regs := Compare(base, mk(150000, 0.8), 0.25, 1e-6)
	if len(regs) != 1 || !isCostMetric(regs[0].Metric) {
		t.Errorf("50%% ns_op increase: got %+v, want one ns_op regression", regs)
	}

	// Deterministic metrics in the same experiment keep strict
	// bidirectional tolerance.
	regs = Compare(base, mk(100000, 0.8001), 0.25, 1e-6)
	if len(regs) != 1 || regs[0].Metric != "table4/pe_util/X" {
		t.Errorf("model-metric drift: got %+v, want one pe_util regression", regs)
	}
}

package bench

import (
	"sync"
	"sync/atomic"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

// helrFactory is a small real workload for cache tests.
func helrFactory(p arch.ParamSet) sched.WorkloadFactory {
	return func(m workload.RotMode, r int) *workload.Workload {
		return workload.HELR(p, m, r)
	}
}

func madDesign(hw *arch.HWConfig) sched.Design {
	return sched.Design{Name: hw.Name + "+MAD", HW: hw, Dataflow: sched.DataflowMAD}
}

// TestMemoSingleFlight launches many concurrent misses on one key and
// checks that exactly one evaluation ran: every caller must get the same
// *Schedule pointer and the miss counter must read 1.
func TestMemoSingleFlight(t *testing.T) {
	ResetScheduleMemo()
	d := madDesign(arch.CROPHE36)
	factory := helrFactory(arch.ParamsSHARP)

	const callers = 16
	var (
		wg    sync.WaitGroup
		got   [callers]*sched.Schedule
		evals atomic.Int64
	)
	counting := func(m workload.RotMode, r int) *workload.Workload {
		evals.Add(1)
		return factory(m, r)
	}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = EvaluateMemoized(d, "singleflight/helr", counting)
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different schedule pointer: single-flight failed", i)
		}
	}
	st := ScheduleMemoStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight should coalesce concurrent misses)", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, callers-1)
	}
	// The factory is called multiple times per evaluation (rotation-mode
	// sweep), but only by the single evaluating flight: a second identical
	// single-flight run must not add factory calls.
	before := evals.Load()
	EvaluateMemoized(d, "singleflight/helr", counting)
	if evals.Load() != before {
		t.Error("cache hit re-ran the evaluation")
	}
}

// TestMemoEviction fills the cache past a capacity of 2 and checks that
// the least-recently-used entry is evicted and counted.
func TestMemoEviction(t *testing.T) {
	ResetScheduleMemo()
	prev := SetScheduleMemoCapacity(2)
	defer SetScheduleMemoCapacity(prev)

	d := madDesign(arch.CROPHE36)
	factory := helrFactory(arch.ParamsSHARP)

	EvaluateMemoized(d, "evict/a", factory)
	EvaluateMemoized(d, "evict/b", factory)
	// Touch a so b becomes the LRU entry.
	EvaluateMemoized(d, "evict/a", factory)
	EvaluateMemoized(d, "evict/c", factory) // evicts b

	st := ScheduleMemoStats()
	if st.Size != 2 {
		t.Errorf("size = %d, want 2 (capacity bound)", st.Size)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}

	// a must still be cached (it was touched); b must have been evicted.
	hits0 := ScheduleMemoStats().Hits
	EvaluateMemoized(d, "evict/a", factory)
	if ScheduleMemoStats().Hits != hits0+1 {
		t.Error("LRU evicted the recently-used entry instead of the stale one")
	}
	misses0 := ScheduleMemoStats().Misses
	EvaluateMemoized(d, "evict/b", factory)
	if ScheduleMemoStats().Misses != misses0+1 {
		t.Error("evicted entry was still served from cache")
	}
}

// TestMemoCapacityClamp checks the capacity setter clamps and evicts
// immediately when shrunk below the current size.
func TestMemoCapacityClamp(t *testing.T) {
	ResetScheduleMemo()
	prev := SetScheduleMemoCapacity(8)
	defer SetScheduleMemoCapacity(prev)

	d := madDesign(arch.CROPHE36)
	factory := helrFactory(arch.ParamsSHARP)
	for _, k := range []string{"clamp/a", "clamp/b", "clamp/c"} {
		EvaluateMemoized(d, k, factory)
	}
	SetScheduleMemoCapacity(0) // clamps to 1
	st := ScheduleMemoStats()
	if st.Capacity != 1 {
		t.Errorf("capacity = %d, want 1 after clamp", st.Capacity)
	}
	if st.Size > 1 {
		t.Errorf("size = %d, want <= 1 after shrink", st.Size)
	}
	if st.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 after shrinking 3 entries to 1", st.Evictions)
	}
}

package bench

import (
	"strings"
	"testing"
)

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"CROPHE-64", "CROPHE-36", "BTS", "ARK", "SHARP", "CL+"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %s", want)
		}
	}
	t2 := Table2()
	for _, want := range []string{"modular multipliers", "global buffer", "HBM PHY", "Total"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	t3 := Table3()
	for _, want := range []string{"BTS (INS-2)", "CraterLake", "dnum"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFigure9FastOrderings(t *testing.T) {
	rows := Figure9(true)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// For every (pairing, workload): the full CROPHE design must beat the
	// baseline reference.
	type key struct{ p, w string }
	best := map[key]float64{}
	for _, r := range rows {
		k := key{r.Pairing, r.Workload}
		if !strings.HasSuffix(r.Design, "+MAD") && !strings.HasSuffix(r.Design, "-p") {
			best[k] = r.Speedup
		}
	}
	for k, sp := range best {
		if sp <= 1.0 {
			t.Errorf("%v: CROPHE speedup %.2f not above baseline", k, sp)
		}
	}
	out := RenderFig9(rows)
	if !strings.Contains(out, "FIGURE 9") {
		t.Error("render header")
	}
}

func TestFigure10FastShape(t *testing.T) {
	rows := Figure10(true)
	if len(rows) < 3 {
		t.Fatalf("too few sweep points: %d", len(rows))
	}
	// Speedup at the smallest capacity must exceed the largest.
	first, last := rows[0], rows[len(rows)-1]
	if first.SRAMMB <= last.SRAMMB {
		t.Fatal("sweep should go from large to small capacity")
	}
	if last.Speedup <= first.Speedup {
		t.Errorf("speedup %.2f at %g MB not above %.2f at %g MB",
			last.Speedup, last.SRAMMB, first.Speedup, first.SRAMMB)
	}
	// CROPHE-p must never be slower than CROPHE.
	for _, r := range rows {
		if r.CROPHEP > r.CROPHE*1.001 {
			t.Errorf("CROPHE-p slower at %g MB: %.3g vs %.3g", r.SRAMMB, r.CROPHEP, r.CROPHE)
		}
	}
	if !strings.Contains(RenderFig10(rows), "FIGURE 10") {
		t.Error("render header")
	}
}

func TestFigure11FastLadder(t *testing.T) {
	rows := Figure11(true)
	times := map[string]float64{}
	dram := map[string]float64{}
	for _, r := range rows {
		times[r.Design] = r.TimeSec
		dram[r.Design] = r.DRAMGB
	}
	// The ladder must be present.
	for _, d := range []string{"SHARP+MAD", "MAD", "Base", "NTTDec", "HybRot", "CROPHE"} {
		if _, ok := times[d]; !ok {
			t.Fatalf("missing design %s", d)
		}
	}
	// §VII-D orderings: homogeneous+MAD slower than the baseline; Base
	// recovers; the full combination is fastest.
	if times["MAD"] <= times["SHARP+MAD"] {
		t.Errorf("MAD on CROPHE hw (%.3g) should be slower than SHARP+MAD (%.3g)",
			times["MAD"], times["SHARP+MAD"])
	}
	if times["Base"] >= times["MAD"] {
		t.Errorf("Base (%.3g) should beat MAD (%.3g)", times["Base"], times["MAD"])
	}
	if times["CROPHE"] > times["Base"] || times["CROPHE"] > times["NTTDec"] || times["CROPHE"] > times["HybRot"] {
		t.Errorf("full CROPHE (%.3g) should be fastest of the ladder", times["CROPHE"])
	}
	// Traffic reduction: the full design must access DRAM less than MAD.
	if dram["CROPHE"] >= dram["MAD"] {
		t.Errorf("CROPHE DRAM %.1f GB not below MAD %.1f GB", dram["CROPHE"], dram["MAD"])
	}
	if !strings.Contains(RenderFig11(rows), "FIGURE 11") {
		t.Error("render header")
	}
}

func TestTable4Utilisation(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 4 rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Util.PE <= 0 || r.Util.PE > 1 {
			t.Errorf("%s: PE util %.2f", r.Design, r.Util.PE)
		}
	}
	if !strings.Contains(RenderTable4(rows), "TABLE IV") {
		t.Error("render header")
	}
}

func TestRunDispatch(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		out, err := Run(id, true)
		if err != nil || out == "" {
			t.Errorf("Run(%s): %v", id, err)
		}
	}
	if _, err := Run("nope", true); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestSpeedupSummary(t *testing.T) {
	rows := Figure9(true)
	sum := SpeedupSummary(rows)
	if len(sum) == 0 {
		t.Fatal("empty summary")
	}
	for _, ps := range sum {
		if len(ps.Workloads) != len(ps.Speedups) {
			t.Fatalf("%s: %d workloads vs %d speedups",
				ps.Pairing, len(ps.Workloads), len(ps.Speedups))
		}
		for i, sp := range ps.Speedups {
			if sp <= 0 {
				t.Errorf("%s/%s: non-positive speedup", ps.Pairing, ps.Workloads[i])
			}
		}
	}
	// Ordering must be stable: the summary of a second run is identical.
	again := SpeedupSummary(Figure9(true))
	if len(again) != len(sum) {
		t.Fatalf("summary length changed between runs: %d vs %d", len(again), len(sum))
	}
	for i := range sum {
		if again[i].Pairing != sum[i].Pairing {
			t.Errorf("pairing order changed: %s vs %s", again[i].Pairing, sum[i].Pairing)
		}
		for j := range sum[i].Speedups {
			if again[i].Workloads[j] != sum[i].Workloads[j] || again[i].Speedups[j] != sum[i].Speedups[j] {
				t.Errorf("%s: entry %d changed between runs", sum[i].Pairing, j)
			}
		}
	}
}

func TestScheduleMemoization(t *testing.T) {
	ResetScheduleMemo()
	cold := Figure9(true)
	missesAfterCold := ScheduleMemoStats().Misses
	if missesAfterCold == 0 {
		t.Fatal("cold run should populate the cache")
	}
	warm := Figure9(true)
	stats := ScheduleMemoStats()
	hits, misses := stats.Hits, stats.Misses
	if misses != missesAfterCold {
		t.Errorf("warm run missed the cache: %d misses after cold, %d total", missesAfterCold, misses)
	}
	if hits == 0 {
		t.Error("warm run produced no cache hits")
	}
	if len(warm) != len(cold) {
		t.Fatalf("row count changed: %d vs %d", len(warm), len(cold))
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Errorf("row %d: cached result differs: %+v vs %+v", i, warm[i], cold[i])
		}
	}
}

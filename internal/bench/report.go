package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"crophe/internal/arch"
	"crophe/internal/parallel"
	"crophe/internal/sched"
	"crophe/internal/telemetry"
)

// ReportSchemaVersion identifies the BENCH_*.json layout. Bump it on any
// layout change; readers accept any version back to
// minReadableSchemaVersion so diffs against older baselines keep working.
//
// History:
//
//	v1 — id/wall_ms/alloc_bytes/alloc_objects/metrics
//	v2 — adds per-experiment "counters" (search/memo telemetry deltas)
//	v3 — adds the "kernels" experiment; metric keys containing "/ns_op"
//	     are machine measurements and carry cost semantics in Compare
//	     (increase-only, gated by the cost threshold) instead of the
//	     deterministic-metric tolerance
//	v4 — the "kernels" experiment additionally measures the ABFT-checked
//	     four-step transform; metric keys containing
//	     "/integrity_overhead_frac" carry an absolute gate in Compare
//	     (flagged whenever the NEW value exceeds maxIntegrityOverheadFrac,
//	     baseline or not) instead of either tolerance
const ReportSchemaVersion = 4

// minReadableSchemaVersion is the oldest layout LoadReport still parses:
// every field added since v1 is optional, so a v1 report reads cleanly.
const minReadableSchemaVersion = 1

// ExperimentResult is the machine-readable record of one experiment run:
// its cost (wall clock and allocation deltas over the run) and the
// headline metrics of the model itself, keyed by stable slash-separated
// names (encoding/json sorts map keys, so serialized output is
// byte-stable for equal content).
type ExperimentResult struct {
	ID           string             `json:"id"`
	WallMS       float64            `json:"wall_ms"`
	AllocBytes   uint64             `json:"alloc_bytes"`
	AllocObjects uint64             `json:"alloc_objects"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	// Counters (schema v2) are telemetry deltas over the experiment:
	// dataflow-search activity (sched/*) and schedule-memo traffic
	// (bench/*). They describe work done, not model output, and depend on
	// experiment order (a warm memo skips search), so Compare ignores
	// them.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// Report is the top-level BENCH_*.json document.
type Report struct {
	SchemaVersion int                `json:"schema_version"`
	CreatedAt     string             `json:"created_at"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	Workers       int                `json:"workers"`
	Fast          bool               `json:"fast"`
	Experiments   []ExperimentResult `json:"experiments"`
}

// runWithMetrics runs one experiment and returns both its rendered text
// and its headline metrics, from a single evaluation.
func runWithMetrics(id string, fast bool) (string, map[string]float64, error) {
	switch id {
	case "table2":
		chip := arch.ChipModel(arch.CROPHE36).Total()
		return Table2(), map[string]float64{
			"table2/area_mm2/total": chip.AreaMM2,
			"table2/power_w/total":  chip.PowerW,
		}, nil
	case "table4":
		rows, err := Table4()
		if err != nil {
			return "", nil, err
		}
		m := map[string]float64{}
		for _, r := range rows {
			m["table4/pe_util/"+r.Design] = r.Util.PE
		}
		return RenderTable4(rows), m, nil
	case "fig9":
		rows := Figure9(fast)
		m := map[string]float64{}
		for _, ps := range SpeedupSummary(rows) {
			for j, sp := range ps.Speedups {
				m["fig9/speedup/"+ps.Pairing+"/"+ps.Workloads[j]] = sp
			}
		}
		return RenderFig9(rows), m, nil
	case "fig10":
		rows := Figure10(fast)
		m := map[string]float64{}
		for _, r := range rows {
			m[fmt.Sprintf("fig10/speedup/%s/%s/%gMB", r.Pairing, r.Workload, r.SRAMMB)] = r.Speedup
		}
		return RenderFig10(rows), m, nil
	case "fig11":
		rows := Figure11(fast)
		m := map[string]float64{}
		ladder := map[string]map[string]float64{}
		for _, r := range rows {
			m[fmt.Sprintf("fig11/time_ms/%s/%s", r.Variant, r.Design)] = r.TimeSec * 1e3
			if ladder[r.Variant] == nil {
				ladder[r.Variant] = map[string]float64{}
			}
			ladder[r.Variant][r.Design] = r.TimeSec
		}
		for v, t := range ladder {
			if t["MAD"] > 0 && t["CROPHE"] > 0 {
				m["fig11/ladder_speedup/"+v] = t["MAD"] / t["CROPHE"]
			}
		}
		return RenderFig11(rows), m, nil
	case "ablations":
		rows := Ablations()
		m := map[string]float64{}
		for _, r := range rows {
			m[fmt.Sprintf("ablations/time_ms/%s/%s", r.Study, r.Setting)] = r.TimeSec * 1e3
		}
		return RenderAblations(rows), m, nil
	case "kernels":
		rows, err := Kernels(fast)
		if err != nil {
			return "", nil, err
		}
		irows, err := KernelIntegrity(fast)
		if err != nil {
			return "", nil, err
		}
		m := kernelMetrics(rows)
		for k, v := range integrityMetrics(irows) {
			m[k] = v
		}
		return RenderKernels(rows) + "\n" + RenderKernelIntegrity(irows), m, nil
	default:
		out, err := Run(id, fast)
		return out, nil, err
	}
}

// Collect runs the given experiments in order and assembles a Report.
// emit, when non-nil, receives each experiment's rendered text as it
// completes (so -json keeps the human-readable output). Allocation deltas
// come from the runtime's monotonic TotalAlloc/Mallocs counters, so they
// are unaffected by GC timing; wall clock is the only noisy field.
func Collect(ids []string, fast bool, emit func(id, rendered string)) (*Report, error) {
	return CollectWithTelemetry(ids, fast, emit, nil)
}

// CollectWithTelemetry is Collect with an optional collector attached
// (crophe-bench's -trace flag): each experiment becomes a wall-clock span
// on the "Bench" track and the per-experiment counter deltas accumulate
// into the collector. A nil collector behaves exactly like Collect.
func CollectWithTelemetry(ids []string, fast bool, emit func(id, rendered string), tel *telemetry.Collector) (*Report, error) {
	tel.SetTimeUnit("ms")
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workers:       parallel.Workers(),
		Fast:          fast,
	}
	var ms runtime.MemStats
	var elapsedMS float64
	for _, id := range ids {
		runtime.ReadMemStats(&ms)
		bytes0, objs0 := ms.TotalAlloc, ms.Mallocs
		search0 := sched.Stats()
		memo0 := ScheduleMemoStats()
		start := time.Now()
		out, metrics, err := runWithMetrics(id, fast)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		search1 := sched.Stats()
		memo1 := ScheduleMemoStats()
		if emit != nil {
			emit(id, out)
		}
		counters := map[string]float64{
			"sched/candidates":       float64(search1.Candidates - search0.Candidates),
			"sched/pruned":           float64(search1.Pruned - search0.Pruned),
			"sched/seg_cache_hits":   float64(search1.CacheHits - search0.CacheHits),
			"sched/seg_cache_misses": float64(search1.CacheMisses - search0.CacheMisses),
			"bench/memo_hits":        float64(memo1.Hits - memo0.Hits),
			"bench/memo_misses":      float64(memo1.Misses - memo0.Misses),
		}
		wallMS := float64(wall.Nanoseconds()) / 1e6
		if tel.Enabled() {
			tel.EmitSpan("Bench", "experiments", id, elapsedMS, wallMS,
				telemetry.Arg{Key: "alloc_mb", Value: float64(ms.TotalAlloc-bytes0) / 1e6})
			for name, v := range counters {
				// EmitCounter accumulates, so map order does not matter.
				tel.EmitCounter(name, v)
			}
		}
		elapsedMS += wallMS
		rep.Experiments = append(rep.Experiments, ExperimentResult{
			ID:           id,
			WallMS:       wallMS,
			AllocBytes:   ms.TotalAlloc - bytes0,
			AllocObjects: ms.Mallocs - objs0,
			Metrics:      metrics,
			Counters:     counters,
		})
	}
	return rep, nil
}

// Save writes the report as indented JSON.
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a BENCH_*.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.SchemaVersion < minReadableSchemaVersion || r.SchemaVersion > ReportSchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, want %d..%d",
			path, r.SchemaVersion, minReadableSchemaVersion, ReportSchemaVersion)
	}
	return &r, nil
}

// Regression is one flagged difference between two reports.
type Regression struct {
	Experiment string
	Metric     string // "wall_ms", "alloc_bytes", "alloc_objects", or a metrics key
	Old, New   float64
	Delta      float64 // relative change, (new-old)/old
	Structural bool    // an experiment or metric disappeared
}

// Cost fields below these absolute deltas are never flagged, whatever
// the relative change: micro-experiments (a table render taking tens of
// microseconds) see large relative wall-clock noise on loaded machines,
// and sync.Pool contents surviving or not surviving a GC shifts
// allocation counts slightly.
const (
	minWallDeltaMS    = 10
	minAllocDeltaB    = 1 << 20 // 1 MiB
	minAllocDeltaObjs = 10000
)

// maxIntegrityOverheadFrac is the absolute ceiling on the measured ABFT
// overhead of the checked transforms (schema v4): the fused-checksum
// design budgets the verification at 3% of the unchecked kernel, and
// Compare flags any new report whose measured fraction exceeds it —
// whether or not the baseline had the metric at all.
const maxIntegrityOverheadFrac = 0.03

// isCostMetric reports whether a metric key records a machine
// measurement (per-op wall clock) rather than deterministic model
// output. The "/ns_op" path component is the marker, introduced with the
// kernels experiment in schema v3.
func isCostMetric(k string) bool {
	return strings.Contains(k, "/ns_op")
}

// isIntegrityGate reports whether a metric key is an ABFT overhead
// fraction, gated absolutely (schema v4) rather than relative to the
// baseline.
func isIntegrityGate(k string) bool {
	return strings.Contains(k, "/integrity_overhead_frac")
}

// Compare diffs two reports. Cost fields (wall clock, allocations) are
// noisy, so only increases beyond costThreshold that also clear an
// absolute-significance floor are flagged. Model metrics are
// deterministic — schedules are exhaustive sweeps with no randomness —
// so any relative drift beyond metricTol is flagged, in either
// direction; the exception is ns_op metric keys (see isCostMetric),
// which are measurements and get the cost treatment instead.
// Experiments or metrics present in old but missing in new
// are structural regressions. New entries are not flagged.
func Compare(oldR, newR *Report, costThreshold, metricTol float64) []Regression {
	var regs []Regression
	newExp := map[string]ExperimentResult{}
	for _, e := range newR.Experiments {
		newExp[e.ID] = e
	}
	for _, oe := range oldR.Experiments {
		ne, ok := newExp[oe.ID]
		if !ok {
			regs = append(regs, Regression{Experiment: oe.ID, Metric: "experiment", Structural: true})
			continue
		}
		for _, c := range []struct {
			name     string
			old, new float64
			floor    float64
		}{
			{"wall_ms", oe.WallMS, ne.WallMS, minWallDeltaMS},
			{"alloc_bytes", float64(oe.AllocBytes), float64(ne.AllocBytes), minAllocDeltaB},
			{"alloc_objects", float64(oe.AllocObjects), float64(ne.AllocObjects), minAllocDeltaObjs},
		} {
			if c.old > 0 && c.new > c.old*(1+costThreshold) && c.new-c.old > c.floor {
				regs = append(regs, Regression{
					Experiment: oe.ID, Metric: c.name,
					Old: c.old, New: c.new, Delta: (c.new - c.old) / c.old,
				})
			}
		}
		keys := make([]string, 0, len(oe.Metrics))
		for k := range oe.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov := oe.Metrics[k]
			nv, ok := ne.Metrics[k]
			if !ok {
				regs = append(regs, Regression{Experiment: oe.ID, Metric: k, Old: ov, Structural: true})
				continue
			}
			if isIntegrityGate(k) {
				continue // handled by the absolute scan over the new report below
			}
			if isCostMetric(k) {
				// Machine measurement (schema v3): noisy like wall_ms,
				// so only a thresholded increase counts; speedups never
				// flag.
				if ov > 0 && nv > ov*(1+costThreshold) {
					regs = append(regs, Regression{
						Experiment: oe.ID, Metric: k, Old: ov, New: nv, Delta: (nv - ov) / ov,
					})
				}
				continue
			}
			denom := math.Max(math.Abs(ov), 1e-12)
			delta := (nv - ov) / denom
			if math.Abs(delta) > metricTol {
				regs = append(regs, Regression{
					Experiment: oe.ID, Metric: k, Old: ov, New: nv, Delta: delta,
				})
			}
		}
	}
	// The integrity gate is absolute: scan the NEW report, so a breach is
	// flagged even against a baseline predating the metric, and an old
	// report that already breached does not grandfather the regression.
	for _, ne := range newR.Experiments {
		keys := make([]string, 0, len(ne.Metrics))
		for k := range ne.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !isIntegrityGate(k) {
				continue
			}
			if nv := ne.Metrics[k]; nv > maxIntegrityOverheadFrac {
				regs = append(regs, Regression{
					Experiment: ne.ID, Metric: k,
					Old: maxIntegrityOverheadFrac, New: nv,
					Delta: (nv - maxIntegrityOverheadFrac) / maxIntegrityOverheadFrac,
				})
			}
		}
	}
	return regs
}

// RenderComparison formats a Compare result for the terminal.
func RenderComparison(regs []Regression) string {
	if len(regs) == 0 {
		return "no regressions\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d regression(s):\n", len(regs))
	for _, r := range regs {
		if r.Structural {
			fmt.Fprintf(&b, "  %-10s %-50s MISSING (was %g)\n", r.Experiment, r.Metric, r.Old)
			continue
		}
		fmt.Fprintf(&b, "  %-10s %-50s %12.4g -> %-12.4g (%+.1f%%)\n",
			r.Experiment, r.Metric, r.Old, r.New, r.Delta*100)
	}
	return b.String()
}

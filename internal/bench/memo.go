package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crophe/internal/arch"
	"crophe/internal/sched"
)

// memoKey identifies one (design, hardware, workload) evaluation. The
// design part spells out every field that changes scheduling behaviour
// (name alone is not enough: Figure 11 reuses short names like "MAD"
// across hardware variants); the hardware part is arch.ConfigHash, so
// Figure 10 sweep points at distinct SRAM capacities get distinct
// entries; the workload part couples the benchmark name with the
// parameter set it is instantiated under.
type memoKey struct {
	design   string
	hw       uint64
	workload string
}

var (
	scheduleMemo sync.Map // memoKey -> *sched.Schedule
	memoHits     atomic.Uint64
	memoMisses   atomic.Uint64
)

func designKey(d sched.Design) string {
	return fmt.Sprintf("%s|%s|ntt=%t|hyb=%t|cl=%d",
		d.Name, d.Dataflow, d.NTTDec, d.HybridRot, d.Clusters)
}

// evaluateMemo evaluates the design on the named workload, consulting the
// process-global schedule cache first. Design evaluation is deterministic
// (an exhaustive sweep over rotation-structure candidates), so a cached
// schedule is bit-identical to a fresh one. Cached schedules are shared
// across experiments and goroutines: callers must treat them as
// read-only, which every consumer in this package does (they read
// TimeSec, Traffic and Util, and the cycle simulator only reads the
// schedule it validates).
func evaluateMemo(d sched.Design, workloadKey string, factory sched.WorkloadFactory) *sched.Schedule {
	key := memoKey{design: designKey(d), hw: arch.ConfigHash(d.HW), workload: workloadKey}
	if v, ok := scheduleMemo.Load(key); ok {
		memoHits.Add(1)
		return v.(*sched.Schedule)
	}
	// Concurrent misses on the same key may both evaluate; both produce
	// the same schedule, so the duplicate work is bounded and harmless.
	s := d.Evaluate(factory)
	scheduleMemo.Store(key, s)
	memoMisses.Add(1)
	return s
}

// ScheduleMemoStats returns the cumulative cache hit/miss counts.
func ScheduleMemoStats() (hits, misses uint64) {
	return memoHits.Load(), memoMisses.Load()
}

// ResetScheduleMemo clears the schedule cache and its counters. Intended
// for tests and for benchmarks that want to measure cold-start cost.
func ResetScheduleMemo() {
	scheduleMemo.Range(func(k, _ any) bool {
		scheduleMemo.Delete(k)
		return true
	})
	memoHits.Store(0)
	memoMisses.Store(0)
}

package bench

import (
	"fmt"
	"sort"
	"sync"

	"crophe/internal/arch"
	"crophe/internal/sched"
)

// memoKey identifies one (design, hardware, workload) evaluation. The
// design part spells out every field that changes scheduling behaviour
// (name alone is not enough: Figure 11 reuses short names like "MAD"
// across hardware variants); the hardware part is arch.ConfigHash, so
// Figure 10 sweep points at distinct SRAM capacities get distinct
// entries; the workload part couples the benchmark name with the
// parameter set it is instantiated under.
type memoKey struct {
	design   string
	hw       uint64
	workload string
}

// memoEntry is one cache slot. ready is closed once the evaluation
// finishes; until then concurrent misses on the same key block on it
// (single-flight) instead of duplicating the multi-hundred-millisecond
// schedule search. lastUse is a coarse logical clock driving LRU
// eviction; it is only read and written under memoMu.
type memoEntry struct {
	ready   chan struct{}
	s       *sched.Schedule // nil until ready is closed; nil after close means the evaluation panicked
	lastUse uint64
}

// DefaultScheduleMemoCapacity bounds the schedule cache. The full paper
// reproduction needs well under a hundred distinct (design, hw, workload)
// points, so the default is generous for batch runs while keeping a
// long-running server's footprint flat.
const DefaultScheduleMemoCapacity = 256

var (
	memoMu    sync.Mutex
	memoMap   = make(map[memoKey]*memoEntry)
	memoClock uint64
	memoCap   = DefaultScheduleMemoCapacity

	// warmMap is the second tier: summaries imported from another
	// process's snapshot (the coordinator's warm-start shipment). A warm
	// entry answers summary-only lookups without running the DP search;
	// it never substitutes for a full *sched.Schedule.
	warmMap = make(map[memoKey]sched.ScheduleSummary)

	memoHits      uint64
	memoMisses    uint64
	memoEvictions uint64
	memoWarmHits  uint64
)

func designKey(d sched.Design) string {
	return fmt.Sprintf("%s|%s|ntt=%t|hyb=%t|cl=%d",
		d.Name, d.Dataflow, d.NTTDec, d.HybridRot, d.Clusters)
}

// evaluateMemo evaluates the design on the named workload, consulting the
// process-global schedule cache first. Design evaluation is deterministic
// (an exhaustive sweep over rotation-structure candidates), so a cached
// schedule is bit-identical to a fresh one. Cached schedules are shared
// across experiments and goroutines: callers must treat them as
// read-only, which every consumer in this package does (they read
// TimeSec, Traffic and Util, and the cycle simulator only reads the
// schedule it validates).
//
// Concurrent misses on the same key single-flight: the first caller
// evaluates, later callers block on the entry's ready channel and share
// the result. If the evaluating caller panics, waiters observe a nil
// schedule and evaluate for themselves (the panic propagates on the
// original goroutine only).
func evaluateMemo(d sched.Design, workloadKey string, factory sched.WorkloadFactory) *sched.Schedule {
	s, _ := evaluateMemoHit(d, workloadKey, factory)
	return s
}

// evaluateMemoHit is evaluateMemo plus a report of whether the full tier
// answered (true) or the search ran (false) — the signal the summary
// path uses to distinguish hit from miss.
func evaluateMemoHit(d sched.Design, workloadKey string, factory sched.WorkloadFactory) (*sched.Schedule, bool) {
	key := memoKey{design: designKey(d), hw: arch.ConfigHash(d.HW), workload: workloadKey}
	for {
		memoMu.Lock()
		if e, ok := memoMap[key]; ok {
			memoClock++
			e.lastUse = memoClock
			memoMu.Unlock()
			<-e.ready
			if e.s != nil {
				memoMu.Lock()
				memoHits++
				memoMu.Unlock()
				return e.s, true
			}
			// The flight that owned this entry panicked and removed it;
			// retry, becoming the owner ourselves if nobody beat us to it.
			continue
		}
		e := &memoEntry{ready: make(chan struct{})}
		memoClock++
		e.lastUse = memoClock
		memoMap[key] = e
		memoMisses++
		memoMu.Unlock()

		ok := false
		defer func() {
			// On panic: drop the placeholder so the key stays evaluable and
			// wake waiters (they see a nil schedule and re-evaluate).
			if !ok {
				memoMu.Lock()
				delete(memoMap, key)
				memoMu.Unlock()
				close(e.ready)
			}
		}()
		s := d.Evaluate(factory)
		ok = true

		memoMu.Lock()
		e.s = s
		// A fully evaluated schedule supersedes a warm-tier summary.
		delete(warmMap, key)
		evictOverCapLocked(key)
		memoMu.Unlock()
		close(e.ready)
		return s, false
	}
}

// evictOverCapLocked evicts least-recently-used ready entries until the
// cache fits its capacity, never evicting keep (the entry just inserted)
// or entries still in flight. Called with memoMu held. The scan is linear
// — coarse, but the cache is small and eviction only fires on inserts
// past capacity, never on the hit path.
func evictOverCapLocked(keep memoKey) {
	for len(memoMap) > memoCap {
		var victim memoKey
		var victimUse uint64
		found := false
		for k, e := range memoMap {
			if k == keep || e.s == nil {
				continue
			}
			if !found || e.lastUse < victimUse {
				victim, victimUse, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(memoMap, victim)
		memoEvictions++
	}
}

// EvaluateMemoized is the exported entry to the schedule cache, used by
// the serving layer for full-fidelity (no deadline) schedule requests:
// identical concurrent requests coalesce into one evaluation and repeat
// requests are cache hits. workloadKey must uniquely identify the
// workload the factory builds (benchmark name + parameter set).
func EvaluateMemoized(d sched.Design, workloadKey string, factory sched.WorkloadFactory) *sched.Schedule {
	return evaluateMemo(d, workloadKey, factory)
}

// MemoSource reports which tier answered a summary lookup.
type MemoSource string

// Summary-lookup sources: a full-tier hit shared an evaluated schedule,
// a warm hit answered from an imported snapshot, a miss ran the search.
const (
	MemoMiss MemoSource = "miss"
	MemoHit  MemoSource = "hit"
	MemoWarm MemoSource = "warm"
)

// Cached reports whether the lookup avoided the schedule search.
func (s MemoSource) Cached() bool { return s != MemoMiss }

// EvaluateMemoizedSummary answers a summary-only schedule lookup through
// both cache tiers: the full single-flight LRU first, then the warm tier
// of summaries imported from another process's snapshot, and only then
// the schedule search itself (which populates the full tier as usual).
// Serving handlers that read nothing beyond the summary fields use this
// so a freshly joined worker skips cold DP searches the cluster has
// already paid for.
func EvaluateMemoizedSummary(d sched.Design, workloadKey string, factory sched.WorkloadFactory) (sched.ScheduleSummary, MemoSource) {
	key := memoKey{design: designKey(d), hw: arch.ConfigHash(d.HW), workload: workloadKey}
	memoMu.Lock()
	if _, full := memoMap[key]; !full {
		if sum, ok := warmMap[key]; ok {
			memoWarmHits++
			memoMu.Unlock()
			return sum, MemoWarm
		}
	}
	memoMu.Unlock()
	s, hit := evaluateMemoHit(d, workloadKey, factory)
	if hit {
		return sched.Summarize(s), MemoHit
	}
	return sched.Summarize(s), MemoMiss
}

// MemoSnapshotV is the wire version of the snapshot format.
const MemoSnapshotV = 1

// MemoSnapshotEntry is one (design, hardware, workload) summary in a
// snapshot. Design is the canonical design key, HW the arch.ConfigHash —
// together with the workload key they reproduce the cache key exactly,
// so an imported entry answers precisely the lookups the exporting
// process would have answered.
type MemoSnapshotEntry struct {
	Design   string                `json:"design"`
	HW       uint64                `json:"hw"`
	Workload string                `json:"workload"`
	Summary  sched.ScheduleSummary `json:"summary"`
}

// MemoSnapshot is the serializable warm-start state of the schedule
// cache: every ready full-tier entry (summarized) plus the warm tier,
// in deterministic (design, hw, workload) order.
type MemoSnapshot struct {
	V       int                 `json:"v"`
	Entries []MemoSnapshotEntry `json:"entries"`
}

// ExportScheduleMemo snapshots the cache for shipment to another process
// (GET /v1/memo/snapshot). In-flight evaluations are skipped — only
// ready schedules and already-imported warm summaries export.
func ExportScheduleMemo() MemoSnapshot {
	memoMu.Lock()
	snap := MemoSnapshot{V: MemoSnapshotV}
	for k, e := range memoMap {
		select {
		case <-e.ready:
		default:
			continue // still evaluating
		}
		if e.s == nil {
			continue
		}
		snap.Entries = append(snap.Entries, MemoSnapshotEntry{
			Design: k.design, HW: k.hw, Workload: k.workload, Summary: sched.Summarize(e.s),
		})
	}
	for k, sum := range warmMap {
		if _, ok := memoMap[k]; ok {
			continue
		}
		snap.Entries = append(snap.Entries, MemoSnapshotEntry{
			Design: k.design, HW: k.hw, Workload: k.workload, Summary: sum,
		})
	}
	memoMu.Unlock()
	sort.Slice(snap.Entries, func(i, j int) bool {
		a, b := snap.Entries[i], snap.Entries[j]
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.HW != b.HW {
			return a.HW < b.HW
		}
		return a.Workload < b.Workload
	})
	return snap
}

// ImportScheduleMemo merges a snapshot into the warm tier, returning how
// many entries were installed. Entries already covered by the full tier
// or the warm tier are skipped (a locally evaluated schedule always
// wins), and the warm tier is bounded by the cache capacity — entries
// past the bound are dropped in the snapshot's deterministic order.
func ImportScheduleMemo(snap MemoSnapshot) (int, error) {
	if snap.V != MemoSnapshotV {
		return 0, fmt.Errorf("bench: unsupported memo snapshot version %d (want %d)", snap.V, MemoSnapshotV)
	}
	memoMu.Lock()
	defer memoMu.Unlock()
	added := 0
	for _, e := range snap.Entries {
		key := memoKey{design: e.Design, hw: e.HW, workload: e.Workload}
		if _, ok := memoMap[key]; ok {
			continue
		}
		if _, ok := warmMap[key]; ok {
			continue
		}
		if len(warmMap) >= memoCap {
			break
		}
		warmMap[key] = e.Summary
		added++
	}
	return added, nil
}

// MemoStats is a snapshot of the schedule cache: cumulative hit, miss and
// eviction counts plus the current size and configured capacity.
type MemoStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
	// Warm tier (imported snapshot summaries).
	WarmHits    uint64
	WarmEntries int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (m MemoStats) HitRate() float64 {
	total := m.Hits + m.Misses
	if total == 0 {
		return 0
	}
	return float64(m.Hits) / float64(total)
}

// ScheduleMemoStats returns a snapshot of the schedule-cache counters.
func ScheduleMemoStats() MemoStats {
	memoMu.Lock()
	defer memoMu.Unlock()
	return MemoStats{
		Hits:        memoHits,
		Misses:      memoMisses,
		Evictions:   memoEvictions,
		Size:        len(memoMap),
		Capacity:    memoCap,
		WarmHits:    memoWarmHits,
		WarmEntries: len(warmMap),
	}
}

// SetScheduleMemoCapacity bounds the cache to n entries (n < 1 clamps to
// 1) and evicts immediately if the cache is already over the new bound.
// Returns the previous capacity.
func SetScheduleMemoCapacity(n int) int {
	if n < 1 {
		n = 1
	}
	memoMu.Lock()
	defer memoMu.Unlock()
	prev := memoCap
	memoCap = n
	evictOverCapLocked(memoKey{})
	return prev
}

// ResetScheduleMemo clears the schedule cache and its counters. Intended
// for tests and for benchmarks that want to measure cold-start cost.
func ResetScheduleMemo() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memoMap = make(map[memoKey]*memoEntry)
	warmMap = make(map[memoKey]sched.ScheduleSummary)
	memoHits, memoMisses, memoEvictions, memoWarmHits = 0, 0, 0, 0
}

package bench

import (
	"fmt"
	"sync"

	"crophe/internal/arch"
	"crophe/internal/sched"
)

// memoKey identifies one (design, hardware, workload) evaluation. The
// design part spells out every field that changes scheduling behaviour
// (name alone is not enough: Figure 11 reuses short names like "MAD"
// across hardware variants); the hardware part is arch.ConfigHash, so
// Figure 10 sweep points at distinct SRAM capacities get distinct
// entries; the workload part couples the benchmark name with the
// parameter set it is instantiated under.
type memoKey struct {
	design   string
	hw       uint64
	workload string
}

// memoEntry is one cache slot. ready is closed once the evaluation
// finishes; until then concurrent misses on the same key block on it
// (single-flight) instead of duplicating the multi-hundred-millisecond
// schedule search. lastUse is a coarse logical clock driving LRU
// eviction; it is only read and written under memoMu.
type memoEntry struct {
	ready   chan struct{}
	s       *sched.Schedule // nil until ready is closed; nil after close means the evaluation panicked
	lastUse uint64
}

// DefaultScheduleMemoCapacity bounds the schedule cache. The full paper
// reproduction needs well under a hundred distinct (design, hw, workload)
// points, so the default is generous for batch runs while keeping a
// long-running server's footprint flat.
const DefaultScheduleMemoCapacity = 256

var (
	memoMu    sync.Mutex
	memoMap   = make(map[memoKey]*memoEntry)
	memoClock uint64
	memoCap   = DefaultScheduleMemoCapacity

	memoHits      uint64
	memoMisses    uint64
	memoEvictions uint64
)

func designKey(d sched.Design) string {
	return fmt.Sprintf("%s|%s|ntt=%t|hyb=%t|cl=%d",
		d.Name, d.Dataflow, d.NTTDec, d.HybridRot, d.Clusters)
}

// evaluateMemo evaluates the design on the named workload, consulting the
// process-global schedule cache first. Design evaluation is deterministic
// (an exhaustive sweep over rotation-structure candidates), so a cached
// schedule is bit-identical to a fresh one. Cached schedules are shared
// across experiments and goroutines: callers must treat them as
// read-only, which every consumer in this package does (they read
// TimeSec, Traffic and Util, and the cycle simulator only reads the
// schedule it validates).
//
// Concurrent misses on the same key single-flight: the first caller
// evaluates, later callers block on the entry's ready channel and share
// the result. If the evaluating caller panics, waiters observe a nil
// schedule and evaluate for themselves (the panic propagates on the
// original goroutine only).
func evaluateMemo(d sched.Design, workloadKey string, factory sched.WorkloadFactory) *sched.Schedule {
	key := memoKey{design: designKey(d), hw: arch.ConfigHash(d.HW), workload: workloadKey}
	for {
		memoMu.Lock()
		if e, ok := memoMap[key]; ok {
			memoClock++
			e.lastUse = memoClock
			memoMu.Unlock()
			<-e.ready
			if e.s != nil {
				memoMu.Lock()
				memoHits++
				memoMu.Unlock()
				return e.s
			}
			// The flight that owned this entry panicked and removed it;
			// retry, becoming the owner ourselves if nobody beat us to it.
			continue
		}
		e := &memoEntry{ready: make(chan struct{})}
		memoClock++
		e.lastUse = memoClock
		memoMap[key] = e
		memoMisses++
		memoMu.Unlock()

		ok := false
		defer func() {
			// On panic: drop the placeholder so the key stays evaluable and
			// wake waiters (they see a nil schedule and re-evaluate).
			if !ok {
				memoMu.Lock()
				delete(memoMap, key)
				memoMu.Unlock()
				close(e.ready)
			}
		}()
		s := d.Evaluate(factory)
		ok = true

		memoMu.Lock()
		e.s = s
		evictOverCapLocked(key)
		memoMu.Unlock()
		close(e.ready)
		return s
	}
}

// evictOverCapLocked evicts least-recently-used ready entries until the
// cache fits its capacity, never evicting keep (the entry just inserted)
// or entries still in flight. Called with memoMu held. The scan is linear
// — coarse, but the cache is small and eviction only fires on inserts
// past capacity, never on the hit path.
func evictOverCapLocked(keep memoKey) {
	for len(memoMap) > memoCap {
		var victim memoKey
		var victimUse uint64
		found := false
		for k, e := range memoMap {
			if k == keep || e.s == nil {
				continue
			}
			if !found || e.lastUse < victimUse {
				victim, victimUse, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(memoMap, victim)
		memoEvictions++
	}
}

// EvaluateMemoized is the exported entry to the schedule cache, used by
// the serving layer for full-fidelity (no deadline) schedule requests:
// identical concurrent requests coalesce into one evaluation and repeat
// requests are cache hits. workloadKey must uniquely identify the
// workload the factory builds (benchmark name + parameter set).
func EvaluateMemoized(d sched.Design, workloadKey string, factory sched.WorkloadFactory) *sched.Schedule {
	return evaluateMemo(d, workloadKey, factory)
}

// MemoStats is a snapshot of the schedule cache: cumulative hit, miss and
// eviction counts plus the current size and configured capacity.
type MemoStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (m MemoStats) HitRate() float64 {
	total := m.Hits + m.Misses
	if total == 0 {
		return 0
	}
	return float64(m.Hits) / float64(total)
}

// ScheduleMemoStats returns a snapshot of the schedule-cache counters.
func ScheduleMemoStats() MemoStats {
	memoMu.Lock()
	defer memoMu.Unlock()
	return MemoStats{
		Hits:      memoHits,
		Misses:    memoMisses,
		Evictions: memoEvictions,
		Size:      len(memoMap),
		Capacity:  memoCap,
	}
}

// SetScheduleMemoCapacity bounds the cache to n entries (n < 1 clamps to
// 1) and evicts immediately if the cache is already over the new bound.
// Returns the previous capacity.
func SetScheduleMemoCapacity(n int) int {
	if n < 1 {
		n = 1
	}
	memoMu.Lock()
	defer memoMu.Unlock()
	prev := memoCap
	memoCap = n
	evictOverCapLocked(memoKey{})
	return prev
}

// ResetScheduleMemo clears the schedule cache and its counters. Intended
// for tests and for benchmarks that want to measure cold-start cost.
func ResetScheduleMemo() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memoMap = make(map[memoKey]*memoEntry)
	memoHits, memoMisses, memoEvictions = 0, 0, 0
}

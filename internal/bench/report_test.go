package bench

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"crophe/internal/telemetry"
)

func syntheticReport() *Report {
	return &Report{
		SchemaVersion: ReportSchemaVersion,
		CreatedAt:     "2026-01-01T00:00:00Z",
		GoMaxProcs:    1, Workers: 1, Fast: true,
		Experiments: []ExperimentResult{
			{ID: "fig9", WallMS: 100, AllocBytes: 10 << 20, AllocObjects: 100000,
				Metrics: map[string]float64{"fig9/speedup/A/boot": 1.7}},
			{ID: "table4", WallMS: 50, AllocBytes: 5 << 20, AllocObjects: 50000,
				Metrics: map[string]float64{"table4/pe_util/CROPHE-36": 0.8}},
		},
	}
}

func TestReportSaveLoadRoundTrip(t *testing.T) {
	rep := syntheticReport()
	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Errorf("round trip changed report:\n%s\n%s", a, b)
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	rep := syntheticReport()
	rep.SchemaVersion = ReportSchemaVersion + 1
	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Error("mismatched schema version should fail to load")
	}
}

func TestCompareCleanAndRegressed(t *testing.T) {
	base := syntheticReport()
	if regs := Compare(base, syntheticReport(), 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("identical reports flagged: %+v", regs)
	}

	// Wall-clock noise inside the threshold is tolerated.
	noisy := syntheticReport()
	noisy.Experiments[0].WallMS = 110
	if regs := Compare(base, noisy, 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("10%% wall noise flagged at 25%% threshold: %+v", regs)
	}

	// Injected synthetic regressions: slow wall clock, alloc growth,
	// metric drift, and a vanished metric must all be flagged.
	bad := syntheticReport()
	bad.Experiments[0].WallMS = 200
	bad.Experiments[0].Metrics["fig9/speedup/A/boot"] = 1.2
	bad.Experiments[1].AllocBytes = 50 << 20
	delete(bad.Experiments[1].Metrics, "table4/pe_util/CROPHE-36")
	regs := Compare(base, bad, 0.25, 1e-6)
	want := map[string]bool{"wall_ms": false, "fig9/speedup/A/boot": false,
		"alloc_bytes": false, "table4/pe_util/CROPHE-36": false}
	for _, r := range regs {
		if _, ok := want[r.Metric]; ok {
			want[r.Metric] = true
		}
	}
	for m, seen := range want {
		if !seen {
			t.Errorf("regression on %s not flagged (got %+v)", m, regs)
		}
	}
	// A dropped experiment is structural.
	short := syntheticReport()
	short.Experiments = short.Experiments[:1]
	regs = Compare(base, short, 0.25, 1e-6)
	found := false
	for _, r := range regs {
		if r.Experiment == "table4" && r.Structural {
			found = true
		}
	}
	if !found {
		t.Errorf("missing experiment not flagged: %+v", regs)
	}
}

func TestCollectProducesStableMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	ids := []string{"table2", "fig9"}
	var rendered int
	rep, err := Collect(ids, true, func(_, out string) {
		if out != "" {
			rendered++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rendered != len(ids) || len(rep.Experiments) != len(ids) {
		t.Fatalf("collected %d experiments, rendered %d, want %d", len(rep.Experiments), rendered, len(ids))
	}
	for _, e := range rep.Experiments {
		if e.WallMS < 0 {
			t.Errorf("%s: negative wall clock", e.ID)
		}
		if len(e.Metrics) == 0 {
			t.Errorf("%s: no metrics", e.ID)
		}
	}
	// The model is deterministic: a second collection yields identical
	// metrics (wall clock and allocations may differ).
	rep2, err := Collect(ids, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Compare(selectMetricsOnly(rep), selectMetricsOnly(rep2), 1e9, 1e-9); len(regs) != 0 {
		t.Errorf("metrics drifted between identical runs: %+v", regs)
	}
}

// selectMetricsOnly strips cost fields so Compare only sees the model
// metrics.
func selectMetricsOnly(r *Report) *Report {
	out := *r
	out.Experiments = nil
	for _, e := range r.Experiments {
		e.WallMS, e.AllocBytes, e.AllocObjects = 0, 0, 0
		out.Experiments = append(out.Experiments, e)
	}
	return &out
}

func TestLoadReportAcceptsOlderSchema(t *testing.T) {
	// A v1 baseline (pre-counters) must stay diffable against v2 runs.
	rep := syntheticReport()
	rep.SchemaVersion = minReadableSchemaVersion
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatalf("v%d report rejected: %v", minReadableSchemaVersion, err)
	}
	if regs := Compare(got, syntheticReport(), 0.25, 1e-6); len(regs) != 0 {
		t.Errorf("cross-version diff flagged equal content: %+v", regs)
	}
}

func TestCollectRecordsCountersAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tel := telemetry.New()
	rep, err := CollectWithTelemetry([]string{"table4"}, true, nil, tel)
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Experiments[0]
	if e.Counters == nil {
		t.Fatal("schema v2 experiment has no counters")
	}
	for _, key := range []string{"sched/candidates", "sched/seg_cache_misses", "bench/memo_hits"} {
		if _, ok := e.Counters[key]; !ok {
			t.Errorf("counter %s missing: %v", key, e.Counters)
		}
	}
	// The collector mirrors the counters and spans each experiment.
	if tel.SpanCount() != 1 {
		t.Fatalf("span count %d want 1 (one per experiment)", tel.SpanCount())
	}
	if tel.TimeUnit() != "ms" {
		t.Fatalf("bench trace time unit %q want ms", tel.TimeUnit())
	}
	if _, err := tel.ChromeTrace(); err != nil {
		t.Fatal(err)
	}
}

package bench

import (
	"strings"
	"testing"
)

func TestAblateGroupSize(t *testing.T) {
	rows := AblateGroupSize()
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Spatial pipelining must pay: the largest group bound beats size 1.
	first, last := rows[0], rows[len(rows)-1]
	if last.TimeSec >= first.TimeSec {
		t.Errorf("group size %s (%.3g) not faster than %s (%.3g)",
			last.Setting, last.TimeSec, first.Setting, first.TimeSec)
	}
}

func TestAblateRHybEndpoints(t *testing.T) {
	rows := AblateRHyb()
	times := map[string]float64{}
	for _, r := range rows {
		times[r.Setting] = r.TimeSec
	}
	// At the 90 MB setting Min-KS can keep its single evk resident —
	// the paper's "Min-KS works better in large-SRAM scenarios".
	if times["min-ks (endpoint)"] > times["hoisting (endpoint)"] {
		t.Errorf("min-ks (%.3g) should beat hoisting (%.3g) at 90 MB",
			times["min-ks (endpoint)"], times["hoisting (endpoint)"])
	}
	// Hybrid strides interpolate between the endpoints.
	for _, setting := range []string{"hybrid r=2", "hybrid r=4", "hybrid r=8"} {
		v := times[setting]
		lo, hi := times["min-ks (endpoint)"], times["hoisting (endpoint)"]
		if lo > hi {
			lo, hi = hi, lo
		}
		if v < lo*0.9 || v > hi*1.1 {
			t.Errorf("%s (%.3g) outside endpoint envelope [%.3g, %.3g]", setting, v, lo, hi)
		}
	}
}

func TestAblatePEAllocation(t *testing.T) {
	rows := AblatePEAllocation()
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	prop, uniform := rows[0], rows[1]
	if prop.TimeSec >= uniform.TimeSec {
		t.Errorf("proportional allocation (%.3g) should beat uniform (%.3g)",
			prop.TimeSec, uniform.TimeSec)
	}
}

func TestAblateNTTSplit(t *testing.T) {
	rows := AblateNTTSplit()
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeSec <= 0 {
			t.Errorf("%s: non-positive time", r.Setting)
		}
	}
}

func TestRenderAblations(t *testing.T) {
	out := RenderAblations(Ablations())
	for _, study := range []string{"group-size", "ntt-split", "r-hyb", "pe-alloc"} {
		if !strings.Contains(out, study) {
			t.Errorf("missing study %s", study)
		}
	}
}

func TestRunAblations(t *testing.T) {
	out, err := Run("ablations", true)
	if err != nil || !strings.Contains(out, "ABLATIONS") {
		t.Fatalf("Run(ablations): %v", err)
	}
}

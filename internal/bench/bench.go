// Package bench regenerates every table and figure of the paper's
// evaluation section. Each experiment returns structured rows and can
// render itself as text; cmd/crophe-bench and the repository-level
// benchmarks drive them.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"crophe/internal/arch"
	"crophe/internal/baseline"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/workload"
)

// Table1 renders the hardware configurations (Table I).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — HARDWARE CONFIGURATIONS\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %7s %7s %9s %9s %9s %10s\n",
		"Config", "Word", "GHz", "Lanes", "PEs", "DRAM TB/s", "SRAM TB/s", "SRAM MB", "Area mm²")
	for _, c := range arch.Table1() {
		area := arch.ChipModel(c).Total().AreaMM2
		fmt.Fprintf(&b, "%-12s %6d %6.1f %7d %7d %9.1f %9.1f %9.0f %10.1f\n",
			c.Name, c.WordBits, c.FreqGHz, c.Lanes, c.NumPEs,
			c.DRAMBandwidthTBs, c.SRAMBandwidthTBs, c.SRAMCapacityMB, area)
	}
	return b.String()
}

// Table2 renders the CROPHE-36 area/power breakdown (Table II).
func Table2() string {
	pe := arch.PEModel(arch.CROPHE36)
	chip := arch.ChipModel(arch.CROPHE36)
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — AREA AND POWER BREAKDOWN OF CROPHE-36\n")
	fmt.Fprintf(&b, "%-32s %14s %10s\n", "Component", "Area (µm²)", "Power (mW)")
	for _, c := range []arch.Component{pe.Multipliers, pe.AddersSubs, pe.RegFile, pe.InterLane, pe.Total()} {
		fmt.Fprintf(&b, "%-32s %14.2f %10.2f\n", c.Name, c.AreaMM2, c.PowerW)
	}
	fmt.Fprintf(&b, "%-32s %14s %10s\n", "", "Area (mm²)", "Power (W)")
	for _, c := range []arch.Component{chip.PEs, chip.NoC, chip.GlobalBuf, chip.Transpose, chip.HBMPHY, chip.Total()} {
		fmt.Fprintf(&b, "%-32s %14.2f %10.2f\n", c.Name, c.AreaMM2, c.PowerW)
	}
	return b.String()
}

// Table3 renders the parameter sets (Table III).
func Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — PARAMETER SETS\n")
	fmt.Fprintf(&b, "%-14s %6s %4s %6s %5s %6s\n", "Set", "log2N", "L", "Lboot", "dnum", "alpha")
	for _, p := range arch.Table3() {
		fmt.Fprintf(&b, "%-14s %6d %4d %6d %5d %6d\n", p.Name, p.LogN, p.L, p.LBoot, p.DNum, p.Alpha)
	}
	return b.String()
}

// Fig9Row is one bar of Figure 9: a design's time and speedup over the
// baseline+MAD reference, per workload.
type Fig9Row struct {
	Pairing  string
	Workload string
	Design   string
	TimeSec  float64
	Speedup  float64 // vs baseline+MAD on the same workload
}

// Figure9 runs the overall comparison. With fast=true only the ARK and
// SHARP pairings and the bootstrapping/ResNet-20 workloads run (for
// tests); the full run covers all four pairings and workloads.
func Figure9(fast bool) []Fig9Row {
	var rows []Fig9Row
	pairings := baseline.Pairings()
	names := baseline.WorkloadNames()
	if fast {
		pairings = pairings[1:3] // ARK, SHARP
		names = []string{"bootstrapping", "resnet-20"}
	}
	for _, p := range pairings {
		factories := p.WorkloadFactories()
		for _, wn := range names {
			factory := factories[wn]
			var baseTime float64
			for _, d := range p.Designs() {
				res := d.Evaluate(factory)
				if baseTime == 0 {
					baseTime = res.TimeSec
				}
				rows = append(rows, Fig9Row{
					Pairing:  p.Baseline.Name + " vs " + p.CROPHE.Name,
					Workload: wn,
					Design:   d.Name,
					TimeSec:  res.TimeSec,
					Speedup:  baseTime / res.TimeSec,
				})
			}
		}
	}
	return rows
}

// RenderFig9 formats Figure 9 rows.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 9 — OVERALL PERFORMANCE (speedup vs baseline+MAD)\n")
	fmt.Fprintf(&b, "%-24s %-14s %-14s %10s %9s\n", "Pairing", "Workload", "Design", "Time (ms)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-14s %-14s %10.3f %8.2fx\n",
			r.Pairing, r.Workload, r.Design, r.TimeSec*1e3, r.Speedup)
	}
	return b.String()
}

// Table4Row is one row of the resource-utilisation table.
type Table4Row struct {
	Design string
	Util   sched.Utilization
}

// Table4 measures resource utilisation on ResNet-20 via the cycle
// simulator, reproducing the Table IV design set.
func Table4() ([]Table4Row, error) {
	type cfg struct {
		name     string
		hw       *arch.HWConfig
		dataflow sched.Dataflow
		nttDec   bool
		hybrid   bool
		clusters int
		params   arch.ParamSet
	}
	cfgs := []cfg{
		{"ARK+MAD", arch.ARK, sched.DataflowMAD, false, false, 1, arch.ParamsARK},
		{"CROPHE-64", arch.CROPHE64, sched.DataflowCROPHE, true, true, 1, arch.ParamsARK},
		{"CROPHE-p-64", arch.CROPHE64, sched.DataflowCROPHE, true, true, 4, arch.ParamsARK},
		{"SHARP+MAD", arch.SHARP, sched.DataflowMAD, false, false, 1, arch.ParamsSHARP},
		{"CROPHE-36", arch.CROPHE36, sched.DataflowCROPHE, true, true, 1, arch.ParamsSHARP},
		{"CROPHE-p-36", arch.CROPHE36, sched.DataflowCROPHE, true, true, 4, arch.ParamsSHARP},
	}
	var rows []Table4Row
	for _, c := range cfgs {
		d := sched.Design{
			Name: c.name, HW: c.hw, Dataflow: c.dataflow,
			NTTDec: c.nttDec, HybridRot: c.hybrid, Clusters: c.clusters,
		}
		params := c.params
		factory := func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(params, 20, m, r)
		}
		s := d.Evaluate(factory)
		// Validate the schedule on the cycle simulator (its refined time
		// stays within the analytical envelope) but report the
		// scheduler's utilisation, which knows the traffic provenance.
		w := factory(workload.RotHoisted, 0)
		if _, err := sim.New(c.hw).SimulateSchedule(w, s); err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{Design: c.name, Util: s.Util})
	}
	return rows, nil
}

// RenderTable4 formats Table IV.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV — RESOURCE UTILISATION ON RESNET-20\n")
	fmt.Fprintf(&b, "%-14s %7s %7s %9s %9s\n", "Design", "PEs", "NoC bw", "SRAM bw", "DRAM bw")
	for _, r := range rows {
		noc := "-"
		if r.Util.NoC > 0 {
			noc = fmt.Sprintf("%.2f%%", r.Util.NoC*100)
		}
		fmt.Fprintf(&b, "%-14s %6.2f%% %7s %8.2f%% %8.2f%%\n",
			r.Design, r.Util.PE*100, noc, r.Util.SRAM*100, r.Util.DRAM*100)
	}
	return b.String()
}

// Fig10Row is one point of the SRAM sweep.
type Fig10Row struct {
	Pairing  string
	Workload string
	SRAMMB   float64
	Baseline float64 // seconds
	CROPHE   float64
	CROPHEP  float64
	Speedup  float64 // baseline / CROPHE
}

// Figure10 sweeps the global buffer capacity (Figure 10). fast restricts
// to bootstrapping on the SHARP pairing.
func Figure10(fast bool) []Fig10Row {
	type sweep struct {
		pairing baseline.Pairing
		sizes   []float64
	}
	sweeps := []sweep{
		{baseline.Pairings()[1], []float64{512, 256, 128, 64}}, // ARK vs CROPHE-64
		{baseline.Pairings()[2], []float64{180, 128, 90, 45}},  // SHARP vs CROPHE-36
	}
	names := baseline.WorkloadNames()
	if fast {
		sweeps = sweeps[1:]
		names = []string{"bootstrapping"}
	}
	var rows []Fig10Row
	for _, sw := range sweeps {
		factories := sw.pairing.WorkloadFactories()
		for _, wn := range names {
			factory := factories[wn]
			for _, size := range sw.sizes {
				base := sched.Design{
					Name: sw.pairing.Baseline.Name + "+MAD",
					HW:   sw.pairing.Baseline.WithSRAM(size), Dataflow: sched.DataflowMAD,
				}.Evaluate(factory)
				cro := sched.Design{
					Name: sw.pairing.CROPHE.Name,
					HW:   sw.pairing.CROPHE.WithSRAM(size), Dataflow: sched.DataflowCROPHE,
					NTTDec: true, HybridRot: true,
				}.Evaluate(factory)
				crop := sched.Design{
					Name: sw.pairing.CROPHE.Name + "-p",
					HW:   sw.pairing.CROPHE.WithSRAM(size), Dataflow: sched.DataflowCROPHE,
					NTTDec: true, HybridRot: true, Clusters: 4,
				}.Evaluate(factory)
				rows = append(rows, Fig10Row{
					Pairing:  sw.pairing.Baseline.Name + " vs " + sw.pairing.CROPHE.Name,
					Workload: wn,
					SRAMMB:   size,
					Baseline: base.TimeSec,
					CROPHE:   cro.TimeSec,
					CROPHEP:  crop.TimeSec,
					Speedup:  base.TimeSec / cro.TimeSec,
				})
			}
		}
	}
	return rows
}

// RenderFig10 formats the sweep.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 10 — PERFORMANCE AT SMALLER SRAM CAPACITIES\n")
	fmt.Fprintf(&b, "%-22s %-14s %8s %12s %12s %12s %9s\n",
		"Pairing", "Workload", "SRAM MB", "Base (ms)", "CROPHE (ms)", "CROPHE-p", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-14s %8.0f %12.3f %12.3f %12.3f %8.2fx\n",
			r.Pairing, r.Workload, r.SRAMMB, r.Baseline*1e3, r.CROPHE*1e3, r.CROPHEP*1e3, r.Speedup)
	}
	return b.String()
}

// Fig11Row is one bar group of the ablation: a design's runtime plus its
// SRAM and DRAM traffic on the bootstrapping workload at small SRAM.
type Fig11Row struct {
	Variant string
	Design  string
	TimeSec float64
	SRAMGB  float64
	DRAMGB  float64
}

// Figure11 runs the optimisation-breakdown ablation on both CROPHE
// variants at reduced SRAM (the paper's small-capacity setting), plus the
// corresponding baseline reference.
func Figure11(fast bool) []Fig11Row {
	type variant struct {
		name    string
		hw      *arch.HWConfig
		base    *arch.HWConfig
		params  arch.ParamSet
		smallMB float64
	}
	variants := []variant{
		{"64-bit", arch.CROPHE64, arch.ARK, arch.ParamsARK, 128},
		{"36-bit", arch.CROPHE36, arch.SHARP, arch.ParamsSHARP, 45},
	}
	if fast {
		variants = variants[1:]
	}
	var rows []Fig11Row
	for _, v := range variants {
		params := v.params
		factory := func(m workload.RotMode, r int) *workload.Workload {
			return workload.Bootstrapping(params, m, r)
		}
		// Baseline reference.
		ref := sched.Design{
			Name: v.base.Name + "+MAD", HW: v.base.WithSRAM(v.smallMB),
			Dataflow: sched.DataflowMAD,
		}.Evaluate(factory)
		rows = append(rows, Fig11Row{
			Variant: v.name, Design: v.base.Name + "+MAD",
			TimeSec: ref.TimeSec,
			SRAMGB:  ref.Traffic.SRAM / 1e9, DRAMGB: ref.Traffic.DRAM / 1e9,
		})
		for _, d := range sched.AblationDesigns(v.hw.WithSRAM(v.smallMB)) {
			res := d.Evaluate(factory)
			rows = append(rows, Fig11Row{
				Variant: v.name, Design: d.Name,
				TimeSec: res.TimeSec,
				SRAMGB:  res.Traffic.SRAM / 1e9, DRAMGB: res.Traffic.DRAM / 1e9,
			})
		}
	}
	return rows
}

// RenderFig11 formats the ablation.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 11 — OPTIMISATION BREAKDOWN (bootstrapping, small SRAM)\n")
	fmt.Fprintf(&b, "%-8s %-12s %10s %10s %10s\n", "Variant", "Design", "Time (ms)", "SRAM (GB)", "DRAM (GB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-12s %10.3f %10.1f %10.1f\n",
			r.Variant, r.Design, r.TimeSec*1e3, r.SRAMGB, r.DRAMGB)
	}
	return b.String()
}

// Experiments lists the available experiment ids.
func Experiments() []string {
	return []string{"table1", "table2", "table3", "table4", "fig9", "fig10", "fig11", "ablations"}
}

// Run executes an experiment by id and returns its rendered output.
func Run(id string, fast bool) (string, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(), nil
	case "table4":
		rows, err := Table4()
		if err != nil {
			return "", err
		}
		return RenderTable4(rows), nil
	case "fig9":
		return RenderFig9(Figure9(fast)), nil
	case "fig10":
		return RenderFig10(Figure10(fast)), nil
	case "fig11":
		return RenderFig11(Figure11(fast)), nil
	case "ablations":
		return RenderAblations(Ablations()), nil
	}
	return "", fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
}

// SpeedupSummary extracts the headline CROPHE-vs-baseline speedups from
// Figure 9 rows, per pairing, in workload order.
func SpeedupSummary(rows []Fig9Row) map[string][]float64 {
	out := map[string][]float64{}
	keys := map[string]map[string]float64{}
	for _, r := range rows {
		if !strings.HasPrefix(r.Design, "CROPHE") || strings.HasSuffix(r.Design, "+MAD") {
			continue
		}
		if strings.HasSuffix(r.Design, "-p") {
			continue
		}
		if keys[r.Pairing] == nil {
			keys[r.Pairing] = map[string]float64{}
		}
		keys[r.Pairing][r.Workload] = r.Speedup
	}
	for pairing, m := range keys {
		var names []string
		for wn := range m {
			names = append(names, wn)
		}
		sort.Strings(names)
		for _, wn := range names {
			out[pairing] = append(out[pairing], m[wn])
		}
	}
	return out
}

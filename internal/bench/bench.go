// Package bench regenerates every table and figure of the paper's
// evaluation section. Each experiment returns structured rows and can
// render itself as text; cmd/crophe-bench and the repository-level
// benchmarks drive them.
package bench

import (
	"fmt"
	"strings"

	"crophe/internal/arch"
	"crophe/internal/baseline"
	"crophe/internal/parallel"
	"crophe/internal/sched"
	"crophe/internal/sim"
	"crophe/internal/workload"
)

// Table1 renders the hardware configurations (Table I).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — HARDWARE CONFIGURATIONS\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %7s %7s %9s %9s %9s %10s\n",
		"Config", "Word", "GHz", "Lanes", "PEs", "DRAM TB/s", "SRAM TB/s", "SRAM MB", "Area mm²")
	for _, c := range arch.Table1() {
		area := arch.ChipModel(c).Total().AreaMM2
		fmt.Fprintf(&b, "%-12s %6d %6.1f %7d %7d %9.1f %9.1f %9.0f %10.1f\n",
			c.Name, c.WordBits, c.FreqGHz, c.Lanes, c.NumPEs,
			c.DRAMBandwidthTBs, c.SRAMBandwidthTBs, c.SRAMCapacityMB, area)
	}
	return b.String()
}

// Table2 renders the CROPHE-36 area/power breakdown (Table II).
func Table2() string {
	pe := arch.PEModel(arch.CROPHE36)
	chip := arch.ChipModel(arch.CROPHE36)
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — AREA AND POWER BREAKDOWN OF CROPHE-36\n")
	fmt.Fprintf(&b, "%-32s %14s %10s\n", "Component", "Area (µm²)", "Power (mW)")
	for _, c := range []arch.Component{pe.Multipliers, pe.AddersSubs, pe.RegFile, pe.InterLane, pe.Total()} {
		fmt.Fprintf(&b, "%-32s %14.2f %10.2f\n", c.Name, c.AreaMM2, c.PowerW)
	}
	fmt.Fprintf(&b, "%-32s %14s %10s\n", "", "Area (mm²)", "Power (W)")
	for _, c := range []arch.Component{chip.PEs, chip.NoC, chip.GlobalBuf, chip.Transpose, chip.HBMPHY, chip.Total()} {
		fmt.Fprintf(&b, "%-32s %14.2f %10.2f\n", c.Name, c.AreaMM2, c.PowerW)
	}
	return b.String()
}

// Table3 renders the parameter sets (Table III).
func Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — PARAMETER SETS\n")
	fmt.Fprintf(&b, "%-14s %6s %4s %6s %5s %6s\n", "Set", "log2N", "L", "Lboot", "dnum", "alpha")
	for _, p := range arch.Table3() {
		fmt.Fprintf(&b, "%-14s %6d %4d %6d %5d %6d\n", p.Name, p.LogN, p.L, p.LBoot, p.DNum, p.Alpha)
	}
	return b.String()
}

// Fig9Row is one bar of Figure 9: a design's time and speedup over the
// baseline+MAD reference, per workload.
type Fig9Row struct {
	Pairing  string
	Workload string
	Design   string
	TimeSec  float64
	Speedup  float64 // vs baseline+MAD on the same workload
}

// Figure9 runs the overall comparison. With fast=true only the ARK and
// SHARP pairings and the bootstrapping/ResNet-20 workloads run (for
// tests); the full run covers all four pairings and workloads.
//
// The design×workload evaluations are independent, so they fan out
// across the worker pool (each backed by the schedule cache); rows come
// back in the same nested pairing→workload→design order as a serial run,
// and speedups are computed afterwards against each group's first design
// (the baseline+MAD reference), so results are deterministic.
func Figure9(fast bool) []Fig9Row {
	pairings := baseline.Pairings()
	names := baseline.WorkloadNames()
	if fast {
		pairings = pairings[1:3] // ARK, SHARP
		names = []string{"bootstrapping", "resnet-20"}
	}
	type job struct {
		pairing  string
		workload string
		wkey     string
		design   sched.Design
		factory  sched.WorkloadFactory
		first    bool // baseline reference of its (pairing, workload) group
	}
	var jobs []job
	for _, p := range pairings {
		factories := p.WorkloadFactories()
		pname := p.Baseline.Name + " vs " + p.CROPHE.Name
		for _, wn := range names {
			for di, d := range p.Designs() {
				jobs = append(jobs, job{
					pairing: pname, workload: wn,
					wkey:   p.Params.Name + "/" + wn,
					design: d, factory: factories[wn], first: di == 0,
				})
			}
		}
	}
	times := make([]float64, len(jobs))
	parallel.For(len(jobs), func(i int) {
		times[i] = evaluateMemo(jobs[i].design, jobs[i].wkey, jobs[i].factory).TimeSec
	})
	rows := make([]Fig9Row, len(jobs))
	var baseTime float64
	for i, j := range jobs {
		if j.first {
			baseTime = times[i]
		}
		rows[i] = Fig9Row{
			Pairing: j.pairing, Workload: j.workload, Design: j.design.Name,
			TimeSec: times[i], Speedup: baseTime / times[i],
		}
	}
	return rows
}

// RenderFig9 formats Figure 9 rows.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 9 — OVERALL PERFORMANCE (speedup vs baseline+MAD)\n")
	fmt.Fprintf(&b, "%-24s %-14s %-14s %10s %9s\n", "Pairing", "Workload", "Design", "Time (ms)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-14s %-14s %10.3f %8.2fx\n",
			r.Pairing, r.Workload, r.Design, r.TimeSec*1e3, r.Speedup)
	}
	return b.String()
}

// Table4Row is one row of the resource-utilisation table.
type Table4Row struct {
	Design string
	Util   sched.Utilization
}

// Table4 measures resource utilisation on ResNet-20 via the cycle
// simulator, reproducing the Table IV design set.
func Table4() ([]Table4Row, error) {
	type cfg struct {
		name     string
		hw       *arch.HWConfig
		dataflow sched.Dataflow
		nttDec   bool
		hybrid   bool
		clusters int
		params   arch.ParamSet
	}
	cfgs := []cfg{
		{"ARK+MAD", arch.ARK, sched.DataflowMAD, false, false, 1, arch.ParamsARK},
		{"CROPHE-64", arch.CROPHE64, sched.DataflowCROPHE, true, true, 1, arch.ParamsARK},
		{"CROPHE-p-64", arch.CROPHE64, sched.DataflowCROPHE, true, true, 4, arch.ParamsARK},
		{"SHARP+MAD", arch.SHARP, sched.DataflowMAD, false, false, 1, arch.ParamsSHARP},
		{"CROPHE-36", arch.CROPHE36, sched.DataflowCROPHE, true, true, 1, arch.ParamsSHARP},
		{"CROPHE-p-36", arch.CROPHE36, sched.DataflowCROPHE, true, true, 4, arch.ParamsSHARP},
	}
	// The six design points are independent simulator runs; fan out and
	// collect by index so row order matches the config list.
	rows := make([]Table4Row, len(cfgs))
	errs := make([]error, len(cfgs))
	parallel.For(len(cfgs), func(i int) {
		c := cfgs[i]
		d := sched.Design{
			Name: c.name, HW: c.hw, Dataflow: c.dataflow,
			NTTDec: c.nttDec, HybridRot: c.hybrid, Clusters: c.clusters,
		}
		params := c.params
		factory := func(m workload.RotMode, r int) *workload.Workload {
			return workload.ResNet(params, 20, m, r)
		}
		s := evaluateMemo(d, params.Name+"/resnet-20", factory)
		// Validate the schedule on the cycle simulator (its refined time
		// stays within the analytical envelope) but report the
		// scheduler's utilisation, which knows the traffic provenance.
		w := factory(workload.RotHoisted, 0)
		if _, err := sim.New(c.hw).SimulateSchedule(w, s); err != nil {
			errs[i] = err
			return
		}
		rows[i] = Table4Row{Design: c.name, Util: s.Util}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderTable4 formats Table IV.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV — RESOURCE UTILISATION ON RESNET-20\n")
	fmt.Fprintf(&b, "%-14s %7s %7s %9s %9s\n", "Design", "PEs", "NoC bw", "SRAM bw", "DRAM bw")
	for _, r := range rows {
		noc := "-"
		if r.Util.NoC > 0 {
			noc = fmt.Sprintf("%.2f%%", r.Util.NoC*100)
		}
		fmt.Fprintf(&b, "%-14s %6.2f%% %7s %8.2f%% %8.2f%%\n",
			r.Design, r.Util.PE*100, noc, r.Util.SRAM*100, r.Util.DRAM*100)
	}
	return b.String()
}

// Fig10Row is one point of the SRAM sweep.
type Fig10Row struct {
	Pairing  string
	Workload string
	SRAMMB   float64
	Baseline float64 // seconds
	CROPHE   float64
	CROPHEP  float64
	Speedup  float64 // baseline / CROPHE
}

// Figure10 sweeps the global buffer capacity (Figure 10). fast restricts
// to bootstrapping on the SHARP pairing.
func Figure10(fast bool) []Fig10Row {
	type sweep struct {
		pairing baseline.Pairing
		sizes   []float64
	}
	sweeps := []sweep{
		{baseline.Pairings()[1], []float64{512, 256, 128, 64}}, // ARK vs CROPHE-64
		{baseline.Pairings()[2], []float64{180, 128, 90, 45}},  // SHARP vs CROPHE-36
	}
	names := baseline.WorkloadNames()
	if fast {
		sweeps = sweeps[1:]
		names = []string{"bootstrapping"}
	}
	// One job per sweep point; the three designs of a point run inside
	// the job (nested parallel calls stay bounded by the shared pool).
	type job struct {
		pairing baseline.Pairing
		wn      string
		factory sched.WorkloadFactory
		size    float64
	}
	var jobs []job
	for _, sw := range sweeps {
		factories := sw.pairing.WorkloadFactories()
		for _, wn := range names {
			for _, size := range sw.sizes {
				jobs = append(jobs, job{sw.pairing, wn, factories[wn], size})
			}
		}
	}
	rows := make([]Fig10Row, len(jobs))
	parallel.For(len(jobs), func(i int) {
		j := jobs[i]
		wkey := j.pairing.Params.Name + "/" + j.wn
		base := evaluateMemo(sched.Design{
			Name: j.pairing.Baseline.Name + "+MAD",
			HW:   j.pairing.Baseline.WithSRAM(j.size), Dataflow: sched.DataflowMAD,
		}, wkey, j.factory)
		cro := evaluateMemo(sched.Design{
			Name: j.pairing.CROPHE.Name,
			HW:   j.pairing.CROPHE.WithSRAM(j.size), Dataflow: sched.DataflowCROPHE,
			NTTDec: true, HybridRot: true,
		}, wkey, j.factory)
		crop := evaluateMemo(sched.Design{
			Name: j.pairing.CROPHE.Name + "-p",
			HW:   j.pairing.CROPHE.WithSRAM(j.size), Dataflow: sched.DataflowCROPHE,
			NTTDec: true, HybridRot: true, Clusters: 4,
		}, wkey, j.factory)
		rows[i] = Fig10Row{
			Pairing:  j.pairing.Baseline.Name + " vs " + j.pairing.CROPHE.Name,
			Workload: j.wn,
			SRAMMB:   j.size,
			Baseline: base.TimeSec,
			CROPHE:   cro.TimeSec,
			CROPHEP:  crop.TimeSec,
			Speedup:  base.TimeSec / cro.TimeSec,
		}
	})
	return rows
}

// RenderFig10 formats the sweep.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 10 — PERFORMANCE AT SMALLER SRAM CAPACITIES\n")
	fmt.Fprintf(&b, "%-22s %-14s %8s %12s %12s %12s %9s\n",
		"Pairing", "Workload", "SRAM MB", "Base (ms)", "CROPHE (ms)", "CROPHE-p", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-14s %8.0f %12.3f %12.3f %12.3f %8.2fx\n",
			r.Pairing, r.Workload, r.SRAMMB, r.Baseline*1e3, r.CROPHE*1e3, r.CROPHEP*1e3, r.Speedup)
	}
	return b.String()
}

// Fig11Row is one bar group of the ablation: a design's runtime plus its
// SRAM and DRAM traffic on the bootstrapping workload at small SRAM.
type Fig11Row struct {
	Variant string
	Design  string
	TimeSec float64
	SRAMGB  float64
	DRAMGB  float64
}

// Figure11 runs the optimisation-breakdown ablation on both CROPHE
// variants at reduced SRAM (the paper's small-capacity setting), plus the
// corresponding baseline reference.
func Figure11(fast bool) []Fig11Row {
	type variant struct {
		name    string
		hw      *arch.HWConfig
		base    *arch.HWConfig
		params  arch.ParamSet
		smallMB float64
	}
	variants := []variant{
		{"64-bit", arch.CROPHE64, arch.ARK, arch.ParamsARK, 128},
		{"36-bit", arch.CROPHE36, arch.SHARP, arch.ParamsSHARP, 45},
	}
	if fast {
		variants = variants[1:]
	}
	// Flatten the ladder into an indexed job list (reference + ablation
	// rungs per variant) and fan out; indices keep the rendered ladder in
	// paper order.
	type job struct {
		variant string
		wkey    string
		design  sched.Design
		factory sched.WorkloadFactory
	}
	var jobs []job
	for _, v := range variants {
		params := v.params
		factory := func(m workload.RotMode, r int) *workload.Workload {
			return workload.Bootstrapping(params, m, r)
		}
		wkey := params.Name + "/bootstrapping"
		jobs = append(jobs, job{v.name, wkey, sched.Design{
			Name: v.base.Name + "+MAD", HW: v.base.WithSRAM(v.smallMB),
			Dataflow: sched.DataflowMAD,
		}, factory})
		for _, d := range sched.AblationDesigns(v.hw.WithSRAM(v.smallMB)) {
			jobs = append(jobs, job{v.name, wkey, d, factory})
		}
	}
	rows := make([]Fig11Row, len(jobs))
	parallel.For(len(jobs), func(i int) {
		j := jobs[i]
		res := evaluateMemo(j.design, j.wkey, j.factory)
		rows[i] = Fig11Row{
			Variant: j.variant, Design: j.design.Name,
			TimeSec: res.TimeSec,
			SRAMGB:  res.Traffic.SRAM / 1e9, DRAMGB: res.Traffic.DRAM / 1e9,
		}
	})
	return rows
}

// RenderFig11 formats the ablation.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 11 — OPTIMISATION BREAKDOWN (bootstrapping, small SRAM)\n")
	fmt.Fprintf(&b, "%-8s %-12s %10s %10s %10s\n", "Variant", "Design", "Time (ms)", "SRAM (GB)", "DRAM (GB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-12s %10.3f %10.1f %10.1f\n",
			r.Variant, r.Design, r.TimeSec*1e3, r.SRAMGB, r.DRAMGB)
	}
	return b.String()
}

// Experiments lists the available experiment ids.
func Experiments() []string {
	return []string{"table1", "table2", "table3", "table4", "fig9", "fig10", "fig11", "ablations", "kernels"}
}

// Run executes an experiment by id and returns its rendered output.
func Run(id string, fast bool) (string, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(), nil
	case "table4":
		rows, err := Table4()
		if err != nil {
			return "", err
		}
		return RenderTable4(rows), nil
	case "fig9":
		return RenderFig9(Figure9(fast)), nil
	case "fig10":
		return RenderFig10(Figure10(fast)), nil
	case "fig11":
		return RenderFig11(Figure11(fast)), nil
	case "ablations":
		return RenderAblations(Ablations()), nil
	case "kernels":
		rows, err := Kernels(fast)
		if err != nil {
			return "", err
		}
		return RenderKernels(rows), nil
	}
	return "", fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
}

// PairingSummary is the headline CROPHE-vs-baseline speedup of one
// Figure 9 pairing, with Workloads[i] naming the benchmark Speedups[i]
// was measured on.
type PairingSummary struct {
	Pairing   string
	Workloads []string
	Speedups  []float64
}

// SpeedupSummary extracts the headline CROPHE-vs-baseline speedups from
// Figure 9 rows. Pairings and workloads appear in row order (the paper's
// plotting order), so consumers that emit metrics or regression-diff
// entries see a stable sequence run to run.
func SpeedupSummary(rows []Fig9Row) []PairingSummary {
	var out []PairingSummary
	idx := map[string]int{}
	for _, r := range rows {
		if !strings.HasPrefix(r.Design, "CROPHE") ||
			strings.HasSuffix(r.Design, "+MAD") || strings.HasSuffix(r.Design, "-p") {
			continue
		}
		i, ok := idx[r.Pairing]
		if !ok {
			i = len(out)
			idx[r.Pairing] = i
			out = append(out, PairingSummary{Pairing: r.Pairing})
		}
		out[i].Workloads = append(out[i].Workloads, r.Workload)
		out[i].Speedups = append(out[i].Speedups, r.Speedup)
	}
	return out
}

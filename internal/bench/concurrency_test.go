package bench

import (
	"sync"
	"testing"
)

// TestConcurrentExperiments runs independent benchmark experiments in
// parallel. They share the package-level arch configs and parameter sets,
// so under -race this audits that the bench layer never mutates them.
func TestConcurrentExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	var wg sync.WaitGroup
	runs := []string{"table1", "table2", "table3", "fig9"}
	errs := make([]error, len(runs))
	outs := make([]string, len(runs))
	for i, id := range runs {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			outs[i], errs[i] = Run(id, true)
		}(i, id)
	}
	wg.Wait()
	for i, id := range runs {
		if errs[i] != nil {
			t.Fatalf("%s: %v", id, errs[i])
		}
		if outs[i] == "" {
			t.Fatalf("%s: empty output", id)
		}
	}
}

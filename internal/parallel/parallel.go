// Package parallel is the shared bounded worker-pool execution engine
// behind every data-parallel hot path in the repository: the limb-parallel
// kernels of internal/poly and internal/ntt, the decomposition-digit and
// rotation fan-out of internal/ckks, and the design×workload fan-out of
// internal/bench.
//
// The pool exploits the same independence the CROPHE hardware does — RNS
// limbs never interact inside element-wise, NTT, or automorphism kernels
// (paper §V), so partitioning their index space across cores is exact, not
// approximate. All helpers guarantee bit-identical results to a serial
// loop whenever the body writes only index-disjoint state, which is the
// contract every caller in this repository obeys.
//
// Design:
//
//   - One process-global token pool sized by GOMAXPROCS (override with the
//     CROPHE_WORKERS environment variable, or SetWorkers). Size 1 is the
//     serial fallback: every body runs inline on the caller's goroutine and
//     no goroutines are spawned.
//   - The caller always participates in the work, so a For call never
//     blocks waiting for tokens; extra goroutines are used only when free
//     tokens exist. Nested For calls therefore degrade gracefully to
//     inline execution instead of oversubscribing — total concurrency is
//     bounded by the pool size no matter how deeply kernels nest
//     (evaluator → poly → ntt).
//   - Panics inside bodies are captured and re-raised on the caller's
//     goroutine, preserving the serial panic contract of the kernels.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// tokens is the global pool: acquiring a token licenses one extra worker
// goroutine. Capacity is workers-1 (the caller is the implicit worker).
// Swapped atomically by SetWorkers.
var tokens atomic.Pointer[tokenPool]

type tokenPool struct {
	workers int
	sem     chan struct{}
}

func init() {
	n := runtime.GOMAXPROCS(0)
	if v := os.Getenv("CROPHE_WORKERS"); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k >= 1 {
			n = k
		}
	}
	SetWorkers(n)
}

// SetWorkers resizes the pool to n workers (n < 1 is clamped to 1).
// Calls already in flight keep the pool they started with; new calls see
// the new size. Intended for startup configuration and for the
// parallel-vs-serial equivalence tests.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p := &tokenPool{workers: n}
	if n > 1 {
		p.sem = make(chan struct{}, n-1)
	}
	tokens.Store(p)
}

// Workers returns the configured pool size.
func Workers() int { return tokens.Load().workers }

// For runs body(i) for every i in [0, n), partitioning the index space
// into at most Workers() contiguous chunks. The caller's goroutine
// participates; extra goroutines run only while pool tokens are free.
// Equivalent to a plain loop when the pool size is 1 or n <= 1.
func For(n int, body func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunk is the chunked form of For: body receives half-open index
// ranges [lo, hi) that exactly tile [0, n). Use it when per-worker scratch
// should be acquired once per chunk rather than once per index.
func ForChunk(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := tokens.Load()
	if p.workers <= 1 || n == 1 {
		body(0, n)
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}

	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicValue]
		wg       sync.WaitGroup
	)
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{r})
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			body(c*n/chunks, (c+1)*n/chunks)
		}
	}

	// Spawn helpers while tokens are free; never block on the pool.
spawn:
	for i := 0; i < chunks-1; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				run()
			}()
		default:
			break spawn
		}
	}
	run()
	wg.Wait()

	if pv := panicked.Load(); pv != nil {
		// Re-raise the original value so callers' recover logic sees the
		// same panic a serial loop would have produced.
		panic(pv.v)
	}
}

type panicValue struct{ v any }

package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueBoundsConcurrency(t *testing.T) {
	q := NewQueue(3)
	var (
		cur, peak atomic.Int64
		wg        sync.WaitGroup
	)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := q.Acquire(context.Background())
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeded capacity 3", peak.Load())
	}
	if q.InUse() != 0 {
		t.Errorf("InUse = %d after all releases, want 0", q.InUse())
	}
}

func TestQueueAcquireHonoursContext(t *testing.T) {
	q := NewQueue(1)
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := q.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full queue = %v, want DeadlineExceeded", err)
	}
	release()
	// After release the slot is free again even under a short deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	release2, err := q.Acquire(ctx2)
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	release2()
}

// TestQueueExpiredContextFastPath: a free slot is granted even when the
// context is already done — shedding is about saturation, not deadlines.
func TestQueueExpiredContextFastPath(t *testing.T) {
	q := NewQueue(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release, err := q.Acquire(ctx)
	if err != nil {
		t.Fatalf("Acquire with free slot under cancelled ctx = %v, want success", err)
	}
	release()
}

func TestQueueTryAcquire(t *testing.T) {
	q := NewQueue(1)
	r1, ok := q.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire on empty queue failed")
	}
	if _, ok := q.TryAcquire(); ok {
		t.Fatal("TryAcquire on full queue succeeded")
	}
	r1()
	r2, ok := q.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire after release failed")
	}
	r2()
}

func TestQueueReleaseIdempotent(t *testing.T) {
	q := NewQueue(2)
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	release()
	release() // second call must be a no-op, not free a phantom slot
	if got := q.InUse(); got != 0 {
		t.Errorf("InUse = %d, want 0", got)
	}
	// Both slots must still be acquirable exactly twice.
	if _, ok := q.TryAcquire(); !ok {
		t.Fatal("slot 1 unavailable")
	}
	if _, ok := q.TryAcquire(); !ok {
		t.Fatal("slot 2 unavailable")
	}
	if _, ok := q.TryAcquire(); ok {
		t.Fatal("phantom third slot: double release freed a slot twice")
	}
}

// TestSharedQueueClampsToWorkers: the shared queue may never admit more
// concurrent holders than the worker pool has workers.
func TestSharedQueueClampsToWorkers(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(4)
	if got := NewSharedQueue(64).Cap(); got != 4 {
		t.Errorf("shared queue cap = %d, want 4 (clamped to Workers)", got)
	}
	if got := NewSharedQueue(2).Cap(); got != 2 {
		t.Errorf("shared queue cap = %d, want 2 (explicit bound below Workers)", got)
	}
	if got := NewSharedQueue(0).Cap(); got != 4 {
		t.Errorf("shared queue cap = %d, want 4 (zero means pool-sized)", got)
	}
}

// TestSharedQueueBorrowsPoolTokens: while shared-queue slots are held,
// the worker pool's helper tokens are borrowed (so kernels inside
// admitted work degrade toward inline execution); releases return them.
func TestSharedQueueBorrowsPoolTokens(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(4) // pool sem capacity 3
	q := NewSharedQueue(4)
	pool := tokens.Load()

	var releases []func()
	for i := 0; i < 3; i++ {
		r, err := q.Acquire(context.Background())
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	if got := len(pool.sem); got != cap(pool.sem) {
		t.Errorf("pool tokens borrowed = %d, want all %d while 3 shared slots are held", got, cap(pool.sem))
	}
	// A 4th admission still succeeds (capacity 4) even with no pool token
	// left to borrow — the request's own goroutine is its worker.
	r4, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire 4: %v", err)
	}
	// With every token borrowed, For still completes (inline).
	sum := 0
	For(8, func(i int) { sum += i })
	if sum != 28 {
		t.Errorf("inline For sum = %d, want 28", sum)
	}
	r4()
	for _, r := range releases {
		r()
	}
	if got := len(pool.sem); got != 0 {
		t.Errorf("pool tokens still held after release: %d, want 0", got)
	}
	if q.InUse() != 0 {
		t.Errorf("InUse = %d after releases, want 0", q.InUse())
	}
}

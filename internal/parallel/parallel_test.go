package parallel

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn under a temporary pool size, restoring the previous
// size afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Workers()
	SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		withWorkers(t, w, func() {
			for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
				hits := make([]int32, n)
				For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d: index %d hit %d times", w, n, i, h)
					}
				}
			}
		})
	}
}

func TestForChunkTilesExactly(t *testing.T) {
	withWorkers(t, 4, func() {
		n := 103
		hits := make([]int32, n)
		ForChunk(n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d hit %d times", i, h)
			}
		}
	})
}

func TestSerialFallbackRunsInline(t *testing.T) {
	withWorkers(t, 1, func() {
		// With pool size 1 the body must observe strictly increasing
		// indices on the caller's goroutine (no interleaving possible).
		last := -1
		For(100, func(i int) {
			if i != last+1 {
				t.Fatalf("out-of-order index %d after %d in serial mode", i, last)
			}
			last = i
		})
		if last != 99 {
			t.Fatalf("stopped at %d", last)
		}
	})
}

func TestNestedForStaysBounded(t *testing.T) {
	withWorkers(t, 4, func() {
		var inFlight, peak atomic.Int64
		For(8, func(i int) {
			For(8, func(j int) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inFlight.Add(-1)
			})
		})
		if p := peak.Load(); p > int64(Workers()) {
			t.Fatalf("peak concurrency %d exceeds pool size %d", p, Workers())
		}
	})
}

func TestPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			if s, ok := r.(string); !ok || s != "boom" {
				t.Fatalf("panic value %v, want original string", r)
			}
		}()
		For(64, func(i int) {
			if i == 13 {
				panic("boom")
			}
		})
	})
}

func TestSetWorkersClamps(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", Workers())
	}
	SetWorkers(-3)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-3)", Workers())
	}
}

package parallel

import (
	"context"
	"sync/atomic"
)

// Queue is a bounded, context-aware admission semaphore. It is the
// serving layer's counterpart to the worker pool: where For hands out
// helper goroutines to one data-parallel kernel, a Queue bounds how many
// independent callers (HTTP requests, sweep rungs) may be in flight at
// once, with blocking acquisition that respects cancellation.
//
// A Queue built with NewSharedQueue additionally shares the process-wide
// token budget with the worker pool: its concurrency is clamped to
// Workers(), and each admitted slot borrows one pool token while held
// (when one is free), so the kernels running inside admitted work find
// correspondingly fewer helper tokens and degrade toward inline execution
// instead of oversubscribing GOMAXPROCS. The borrow is opportunistic —
// admission never blocks waiting for a kernel to release its helpers —
// so oversubscription is bounded to the transient window in which an
// already-running For call finishes its chunk.
type Queue struct {
	sem    chan struct{}
	shared bool
	inUse  atomic.Int64
}

// NewQueue returns an independent bounded semaphore admitting at most n
// concurrent holders (n < 1 is clamped to 1).
func NewQueue(n int) *Queue {
	if n < 1 {
		n = 1
	}
	return &Queue{sem: make(chan struct{}, n)}
}

// NewSharedQueue returns a queue whose admission budget is the worker
// pool's: capacity is min(n, Workers()), and held slots borrow pool
// tokens so nested kernel fan-out and admission draw on one budget.
func NewSharedQueue(n int) *Queue {
	w := Workers()
	if n < 1 || n > w {
		n = w
	}
	q := NewQueue(n)
	q.shared = true
	return q
}

// Acquire blocks until a slot is free or ctx is done, returning a release
// function for the slot (call it exactly once) or the context's error.
func (q *Queue) Acquire(ctx context.Context) (func(), error) {
	// Fast path first so acquisition succeeds even under an
	// already-expired context when a slot is free — admission should shed
	// on saturation, not on a deadline that scheduling itself will honour.
	select {
	case q.sem <- struct{}{}:
		return q.admitted(), nil
	default:
	}
	select {
	case q.sem <- struct{}{}:
		return q.admitted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire takes a slot only if one is immediately free.
func (q *Queue) TryAcquire() (func(), bool) {
	select {
	case q.sem <- struct{}{}:
		return q.admitted(), true
	default:
		return nil, false
	}
}

// admitted finalises a successful slot acquisition: it borrows a pool
// token for shared queues and returns the matching release function.
func (q *Queue) admitted() func() {
	q.inUse.Add(1)
	var returnToken func()
	if q.shared {
		if p := tokens.Load(); p.sem != nil {
			select {
			case p.sem <- struct{}{}:
				// Return to the pool the token came from, even if
				// SetWorkers swaps the global pool meanwhile.
				returnToken = func() { <-p.sem }
			default:
			}
		}
	}
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		if returnToken != nil {
			returnToken()
		}
		q.inUse.Add(-1)
		<-q.sem
	}
}

// Cap returns the queue's admission capacity.
func (q *Queue) Cap() int { return cap(q.sem) }

// InUse returns the number of currently held slots.
func (q *Queue) InUse() int { return int(q.inUse.Load()) }

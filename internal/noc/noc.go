// Package noc models the 2D mesh network-on-chip of the CROPHE
// accelerator (§IV-A): dimension-ordered (X-Y) routing of hop-by-hop
// packets between PEs, tree multicast for shared data, and per-link
// contention accounting. The simulator uses it to turn the mapper's data
// transfers into cycle counts; it replaces the paper's Orion-3-based
// model (see DESIGN.md).
//
// The mesh also carries a degraded-mode view for the fault-injection
// subsystem: individual links can be disabled (routing detours around
// them, deterministically) or slowed (their drain capacity scales down),
// so a simulated schedule reflects a partially failed interconnect.
package noc

import (
	"errors"
	"fmt"
	"sort"

	"crophe/internal/telemetry"
)

// ErrUnreachable reports that no route exists between two PEs once dead
// links are excluded. Callers match it with errors.Is.
var ErrUnreachable = errors.New("noc: destination unreachable")

// Coord is a PE position in the mesh.
type Coord struct{ X, Y int }

// Mesh is a W×H array of routers with bidirectional links.
type Mesh struct {
	W, H int
	// LinkBytesPerCycle is the payload capacity of one link per cycle.
	LinkBytesPerCycle float64
	// HopLatency is the per-hop router+wire latency in cycles.
	HopLatency int

	// linkLoad accumulates bytes per directed link, keyed by the link's
	// source coordinate and direction.
	linkLoad map[linkKey]float64
	// totalLoad is the running Σ over linkLoad, maintained at the update
	// sites so TotalBytesHops never sums the map in iteration order
	// (float addition is non-associative, so a map-order sum differs
	// run to run).
	totalLoad float64
	// sends counts routed transfers (unicasts plus multicast legs) since
	// the last Reset.
	sends int

	// dead marks directed links that are down; routing detours around
	// them. slow maps directed links to a capacity factor in (0, 1).
	dead map[linkKey]bool
	slow map[linkKey]float64
}

type linkKey struct {
	from Coord
	dir  byte // 'E','W','N','S'
}

// NewMesh creates a mesh with the given dimensions and link capacity.
func NewMesh(w, h int, linkBytesPerCycle float64, hopLatency int) (*Mesh, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("noc: mesh dimensions %dx%d invalid", w, h)
	}
	if linkBytesPerCycle <= 0 {
		return nil, fmt.Errorf("noc: link capacity must be positive")
	}
	if hopLatency < 1 {
		hopLatency = 1
	}
	return &Mesh{
		W: w, H: h,
		LinkBytesPerCycle: linkBytesPerCycle,
		HopLatency:        hopLatency,
		linkLoad:          make(map[linkKey]float64),
	}, nil
}

// PEIndex maps a linear PE id (row-major) to its coordinate.
func (m *Mesh) PEIndex(id int) Coord {
	return Coord{X: id % m.W, Y: id / m.W}
}

// Contains reports whether c is inside the mesh.
func (m *Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// step offsets in the deterministic neighbour order used by both the
// fault-free X-Y router and the BFS detour router.
var dirs = []struct {
	dx, dy int
	dir    byte
}{
	{1, 0, 'E'}, {-1, 0, 'W'}, {0, 1, 'S'}, {0, -1, 'N'},
}

// DisableLink marks the physical link leaving from in direction dir as
// down, in both directions. Routing detours around disabled links; loads
// already accumulated on them are kept (they were routed while the link
// was up).
func (m *Mesh) DisableLink(from Coord, dir byte) error {
	k, rev, err := m.linkPair(from, dir)
	if err != nil {
		return err
	}
	if m.dead == nil {
		m.dead = make(map[linkKey]bool)
	}
	m.dead[k] = true
	m.dead[rev] = true
	return nil
}

// SlowLink scales the capacity of the physical link leaving from in
// direction dir (both directions) by factor in (0, 1].
func (m *Mesh) SlowLink(from Coord, dir byte, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("noc: slow-link factor %v outside (0, 1]", factor)
	}
	k, rev, err := m.linkPair(from, dir)
	if err != nil {
		return err
	}
	if m.slow == nil {
		m.slow = make(map[linkKey]float64)
	}
	m.slow[k] = factor
	m.slow[rev] = factor
	return nil
}

// linkPair validates a (coord, direction) link reference and returns the
// directed key plus its reverse.
func (m *Mesh) linkPair(from Coord, dir byte) (linkKey, linkKey, error) {
	if !m.Contains(from) {
		return linkKey{}, linkKey{}, fmt.Errorf("noc: link source %v outside %dx%d mesh", from, m.W, m.H)
	}
	for _, d := range dirs {
		if d.dir != dir {
			continue
		}
		to := Coord{X: from.X + d.dx, Y: from.Y + d.dy}
		if !m.Contains(to) {
			return linkKey{}, linkKey{}, fmt.Errorf("noc: no %c link at %v (mesh edge)", dir, from)
		}
		rev, err := linkOf(to, from)
		if err != nil {
			return linkKey{}, linkKey{}, err
		}
		return linkKey{from, dir}, rev, nil
	}
	return linkKey{}, linkKey{}, fmt.Errorf("noc: unknown link direction %q", string(dir))
}

// DeadLinks returns the number of disabled physical links (undirected).
func (m *Mesh) DeadLinks() int { return len(m.dead) / 2 }

// SlowLinks returns the number of slowed physical links (undirected).
func (m *Mesh) SlowLinks() int { return len(m.slow) / 2 }

// Route returns a path from src to dst, excluding src, including dst.
// With a healthy mesh this is the X-Y (dimension-ordered) route; with
// disabled links it is the deterministic shortest detour (BFS in fixed
// E,W,S,N neighbour order). It returns an error wrapping ErrUnreachable
// when dead links partition src from dst, and a validation error when an
// endpoint lies outside the mesh.
func (m *Mesh) Route(src, dst Coord) ([]Coord, error) {
	if !m.Contains(src) || !m.Contains(dst) {
		return nil, fmt.Errorf("noc: route endpoints out of %dx%d mesh: %v -> %v", m.W, m.H, src, dst)
	}
	if len(m.dead) == 0 {
		return m.routeXY(src, dst), nil
	}
	return m.routeAvoiding(src, dst)
}

// routeXY is the dimension-ordered route of the healthy mesh.
func (m *Mesh) routeXY(src, dst Coord) []Coord {
	var path []Coord
	cur := src
	for cur.X != dst.X {
		if dst.X > cur.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if dst.Y > cur.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path
}

// routeAvoiding finds the shortest path that skips dead links. BFS with a
// fixed neighbour order makes the detour deterministic, which the
// bit-reproducible resilience sweeps rely on.
func (m *Mesh) routeAvoiding(src, dst Coord) ([]Coord, error) {
	if src == dst {
		return nil, nil
	}
	prev := map[Coord]Coord{src: src}
	queue := []Coord{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			next := Coord{X: cur.X + d.dx, Y: cur.Y + d.dy}
			if !m.Contains(next) || m.dead[linkKey{cur, d.dir}] {
				continue
			}
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == dst {
				var path []Coord
				for c := dst; c != src; c = prev[c] {
					path = append(path, c)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("noc: %v -> %v with %d dead links: %w", src, dst, m.DeadLinks(), ErrUnreachable)
}

// Hops returns the Manhattan distance between two PEs (the fault-free
// path length; detours around dead links may be longer).
func (m *Mesh) Hops(src, dst Coord) int {
	dx := src.X - dst.X
	if dx < 0 {
		dx = -dx
	}
	dy := src.Y - dst.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Send accumulates a unicast transfer of the given bytes along the routed
// path and returns the head latency in cycles. A co-located transfer
// (src == dst, operators time-sharing one PE) is not free: the handoff
// serialises through the PE's local port at link bandwidth, modeled as a
// loopback link — without this, packing more operators onto fewer
// surviving PEs under row faults makes traffic evaporate.
func (m *Mesh) Send(src, dst Coord, bytes float64) (int, error) {
	path, err := m.Route(src, dst)
	if err != nil {
		return 0, err
	}
	if src == dst {
		m.sends++
		m.linkLoad[linkKey{src, 'L'}] += bytes
		m.totalLoad += bytes
		return 0, nil
	}
	m.sends++
	prev := src
	for _, next := range path {
		k, err := linkOf(prev, next)
		if err != nil {
			return 0, err
		}
		m.linkLoad[k] += bytes
		m.totalLoad += bytes
		prev = next
	}
	return len(path) * m.HopLatency, nil
}

// Multicast accumulates a tree multicast from src to all dsts: shared
// prefixes of the routes carry the payload once (§IV-A's multicast
// support). Returns the worst-case head latency.
func (m *Mesh) Multicast(src Coord, dsts []Coord, bytes float64) (int, error) {
	charged := make(map[linkKey]bool)
	worst := 0
	m.sends += len(dsts)
	for _, dst := range dsts {
		path, err := m.Route(src, dst)
		if err != nil {
			return 0, err
		}
		prev := src
		for _, next := range path {
			k, err := linkOf(prev, next)
			if err != nil {
				return 0, err
			}
			if !charged[k] {
				charged[k] = true
				m.linkLoad[k] += bytes
				m.totalLoad += bytes
			}
			prev = next
		}
		if h := len(path) * m.HopLatency; h > worst {
			worst = h
		}
	}
	return worst, nil
}

// linkOf returns the directed link key between two adjacent routers, or
// an error for a non-adjacent pair (a malformed path).
func linkOf(from, to Coord) (linkKey, error) {
	switch {
	case to.X == from.X+1 && to.Y == from.Y:
		return linkKey{from, 'E'}, nil
	case to.X == from.X-1 && to.Y == from.Y:
		return linkKey{from, 'W'}, nil
	case to.Y == from.Y+1 && to.X == from.X:
		return linkKey{from, 'S'}, nil
	case to.Y == from.Y-1 && to.X == from.X:
		return linkKey{from, 'N'}, nil
	}
	return linkKey{}, fmt.Errorf("noc: non-adjacent hop %v -> %v", from, to)
}

// DrainCycles returns the cycles needed to drain the accumulated traffic:
// the busiest link bounds throughput (serialisation), which is how
// contention manifests in a wormhole mesh. Slowed links drain at their
// reduced capacity.
func (m *Mesh) DrainCycles() float64 {
	var worst float64
	for k, load := range m.linkLoad {
		cap := m.LinkBytesPerCycle
		if f, ok := m.slow[k]; ok {
			cap *= f
		}
		if c := load / cap; c > worst {
			worst = c
		}
	}
	return worst
}

// TotalBytesHops returns Σ bytes×links-traversed, the energy/utilisation
// proxy.
func (m *Mesh) TotalBytesHops() float64 {
	return m.totalLoad
}

// Utilization returns the mean link utilisation over the given cycle span.
func (m *Mesh) Utilization(cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	links := float64(m.numLinks())
	return m.TotalBytesHops() / (links * m.LinkBytesPerCycle * cycles)
}

func (m *Mesh) numLinks() int {
	// Directed links: horizontal 2·(W-1)·H, vertical 2·W·(H-1).
	return 2*(m.W-1)*m.H + 2*m.W*(m.H-1)
}

// Reset clears accumulated loads, keeping any link-fault state.
func (m *Mesh) Reset() {
	m.linkLoad = make(map[linkKey]float64)
	m.totalLoad = 0
	m.sends = 0
}

// Sends returns the number of routed transfers since the last Reset.
func (m *Mesh) Sends() int { return m.sends }

// EmitCounters adds the accumulated per-link occupancy (bytes routed over
// each directed link since the last Reset) plus aggregate routing
// counters to the collector. Links walk in a sorted (y, x, direction)
// order so repeated emissions are deterministic. Call before Reset; loads
// are deltas, so emitting once per drained window accumulates correctly.
func (m *Mesh) EmitCounters(c *telemetry.Collector) {
	if !c.Enabled() {
		return
	}
	keys := make([]linkKey, 0, len(m.linkLoad))
	for k := range m.linkLoad {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from.Y != b.from.Y {
			return a.from.Y < b.from.Y
		}
		if a.from.X != b.from.X {
			return a.from.X < b.from.X
		}
		return a.dir < b.dir
	})
	// Sum bytes×hops over the sorted keys, not via TotalBytesHops: map
	// iteration order would perturb the float sum's last bits and break
	// the byte-identical trace guarantee.
	var bytesHops float64
	for _, k := range keys {
		c.EmitCounter(fmt.Sprintf("noc/link/%d,%d/%c", k.from.X, k.from.Y, k.dir), m.linkLoad[k])
		bytesHops += m.linkLoad[k]
	}
	c.EmitCounter("noc/bytes_hops", bytesHops)
	c.EmitCounter("noc/sends", float64(m.sends))
}

// Package noc models the 2D mesh network-on-chip of the CROPHE
// accelerator (§IV-A): dimension-ordered (X-Y) routing of hop-by-hop
// packets between PEs, tree multicast for shared data, and per-link
// contention accounting. The simulator uses it to turn the mapper's data
// transfers into cycle counts; it replaces the paper's Orion-3-based
// model (see DESIGN.md).
package noc

import (
	"fmt"
	"sort"

	"crophe/internal/telemetry"
)

// Coord is a PE position in the mesh.
type Coord struct{ X, Y int }

// Mesh is a W×H array of routers with bidirectional links.
type Mesh struct {
	W, H int
	// LinkBytesPerCycle is the payload capacity of one link per cycle.
	LinkBytesPerCycle float64
	// HopLatency is the per-hop router+wire latency in cycles.
	HopLatency int

	// linkLoad accumulates bytes per directed link, keyed by the link's
	// source coordinate and direction.
	linkLoad map[linkKey]float64
	// sends counts routed transfers (unicasts plus multicast legs) since
	// the last Reset.
	sends int
}

type linkKey struct {
	from Coord
	dir  byte // 'E','W','N','S'
}

// NewMesh creates a mesh with the given dimensions and link capacity.
func NewMesh(w, h int, linkBytesPerCycle float64, hopLatency int) (*Mesh, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("noc: mesh dimensions %dx%d invalid", w, h)
	}
	if linkBytesPerCycle <= 0 {
		return nil, fmt.Errorf("noc: link capacity must be positive")
	}
	if hopLatency < 1 {
		hopLatency = 1
	}
	return &Mesh{
		W: w, H: h,
		LinkBytesPerCycle: linkBytesPerCycle,
		HopLatency:        hopLatency,
		linkLoad:          make(map[linkKey]float64),
	}, nil
}

// PEIndex maps a linear PE id (row-major) to its coordinate.
func (m *Mesh) PEIndex(id int) Coord {
	return Coord{X: id % m.W, Y: id / m.W}
}

// Contains reports whether c is inside the mesh.
func (m *Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// Route returns the X-Y (dimension-ordered) path from src to dst,
// excluding src, including dst.
func (m *Mesh) Route(src, dst Coord) []Coord {
	if !m.Contains(src) || !m.Contains(dst) {
		panic(fmt.Sprintf("noc: route endpoints out of mesh: %v -> %v", src, dst))
	}
	var path []Coord
	cur := src
	for cur.X != dst.X {
		if dst.X > cur.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if dst.Y > cur.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path
}

// Hops returns the Manhattan distance between two PEs.
func (m *Mesh) Hops(src, dst Coord) int {
	dx := src.X - dst.X
	if dx < 0 {
		dx = -dx
	}
	dy := src.Y - dst.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Send accumulates a unicast transfer of the given bytes along the X-Y
// route and returns the head latency in cycles.
func (m *Mesh) Send(src, dst Coord, bytes float64) int {
	m.sends++
	prev := src
	for _, next := range m.Route(src, dst) {
		m.linkLoad[linkOf(prev, next)] += bytes
		prev = next
	}
	return m.Hops(src, dst) * m.HopLatency
}

// Multicast accumulates a tree multicast from src to all dsts: shared
// prefixes of the X-Y routes carry the payload once (§IV-A's multicast
// support). Returns the worst-case head latency.
func (m *Mesh) Multicast(src Coord, dsts []Coord, bytes float64) int {
	charged := make(map[linkKey]bool)
	worst := 0
	m.sends += len(dsts)
	for _, dst := range dsts {
		prev := src
		for _, next := range m.Route(src, dst) {
			k := linkOf(prev, next)
			if !charged[k] {
				charged[k] = true
				m.linkLoad[k] += bytes
			}
			prev = next
		}
		if h := m.Hops(src, dst) * m.HopLatency; h > worst {
			worst = h
		}
	}
	return worst
}

func linkOf(from, to Coord) linkKey {
	switch {
	case to.X == from.X+1:
		return linkKey{from, 'E'}
	case to.X == from.X-1:
		return linkKey{from, 'W'}
	case to.Y == from.Y+1:
		return linkKey{from, 'S'}
	case to.Y == from.Y-1:
		return linkKey{from, 'N'}
	}
	panic("noc: non-adjacent hop")
}

// DrainCycles returns the cycles needed to drain the accumulated traffic:
// the busiest link bounds throughput (serialisation), which is how
// contention manifests in a wormhole mesh.
func (m *Mesh) DrainCycles() float64 {
	var worst float64
	for _, load := range m.linkLoad {
		if load > worst {
			worst = load
		}
	}
	return worst / m.LinkBytesPerCycle
}

// TotalBytesHops returns Σ bytes×links-traversed, the energy/utilisation
// proxy.
func (m *Mesh) TotalBytesHops() float64 {
	var total float64
	for _, load := range m.linkLoad {
		total += load
	}
	return total
}

// Utilization returns the mean link utilisation over the given cycle span.
func (m *Mesh) Utilization(cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	links := float64(m.numLinks())
	return m.TotalBytesHops() / (links * m.LinkBytesPerCycle * cycles)
}

func (m *Mesh) numLinks() int {
	// Directed links: horizontal 2·(W-1)·H, vertical 2·W·(H-1).
	return 2*(m.W-1)*m.H + 2*m.W*(m.H-1)
}

// Reset clears accumulated loads.
func (m *Mesh) Reset() {
	m.linkLoad = make(map[linkKey]float64)
	m.sends = 0
}

// Sends returns the number of routed transfers since the last Reset.
func (m *Mesh) Sends() int { return m.sends }

// EmitCounters adds the accumulated per-link occupancy (bytes routed over
// each directed link since the last Reset) plus aggregate routing
// counters to the collector. Links walk in a sorted (y, x, direction)
// order so repeated emissions are deterministic. Call before Reset; loads
// are deltas, so emitting once per drained window accumulates correctly.
func (m *Mesh) EmitCounters(c *telemetry.Collector) {
	if !c.Enabled() {
		return
	}
	keys := make([]linkKey, 0, len(m.linkLoad))
	for k := range m.linkLoad {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from.Y != b.from.Y {
			return a.from.Y < b.from.Y
		}
		if a.from.X != b.from.X {
			return a.from.X < b.from.X
		}
		return a.dir < b.dir
	})
	// Sum bytes×hops over the sorted keys, not via TotalBytesHops: map
	// iteration order would perturb the float sum's last bits and break
	// the byte-identical trace guarantee.
	var bytesHops float64
	for _, k := range keys {
		c.EmitCounter(fmt.Sprintf("noc/link/%d,%d/%c", k.from.X, k.from.Y, k.dir), m.linkLoad[k])
		bytesHops += m.linkLoad[k]
	}
	c.EmitCounter("noc/bytes_hops", bytesHops)
	c.EmitCounter("noc/sends", float64(m.sends))
}

package noc

import (
	"errors"
	"testing"
	"testing/quick"

	"crophe/internal/telemetry"
)

func mustMesh(t *testing.T, w, h int) *Mesh {
	t.Helper()
	m, err := NewMesh(w, h, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustRoute(t *testing.T, m *Mesh, src, dst Coord) []Coord {
	t.Helper()
	path, err := m.Route(src, dst)
	if err != nil {
		t.Fatalf("route %v -> %v: %v", src, dst, err)
	}
	return path
}

func mustSend(t *testing.T, m *Mesh, src, dst Coord, bytes float64) int {
	t.Helper()
	lat, err := m.Send(src, dst, bytes)
	if err != nil {
		t.Fatalf("send %v -> %v: %v", src, dst, err)
	}
	return lat
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 4, 64, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewMesh(4, 4, 0, 1); err == nil {
		t.Error("zero link capacity should fail")
	}
	m, err := NewMesh(4, 4, 64, 0)
	if err != nil || m.HopLatency != 1 {
		t.Error("hop latency should clamp to 1")
	}
}

func TestPEIndexRowMajor(t *testing.T) {
	m := mustMesh(t, 8, 4)
	if c := m.PEIndex(0); c != (Coord{0, 0}) {
		t.Errorf("PE 0 at %v", c)
	}
	if c := m.PEIndex(7); c != (Coord{7, 0}) {
		t.Errorf("PE 7 at %v", c)
	}
	if c := m.PEIndex(8); c != (Coord{0, 1}) {
		t.Errorf("PE 8 at %v", c)
	}
	if c := m.PEIndex(31); c != (Coord{7, 3}) {
		t.Errorf("PE 31 at %v", c)
	}
}

func TestRouteXY(t *testing.T) {
	m := mustMesh(t, 8, 8)
	path := mustRoute(t, m, Coord{1, 1}, Coord{4, 3})
	want := []Coord{{2, 1}, {3, 1}, {4, 1}, {4, 2}, {4, 3}}
	if len(path) != len(want) {
		t.Fatalf("path %v want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path[%d] = %v want %v", i, path[i], want[i])
		}
	}
	// Self-route is empty.
	if p := mustRoute(t, m, Coord{2, 2}, Coord{2, 2}); len(p) != 0 {
		t.Fatalf("self route %v", p)
	}
}

func TestRoutePropertyLengthIsManhattan(t *testing.T) {
	m := mustMesh(t, 8, 8)
	prop := func(a, b uint8) bool {
		src := m.PEIndex(int(a) % 64)
		dst := m.PEIndex(int(b) % 64)
		path, err := m.Route(src, dst)
		return err == nil && len(path) == m.Hops(src, dst)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSendAccumulatesAndDrains(t *testing.T) {
	m := mustMesh(t, 4, 1)
	lat := mustSend(t, m, Coord{0, 0}, Coord{3, 0}, 640)
	if lat != 3 {
		t.Fatalf("latency %d want 3", lat)
	}
	// 640 bytes over each of three links at 64 B/cycle → 10 cycles drain.
	if d := m.DrainCycles(); d != 10 {
		t.Fatalf("drain %f want 10", d)
	}
	// Two flows sharing the middle link contend.
	m.Reset()
	mustSend(t, m, Coord{0, 0}, Coord{2, 0}, 640)
	mustSend(t, m, Coord{1, 0}, Coord{3, 0}, 640)
	if d := m.DrainCycles(); d != 20 {
		t.Fatalf("contended drain %f want 20 (shared link)", d)
	}
}

func TestMulticastSharesPrefix(t *testing.T) {
	m := mustMesh(t, 4, 4)
	// Unicast to two destinations down the same column duplicates the
	// shared prefix...
	mustSend(t, m, Coord{0, 0}, Coord{0, 2}, 100)
	mustSend(t, m, Coord{0, 0}, Coord{0, 3}, 100)
	unicast := m.TotalBytesHops()
	m.Reset()
	// ...multicast pays it once.
	if _, err := m.Multicast(Coord{0, 0}, []Coord{{0, 2}, {0, 3}}, 100); err != nil {
		t.Fatal(err)
	}
	multicast := m.TotalBytesHops()
	if multicast >= unicast {
		t.Fatalf("multicast %.0f not cheaper than unicast %.0f", multicast, unicast)
	}
	if multicast != 300 { // 3 links × 100 bytes
		t.Fatalf("multicast bytes-hops %.0f want 300", multicast)
	}
}

func TestUtilization(t *testing.T) {
	m := mustMesh(t, 2, 2)
	mustSend(t, m, Coord{0, 0}, Coord{1, 1}, 64)
	// Perfect utilisation would move 8 links × 64 B per cycle.
	u := m.Utilization(1)
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation %f", u)
	}
	if m.Utilization(0) != 0 {
		t.Fatal("zero-cycle utilisation")
	}
}

func TestRouteOutsideMeshIsError(t *testing.T) {
	m := mustMesh(t, 2, 2)
	if _, err := m.Route(Coord{0, 0}, Coord{5, 5}); err == nil {
		t.Fatal("out-of-mesh destination should return an error")
	}
	if _, err := m.Route(Coord{-1, 0}, Coord{1, 1}); err == nil {
		t.Fatal("out-of-mesh source should return an error")
	}
	if _, err := m.Send(Coord{0, 0}, Coord{9, 9}, 64); err == nil {
		t.Fatal("out-of-mesh send should return an error")
	}
	if _, err := m.Multicast(Coord{0, 0}, []Coord{{0, 1}, {7, 7}}, 64); err == nil {
		t.Fatal("out-of-mesh multicast leg should return an error")
	}
}

func TestLinkOfNonAdjacentIsError(t *testing.T) {
	if _, err := linkOf(Coord{0, 0}, Coord{2, 0}); err == nil {
		t.Fatal("non-adjacent pair should return an error")
	}
	if _, err := linkOf(Coord{0, 0}, Coord{1, 1}); err == nil {
		t.Fatal("diagonal pair should return an error")
	}
	if k, err := linkOf(Coord{0, 0}, Coord{1, 0}); err != nil || k.dir != 'E' {
		t.Fatalf("adjacent pair: key %v err %v", k, err)
	}
}

func TestDisableLinkValidation(t *testing.T) {
	m := mustMesh(t, 4, 4)
	if err := m.DisableLink(Coord{9, 9}, 'E'); err == nil {
		t.Fatal("source outside mesh should fail")
	}
	if err := m.DisableLink(Coord{3, 0}, 'E'); err == nil {
		t.Fatal("link off the mesh edge should fail")
	}
	if err := m.DisableLink(Coord{0, 0}, 'Q'); err == nil {
		t.Fatal("unknown direction should fail")
	}
	if err := m.DisableLink(Coord{1, 1}, 'E'); err != nil {
		t.Fatal(err)
	}
	if m.DeadLinks() != 1 {
		t.Fatalf("dead links %d want 1", m.DeadLinks())
	}
}

func TestRouteDetoursAroundDeadLink(t *testing.T) {
	m := mustMesh(t, 4, 2)
	// Kill the direct E link out of (1,0); the X-Y route (0,0)→(3,0)
	// must detour through row 1.
	if err := m.DisableLink(Coord{1, 0}, 'E'); err != nil {
		t.Fatal(err)
	}
	path := mustRoute(t, m, Coord{0, 0}, Coord{3, 0})
	if len(path) <= m.Hops(Coord{0, 0}, Coord{3, 0}) {
		t.Fatalf("detour path %v not longer than Manhattan distance", path)
	}
	for i := 1; i < len(path); i++ {
		if m.Hops(path[i-1], path[i]) != 1 {
			t.Fatalf("non-adjacent hop in detour: %v", path)
		}
	}
	// Determinism: the same query yields the identical path.
	again := mustRoute(t, m, Coord{0, 0}, Coord{3, 0})
	if len(again) != len(path) {
		t.Fatalf("detour not deterministic: %v vs %v", path, again)
	}
	for i := range path {
		if path[i] != again[i] {
			t.Fatalf("detour not deterministic: %v vs %v", path, again)
		}
	}
	// Send still works over the detour.
	if _, err := m.Send(Coord{0, 0}, Coord{3, 0}, 64); err != nil {
		t.Fatal(err)
	}
}

func TestRouteUnreachable(t *testing.T) {
	m := mustMesh(t, 2, 1)
	if err := m.DisableLink(Coord{0, 0}, 'E'); err != nil {
		t.Fatal(err)
	}
	_, err := m.Route(Coord{0, 0}, Coord{1, 0})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	if _, err := m.Send(Coord{0, 0}, Coord{1, 0}, 64); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send over partitioned mesh: want ErrUnreachable, got %v", err)
	}
}

func TestSlowLinkStretchesDrain(t *testing.T) {
	m := mustMesh(t, 2, 1)
	if err := m.SlowLink(Coord{0, 0}, 'E', 0); err == nil {
		t.Fatal("zero factor should fail")
	}
	if err := m.SlowLink(Coord{0, 0}, 'E', 0.5); err != nil {
		t.Fatal(err)
	}
	if m.SlowLinks() != 1 {
		t.Fatalf("slow links %d want 1", m.SlowLinks())
	}
	mustSend(t, m, Coord{0, 0}, Coord{1, 0}, 640)
	// 640 B at half of 64 B/cycle → 20 cycles instead of 10.
	if d := m.DrainCycles(); d != 20 {
		t.Fatalf("slowed drain %f want 20", d)
	}
}

func TestEmitCountersPerLink(t *testing.T) {
	m := mustMesh(t, 2, 2)
	mustSend(t, m, Coord{0, 0}, Coord{1, 0}, 128) // one E hop
	if _, err := m.Multicast(Coord{0, 0}, []Coord{{0, 1}, {1, 1}}, 64); err != nil {
		t.Fatal(err)
	}
	if m.Sends() != 3 {
		t.Fatalf("sends %d want 3", m.Sends())
	}

	tel := telemetry.New()
	m.EmitCounters(tel)
	// Unicast 128 B plus the multicast's E-leg toward (1,1): 64 B.
	if got := tel.Counter("noc/link/0,0/E"); got != 192 {
		t.Fatalf("E-link occupancy %v want 192", got)
	}
	if got := tel.Counter("noc/sends"); got != 3 {
		t.Fatalf("noc/sends %v want 3", got)
	}
	if got, want := tel.Counter("noc/bytes_hops"), m.TotalBytesHops(); got != want {
		t.Fatalf("noc/bytes_hops %v want %v", got, want)
	}

	// Nil collector: no-op, no panic (the disabled path).
	m.EmitCounters(nil)

	// Loads are deltas: reset then re-emit accumulates windows.
	m.Reset()
	mustSend(t, m, Coord{0, 0}, Coord{1, 0}, 72)
	m.EmitCounters(tel)
	if got := tel.Counter("noc/link/0,0/E"); got != 264 {
		t.Fatalf("accumulated E-link occupancy %v want 264", got)
	}
	if m.Sends() != 1 {
		t.Fatalf("sends after reset %d want 1", m.Sends())
	}
}

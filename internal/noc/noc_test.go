package noc

import (
	"testing"
	"testing/quick"

	"crophe/internal/telemetry"
)

func mustMesh(t *testing.T, w, h int) *Mesh {
	t.Helper()
	m, err := NewMesh(w, h, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 4, 64, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewMesh(4, 4, 0, 1); err == nil {
		t.Error("zero link capacity should fail")
	}
	m, err := NewMesh(4, 4, 64, 0)
	if err != nil || m.HopLatency != 1 {
		t.Error("hop latency should clamp to 1")
	}
}

func TestPEIndexRowMajor(t *testing.T) {
	m := mustMesh(t, 8, 4)
	if c := m.PEIndex(0); c != (Coord{0, 0}) {
		t.Errorf("PE 0 at %v", c)
	}
	if c := m.PEIndex(7); c != (Coord{7, 0}) {
		t.Errorf("PE 7 at %v", c)
	}
	if c := m.PEIndex(8); c != (Coord{0, 1}) {
		t.Errorf("PE 8 at %v", c)
	}
	if c := m.PEIndex(31); c != (Coord{7, 3}) {
		t.Errorf("PE 31 at %v", c)
	}
}

func TestRouteXY(t *testing.T) {
	m := mustMesh(t, 8, 8)
	path := m.Route(Coord{1, 1}, Coord{4, 3})
	want := []Coord{{2, 1}, {3, 1}, {4, 1}, {4, 2}, {4, 3}}
	if len(path) != len(want) {
		t.Fatalf("path %v want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path[%d] = %v want %v", i, path[i], want[i])
		}
	}
	// Self-route is empty.
	if p := m.Route(Coord{2, 2}, Coord{2, 2}); len(p) != 0 {
		t.Fatalf("self route %v", p)
	}
}

func TestRoutePropertyLengthIsManhattan(t *testing.T) {
	m := mustMesh(t, 8, 8)
	prop := func(a, b uint8) bool {
		src := m.PEIndex(int(a) % 64)
		dst := m.PEIndex(int(b) % 64)
		return len(m.Route(src, dst)) == m.Hops(src, dst)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSendAccumulatesAndDrains(t *testing.T) {
	m := mustMesh(t, 4, 1)
	lat := m.Send(Coord{0, 0}, Coord{3, 0}, 640)
	if lat != 3 {
		t.Fatalf("latency %d want 3", lat)
	}
	// 640 bytes over each of three links at 64 B/cycle → 10 cycles drain.
	if d := m.DrainCycles(); d != 10 {
		t.Fatalf("drain %f want 10", d)
	}
	// Two flows sharing the middle link contend.
	m.Reset()
	m.Send(Coord{0, 0}, Coord{2, 0}, 640)
	m.Send(Coord{1, 0}, Coord{3, 0}, 640)
	if d := m.DrainCycles(); d != 20 {
		t.Fatalf("contended drain %f want 20 (shared link)", d)
	}
}

func TestMulticastSharesPrefix(t *testing.T) {
	m := mustMesh(t, 4, 4)
	// Unicast to two destinations down the same column duplicates the
	// shared prefix...
	m.Send(Coord{0, 0}, Coord{0, 2}, 100)
	m.Send(Coord{0, 0}, Coord{0, 3}, 100)
	unicast := m.TotalBytesHops()
	m.Reset()
	// ...multicast pays it once.
	m.Multicast(Coord{0, 0}, []Coord{{0, 2}, {0, 3}}, 100)
	multicast := m.TotalBytesHops()
	if multicast >= unicast {
		t.Fatalf("multicast %.0f not cheaper than unicast %.0f", multicast, unicast)
	}
	if multicast != 300 { // 3 links × 100 bytes
		t.Fatalf("multicast bytes-hops %.0f want 300", multicast)
	}
}

func TestUtilization(t *testing.T) {
	m := mustMesh(t, 2, 2)
	m.Send(Coord{0, 0}, Coord{1, 1}, 64)
	// Perfect utilisation would move 8 links × 64 B per cycle.
	u := m.Utilization(1)
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation %f", u)
	}
	if m.Utilization(0) != 0 {
		t.Fatal("zero-cycle utilisation")
	}
}

func TestRoutePanicsOutsideMesh(t *testing.T) {
	m := mustMesh(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Route(Coord{0, 0}, Coord{5, 5})
}

func TestEmitCountersPerLink(t *testing.T) {
	m := mustMesh(t, 2, 2)
	m.Send(Coord{0, 0}, Coord{1, 0}, 128) // one E hop
	m.Multicast(Coord{0, 0}, []Coord{{0, 1}, {1, 1}}, 64)
	if m.Sends() != 3 {
		t.Fatalf("sends %d want 3", m.Sends())
	}

	tel := telemetry.New()
	m.EmitCounters(tel)
	// Unicast 128 B plus the multicast's E-leg toward (1,1): 64 B.
	if got := tel.Counter("noc/link/0,0/E"); got != 192 {
		t.Fatalf("E-link occupancy %v want 192", got)
	}
	if got := tel.Counter("noc/sends"); got != 3 {
		t.Fatalf("noc/sends %v want 3", got)
	}
	if got, want := tel.Counter("noc/bytes_hops"), m.TotalBytesHops(); got != want {
		t.Fatalf("noc/bytes_hops %v want %v", got, want)
	}

	// Nil collector: no-op, no panic (the disabled path).
	m.EmitCounters(nil)

	// Loads are deltas: reset then re-emit accumulates windows.
	m.Reset()
	m.Send(Coord{0, 0}, Coord{1, 0}, 72)
	m.EmitCounters(tel)
	if got := tel.Counter("noc/link/0,0/E"); got != 264 {
		t.Fatalf("accumulated E-link occupancy %v want 264", got)
	}
	if m.Sends() != 1 {
		t.Fatalf("sends after reset %d want 1", m.Sends())
	}
}

// Package leakcheck asserts that a test leaves no goroutines behind: a
// snapshot/diff helper for suites that exercise servers, clients and
// chaos transports, where a leaked poller or heartbeat goroutine is a
// real production bug the normal pass/fail signal would miss.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredPrefixes are goroutine origins that are allowed to outlive a
// test: the runtime's own helpers, the testing framework, net/http's
// pooled idle connections (reaped by their own timers, not by Close),
// and this repo's process-global worker pool.
var ignoredPrefixes = []string{
	"testing.",
	"runtime.",
	"os/signal.",
	"internal/poll.",
	"net/http.(*Transport)",
	"net/http.(*persistConn)",
	"net/http.(*http2",
	"crophe/internal/parallel.",
}

// snapshot counts live goroutines by creation site ("created by <func>"
// from the stack dump), skipping the ignored origins.
func snapshot() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	counts := make(map[string]int)
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		sig := ""
		for _, line := range strings.Split(g, "\n") {
			if rest, ok := strings.CutPrefix(line, "created by "); ok {
				sig = rest
				if i := strings.Index(rest, " in goroutine"); i >= 0 {
					sig = rest[:i]
				}
				break
			}
		}
		if sig == "" {
			continue // the root goroutine, or runtime internals with no creator
		}
		ignored := false
		for _, p := range ignoredPrefixes {
			if strings.HasPrefix(sig, p) {
				ignored = true
				break
			}
		}
		if !ignored {
			counts[sig]++
		}
	}
	return counts
}

// leakDiff reports creation sites with more live goroutines now than at
// baseline.
func leakDiff(baseline, now map[string]int) []string {
	var leaks []string
	for sig, c := range now {
		if c > baseline[sig] {
			leaks = append(leaks, fmt.Sprintf("%s (+%d)", sig, c-baseline[sig]))
		}
	}
	sort.Strings(leaks)
	return leaks
}

// Check snapshots the goroutines now and registers a cleanup that fails
// the test if, after a settle window, more goroutines exist per creation
// site than the snapshot held. Register it at the top of the test so the
// cleanup runs last (cleanups are LIFO) — after the test's own server
// shutdowns and client closes have run.
func Check(t testing.TB) {
	t.Helper()
	baseline := snapshot()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaks []string
		for {
			leaks = leakDiff(baseline, snapshot())
			if len(leaks) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leaked goroutines:\n  %s", strings.Join(leaks, "\n  "))
	})
}

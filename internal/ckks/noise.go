package ckks

import (
	"math"
	"math/big"
)

// NoiseBits measures the actual noise of a ciphertext against the exact
// plaintext it should contain: it decrypts, subtracts the reference
// encoding, and returns log₂ of the largest residual coefficient. The
// remaining noise budget is roughly log₂(q₀·…·q_ℓ·/2) − NoiseBits; when
// the noise reaches the scale's magnitude the message is drowned.
//
// This is a debugging/validation utility — it requires the secret key and
// the true message, so it lives on the Decryptor.
func (d *Decryptor) NoiseBits(ct *Ciphertext, want *Plaintext) float64 {
	rq := d.params.RingQ()
	dec := d.Decrypt(ct)

	limbs := ct.Level + 1
	if want.Level+1 < limbs {
		limbs = want.Level + 1
	}
	diff := rq.NewPoly(limbs)
	dv := dec.Value.Copy()
	dv.DropLevel(limbs)
	wv := want.Value.Copy()
	wv.DropLevel(limbs)
	rq.Sub(diff, dv, wv)
	rq.INTT(diff)

	basis := d.params.QAtLevel(limbs - 1)
	residues := make([]uint64, limbs)
	maxBits := math.Inf(-1)
	for j := 0; j < rq.N; j++ {
		for i := 0; i < limbs; i++ {
			residues[i] = diff.Coeffs[i][j]
		}
		c := basis.ReconstructCentered(residues)
		bits := float64(new(big.Int).Abs(c).BitLen())
		if bits > maxBits {
			maxBits = bits
		}
	}
	return maxBits
}

// LogQ returns log₂ of the ciphertext modulus at a level — the total
// noise budget available there.
func (p *Parameters) LogQ(level int) float64 {
	var total float64
	for i := 0; i <= level && i < len(p.Q); i++ {
		total += math.Log2(float64(p.Q[i]))
	}
	return total
}

package ckks

import (
	"fmt"

	"crophe/internal/parallel"
	"crophe/internal/poly"
	"crophe/internal/rns"
)

// RotateHoisted computes several rotations of one ciphertext while
// performing the expensive Decomp + ModUp only once (the Hoisting
// optimisation of Figure 8(b), from [2]/[7]): because the Galois
// automorphism σ_g acts coefficient-wise within every RNS limb, it
// commutes with digit decomposition and base conversion, so
//
//	KeySwitch(σ_g(a)) = Σ_d σ_g(ModUp([a]_{D_d})) ⊙ evk_g,d,
//
// and the per-digit ModUp results are shared across all requested
// rotation amounts. Returns a map from rotation amount to rotated
// ciphertext. Rotation amount 0 returns the input unchanged.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rotations []int) (map[int]*Ciphertext, error) {
	if ev.keys == nil {
		return nil, fmt.Errorf("ckks: RotateHoisted requires rotation keys")
	}
	params := ev.params
	rq := params.RingQ()
	rqp := params.RingQP()
	level := ct.Level
	nQ := len(params.Q)
	k := params.Alpha
	n := rq.N

	out := make(map[int]*Ciphertext, len(rotations))

	// Shared Decomp: operand to coefficient form once.
	aCoeff := ct.A.Copy()
	rq.INTT(aCoeff)
	bCoeff := ct.B.Copy()
	rq.INTT(bCoeff)

	digits := rns.DigitBounds(level, params.Alpha)

	// Extended limb set indices into ringQP.
	extQP := make([]int, 0, level+1+k)
	for i := 0; i <= level; i++ {
		extQP = append(extQP, i)
	}
	for j := 0; j < k; j++ {
		extQP = append(extQP, nQ+j)
	}

	// Shared ModUp: per digit, in COEFFICIENT form (so the automorphism
	// can be applied per rotation before the NTT). Digits are independent
	// and fan out across the worker pool.
	moduped := make([][][]uint64, len(digits)) // [digit][extLimb][N]
	modUpErrs := make([]error, len(digits))
	parallel.For(len(digits), func(d int) {
		lo, hi := digits[d][0], digits[d][1]
		conv, err := ev.modUpConvFor(level, d, lo, hi)
		if err != nil {
			modUpErrs[d] = err
			return
		}
		ext := make([][]uint64, len(extQP))
		compRows := make([][]uint64, 0, len(extQP)-(hi-lo))
		for t, qp := range extQP {
			if qp >= lo && qp < hi {
				ext[t] = append([]uint64(nil), aCoeff.Coeffs[qp]...)
			} else {
				row := make([]uint64, n)
				ext[t] = row
				compRows = append(compRows, row)
			}
		}
		conv.ConvertColumns(compRows, aCoeff.Coeffs[lo:hi])
		moduped[d] = ext
	})
	for _, err := range modUpErrs {
		if err != nil {
			return nil, err
		}
	}

	// Every requested rotation reuses the shared ModUp digits read-only,
	// so the rotations themselves are independent pool tasks. Results are
	// collected by input position to keep assembly deterministic.
	results := make([]*Ciphertext, len(rotations))
	rotErrs := make([]error, len(rotations))
	parallel.For(len(rotations), func(ri int) {
		r := rotations[ri]
		if r == 0 {
			results[ri] = ct.CopyCt()
			return
		}
		key, err := ev.keys.RotKey(r)
		if err != nil {
			rotErrs[ri] = err
			return
		}
		if len(digits) > key.Digits() {
			rotErrs[ri] = fmt.Errorf("ckks: rotation key for %d has %d digits, need %d",
				r, key.Digits(), len(digits))
			return
		}
		galois := rq.GaloisElement(r)

		arena := getArena()
		defer arena.release()
		acc0 := arena.rows(len(extQP), n, true)
		acc1 := arena.rows(len(extQP), n, true)

		// Per digit: permute the shared ModUp result, NTT, inner-product.
		// Extended limbs write disjoint accumulator rows, so the t loop
		// nests in the pool; each chunk reuses one permutation buffer.
		for d := range digits {
			kb, ka := key.B[d], key.A[d]
			ext := moduped[d]
			parallel.ForChunk(len(extQP), func(tlo, thi int) {
				chunkArena := getArena()
				// Deferred, not trailing: the pool re-raises worker panics,
				// and a panic between here and a trailing release would
				// leak the arena for the process lifetime.
				defer chunkArena.release()
				permuted := chunkArena.alloc(n)
				for t := tlo; t < thi; t++ {
					qp := extQP[t]
					m := rqp.Mod(qp)
					// σ_g of this limb in coefficient form.
					applyAutoRow(rqp, permuted, ext[t], galois, qp)
					rqp.Tables[qp].Forward(permuted)
					bRow, aRow := kb.Coeffs[qp], ka.Coeffs[qp]
					m.MulAddVec(acc0[t], permuted, bRow)
					m.MulAddVec(acc1[t], permuted, aRow)
				}
			})
		}

		c0, err := ev.modDown(acc0, extQP, level)
		if err != nil {
			rotErrs[ri] = err
			return
		}
		c1, err := ev.modDown(acc1, extQP, level)
		if err != nil {
			rotErrs[ri] = err
			return
		}

		// Add σ_g(b).
		bAuto := rq.NewPoly(level + 1)
		rq.Automorphism(bAuto, bCoeff, galois)
		rq.NTT(bAuto)
		rq.Add(c0, c0, bAuto)

		results[ri] = &Ciphertext{B: c0, A: c1, Scale: ct.Scale, Level: level}
	})
	for _, err := range rotErrs {
		if err != nil {
			return nil, err
		}
	}
	for ri, r := range rotations {
		out[r] = results[ri]
	}
	return out, nil
}

// applyAutoRow applies the coefficient permutation of σ_g to a single
// limb row under the modulus at QP index qp.
func applyAutoRow(rqp *poly.Ring, dst, src []uint64, galois uint64, qp int) {
	tmpIn := &poly.Poly{Coeffs: [][]uint64{src}}
	tmpOut := &poly.Poly{Coeffs: [][]uint64{dst}}
	// Build a single-limb view ring operation: Automorphism works on the
	// limb list given; the modulus index must match, so shift the view.
	subRing := ringView{rqp, qp}
	subRing.automorphism(tmpOut, tmpIn, galois)
}

// ringView lets single-limb operations use the modulus at an arbitrary
// limb index of a ring.
type ringView struct {
	r  *poly.Ring
	qp int
}

func (v ringView) automorphism(dst, src *poly.Poly, galois uint64) {
	m := v.r.Mod(v.qp)
	entries := v.r.AutomorphismIndex(galois)
	da, dd := src.Coeffs[0], dst.Coeffs[0]
	for out, e := range entries {
		val := da[e.Src()]
		if e.Negate() {
			val = m.Neg(val)
		}
		dd[out] = val
	}
}

package ckks

import "sync"

// ksArena is a grow-only scratch allocator for the limb-row matrices that
// key-switching churns through (ModUp digit extensions, inner-product
// accumulators, ModDown correction rows). Arenas are recycled through a
// process-wide sync.Pool, so the steady state performs no heap allocation
// for these temporaries no matter how many goroutines key-switch
// concurrently — each worker task checks out its own arena.
//
// Rows carved from an arena stay valid until release(); the arena must not
// be released while any carved row is still referenced.
type ksArena struct {
	backing []uint64
	off     int
}

var ksArenaPool sync.Pool

func getArena() *ksArena {
	if a, ok := ksArenaPool.Get().(*ksArena); ok {
		a.off = 0
		return a
	}
	return &ksArena{}
}

// release returns the arena (and its grown backing) to the pool.
func (a *ksArena) release() {
	a.off = 0
	ksArenaPool.Put(a)
}

// alloc carves one n-element row. The row holds stale data from previous
// uses; callers must fully overwrite or zero it.
func (a *ksArena) alloc(n int) []uint64 {
	if a.off+n > len(a.backing) {
		grow := 2 * len(a.backing)
		if grow < n {
			grow = n
		}
		// Earlier rows keep referencing the old backing array; only new
		// carves come from the fresh one.
		a.backing = make([]uint64, grow)
		a.off = 0
	}
	row := a.backing[a.off : a.off+n : a.off+n]
	a.off += n
	return row
}

// rows carves a k×n row matrix. With zero set, every entry is cleared (for
// accumulators); otherwise rows carry stale data the caller overwrites.
func (a *ksArena) rows(k, n int, zero bool) [][]uint64 {
	out := make([][]uint64, k)
	for i := range out {
		out[i] = a.alloc(n)
		if zero {
			row := out[i]
			for j := range row {
				row[j] = 0
			}
		}
	}
	return out
}

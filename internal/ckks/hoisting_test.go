package ckks

import (
	"math/cmplx"
	"testing"
)

func TestRotateHoistedMatchesRotate(t *testing.T) {
	rotations := []int{1, 2, 5}
	tc := newTestContext(t, 7, 2, 2, rotations)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, err := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	hoisted, err := tc.eval.RotateHoisted(ct, rotations)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rotations {
		direct, err := tc.eval.Rotate(ct, r)
		if err != nil {
			t.Fatal(err)
		}
		gotH := tc.enc.Decode(tc.decr.Decrypt(hoisted[r]))
		gotD := tc.enc.Decode(tc.decr.Decrypt(direct))
		var worst float64
		for i := range gotH {
			if e := cmplx.Abs(gotH[i] - gotD[i]); e > worst {
				worst = e
			}
		}
		if worst > 1e-4 {
			t.Fatalf("rotation %d: hoisted deviates from direct by %g", r, worst)
		}
	}
}

func TestRotateHoistedCorrectValues(t *testing.T) {
	rotations := []int{1, 3}
	tc := newTestContext(t, 7, 2, 1, rotations) // dnum > 1 path via alpha=1
	slots := tc.params.Slots()
	v := randomValues(tc.rng, slots)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())

	hoisted, err := tc.eval.RotateHoisted(ct, rotations)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rotations {
		got := tc.enc.Decode(tc.decr.Decrypt(hoisted[r]))
		var worst float64
		for i := range got {
			want := v[(i+r)%slots]
			if e := cmplx.Abs(got[i] - want); e > worst {
				worst = e
			}
		}
		if worst > 1e-3 {
			t.Fatalf("hoisted rotation %d error %g", r, worst)
		}
	}
}

func TestRotateHoistedZeroAmount(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, []int{1})
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	out, err := tc.eval.RotateHoisted(ct, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out[0]))
	if e := maxErr(got[:4], v); e > 1e-4 {
		t.Fatalf("identity rotation error %g", e)
	}
}

func TestRotateHoistedMissingKey(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, []int{1})
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	if _, err := tc.eval.RotateHoisted(ct, []int{9}); err == nil {
		t.Fatal("missing key should fail")
	}
	bare := NewEvaluator(tc.params, nil)
	if _, err := bare.RotateHoisted(ct, []int{1}); err == nil {
		t.Fatal("nil key set should fail")
	}
}

func BenchmarkRotateHoisted8(b *testing.B) {
	rotations := []int{1, 2, 3, 4, 5, 6, 7}
	tc := newTestContext(b, 10, 3, 2, rotations)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.RotateHoisted(ct, rotations); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotateDirect8(b *testing.B) {
	rotations := []int{1, 2, 3, 4, 5, 6, 7}
	tc := newTestContext(b, 10, 3, 2, rotations)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rotations {
			if _, err := tc.eval.Rotate(ct, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// testContext bundles everything a homomorphic test needs.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	keys   *EvaluationKeySet
	encr   *Encryptor
	decr   *Decryptor
	eval   *Evaluator
	rng    *rand.Rand
}

func newTestContext(t testing.TB, logN, levels, alpha int, rotations []int) *testContext {
	t.Helper()
	params, err := TestParameters(logN, levels, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewTestRand(42)
	kg := NewKeyGenerator(params, rng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := kg.GenEvaluationKeySet(sk, rotations)
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg, sk: sk, pk: pk, keys: keys,
		encr: NewEncryptor(params, pk, rng),
		decr: NewDecryptor(params, sk),
		eval: NewEvaluator(params, keys),
		rng:  rng,
	}
}

func randomValues(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func maxErr(got, want []complex128) float64 {
	var worst float64
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	vals := randomValues(tc.rng, tc.params.Slots())
	pt, err := tc.enc.Encode(vals, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt)
	if e := maxErr(got, vals); e > 1e-6 {
		t.Fatalf("encode/decode error %g", e)
	}
}

func TestEncodeShortVectorPads(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	vals := []complex128{1 + 2i, 3}
	pt, err := tc.enc.Encode(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt)
	if cmplx.Abs(got[0]-(1+2i)) > 1e-6 || cmplx.Abs(got[1]-3) > 1e-6 {
		t.Fatal("short vector values wrong")
	}
	for i := 2; i < len(got); i++ {
		if cmplx.Abs(got[i]) > 1e-6 {
			t.Fatalf("slot %d not zero-padded", i)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	if _, err := tc.enc.Encode(make([]complex128, tc.params.Slots()+1), 0); err == nil {
		t.Error("oversized vector should fail")
	}
	if _, err := tc.enc.Encode(nil, 5); err == nil {
		t.Error("bad level should fail")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	vals := randomValues(tc.rng, tc.params.Slots())
	ct, err := EncryptAtLevel(tc.enc, tc.encr, vals, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(ct))
	if e := maxErr(got, vals); e > 1e-4 {
		t.Fatalf("encrypt/decrypt error %g", e)
	}
}

func TestHAdd(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	v0 := randomValues(tc.rng, tc.params.Slots())
	v1 := randomValues(tc.rng, tc.params.Slots())
	ct0, _ := EncryptAtLevel(tc.enc, tc.encr, v0, tc.params.MaxLevel())
	ct1, _ := EncryptAtLevel(tc.enc, tc.encr, v1, tc.params.MaxLevel())
	sum, err := tc.eval.Add(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v0))
	for i := range want {
		want[i] = v0[i] + v1[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(sum))
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("HAdd error %g", e)
	}
}

func TestHSub(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	v0 := randomValues(tc.rng, tc.params.Slots())
	v1 := randomValues(tc.rng, tc.params.Slots())
	ct0, _ := EncryptAtLevel(tc.enc, tc.encr, v0, tc.params.MaxLevel())
	ct1, _ := EncryptAtLevel(tc.enc, tc.encr, v1, tc.params.MaxLevel())
	diff, err := tc.eval.Sub(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v0))
	for i := range want {
		want[i] = v0[i] - v1[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(diff))
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("HSub error %g", e)
	}
}

func TestAddLevelMismatchAligns(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ctHigh, _ := EncryptAtLevel(tc.enc, tc.encr, v, 2)
	ctLow, _ := EncryptAtLevel(tc.enc, tc.encr, v, 1)
	sum, err := tc.eval.Add(ctHigh, ctLow)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Level != 1 {
		t.Fatalf("sum at level %d, want 1", sum.Level)
	}
}

func TestAddScaleMismatchFails(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	v := randomValues(tc.rng, 4)
	ct0, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	ct1, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	ct1.Scale *= 2
	if _, err := tc.eval.Add(ct0, ct1); err == nil {
		t.Error("scale mismatch should fail")
	}
}

func TestPMultAndRescale(t *testing.T) {
	tc := newTestContext(t, 7, 3, 1, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	w := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	pt, err := tc.enc.Encode(w, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	prod, err := tc.eval.MulPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = tc.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] * w[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(prod))
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("PMult error %g", e)
	}
	if prod.Level != tc.params.MaxLevel()-1 {
		t.Fatal("rescale did not drop a level")
	}
}

func TestHMult(t *testing.T) {
	tc := newTestContext(t, 7, 3, 2, nil)
	v0 := randomValues(tc.rng, tc.params.Slots())
	v1 := randomValues(tc.rng, tc.params.Slots())
	ct0, _ := EncryptAtLevel(tc.enc, tc.encr, v0, tc.params.MaxLevel())
	ct1, _ := EncryptAtLevel(tc.enc, tc.encr, v1, tc.params.MaxLevel())
	prod, err := tc.eval.MulRelin(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = tc.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v0))
	for i := range want {
		want[i] = v0[i] * v1[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(prod))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("HMult error %g", e)
	}
}

func TestHMultChain(t *testing.T) {
	// (v²)·v across two levels with rescaling.
	tc := newTestContext(t, 7, 3, 2, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	sq, err := tc.eval.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	sq, _ = tc.eval.Rescale(sq)
	cube, err := tc.eval.MulRelin(sq, ct)
	if err != nil {
		t.Fatal(err)
	}
	cube, _ = tc.eval.Rescale(cube)
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] * v[i] * v[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(cube))
	if e := maxErr(got, want); e > 5e-2 {
		t.Fatalf("HMult chain error %g", e)
	}
}

func TestHRot(t *testing.T) {
	tc := newTestContext(t, 7, 2, 2, []int{1, 3, -1})
	slots := tc.params.Slots()
	v := randomValues(tc.rng, slots)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	for _, r := range []int{1, 3, -1} {
		rot, err := tc.eval.Rotate(ct, r)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, slots)
		for i := range want {
			want[i] = v[((i+r)%slots+slots)%slots]
		}
		got := tc.enc.Decode(tc.decr.Decrypt(rot))
		if e := maxErr(got, want); e > 1e-3 {
			t.Fatalf("HRot(%d) error %g", r, e)
		}
	}
}

func TestRotateWithoutKeyFails(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, []int{1})
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	if _, err := tc.eval.Rotate(ct, 7); err == nil {
		t.Error("missing rotation key should fail")
	}
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t, 7, 2, 2, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	conj, err := tc.eval.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = cmplx.Conj(v[i])
	}
	got := tc.enc.Decode(tc.decr.Decrypt(conj))
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("Conjugate error %g", e)
	}
}

func TestAddConst(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	out := tc.eval.AddConst(ct, 2.5)
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] + 2.5
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("AddConst error %g", e)
	}
}

func TestMulConst(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	out := tc.eval.MulConst(ct, -1.5)
	out, err := tc.eval.Rescale(out)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] * -1.5
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("MulConst error %g", e)
	}
}

func TestRescaleAtLevelZeroFails(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	if _, err := tc.eval.Rescale(ct); err == nil {
		t.Error("rescale at level 0 should fail")
	}
}

func TestAddPlain(t *testing.T) {
	tc := newTestContext(t, 7, 2, 1, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	w := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	pt, _ := tc.enc.Encode(w, tc.params.MaxLevel())
	out, err := tc.eval.AddPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] + w[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("AddPlain error %g", e)
	}
}

func TestParameterValidation(t *testing.T) {
	if _, err := NewParameters(2, []uint64{12289}, []uint64{40961}, 1, 1<<20, 3.2); err == nil {
		t.Error("logN too small should fail")
	}
	if _, err := NewParameters(4, nil, nil, 1, 1<<20, 3.2); err == nil {
		t.Error("empty chain should fail")
	}
	p, err := TestParameters(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.DNum() != 2 {
		t.Fatalf("DNum = %d, want 2 for L=2, alpha=2", p.DNum())
	}
	if p.Slots() != 16 {
		t.Fatalf("Slots = %d", p.Slots())
	}
}

func TestMultiDigitKeySwitchMatchesSingle(t *testing.T) {
	// alpha=1 (many digits) and alpha=L+1 (one digit) must both decrypt
	// correctly; exercise the dnum>1 path explicitly.
	for _, alpha := range []int{1, 2, 3} {
		tc := newTestContext(t, 6, 2, alpha, nil)
		v := randomValues(tc.rng, tc.params.Slots())
		ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
		prod, err := tc.eval.MulRelin(ct, ct)
		if err != nil {
			t.Fatalf("alpha=%d: %v", alpha, err)
		}
		prod, _ = tc.eval.Rescale(prod)
		want := make([]complex128, len(v))
		for i := range want {
			want[i] = v[i] * v[i]
		}
		got := tc.enc.Decode(tc.decr.Decrypt(prod))
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("alpha=%d: square error %g", alpha, e)
		}
	}
}

func TestHomomorphismLinearityProperty(t *testing.T) {
	// Dec(α·ct0 + ct1) ≈ α·v0 + v1 for scalar α realised as MulConst.
	tc := newTestContext(t, 6, 2, 1, nil)
	v0 := randomValues(tc.rng, tc.params.Slots())
	v1 := randomValues(tc.rng, tc.params.Slots())
	ct0, _ := EncryptAtLevel(tc.enc, tc.encr, v0, tc.params.MaxLevel())
	ct1, _ := EncryptAtLevel(tc.enc, tc.encr, v1, tc.params.MaxLevel())
	scaled := tc.eval.MulConst(ct0, 0.5)
	scaled, _ = tc.eval.Rescale(scaled)
	// ct1 must be brought to the same scale/level: multiply by 1.0.
	one := tc.eval.MulConst(ct1, 1.0)
	one, _ = tc.eval.Rescale(one)
	sum, err := tc.eval.Add(scaled, one)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v0))
	for i := range want {
		want[i] = 0.5*v0[i] + v1[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(sum))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("linearity error %g", e)
	}
}

func TestScaleTracking(t *testing.T) {
	tc := newTestContext(t, 6, 2, 1, nil)
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	if ct.Scale != tc.params.Scale {
		t.Fatal("fresh ciphertext scale")
	}
	sq, _ := tc.eval.MulRelin(ct, ct)
	if math.Abs(sq.Scale-ct.Scale*ct.Scale) > 1 {
		t.Fatal("product scale")
	}
	rs, _ := tc.eval.Rescale(sq)
	wantScale := sq.Scale / float64(tc.params.Q[tc.params.MaxLevel()])
	if math.Abs(rs.Scale-wantScale) > 1 {
		t.Fatal("rescaled scale")
	}
}

func BenchmarkHMult(b *testing.B) {
	tc := newTestContext(b, 10, 3, 2, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.MulRelin(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHRot(b *testing.B) {
	tc := newTestContext(b, 10, 3, 2, []int{1})
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Rotate(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMulNoRelinThenRelinearize(t *testing.T) {
	tc := newTestContext(t, 7, 3, 2, nil)
	v0 := randomValues(tc.rng, tc.params.Slots())
	v1 := randomValues(tc.rng, tc.params.Slots())
	ct0, _ := EncryptAtLevel(tc.enc, tc.encr, v0, tc.params.MaxLevel())
	ct1, _ := EncryptAtLevel(tc.enc, tc.encr, v1, tc.params.MaxLevel())

	deg2, err := tc.eval.MulNoRelin(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	if deg2.Degree() != 2 {
		t.Fatal("degree after MulNoRelin")
	}
	// Degree-2 ciphertexts decrypt directly (Decrypt handles D2·s²).
	want := make([]complex128, len(v0))
	for i := range want {
		want[i] = v0[i] * v1[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(deg2))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("degree-2 decrypt error %g", e)
	}

	relin, err := tc.eval.Relinearize(deg2)
	if err != nil {
		t.Fatal(err)
	}
	if relin.Degree() != 1 {
		t.Fatal("degree after Relinearize")
	}
	got = tc.enc.Decode(tc.decr.Decrypt(relin))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("relinearised decrypt error %g", e)
	}

	// Must agree with the fused MulRelin path.
	fused, err := tc.eval.MulRelin(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	gotF := tc.enc.Decode(tc.decr.Decrypt(fused))
	gotL := tc.enc.Decode(tc.decr.Decrypt(relin))
	if e := maxErr(gotL, gotF); e > 1e-3 {
		t.Fatalf("lazy vs fused relinearisation differ by %g", e)
	}
}

func TestRelinearizeErrors(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	if _, err := tc.eval.Relinearize(ct); err == nil {
		t.Error("relinearising a degree-1 ciphertext should fail")
	}
	deg2, _ := tc.eval.MulNoRelin(ct, ct)
	if _, err := tc.eval.MulNoRelin(deg2, ct); err == nil {
		t.Error("tensoring a degree-2 ciphertext should fail")
	}
	bare := NewEvaluator(tc.params, nil)
	if _, err := bare.Relinearize(deg2); err == nil {
		t.Error("relinearising without keys should fail")
	}
}

func TestNoiseBitsGrowsThroughOperations(t *testing.T) {
	tc := newTestContext(t, 7, 3, 2, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)

	fresh := tc.decr.NoiseBits(ct, pt)
	if fresh <= 0 {
		t.Fatalf("fresh noise %f bits implausible", fresh)
	}
	// Fresh noise must sit far below the budget and below the scale.
	if budget := tc.params.LogQ(ct.Level); fresh > budget/2 {
		t.Fatalf("fresh noise %f bits vs budget %f", fresh, budget)
	}
	if fresh > math.Log2(tc.params.Scale) {
		t.Fatalf("fresh noise %f bits exceeds the scale (message drowned)", fresh)
	}

	// After a multiplication and rescale, noise grows but the message
	// (back at scale ≈ Δ) must still dominate it.
	sq, err := tc.eval.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if sq, err = tc.eval.Rescale(sq); err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] * v[i]
	}
	ptSq, err := tc.enc.EncodeAtScale(want, sq.Level, sq.Scale)
	if err != nil {
		t.Fatal(err)
	}
	after := tc.decr.NoiseBits(sq, ptSq)
	if after <= fresh {
		t.Fatalf("noise did not grow through HMult+Rescale: %f -> %f bits", fresh, after)
	}
	if after > math.Log2(sq.Scale) {
		t.Fatalf("post-mult noise %f bits drowns the message at scale 2^%.0f",
			after, math.Log2(sq.Scale))
	}
	t.Logf("noise: fresh %.0f bits, after HMult+Rescale %.0f bits (budget %.0f)",
		fresh, after, tc.params.LogQ(ct.Level))
}

package ckks

import (
	"bytes"
	"testing"
)

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t, 6, 2, 1, nil)
	v := randomValues(tc.rng, tc.params.Slots())
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())

	data := MarshalCiphertext(ct)
	back, err := UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level != ct.Level || back.Scale != ct.Scale || back.Degree() != 1 {
		t.Fatal("metadata mismatch")
	}
	if !back.B.Equal(ct.B) || !back.A.Equal(ct.A) {
		t.Fatal("polynomial mismatch")
	}
	// The deserialised ciphertext decrypts identically.
	got := tc.enc.Decode(tc.decr.Decrypt(back))
	if e := maxErr(got, v); e > 1e-4 {
		t.Fatalf("decrypt after roundtrip error %g", e)
	}
}

func TestDegree2CiphertextMarshal(t *testing.T) {
	tc := newTestContext(t, 6, 2, 1, nil)
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	deg2, err := tc.eval.MulNoRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCiphertext(MarshalCiphertext(deg2))
	if err != nil {
		t.Fatal(err)
	}
	if back.Degree() != 2 || !back.D2.Equal(deg2.D2) {
		t.Fatal("degree-2 part lost")
	}
}

func TestSecretKeyMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	data := MarshalSecretKey(tc.sk)
	back, err := UnmarshalSecretKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Value.Equal(tc.sk.Value) {
		t.Fatal("secret key mismatch")
	}
	// Decryption with the deserialised key works.
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	dec := NewDecryptor(tc.params, back)
	got := tc.enc.Decode(dec.Decrypt(ct))
	if e := maxErr(got[:4], v); e > 1e-4 {
		t.Fatalf("decrypt with restored key error %g", e)
	}
}

func TestSwitchingKeyMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t, 6, 2, 1, nil)
	data := MarshalSwitchingKey(tc.keys.Relin)
	back, err := UnmarshalSwitchingKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digits() != tc.keys.Relin.Digits() {
		t.Fatal("digit count")
	}
	for d := 0; d < back.Digits(); d++ {
		if !back.B[d].Equal(tc.keys.Relin.B[d]) || !back.A[d].Equal(tc.keys.Relin.A[d]) {
			t.Fatalf("digit %d mismatch", d)
		}
	}
}

func TestUnmarshalRejectsCorruptData(t *testing.T) {
	tc := newTestContext(t, 6, 1, 1, nil)
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, 0)
	data := MarshalCiphertext(ct)

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalCiphertext(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated.
	if _, err := UnmarshalCiphertext(data[:len(data)/2]); err == nil {
		t.Error("truncated data accepted")
	}
	// Trailing garbage.
	if _, err := UnmarshalCiphertext(append(data, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Empty.
	if _, err := UnmarshalCiphertext(nil); err == nil {
		t.Error("empty data accepted")
	}
	// Implausible dimensions: forge a huge limb count.
	forged := new(bytes.Buffer)
	forged.Write(data[:13]) // magic + level + scale + degree
	forged.Write([]byte{0, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := UnmarshalCiphertext(forged.Bytes()); err == nil {
		t.Error("implausible dimensions accepted")
	}
	if _, err := UnmarshalSecretKey([]byte{1, 2, 3}); err == nil {
		t.Error("short secret key accepted")
	}
	if _, err := UnmarshalSwitchingKey([]byte{1, 2, 3}); err == nil {
		t.Error("short switching key accepted")
	}
}

func TestMarshalSizeMatchesExpectation(t *testing.T) {
	tc := newTestContext(t, 6, 2, 1, nil)
	v := randomValues(tc.rng, 4)
	ct, _ := EncryptAtLevel(tc.enc, tc.encr, v, tc.params.MaxLevel())
	data := MarshalCiphertext(ct)
	// 2 polys × limbs × N × 8 bytes plus small headers.
	limbs := tc.params.MaxLevel() + 1
	payload := 2 * limbs * tc.params.N() * 8
	if len(data) < payload || len(data) > payload+64 {
		t.Fatalf("serialised size %d, payload %d", len(data), payload)
	}
}

package ckks

import (
	"fmt"
	"math"
	"sync"

	"crophe/internal/parallel"
	"crophe/internal/poly"
	"crophe/internal/rns"
)

// Evaluator executes homomorphic operations. It caches the per-(level,
// digit) base-conversion tables that ModUp and ModDown use, so the first
// operation at a level pays the precomputation and subsequent ones do not.
// The caches are mutex-guarded and every operation writes only freshly
// allocated outputs, so one Evaluator is safe for concurrent use across
// goroutines (parameters, keys, and conversion tables are immutable once
// built).
type Evaluator struct {
	params *Parameters
	keys   *EvaluationKeySet

	convMu      sync.Mutex           // guards the two conversion caches
	modUpConv   map[[2]int]*rns.Conv // (level, digit) → digit → complement conversion
	modDownConv map[int]*rns.Conv    // level → P → Q_level conversion
}

// NewEvaluator builds an evaluator bound to an evaluation-key set. The key
// set may be nil if only key-free operations (Add, MulPlain, Rescale) are
// used.
func NewEvaluator(params *Parameters, keys *EvaluationKeySet) *Evaluator {
	return &Evaluator{
		params:      params,
		keys:        keys,
		modUpConv:   make(map[[2]int]*rns.Conv),
		modDownConv: make(map[int]*rns.Conv),
	}
}

func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level == b.Level {
		return a, b
	}
	if a.Level > b.Level {
		a = a.CopyCt()
		a.B.DropLevel(b.Level + 1)
		a.A.DropLevel(b.Level + 1)
		a.Level = b.Level
		return a, b
	}
	b = b.CopyCt()
	b.B.DropLevel(a.Level + 1)
	b.A.DropLevel(a.Level + 1)
	b.Level = a.Level
	return a, b
}

// checkScales tolerates the small relative drift that accumulates when
// rescaling primes are close to, but not exactly, the scale Δ. Operands
// whose scales agree within this bound are combined as-is; the drift adds
// relative error far below the scheme's noise floor.
func checkScales(s0, s1 float64) error {
	if math.Abs(s0-s1) > 1e-4*math.Max(s0, s1) {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", s0, s1)
	}
	return nil
}

// Add returns ct0 + ct1 (HAdd). Levels are aligned by dropping limbs;
// scales must match.
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if err := checkScales(ct0.Scale, ct1.Scale); err != nil {
		return nil, err
	}
	ct0, ct1 = ev.alignLevels(ct0, ct1)
	rq := ev.params.RingQ()
	out := &Ciphertext{
		B: rq.NewPoly(ct0.Level + 1), A: rq.NewPoly(ct0.Level + 1),
		Scale: ct0.Scale, Level: ct0.Level,
	}
	rq.Add(out.B, ct0.B, ct1.B)
	rq.Add(out.A, ct0.A, ct1.A)
	return out, nil
}

// Sub returns ct0 − ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if err := checkScales(ct0.Scale, ct1.Scale); err != nil {
		return nil, err
	}
	ct0, ct1 = ev.alignLevels(ct0, ct1)
	rq := ev.params.RingQ()
	out := &Ciphertext{
		B: rq.NewPoly(ct0.Level + 1), A: rq.NewPoly(ct0.Level + 1),
		Scale: ct0.Scale, Level: ct0.Level,
	}
	rq.Sub(out.B, ct0.B, ct1.B)
	rq.Sub(out.A, ct0.A, ct1.A)
	return out, nil
}

// AddPlain returns ct + pt (PAdd).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := checkScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	level := ct.Level
	if pt.Level < level {
		level = pt.Level
	}
	rq := ev.params.RingQ()
	out := &Ciphertext{
		B: rq.NewPoly(level + 1), A: rq.NewPoly(level + 1),
		Scale: ct.Scale, Level: level,
	}
	ctB := &poly.Poly{Coeffs: ct.B.Coeffs[:level+1], IsNTT: true}
	ptV := &poly.Poly{Coeffs: pt.Value.Coeffs[:level+1], IsNTT: true}
	rq.Add(out.B, ctB, ptV)
	copyLimbs(out.A, ct.A, level+1)
	return out, nil
}

// MulPlain returns ct ⊙ pt (PMult). The result scale is the product; call
// Rescale afterwards.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	level := ct.Level
	if pt.Level < level {
		level = pt.Level
	}
	rq := ev.params.RingQ()
	out := &Ciphertext{
		B: rq.NewPoly(level + 1), A: rq.NewPoly(level + 1),
		Scale: ct.Scale * pt.Scale, Level: level,
	}
	ctB := &poly.Poly{Coeffs: ct.B.Coeffs[:level+1], IsNTT: true}
	ctA := &poly.Poly{Coeffs: ct.A.Coeffs[:level+1], IsNTT: true}
	ptV := &poly.Poly{Coeffs: pt.Value.Coeffs[:level+1], IsNTT: true}
	rq.MulHadamard(out.B, ctB, ptV)
	rq.MulHadamard(out.A, ctA, ptV)
	return out, nil
}

// AddConst returns ct + c for a real constant c (CAdd): a constant slot
// vector encodes to a constant polynomial, which in the NTT domain is the
// same value in every slot.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) *Ciphertext {
	out := ct.CopyCt()
	rq := ev.params.RingQ()
	for i := 0; i <= ct.Level; i++ {
		m := rq.Mod(i)
		v := int64(math.Round(c * ct.Scale))
		var vm uint64
		if v >= 0 {
			vm = m.Reduce(uint64(v))
		} else {
			vm = m.Neg(m.Reduce(uint64(-v)))
		}
		bi := out.B.Coeffs[i]
		m.AddScalarVec(bi, bi, vm)
	}
	return out
}

// MulConst returns ct · c for a real constant c (CMult), scaling by Δ; the
// result scale is ct.Scale·Δ, so a Rescale typically follows.
func (ev *Evaluator) MulConst(ct *Ciphertext, c float64) *Ciphertext {
	rq := ev.params.RingQ()
	k := int64(math.Round(c * ev.params.Scale))
	out := &Ciphertext{
		B: rq.NewPoly(ct.Level + 1), A: rq.NewPoly(ct.Level + 1),
		Scale: ct.Scale * ev.params.Scale, Level: ct.Level,
	}
	mulSignedScalar(rq, out.B, ct.B, k)
	mulSignedScalar(rq, out.A, ct.A, k)
	return out
}

// MulNoRelin returns the degree-2 tensor product (d0, d1, d2) without
// key-switching. Useful for lazy relinearisation: several products can be
// accumulated (Add supports degree-2 operands of equal degree via their
// D2 parts at the caller's discretion) and relinearised once.
func (ev *Evaluator) MulNoRelin(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if ct0.Degree() != 1 || ct1.Degree() != 1 {
		return nil, fmt.Errorf("ckks: MulNoRelin requires degree-1 operands")
	}
	ct0, ct1 = ev.alignLevels(ct0, ct1)
	rq := ev.params.RingQ()
	limbs := ct0.Level + 1
	out := &Ciphertext{
		B: rq.NewPoly(limbs), A: rq.NewPoly(limbs), D2: rq.NewPoly(limbs),
		Scale: ct0.Scale * ct1.Scale, Level: ct0.Level,
	}
	rq.MulHadamard(out.B, ct0.B, ct1.B)
	rq.MulHadamard(out.A, ct0.A, ct1.B)
	rq.MulAddHadamard(out.A, ct0.B, ct1.A)
	rq.MulHadamard(out.D2, ct0.A, ct1.A)
	return out, nil
}

// Relinearize converts a degree-2 ciphertext back to degree 1 by
// key-switching its D2 component with the relinearisation key.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Degree() != 2 {
		return nil, fmt.Errorf("ckks: Relinearize requires a degree-2 ciphertext")
	}
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, fmt.Errorf("ckks: Relinearize requires a relinearisation key")
	}
	rq := ev.params.RingQ()
	c0, c1, err := ev.keySwitch(ct.D2, ct.Level, ev.keys.Relin)
	if err != nil {
		return nil, err
	}
	out := &Ciphertext{
		B: rq.NewPoly(ct.Level + 1), A: rq.NewPoly(ct.Level + 1),
		Scale: ct.Scale, Level: ct.Level,
	}
	rq.Add(out.B, ct.B, c0)
	rq.Add(out.A, ct.A, c1)
	return out, nil
}

// MulRelin returns ct0 · ct1 followed by relinearisation with the relin
// key (HMult). The result scale is the product of scales.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, fmt.Errorf("ckks: MulRelin requires a relinearisation key")
	}
	ct0, ct1 = ev.alignLevels(ct0, ct1)
	rq := ev.params.RingQ()
	level := ct0.Level
	limbs := level + 1

	// Tensor product: (d0, d1, d2).
	d0 := rq.NewPoly(limbs)
	d1 := rq.NewPoly(limbs)
	d2 := rq.NewPoly(limbs)
	rq.MulHadamard(d0, ct0.B, ct1.B)
	rq.MulHadamard(d1, ct0.A, ct1.B)
	rq.MulAddHadamard(d1, ct0.B, ct1.A)
	rq.MulHadamard(d2, ct0.A, ct1.A)

	// KeySwitch(d2) and fold in.
	c0, c1, err := ev.keySwitch(d2, level, ev.keys.Relin)
	if err != nil {
		return nil, err
	}
	rq.Add(d0, d0, c0)
	rq.Add(d1, d1, c1)
	return &Ciphertext{B: d0, A: d1, Scale: ct0.Scale * ct1.Scale, Level: level}, nil
}

// Rescale divides the ciphertext by the top modulus q_ℓ, dropping one
// level and dividing the scale by q_ℓ (HRescale).
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0")
	}
	rq := ev.params.RingQ()
	level := ct.Level
	qL := rq.Mod(level).Q

	out := &Ciphertext{
		B: rq.NewPoly(level), A: rq.NewPoly(level),
		Scale: ct.Scale / float64(qL), Level: level - 1,
	}
	rescalePoly(ev.params, out.B, ct.B, level)
	rescalePoly(ev.params, out.A, ct.A, level)
	return out, nil
}

// rescalePoly computes dst_i = (src_i − src_ℓ)·q_ℓ^{-1} mod q_i for
// i < ℓ, with the last limb lifted through the coefficient domain.
func rescalePoly(params *Parameters, dst, src *poly.Poly, level int) {
	rq := params.RingQ()
	qL := rq.Mod(level)

	// Last limb to coefficient form.
	last := append([]uint64(nil), src.Coeffs[level]...)
	rq.Tables[level].Inverse(last)

	n := rq.N
	parallel.For(level, func(i int) {
		m := rq.Mod(i)
		qlInv := m.Inv(m.Reduce(qL.Q))
		// Lift last-limb coefficients (centered) into q_i and NTT them
		// under q_i so the subtraction happens in the NTT domain.
		lifted := make([]uint64, n)
		for j := 0; j < n; j++ {
			v := last[j]
			if v > qL.Q/2 { // centered lift
				lifted[j] = m.Sub(m.Reduce(v), m.Reduce(qL.Q))
			} else {
				lifted[j] = m.Reduce(v)
			}
		}
		rq.Tables[i].Forward(lifted)
		m.SubMulShoupVec(dst.Coeffs[i], src.Coeffs[i], lifted, qlInv, m.ShoupPrecomp(qlInv))
	})
	dst.IsNTT = true
}

// Rotate applies HRot: homomorphically rotates slots left by r using the
// rotation key for r.
func (ev *Evaluator) Rotate(ct *Ciphertext, r int) (*Ciphertext, error) {
	if ev.keys == nil {
		return nil, fmt.Errorf("ckks: Rotate requires rotation keys")
	}
	key, err := ev.keys.RotKey(r)
	if err != nil {
		return nil, err
	}
	return ev.automorphism(ct, ev.params.RingQ().GaloisElement(r), key)
}

// Conjugate applies the conjugation automorphism.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	if ev.keys == nil || ev.keys.Conj == nil {
		return nil, fmt.Errorf("ckks: Conjugate requires the conjugation key")
	}
	return ev.automorphism(ct, ev.params.RingQ().GaloisElementConjugate(), ev.keys.Conj)
}

func (ev *Evaluator) automorphism(ct *Ciphertext, galois uint64, key *SwitchingKey) (*Ciphertext, error) {
	rq := ev.params.RingQ()
	level := ct.Level
	limbs := level + 1

	bAuto := applyAutoNTT(rq, ct.B, galois, limbs)
	aAuto := applyAutoNTT(rq, ct.A, galois, limbs)

	c0, c1, err := ev.keySwitch(aAuto, level, key)
	if err != nil {
		return nil, err
	}
	rq.Add(c0, c0, bAuto)
	return &Ciphertext{B: c0, A: c1, Scale: ct.Scale, Level: level}, nil
}

// applyAutoNTT computes σ_g of an NTT-form polynomial by round-tripping
// through the coefficient domain (the hardware instead permutes in place
// with its shift networks; functionally identical).
func applyAutoNTT(rq *poly.Ring, p *poly.Poly, galois uint64, limbs int) *poly.Poly {
	tmp := (&poly.Poly{Coeffs: p.Coeffs[:limbs], IsNTT: p.IsNTT}).Copy()
	rq.INTT(tmp)
	out := rq.NewPoly(limbs)
	rq.Automorphism(out, tmp, galois)
	rq.NTT(out)
	return out
}

// KeySwitch applies the raw key-switching primitive (Equation 1 of the
// paper) to an NTT-form polynomial at the given level, returning the
// (b, a) contribution pair.
func (ev *Evaluator) KeySwitch(x *poly.Poly, level int, key *SwitchingKey) (*poly.Poly, *poly.Poly, error) {
	return ev.keySwitch(x, level, key)
}

// keySwitch implements Decomp → ModUp → KSKInP → ModDown.
func (ev *Evaluator) keySwitch(x *poly.Poly, level int, key *SwitchingKey) (*poly.Poly, *poly.Poly, error) {
	params := ev.params
	rqp := params.RingQP()
	nQ := len(params.Q)
	k := params.Alpha // number of special primes
	n := rqp.N

	if x.Limbs() != level+1 {
		return nil, nil, fmt.Errorf("ckks: keySwitch operand has %d limbs, want %d", x.Limbs(), level+1)
	}
	digits := rns.DigitBounds(level, params.Alpha)
	if len(digits) > key.Digits() {
		return nil, nil, fmt.Errorf("ckks: key has %d digits, need %d", key.Digits(), len(digits))
	}

	// Decomp: operand to coefficient form once.
	xc := x.Copy()
	params.RingQ().INTT(xc)

	// Extended limb set: q_0..q_level, p_0..p_{k-1}; QP indices.
	extQP := make([]int, 0, level+1+k)
	for i := 0; i <= level; i++ {
		extQP = append(extQP, i)
	}
	for j := 0; j < k; j++ {
		extQP = append(extQP, nQ+j)
	}
	nExt := len(extQP)

	// Decomposition digits are independent until the KSKInP accumulation,
	// so each digit runs as its own pool task producing partial
	// accumulators; they are then reduced in digit order. Modular addition
	// is exact, so the reduction is bit-identical to the serial
	// interleaved accumulation.
	type digitPartial struct {
		arena      *ksArena
		acc0, acc1 [][]uint64
	}
	parts := make([]digitPartial, len(digits))
	defer func() {
		for _, p := range parts {
			if p.arena != nil {
				p.arena.release()
			}
		}
	}()
	errs := make([]error, len(digits))
	parallel.For(len(digits), func(d int) {
		lo, hi := digits[d][0], digits[d][1]
		conv, err := ev.modUpConvFor(level, d, lo, hi)
		if err != nil {
			errs[d] = err
			return
		}
		arena := getArena()
		ext := arena.rows(nExt, n, false)
		// Each digit contributes exactly one product per extended limb, so
		// the partials are written by assignment — no zeroing needed.
		parts[d] = digitPartial{
			arena: arena,
			acc0:  arena.rows(nExt, n, false),
			acc1:  arena.rows(nExt, n, false),
		}

		// ModUp: digit limbs copied, complement limbs base-converted.
		compRows := make([][]uint64, 0, nExt-(hi-lo))
		for t, qp := range extQP {
			if qp >= lo && qp < hi {
				copy(ext[t], xc.Coeffs[qp])
			} else {
				compRows = append(compRows, ext[t])
			}
		}
		conv.ConvertColumns(compRows, xc.Coeffs[lo:hi])

		// Per extended limb: NTT, then the KSKInP partial products. Limb
		// rows are disjoint, so this nests cleanly inside the digit task.
		kb, ka := key.B[d], key.A[d]
		acc0, acc1 := parts[d].acc0, parts[d].acc1
		parallel.For(nExt, func(t int) {
			qp := extQP[t]
			m := rqp.Mod(qp)
			eRow := ext[t]
			rqp.Tables[qp].Forward(eRow)
			bRow, aRow := kb.Coeffs[qp], ka.Coeffs[qp]
			m.MulVec(acc0[t], eRow, bRow)
			m.MulVec(acc1[t], eRow, aRow)
		})
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Reduce the per-digit partials into digit 0's accumulators, limb-
	// parallel, in ascending digit order.
	acc0, acc1 := parts[0].acc0, parts[0].acc1
	parallel.For(nExt, func(t int) {
		m := rqp.Mod(extQP[t])
		a0, a1 := acc0[t], acc1[t]
		for d := 1; d < len(parts); d++ {
			m.AddVec(a0, a0, parts[d].acc0[t])
			m.AddVec(a1, a1, parts[d].acc1[t])
		}
	})

	// ModDown: divide by P. For each accumulator, convert the P-part back
	// to Q, subtract, and multiply by P^{-1}.
	c0, err := ev.modDown(acc0, extQP, level)
	if err != nil {
		return nil, nil, err
	}
	c1, err := ev.modDown(acc1, extQP, level)
	if err != nil {
		return nil, nil, err
	}
	return c0, c1, nil
}

// modDown maps an extended-basis accumulator (NTT form) back to Q_level,
// dividing by P.
func (ev *Evaluator) modDown(acc [][]uint64, extQP []int, level int) (*poly.Poly, error) {
	params := ev.params
	rqp := params.RingQP()
	rq := params.RingQ()
	nQ := len(params.Q)
	k := params.Alpha
	n := rq.N

	arena := getArena()
	defer arena.release()

	// P-part limbs to coefficient form.
	pPart := arena.rows(k, n, false)
	parallel.For(k, func(j int) {
		t := level + 1 + j // position within ext limb list
		copy(pPart[j], acc[t])
		rqp.Tables[nQ+j].Inverse(pPart[j])
	})

	// Convert P-part into Q_level.
	conv, err := ev.modDownConvFor(level)
	if err != nil {
		return nil, err
	}
	corr := arena.rows(level+1, n, false)
	conv.ConvertColumns(corr, pPart)

	out := rq.NewPoly(level + 1)
	out.IsNTT = true
	parallel.For(level+1, func(i int) {
		m := rq.Mod(i)
		rq.Tables[i].Forward(corr[i])
		pInv := params.PInvModQ()[i]
		m.SubMulShoupVec(out.Coeffs[i], acc[i], corr[i], pInv, m.ShoupPrecomp(pInv))
	})
	return out, nil
}

// modUpConvFor returns (building and caching) the digit → complement
// conversion for a digit spanning q-limbs [lo, hi) at the given level.
// Parameter sets are validated at construction, so a basis failure here
// means the parameter set was corrupted after the fact; it is reported as
// an error rather than a crash.
func (ev *Evaluator) modUpConvFor(level, digit, lo, hi int) (*rns.Conv, error) {
	ck := [2]int{level, digit}
	ev.convMu.Lock()
	defer ev.convMu.Unlock()
	if c, ok := ev.modUpConv[ck]; ok {
		return c, nil
	}
	params := ev.params
	srcPrimes := params.Q[lo:hi]
	dstPrimes := make([]uint64, 0, level+1-(hi-lo)+params.Alpha)
	for i := 0; i <= level; i++ {
		if i < lo || i >= hi {
			dstPrimes = append(dstPrimes, params.Q[i])
		}
	}
	dstPrimes = append(dstPrimes, params.P...)
	src, err := rns.NewBasis(srcPrimes)
	if err != nil {
		return nil, fmt.Errorf("ckks: modup digit %d basis at level %d (limbs [%d,%d)): %w", digit, level, lo, hi, err)
	}
	dst, err := rns.NewBasis(dstPrimes)
	if err != nil {
		return nil, fmt.Errorf("ckks: modup complement basis at level %d (digit %d): %w", level, digit, err)
	}
	c := rns.NewConv(src, dst)
	ev.modUpConv[ck] = c
	return c, nil
}

func (ev *Evaluator) modDownConvFor(level int) (*rns.Conv, error) {
	ev.convMu.Lock()
	defer ev.convMu.Unlock()
	if c, ok := ev.modDownConv[level]; ok {
		return c, nil
	}
	params := ev.params
	src, err := rns.NewBasis(params.P)
	if err != nil {
		return nil, fmt.Errorf("ckks: moddown P basis (alpha=%d): %w", params.Alpha, err)
	}
	dst, err := rns.NewBasis(params.Q[:level+1])
	if err != nil {
		return nil, fmt.Errorf("ckks: moddown Q basis at level %d: %w", level, err)
	}
	c := rns.NewConv(src, dst)
	ev.modDownConv[level] = c
	return c, nil
}

func copyLimbs(dst, src *poly.Poly, limbs int) {
	for i := 0; i < limbs; i++ {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
	dst.IsNTT = src.IsNTT
}

func mulSignedScalar(rq *poly.Ring, dst, src *poly.Poly, k int64) {
	for i := 0; i < src.Limbs(); i++ {
		m := rq.Mod(i)
		var km uint64
		if k >= 0 {
			km = m.Reduce(uint64(k))
		} else {
			km = m.Neg(m.Reduce(uint64(-k)))
		}
		ks := m.ShoupPrecomp(km)
		m.MulShoupVec(dst.Coeffs[i], src.Coeffs[i], km, ks)
	}
	dst.IsNTT = src.IsNTT
}

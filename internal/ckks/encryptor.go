package ckks

import (
	"fmt"
	"math/rand"

	"crophe/internal/poly"
)

// Ciphertext is a CKKS ciphertext (b, a) over Q at some level, in NTT form,
// carrying its scale. Degree-2 intermediates after a tensor product carry a
// third polynomial D2 until relinearisation.
type Ciphertext struct {
	B, A  *poly.Poly
	D2    *poly.Poly // non-nil only between tensor product and relinearisation
	Scale float64
	Level int
}

// Degree returns 1 for a regular ciphertext, 2 when relinearisation is
// pending.
func (ct *Ciphertext) Degree() int {
	if ct.D2 != nil {
		return 2
	}
	return 1
}

// CopyCt returns a deep copy.
func (ct *Ciphertext) CopyCt() *Ciphertext {
	out := &Ciphertext{B: ct.B.Copy(), A: ct.A.Copy(), Scale: ct.Scale, Level: ct.Level}
	if ct.D2 != nil {
		out.D2 = ct.D2.Copy()
	}
	return out
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	rng    *rand.Rand
}

// NewEncryptor builds an encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey, rng *rand.Rand) *Encryptor {
	return &Encryptor{params: params, pk: pk, rng: rng}
}

// Encrypt produces (b·u + e0 + m, a·u + e1) at the plaintext's level.
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	rq := e.params.RingQ()
	limbs := pt.Level + 1

	u := rq.TernaryPoly(limbs, e.rng)
	rq.NTT(u)
	e0 := rq.GaussianPoly(limbs, e.params.Sigma, e.rng)
	rq.NTT(e0)
	e1 := rq.GaussianPoly(limbs, e.params.Sigma, e.rng)
	rq.NTT(e1)

	pkB := &poly.Poly{Coeffs: e.pk.B.Coeffs[:limbs], IsNTT: true}
	pkA := &poly.Poly{Coeffs: e.pk.A.Coeffs[:limbs], IsNTT: true}

	b := rq.NewPoly(limbs)
	rq.MulHadamard(b, pkB, u)
	rq.Add(b, b, e0)
	rq.Add(b, b, pt.Value)

	a := rq.NewPoly(limbs)
	rq.MulHadamard(a, pkA, u)
	rq.Add(a, a, e1)

	return &Ciphertext{B: b, A: a, Scale: pt.Scale, Level: pt.Level}
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor builds a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes b + a·s (+ d2·s² for degree-2 ciphertexts) and returns
// it as a plaintext.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := d.params.RingQ()
	limbs := ct.Level + 1
	sQ := restrictToQ(d.params, d.sk.Value, limbs)

	m := rq.NewPoly(limbs)
	rq.MulHadamard(m, ct.A, sQ)
	rq.Add(m, m, ct.B)
	if ct.D2 != nil {
		s2 := rq.NewPoly(limbs)
		rq.MulHadamard(s2, sQ, sQ)
		rq.MulAddHadamard(m, ct.D2, s2)
	}
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}

// EncryptAtLevel is a convenience that encodes and encrypts values at the
// given level.
func EncryptAtLevel(enc *Encoder, encryptor *Encryptor, values []complex128, level int) (*Ciphertext, error) {
	pt, err := enc.Encode(values, level)
	if err != nil {
		return nil, fmt.Errorf("ckks: encode: %w", err)
	}
	return encryptor.Encrypt(pt), nil
}

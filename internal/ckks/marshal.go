package ckks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"crophe/internal/poly"
)

// Binary serialisation for key material and ciphertexts, so a deployment
// can persist keys and ship ciphertexts between parties. The format is a
// little-endian stream with explicit dimensions; parameters travel
// separately (both sides of a protocol share them by agreement).

const marshalMagic = uint32(0xC_0FE_01)

func writePoly(buf *bytes.Buffer, p *poly.Poly) {
	var ntt uint8
	if p.IsNTT {
		ntt = 1
	}
	binary.Write(buf, binary.LittleEndian, ntt)
	binary.Write(buf, binary.LittleEndian, uint32(p.Limbs()))
	binary.Write(buf, binary.LittleEndian, uint32(len(p.Coeffs[0])))
	for _, limb := range p.Coeffs {
		binary.Write(buf, binary.LittleEndian, limb)
	}
}

func readPoly(r *bytes.Reader) (*poly.Poly, error) {
	var ntt uint8
	if err := binary.Read(r, binary.LittleEndian, &ntt); err != nil {
		return nil, fmt.Errorf("ckks: poly header: %w", err)
	}
	if ntt > 1 {
		return nil, fmt.Errorf("ckks: bad NTT flag %d", ntt)
	}
	var limbs, n uint32
	if err := binary.Read(r, binary.LittleEndian, &limbs); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if limbs == 0 || limbs > 1024 || n == 0 || n > (1<<20) {
		return nil, fmt.Errorf("ckks: implausible poly dimensions %d×%d", limbs, n)
	}
	p := &poly.Poly{IsNTT: ntt == 1, Coeffs: make([][]uint64, limbs)}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, p.Coeffs[i]); err != nil {
			return nil, fmt.Errorf("ckks: poly limb %d: %w", i, err)
		}
	}
	return p, nil
}

// MarshalCiphertext serialises a ciphertext (including a pending D2 part).
func MarshalCiphertext(ct *Ciphertext) []byte {
	buf := new(bytes.Buffer)
	binary.Write(buf, binary.LittleEndian, marshalMagic)
	binary.Write(buf, binary.LittleEndian, uint32(ct.Level))
	binary.Write(buf, binary.LittleEndian, math.Float64bits(ct.Scale))
	var deg uint8 = 1
	if ct.D2 != nil {
		deg = 2
	}
	binary.Write(buf, binary.LittleEndian, deg)
	writePoly(buf, ct.B)
	writePoly(buf, ct.A)
	if ct.D2 != nil {
		writePoly(buf, ct.D2)
	}
	return buf.Bytes()
}

// UnmarshalCiphertext reverses MarshalCiphertext.
func UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != marshalMagic {
		return nil, fmt.Errorf("ckks: bad magic %#x", magic)
	}
	var level uint32
	if err := binary.Read(r, binary.LittleEndian, &level); err != nil {
		return nil, err
	}
	var scaleBits uint64
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return nil, err
	}
	var deg uint8
	if err := binary.Read(r, binary.LittleEndian, &deg); err != nil {
		return nil, err
	}
	if deg != 1 && deg != 2 {
		return nil, fmt.Errorf("ckks: bad ciphertext degree %d", deg)
	}
	ct := &Ciphertext{Level: int(level), Scale: math.Float64frombits(scaleBits)}
	var err error
	if ct.B, err = readPoly(r); err != nil {
		return nil, err
	}
	if ct.A, err = readPoly(r); err != nil {
		return nil, err
	}
	if deg == 2 {
		if ct.D2, err = readPoly(r); err != nil {
			return nil, err
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ckks: %d trailing bytes", r.Len())
	}
	return ct, nil
}

// MarshalSecretKey serialises a secret key.
func MarshalSecretKey(sk *SecretKey) []byte {
	buf := new(bytes.Buffer)
	binary.Write(buf, binary.LittleEndian, marshalMagic)
	writePoly(buf, sk.Value)
	return buf.Bytes()
}

// UnmarshalSecretKey reverses MarshalSecretKey.
func UnmarshalSecretKey(data []byte) (*SecretKey, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != marshalMagic {
		return nil, fmt.Errorf("ckks: bad magic %#x", magic)
	}
	v, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	return &SecretKey{Value: v}, nil
}

// MarshalSwitchingKey serialises a switching key (all digit components).
func MarshalSwitchingKey(k *SwitchingKey) []byte {
	buf := new(bytes.Buffer)
	binary.Write(buf, binary.LittleEndian, marshalMagic)
	binary.Write(buf, binary.LittleEndian, uint32(k.Digits()))
	for d := 0; d < k.Digits(); d++ {
		writePoly(buf, k.B[d])
		writePoly(buf, k.A[d])
	}
	return buf.Bytes()
}

// UnmarshalSwitchingKey reverses MarshalSwitchingKey.
func UnmarshalSwitchingKey(data []byte) (*SwitchingKey, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != marshalMagic {
		return nil, fmt.Errorf("ckks: bad magic %#x", magic)
	}
	var digits uint32
	if err := binary.Read(r, binary.LittleEndian, &digits); err != nil {
		return nil, err
	}
	if digits == 0 || digits > 256 {
		return nil, fmt.Errorf("ckks: implausible digit count %d", digits)
	}
	k := &SwitchingKey{B: make([]*poly.Poly, digits), A: make([]*poly.Poly, digits)}
	var err error
	for d := 0; d < int(digits); d++ {
		if k.B[d], err = readPoly(r); err != nil {
			return nil, err
		}
		if k.A[d], err = readPoly(r); err != nil {
			return nil, err
		}
	}
	return k, nil
}

package ckks

import "testing"

func BenchmarkRotateKeySwitch(b *testing.B) {
	tc := newTestContext(b, 11, 6, 2, []int{3})
	v := randomValues(tc.rng, tc.params.Slots())
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel())
	if err != nil {
		b.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Rotate(ct, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotateHoisted(b *testing.B) {
	tc := newTestContext(b, 11, 6, 2, []int{1, 2, 3, 4})
	v := randomValues(tc.rng, tc.params.Slots())
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel())
	if err != nil {
		b.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.RotateHoisted(ct, []int{1, 2, 3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package ckks implements the RNS-CKKS fully homomorphic encryption scheme
// that every CROPHE workload runs on: approximate fixed-point encoding via
// the canonical embedding, encryption, and the homomorphic operator set of
// the paper — HAdd, HMult (with digit-decomposed key-switching), CAdd,
// CMult, PAdd, PMult, HRot (automorphism + key-switching) and HRescale.
//
// The implementation favours clarity and testability over raw speed (the
// performance questions of the paper are answered by the cycle simulator,
// not by this functional substrate), but all algorithms are the real RNS
// algorithms: the same Decomp → ModUp → KSKInP → ModDown pipeline whose
// dataflow the scheduler optimises.
package ckks

import (
	"fmt"
	"math/rand"

	"crophe/internal/modmath"
	"crophe/internal/poly"
	"crophe/internal/rns"
)

// Parameters fixes a CKKS instance: ring degree, moduli chain, special
// primes, digit decomposition shape and encoding scale.
type Parameters struct {
	LogN  int      // ring degree N = 2^LogN
	Q     []uint64 // ciphertext moduli q_0..q_L (level L = len(Q)-1)
	P     []uint64 // special moduli p_0..p_{k-1}, k = Alpha
	Alpha int      // limbs per key-switching digit
	Scale float64  // encoding scale Δ
	Sigma float64  // error standard deviation

	ringQ  *poly.Ring // ring over Q
	ringQP *poly.Ring // ring over Q ∪ P
	pModQ  []uint64   // P mod q_i for each i
	pInvQ  []uint64   // P^{-1} mod q_i
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << p.LogN }

// Slots returns the number of plaintext slots N/2.
func (p *Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns L.
func (p *Parameters) MaxLevel() int { return len(p.Q) - 1 }

// DNum returns the maximum digit count ceil((L+1)/α).
func (p *Parameters) DNum() int {
	return (len(p.Q) + p.Alpha - 1) / p.Alpha
}

// RingQ returns the ciphertext-modulus ring.
func (p *Parameters) RingQ() *poly.Ring { return p.ringQ }

// RingQP returns the extended ring over Q ∪ P used during key-switching.
func (p *Parameters) RingQP() *poly.Ring { return p.ringQP }

// PModQ returns P mod q_i.
func (p *Parameters) PModQ() []uint64 { return p.pModQ }

// PInvModQ returns P^{-1} mod q_i.
func (p *Parameters) PInvModQ() []uint64 { return p.pInvQ }

// NewParameters validates and precomputes a parameter set.
func NewParameters(logN int, q, pSpecial []uint64, alpha int, scale, sigma float64) (*Parameters, error) {
	if logN < 3 || logN > 18 {
		return nil, fmt.Errorf("ckks: logN %d out of range [3,18]", logN)
	}
	if len(q) == 0 {
		return nil, fmt.Errorf("ckks: empty modulus chain")
	}
	if alpha < 1 || alpha > len(q) {
		return nil, fmt.Errorf("ckks: alpha %d out of range [1,%d]", alpha, len(q))
	}
	if len(pSpecial) != alpha {
		return nil, fmt.Errorf("ckks: need %d special primes (= alpha), got %d", alpha, len(pSpecial))
	}
	if scale < 2 {
		return nil, fmt.Errorf("ckks: scale %f too small", scale)
	}
	n := 1 << logN
	params := &Parameters{
		LogN: logN, Q: append([]uint64(nil), q...), P: append([]uint64(nil), pSpecial...),
		Alpha: alpha, Scale: scale, Sigma: sigma,
	}
	var err error
	params.ringQ, err = poly.NewRing(n, params.Q)
	if err != nil {
		return nil, fmt.Errorf("ckks: ring Q: %w", err)
	}
	all := append(append([]uint64(nil), params.Q...), params.P...)
	params.ringQP, err = poly.NewRing(n, all)
	if err != nil {
		return nil, fmt.Errorf("ckks: ring QP: %w", err)
	}
	params.pModQ = make([]uint64, len(q))
	params.pInvQ = make([]uint64, len(q))
	for i := range q {
		m := modmath.MustModulus(q[i])
		acc := uint64(1)
		for _, pj := range pSpecial {
			acc = m.Mul(acc, m.Reduce(pj))
		}
		params.pModQ[i] = acc
		params.pInvQ[i] = m.Inv(acc)
	}
	return params, nil
}

// TestParameters builds a small but fully functional parameter set for
// unit tests: logN, level count L (so L+1 ciphertext moduli), alpha.
// The rescaling primes sit just below the scale Δ = 2^40 so that scales
// stay aligned across levels (standard CKKS practice); q_0 is wider to
// carry the integer part, and the special primes are wider still so P
// dominates every digit.
func TestParameters(logN, levels, alpha int) (*Parameters, error) {
	n := uint64(1) << logN
	q0, err := modmath.GeneratePrimes(45, n, 1)
	if err != nil {
		return nil, err
	}
	qs := q0
	if levels > 0 {
		rescale, err := modmath.GeneratePrimes(40, n, levels)
		if err != nil {
			return nil, err
		}
		qs = append(qs, rescale...)
	}
	ps, err := modmath.GeneratePrimes(46, n, alpha)
	if err != nil {
		return nil, err
	}
	return NewParameters(logN, qs, ps, alpha, float64(1<<40), 3.2)
}

// QAtLevel returns the sub-basis q_0..q_level.
func (p *Parameters) QAtLevel(level int) *rns.Basis {
	return p.ringQ.Basis.Sub(0, level+1)
}

// NewTestRand returns a deterministic RNG for reproducible key material in
// tests and examples.
func NewTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

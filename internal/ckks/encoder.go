package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"crophe/internal/modmath"
	"crophe/internal/poly"
)

// Plaintext is an encoded message: an RNS polynomial carrying its scale.
type Plaintext struct {
	Value *poly.Poly
	Scale float64
	Level int
}

// Encoder maps complex slot vectors to ring elements through the canonical
// embedding: slot j corresponds to evaluation at ζ^{5^j} with ζ = e^{iπ/N},
// and the conjugate points carry the conjugate values so coefficients stay
// real. The implementation uses the direct O(N²) embedding — this substrate
// is a correctness reference; throughput lives in the simulator.
type Encoder struct {
	params *Parameters
	// zetaPow[t] = ζ^t for t in [0, 2N).
	zetaPow []complex128
	// rotGroup[j] = 5^j mod 2N for j in [0, N/2).
	rotGroup []uint64
}

// NewEncoder precomputes the embedding tables.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	e := &Encoder{params: params}
	e.zetaPow = make([]complex128, 2*n)
	for t := 0; t < 2*n; t++ {
		angle := math.Pi * float64(t) / float64(n)
		e.zetaPow[t] = cmplx.Exp(complex(0, angle))
	}
	e.rotGroup = make([]uint64, n/2)
	g := uint64(1)
	for j := 0; j < n/2; j++ {
		e.rotGroup[j] = g
		g = g * 5 % uint64(2*n)
	}
	return e
}

// Encode embeds values (len ≤ N/2; shorter vectors are zero-padded) into a
// fresh plaintext at the given level with the parameter scale.
func (e *Encoder) Encode(values []complex128, level int) (*Plaintext, error) {
	return e.EncodeAtScale(values, level, e.params.Scale)
}

// EncodeAtScale is Encode with an explicit scale.
func (e *Encoder) EncodeAtScale(values []complex128, level int, scale float64) (*Plaintext, error) {
	n := e.params.N()
	slots := n / 2
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range", level)
	}
	z := make([]complex128, slots)
	copy(z, values)

	// a_k = (2/N)·Σ_j Re(z_j · ζ^{-k·5^j}), scaled by Δ and rounded.
	coeffs := make([]int64, n)
	twoN := uint64(2 * n)
	for k := 0; k < n; k++ {
		var acc float64
		for j := 0; j < slots; j++ {
			t := (uint64(k) * e.rotGroup[j]) % twoN
			// ζ^{-k·5^j} = conj(ζ^{k·5^j})
			w := cmplx.Conj(e.zetaPow[t])
			acc += real(z[j])*real(w) - imag(z[j])*imag(w)
		}
		v := acc * 2 / float64(n) * scale
		if math.Abs(v) > math.Ldexp(1, 62) {
			return nil, fmt.Errorf("ckks: encoded coefficient overflows (|v| = %g)", math.Abs(v))
		}
		coeffs[k] = int64(math.Round(v))
	}

	pt := &Plaintext{Scale: scale, Level: level}
	pt.Value = e.params.RingQ().NewPoly(level + 1)
	e.params.RingQ().SetInt64Coeffs(pt.Value, coeffs)
	e.params.RingQ().NTT(pt.Value)
	return pt, nil
}

// Decode recovers the slot values of a plaintext.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	n := e.params.N()
	slots := n / 2
	ring := e.params.RingQ()

	p := pt.Value.Copy()
	ring.INTT(p)

	// Reconstruct centered coefficients. For multi-limb plaintexts use
	// CRT; the common case after computation keeps values within the
	// first limb only when |coeff| << q_0, but in general we must CRT.
	basis := e.params.QAtLevel(pt.Level)
	coeffs := make([]float64, n)
	if p.Limbs() == 1 {
		q := ring.Mod(0).Q
		for j := 0; j < n; j++ {
			coeffs[j] = float64(modmath.CenteredLift(p.Coeffs[0][j], q))
		}
	} else {
		residues := make([]uint64, p.Limbs())
		for j := 0; j < n; j++ {
			for i := 0; i < p.Limbs(); i++ {
				residues[i] = p.Coeffs[i][j]
			}
			c := basis.ReconstructCentered(residues)
			f, _ := new(big.Float).SetInt(c).Float64()
			coeffs[j] = f
		}
	}

	// z_j = a(ζ^{5^j}) / Δ
	out := make([]complex128, slots)
	twoN := uint64(2 * n)
	for j := 0; j < slots; j++ {
		var zr, zi float64
		for k := 0; k < n; k++ {
			t := (uint64(k) * e.rotGroup[j]) % twoN
			w := e.zetaPow[t]
			zr += coeffs[k] * real(w)
			zi += coeffs[k] * imag(w)
		}
		out[j] = complex(zr/pt.Scale, zi/pt.Scale)
	}
	return out
}

// EncodeConstant builds a plaintext with every slot equal to c — the
// operand shape of CAdd/CMult.
func (e *Encoder) EncodeConstant(c complex128, level int) (*Plaintext, error) {
	slots := e.params.Slots()
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = c
	}
	return e.Encode(vals, level)
}

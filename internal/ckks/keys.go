package ckks

import (
	"fmt"
	"math/rand"

	"crophe/internal/poly"
)

// SecretKey is a ternary secret s represented over the full Q∪P basis in
// NTT form.
type SecretKey struct {
	Value *poly.Poly // over ringQP, NTT form
}

// PublicKey is an encryption of zero: (b, a) = (−a·s + e, a) over Q.
type PublicKey struct {
	B, A *poly.Poly // over ringQ, NTT form
}

// SwitchingKey re-encrypts a polynomial from key sIn to the canonical
// secret s. It holds dnum digit components, each a pair over Q∪P in NTT
// form — the 2 × dnum × (α+L+1) × N tensor of the paper.
type SwitchingKey struct {
	B, A []*poly.Poly // [digit] over ringQP, NTT form
}

// Digits returns the number of digit components.
func (k *SwitchingKey) Digits() int { return len(k.B) }

// EvaluationKeySet bundles the relinearisation key and per-rotation keys.
type EvaluationKeySet struct {
	Relin    *SwitchingKey
	Rot      map[int]*SwitchingKey // keyed by rotation amount
	Conj     *SwitchingKey
	galoisOf map[int]uint64
}

// RotKey returns the switching key for rotation r, or an error if it was
// not generated.
func (s *EvaluationKeySet) RotKey(r int) (*SwitchingKey, error) {
	k, ok := s.Rot[r]
	if !ok {
		return nil, fmt.Errorf("ckks: no rotation key for amount %d", r)
	}
	return k, nil
}

// KeyGenerator creates key material under a parameter set.
type KeyGenerator struct {
	params *Parameters
	rng    *rand.Rand
}

// NewKeyGenerator builds a generator with the given randomness source.
func NewKeyGenerator(params *Parameters, rng *rand.Rand) *KeyGenerator {
	return &KeyGenerator{params: params, rng: rng}
}

// GenSecretKey samples a ternary secret.
func (g *KeyGenerator) GenSecretKey() *SecretKey {
	rqp := g.params.RingQP()
	s := rqp.TernaryPoly(rqp.K(), g.rng)
	rqp.NTT(s)
	return &SecretKey{Value: s}
}

// GenSecretKeySparse samples a sparse ternary secret with Hamming weight h,
// required by bootstrapping so that the ModRaise overflow polynomial stays
// within the EvalMod approximation range.
func (g *KeyGenerator) GenSecretKeySparse(h int) *SecretKey {
	rqp := g.params.RingQP()
	s := rqp.SparseTernaryPoly(rqp.K(), h, g.rng)
	rqp.NTT(s)
	return &SecretKey{Value: s}
}

// GenPublicKey builds (−a·s + e, a) over Q.
func (g *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	rq := g.params.RingQ()
	limbs := rq.K()
	a := rq.UniformPoly(limbs, g.rng)
	a.IsNTT = true // uniform in NTT domain is uniform
	e := rq.GaussianPoly(limbs, g.params.Sigma, g.rng)
	rq.NTT(e)

	sQ := restrictToQ(g.params, sk.Value, limbs)
	b := rq.NewPoly(limbs)
	rq.MulHadamard(b, a, sQ)
	rq.Neg(b, b)
	rq.Add(b, b, e)
	return &PublicKey{B: b, A: a}
}

// GenRelinKey produces the switching key for s² → s (the HMult evk).
func (g *KeyGenerator) GenRelinKey(sk *SecretKey) *SwitchingKey {
	rqp := g.params.RingQP()
	s2 := rqp.NewPoly(rqp.K())
	rqp.MulHadamard(s2, sk.Value, sk.Value)
	return g.genSwitchingKey(sk, s2)
}

// GenRotationKey produces the switching key for σ_g(s) → s where g rotates
// slots by r.
func (g *KeyGenerator) GenRotationKey(sk *SecretKey, r int) *SwitchingKey {
	return g.genAutomorphismKey(sk, g.params.RingQ().GaloisElement(r))
}

// GenConjugationKey produces the key for the conjugation automorphism.
func (g *KeyGenerator) GenConjugationKey(sk *SecretKey) *SwitchingKey {
	return g.genAutomorphismKey(sk, g.params.RingQ().GaloisElementConjugate())
}

func (g *KeyGenerator) genAutomorphismKey(sk *SecretKey, galois uint64) *SwitchingKey {
	rqp := g.params.RingQP()
	sCoeff := sk.Value.Copy()
	rqp.INTT(sCoeff)
	sAuto := rqp.NewPoly(rqp.K())
	rqp.Automorphism(sAuto, sCoeff, galois)
	rqp.NTT(sAuto)
	return g.genSwitchingKey(sk, sAuto)
}

// GenEvaluationKeySet generates the relinearisation key, rotation keys for
// the listed amounts, and the conjugation key.
func (g *KeyGenerator) GenEvaluationKeySet(sk *SecretKey, rotations []int) *EvaluationKeySet {
	set := &EvaluationKeySet{
		Relin:    g.GenRelinKey(sk),
		Rot:      make(map[int]*SwitchingKey, len(rotations)),
		Conj:     g.GenConjugationKey(sk),
		galoisOf: make(map[int]uint64, len(rotations)),
	}
	for _, r := range rotations {
		if _, dup := set.Rot[r]; dup {
			continue
		}
		set.Rot[r] = g.GenRotationKey(sk, r)
		set.galoisOf[r] = g.params.RingQ().GaloisElement(r)
	}
	return set
}

// genSwitchingKey encrypts P·q̃_d·sIn under s for every digit d, where
// q̃_d ≡ 1 (mod q_i) for limbs i in digit d and ≡ 0 (mod q_i) elsewhere,
// and P·q̃_d ≡ 0 (mod p_j). In RNS this constant is simply "P mod q_i on
// the digit's limbs, zero everywhere else".
func (g *KeyGenerator) genSwitchingKey(sk *SecretKey, sIn *poly.Poly) *SwitchingKey {
	params := g.params
	rqp := params.RingQP()
	nQ := len(params.Q)
	dnum := params.DNum()
	key := &SwitchingKey{
		B: make([]*poly.Poly, dnum),
		A: make([]*poly.Poly, dnum),
	}
	for d := 0; d < dnum; d++ {
		a := rqp.UniformPoly(rqp.K(), g.rng)
		a.IsNTT = true
		e := rqp.GaussianPoly(rqp.K(), params.Sigma, g.rng)
		rqp.NTT(e)

		b := rqp.NewPoly(rqp.K())
		rqp.MulHadamard(b, a, sk.Value)
		rqp.Neg(b, b)
		rqp.Add(b, b, e)

		// Add P·q̃_d·sIn limb-wise.
		lo := d * params.Alpha
		hi := lo + params.Alpha
		if hi > nQ {
			hi = nQ
		}
		for i := lo; i < hi; i++ {
			m := rqp.Mod(i)
			pModQi := params.PModQ()[i]
			bi, si := b.Coeffs[i], sIn.Coeffs[i]
			for j := range bi {
				bi[j] = m.Add(bi[j], m.Mul(pModQi, si[j]))
			}
		}
		key.B[d], key.A[d] = b, a
	}
	return key
}

// restrictToQ views the first limbs limbs of a Q∪P polynomial as a ringQ
// polynomial (sharing storage).
func restrictToQ(params *Parameters, p *poly.Poly, limbs int) *poly.Poly {
	if limbs > len(params.Q) {
		panic(fmt.Sprintf("ckks: restrictToQ: %d limbs exceeds the %d Q limbs", limbs, len(params.Q)))
	}
	return &poly.Poly{Coeffs: p.Coeffs[:limbs], IsNTT: p.IsNTT}
}

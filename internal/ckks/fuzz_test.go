package ckks

import (
	"bytes"
	"testing"

	"crophe/internal/poly"
)

// fuzzPoly builds a small deterministic polynomial for seed corpora.
func fuzzPoly(limbs, n int, ntt bool, salt uint64) *poly.Poly {
	p := &poly.Poly{IsNTT: ntt, Coeffs: make([][]uint64, limbs)}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, n)
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = salt + uint64(i*n+j)
		}
	}
	return p
}

// FuzzMarshalRoundTrip feeds arbitrary bytes to UnmarshalCiphertext —
// which must reject garbage with an error, never panic — and checks that
// anything it accepts survives a marshal/unmarshal round trip bit-exactly.
func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xFE, 0xC0, 0x00})
	ct := &Ciphertext{
		B: fuzzPoly(2, 8, true, 3), A: fuzzPoly(2, 8, true, 7),
		Scale: float64(1 << 40), Level: 1,
	}
	f.Add(MarshalCiphertext(ct))
	ct.D2 = fuzzPoly(2, 8, true, 11)
	f.Add(MarshalCiphertext(ct))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := UnmarshalCiphertext(data)
		if err != nil {
			return // rejected cleanly
		}
		re := MarshalCiphertext(parsed)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-marshal differs: %d bytes in, %d bytes out", len(data), len(re))
		}
		again, err := UnmarshalCiphertext(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.Level != parsed.Level || again.Scale != parsed.Scale {
			t.Fatalf("round-trip header drift: level %d→%d scale %v→%v",
				parsed.Level, again.Level, parsed.Scale, again.Scale)
		}
		if !again.B.Equal(parsed.B) || !again.A.Equal(parsed.A) {
			t.Fatal("round-trip poly drift")
		}
	})
}

package ckks

import (
	"fmt"
	"sync"
	"testing"
)

// TestEvaluatorConcurrentUse drives one shared Evaluator from many
// goroutines at once. The rotate path exercises the lazily built
// ModUp/ModDown conversion caches (guarded by convMu), so running this
// under -race validates the documented concurrency contract.
func TestEvaluatorConcurrentUse(t *testing.T) {
	tc := newTestContext(t, 6, 3, 2, []int{1, 2, 3, 4})
	slots := tc.params.Slots()
	const workers = 8

	// Encrypt the inputs serially: the Encryptor shares one rng and makes
	// no concurrency promise; only the Evaluator does.
	type job struct {
		ct   *Ciphertext
		vals []complex128
		rot  int
	}
	jobs := make([]job, workers)
	for i := range jobs {
		vals := randomValues(tc.rng, slots)
		ct, err := EncryptAtLevel(tc.enc, tc.encr, vals, tc.params.MaxLevel())
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{ct: ct, vals: vals, rot: 1 + i%4}
	}

	outs := make([]*Ciphertext, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sq, err := tc.eval.MulRelin(jobs[i].ct, jobs[i].ct)
			if err == nil {
				sq, err = tc.eval.Rescale(sq)
			}
			if err == nil {
				sq, err = tc.eval.Rotate(sq, jobs[i].rot)
			}
			outs[i], errs[i] = sq, err
		}(i)
	}
	wg.Wait()

	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		want := make([]complex128, slots)
		for k := range want {
			src := ((k+j.rot)%slots + slots) % slots
			want[k] = j.vals[src] * j.vals[src]
		}
		got := tc.enc.Decode(tc.decr.Decrypt(outs[i]))
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("worker %d (rot %d): error %g", i, j.rot, e)
		}
	}
}

// TestEvaluatorConcurrentHoisting hammers RotateHoisted — whose shared
// ModUp hits the same conversion cache — from several goroutines.
func TestEvaluatorConcurrentHoisting(t *testing.T) {
	rots := []int{1, 2, 3}
	tc := newTestContext(t, 6, 2, 2, rots)
	slots := tc.params.Slots()
	vals := randomValues(tc.rng, slots)
	ct, err := EncryptAtLevel(tc.enc, tc.encr, vals, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	results := make([]map[int]*Ciphertext, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tc.eval.RotateHoisted(ct, rots)
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for _, r := range rots {
			want := make([]complex128, slots)
			for k := range want {
				want[k] = vals[(k+r)%slots]
			}
			got := tc.enc.Decode(tc.decr.Decrypt(results[i][r]))
			if e := maxErr(got, want); e > 1e-3 {
				t.Fatalf("worker %d rot %d: error %g", i, r, e)
			}
		}
	}
}

// TestMarshalConcurrent round-trips distinct ciphertexts in parallel;
// marshalling must not share hidden state.
func TestMarshalConcurrent(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ct := &Ciphertext{
				B: fuzzPoly(2, 1<<5, true, uint64(i)), A: fuzzPoly(2, 1<<5, true, uint64(i)+100),
				Scale: float64(1 << 40), Level: 1,
			}
			rt, err := UnmarshalCiphertext(MarshalCiphertext(ct))
			if err != nil {
				errs[i] = err
				return
			}
			if !rt.B.Equal(ct.B) || !rt.A.Equal(ct.A) {
				errs[i] = fmt.Errorf("round-trip drift for worker %d", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

package ckks

import (
	"testing"

	"crophe/internal/parallel"
)

// ctEqual compares two ciphertexts limb-for-limb.
func ctEqual(a, b *Ciphertext) bool {
	return a.Level == b.Level && a.Scale == b.Scale &&
		a.B.Equal(b.B) && a.A.Equal(b.A)
}

// TestKeySwitchParallelBitExact runs the full key-switch pipeline (via
// Rotate and MulRelin) at pool size 1 and at a large pool: the
// digit-parallel path with per-digit partial accumulators must reproduce
// the serial accumulation bit-for-bit (modular arithmetic is exact, so
// any divergence is a bug, not rounding).
func TestKeySwitchParallelBitExact(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)

	run := func(workers int) (rot, mul *Ciphertext) {
		parallel.SetWorkers(workers)
		tc := newTestContext(t, 9, 5, 2, []int{3})
		v := randomValues(tc.rng, tc.params.Slots())
		pt, err := tc.enc.Encode(v, tc.params.MaxLevel())
		if err != nil {
			t.Fatal(err)
		}
		ct := tc.encr.Encrypt(pt)
		rot, err = tc.eval.Rotate(ct, 3)
		if err != nil {
			t.Fatal(err)
		}
		mul, err = tc.eval.MulRelin(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		return rot, mul
	}

	serialRot, serialMul := run(1)
	parRot, parMul := run(13)

	if !ctEqual(serialRot, parRot) {
		t.Error("Rotate: parallel key-switch differs from serial")
	}
	if !ctEqual(serialMul, parMul) {
		t.Error("MulRelin: parallel key-switch differs from serial")
	}
}

// TestRotateHoistedParallelBitExact runs a full hoisted multi-rotation at
// pool size 1 vs N and requires identical ciphertexts for every rotation
// amount, including the pass-through rotation 0.
func TestRotateHoistedParallelBitExact(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)

	rotations := []int{0, 1, 2, 5}
	run := func(workers int) map[int]*Ciphertext {
		parallel.SetWorkers(workers)
		tc := newTestContext(t, 9, 5, 2, rotations[1:])
		v := randomValues(tc.rng, tc.params.Slots())
		pt, err := tc.enc.Encode(v, tc.params.MaxLevel())
		if err != nil {
			t.Fatal(err)
		}
		ct := tc.encr.Encrypt(pt)
		out, err := tc.eval.RotateHoisted(ct, rotations)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	serial := run(1)
	par := run(13)
	if len(serial) != len(par) {
		t.Fatalf("result count %d vs %d", len(par), len(serial))
	}
	for r, want := range serial {
		got, ok := par[r]
		if !ok {
			t.Fatalf("rotation %d missing from parallel result", r)
		}
		if !ctEqual(want, got) {
			t.Errorf("rotation %d: parallel result differs from serial", r)
		}
	}
}

// TestEvaluatorSharedAcrossGoroutines exercises concurrent key-switching
// on one Evaluator while the kernels themselves run on the pool — the
// nesting the bounded pool must keep deadlock- and race-free.
func TestEvaluatorSharedAcrossGoroutines(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	parallel.SetWorkers(4)

	tc := newTestContext(t, 9, 5, 2, []int{1, 2})
	v := randomValues(tc.rng, tc.params.Slots())
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)

	ref, err := tc.eval.Rotate(ct, 1)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	results := make([]*Ciphertext, goroutines)
	errs := make([]error, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			results[g], errs[g] = tc.eval.Rotate(ct, 1)
			done <- g
		}(g)
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !ctEqual(ref, results[g]) {
			t.Errorf("goroutine %d: concurrent rotate differs", g)
		}
	}
}

package poly

import (
	"math/rand"
	"testing"

	"crophe/internal/modmath"
	"crophe/internal/parallel"
)

// withWorkers runs fn under a temporary pool size.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := parallel.Workers()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	fn()
}

func equivRing(t *testing.T, n, limbs int) *Ring {
	t.Helper()
	primes, err := modmath.GeneratePrimes(40, uint64(n), limbs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestParallelKernelsBitExact asserts that every limb-parallel kernel
// produces bit-identical results at pool size 1 (serial fallback) and at a
// pool larger than the limb count.
func TestParallelKernelsBitExact(t *testing.T) {
	const n, limbs = 128, 6
	type result struct {
		add, sub, neg, mul, mulAdd, scalar, scalarRNS, auto, ntt *Poly
	}
	run := func(workers int) result {
		var res result
		withWorkers(t, workers, func() {
			r := equivRing(t, n, limbs)
			rng := rand.New(rand.NewSource(7))
			a := r.UniformPoly(limbs, rng)
			b := r.UniformPoly(limbs, rng)
			sRNS := make([]uint64, limbs)
			for i := range sRNS {
				sRNS[i] = rng.Uint64()
			}

			res.add = r.NewPoly(limbs)
			r.Add(res.add, a, b)
			res.sub = r.NewPoly(limbs)
			r.Sub(res.sub, a, b)
			res.neg = r.NewPoly(limbs)
			r.Neg(res.neg, a)
			res.scalar = r.NewPoly(limbs)
			r.MulScalar(res.scalar, a, 0x1234567)
			res.scalarRNS = r.NewPoly(limbs)
			r.MulScalarRNS(res.scalarRNS, a, sRNS)
			res.auto = r.NewPoly(limbs)
			r.Automorphism(res.auto, a, 5)

			an, bn := a.Copy(), b.Copy()
			r.NTT(an)
			r.NTT(bn)
			res.ntt = an.Copy()
			res.mul = r.NewPoly(limbs)
			r.MulHadamard(res.mul, an, bn)
			res.mulAdd = res.mul.Copy()
			r.MulAddHadamard(res.mulAdd, an, bn)
		})
		return res
	}

	serial := run(1)
	par := run(2 * limbs)

	for _, c := range []struct {
		name string
		s, p *Poly
	}{
		{"Add", serial.add, par.add},
		{"Sub", serial.sub, par.sub},
		{"Neg", serial.neg, par.neg},
		{"MulHadamard", serial.mul, par.mul},
		{"MulAddHadamard", serial.mulAdd, par.mulAdd},
		{"MulScalar", serial.scalar, par.scalar},
		{"MulScalarRNS", serial.scalarRNS, par.scalarRNS},
		{"Automorphism", serial.auto, par.auto},
		{"NTT", serial.ntt, par.ntt},
	} {
		if !c.s.Equal(c.p) {
			t.Errorf("%s: parallel result differs from serial", c.name)
		}
	}
}

// TestParallelNTTRoundTrip asserts forward/inverse NTT round-trips are
// exact under a parallel pool.
func TestParallelNTTRoundTrip(t *testing.T) {
	withWorkers(t, 8, func() {
		r := equivRing(t, 256, 5)
		rng := rand.New(rand.NewSource(11))
		a := r.UniformPoly(5, rng)
		want := a.Copy()
		r.NTT(a)
		r.INTT(a)
		if !a.Equal(want) {
			t.Error("NTT round-trip not exact under parallel pool")
		}
	})
}

// TestParallelNewRingMatchesSerial asserts parallel table construction
// yields the same twiddles (spot-checked through a transform) as serial.
func TestParallelNewRingMatchesSerial(t *testing.T) {
	const n, limbs = 64, 4
	primes, err := modmath.GeneratePrimes(40, uint64(n), limbs)
	if err != nil {
		t.Fatal(err)
	}
	var serial, par *Ring
	withWorkers(t, 1, func() {
		r, err := NewRing(n, primes)
		if err != nil {
			t.Fatal(err)
		}
		serial = r
	})
	withWorkers(t, 8, func() {
		r, err := NewRing(n, primes)
		if err != nil {
			t.Fatal(err)
		}
		par = r
	})
	rng := rand.New(rand.NewSource(3))
	a := serial.UniformPoly(limbs, rng)
	b := a.Copy()
	serial.NTT(a)
	par.NTT(b)
	if !a.Equal(b) {
		t.Error("rings built serially and in parallel disagree")
	}
}

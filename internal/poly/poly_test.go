package poly

import (
	"math/rand"
	"sync"
	"testing"

	"crophe/internal/modmath"
)

func testRing(t testing.TB, n, limbs int) *Ring {
	t.Helper()
	ps, err := modmath.GeneratePrimes(45, uint64(n), limbs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, ps)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingErrors(t *testing.T) {
	// 97 does not support n=64 negacyclic NTT.
	if _, err := NewRing(64, []uint64{97}); err == nil {
		t.Error("expected error for non-NTT-friendly prime")
	}
	if _, err := NewRing(64, nil); err == nil {
		t.Error("expected error for empty basis")
	}
}

func TestNewPolyBounds(t *testing.T) {
	r := testRing(t, 32, 3)
	for _, bad := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPoly(%d) should panic", bad)
				}
			}()
			r.NewPoly(bad)
		}()
	}
	p := r.NewPoly(2)
	if p.Limbs() != 2 || p.Level() != 1 {
		t.Fatalf("limbs=%d level=%d", p.Limbs(), p.Level())
	}
}

func TestAddSubNegRoundTrip(t *testing.T) {
	r := testRing(t, 64, 3)
	rng := rand.New(rand.NewSource(1))
	a := r.UniformPoly(3, rng)
	b := r.UniformPoly(3, rng)
	sum := r.NewPoly(3)
	r.Add(sum, a, b)
	back := r.NewPoly(3)
	r.Sub(back, sum, b)
	if !back.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	neg := r.NewPoly(3)
	r.Neg(neg, a)
	r.Add(neg, neg, a)
	zero := r.NewPoly(3)
	if !neg.Equal(zero) {
		t.Fatal("a + (-a) != 0")
	}
}

func TestNTTRoundTripAndMulMatchesConvolution(t *testing.T) {
	r := testRing(t, 32, 2)
	rng := rand.New(rand.NewSource(2))
	a := r.UniformPoly(2, rng)
	b := r.UniformPoly(2, rng)
	orig := a.Copy()

	r.NTT(a)
	if !a.IsNTT {
		t.Fatal("IsNTT not set")
	}
	r.INTT(a)
	if !a.Equal(orig) {
		t.Fatal("NTT/INTT roundtrip failed")
	}

	// Hadamard in NTT form == negacyclic convolution in coeff form.
	an, bn := a.Copy(), b.Copy()
	r.NTT(an)
	r.NTT(bn)
	prod := r.NewPoly(2)
	r.MulHadamard(prod, an, bn)
	r.INTT(prod)
	for i := 0; i < 2; i++ {
		want := make([]uint64, r.N)
		r.Tables[i].MulPoly(want, a.Coeffs[i], b.Coeffs[i])
		for j := range want {
			if prod.Coeffs[i][j] != want[j] {
				t.Fatalf("limb %d coeff %d mismatch", i, j)
			}
		}
	}
}

func TestMulHadamardRequiresNTT(t *testing.T) {
	r := testRing(t, 32, 1)
	a := r.NewPoly(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for coefficient-form Hadamard")
		}
	}()
	r.MulHadamard(a, a, a)
}

func TestMulAddHadamard(t *testing.T) {
	r := testRing(t, 32, 2)
	rng := rand.New(rand.NewSource(3))
	a := r.UniformPoly(2, rng)
	b := r.UniformPoly(2, rng)
	r.NTT(a)
	r.NTT(b)
	acc := r.NewPoly(2)
	acc.IsNTT = true
	r.MulAddHadamard(acc, a, b)
	r.MulAddHadamard(acc, a, b)
	want := r.NewPoly(2)
	r.MulHadamard(want, a, b)
	r.Add(want, want, want)
	if !acc.Equal(want) {
		t.Fatal("acc += a⊙b twice != 2(a⊙b)")
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t, 32, 2)
	rng := rand.New(rand.NewSource(4))
	a := r.UniformPoly(2, rng)
	dst := r.NewPoly(2)
	r.MulScalar(dst, a, 3)
	want := r.NewPoly(2)
	r.Add(want, a, a)
	r.Add(want, want, a)
	if !dst.Equal(want) {
		t.Fatal("3·a != a+a+a")
	}
}

func TestMulScalarRNS(t *testing.T) {
	r := testRing(t, 32, 3)
	rng := rand.New(rand.NewSource(5))
	a := r.UniformPoly(3, rng)
	s := []uint64{2, 3, 4}
	dst := r.NewPoly(3)
	r.MulScalarRNS(dst, a, s)
	for i := 0; i < 3; i++ {
		m := r.Mod(i)
		for j := 0; j < r.N; j++ {
			if dst.Coeffs[i][j] != m.Mul(a.Coeffs[i][j], s[i]) {
				t.Fatalf("limb %d coeff %d mismatch", i, j)
			}
		}
	}
}

func TestAutomorphismComposition(t *testing.T) {
	// σ_g1 ∘ σ_g2 = σ_{g1·g2 mod 2N}
	r := testRing(t, 64, 2)
	rng := rand.New(rand.NewSource(6))
	a := r.UniformPoly(2, rng)
	g1, g2 := uint64(5), uint64(25)
	t1 := r.NewPoly(2)
	t2 := r.NewPoly(2)
	r.Automorphism(t1, a, g2)
	r.Automorphism(t2, t1, g1)
	direct := r.NewPoly(2)
	r.Automorphism(direct, a, g1*g2%(2*64))
	if !t2.Equal(direct) {
		t.Fatal("automorphism composition law fails")
	}
}

func TestAutomorphismIdentityAndInverse(t *testing.T) {
	r := testRing(t, 64, 1)
	rng := rand.New(rand.NewSource(7))
	a := r.UniformPoly(1, rng)
	id := r.NewPoly(1)
	r.Automorphism(id, a, 1)
	if !id.Equal(a) {
		t.Fatal("σ_1 is not identity")
	}
	// g = 5, inverse exponent g' with g·g' ≡ 1 mod 2N.
	twoN := uint64(128)
	g := uint64(5)
	var gInv uint64
	for cand := uint64(1); cand < twoN; cand += 2 {
		if g*cand%twoN == 1 {
			gInv = cand
			break
		}
	}
	fwd := r.NewPoly(1)
	back := r.NewPoly(1)
	r.Automorphism(fwd, a, g)
	r.Automorphism(back, fwd, gInv)
	if !back.Equal(a) {
		t.Fatal("σ_g ∘ σ_g⁻¹ is not identity")
	}
}

func TestAutomorphismOnMonomial(t *testing.T) {
	// a = X: σ_g(X) = X^g, with negacyclic wrap for g ≥ N.
	r := testRing(t, 16, 1)
	a := r.NewPoly(1)
	a.Coeffs[0][1] = 1
	out := r.NewPoly(1)
	r.Automorphism(out, a, 5)
	if out.Coeffs[0][5] != 1 {
		t.Fatal("X -> X^5 failed")
	}
	// g = 17: X^17 = X^(16+1) = -X.
	r.Automorphism(out, a, 17)
	if out.Coeffs[0][1] != r.Mod(0).Q-1 {
		t.Fatalf("X -> X^17 expected -X, got coeff %d", out.Coeffs[0][1])
	}
}

func TestAutomorphismRejectsEvenExponent(t *testing.T) {
	r := testRing(t, 16, 1)
	a := r.NewPoly(1)
	b := r.NewPoly(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even exponent")
		}
	}()
	r.Automorphism(b, a, 4)
}

func TestGaloisElement(t *testing.T) {
	r := testRing(t, 64, 1)
	if g := r.GaloisElement(0); g != 1 {
		t.Fatalf("GaloisElement(0) = %d", g)
	}
	if g := r.GaloisElement(1); g != 5 {
		t.Fatalf("GaloisElement(1) = %d", g)
	}
	// Rotation by slot count is the identity.
	if g := r.GaloisElement(32); g != 1 {
		t.Fatalf("GaloisElement(N/2) = %d, want 1", g)
	}
	// Negative rotation composes with positive to the identity exponent.
	gp := r.GaloisElement(3)
	gm := r.GaloisElement(-3)
	if gp*gm%(2*64) != 1 {
		t.Fatalf("g(3)·g(-3) = %d mod 2N, want 1", gp*gm%(2*64))
	}
	if r.GaloisElementConjugate() != 127 {
		t.Fatal("conjugate exponent")
	}
}

func TestTernaryAndGaussianSampling(t *testing.T) {
	r := testRing(t, 256, 2)
	rng := rand.New(rand.NewSource(8))
	s := r.TernaryPoly(2, rng)
	for j := 0; j < r.N; j++ {
		v := modmath.CenteredLift(s.Coeffs[0][j], r.Mod(0).Q)
		if v < -1 || v > 1 {
			t.Fatalf("ternary coefficient %d out of range", v)
		}
		// Limbs must agree as centered values.
		v2 := modmath.CenteredLift(s.Coeffs[1][j], r.Mod(1).Q)
		if v != v2 {
			t.Fatal("ternary limbs disagree")
		}
	}
	e := r.GaussianPoly(2, 3.2, rng)
	for j := 0; j < r.N; j++ {
		v := modmath.CenteredLift(e.Coeffs[0][j], r.Mod(0).Q)
		if v < -40 || v > 40 {
			t.Fatalf("gaussian coefficient %d implausibly large", v)
		}
	}
}

func TestSetInt64Coeffs(t *testing.T) {
	r := testRing(t, 16, 2)
	p := r.NewPoly(2)
	coeffs := make([]int64, 16)
	coeffs[0], coeffs[1], coeffs[15] = 7, -3, -1
	r.SetInt64Coeffs(p, coeffs)
	if p.Coeffs[0][0] != 7 || p.Coeffs[1][0] != 7 {
		t.Fatal("positive coefficient")
	}
	if p.Coeffs[0][1] != r.Mod(0).Q-3 {
		t.Fatal("negative coefficient limb 0")
	}
	if p.Coeffs[1][15] != r.Mod(1).Q-1 {
		t.Fatal("negative coefficient limb 1")
	}
}

func TestDropLevel(t *testing.T) {
	r := testRing(t, 16, 3)
	p := r.NewPoly(3)
	p.DropLevel(2)
	if p.Limbs() != 2 {
		t.Fatal("DropLevel did not shrink")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic growing via DropLevel")
		}
	}()
	p.DropLevel(3)
}

func TestCopyIsDeep(t *testing.T) {
	r := testRing(t, 16, 2)
	rng := rand.New(rand.NewSource(9))
	a := r.UniformPoly(2, rng)
	b := a.Copy()
	b.Coeffs[0][0] = a.Coeffs[0][0] + 1
	if a.Coeffs[0][0] == b.Coeffs[0][0] {
		t.Fatal("Copy aliases storage")
	}
}

func TestRingConcurrentAutomorphism(t *testing.T) {
	// The lazy galois cache must be safe under concurrent first access.
	r := testRing(t, 64, 2)
	rng := rand.New(rand.NewSource(99))
	a := r.UniformPoly(2, rng)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			out := r.NewPoly(2)
			for i := 0; i < 20; i++ {
				r.Automorphism(out, a, uint64(2*((seed+i)%31)+1))
			}
		}(g)
	}
	wg.Wait()
}

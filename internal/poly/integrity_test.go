package poly

import (
	"errors"
	"math/rand"
	"testing"

	"crophe/internal/integrity"
	"crophe/internal/modmath"
)

func checkedFixture(t *testing.T) (*Ring, *Poly) {
	t.Helper()
	n := 128
	primes, err := modmath.GeneratePrimes(45, uint64(n), 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r, r.UniformPoly(3, rand.New(rand.NewSource(1)))
}

func TestCheckedRingMatchesPlain(t *testing.T) {
	r, p := checkedFixture(t)
	want := p.Copy()
	r.NTT(want)

	cr := r.WithIntegrity(integrity.NewChecker(1))
	q := p.Copy()
	cs, err := cr.NTT(q)
	if err != nil {
		t.Fatalf("checked NTT false positive: %v", err)
	}
	if !q.Equal(want) {
		t.Fatal("checked NTT differs from plain")
	}
	if !cs.IsNTT || len(cs.Sums) != q.Limbs() {
		t.Fatalf("NTT stamp shape: %+v", cs)
	}
	// The stamp is the one a fresh Checksum of the buffer reproduces.
	if err := cr.Verify(q, cs); err != nil {
		t.Fatalf("clean buffer failed its own stamp: %v", err)
	}

	r.INTT(want)
	csInv, err := cr.INTT(q)
	if err != nil {
		t.Fatalf("checked INTT false positive: %v", err)
	}
	if !q.Equal(want) {
		t.Fatal("checked INTT differs from plain")
	}
	if csInv.IsNTT {
		t.Fatal("INTT stamp still marked NTT")
	}
	if err := cr.Verify(q, csInv); err != nil {
		t.Fatalf("clean coefficient buffer failed its stamp: %v", err)
	}
	if s := cr.Checker.Stats(); s.Detected != 0 || s.Checks == 0 {
		t.Fatalf("clean round-trip stats: %+v", s)
	}

	// No-op conversions still hand back a valid stamp.
	again, err := cr.INTT(q)
	if err != nil || again.IsNTT {
		t.Fatalf("no-op INTT: %v %+v", err, again)
	}
}

func TestCheckedRingVerifyCatchesCarriedCorruption(t *testing.T) {
	// The carried-checksum scenario: producer stamps, the buffer is
	// corrupted at rest, consumer verification escalates — no producer
	// exists to replay.
	r, p := checkedFixture(t)
	cr := r.WithIntegrity(integrity.NewChecker(33))
	cs := cr.Checksum(p)
	p.Coeffs[1][17] ^= 1 << 40
	err := cr.Verify(p, cs)
	if err == nil {
		t.Fatal("corrupted buffer verified clean")
	}
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("not *integrity.Error: %v", err)
	}
	if ie.Kernel != "poly.Verify" || ie.Seed != 33 {
		t.Fatalf("escalation payload: %+v", ie)
	}
	if s := cr.Checker.Stats(); s.Detected != 1 || s.Escalated != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// Shape mismatches are caller errors, not corruption.
	p.Coeffs[1][17] ^= 1 << 40
	p.IsNTT = true
	if err := cr.Verify(p, cs); err == nil {
		t.Fatal("representation mismatch verified")
	}
	p.IsNTT = false
	p.DropLevel(2)
	if err := cr.Verify(p, cs); err == nil {
		t.Fatal("limb-count mismatch verified")
	}
}

func TestCheckedRingRecoversAndEscalates(t *testing.T) {
	r, p := checkedFixture(t)
	want := p.Copy()
	r.NTT(want)

	inj := integrity.NewInjector(51, 1)
	inj.Arm(1)
	cr := r.WithIntegrity(integrity.NewChecker(51, integrity.WithInjector(inj)))
	q := p.Copy()
	if _, err := cr.NTT(q); err != nil {
		t.Fatalf("transient flip escalated: %v", err)
	}
	if !q.Equal(want) {
		t.Fatal("recovered poly differs from plain transform")
	}
	if s := cr.Checker.Stats(); s.Detected != 1 || s.Recomputed != 1 {
		t.Fatalf("transient stats: %+v", s)
	}

	inj2 := integrity.NewInjector(53, 1)
	inj2.Persist(true)
	cr2 := r.WithIntegrity(integrity.NewChecker(53, integrity.WithInjector(inj2)))
	q2 := p.Copy()
	_, err := cr2.NTT(q2)
	var ie *integrity.Error
	if !errors.As(err, &ie) || ie.Seed != 53 {
		t.Fatalf("persistent corruption error: %v", err)
	}
}

// Package poly provides RNS polynomials in Z_Q[X]/(X^N+1): the (ℓ+1)×N
// limb matrices the paper's dataflow operates on. A Ring owns the moduli
// and per-modulus NTT tables; Poly values carry their representation
// (coefficient vs NTT) and support the element-wise, NTT, and automorphism
// primitives that make up every CKKS operator.
package poly

import (
	"fmt"
	"math/rand"
	"sync"

	"crophe/internal/modmath"
	"crophe/internal/ntt"
	"crophe/internal/parallel"
	"crophe/internal/rns"
)

// Ring bundles the ring degree with an RNS basis and the NTT tables for
// each limb modulus. Immutable after construction; safe for concurrent use.
type Ring struct {
	N      int
	Basis  *rns.Basis
	Tables []*ntt.Table

	// galois caches automorphism index maps keyed by the exponent g,
	// built lazily by AutomorphismIndex under galoisMu.
	galoisMu sync.Mutex
	galois   map[uint64][]autoEntry
}

type autoEntry struct {
	src    int
	negate bool
}

// Src returns the source coefficient index of the permutation entry.
func (e autoEntry) Src() int { return e.src }

// Negate reports whether the moved coefficient flips sign (negacyclic
// wrap past X^N).
func (e autoEntry) Negate() bool { return e.negate }

// NewRing creates a ring of degree n (power of two) over the given primes,
// each of which must support the negacyclic NTT (p ≡ 1 mod 2n).
func NewRing(n int, primes []uint64) (*Ring, error) {
	basis, err := rns.NewBasis(primes)
	if err != nil {
		return nil, err
	}
	r := &Ring{N: n, Basis: basis, galois: make(map[uint64][]autoEntry)}
	r.Tables = make([]*ntt.Table, basis.K())
	// Per-limb tables are independent; build them across the pool.
	errs := make([]error, basis.K())
	parallel.For(basis.K(), func(i int) {
		t, err := ntt.NewTable(basis.Mods[i], n)
		if err != nil {
			errs[i] = fmt.Errorf("poly: limb %d: %w", i, err)
			return
		}
		r.Tables[i] = t
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

// K returns the number of limb moduli in the ring.
func (r *Ring) K() int { return r.Basis.K() }

// Mod returns the modulus of limb i.
func (r *Ring) Mod(i int) modmath.Modulus { return r.Basis.Mods[i] }

// Poly is an RNS polynomial: Coeffs[i][j] is the j-th coefficient (or NTT
// slot) of the i-th limb. Level()+1 limbs are populated.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial with limbs limbs of degree r.N.
func (r *Ring) NewPoly(limbs int) *Poly {
	if limbs < 1 || limbs > r.K() {
		panic(fmt.Sprintf("poly: limb count %d out of range [1,%d]", limbs, r.K()))
	}
	backing := make([]uint64, limbs*r.N)
	c := make([][]uint64, limbs)
	for i := range c {
		c[i], backing = backing[:r.N:r.N], backing[r.N:]
	}
	return &Poly{Coeffs: c}
}

// Limbs returns the number of populated limbs.
func (p *Poly) Limbs() int { return len(p.Coeffs) }

// Level returns Limbs()-1, the multiplicative level of the polynomial.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// Copy returns a deep copy.
func (p *Poly) Copy() *Poly {
	q := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	for i := range p.Coeffs {
		q.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return q
}

// DropLevel removes the top limbs so the polynomial has newLimbs limbs.
func (p *Poly) DropLevel(newLimbs int) {
	if newLimbs < 1 || newLimbs > len(p.Coeffs) {
		panic(fmt.Sprintf("poly: DropLevel to %d limbs out of range [1,%d]", newLimbs, len(p.Coeffs)))
	}
	p.Coeffs = p.Coeffs[:newLimbs]
}

func (r *Ring) checkPair(a, b *Poly) int {
	if a.Limbs() != b.Limbs() {
		panic(fmt.Sprintf("poly: limb mismatch %d vs %d", a.Limbs(), b.Limbs()))
	}
	if a.IsNTT != b.IsNTT {
		panic(fmt.Sprintf("poly: representation mismatch (a.IsNTT=%v, b.IsNTT=%v)", a.IsNTT, b.IsNTT))
	}
	return a.Limbs()
}

// Add sets dst = a + b limb-wise. dst may alias a or b.
func (r *Ring) Add(dst, a, b *Poly) {
	k := r.checkPair(a, b)
	ensureLike(dst, a)
	parallel.For(k, func(i int) {
		r.Mod(i).AddVec(dst.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	dst.IsNTT = a.IsNTT
}

// Sub sets dst = a − b limb-wise.
func (r *Ring) Sub(dst, a, b *Poly) {
	k := r.checkPair(a, b)
	ensureLike(dst, a)
	parallel.For(k, func(i int) {
		r.Mod(i).SubVec(dst.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	dst.IsNTT = a.IsNTT
}

// Neg sets dst = −a.
func (r *Ring) Neg(dst, a *Poly) {
	ensureLike(dst, a)
	parallel.For(a.Limbs(), func(i int) {
		r.Mod(i).NegVec(dst.Coeffs[i], a.Coeffs[i])
	})
	dst.IsNTT = a.IsNTT
}

// MulHadamard sets dst = a ⊙ b element-wise. Both operands must be in NTT
// form (pointwise products realise ring multiplication only there).
func (r *Ring) MulHadamard(dst, a, b *Poly) {
	k := r.checkPair(a, b)
	if !a.IsNTT {
		panic(fmt.Sprintf("poly: MulHadamard requires NTT form (operand has %d coefficient-form limbs)", a.Limbs()))
	}
	ensureLike(dst, a)
	parallel.For(k, func(i int) {
		r.Mod(i).MulVec(dst.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	dst.IsNTT = true
}

// MulAddHadamard sets dst += a ⊙ b element-wise (NTT form).
func (r *Ring) MulAddHadamard(dst, a, b *Poly) {
	k := r.checkPair(a, b)
	if !a.IsNTT || !dst.IsNTT {
		panic(fmt.Sprintf("poly: MulAddHadamard requires NTT form (a.IsNTT=%v, dst.IsNTT=%v)", a.IsNTT, dst.IsNTT))
	}
	parallel.For(k, func(i int) {
		r.Mod(i).MulAddVec(dst.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
}

// MulScalar sets dst = a · s for a plain integer scalar s (reduced per
// limb).
func (r *Ring) MulScalar(dst, a *Poly, s uint64) {
	ensureLike(dst, a)
	parallel.For(a.Limbs(), func(i int) {
		m := r.Mod(i)
		si := m.Reduce(s)
		m.MulShoupVec(dst.Coeffs[i], a.Coeffs[i], si, m.ShoupPrecomp(si))
	})
	dst.IsNTT = a.IsNTT
}

// MulScalarRNS multiplies limb i by the per-limb constant s[i]; used for
// rescaling constants like q_ℓ^{-1} mod q_i.
func (r *Ring) MulScalarRNS(dst, a *Poly, s []uint64) {
	if len(s) < a.Limbs() {
		panic(fmt.Sprintf("poly: MulScalarRNS constant vector has %d entries, need %d", len(s), a.Limbs()))
	}
	ensureLike(dst, a)
	parallel.For(a.Limbs(), func(i int) {
		m := r.Mod(i)
		si := m.Reduce(s[i])
		m.MulShoupVec(dst.Coeffs[i], a.Coeffs[i], si, m.ShoupPrecomp(si))
	})
	dst.IsNTT = a.IsNTT
}

// NTT converts p to NTT form in place (no-op if already there).
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		return
	}
	ntt.BatchForward(r.Tables[:p.Limbs()], p.Coeffs)
	p.IsNTT = true
}

// INTT converts p to coefficient form in place (no-op if already there).
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		return
	}
	ntt.BatchInverse(r.Tables[:p.Limbs()], p.Coeffs)
	p.IsNTT = false
}

// AutomorphismIndex returns (building if needed) the coefficient-domain
// permutation for the map X → X^g: source index and sign for each output
// coefficient. g must be odd (an element of (Z/2NZ)*).
func (r *Ring) AutomorphismIndex(g uint64) []autoEntry {
	if g%2 == 0 {
		panic(fmt.Sprintf("poly: automorphism exponent %d must be odd", g))
	}
	twoN := uint64(2 * r.N)
	g %= twoN
	r.galoisMu.Lock()
	defer r.galoisMu.Unlock()
	if e, ok := r.galois[g]; ok {
		return e
	}
	// Output coefficient at position (j·g mod 2N) receives a_j, with a
	// sign flip when the reduced index lands in [N, 2N).
	entries := make([]autoEntry, r.N)
	for j := 0; j < r.N; j++ {
		idx := (uint64(j) * g) % twoN
		if idx < uint64(r.N) {
			entries[idx] = autoEntry{src: j}
		} else {
			entries[idx-uint64(r.N)] = autoEntry{src: j, negate: true}
		}
	}
	r.galois[g] = entries
	return entries
}

// Automorphism applies a(X) → a(X^g) in the coefficient domain, writing
// into dst (which must not alias a). For NTT-form inputs the caller is
// expected to convert first; the hardware realises the same permutation
// with its inter-lane shift networks.
func (r *Ring) Automorphism(dst, a *Poly, g uint64) {
	if a.IsNTT {
		panic(fmt.Sprintf("poly: Automorphism (g=%d) requires coefficient form, got NTT", g))
	}
	ensureLike(dst, a)
	entries := r.AutomorphismIndex(g)
	parallel.For(a.Limbs(), func(i int) {
		m := r.Mod(i)
		da, dd := a.Coeffs[i], dst.Coeffs[i]
		for out, e := range entries {
			v := da[e.src]
			if e.negate {
				v = m.Neg(v)
			}
			dd[out] = v
		}
	})
	dst.IsNTT = false
}

// GaloisElement returns 5^r mod 2N, the automorphism exponent that rotates
// CKKS slots by r positions (negative r rotates the other way).
func (r *Ring) GaloisElement(rot int) uint64 {
	twoN := uint64(2 * r.N)
	n2 := r.N / 2 // slot count; rotations are modulo N/2
	rot = ((rot % n2) + n2) % n2
	g := uint64(1)
	base := uint64(5)
	for i := 0; i < rot; i++ {
		g = g * base % twoN
	}
	return g
}

// GaloisElementConjugate returns 2N−1, the exponent realising complex
// conjugation of the slots.
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N) - 1 }

// UniformPoly fills a fresh polynomial with uniform residues.
func (r *Ring) UniformPoly(limbs int, rng *rand.Rand) *Poly {
	p := r.NewPoly(limbs)
	for i := 0; i < limbs; i++ {
		q := r.Mod(i).Q
		c := p.Coeffs[i]
		for j := range c {
			c[j] = rng.Uint64() % q
		}
	}
	return p
}

// TernaryPoly samples a secret-key-style polynomial with coefficients in
// {-1, 0, 1} (uniform), identical across limbs via CRT lifting.
func (r *Ring) TernaryPoly(limbs int, rng *rand.Rand) *Poly {
	p := r.NewPoly(limbs)
	for j := 0; j < r.N; j++ {
		v := int64(rng.Intn(3) - 1)
		for i := 0; i < limbs; i++ {
			p.Coeffs[i][j] = modmath.FromCentered(v, r.Mod(i).Q)
		}
	}
	return p
}

// SparseTernaryPoly samples a ternary polynomial with exactly h non-zero
// coefficients (±1 with equal probability) — the sparse secrets of
// sparse-packed bootstrapping, which bound the ModRaise overflow count.
func (r *Ring) SparseTernaryPoly(limbs, h int, rng *rand.Rand) *Poly {
	if h < 0 || h > r.N {
		panic(fmt.Sprintf("poly: hamming weight %d out of range [0,%d]", h, r.N))
	}
	p := r.NewPoly(limbs)
	perm := rng.Perm(r.N)[:h]
	for _, j := range perm {
		v := int64(1)
		if rng.Intn(2) == 0 {
			v = -1
		}
		for i := 0; i < limbs; i++ {
			p.Coeffs[i][j] = modmath.FromCentered(v, r.Mod(i).Q)
		}
	}
	return p
}

// GaussianPoly samples small error with a rounded Gaussian of the given
// standard deviation (σ ≈ 3.2 in CKKS), identical across limbs.
func (r *Ring) GaussianPoly(limbs int, sigma float64, rng *rand.Rand) *Poly {
	p := r.NewPoly(limbs)
	for j := 0; j < r.N; j++ {
		v := int64(rng.NormFloat64()*sigma + 0.5)
		for i := 0; i < limbs; i++ {
			p.Coeffs[i][j] = modmath.FromCentered(v, r.Mod(i).Q)
		}
	}
	return p
}

// SetBigCoeffs writes centered big-integer coefficients (as int64 values)
// into all limbs of p.
func (r *Ring) SetInt64Coeffs(p *Poly, coeffs []int64) {
	if len(coeffs) != r.N {
		panic(fmt.Sprintf("poly: got %d coefficients for ring degree %d", len(coeffs), r.N))
	}
	for i := 0; i < p.Limbs(); i++ {
		q := r.Mod(i).Q
		for j, v := range coeffs {
			p.Coeffs[i][j] = modmath.FromCentered(v, q)
		}
	}
	p.IsNTT = false
}

// Equal reports deep equality of populated limbs and representation.
func (p *Poly) Equal(q *Poly) bool {
	if p.Limbs() != q.Limbs() || p.IsNTT != q.IsNTT {
		return false
	}
	for i := range p.Coeffs {
		a, b := p.Coeffs[i], q.Coeffs[i]
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

func ensureLike(dst, src *Poly) {
	if dst.Limbs() < src.Limbs() {
		panic(fmt.Sprintf("poly: destination has %d limbs, source has %d", dst.Limbs(), src.Limbs()))
	}
	if dst.Limbs() > src.Limbs() {
		dst.Coeffs = dst.Coeffs[:src.Limbs()]
	}
}

package poly

import (
	"fmt"

	"crophe/internal/integrity"
	"crophe/internal/ntt"
)

// Checked mode of the poly layer. A CheckedRing is an opt-in view of a
// Ring whose NTT/INTT route through the ABFT-verified batch kernels and
// which carries per-limb residue checksums alongside the limb-major
// buffers — the consumer-side half of the integrity story: a producer
// stamps a Poly's checksum, the buffer crosses an operator (or memory,
// or transport) boundary, and the consumer verifies the stamp before
// trusting the data. Unchecked pipelines never touch any of this.

// WithIntegrity returns the checked view of the ring; all transforms
// run detect → bounded-recompute → escalate under the given checker.
// The view is as safe for concurrent use as the checker itself.
func (r *Ring) WithIntegrity(c *integrity.Checker) *CheckedRing {
	return &CheckedRing{Ring: r, Checker: c}
}

// CheckedRing is a Ring bound to an integrity checker.
type CheckedRing struct {
	Ring    *Ring
	Checker *integrity.Checker
}

// Checksum is the per-limb residue stamp of a Poly: in coefficient form
// the plain mod-q sum of each limb row, in NTT form the Jou-Abraham
// weighted sum — the same quantity, since the forward transform maps
// one to the other (see internal/ntt/integrity.go).
type Checksum struct {
	Sums  []uint64
	IsNTT bool
}

// Checksum stamps p in its current representation.
func (cr *CheckedRing) Checksum(p *Poly) *Checksum {
	cs := &Checksum{Sums: make([]uint64, p.Limbs()), IsNTT: p.IsNTT}
	for i := range cs.Sums {
		t := cr.Ring.Tables[i]
		if p.IsNTT {
			cs.Sums[i] = t.NTTChecksum(p.Coeffs[i])
		} else {
			cs.Sums[i] = t.CoeffChecksum(p.Coeffs[i])
		}
	}
	return cs
}

// Verify recomputes p's stamp and compares it to a carried one. A
// mismatch means the buffer was corrupted after cs was produced; with
// no producer to replay, verification escalates immediately (kernel
// "poly.Verify") rather than recompute.
func (cr *CheckedRing) Verify(p *Poly, cs *Checksum) error {
	if cs.IsNTT != p.IsNTT {
		return fmt.Errorf("poly: checksum stamped in IsNTT=%v, buffer is IsNTT=%v", cs.IsNTT, p.IsNTT)
	}
	if len(cs.Sums) != p.Limbs() {
		return fmt.Errorf("poly: checksum covers %d limbs, buffer has %d", len(cs.Sums), p.Limbs())
	}
	got := cr.Checksum(p)
	cr.Checker.Checked()
	for i := range cs.Sums {
		if got.Sums[i] != cs.Sums[i] {
			cr.Checker.Detected()
			return cr.Checker.Escalate("poly.Verify", 1)
		}
	}
	return nil
}

// NTT converts p to NTT form through the checked batch kernel and
// returns the NTT-domain stamp (no-op stamp if already converted).
func (cr *CheckedRing) NTT(p *Poly) (*Checksum, error) {
	if p.IsNTT {
		return cr.Checksum(p), nil
	}
	sums, err := ntt.BatchForwardChecked(cr.Ring.Tables[:p.Limbs()], p.Coeffs, cr.Checker)
	if err != nil {
		return nil, err
	}
	p.IsNTT = true
	return &Checksum{Sums: sums, IsNTT: true}, nil
}

// INTT converts p to coefficient form through the checked batch kernel
// and returns the coefficient-domain stamp.
func (cr *CheckedRing) INTT(p *Poly) (*Checksum, error) {
	if !p.IsNTT {
		return cr.Checksum(p), nil
	}
	sums, err := ntt.BatchInverseChecked(cr.Ring.Tables[:p.Limbs()], p.Coeffs, cr.Checker)
	if err != nil {
		return nil, err
	}
	p.IsNTT = false
	return &Checksum{Sums: sums, IsNTT: false}, nil
}

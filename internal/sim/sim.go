// Package sim is the cycle-level performance simulator of the CROPHE
// evaluation (§VI): it executes the traces produced by the mapper on a
// modeled chip — PEs with pre-characterised operator latencies, the mesh
// NoC with X-Y routing and multicast, the banked global buffer, and the
// HBM — and reports cycles and per-resource utilisation. It refines the
// scheduler's analytical estimates the same way the paper's simulator
// validates its scheduler.
//
// Construction uses functional options:
//
//	eng := sim.New(hw,
//	        sim.WithTelemetry(telemetry.New()),
//	        sim.WithMeshOverride(16, 4))
//
// With a telemetry collector attached, the simulator records one span per
// segment, group, and transfer (exportable as a Chrome trace via
// telemetry.Collector.ChromeTrace) plus resource counters; without one,
// every emission site is guarded by Collector.Enabled and costs nothing.
package sim

import (
	"context"
	"fmt"

	"crophe/internal/arch"
	"crophe/internal/fault"
	"crophe/internal/mapper"
	"crophe/internal/mem"
	"crophe/internal/noc"
	"crophe/internal/sched"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// SegmentCycles is the simulated cost of one unique workload segment.
type SegmentCycles struct {
	// Name is the segment name (unique within a workload).
	Name string
	// Cycles is the cost of one execution of the segment.
	Cycles float64
	// Count is how many times the segment executes per task.
	Count int
}

// Result summarises one simulated workload execution.
type Result struct {
	Workload string
	HW       string
	Cycles   float64
	TimeSec  float64
	Util     sched.Utilization
	Traffic  sched.Traffic
	// EnergyJ is the activity-based energy estimate: each Table II
	// component burns its modeled power while busy (leakage folded in at
	// 10% of peak while idle), plus the HBM interface energy per bit.
	EnergyJ float64
	// PerSegment carries per-unique-segment cycle counts in workload
	// (execution) order.
	PerSegment []SegmentCycles
	// Counters is the snapshot of telemetry counters accumulated during
	// the run (nil when the engine has no collector attached).
	Counters []telemetry.Counter
	// Integrity is the priced silent-data-corruption recovery outcome
	// (nil unless the fault plan injects bit-flips); its cycle penalty is
	// already folded into Cycles.
	Integrity *fault.SDCStats
}

// SegmentCycles returns the per-execution cycles of the named segment and
// whether it was simulated.
func (r *Result) SegmentCycles(name string) (float64, bool) {
	for _, s := range r.PerSegment {
		if s.Name == name {
			return s.Cycles, true
		}
	}
	return 0, false
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithTelemetry attaches a collector; the simulation emits span events
// (per segment, group, and transfer) and resource counters into it. A nil
// collector leaves telemetry disabled.
func WithTelemetry(c *telemetry.Collector) Option {
	return func(e *Engine) { e.tel = c }
}

// WithMeshOverride simulates the workload on a w×h PE mesh regardless of
// the configuration's MeshW/MeshH (a what-if knob for topology studies).
// Non-positive dimensions are ignored.
func WithMeshOverride(w, h int) Option {
	return func(e *Engine) {
		if w > 0 && h > 0 {
			e.meshW, e.meshH = w, h
		}
	}
}

// WithFaults degrades the simulated chip per the machine's fault plan:
// groups avoid failed PE rows, transfers detour dead links and crawl
// over slowed ones, the buffer loses its dead banks, the HBM its
// throttled bandwidth, and seeded transient stalls extend groups. Fault
// activity lands on a "Fault" telemetry track plus fault/* counters. A
// nil machine leaves the chip healthy.
func WithFaults(m *fault.Machine) Option {
	return func(e *Engine) { e.faults = m }
}

// Engine binds a hardware configuration.
type Engine struct {
	// HW is the bound hardware configuration.
	//
	// Deprecated: HW is exported only so pre-options callers that did
	// sim.Engine{HW: hw} or read e.HW keep compiling. Use New with
	// Options and the Config accessor instead.
	HW *arch.HWConfig

	tel          *telemetry.Collector
	meshW, meshH int
	faults       *fault.Machine
}

// New creates a simulator for a configuration.
func New(hw *arch.HWConfig, opts ...Option) *Engine {
	e := &Engine{HW: hw}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Config returns the bound hardware configuration.
func (e *Engine) Config() *arch.HWConfig { return e.HW }

// Telemetry returns the attached collector (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Collector { return e.tel }

// SimulateSchedule executes a scheduled workload cycle-by-cycle at chunk
// granularity and returns refined timing. The schedule's traffic
// provenance is respected: DRAM bytes go through the HBM model with
// streaming locality for auxiliaries and strided locality for spills;
// SRAM bytes through the banked buffer; intra-group transfers through the
// placed mesh.
func (e *Engine) SimulateSchedule(w *workload.Workload, s *sched.Schedule) (*Result, error) {
	var res *Result
	var err error
	// Host-side observability: the run shows up as a task in
	// runtime/trace output and as a pprof label on its samples.
	telemetry.WithHostSpan(context.Background(), "sim:"+w.Name, func(ctx context.Context) {
		res, err = e.simulate(ctx, w, s)
	})
	return res, err
}

func (e *Engine) simulate(ctx context.Context, w *workload.Workload, s *sched.Schedule) (*Result, error) {
	hw := e.HW
	tel := e.tel
	freq := hw.FreqGHz * 1e9

	// Models are built from the BASE configuration and then structurally
	// faulted (banks disabled, channels throttled). The scheduler already
	// planned on the derated effective view; deriving the models from the
	// derated numbers too would charge every fault twice.
	hbm, err := mem.NewHBM(hw.DRAMBandwidthTBs, hw.FreqGHz)
	if err != nil {
		return nil, err
	}
	sram, err := mem.NewSRAM(hw.SRAMCapacityMB, hw.SRAMBandwidthTBs, hw.FreqGHz, mem.GlobalBufBanks)
	if err != nil {
		return nil, err
	}
	var failedRows map[int]bool
	var stalls *fault.StallSampler
	if e.faults != nil {
		if err := e.faults.ApplyToHBM(hbm); err != nil {
			return nil, err
		}
		if err := e.faults.ApplyToSRAM(sram); err != nil {
			return nil, err
		}
		failedRows = e.faults.FailedRows()
		stalls = e.faults.StallSampler()
	}

	meshW, meshH := hw.MeshW, hw.MeshH
	if meshW < 1 || meshH < 1 {
		// Baselines without an explicit mesh: model their clusters as a
		// single-row array with wide links (dedicated datapaths).
		meshW, meshH = hw.NumPEs, 1
		if meshW > 64 {
			meshW = 64
		}
	}
	if e.meshW > 0 && e.meshH > 0 {
		meshW, meshH = e.meshW, e.meshH
	}
	linkBytesPerCycle := hw.NoCLinkGBs * 1e9 / freq
	if linkBytesPerCycle <= 0 {
		linkBytesPerCycle = hw.LocalBWTBs * 1e12 / freq / float64(meshW)
		if linkBytesPerCycle <= 0 {
			linkBytesPerCycle = 64
		}
	}

	res := &Result{
		Workload: w.Name,
		HW:       hw.Name,
	}
	var busyPE, busyNoC, busySRAM, busyDRAM float64
	// cursor is the model-time clock laying segments end to end on the
	// trace timeline (one execution per unique segment).
	var cursor float64
	var nGroups, nTransfers int

	for si, seg := range s.Segments {
		if len(seg.Groups) == 0 {
			continue
		}
		mesh, err := noc.NewMesh(meshW, meshH, linkBytesPerCycle, 1)
		if err != nil {
			return nil, err
		}
		if e.faults != nil {
			if err := e.faults.ApplyToMesh(mesh); err != nil {
				return nil, err
			}
		}
		trace, err := mapper.BuildTraceAvoiding(&s.Segments[si], hw.WordBytes(), meshW, meshH, failedRows)
		if err != nil {
			return nil, err
		}
		endRegion := telemetry.HostRegion(ctx, "segment:"+seg.Name)

		segStart := cursor
		var segCycles float64
		for gi := range trace.Groups {
			tg := &trace.Groups[gi]
			g := tg.Group
			groupStart := segStart + segCycles
			groupName := fmt.Sprintf("%s/g%d", seg.Name, gi)
			nGroups++

			// Compute cycles from the pre-characterised operator
			// latencies (the scheduler's stage times at this allocation).
			computeCycles := g.Compute * freq

			// On-chip transfers: route each placed transfer; pipeline
			// head latency adds once, serialisation bounds throughput.
			mesh.Reset()
			headLatency := 0
			for _, tr := range tg.Transfers {
				srcs := tg.Placement.PEsOf[tr.FromID]
				dsts := tg.Placement.PEsOf[tr.ToID]
				if len(srcs) == 0 || len(dsts) == 0 {
					continue
				}
				nTransfers++
				// Spread the payload over producer PEs; each sends its
				// share to its nearest consumer PE (distance-aware
				// pairing — the mapping refinement §IV-B defers to
				// future work, realised here in the router).
				share := tr.Bytes / float64(len(srcs))
				for _, src := range srcs {
					dst := dsts[0]
					best := mesh.Hops(src, dst)
					for _, cand := range dsts[1:] {
						if h := mesh.Hops(src, cand); h < best {
							best, dst = h, cand
						}
					}
					lat, err := mesh.Send(src, dst, share)
					if err != nil {
						return nil, fmt.Errorf("sim: %s transfer %d→%d: %w",
							groupName, tr.FromID, tr.ToID, err)
					}
					if lat > headLatency {
						headLatency = lat
					}
				}
				if tel.Enabled() {
					tel.EmitSpan("NoC", "transfers",
						fmt.Sprintf("%d→%d", tr.FromID, tr.ToID),
						groupStart, share/linkBytesPerCycle,
						telemetry.Arg{Key: "bytes", Value: tr.Bytes},
						telemetry.Arg{Key: "src_pes", Value: float64(len(srcs))})
				}
			}
			nocCycles := mesh.DrainCycles() + float64(headLatency)

			// Memory cycles from the group's traffic provenance.
			dramCycles := hbm.Transfer(g.Traffic.DRAM, mem.Strided)
			sramCycles := sram.Access(g.Traffic.SRAM, 64)

			groupCycles := maxOf(computeCycles, nocCycles, dramCycles, sramCycles)
			// Synchronous group switch (§IV-A): drain the pipeline.
			groupCycles += float64(headLatency)
			// Transient faults: a stall event freezes the whole group (a
			// pipeline replay after an upset), extending it end to end.
			var stallCycles float64
			if stalls != nil {
				stallCycles = stalls.Next()
				groupCycles += stallCycles
			}
			segCycles += groupCycles

			busyPE += computeCycles
			busyNoC += nocCycles
			busySRAM += sramCycles
			busyDRAM += dramCycles

			if tel.Enabled() {
				// Aggregate lanes carry exactly the cycles added to the
				// busy accumulators, so Σ span durations per track
				// reconciles with Result.Util (see sim tests).
				tel.EmitSpan("PE", "array", groupName, groupStart, computeCycles,
					telemetry.Arg{Key: "ops", Value: float64(len(g.Nodes))})
				for _, b := range tg.Placement.Bands {
					for row := b.Row0; row < b.Row0+b.Rows; row++ {
						tel.EmitSpan("PE", fmt.Sprintf("row %d", tg.Placement.PhysRow(row)),
							groupName, groupStart, computeCycles)
					}
				}
				if stallCycles > 0 {
					tel.EmitSpan("Fault", "stalls", groupName,
						groupStart+groupCycles-stallCycles, stallCycles,
						telemetry.Arg{Key: "cycles", Value: stallCycles})
				}
				if nocCycles > 0 {
					tel.EmitSpan("NoC", "links", groupName, groupStart, nocCycles,
						telemetry.Arg{Key: "sends", Value: float64(mesh.Sends())})
				}
				if sramCycles > 0 {
					tel.EmitSpan("SRAM", "banks", groupName, groupStart, sramCycles,
						telemetry.Arg{Key: "bytes", Value: g.Traffic.SRAM})
				}
				if dramCycles > 0 {
					tel.EmitSpan("HBM", "channels", groupName, groupStart, dramCycles,
						telemetry.Arg{Key: "bytes", Value: g.Traffic.DRAM})
				}
				mesh.EmitCounters(tel)
			}
		}

		// Segment-level traffic (aux streams, boundary pipelining,
		// spills) recorded by the scheduler but not tied to one group.
		groupT := sched.Traffic{}
		for _, g := range seg.Groups {
			groupT.Add(g.Traffic)
		}
		extra := sched.Traffic{
			DRAM: seg.Traffic.DRAM - groupT.DRAM,
			SRAM: seg.Traffic.SRAM - groupT.SRAM,
			NoC:  seg.Traffic.NoC - groupT.NoC,
		}
		extraCycles := maxOf(
			hbm.Transfer(maxF(extra.DRAM, 0), mem.Streaming),
			sram.Access(maxF(extra.SRAM, 0), 64),
			maxF(extra.NoC, 0)/(linkBytesPerCycle*float64(hw.NumPEs)/2),
		)
		// Aux streaming overlaps compute; it extends the segment only
		// when it exceeds the compute+transfer span.
		if extraCycles > segCycles {
			segCycles = extraCycles
		}
		extraDRAM := maxF(extra.DRAM, 0) / hbmBytesPerCycle(hw)
		extraSRAM := maxF(extra.SRAM, 0) / sramBytesPerCycle(hw)
		busyDRAM += extraDRAM
		busySRAM += extraSRAM

		if tel.Enabled() {
			if extraDRAM > 0 {
				tel.EmitSpan("HBM", "channels", seg.Name+"/aux", segStart, extraDRAM,
					telemetry.Arg{Key: "bytes", Value: maxF(extra.DRAM, 0)})
			}
			if extraSRAM > 0 {
				tel.EmitSpan("SRAM", "banks", seg.Name+"/aux", segStart, extraSRAM,
					telemetry.Arg{Key: "bytes", Value: maxF(extra.SRAM, 0)})
			}
			tel.EmitSpan("Schedule", "segments", seg.Name, segStart, segCycles,
				telemetry.Arg{Key: "count", Value: float64(seg.Count)},
				telemetry.Arg{Key: "groups", Value: float64(len(seg.Groups))})
		}
		cursor += segCycles

		res.PerSegment = append(res.PerSegment, SegmentCycles{
			Name: seg.Name, Cycles: segCycles, Count: seg.Count,
		})
		res.Cycles += segCycles * float64(seg.Count)
		res.Traffic.Add(seg.Traffic.Scale(float64(seg.Count)))
		endRegion()
	}

	// Silent-data-corruption recovery: with flip:R injected, every HBM
	// burst and buffer access is a checked unit, and the detect →
	// recompute → escalate protocol's deterministic cycle cost extends
	// the run (see fault.ModelSDC).
	if e.faults != nil && e.faults.Plan.FlipRate > 0 {
		sdc := e.faults.ModelSDC(hbm.Stats().Bursts, float64(sram.Stats().Accesses), res.Cycles)
		res.Cycles += sdc.PenaltyCycles()
		res.Integrity = &sdc
	}

	clusters := s.Opt.Clusters
	if clusters < 1 {
		clusters = 1
	}
	if clusters > w.DataParallel {
		clusters = w.DataParallel
	}
	res.Cycles /= float64(clusters)
	res.TimeSec = res.Cycles / freq
	if res.Cycles > 0 {
		total := res.Cycles * float64(clusters)
		res.Util = sched.Utilization{
			PE:   clamp(busyPE / total),
			NoC:  clamp(busyNoC / total),
			SRAM: clamp(busySRAM / total),
			DRAM: clamp(busyDRAM / total),
		}
		res.EnergyJ = e.energy(res, busyPE/freq, busyNoC/freq, busySRAM/freq)
	}

	if tel.Enabled() {
		hbm.EmitCounters(tel)
		sram.EmitCounters(tel)
		if e.faults != nil {
			e.faults.EmitCounters(tel)
			// Plan-summary span covering the whole run, so the Fault track
			// exists in every degraded trace even when no stall fired.
			tel.EmitSpan("Fault", "plan", e.faults.Plan.Spec.String(), 0, res.Cycles,
				telemetry.Arg{Key: "seed", Value: float64(e.faults.Plan.Seed)},
				telemetry.Arg{Key: "faults", Value: float64(e.faults.Plan.FaultCount())})
			if stalls != nil {
				n, cycles := stalls.Injected()
				tel.EmitCounter("fault/stalls_injected", float64(n))
				tel.EmitCounter("fault/stall_cycles", cycles)
			}
			if res.Integrity != nil {
				res.Integrity.EmitCounters(tel)
				tel.EmitSpan("Fault", "sdc", "recovery", 0, res.Integrity.PenaltyCycles(),
					telemetry.Arg{Key: "detected", Value: res.Integrity.Detected},
					telemetry.Arg{Key: "recomputed", Value: res.Integrity.Recomputed})
			}
		}
		tel.EmitCounter("sim/segments", float64(len(res.PerSegment)))
		tel.EmitCounter("sim/groups", float64(nGroups))
		tel.EmitCounter("sim/transfers", float64(nTransfers))
		tel.EmitCounter("sim/busy_cycles/pe", busyPE)
		tel.EmitCounter("sim/busy_cycles/noc", busyNoC)
		tel.EmitCounter("sim/busy_cycles/sram", busySRAM)
		tel.EmitCounter("sim/busy_cycles/dram", busyDRAM)
		res.Counters = tel.Counters()
	}
	return res, nil
}

// energy is the activity-based estimate: each component dissipates its
// Table II power while active and 10% of it (leakage + clocking) while
// idle, and the off-chip interface pays ~5 pJ/bit (HBM-class).
func (e *Engine) energy(res *Result, peBusy, nocBusy, sramBusy float64) float64 {
	chip := arch.ChipModel(e.HW)
	wall := res.TimeSec
	const idleFrac = 0.10
	const hbmPJPerBit = 5.0
	active := func(p arch.Component, busy float64) float64 {
		if busy > wall {
			busy = wall
		}
		return p.PowerW * (busy + idleFrac*(wall-busy))
	}
	energy := active(chip.PEs, peBusy) +
		active(chip.NoC, nocBusy) +
		active(chip.GlobalBuf, sramBusy) +
		active(chip.Transpose, sramBusy) +
		chip.HBMPHY.PowerW*wall +
		res.Traffic.DRAM*8*hbmPJPerBit*1e-12
	return energy
}

// Run schedules and simulates in one step, forwarding any engine options.
func Run(hw *arch.HWConfig, opt sched.Options, w *workload.Workload, opts ...Option) (*Result, error) {
	e := New(hw, opts...)
	s := sched.New(hw, opt).WithTelemetry(e.tel).Run(w)
	return e.SimulateSchedule(w, s)
}

// RunContext is Run with the anytime schedule search bounded by ctx (and
// by opt.SearchBudget when set): an expiring context yields a best-so-far
// schedule flagged Partial, which is then simulated normally. The chosen
// schedule is returned alongside the result so callers can surface the
// Partial marker.
func RunContext(ctx context.Context, hw *arch.HWConfig, opt sched.Options, w *workload.Workload, opts ...Option) (*Result, *sched.Schedule, error) {
	e := New(hw, opts...)
	s, err := sched.New(hw, opt).WithTelemetry(e.tel).Schedule(ctx, w)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.SimulateSchedule(w, s)
	if err != nil {
		return nil, nil, err
	}
	return res, s, nil
}

// SimulateDegraded schedules a workload for a degraded machine — the
// composition search runs on the pristine configuration and the chosen
// groups are priced on the machine's effective (derated) view, the
// split that keeps degradation monotone in the fault load (see
// sched.Scheduler.WithPricing) — and simulates the schedule on the
// structurally faulted chip models. The context bounds the schedule
// search, not the simulation: an expired deadline yields a best-so-far
// schedule, never an error.
func SimulateDegraded(ctx context.Context, m *fault.Machine, opt sched.Options, w *workload.Workload, opts ...Option) (*Result, *sched.Schedule, error) {
	s, err := sched.New(m.Base, opt).WithPricing(m.EffectiveHW()).Schedule(ctx, w)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: degraded schedule (fault seed %d): %w", m.Plan.Seed, err)
	}
	opts = append(opts, WithFaults(m))
	res, err := New(m.Base, opts...).SimulateSchedule(w, s)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: degraded run (fault seed %d): %w", m.Plan.Seed, err)
	}
	return res, s, nil
}

// DegradedRunner adapts SimulateDegraded to the fault.Sweep contract —
// the injection point that keeps internal/fault free of any simulator
// dependency.
func DegradedRunner(ctx context.Context, opt sched.Options, w *workload.Workload) fault.Runner {
	return func(m *fault.Machine) (fault.Outcome, error) {
		res, s, err := SimulateDegraded(ctx, m, opt, w)
		if err != nil {
			return fault.Outcome{}, err
		}
		return fault.Outcome{TimeSec: res.TimeSec, Cycles: res.Cycles, Partial: s.Partial}, nil
	}
}

func hbmBytesPerCycle(hw *arch.HWConfig) float64 {
	return hw.DRAMBandwidthTBs * 1e12 / (hw.FreqGHz * 1e9)
}

func sramBytesPerCycle(hw *arch.HWConfig) float64 {
	return hw.SRAMBandwidthTBs * 1e12 / (hw.FreqGHz * 1e9)
}

func clamp(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

func maxOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Describe renders a short report.
func (r *Result) Describe() string {
	return fmt.Sprintf("%s on %s: %.0f cycles (%.3f ms), util PE %.0f%% NoC %.0f%% SRAM %.0f%% DRAM %.0f%%",
		r.Workload, r.HW, r.Cycles, r.TimeSec*1e3,
		r.Util.PE*100, r.Util.NoC*100, r.Util.SRAM*100, r.Util.DRAM*100)
}

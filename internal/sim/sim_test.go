package sim

import (
	"testing"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

func TestSimulateBootstrapProducesPlausibleTiming(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	r, err := New(arch.CROPHE64).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.TimeSec <= 0 {
		t.Fatal("non-positive simulated time")
	}
	// The cycle simulation refines but should not wildly contradict the
	// analytical schedule (same traffic, same compute).
	ratio := r.TimeSec / s.TimeSec
	if ratio < 0.5 || ratio > 5 {
		t.Fatalf("simulated/analytical ratio %.2f out of range (sim %.3g s, sched %.3g s)",
			ratio, r.TimeSec, s.TimeSec)
	}
	if len(r.PerSegment) != len(w.Segments) {
		t.Fatalf("per-segment results %d want %d", len(r.PerSegment), len(w.Segments))
	}
	// PerSegment is ordered: entries follow workload execution order.
	for i, sc := range r.PerSegment {
		if sc.Name != w.Segments[i].Name {
			t.Fatalf("segment %d = %q want %q (order lost)", i, sc.Name, w.Segments[i].Name)
		}
		if sc.Cycles <= 0 || sc.Count < 1 {
			t.Fatalf("segment %q has cycles %v count %d", sc.Name, sc.Cycles, sc.Count)
		}
		if got, ok := r.SegmentCycles(sc.Name); !ok || got != sc.Cycles {
			t.Fatalf("SegmentCycles(%q) = %v,%v want %v,true", sc.Name, got, ok, sc.Cycles)
		}
	}
}

func TestSimulatedOrderingMatchesScheduler(t *testing.T) {
	// The headline comparison must survive cycle simulation: CROPHE
	// faster than MAD on the same hardware.
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)

	sMad := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowMAD)).Run(w)
	rMad, err := New(arch.CROPHE64).SimulateSchedule(w, sMad)
	if err != nil {
		t.Fatal(err)
	}
	sCro := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	rCro, err := New(arch.CROPHE64).SimulateSchedule(w, sCro)
	if err != nil {
		t.Fatal(err)
	}
	if rCro.TimeSec >= rMad.TimeSec {
		t.Fatalf("simulated CROPHE %.3g not faster than MAD %.3g", rCro.TimeSec, rMad.TimeSec)
	}
}

func TestSimulateBaselineConfig(t *testing.T) {
	// Baselines have no mesh config; the simulator must still run them.
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotMinKS, 0)
	s := sched.New(arch.ARK, sched.DefaultOptions(sched.DataflowMAD)).Run(w)
	r, err := New(arch.ARK).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Fatal("baseline simulation produced no cycles")
	}
}

func TestUtilizationBounds(t *testing.T) {
	w := workload.ResNet(arch.ParamsARK, 20, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	r, err := New(arch.CROPHE64).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"PE": r.Util.PE, "NoC": r.Util.NoC, "SRAM": r.Util.SRAM, "DRAM": r.Util.DRAM,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s utilisation %f out of bounds", name, v)
		}
	}
	if r.Util.PE == 0 {
		t.Error("PE utilisation zero")
	}
}

func TestRunConvenience(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsSHARP, workload.RotHybrid, 4)
	r, err := Run(arch.CROPHE36, sched.DefaultOptions(sched.DataflowCROPHE), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.HW != "CROPHE-36" || r.Workload != "bootstrapping" {
		t.Fatal("result identity")
	}
	if r.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestClustersDividePerTaskCycles(t *testing.T) {
	w := workload.HELR(arch.ParamsARK, workload.RotHoisted, 0)
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	s1 := sched.New(arch.CROPHE64, opt).Run(w)
	r1, err := New(arch.CROPHE64).SimulateSchedule(w, s1)
	if err != nil {
		t.Fatal(err)
	}
	opt.Clusters = 4
	s4 := sched.New(arch.CROPHE64, opt).Run(w)
	r4, err := New(arch.CROPHE64).SimulateSchedule(w, s4)
	if err != nil {
		t.Fatal(err)
	}
	// Per-task time with clusters must not be drastically worse.
	if r4.TimeSec > r1.TimeSec*1.5 {
		t.Fatalf("clustered simulation %.3g vs %.3g", r4.TimeSec, r1.TimeSec)
	}
}

func TestEnergyEstimate(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	r, err := New(arch.CROPHE64).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ <= 0 {
		t.Fatal("no energy estimated")
	}
	// Sanity: energy must be below peak-power × time and above
	// leakage-only.
	chipPower := 195.2 // Table I CROPHE-64 watts (approx)
	if r.EnergyJ > 2*chipPower*r.TimeSec {
		t.Fatalf("energy %.3g J implausibly high for %.3g s", r.EnergyJ, r.TimeSec)
	}
	if r.EnergyJ < 0.01*chipPower*r.TimeSec {
		t.Fatalf("energy %.3g J implausibly low", r.EnergyJ)
	}
	t.Logf("bootstrapping energy: %.2f mJ over %.3f ms (avg %.1f W)",
		r.EnergyJ*1e3, r.TimeSec*1e3, r.EnergyJ/r.TimeSec)
}

package sim

import (
	"bytes"
	"math"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// runWithTelemetry schedules and simulates bootstrapping on CROPHE-64
// with a fresh collector attached to both stages.
func runWithTelemetry(t *testing.T) (*telemetry.Collector, *Result, *sched.Schedule, *workload.Workload) {
	t.Helper()
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	tel := telemetry.New()
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).WithTelemetry(tel).Run(w)
	r, err := New(arch.CROPHE64, WithTelemetry(tel)).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	return tel, r, s, w
}

// TestTraceReconcilesWithUtil is the acceptance check of the
// observability layer: summing span durations on the aggregate lane of
// each resource track must reproduce Result.Util within 1%. The
// aggregate lanes ("PE"/"array", "NoC"/"links", "SRAM"/"banks",
// "HBM"/"channels" — plus the segment-level aux spans) carry exactly the
// cycles the simulator adds to its busy accumulators; per-row and
// per-transfer lanes are visual detail excluded from the sum.
func TestTraceReconcilesWithUtil(t *testing.T) {
	tel, r, s, w := runWithTelemetry(t)

	busy := map[string]float64{}
	for _, sp := range tel.Spans() {
		switch {
		case sp.Track == "PE" && sp.Lane == "array":
			busy["PE"] += sp.Dur
		case sp.Track == "NoC" && sp.Lane == "links":
			busy["NoC"] += sp.Dur
		case sp.Track == "SRAM" && sp.Lane == "banks":
			busy["SRAM"] += sp.Dur
		case sp.Track == "HBM" && sp.Lane == "channels":
			busy["HBM"] += sp.Dur
		}
	}

	clusters := s.Opt.Clusters
	if clusters < 1 {
		clusters = 1
	}
	if clusters > w.DataParallel {
		clusters = w.DataParallel
	}
	total := r.Cycles * float64(clusters)
	want := map[string]float64{
		"PE": r.Util.PE, "NoC": r.Util.NoC, "SRAM": r.Util.SRAM, "DRAM": r.Util.DRAM,
	}
	trackFor := map[string]string{"PE": "PE", "NoC": "NoC", "SRAM": "SRAM", "DRAM": "HBM"}
	for res, util := range want {
		got := busy[trackFor[res]] / total
		if got > 1 {
			got = 1
		}
		if util == 0 {
			t.Errorf("%s utilisation zero — workload exercises every resource", res)
			continue
		}
		if rel := math.Abs(got-util) / util; rel > 0.01 {
			t.Errorf("%s: trace busy/total = %.4f but Util = %.4f (rel err %.2f%%)",
				res, got, util, rel*100)
		}
	}

	// The same reconciliation must hold against the exported counters.
	for res, key := range map[string]string{
		"PE": "sim/busy_cycles/pe", "NoC": "sim/busy_cycles/noc",
		"SRAM": "sim/busy_cycles/sram", "DRAM": "sim/busy_cycles/dram",
	} {
		c := tel.Counter(key)
		b := busy[trackFor[res]]
		if math.Abs(c-b) > 1e-6*(1+math.Abs(c)) {
			t.Errorf("%s: counter %s = %v but span sum = %v", res, key, c, b)
		}
	}
}

// TestTraceHasAllTracks checks the Chrome export contains the four
// resource tracks plus the schedule overview, segment spans for every
// unique segment, and that transfers were recorded.
func TestTraceHasAllTracks(t *testing.T) {
	tel, r, _, w := runWithTelemetry(t)

	tracks := map[string]bool{}
	segSpans := 0
	for _, sp := range tel.Spans() {
		tracks[sp.Track] = true
		if sp.Track == "Schedule" && sp.Lane == "segments" {
			segSpans++
		}
	}
	for _, want := range []string{"Schedule", "PE", "NoC", "SRAM", "HBM"} {
		if !tracks[want] {
			t.Errorf("missing %s track", want)
		}
	}
	if segSpans != len(w.Segments) {
		t.Errorf("segment spans %d want %d", segSpans, len(w.Segments))
	}
	if tel.Counter("sim/transfers") == 0 {
		t.Error("no transfers recorded")
	}
	if len(r.Counters) == 0 {
		t.Error("Result.Counters empty with telemetry enabled")
	}
	if _, err := tel.ChromeTrace(); err != nil {
		t.Fatalf("export failed: %v", err)
	}
}

// TestTraceDeterministicAcrossRuns pins the determinism contract: two
// full schedule+simulate runs must export byte-identical traces.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	export := func() []byte {
		w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
		tel := telemetry.New()
		s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).WithTelemetry(tel).Run(w)
		if _, err := New(arch.CROPHE64, WithTelemetry(tel)).SimulateSchedule(w, s); err != nil {
			t.Fatal(err)
		}
		data, err := tel.ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs exported different traces")
	}
}

// TestDisabledTelemetryLeavesNoTrace: the default engine must not
// allocate or record anything observability-related.
func TestDisabledTelemetryLeavesNoTrace(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	r, err := New(arch.CROPHE64).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters != nil {
		t.Fatalf("Counters populated without a collector: %v", r.Counters)
	}
	if New(arch.CROPHE64).Telemetry() != nil {
		t.Fatal("default engine has a collector")
	}
}

// TestTelemetryDoesNotChangeResults: attaching a collector must be
// purely observational — cycles, energy, and utilisation identical.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	plain, err := New(arch.CROPHE64).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(arch.CROPHE64, WithTelemetry(telemetry.New())).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != traced.Cycles || plain.EnergyJ != traced.EnergyJ || plain.Util != traced.Util {
		t.Fatalf("telemetry changed results: %+v vs %+v", plain, traced)
	}
}

// TestMeshOverride: the topology knob must change NoC behaviour while
// invalid overrides are ignored.
func TestMeshOverride(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	base, err := New(arch.CROPHE64).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := New(arch.CROPHE64, WithMeshOverride(4, 16)).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Cycles <= 0 {
		t.Fatal("override produced no cycles")
	}
	if narrow.Cycles == base.Cycles && narrow.Util.NoC == base.Util.NoC {
		t.Error("4x16 override indistinguishable from native 8x8 mesh")
	}
	ignored, err := New(arch.CROPHE64, WithMeshOverride(0, -1)).SimulateSchedule(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if ignored.Cycles != base.Cycles {
		t.Error("non-positive override was not ignored")
	}
}

// BenchmarkSimulate measures the telemetry-disabled hot path; compare
// with BenchmarkSimulateTraced to bound the enabled-path cost. The
// disabled path must stay within noise of the pre-telemetry simulator
// (gated end-to-end by `make bench-diff`).
func BenchmarkSimulate(b *testing.B) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	e := New(arch.CROPHE64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SimulateSchedule(w, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateTraced(b *testing.B) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	s := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := telemetry.New()
		if _, err := New(arch.CROPHE64, WithTelemetry(tel)).SimulateSchedule(w, s); err != nil {
			b.Fatal(err)
		}
	}
}

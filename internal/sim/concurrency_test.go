package sim

import (
	"sync"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/sched"
	"crophe/internal/workload"
)

// TestConcurrentRunsShareConfig runs the full schedule+simulate pipeline
// from several goroutines over the same HWConfig and workload. The shared
// inputs are treated as immutable by the scheduler and simulator; this
// test (under -race) is the audit that they actually are, and that
// results stay deterministic.
func TestConcurrentRunsShareConfig(t *testing.T) {
	w := workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
	opt := sched.DefaultOptions(sched.DataflowCROPHE)

	ref, err := Run(arch.CROPHE64, opt, w)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(arch.CROPHE64, opt, w)
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if results[i].Cycles != ref.Cycles || results[i].TimeSec != ref.TimeSec {
			t.Fatalf("worker %d: nondeterministic result %v cycles vs %v",
				i, results[i].Cycles, ref.Cycles)
		}
	}
}

// TestConcurrentMixedDataflows schedules different dataflows against the
// same shared workload simultaneously (the schedule-sweep usage pattern).
func TestConcurrentMixedDataflows(t *testing.T) {
	w := workload.HELR(arch.ParamsARK, workload.RotHoisted, 0)
	flows := []sched.Dataflow{sched.DataflowMAD, sched.DataflowCROPHE}

	results := make([]*Result, len(flows))
	errs := make([]error, len(flows))
	var wg sync.WaitGroup
	for i, d := range flows {
		wg.Add(1)
		go func(i int, d sched.Dataflow) {
			defer wg.Done()
			results[i], errs[i] = Run(arch.CROPHE64, sched.DefaultOptions(d), w)
		}(i, d)
	}
	wg.Wait()

	for i := range flows {
		if errs[i] != nil {
			t.Fatalf("dataflow %d: %v", i, errs[i])
		}
		if results[i].Cycles <= 0 {
			t.Fatalf("dataflow %d produced no cycles", i)
		}
	}
}

package sim

import (
	"context"
	"math"
	"testing"
	"time"

	"crophe/internal/arch"
	"crophe/internal/fault"
	"crophe/internal/sched"
	"crophe/internal/telemetry"
	"crophe/internal/workload"
)

// Acceptance tests of the fault-injection subsystem threaded end to end:
// per-seed bit-determinism, graceful degradation under every single
// fault, monotone throughput loss as faults accumulate, and near-zero
// overhead when faults are off.

func resilienceWorkload() *workload.Workload {
	return workload.Bootstrapping(arch.ParamsARK, workload.RotHoisted, 0)
}

func degradedTime(t *testing.T, spec string, seed int64) (*Result, *sched.Schedule) {
	t.Helper()
	s, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Generate(arch.CROPHE64, s, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, sc, err := SimulateDegraded(context.Background(),
		m, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return res, sc
}

func TestDegradedRunDeterministicPerSeed(t *testing.T) {
	const spec = "rows:2,links:3,slow:2@0.5,banks:8,hbm:0.8,stalls:3@200"
	a, _ := degradedTime(t, spec, 42)
	b, _ := degradedTime(t, spec, 42)
	if a.Cycles != b.Cycles || a.TimeSec != b.TimeSec {
		t.Fatalf("same seed, different timing: %g vs %g cycles", a.Cycles, b.Cycles)
	}
	if len(a.PerSegment) != len(b.PerSegment) {
		t.Fatal("segment counts differ")
	}
	for i := range a.PerSegment {
		if a.PerSegment[i].Cycles != b.PerSegment[i].Cycles {
			t.Fatalf("segment %d cycles differ: %g vs %g",
				i, a.PerSegment[i].Cycles, b.PerSegment[i].Cycles)
		}
	}
	c, _ := degradedTime(t, spec, 43)
	if c.Cycles == a.Cycles {
		t.Log("note: different seed produced identical cycles (possible but unlikely)")
	}
}

func TestEverySingleFaultStaysFeasibleAndSlower(t *testing.T) {
	w := resilienceWorkload()
	healthy, err := Run(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE), w)
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"rows:1",
		"lanes:0.25",
		"links:1",
		"slow:1@0.5",
		"banks:8",
		"hbm:0.5",
		"stalls:2@500",
	}
	for _, spec := range specs {
		res, sc := degradedTime(t, spec, 7)
		if res.Cycles <= 0 {
			t.Errorf("%s: non-positive cycles", spec)
			continue
		}
		// A valid schedule: every compute node scheduled exactly once.
		for si, seg := range sc.Segments {
			want := len(w.Segments[si].G.ComputeNodes())
			got := 0
			for _, g := range seg.Groups {
				got += len(g.Nodes)
			}
			if got != want {
				t.Errorf("%s/%s: scheduled %d of %d nodes", spec, seg.Name, got, want)
			}
		}
		// Degradation never speeds the machine up.
		if res.Cycles < healthy.Cycles*0.999 {
			t.Errorf("%s: degraded run faster than healthy (%g < %g cycles)",
				spec, res.Cycles, healthy.Cycles)
		}
	}
}

func degradedForSpec(t *testing.T, spec fault.Spec, seed int64) (*Result, *sched.Schedule) {
	t.Helper()
	plan, err := fault.Generate(arch.CROPHE64, spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, sc, err := SimulateDegraded(context.Background(),
		m, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return res, sc
}

func TestDegradationMonotoneInFaultCount(t *testing.T) {
	// Escalating a single resource class (nested fault sets under one
	// seed) must never make the machine faster. The guarantee splits by
	// layer. Lane, slow-link, bank, HBM and stall faults leave placement
	// and routing untouched, so the refined simulation is structurally
	// monotone: the same traffic drains through strictly weaker
	// resources. Row and dead-link faults re-place operators and
	// re-route transfers, which can rebalance the busiest link either
	// way — for those the monotone layer is the priced schedule
	// (composition fixed on the base machine, costs on the effective
	// view; see sched.WithPricing), and the simulation is bounded below
	// by the healthy machine in TestMixedFaultsNeverBeatHealthy.
	simDims := map[string][]fault.Spec{
		"lanes": {
			{LaneFrac: 0.125}, {LaneFrac: 0.25}, {LaneFrac: 0.5},
		},
		"slow": {
			{SlowLinks: 2, SlowFactor: 0.5}, {SlowLinks: 4, SlowFactor: 0.5},
			{SlowLinks: 8, SlowFactor: 0.5},
		},
		"banks": {
			{DeadBanks: 8}, {DeadBanks: 16}, {DeadBanks: 32},
		},
		"hbm": {
			{HBMFrac: 0.9}, {HBMFrac: 0.7}, {HBMFrac: 0.4},
		},
		"stalls": {
			{Stalls: 1, StallCycles: 200}, {Stalls: 3, StallCycles: 200},
			{Stalls: 6, StallCycles: 200},
		},
	}
	schedDims := map[string][]fault.Spec{
		"rows": {
			{FailedRows: 1}, {FailedRows: 2}, {FailedRows: 3},
		},
		"links": {
			{DeadLinks: 2}, {DeadLinks: 4}, {DeadLinks: 8},
		},
	}
	healthy, err := Run(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload())
	if err != nil {
		t.Fatal(err)
	}
	healthySched := sched.New(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE)).Run(resilienceWorkload())
	for dim, escalation := range simDims {
		prev := healthy.Cycles
		for step, spec := range escalation {
			res, _ := degradedForSpec(t, spec, 5)
			if res.Cycles < prev*0.999 {
				t.Errorf("%s step %d: simulated cycles fell from %g to %g as faults grew",
					dim, step, prev, res.Cycles)
			}
			prev = res.Cycles
		}
	}
	for dim, escalation := range schedDims {
		prev := healthySched.TimeSec
		for step, spec := range escalation {
			res, sc := degradedForSpec(t, spec, 5)
			if sc.TimeSec < prev*0.999 {
				t.Errorf("%s step %d: priced schedule time fell from %g to %g as faults grew",
					dim, step, prev, sc.TimeSec)
			}
			prev = sc.TimeSec
			if res.Cycles < healthy.Cycles*0.999 {
				t.Errorf("%s step %d: simulated degraded run beat healthy (%g < %g cycles)",
					dim, step, res.Cycles, healthy.Cycles)
			}
		}
	}
}

func TestMixedFaultsNeverBeatHealthy(t *testing.T) {
	// Across dimensions a fault can mask another's cost (a dead row
	// removes the placement that detoured a dead link), so pairwise
	// monotonicity is not a property of the refined simulation — but a
	// degraded machine must still never beat the healthy one.
	healthy, err := Run(arch.CROPHE64, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		spec := fault.Spec{FailedRows: k, DeadLinks: 2 * k, DeadBanks: 4 * k}
		plan, err := fault.Generate(arch.CROPHE64, spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		m, err := fault.NewMachine(arch.CROPHE64, plan)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := SimulateDegraded(context.Background(),
			m, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Cycles < healthy.Cycles*0.999 {
			t.Errorf("k=%d: mixed faults beat healthy (%g < %g cycles)",
				k, res.Cycles, healthy.Cycles)
		}
	}
}

func TestResilienceSweepEndToEnd(t *testing.T) {
	w := resilienceWorkload()
	opt := sched.DefaultOptions(sched.DataflowCROPHE)
	opt.SearchBudget = sched.BudgetForDeadline(200 * time.Millisecond)
	sweep, err := fault.Sweep(arch.CROPHE64, 13, 4,
		DegradedRunner(context.Background(), opt, w))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Baseline <= 0 {
		t.Fatalf("no healthy baseline: %+v", sweep.Points[0])
	}
	prev := math.Inf(1)
	for i := range sweep.Points {
		pt := &sweep.Points[i]
		if pt.Err != "" {
			t.Fatalf("rung %d infeasible: %s", i, pt.Err)
		}
		r := pt.Retained(sweep.Baseline)
		if r > prev+1e-9 {
			t.Fatalf("retained throughput rose at rung %d: %g after %g", i, r, prev)
		}
		prev = r
	}
	// Bit-determinism of the whole sweep.
	again, err := fault.Sweep(arch.CROPHE64, 13, 4,
		DegradedRunner(context.Background(), opt, w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sweep.Points {
		if sweep.Points[i].Outcome != again.Points[i].Outcome {
			t.Fatalf("rung %d differs across runs: %+v vs %+v",
				i, sweep.Points[i].Outcome, again.Points[i].Outcome)
		}
	}
}

func TestFaultTelemetryTrackAndCounters(t *testing.T) {
	spec, err := fault.ParseSpec("rows:1,links:2,banks:4,stalls:3@300")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Generate(arch.CROPHE64, spec, 17)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	res, _, err := SimulateDegraded(context.Background(),
		m, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload(),
		WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	counters := map[string]float64{}
	for _, c := range res.Counters {
		counters[c.Name] = c.Value
	}
	if counters["fault/seed"] != 17 {
		t.Fatalf("fault/seed counter %g want 17", counters["fault/seed"])
	}
	if counters["fault/failed_rows"] != 1 || counters["fault/dead_links"] != 2 {
		t.Fatalf("fault counters wrong: %+v", counters)
	}
	if counters["fault/stalls_injected"] < 3 || counters["fault/stall_cycles"] <= 0 {
		t.Fatalf("stall counters wrong: injected %g cycles %g",
			counters["fault/stalls_injected"], counters["fault/stall_cycles"])
	}
	tracks := map[string]bool{}
	for _, sp := range tel.Spans() {
		tracks[sp.Track] = true
	}
	if !tracks["Fault"] {
		t.Fatalf("no Fault track in trace; tracks: %v", tracks)
	}
	for _, want := range []string{"Schedule", "PE", "NoC", "SRAM", "HBM"} {
		if !tracks[want] {
			t.Fatalf("faulted run lost the %s track; tracks: %v", want, tracks)
		}
	}
}

func TestDegradedRunPricesSDCRecovery(t *testing.T) {
	// A flip-injecting plan must price the integrity protocol: the run
	// carries an Integrity outcome whose penalty is folded into Cycles,
	// the integrity/* counters land in telemetry, and the whole thing is
	// deterministic per seed and monotone in the flip rate.
	clean, _ := degradedTime(t, "healthy", 42)
	lo, _ := degradedTime(t, "flip:0.0001,scrub:100000", 42)
	lo2, _ := degradedTime(t, "flip:0.0001,scrub:100000", 42)
	hi, _ := degradedTime(t, "flip:0.001,scrub:100000", 42)

	if clean.Integrity != nil {
		t.Fatal("clean run priced SDC recovery")
	}
	if lo.Integrity == nil || hi.Integrity == nil {
		t.Fatal("flip-injecting run carries no Integrity outcome")
	}
	if lo.Cycles != lo2.Cycles || *lo.Integrity != *lo2.Integrity {
		t.Fatal("SDC pricing not deterministic per seed")
	}
	if lo.Integrity.Checks <= 0 || lo.Integrity.Detected <= 0 {
		t.Fatalf("flip run detected nothing: %+v", *lo.Integrity)
	}
	if hi.Integrity.Detected <= lo.Integrity.Detected {
		t.Fatalf("detections not monotone in flip rate: %g then %g",
			lo.Integrity.Detected, hi.Integrity.Detected)
	}
	if lo.Cycles <= clean.Cycles {
		t.Fatalf("recovery penalty did not extend the run: %g vs clean %g", lo.Cycles, clean.Cycles)
	}
	if hi.Cycles <= lo.Cycles {
		t.Fatalf("cycles not monotone in flip rate: %g then %g", lo.Cycles, hi.Cycles)
	}
	if lo.Integrity.ScrubCycles <= 0 {
		t.Fatalf("scrub period priced no scrub passes: %+v", *lo.Integrity)
	}

	// Counters and the recovery span land in telemetry.
	s, err := fault.ParseSpec("flip:0.001")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Generate(arch.CROPHE64, s, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	res, _, err := SimulateDegraded(context.Background(),
		m, sched.DefaultOptions(sched.DataflowCROPHE), resilienceWorkload(),
		WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]float64{}
	for _, c := range res.Counters {
		counters[c.Name] = c.Value
	}
	if counters["integrity/checks"] != res.Integrity.Checks ||
		counters["integrity/detected"] != res.Integrity.Detected ||
		counters["integrity/recomputed"] != res.Integrity.Recomputed ||
		counters["integrity/escalated"] != res.Integrity.Escalated {
		t.Fatalf("integrity counters disagree with the outcome: %+v vs %+v", counters, *res.Integrity)
	}
	if counters["fault/flip_rate"] != 0.001 {
		t.Fatalf("fault/flip_rate = %g", counters["fault/flip_rate"])
	}
	if counters["integrity/escalated"] != float64(len(plan.QuarantinedBanks)) {
		t.Fatalf("escalations %g != quarantined banks %d",
			counters["integrity/escalated"], len(plan.QuarantinedBanks))
	}
	found := false
	for _, sp := range tel.Spans() {
		if sp.Track == "Fault" && sp.Lane == "sdc" {
			found = true
		}
	}
	if !found {
		t.Fatal("no sdc recovery span on the Fault track")
	}
}

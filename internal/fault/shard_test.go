package fault

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/leakcheck"
)

// shardRunner is a cheap deterministic runner: time scales with the
// fault count so retained throughput varies across rungs.
func shardRunner(m *Machine) (Outcome, error) {
	return Outcome{TimeSec: 1e-3 * float64(1+m.Plan.FaultCount()), Cycles: 100}, nil
}

// TestShardStepsPartition: shards partition the step set — disjoint,
// ascending, and their union is exactly [0, steps).
func TestShardStepsPartition(t *testing.T) {
	for _, steps := range []int{2, 5, 8, 13} {
		for _, count := range []int{1, 2, 3, 5} {
			seen := make(map[int]int)
			for idx := 0; idx < count; idx++ {
				prev := -1
				for _, s := range ShardSteps(steps, idx, count) {
					if s <= prev {
						t.Fatalf("ShardSteps(%d, %d, %d) not ascending", steps, idx, count)
					}
					prev = s
					seen[s]++
				}
			}
			for s := 0; s < steps; s++ {
				if seen[s] != 1 {
					t.Fatalf("steps=%d count=%d: step %d owned by %d shards; want 1", steps, count, s, seen[s])
				}
			}
		}
	}
	if got := ShardSteps(4, 0, 0); len(got) != 4 {
		t.Fatalf("count 0 should mean no sharding; got %v", got)
	}
}

// TestShardedSweepMergesByteIdentical: running each shard separately and
// merging must reproduce the unsharded sweep exactly, including the
// rendered report.
func TestShardedSweepMergesByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	hw := arch.CROPHE36
	const seed, steps = 19, 7
	full, err := RunSweep(context.Background(), hw, seed, steps, shardRunner)
	if err != nil {
		t.Fatal(err)
	}

	const count = 3
	shards := make([]*SweepResult, count)
	for i := 0; i < count; i++ {
		shards[i], err = RunSweep(context.Background(), hw, seed, steps, shardRunner, WithShard(i, count))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if want := len(ShardSteps(steps, i, count)); len(shards[i].Points) != want {
			t.Fatalf("shard %d has %d points; want %d", i, len(shards[i].Points), want)
		}
		for _, pt := range shards[i].Points {
			if pt.Step%count != i {
				t.Fatalf("shard %d holds foreign step %d", i, pt.Step)
			}
		}
	}
	// Only the shard owning step 0 knows the baseline.
	if shards[0].Baseline == 0 {
		t.Fatal("shard 0 owns step 0 but has no baseline")
	}
	if count > 1 && shards[1].Baseline != 0 {
		t.Fatal("shard 1 does not own step 0 but claims a baseline")
	}

	merged, err := MergeShards(steps, shards...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatalf("merged shards differ from unsharded sweep:\nmerged: %+v\nfull:   %+v", merged, full)
	}
	if merged.String() != full.String() {
		t.Fatalf("merged report differs:\n%s\nvs\n%s", merged.String(), full.String())
	}
}

// TestMergeShardsValidation: missing steps, empty input and mismatched
// identities are errors; duplicate agreeing points are fine.
func TestMergeShardsValidation(t *testing.T) {
	hw := arch.CROPHE36
	const seed, steps = 19, 4
	s0, err := RunSweep(context.Background(), hw, seed, steps, shardRunner, WithShard(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunSweep(context.Background(), hw, seed, steps, shardRunner, WithShard(1, 2))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := MergeShards(steps, s0); err == nil || !strings.Contains(err.Error(), "missing step") {
		t.Fatalf("merge with a missing shard = %v; want missing-step error", err)
	}
	if _, err := MergeShards(steps); err == nil {
		t.Fatal("merge of nothing succeeded")
	}
	other := &SweepResult{HW: s1.HW, Seed: seed + 1, Points: s1.Points}
	if _, err := MergeShards(steps, s0, other); err == nil || !strings.Contains(err.Error(), "different sweeps") {
		t.Fatalf("merge across seeds = %v; want identity error", err)
	}
	// A rung rerun after reassignment appears in two shards with equal
	// values; the merge must accept it.
	dup := &SweepResult{HW: s1.HW, Seed: s1.Seed, Points: s1.Points[:1]}
	if _, err := MergeShards(steps, s0, s1, dup); err != nil {
		t.Fatalf("merge with agreeing duplicate rung: %v", err)
	}
	// A disagreeing duplicate is a determinism violation.
	bad := &SweepResult{HW: s1.HW, Seed: s1.Seed, Points: []SweepPoint{s1.Points[0]}}
	bad.Points[0].Outcome.TimeSec *= 2
	if _, err := MergeShards(steps, s0, s1, bad); err == nil || !strings.Contains(err.Error(), "disagreement") {
		t.Fatalf("merge with disagreeing rung = %v; want disagreement error", err)
	}
}

// TestRunSweepOptionValidation pins the option-combination errors.
func TestRunSweepOptionValidation(t *testing.T) {
	hw := arch.CROPHE36
	if _, err := RunSweep(context.Background(), hw, 1, 4, shardRunner, WithShard(3, 2)); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := RunSweep(context.Background(), hw, 1, 4, shardRunner, WithShard(0, -1)); err == nil {
		t.Fatal("negative shard count accepted")
	}
	observe := func(SweepPoint) {}
	if _, err := RunSweep(context.Background(), hw, 1, 4, shardRunner, WithParallel(), WithJournal(observe)); err == nil {
		t.Fatal("parallel + journal accepted")
	}
}

// TestRunSweepModesAgree: sequential (default), parallel, and the
// deprecated wrappers all produce the identical result — the determinism
// the distributed merge rests on.
func TestRunSweepModesAgree(t *testing.T) {
	leakcheck.Check(t)
	hw := arch.CROPHE36
	const seed, steps = 23, 5
	seq, err := RunSweep(context.Background(), hw, seed, steps, shardRunner)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweep(context.Background(), hw, seed, steps, shardRunner, WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	old, err := Sweep(hw, seed, steps, shardRunner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) || !reflect.DeepEqual(seq, old) {
		t.Fatal("sequential, parallel and deprecated Sweep results differ")
	}
}

// TestShardResumeSplicesDone: a shard resumed over journaled rungs must
// not re-run them.
func TestShardResumeSplicesDone(t *testing.T) {
	leakcheck.Check(t)
	hw := arch.CROPHE36
	const seed, steps = 29, 8
	shard, err := RunSweep(context.Background(), hw, seed, steps, shardRunner, WithShard(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	done := map[int]SweepPoint{
		shard.Points[0].Step: shard.Points[0],
		shard.Points[1].Step: shard.Points[1],
	}
	var observed []int
	resumed, err := RunSweep(context.Background(), hw, seed, steps, shardRunner,
		WithShard(1, 2), WithResume(done), WithJournal(func(pt SweepPoint) { observed = append(observed, pt.Step) }))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, shard) {
		t.Fatal("resumed shard differs from uninterrupted shard")
	}
	want := []int{5, 7}
	if !reflect.DeepEqual(observed, want) {
		t.Fatalf("observed rungs %v; want only the not-done steps %v", observed, want)
	}
}

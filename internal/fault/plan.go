package fault

import (
	"fmt"
	"math/rand"

	"crophe/internal/arch"
	"crophe/internal/noc"
)

// Link identifies one mesh link by its lexically smaller endpoint and
// direction, plus the surviving bandwidth factor (0 = dead).
type Link struct {
	From   noc.Coord
	Dir    byte // 'E' or 'S' (links are bidirectional; one name per link)
	Factor float64
}

// Stall is one transient stall event injected into the simulation.
type Stall struct {
	Cycles float64
}

// Plan is the concrete, seeded instantiation of a Spec against one mesh
// geometry: which rows, links and banks fail. Plans are value types;
// applying one never mutates it.
type Plan struct {
	Seed  int64
	Spec  Spec
	MeshW int
	MeshH int

	FailedRows []int  // sorted physical row indices
	DeadLinks  []Link // Factor 0
	SlowLinks  []Link // Factor = Spec.SlowFactor
	DeadBanks  int
	HBMFrac    float64 // surviving HBM bandwidth (1 = healthy)
	LaneFrac   float64 // failed lane fraction per PE
	Stalls     []Stall
	StallProb  float64

	// Silent-data-corruption dimensions. FlipRate is the per-access
	// bit-flip rate the integrity layer must detect; ScrubPeriod > 0
	// bounds how long a flipped cell persists. QuarantinedBanks are the
	// buffer banks whose corruption is persistent (unscrubbed machines
	// only): the recovery policy treats them like disabled banks.
	FlipRate         float64
	ScrubPeriod      int
	QuarantinedBanks []int // sorted bank indices; empty when scrubbed or clean
}

// Per-dimension stream salts: each fault dimension draws from its own
// seeded stream, so changing the count of one dimension never reshuffles
// another — and a (spec, seed) with k failures of a resource is always a
// strict subset of the same seed with k+1 (see TestPlanPrefixNesting).
const (
	saltRows   = 0x726f7773 // "rows"
	saltLinks  = 0x6c696e6b // "link"
	saltSlow   = 0x736c6f77 // "slow"
	saltStalls = 0x7374616c // "stal"
	saltFlip   = 0x666c6970 // "flip"
)

func dimRand(seed int64, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ salt))
}

// meshLinks enumerates every undirected link of a w×h mesh in a fixed
// deterministic order (row-major, E before S).
func meshLinks(w, h int) []Link {
	var out []Link
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w-1 {
				out = append(out, Link{From: noc.Coord{X: x, Y: y}, Dir: 'E'})
			}
			if y < h-1 {
				out = append(out, Link{From: noc.Coord{X: x, Y: y}, Dir: 'S'})
			}
		}
	}
	return out
}

// Generate instantiates a spec against a hardware configuration's mesh
// under a seed. It rejects specs that name more resources than the
// machine has — that is a caller bug, not a degraded machine.
func Generate(hw *arch.HWConfig, spec Spec, seed int64) (Plan, error) {
	meshW, meshH := hw.MeshW, hw.MeshH
	if meshW < 1 || meshH < 1 {
		// Baselines without an explicit mesh: model as a single row, the
		// same shape the simulator falls back to.
		meshW, meshH = hw.NumPEs, 1
		if meshW > 64 {
			meshW = 64
		}
	}
	p := Plan{Seed: seed, Spec: spec, MeshW: meshW, MeshH: meshH, HBMFrac: 1}

	if spec.FailedRows > meshH {
		return p, fmt.Errorf("fault: spec fails %d rows but the %dx%d mesh has %d (seed %d)",
			spec.FailedRows, meshW, meshH, meshH, seed)
	}
	links := meshLinks(meshW, meshH)
	if spec.DeadLinks+spec.SlowLinks > len(links) {
		return p, fmt.Errorf("fault: spec degrades %d links but the %dx%d mesh has %d (seed %d)",
			spec.DeadLinks+spec.SlowLinks, meshW, meshH, len(links), seed)
	}
	if spec.DeadBanks >= bufBanks {
		return p, fmt.Errorf("fault: spec disables %d of %d global-buffer banks — none left (seed %d)",
			spec.DeadBanks, bufBanks, seed)
	}
	if spec.FlipRate < 0 || spec.FlipRate >= 1 {
		return p, fmt.Errorf("fault: flip rate %g outside [0, 1) (seed %d)", spec.FlipRate, seed)
	}
	if spec.ScrubPeriod < 0 {
		return p, fmt.Errorf("fault: scrub period %d is negative (seed %d)", spec.ScrubPeriod, seed)
	}
	quarantine := quarantineCount(spec)
	if spec.DeadBanks+quarantine >= bufBanks {
		return p, fmt.Errorf("fault: %d dead + %d quarantined of %d global-buffer banks — none left (seed %d)",
			spec.DeadBanks, quarantine, bufBanks, seed)
	}

	// Failed rows: a seeded permutation of row indices, prefix-selected.
	rowPerm := dimRand(seed, saltRows).Perm(meshH)
	p.FailedRows = append(p.FailedRows, rowPerm[:spec.FailedRows]...)
	sortInts(p.FailedRows)

	// Dead links: prefix of a seeded link permutation. Slow links draw
	// from their own stream and skip links already dead, so both sets
	// nest independently under their own counts.
	linkPerm := dimRand(seed, saltLinks).Perm(len(links))
	dead := map[int]bool{}
	for _, li := range linkPerm[:spec.DeadLinks] {
		dead[li] = true
		p.DeadLinks = append(p.DeadLinks, links[li])
	}
	slowPerm := dimRand(seed, saltSlow).Perm(len(links))
	for _, li := range slowPerm {
		if len(p.SlowLinks) == spec.SlowLinks {
			break
		}
		if dead[li] {
			continue
		}
		l := links[li]
		l.Factor = spec.SlowFactor
		p.SlowLinks = append(p.SlowLinks, l)
	}

	p.DeadBanks = spec.DeadBanks
	if spec.HBMFrac > 0 {
		p.HBMFrac = spec.HBMFrac
	}
	p.LaneFrac = spec.LaneFrac
	p.StallProb = spec.StallProb
	p.FlipRate = spec.FlipRate
	p.ScrubPeriod = spec.ScrubPeriod

	// Quarantined banks: on an unscrubbed machine a fraction of the
	// flip-afflicted banks develop persistent (stuck) corruption; the
	// recovery policy escalates those from recompute to quarantine, which
	// the scheduler then prices exactly like disabled banks. Prefix of a
	// seeded permutation, so quarantine sets nest as the rate escalates.
	if quarantine > 0 {
		bankPerm := dimRand(seed, saltFlip).Perm(bufBanks)
		p.QuarantinedBanks = append(p.QuarantinedBanks, bankPerm[:quarantine]...)
		sortInts(p.QuarantinedBanks)
	}

	// Stall events: seeded durations around the spec's nominal length
	// (0.5×–1.5×), drawn one at a time so stall lists nest by count.
	stallRand := dimRand(seed, saltStalls)
	for i := 0; i < spec.Stalls; i++ {
		p.Stalls = append(p.Stalls, Stall{Cycles: spec.StallCycles * (0.5 + stallRand.Float64())})
	}
	return p, nil
}

// Derating folds the plan into surviving-resource fractions — the
// effective-resource view the scheduler's analytical model consumes.
func (p *Plan) Derating() arch.Derating {
	d := arch.Healthy()
	if p.MeshH > 0 {
		d.PEs = float64(p.MeshH-len(p.FailedRows)) / float64(p.MeshH)
	}
	d.Lane = 1 - p.LaneFrac
	total := float64(len(meshLinks(p.MeshW, p.MeshH)))
	if total > 0 {
		lost := float64(len(p.DeadLinks))
		for _, l := range p.SlowLinks {
			lost += 1 - l.Factor
		}
		d.NoC = 1 - lost/total
	}
	d.SRAM = float64(bufBanks-p.DeadBanks-len(p.QuarantinedBanks)) / float64(bufBanks)
	d.DRAM = p.HBMFrac
	return d
}

// FaultCount is the total number of discrete injected faults — the
// x-axis of a resilience sweep. Quarantined banks count: each is a
// persistent corruption the recovery layer had to take out of service.
func (p *Plan) FaultCount() int {
	return len(p.FailedRows) + len(p.DeadLinks) + len(p.SlowLinks) + p.DeadBanks +
		len(p.Stalls) + len(p.QuarantinedBanks)
}

// quarantineCount is the number of buffer banks with persistent
// corruption under a spec: scrubbing (scrub:P) clears latent flips
// before they stick, so only unscrubbed machines quarantine banks.
func quarantineCount(spec Spec) int {
	if spec.FlipRate <= 0 || spec.ScrubPeriod > 0 {
		return 0
	}
	return int(spec.FlipRate * float64(bufBanks) / 2)
}

package fault

import (
	"math"

	"crophe/internal/telemetry"
)

// Modeled silent-data-corruption recovery. The real ABFT kernels in
// internal/ntt and internal/rns detect and recompute corrupted limbs at
// nanosecond scale; the simulator does not execute those kernels, so a
// Machine with flip:R injected instead *prices* the recovery protocol
// deterministically from the memory-traffic totals the simulation
// already produces. The same (spec, seed, workload) always yields the
// same detected/recomputed/escalated counts and the same cycle
// penalty, which keeps resilience sweeps monotone and byte-identical.

// Modeled recovery costs, in cycles. A recompute replays one checked
// unit (a limb-sized NTT batch) from fresh scratch; a scrub pass walks
// the global buffer once per scrub period.
const (
	sdcRecomputeCycles = 48
	sdcScrubCycles     = 128
)

// SDCStats is the priced outcome of the detect → recompute → escalate
// protocol over one simulation: how many checked memory accesses ran,
// how many flips the checksums caught, how many recomputes cleared
// them, and how many corruptions were persistent enough to escalate to
// bank quarantine. Cycle fields are the time the recovery cost.
type SDCStats struct {
	Checks     float64
	Detected   float64
	Recomputed float64
	Escalated  float64

	RecomputeCycles float64
	ScrubCycles     float64
}

// PenaltyCycles is the total simulated-cycle cost of recovery.
func (s SDCStats) PenaltyCycles() float64 { return s.RecomputeCycles + s.ScrubCycles }

// ModelSDC prices the integrity protocol for a simulation that issued
// the given HBM burst and SRAM access totals over the given cycle
// count. Every burst and bank access is a checked unit; the flip rate
// determines how many checks detect corruption, each detection costs a
// bounded recompute, and on an unscrubbed machine the quarantined
// banks are the escalations. With flip:0 the stats are all zero.
func (m *Machine) ModelSDC(hbmBursts, sramAccesses, cycles float64) SDCStats {
	p := &m.Plan
	var s SDCStats
	if p.FlipRate <= 0 {
		return s
	}
	s.Checks = hbmBursts + sramAccesses
	s.Detected = math.Floor(p.FlipRate * s.Checks)
	s.Recomputed = s.Detected
	s.Escalated = float64(len(p.QuarantinedBanks))
	s.RecomputeCycles = s.Detected * sdcRecomputeCycles
	if p.ScrubPeriod > 0 && cycles > 0 {
		s.ScrubCycles = math.Ceil(cycles/float64(p.ScrubPeriod)) * sdcScrubCycles
	}
	return s
}

// EmitCounters publishes the recovery outcome under integrity/*.
func (s SDCStats) EmitCounters(c *telemetry.Collector) {
	if !c.Enabled() {
		return
	}
	c.EmitCounter("integrity/checks", s.Checks)
	c.EmitCounter("integrity/detected", s.Detected)
	c.EmitCounter("integrity/recomputed", s.Recomputed)
	c.EmitCounter("integrity/escalated", s.Escalated)
}

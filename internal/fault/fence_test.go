package fault

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"crophe/internal/arch"
)

// TestMergeShardsFenced: shards at the merging coordinator's epoch fold
// exactly like MergeShards; a shard from a superseded (zombie) epoch
// fails the merge with the typed sentinel; nil results are skipped.
func TestMergeShardsFenced(t *testing.T) {
	hw := arch.CROPHE36
	const seed, steps = 19, 4
	s0, err := RunSweep(context.Background(), hw, seed, steps, shardRunner, WithShard(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunSweep(context.Background(), hw, seed, steps, shardRunner, WithShard(1, 2))
	if err != nil {
		t.Fatal(err)
	}

	const epoch = 2
	want, err := MergeShards(steps, s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeShardsFenced(steps, epoch,
		FencedShard{Epoch: epoch, Result: s0},
		FencedShard{Epoch: epoch}, // nil result: a shard never produced
		FencedShard{Epoch: epoch, Result: s1})
	if err != nil {
		t.Fatalf("fenced merge at matching epoch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fenced merge differs from plain MergeShards at the same epoch")
	}

	// A zombie's shard — produced under the pre-takeover epoch — must be
	// rejected loudly, never folded in.
	_, err = MergeShardsFenced(steps, epoch,
		FencedShard{Epoch: epoch, Result: s0},
		FencedShard{Epoch: epoch - 1, Result: s1})
	if !errors.Is(err, ErrStaleShardEpoch) {
		t.Fatalf("stale-epoch shard merged: err = %v; want ErrStaleShardEpoch", err)
	}
}

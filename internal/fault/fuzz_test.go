package fault

import (
	"testing"

	"crophe/internal/arch"
)

// FuzzParseSpec hammers the fault-spec grammar: anything that parses
// must render back to a string that re-parses to the identical spec,
// and any feasible parsed spec must generate deterministic plans whose
// quarantine set is seed-stable.
func FuzzParseSpec(f *testing.F) {
	f.Add("healthy")
	f.Add("rows:2,links:3")
	f.Add("rows:1,lanes:0.25,links:3,slow:2@0.5,banks:8,hbm:0.75,stalls:4@200,stallp:0.1,flip:0.01,scrub:256")
	f.Add("flip:0.5")
	f.Add("scrub:1024")
	f.Add("flip:1")
	f.Add("flip:0.1,flip:0.2")
	f.Add("scrub:-1")
	f.Add(",,")
	f.Add("rows:9999999999999999999")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return // malformed input is allowed to fail; it must not panic
		}
		// String() must be a re-parsable fixpoint. (Struct equality is too
		// strong: a zero-count field keeps its parsed factor — "slow:0@0.1"
		// — but renders to nothing, which is the intended normalization.)
		rendered := s.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("%q rendered to %q which does not re-parse: %v", text, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("%q: String not a fixpoint: %q then %q", text, rendered, got)
		}
		if again.IsZero() != (rendered == "healthy") {
			t.Fatalf("%q: IsZero=%v but renders %q", text, again.IsZero(), rendered)
		}

		// Feasible specs must plan deterministically.
		p1, err1 := Generate(arch.CROPHE64, s, 17)
		p2, err2 := Generate(arch.CROPHE64, s, 17)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: generation determinism broken: %v vs %v", text, err1, err2)
		}
		if err1 != nil {
			return
		}
		if p1.FlipRate != s.FlipRate || p1.ScrubPeriod != s.ScrubPeriod {
			t.Fatalf("%q: plan dropped flip/scrub: %+v", text, p1)
		}
		if len(p1.QuarantinedBanks) != len(p2.QuarantinedBanks) {
			t.Fatalf("%q: quarantine not deterministic", text)
		}
		for i := range p1.QuarantinedBanks {
			if p1.QuarantinedBanks[i] != p2.QuarantinedBanks[i] {
				t.Fatalf("%q: quarantine not deterministic at %d", text, i)
			}
		}
		if s.ScrubPeriod > 0 && len(p1.QuarantinedBanks) != 0 {
			t.Fatalf("%q: scrubbed plan quarantined banks", text)
		}
	})
}

package fault

import (
	"errors"
	"strings"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/telemetry"
)

func TestQuarantineDeterministicAndNested(t *testing.T) {
	// Unscrubbed flips quarantine a seeded prefix of banks: the same
	// (spec, seed) always picks the same banks, and a higher flip rate
	// quarantines a superset — the property that keeps escalating
	// resilience sweeps monotone.
	const seed = 31
	specLo := Spec{FlipRate: 0.125}
	specHi := Spec{FlipRate: 0.5}
	a, err := Generate(arch.CROPHE64, specLo, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(arch.CROPHE64, specLo, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.QuarantinedBanks) == 0 {
		t.Fatal("unscrubbed flip:0.125 quarantined no banks")
	}
	for i := range a.QuarantinedBanks {
		if a.QuarantinedBanks[i] != b.QuarantinedBanks[i] {
			t.Fatalf("same seed, different quarantine: %v vs %v", a.QuarantinedBanks, b.QuarantinedBanks)
		}
	}
	hi, err := Generate(arch.CROPHE64, specHi, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi.QuarantinedBanks) <= len(a.QuarantinedBanks) {
		t.Fatalf("flip:0.5 quarantined %d banks, flip:0.125 quarantined %d", len(hi.QuarantinedBanks), len(a.QuarantinedBanks))
	}
	set := make(map[int]bool, len(hi.QuarantinedBanks))
	for _, bank := range hi.QuarantinedBanks {
		set[bank] = true
	}
	for _, bank := range a.QuarantinedBanks {
		if !set[bank] {
			t.Fatalf("bank %d quarantined at flip:0.125 but not at flip:0.5", bank)
		}
	}
}

func TestScrubbingPreventsQuarantine(t *testing.T) {
	// With a scrub period set, flips are cleaned before they persist, so
	// no bank is quarantined and the SRAM derating stays full.
	p, err := Generate(arch.CROPHE64, Spec{FlipRate: 0.5, ScrubPeriod: 256}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.QuarantinedBanks) != 0 {
		t.Fatalf("scrubbed plan quarantined banks: %v", p.QuarantinedBanks)
	}
	if d := p.Derating(); d.SRAM != 1 {
		t.Fatalf("scrubbed plan derated SRAM to %g", d.SRAM)
	}
}

func TestQuarantineExhaustsBanks(t *testing.T) {
	// Dead banks plus quarantined banks covering every bank is
	// infeasible at plan time, and the error carries the fault seed.
	spec := Spec{DeadBanks: bufBanks - 1, FlipRate: 0.9}
	_, err := Generate(arch.CROPHE64, spec, 5)
	if err == nil {
		t.Fatal("plan with every bank down or quarantined generated")
	}
	if !strings.Contains(err.Error(), "seed 5") {
		t.Fatalf("error misses the seed: %v", err)
	}
	// The same exhaustion assembled directly into a plan is a dead
	// machine at validation time.
	p, err := Generate(arch.CROPHE64, Spec{FlipRate: 0.9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	p.DeadBanks = bufBanks - len(p.QuarantinedBanks)
	if _, err := NewMachine(arch.CROPHE64, p); !errors.Is(err, ErrMachineDead) {
		t.Fatalf("want ErrMachineDead, got %v", err)
	}
}

func TestQuarantineDerating(t *testing.T) {
	p, err := Generate(arch.CROPHE64, Spec{DeadBanks: 4, FlipRate: 0.25}, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := len(p.QuarantinedBanks)
	if q == 0 {
		t.Fatal("no banks quarantined at flip:0.25")
	}
	want := float64(bufBanks-4-q) / float64(bufBanks)
	if d := p.Derating(); d.SRAM != want {
		t.Fatalf("SRAM derating %g, want %g", d.SRAM, want)
	}
	m, err := NewMachine(arch.CROPHE64, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Describe(), "quarantined") {
		t.Fatalf("Describe misses quarantine: %s", m.Describe())
	}
	tel := telemetry.New()
	m.EmitCounters(tel)
	if tel.Counter("fault/quarantined_banks") != float64(q) {
		t.Fatalf("fault/quarantined_banks = %g, want %d", tel.Counter("fault/quarantined_banks"), q)
	}
	if tel.Counter("fault/flip_rate") != 0.25 {
		t.Fatalf("fault/flip_rate = %g", tel.Counter("fault/flip_rate"))
	}
}

func TestModelSDCDeterministicAndMonotone(t *testing.T) {
	mk := func(spec Spec) *Machine {
		t.Helper()
		p, err := Generate(arch.CROPHE64, spec, 13)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(arch.CROPHE64, p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	clean := mk(Spec{})
	if s := clean.ModelSDC(1e6, 1e7, 1e5); s != (SDCStats{}) {
		t.Fatalf("clean machine priced recovery: %+v", s)
	}

	lo := mk(Spec{FlipRate: 0.001})
	hi := mk(Spec{FlipRate: 0.01})
	sLo := lo.ModelSDC(1e6, 1e7, 1e5)
	if sLo != lo.ModelSDC(1e6, 1e7, 1e5) {
		t.Fatal("ModelSDC not deterministic")
	}
	sHi := hi.ModelSDC(1e6, 1e7, 1e5)
	if sLo.Checks != 1e6+1e7 {
		t.Fatalf("checks = %g, want every burst and access", sLo.Checks)
	}
	if sLo.Detected <= 0 || sHi.Detected <= sLo.Detected {
		t.Fatalf("detections not monotone in flip rate: %g then %g", sLo.Detected, sHi.Detected)
	}
	if sLo.Recomputed != sLo.Detected {
		t.Fatalf("recomputed %g != detected %g", sLo.Recomputed, sLo.Detected)
	}
	if sLo.Escalated != float64(len(lo.Plan.QuarantinedBanks)) {
		t.Fatalf("escalated %g, want quarantined bank count %d", sLo.Escalated, len(lo.Plan.QuarantinedBanks))
	}
	if sLo.PenaltyCycles() != sLo.RecomputeCycles {
		t.Fatalf("unscrubbed penalty %g includes scrub cycles", sLo.PenaltyCycles())
	}

	scrubbed := mk(Spec{FlipRate: 0.001, ScrubPeriod: 1000})
	sScrub := scrubbed.ModelSDC(1e6, 1e7, 1e5)
	if sScrub.ScrubCycles <= 0 {
		t.Fatalf("scrubbed machine priced no scrub passes: %+v", sScrub)
	}
	if sScrub.Escalated != 0 {
		t.Fatalf("scrubbed machine escalated: %+v", sScrub)
	}
	if sScrub.PenaltyCycles() != sScrub.RecomputeCycles+sScrub.ScrubCycles {
		t.Fatal("penalty does not sum recompute and scrub cycles")
	}

	tel := telemetry.New()
	sHi.EmitCounters(tel)
	if tel.Counter("integrity/detected") != sHi.Detected || tel.Counter("integrity/checks") != sHi.Checks {
		t.Fatalf("integrity counters %+v", tel.CounterMap())
	}
	SDCStats{}.EmitCounters(nil) // disabled path is a no-op
}

package fault

import (
	"errors"
	"fmt"
)

// Epoch-fenced shard merging. A distributed sweep's shards are produced
// under a coordinator epoch; when a standby coordinator takes over it
// bumps the epoch, and results a superseded (zombie) coordinator is
// still holding must never fold into the merge. MergeShardsFenced is
// the library-level enforcement of that rule for callers assembling
// shard results themselves — the serving layer additionally fences at
// the RPC and journal layers.

// ErrStaleShardEpoch marks a shard produced under a superseded
// coordinator epoch. Test with errors.Is.
var ErrStaleShardEpoch = errors.New("fault: shard carries a stale coordinator epoch")

// FencedShard pairs a shard result with the coordinator epoch it was
// produced under.
type FencedShard struct {
	Epoch  int64
	Result *SweepResult
}

// MergeShardsFenced merges shard results exactly like MergeShards, but
// first rejects any shard whose epoch differs from the merging
// coordinator's — wrapping ErrStaleShardEpoch, so a zombie's late
// output fails loudly instead of corrupting the merged report. Shards
// with a nil Result are skipped, matching MergeShards.
func MergeShardsFenced(steps int, epoch int64, shards ...FencedShard) (*SweepResult, error) {
	results := make([]*SweepResult, 0, len(shards))
	for i, sh := range shards {
		if sh.Result == nil {
			continue
		}
		if sh.Epoch != epoch {
			return nil, fmt.Errorf("shard %d (seed %d) produced at epoch %d, merge is at epoch %d: %w",
				i, sh.Result.Seed, sh.Epoch, epoch, ErrStaleShardEpoch)
		}
		results = append(results, sh.Result)
	}
	return MergeShards(steps, results...)
}

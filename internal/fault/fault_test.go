package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"crophe/internal/arch"
	"crophe/internal/leakcheck"
	"crophe/internal/mem"
	"crophe/internal/noc"
	"crophe/internal/telemetry"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"rows:2",
		"rows:2,links:3",
		"rows:1,lanes:0.25,links:3,slow:2@0.5,banks:8,hbm:0.75,stalls:4@200,stallp:0.1",
		"rows:1,lanes:0.25,links:3,slow:2@0.5,banks:8,hbm:0.75,stalls:4@200,stallp:0.1,flip:0.01,scrub:256",
		"flip:0.5",
		"scrub:1024",
		"healthy",
		"",
	}
	for _, text := range cases {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s.String(), text, err)
		}
		if s != again {
			t.Fatalf("%q: round trip %+v != %+v", text, s, again)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	bad := []string{
		"rows",              // no value
		"rows:x",            // not a number
		"rows:-1",           // negative
		"lanes:1.5",         // fraction out of range
		"lanes:1",           // lanes:1 kills every lane — out of [0,1)
		"slow:2",            // missing @factor
		"slow:2@1.5",        // factor out of range
		"slow:2@0",          // zero factor
		"hbm:0",             // zero HBM
		"stalls:3@0",        // zero duration
		"warp:9",            // unknown field
		"rows:1,rows:2",     // duplicate
		"rows:1,,links:2",   // empty field
		"flip:1",            // flip rate out of [0,1)
		"flip:-0.1",         // negative flip rate
		"flip:x",            // not a number
		"scrub:-1",          // negative scrub period
		"scrub:1.5",         // non-integer period
		"flip:0.1,flip:0.2", // duplicate flip
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("%q: parsed without error", text)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	spec, err := ParseSpec("rows:2,links:4,slow:3@0.5,banks:8,hbm:0.8,stalls:3@100")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(arch.CROPHE64, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(arch.CROPHE64, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	c, err := Generate(arch.CROPHE64, spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.FailedRows, c.FailedRows) && reflect.DeepEqual(a.DeadLinks, c.DeadLinks) {
		t.Fatal("different seeds picked identical rows and links")
	}
}

func TestPlanPrefixNesting(t *testing.T) {
	// Under one seed, a spec with k failures of a resource must fail a
	// subset of the k+1 spec's resources — the property that makes
	// escalating sweeps monotone.
	const seed = 7
	prevRows := map[int]bool{}
	prevLinks := map[Link]bool{}
	for k := 0; k <= 4; k++ {
		spec := Spec{FailedRows: k, DeadLinks: 3 * k, SlowLinks: 2 * k, SlowFactor: 0.5}
		p, err := Generate(arch.CROPHE64, spec, seed)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		rows := map[int]bool{}
		for _, r := range p.FailedRows {
			rows[r] = true
		}
		for r := range prevRows {
			if !rows[r] {
				t.Fatalf("k=%d: row %d failed at k-1 but not at k", k, r)
			}
		}
		links := map[Link]bool{}
		for _, l := range p.DeadLinks {
			links[l] = true
		}
		for l := range prevLinks {
			if !links[l] {
				t.Fatalf("k=%d: link %+v dead at k-1 but not at k", k, l)
			}
		}
		prevRows, prevLinks = rows, links
	}
}

func TestGenerateRejectsOversizedSpecs(t *testing.T) {
	cases := []Spec{
		{FailedRows: arch.CROPHE64.MeshH + 1},
		{DeadLinks: 10000},
		{DeadBanks: bufBanks},
	}
	for _, spec := range cases {
		if _, err := Generate(arch.CROPHE64, spec, 1); err == nil {
			t.Errorf("spec %+v generated a plan", spec)
		} else if !strings.Contains(err.Error(), "seed") {
			t.Errorf("spec %+v: error does not carry the seed: %v", spec, err)
		}
	}
}

func TestDeratingReflectsPlan(t *testing.T) {
	spec := Spec{FailedRows: 2, LaneFrac: 0.25, DeadBanks: 16, HBMFrac: 0.5}
	p, err := Generate(arch.CROPHE64, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Derating()
	if d.PEs != 0.75 { // 2 of 8 rows failed
		t.Fatalf("PE derating %g want 0.75", d.PEs)
	}
	if d.Lane != 0.75 {
		t.Fatalf("lane derating %g want 0.75", d.Lane)
	}
	if d.SRAM != 0.75 { // 16 of 64 banks
		t.Fatalf("SRAM derating %g want 0.75", d.SRAM)
	}
	if d.DRAM != 0.5 {
		t.Fatalf("DRAM derating %g want 0.5", d.DRAM)
	}
	if d.NoC != 1 {
		t.Fatalf("NoC derating %g want 1 (no link faults)", d.NoC)
	}
	healthy, err := Generate(arch.CROPHE64, Spec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Derating() != arch.Healthy() {
		t.Fatalf("healthy plan derates: %+v", healthy.Derating())
	}
}

func TestMachineValidateDeadMachines(t *testing.T) {
	mkPlan := func(mutate func(*Plan)) Plan {
		p, err := Generate(arch.CROPHE64, Spec{}, 9)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&p)
		return p
	}
	cases := []struct {
		name string
		plan Plan
	}{
		{"all rows failed", mkPlan(func(p *Plan) { p.FailedRows = []int{0, 1, 2, 3, 4, 5, 6, 7} })},
		{"all banks dead", mkPlan(func(p *Plan) { p.DeadBanks = bufBanks })},
		{"HBM zeroed", mkPlan(func(p *Plan) { p.HBMFrac = 0 })},
		{"all lanes gone", mkPlan(func(p *Plan) { p.LaneFrac = 1 })},
	}
	for _, tc := range cases {
		_, err := NewMachine(arch.CROPHE64, tc.plan)
		if err == nil {
			t.Errorf("%s: machine accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrMachineDead) {
			t.Errorf("%s: want ErrMachineDead, got %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), "seed 9") {
			t.Errorf("%s: error does not carry the seed: %v", tc.name, err)
		}
	}
}

func TestMachineValidatePartitionedMesh(t *testing.T) {
	// Cut the entire column boundary between x=0 and x=1 on a healthy
	// plan: the mesh splits in two, which must be rejected.
	p, err := Generate(arch.CROPHE64, Spec{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < p.MeshH; y++ {
		p.DeadLinks = append(p.DeadLinks, Link{From: noc.Coord{X: 0, Y: y}, Dir: 'E'})
	}
	_, err = NewMachine(arch.CROPHE64, p)
	if !errors.Is(err, ErrMachineDead) {
		t.Fatalf("partitioned mesh: want ErrMachineDead, got %v", err)
	}
}

func TestMachineAppliesToModels(t *testing.T) {
	spec, err := ParseSpec("rows:1,links:2,slow:1@0.5,banks:8,hbm:0.8")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Generate(arch.CROPHE64, spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}

	mesh, err := noc.NewMesh(plan.MeshW, plan.MeshH, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyToMesh(mesh); err != nil {
		t.Fatal(err)
	}
	if mesh.DeadLinks() != 2 || mesh.SlowLinks() != 1 {
		t.Fatalf("mesh got %d dead, %d slow links", mesh.DeadLinks(), mesh.SlowLinks())
	}
	// Geometry mismatch is rejected.
	small, _ := noc.NewMesh(2, 2, 64, 1)
	if err := m.ApplyToMesh(small); err == nil {
		t.Fatal("geometry mismatch accepted")
	}

	hbm, _ := mem.NewHBM(1, 1)
	if err := m.ApplyToHBM(hbm); err != nil {
		t.Fatal(err)
	}
	if hbm.ThrottleFactor() != 0.8 {
		t.Fatalf("HBM throttle %g want 0.8", hbm.ThrottleFactor())
	}

	sram, _ := mem.NewSRAM(512, 39, 1.2, bufBanks)
	if err := m.ApplyToSRAM(sram); err != nil {
		t.Fatal(err)
	}
	if sram.EffectiveBanks() != bufBanks-8 {
		t.Fatalf("SRAM banks %d want %d", sram.EffectiveBanks(), bufBanks-8)
	}

	if got := m.FailedRows(); len(got) != 1 {
		t.Fatalf("failed rows %v want 1 row", got)
	}
	eff := m.EffectiveHW()
	if eff.NumPEs >= arch.CROPHE64.NumPEs {
		t.Fatalf("effective PEs %d not reduced from %d", eff.NumPEs, arch.CROPHE64.NumPEs)
	}
	if !strings.Contains(m.Describe(), "seed 11") {
		t.Fatalf("Describe misses the seed: %s", m.Describe())
	}
}

func TestStallSamplerDeterministic(t *testing.T) {
	spec, err := ParseSpec("stalls:3@100,stallp:0.5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Generate(arch.CROPHE64, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []float64 {
		ss := m.StallSampler()
		out := make([]float64, 20)
		for i := range out {
			out[i] = ss.Next()
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stall streams differ:\n%v\n%v", a, b)
	}
	// The three fixed events come first and land in [50, 150).
	for i := 0; i < 3; i++ {
		if a[i] < 50 || a[i] >= 150 {
			t.Fatalf("fixed stall %d = %g outside [50, 150)", i, a[i])
		}
	}
	count, total := 0, 0.0
	ss := m.StallSampler()
	for i := 0; i < 20; i++ {
		ss.Next()
	}
	count, total = ss.Injected()
	if count < 3 || total <= 0 {
		t.Fatalf("injected %d stalls totalling %g", count, total)
	}
}

func TestMachineEmitCounters(t *testing.T) {
	plan, err := Generate(arch.CROPHE64, Spec{FailedRows: 2, DeadLinks: 1, DeadBanks: 4}, 21)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(arch.CROPHE64, plan)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	m.EmitCounters(tel)
	if tel.Counter("fault/seed") != 21 {
		t.Fatalf("fault/seed = %g", tel.Counter("fault/seed"))
	}
	if tel.Counter("fault/failed_rows") != 2 || tel.Counter("fault/dead_links") != 1 {
		t.Fatalf("counters %+v", tel.CounterMap())
	}
	m.EmitCounters(nil) // disabled path is a no-op
}

func TestSweepDeterministicAndMonotone(t *testing.T) {
	leakcheck.Check(t)
	// A runner that scores the machine analytically: effective compute ×
	// bandwidth. Slower on every derated resource, so the sweep must be
	// monotone non-increasing in retained throughput.
	runner := func(m *Machine) (Outcome, error) {
		eff := m.EffectiveHW()
		score := float64(eff.NumPEs*eff.Lanes) * eff.DRAMBandwidthTBs * eff.SRAMBandwidthTBs
		return Outcome{TimeSec: 1e15 / score}, nil
	}
	a, err := Sweep(arch.CROPHE64, 99, 6, runner)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(arch.CROPHE64, 99, 6, runner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different sweeps")
	}
	if len(a.Points) != 6 {
		t.Fatalf("%d points want 6", len(a.Points))
	}
	if a.Points[0].FracFailed != 0 || a.Points[0].FaultCount != 0 {
		t.Fatalf("rung 0 not healthy: %+v", a.Points[0])
	}
	prev := 2.0
	for i := range a.Points {
		pt := &a.Points[i]
		if pt.Err != "" {
			t.Fatalf("rung %d infeasible: %s", i, pt.Err)
		}
		r := pt.Retained(a.Baseline)
		if r > prev+1e-9 {
			t.Fatalf("retained throughput rose at rung %d: %g after %g", i, r, prev)
		}
		prev = r
		if i > 0 && pt.FaultCount < a.Points[i-1].FaultCount {
			t.Fatalf("fault count shrank at rung %d", i)
		}
	}
	report := a.String()
	for _, want := range []string{"resilience sweep", "seed 99", "retained"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report misses %q:\n%s", want, report)
		}
	}
}

// Package fault is the deterministic fault-injection subsystem: it
// degrades the modeled CROPHE chip — failed PE rows, downed or slowed
// mesh links, disabled global-buffer banks, throttled HBM, transient
// stall events — and threads the degradation through the whole stack.
// A textual Spec says *how much* fails; a seeded Plan decides *which*
// concrete resources fail; a Machine binds a plan to a hardware
// configuration and hands each layer its view: the scheduler gets a
// derated arch.HWConfig (degraded-mode scheduling falls out of the
// normal search), the simulator gets structural faults applied to its
// mesh/HBM/SRAM models plus a seeded stall sampler, and telemetry gets
// fault counters and trace spans.
//
// Everything is deterministic per (spec, seed, hardware): the same
// inputs always fail the same rows, links and banks, and fault sets are
// nested — a spec asking for k+1 failures of a resource fails a strict
// superset of the k-failure spec under the same seed. That nesting is
// what makes resilience sweeps monotone and bit-reproducible.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec quantifies a fault load. The zero Spec is a healthy machine.
//
// The textual grammar is a comma-separated list of fields:
//
//	rows:N      N whole PE rows failed (compute dead; routers survive)
//	lanes:F     fraction F of each surviving PE's lanes degraded
//	links:N     N mesh links downed (both directions)
//	slow:N@F    N further links running at factor F of their bandwidth
//	banks:N     N global-buffer banks disabled
//	hbm:F       HBM delivering only fraction F of peak (1 = healthy)
//	stalls:N@D  N transient stall events of ~D cycles each
//	stallp:F    additionally, each simulated group stalls with probability F
//	flip:R      silent data corruption: bit-flip rate R per SRAM-bank read / HBM burst
//	scrub:P     periodic memory scrubbing every P cycles (bounds flip persistence)
//
// e.g. "rows:2,links:3,slow:2@0.5,banks:8,hbm:0.75,stalls:4@200,flip:0.01".
type Spec struct {
	FailedRows  int
	LaneFrac    float64
	DeadLinks   int
	SlowLinks   int
	SlowFactor  float64
	DeadBanks   int
	HBMFrac     float64 // surviving HBM bandwidth fraction; 0 means "unset" (healthy)
	Stalls      int
	StallCycles float64
	StallProb   float64
	FlipRate    float64 // SDC bit-flip rate per memory access; 0 = clean
	ScrubPeriod int     // scrubbing period in cycles; 0 = no scrubbing
}

// IsZero reports a healthy (fault-free) spec.
func (s Spec) IsZero() bool {
	return s.FailedRows == 0 && s.LaneFrac == 0 && s.DeadLinks == 0 &&
		s.SlowLinks == 0 && s.DeadBanks == 0 && (s.HBMFrac == 0 || s.HBMFrac == 1) &&
		s.Stalls == 0 && s.StallProb == 0 && s.FlipRate == 0 && s.ScrubPeriod == 0
}

// String renders the spec in the ParseSpec grammar (round-trippable).
func (s Spec) String() string {
	var parts []string
	if s.FailedRows > 0 {
		parts = append(parts, fmt.Sprintf("rows:%d", s.FailedRows))
	}
	if s.LaneFrac > 0 {
		parts = append(parts, fmt.Sprintf("lanes:%g", s.LaneFrac))
	}
	if s.DeadLinks > 0 {
		parts = append(parts, fmt.Sprintf("links:%d", s.DeadLinks))
	}
	if s.SlowLinks > 0 {
		parts = append(parts, fmt.Sprintf("slow:%d@%g", s.SlowLinks, s.SlowFactor))
	}
	if s.DeadBanks > 0 {
		parts = append(parts, fmt.Sprintf("banks:%d", s.DeadBanks))
	}
	if s.HBMFrac > 0 && s.HBMFrac < 1 {
		parts = append(parts, fmt.Sprintf("hbm:%g", s.HBMFrac))
	}
	if s.Stalls > 0 {
		parts = append(parts, fmt.Sprintf("stalls:%d@%g", s.Stalls, s.StallCycles))
	}
	if s.StallProb > 0 {
		parts = append(parts, fmt.Sprintf("stallp:%g", s.StallProb))
	}
	if s.FlipRate > 0 {
		parts = append(parts, fmt.Sprintf("flip:%g", s.FlipRate))
	}
	if s.ScrubPeriod > 0 {
		parts = append(parts, fmt.Sprintf("scrub:%d", s.ScrubPeriod))
	}
	if len(parts) == 0 {
		return "healthy"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the fault grammar above. An empty string is the
// healthy spec. Unknown fields, malformed values and out-of-range
// fractions are errors.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" || text == "healthy" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return s, fmt.Errorf("fault: empty field in spec %q", text)
		}
		key, val, ok := strings.Cut(field, ":")
		if !ok {
			return s, fmt.Errorf("fault: field %q is not key:value", field)
		}
		if seen[key] {
			return s, fmt.Errorf("fault: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "rows":
			s.FailedRows, err = parseCount(key, val)
		case "lanes":
			s.LaneFrac, err = parseFrac(key, val, false)
		case "links":
			s.DeadLinks, err = parseCount(key, val)
		case "slow":
			s.SlowLinks, s.SlowFactor, err = parseCountAt(key, val)
			if err == nil && (s.SlowFactor <= 0 || s.SlowFactor >= 1) {
				err = fmt.Errorf("fault: %s factor %g outside (0, 1)", key, s.SlowFactor)
			}
		case "banks":
			s.DeadBanks, err = parseCount(key, val)
		case "hbm":
			s.HBMFrac, err = parseFrac(key, val, true)
			if err == nil && s.HBMFrac == 0 {
				err = fmt.Errorf("fault: hbm:0 would disconnect DRAM entirely; use a derated schedule instead")
			}
		case "stalls":
			var d float64
			s.Stalls, d, err = parseCountAt(key, val)
			if err == nil && d <= 0 {
				err = fmt.Errorf("fault: stall duration %g must be positive", d)
			}
			s.StallCycles = d
		case "stallp":
			s.StallProb, err = parseFrac(key, val, false)
		case "flip":
			s.FlipRate, err = parseFrac(key, val, false)
		case "scrub":
			s.ScrubPeriod, err = parseCount(key, val)
		default:
			return s, fmt.Errorf("fault: unknown field %q (want rows/lanes/links/slow/banks/hbm/stalls/stallp/flip/scrub)", key)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseCount(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("fault: %s wants a non-negative count, got %q", key, val)
	}
	return n, nil
}

func parseFrac(key, val string, closedTop bool) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f < 0 || f > 1 || (!closedTop && f == 1) {
		return 0, fmt.Errorf("fault: %s wants a fraction in [0, 1), got %q", key, val)
	}
	return f, nil
}

// parseCountAt parses "N@F" values (slow:N@F, stalls:N@D).
func parseCountAt(key, val string) (int, float64, error) {
	cnt, at, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, fmt.Errorf("fault: %s wants N@F, got %q", key, val)
	}
	n, err := strconv.Atoi(cnt)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("fault: %s wants a non-negative count, got %q", key, cnt)
	}
	f, err := strconv.ParseFloat(at, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: %s factor %q is not a number", key, at)
	}
	return n, f, nil
}

// sortInts is a tiny local helper (keeps the package free of slices.Sort
// so it builds on older toolchains too).
func sortInts(xs []int) { sort.Ints(xs) }

package fault

import (
	"context"
	"fmt"
	"strings"

	"crophe/internal/arch"
	"crophe/internal/parallel"
)

// Outcome is what a Runner reports for one degraded machine: the
// simulated (or scheduled) task time and whether the anytime search was
// cut before finishing.
type Outcome struct {
	TimeSec float64
	Cycles  float64
	Partial bool
}

// Runner executes a workload on one degraded machine. The fault package
// deliberately does not know how — the simulator injects itself here
// (sim.DegradedRunner), keeping the dependency arrow pointing one way.
type Runner func(m *Machine) (Outcome, error)

// SweepPoint is one rung of a resilience sweep.
type SweepPoint struct {
	Step       int
	FracFailed float64 // nominal fraction of each resource class failed
	Spec       Spec
	FaultCount int
	Outcome    Outcome
	// Err is the flattened error for infeasible rungs ("" when the rung
	// ran): the sweep keeps going so the report shows where the machine
	// stops being schedulable.
	Err string
}

// Retained is the throughput retained versus the healthy baseline
// (1 = full speed, 0 = infeasible).
func (pt *SweepPoint) Retained(baseline float64) float64 {
	if pt.Err != "" || pt.Outcome.TimeSec <= 0 || baseline <= 0 {
		return 0
	}
	r := baseline / pt.Outcome.TimeSec
	if r > 1 {
		r = 1
	}
	return r
}

// SweepResult is a full resilience sweep: escalating fault loads under
// one seed, all points generated from nested plans so throughput
// degrades monotonically in the fault count.
type SweepResult struct {
	HW       string
	Seed     int64
	Baseline float64 // healthy TimeSec (the step-0 outcome)
	Points   []SweepPoint
}

// maxSweepFrac bounds how much of each resource class the final rung
// fails; beyond ~half the machine the interesting transitions (graceful
// → infeasible) have already happened.
const maxSweepFrac = 0.5

// sweepSpec scales a fault load to a fraction of each resource class.
func sweepSpec(hw *arch.HWConfig, frac float64) Spec {
	meshW, meshH := hw.MeshW, hw.MeshH
	if meshW < 1 || meshH < 1 {
		meshW, meshH = hw.NumPEs, 1
		if meshW > 64 {
			meshW = 64
		}
	}
	links := len(meshLinks(meshW, meshH))
	s := Spec{
		FailedRows: int(frac * float64(meshH-1)),
		DeadLinks:  int(frac * float64(links) / 4),
		SlowLinks:  int(frac * float64(links) / 4),
		SlowFactor: 0.5,
		DeadBanks:  int(frac * float64(bufBanks-1)),
		HBMFrac:    1 - frac/2,
		LaneFrac:   frac / 2,
		FlipRate:   frac / 4,
	}
	if s.SlowLinks == 0 {
		s.SlowFactor = 0
	}
	return s
}

// SweepConfig is the resolved option set of one RunSweep call. Callers
// normally never build one directly — they pass SweepOption values to
// RunSweep — but BuildSweepConfig exposes the resolution so façades can
// make mode-dependent choices (e.g. which context the runner captures).
type SweepConfig struct {
	// Observe, when set, receives each freshly computed rung before the
	// next begins — the append-only checkpoint-journaling hook. Spliced
	// (Done) rungs are not re-observed. Forces sequential execution.
	Observe func(SweepPoint)
	// Done holds rungs already computed by a previous run, keyed by step
	// index; they are spliced into the result verbatim instead of
	// re-running. Forces sequential execution.
	Done map[int]SweepPoint
	// ShardIndex/ShardCount restrict the sweep to the rungs whose step
	// satisfies step % ShardCount == ShardIndex. ShardCount 0 disables
	// sharding (every rung runs).
	ShardIndex int
	ShardCount int
	// Parallel runs rungs concurrently via internal/parallel instead of
	// sequentially in step order. Incompatible with Observe (the
	// journaling contract is "each rung lands before the next begins").
	Parallel bool
}

// Sequential reports whether the config forces in-order execution: any
// journaling or resume state implies the sequential contract.
func (c *SweepConfig) Sequential() bool { return !c.Parallel }

func (c *SweepConfig) validate() error {
	if c.ShardCount < 0 {
		return fmt.Errorf("fault: negative shard count %d", c.ShardCount)
	}
	if c.ShardCount > 0 && (c.ShardIndex < 0 || c.ShardIndex >= c.ShardCount) {
		return fmt.Errorf("fault: shard index %d out of range [0, %d)", c.ShardIndex, c.ShardCount)
	}
	if c.Parallel && c.Observe != nil {
		return fmt.Errorf("fault: WithParallel is incompatible with WithJournal (observe order is the sequential contract)")
	}
	return nil
}

// SweepOption configures RunSweep.
type SweepOption func(*SweepConfig)

// WithJournal hands each freshly computed rung to observe before the next
// begins — the checkpoint-journaling hook. Implies sequential execution.
func WithJournal(observe func(SweepPoint)) SweepOption {
	return func(c *SweepConfig) { c.Observe = observe }
}

// WithResume splices previously computed rungs (keyed by step) into the
// result instead of re-running them. Implies sequential execution.
func WithResume(done map[int]SweepPoint) SweepOption {
	return func(c *SweepConfig) { c.Done = done }
}

// WithShard restricts the sweep to shard index of count: only rungs whose
// step satisfies step % count == index run, and the result holds exactly
// those points (in ascending step order). Shards of the same (hw, seed,
// steps, runner) partition the full sweep; MergeShards reassembles them
// into a result byte-identical to an unsharded run.
func WithShard(index, count int) SweepOption {
	return func(c *SweepConfig) { c.ShardIndex, c.ShardCount = index, count }
}

// WithParallel runs rungs concurrently (each writing its index-addressed
// slot, so the result is still deterministic). Incompatible with
// WithJournal.
func WithParallel() SweepOption {
	return func(c *SweepConfig) { c.Parallel = true }
}

// BuildSweepConfig resolves a SweepOption list the way RunSweep does.
func BuildSweepConfig(opts ...SweepOption) SweepConfig {
	var c SweepConfig
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// ShardSteps returns the ascending step indices shard index-of-count owns
// within a steps-rung sweep: the steps congruent to index mod count.
// count < 1 means "no sharding" and returns every step.
func ShardSteps(steps, index, count int) []int {
	if steps < 2 {
		steps = 2
	}
	if count < 1 {
		count, index = 1, 0
	}
	var out []int
	for s := index % count; s < steps; s += count {
		out = append(out, s)
	}
	return out
}

// RunSweep is the single entry point for resilience sweeps: steps rungs
// of escalating fault load (rung 0 healthy, the last rung at maxSweepFrac
// of every resource class), each instantiated under the same seed so rung
// k's fault set nests inside rung k+1's. Options select the execution
// mode:
//
//   - Default (no options): sequential in step order, ctx consulted only
//     *between* rungs — the deterministic, checkpointable contract. Every
//     rung is independently deterministic per (hw, seed, step), and this
//     function never hands the runner a cancellable context mid-rung, so
//     a sweep interrupted by cancellation or a crash loses at most the
//     in-flight rung and resuming (WithResume) produces remaining rungs
//     byte-identical to an uninterrupted run.
//   - WithJournal(observe) streams each completed rung out before the
//     next begins; WithResume(done) splices journaled rungs in verbatim.
//   - WithShard(i, n) runs only the rungs with step % n == i; shard
//     results reassemble via MergeShards.
//   - WithParallel runs rungs concurrently (batch/CLI use; ctx is checked
//     once before launch).
//
// Infeasible rungs are recorded in their point, not returned as errors;
// RunSweep itself fails only on plan-generation bugs, invalid option
// combinations, or between-rung cancellation (wrapping ctx.Err(), seed
// attached).
func RunSweep(ctx context.Context, hw *arch.HWConfig, seed int64, steps int, run Runner, opts ...SweepOption) (*SweepResult, error) {
	if steps < 2 {
		steps = 2
	}
	cfg := BuildSweepConfig(opts...)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sel := ShardSteps(steps, cfg.ShardIndex, cfg.ShardCount)
	res := &SweepResult{HW: hw.Name, Seed: seed, Points: make([]SweepPoint, len(sel))}

	if cfg.Parallel {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fault: sweep interrupted before start (seed %d): %w", seed, err)
		}
		errs := make([]error, len(sel))
		parallel.For(len(sel), func(i int) {
			if pt, ok := cfg.Done[sel[i]]; ok {
				res.Points[i] = pt
				return
			}
			res.Points[i], errs[i] = runStep(hw, seed, steps, sel[i], run)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, step := range sel {
			if pt, ok := cfg.Done[step]; ok {
				res.Points[i] = pt
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("fault: sweep interrupted before step %d (seed %d): %w", step, seed, err)
			}
			pt, err := runStep(hw, seed, steps, step, run)
			if err != nil {
				return nil, err
			}
			res.Points[i] = pt
			if cfg.Observe != nil {
				cfg.Observe(pt)
			}
		}
	}
	if len(res.Points) > 0 && res.Points[0].Step == 0 && res.Points[0].Err == "" {
		res.Baseline = res.Points[0].Outcome.TimeSec
	}
	return res, nil
}

// MergeShards reassembles shard results (produced with WithShard over the
// same hw, seed, steps and runner) into the full steps-rung sweep,
// byte-identical to an unsharded run: points are reordered by step, the
// baseline is recomputed from rung 0, and overlapping points (a rung run
// by two shards after a reassignment) must agree exactly — rung outcomes
// are deterministic, so a disagreement means the shards did not share an
// identity and is an error, as is a missing step.
func MergeShards(steps int, shards ...*SweepResult) (*SweepResult, error) {
	if steps < 2 {
		steps = 2
	}
	var (
		hwName string
		seed   int64
		first  = true
	)
	byStep := make(map[int]SweepPoint, steps)
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		if first {
			hwName, seed, first = sh.HW, sh.Seed, false
		}
		if sh.HW != hwName || sh.Seed != seed {
			return nil, fmt.Errorf("fault: merging shards of different sweeps: %s seed %d vs %s seed %d",
				hwName, seed, sh.HW, sh.Seed)
		}
		for _, pt := range sh.Points {
			if prev, ok := byStep[pt.Step]; ok && prev != pt {
				return nil, fmt.Errorf("fault: shard disagreement at step %d (seed %d): rung outcomes must be deterministic", pt.Step, seed)
			}
			byStep[pt.Step] = pt
		}
	}
	if first {
		return nil, fmt.Errorf("fault: no shards to merge")
	}
	res := &SweepResult{HW: hwName, Seed: seed, Points: make([]SweepPoint, steps)}
	for i := 0; i < steps; i++ {
		pt, ok := byStep[i]
		if !ok {
			return nil, fmt.Errorf("fault: merged sweep is missing step %d (seed %d)", i, seed)
		}
		res.Points[i] = pt
	}
	if res.Points[0].Err == "" {
		res.Baseline = res.Points[0].Outcome.TimeSec
	}
	return res, nil
}

// Sweep runs a full sweep with rungs in parallel.
//
// Deprecated: use RunSweep with WithParallel; Sweep remains as a thin
// wrapper for existing callers.
func Sweep(hw *arch.HWConfig, seed int64, steps int, run Runner) (*SweepResult, error) {
	return RunSweep(context.Background(), hw, seed, steps, run, WithParallel())
}

// ResumeSweep is the sequential, checkpointable sweep form.
//
// Deprecated: use RunSweep with WithResume and WithJournal; ResumeSweep
// remains as a thin wrapper for existing callers.
func ResumeSweep(ctx context.Context, hw *arch.HWConfig, seed int64, steps int, run Runner,
	done map[int]SweepPoint, observe func(SweepPoint)) (*SweepResult, error) {
	return RunSweep(ctx, hw, seed, steps, run, WithResume(done), WithJournal(observe))
}

// runStep generates, instantiates and runs one sweep rung. Infeasible
// machines and runner failures are recorded in the point; only
// plan-generation bugs surface as errors.
func runStep(hw *arch.HWConfig, seed int64, steps, i int, run Runner) (SweepPoint, error) {
	frac := maxSweepFrac * float64(i) / float64(steps-1)
	spec := sweepSpec(hw, frac)
	pt := SweepPoint{Step: i, FracFailed: frac, Spec: spec}
	plan, err := Generate(hw, spec, seed)
	if err != nil {
		return pt, err
	}
	pt.FaultCount = plan.FaultCount()
	m, err := NewMachine(hw, plan)
	if err != nil {
		pt.Err = err.Error()
		return pt, nil
	}
	out, err := run(m)
	if err != nil {
		pt.Err = err.Error()
		return pt, nil
	}
	pt.Outcome = out
	return pt, nil
}

// String renders the resilience report: throughput retained versus
// fraction of resources failed.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience sweep: %s, seed %d\n", r.HW, r.Seed)
	fmt.Fprintf(&b, "%-8s %-8s %-12s %-10s %-8s %s\n",
		"failed", "faults", "time(ms)", "retained", "partial", "spec")
	for i := range r.Points {
		pt := &r.Points[i]
		if pt.Err != "" {
			fmt.Fprintf(&b, "%-8s %-8d %-12s %-10s %-8s %s\n",
				fmt.Sprintf("%.0f%%", pt.FracFailed*100), pt.FaultCount,
				"-", "infeasible", "-", pt.Err)
			continue
		}
		fmt.Fprintf(&b, "%-8s %-8d %-12.3f %-10s %-8v %s\n",
			fmt.Sprintf("%.0f%%", pt.FracFailed*100), pt.FaultCount,
			pt.Outcome.TimeSec*1e3,
			fmt.Sprintf("%.1f%%", pt.Retained(r.Baseline)*100),
			pt.Outcome.Partial, pt.Spec.String())
	}
	return b.String()
}

package fault

import (
	"context"
	"fmt"
	"strings"

	"crophe/internal/arch"
	"crophe/internal/parallel"
)

// Outcome is what a Runner reports for one degraded machine: the
// simulated (or scheduled) task time and whether the anytime search was
// cut before finishing.
type Outcome struct {
	TimeSec float64
	Cycles  float64
	Partial bool
}

// Runner executes a workload on one degraded machine. The fault package
// deliberately does not know how — the simulator injects itself here
// (sim.DegradedRunner), keeping the dependency arrow pointing one way.
type Runner func(m *Machine) (Outcome, error)

// SweepPoint is one rung of a resilience sweep.
type SweepPoint struct {
	Step       int
	FracFailed float64 // nominal fraction of each resource class failed
	Spec       Spec
	FaultCount int
	Outcome    Outcome
	// Err is the flattened error for infeasible rungs ("" when the rung
	// ran): the sweep keeps going so the report shows where the machine
	// stops being schedulable.
	Err string
}

// Retained is the throughput retained versus the healthy baseline
// (1 = full speed, 0 = infeasible).
func (pt *SweepPoint) Retained(baseline float64) float64 {
	if pt.Err != "" || pt.Outcome.TimeSec <= 0 || baseline <= 0 {
		return 0
	}
	r := baseline / pt.Outcome.TimeSec
	if r > 1 {
		r = 1
	}
	return r
}

// SweepResult is a full resilience sweep: escalating fault loads under
// one seed, all points generated from nested plans so throughput
// degrades monotonically in the fault count.
type SweepResult struct {
	HW       string
	Seed     int64
	Baseline float64 // healthy TimeSec (the step-0 outcome)
	Points   []SweepPoint
}

// maxSweepFrac bounds how much of each resource class the final rung
// fails; beyond ~half the machine the interesting transitions (graceful
// → infeasible) have already happened.
const maxSweepFrac = 0.5

// sweepSpec scales a fault load to a fraction of each resource class.
func sweepSpec(hw *arch.HWConfig, frac float64) Spec {
	meshW, meshH := hw.MeshW, hw.MeshH
	if meshW < 1 || meshH < 1 {
		meshW, meshH = hw.NumPEs, 1
		if meshW > 64 {
			meshW = 64
		}
	}
	links := len(meshLinks(meshW, meshH))
	s := Spec{
		FailedRows: int(frac * float64(meshH-1)),
		DeadLinks:  int(frac * float64(links) / 4),
		SlowLinks:  int(frac * float64(links) / 4),
		SlowFactor: 0.5,
		DeadBanks:  int(frac * float64(bufBanks-1)),
		HBMFrac:    1 - frac/2,
		LaneFrac:   frac / 2,
	}
	if s.SlowLinks == 0 {
		s.SlowFactor = 0
	}
	return s
}

// Sweep runs a resilience sweep: steps rungs of escalating fault load
// (rung 0 healthy, the last rung at maxSweepFrac of every resource
// class), each instantiated under the same seed so rung k's fault set
// nests inside rung k+1's. Rungs run in parallel (via
// internal/parallel), each writing its index-addressed slot, so the
// result is deterministic regardless of worker interleaving. Infeasible
// rungs are recorded in their point, not returned as errors; Sweep
// itself fails only on plan-generation bugs.
func Sweep(hw *arch.HWConfig, seed int64, steps int, run Runner) (*SweepResult, error) {
	if steps < 2 {
		steps = 2
	}
	res := &SweepResult{HW: hw.Name, Seed: seed, Points: make([]SweepPoint, steps)}
	errs := make([]error, steps)
	parallel.For(steps, func(i int) {
		res.Points[i], errs[i] = runStep(hw, seed, steps, i, run)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(res.Points) > 0 && res.Points[0].Err == "" {
		res.Baseline = res.Points[0].Outcome.TimeSec
	}
	return res, nil
}

// ResumeSweep is the sequential, checkpointable form of Sweep used by
// long-running servers: rungs run one at a time in step order, each
// completed rung is handed to observe before the next begins (the hook
// for append-only checkpoint journaling), and rungs whose step index is
// present in done are not re-run — their recorded points are spliced into
// the result verbatim.
//
// Determinism is the whole point of the contract: every rung is
// independently deterministic per (hw, seed, step), the runner is never
// handed a cancellable context mid-rung by this function, and ctx is
// consulted only *between* rungs. A sweep interrupted by cancellation or
// a crash therefore loses at most the in-flight rung, and resuming from
// the journaled points produces remaining rungs byte-identical to an
// uninterrupted run (same seed ⇒ same plans ⇒ same outcomes).
//
// On cancellation ResumeSweep returns (nil, ctx.Err()); points already
// observed remain journaled by the caller. Sweep itself still fails only
// on plan-generation bugs, recorded per point otherwise.
func ResumeSweep(ctx context.Context, hw *arch.HWConfig, seed int64, steps int, run Runner,
	done map[int]SweepPoint, observe func(SweepPoint)) (*SweepResult, error) {
	if steps < 2 {
		steps = 2
	}
	res := &SweepResult{HW: hw.Name, Seed: seed, Points: make([]SweepPoint, steps)}
	for i := 0; i < steps; i++ {
		if pt, ok := done[i]; ok {
			res.Points[i] = pt
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fault: sweep interrupted before step %d (seed %d): %w", i, seed, err)
		}
		pt, err := runStep(hw, seed, steps, i, run)
		if err != nil {
			return nil, err
		}
		res.Points[i] = pt
		if observe != nil {
			observe(pt)
		}
	}
	if len(res.Points) > 0 && res.Points[0].Err == "" {
		res.Baseline = res.Points[0].Outcome.TimeSec
	}
	return res, nil
}

// runStep generates, instantiates and runs one sweep rung. Infeasible
// machines and runner failures are recorded in the point; only
// plan-generation bugs surface as errors.
func runStep(hw *arch.HWConfig, seed int64, steps, i int, run Runner) (SweepPoint, error) {
	frac := maxSweepFrac * float64(i) / float64(steps-1)
	spec := sweepSpec(hw, frac)
	pt := SweepPoint{Step: i, FracFailed: frac, Spec: spec}
	plan, err := Generate(hw, spec, seed)
	if err != nil {
		return pt, err
	}
	pt.FaultCount = plan.FaultCount()
	m, err := NewMachine(hw, plan)
	if err != nil {
		pt.Err = err.Error()
		return pt, nil
	}
	out, err := run(m)
	if err != nil {
		pt.Err = err.Error()
		return pt, nil
	}
	pt.Outcome = out
	return pt, nil
}

// String renders the resilience report: throughput retained versus
// fraction of resources failed.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience sweep: %s, seed %d\n", r.HW, r.Seed)
	fmt.Fprintf(&b, "%-8s %-8s %-12s %-10s %-8s %s\n",
		"failed", "faults", "time(ms)", "retained", "partial", "spec")
	for i := range r.Points {
		pt := &r.Points[i]
		if pt.Err != "" {
			fmt.Fprintf(&b, "%-8s %-8d %-12s %-10s %-8s %s\n",
				fmt.Sprintf("%.0f%%", pt.FracFailed*100), pt.FaultCount,
				"-", "infeasible", "-", pt.Err)
			continue
		}
		fmt.Fprintf(&b, "%-8s %-8d %-12.3f %-10s %-8v %s\n",
			fmt.Sprintf("%.0f%%", pt.FracFailed*100), pt.FaultCount,
			pt.Outcome.TimeSec*1e3,
			fmt.Sprintf("%.1f%%", pt.Retained(r.Baseline)*100),
			pt.Outcome.Partial, pt.Spec.String())
	}
	return b.String()
}
